package dtexl_test

import (
	"fmt"

	"dtexl"
)

// The smallest complete use: one benchmark, one policy, one frame.
func ExampleRun() {
	res, err := dtexl.Run(dtexl.Config{
		Benchmark: "TRu",
		Policy:    "DTexL",
		Width:     256, // paper resolution is 1960x768; small here for speed
		Height:    128,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Benchmark, res.Policy, res.FPS > 0, res.L2Accesses > 0)
	// Output: TRu DTexL true true
}

// Comparing the paper's proposal against its baseline.
func ExampleRun_comparison() {
	cfg := dtexl.Config{Benchmark: "GTr", Width: 256, Height: 128}
	base, err := dtexl.Run(cfg)
	if err != nil {
		panic(err)
	}
	cfg.Policy = "DTexL"
	prop, err := dtexl.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("DTexL is faster:", prop.FPS > base.FPS)
	fmt.Println("DTexL cuts L2 accesses:", prop.L2Accesses < base.L2Accesses)
	// Output:
	// DTexL is faster: true
	// DTexL cuts L2 accesses: true
}

// The benchmark suite mirrors the paper's Table I.
func ExampleBenchmarks() {
	for _, b := range dtexl.Benchmarks()[:3] {
		fmt.Printf("%s: %s (%.1f MiB textures)\n", b.Alias, b.Name, b.TextureFootprintMiB)
	}
	// Output:
	// CCS: Candy Crush Saga (2.4 MiB textures)
	// SoD: Sonic Dash (1.4 MiB textures)
	// TRu: Temple Run (0.4 MiB textures)
}

// Policy names follow the paper's figures.
func ExamplePolicies() {
	names := map[string]bool{}
	for _, p := range dtexl.Policies() {
		names[p] = true
	}
	fmt.Println(names["baseline"], names["DTexL"], names["HLB-flp2"], names["CG-square"])
	// Output: true true true true
}
