module dtexl

go 1.22
