// Command dtexlperf is the continuous-perf service (DESIGN.md §13):
// it ingests every bench run — `go test -bench` text, benchguard -json
// reports, golden-metrics JSON — into an append-only per-benchmark
// time series keyed by commit, detects step-change regressions with a
// windowed median/MAD changepoint test, serves a dashboard + JSON API,
// and auto-bisects a detected regression by re-running the offending
// microbenchmark per commit in git worktrees.
//
// Usage:
//
//	dtexlperf -db perf.db ingest -commit <sha> [-format auto] file...
//	dtexlperf -db perf.db detect [-window N] [-k K] [-minrel R] [-all]
//	dtexlperf -db perf.db serve -addr :8123 [-repo .]
//	dtexlperf -db perf.db bisect -bench BenchmarkX -repo . \
//	          -good <sha> -bad <sha> [-runs 3] [-budget 45] [-par 1]
//
// Exit codes: 0 ok (detect: no regressions); 1 regressions detected /
// bisection failed; 2 bad input.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dtexl/internal/netauth"
	"dtexl/internal/perfdb"
	"dtexl/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("dtexlperf", flag.ExitOnError)
	dbDir := fs.String("db", "perf.db", "perf database directory")
	verbose := fs.Bool("v", false, "log each notable event")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dtexlperf [-db dir] <ingest|detect|serve|bisect> [args]\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	db, err := perfdb.Open(*dbDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtexlperf:", err)
		return 2
	}
	defer db.Close()
	if n := db.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "dtexlperf: warning: dropped %d torn log lines during replay\n", n)
	}

	cmd, args := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "ingest":
		return cmdIngest(db, args)
	case "detect":
		return cmdDetect(db, args)
	case "serve":
		return cmdServe(db, args, logf)
	case "bisect":
		return cmdBisect(db, args, logf)
	default:
		fmt.Fprintf(os.Stderr, "dtexlperf: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

func cmdIngest(db *perfdb.DB, args []string) int {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	commit := fs.String("commit", "", "commit the run measured (required)")
	format := fs.String("format", perfdb.FormatAuto,
		"artifact format: auto, gobench, benchguard, metrics")
	fs.Parse(args)
	if *commit == "" || fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dtexlperf ingest: need -commit and at least one file")
		return 2
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtexlperf ingest:", err)
			return 2
		}
		rawID, n, err := db.Ingest(*format, *commit, filepath.Base(path), data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtexlperf ingest:", err)
			return 2
		}
		fmt.Printf("ingested %s: %d points at %s (raw %s)\n", path, n, *commit, rawID)
	}
	return 0
}

// detectFlags registers the detector knobs shared by detect and serve.
func detectFlags(fs *flag.FlagSet) (window *int, k, minrel *float64) {
	window = fs.Int("window", 0, "detector window (0 = calibrated default)")
	k = fs.Float64("k", 0, "significance threshold in MAD multiples (0 = default)")
	minrel = fs.Float64("minrel", 0, "minimum relative shift (0 = default)")
	return
}

func cmdDetect(db *perfdb.DB, args []string) int {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	window, k, minrel := detectFlags(fs)
	all := fs.Bool("all", false, "report improvements too, not just regressions")
	fs.Parse(args)
	cfg := stats.StepConfig{Window: *window, K: *k, MinRel: *minrel}
	changes := db.Detect(cfg)
	regressions := 0
	for _, c := range changes {
		if c.Regression {
			regressions++
		} else if !*all {
			continue
		}
		kind := "improvement"
		if c.Regression {
			kind = "REGRESSION"
		}
		fmt.Printf("%-11s %-55s %s -> %s  %.3fx (score %.1f)\n",
			kind, c.Series, short(c.LastGood), short(c.FirstBad), c.Step.Ratio, c.Step.Score)
	}
	fmt.Printf("%d series, %d regressions\n", len(db.SeriesNames()), regressions)
	if regressions > 0 {
		return 1
	}
	return 0
}

func cmdServe(db *perfdb.DB, args []string, logf func(string, ...any)) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8123", "listen address")
	repo := fs.String("repo", "", "git repository for /api/bisect worktrees (empty: bisection over HTTP needs explicit commit lists and is run elsewhere)")
	par := fs.Int("par", 1, "max concurrent bisection worktrees")
	benchTime := fs.String("benchtime", "0.2s", "-benchtime per bisection measurement")
	var auth netauth.Flags
	auth.Register(fs)
	fs.Parse(args)

	token, err := auth.Token()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtexlperf serve:", err)
		return 1
	}
	tlsCfg, err := auth.ServerTLS()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtexlperf serve:", err)
		return 1
	}
	// The token gates POST /api/ingest and /api/bisect; the dashboard and
	// every read API stay open — the chart is for people, writes are CI's.
	cfg := perfdb.ServerConfig{DB: db, Repo: *repo, AuthToken: token, Logf: logf}
	if *repo != "" {
		wt := &perfdb.WorktreeRunner{
			Repo: *repo, Parallel: *par, BenchTime: *benchTime, Logf: logf,
		}
		cfg.Bisect = wt.Run
	}
	srv := &http.Server{Addr: *addr, Handler: perfdb.NewServer(cfg).Handler(), TLSConfig: tlsCfg}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtexlperf serve:", err)
		return 1
	}
	errc := make(chan error, 1)
	go func() { errc <- netauth.Serve(srv, ln, tlsCfg) }()
	fmt.Fprintf(os.Stderr, "dtexlperf: serving on %s://%s (ingest auth %v)\n", netauth.URLScheme(tlsCfg), ln.Addr(), token != "")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dtexlperf serve:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "dtexlperf: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		return 0
	}
}

func cmdBisect(db *perfdb.DB, args []string, logf func(string, ...any)) int {
	fs := flag.NewFlagSet("bisect", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark (series) to bisect (required)")
	repo := fs.String("repo", ".", "git repository to check commits out of")
	goodC := fs.String("good", "", "last good commit (required)")
	badC := fs.String("bad", "", "first bad commit (required)")
	runs := fs.Int("runs", 3, "measurements per probed commit")
	budget := fs.Int("budget", 0, "total measurement budget (0 = default)")
	par := fs.Int("par", 1, "max concurrent worktrees")
	benchTime := fs.String("benchtime", "0.2s", "-benchtime per measurement")
	timeout := fs.Duration("timeout", 30*time.Minute, "whole-bisection budget")
	fs.Parse(args)
	if *bench == "" || *goodC == "" || *badC == "" {
		fmt.Fprintln(os.Stderr, "dtexlperf bisect: need -bench, -good and -bad")
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	// Reuse the server's range expansion and level lookup by going
	// through its handler-independent pieces: build the runner and a
	// request the library-level API consumes.
	wt := &perfdb.WorktreeRunner{Repo: *repo, Parallel: *par, BenchTime: *benchTime, Logf: logf}
	commits, good, bad, err := perfdb.ResolveBisectRange(ctx, db, *repo, *bench, *goodC, *badC)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtexlperf bisect:", err)
		return 2
	}
	b := perfdb.Bisector{Run: wt.Run, RunsPerCommit: *runs, Budget: *budget, Logf: logf}
	res, err := b.Bisect(ctx, commits, *bench, good, bad)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtexlperf bisect:", err)
		return 1
	}
	for _, p := range res.Probes {
		verdict := "good"
		if p.Bad {
			verdict = "bad"
		}
		fmt.Printf("probe %s  %.1f  %s (%d runs)\n", short(p.Commit), p.Median, verdict, p.Runs)
	}
	fmt.Printf("culprit: %s (last good %s, %d measurements)\n",
		res.Culprit, short(res.LastGood), res.Measurements)
	return 0
}

func short(commit string) string {
	if len(commit) > 12 {
		return commit[:12]
	}
	return commit
}
