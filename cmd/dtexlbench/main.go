// Command dtexlbench regenerates the paper's tables and figures, plus
// the ablations beyond the paper. Each experiment prints the same
// rows/series the paper reports (see DESIGN.md's experiment index and
// EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	dtexlbench -exp fig16                 # one figure at paper resolution
//	dtexlbench -exp all -scale 2 -par 0   # everything, half scale, parallel
//	dtexlbench -exp all -cellpar 0        # also parallel inside each simulation
//	                                      # (byte-identical output, see DESIGN.md §11)
//	dtexlbench -exp fig17 -benchmarks TRu,GTr -v
//	dtexlbench -exp abl-nuca -csv         # ablation, CSV output
//	dtexlbench -exp fig16 -svg plots/     # also emit an SVG figure
//	dtexlbench -exp all -checkpoint ckpt/ # crash-safe: resumes on restart
//	dtexlbench -exp all -keep-going       # render NA cells, don't abort
//	dtexlbench -exp all -timeout 30m -cell-timeout 5m -keep-going
//	                                      # bounded run: hung cells go NA,
//	                                      # the whole run never exceeds 30m
//
// Exit codes: 0 = every cell simulated; 1 = fatal error (bad flags, or a
// simulation failed without -keep-going); 2 = partial results (-keep-going
// rendered at least one NA cell alongside completed ones).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
	"dtexl/internal/pipeline/traceexport"
	"dtexl/internal/sim"
	"dtexl/internal/trace"
)

// Exit-code contract (see DESIGN.md "Failure model & degradation").
const (
	exitOK      = 0
	exitFatal   = 1
	exitPartial = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig1, fig2, fig11-fig18, tab1, tab2, abl-*, bg-imr) or 'all'")
		scale    = flag.Int("scale", 1, "divide the Table II resolution by this factor (1 = full 1960x768)")
		benches  = flag.String("benchmarks", "", "comma-separated Table I aliases (default: full suite)")
		seed     = flag.Uint64("seed", 1, "scene generator seed")
		frames   = flag.Int("frames", 1, "animation frames per simulation (warm caches)")
		verbose  = flag.Bool("v", false, "print per-simulation progress")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		par      = flag.Int("par", 0, "concurrent simulations for -exp all (0 = GOMAXPROCS, 1 = serial)")
		cellPar  = flag.Int("cellpar", 1, "worker goroutines inside each simulation (1 = serial, 0 = GOMAXPROCS); output is byte-identical to serial, composes with -par")
		svgDir   = flag.String("svg", "", "also write each experiment as <dir>/<id>.svg")
		timing   = flag.Bool("timing", false, "print phase wall time and memo hit counts to stderr on exit")
		keepGo   = flag.Bool("keep-going", false, "on a failed simulation, mark its cells NA and continue (exit 2 on partial results)")
		timeout  = flag.Duration("timeout", 0, "whole-run wall-clock budget (0 = none); on expiry in-flight cells are cancelled, e.g. 30m")
		cellTO   = flag.Duration("cell-timeout", 0, "per-simulation wall-clock budget (0 = none); with -keep-going a hung cell renders NA instead of aborting the run, e.g. 5m")
		ckptDir  = flag.String("checkpoint", "", "journal completed simulations under this directory and resume from it on restart")
		chaosStr = flag.String("chaos", "", "fault injection spec bench/policy/mode (mode: panic, error, stall; testing only)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (post-run, after GC) to this file")
		mtxProf  = flag.String("mutexprofile", "", "write a pprof mutex-contention profile (post-run) to this file; samples every contended lock")
		blkProf  = flag.String("blockprofile", "", "write a pprof goroutine-blocking profile (post-run) to this file; samples every blocking event")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace of one instrumented run to this file and exit (uses the first benchmark of -benchmarks)")
		tracePol = flag.String("trace-policy", "baseline", "policy for the -trace run (baseline, baseline-decoupled, DTexL, ...)")
		sample   = flag.Int64("sample", 4096, "interval-sampling period in cycles for the -trace run (Config.SampleEvery; 0 disables counter tracks)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			return exitFatal
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			return exitFatal
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dtexlbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			}
		}()
	}
	// Contention profiles for tuning the sharded parallel sequencer
	// (DESIGN.md §11): -mutexprofile shows where workers fight over
	// locks, -blockprofile where they sit in channel/condition waits.
	// Rate 1 records every event — fine for a profiling run, too slow
	// to leave on by default.
	for _, p := range []struct {
		path, name string
		enable     func()
	}{
		{*mtxProf, "mutex", func() { runtime.SetMutexProfileFraction(1) }},
		{*blkProf, "block", func() { runtime.SetBlockProfileRate(1) }},
	} {
		if p.path == "" {
			continue
		}
		p.enable()
		path, name := p.path, p.name
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dtexlbench:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			}
		}()
	}

	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "dtexlbench: -scale must be >= 1")
		return exitFatal
	}
	opt := sim.ScaledOptions(*scale)
	opt.Seed = *seed
	opt.Frames = *frames
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	// SIGINT/SIGTERM cancel in-flight simulations; with -checkpoint the
	// journal already holds every completed cell, so a rerun resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// -timeout bounds the whole run under the same cancellation path as a
	// signal; -cell-timeout below bounds each simulation individually.
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	r := sim.NewRunner(opt)
	r.CSV = *csv
	r.Ctx = ctx
	r.KeepGoing = *keepGo
	r.RunTimeout = *cellTO
	if *cellPar == 0 {
		r.Parallel = -1 // Runner semantics: negative = GOMAXPROCS
	} else {
		r.Parallel = *cellPar
	}
	if *verbose {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	if *chaosStr != "" {
		chaos, err := sim.ParseChaos(*chaosStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			return exitFatal
		}
		r.Chaos = chaos
		fmt.Fprintln(os.Stderr, "dtexlbench: fault injection active:", *chaosStr)
	}
	if *ckptDir != "" {
		j, err := sim.OpenJournal(*ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			return exitFatal
		}
		defer j.Close()
		r.Journal = j
		if n := j.Replayed(); n > 0 {
			fmt.Fprintf(os.Stderr, "dtexlbench: resumed %d completed simulation(s) from %s\n", n, *ckptDir)
		}
	}

	if *traceOut != "" {
		if err := runTrace(r, opt, *traceOut, *tracePol, *sample); err != nil {
			return fatal(err)
		}
		return exitOK
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = sim.ExperimentIDs()
		// Pre-run the figure simulations in parallel; the experiment
		// renderers below then assemble tables from the cache.
		r.Parallelism = *par
		if err := r.WarmAll(); err != nil {
			return fatal(err)
		}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := r.RunExperiment(id, os.Stdout); err != nil {
			return fatal(err)
		}
		if *svgDir != "" && id != "tab1" && id != "tab2" {
			if err := writeSVG(r, *svgDir, id); err != nil {
				return fatal(err)
			}
		}
	}
	if *timing {
		fmt.Fprintln(os.Stderr, r.Timing())
	}

	if fails := r.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "dtexlbench: %d cell(s) failed and were rendered NA:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s/%s: %v\n", f.Bench, f.Series, f.Err)
		}
		if r.CompletedRuns() > 0 {
			return exitPartial
		}
		return exitFatal
	}
	return exitOK
}

// fatal reports a run-aborting error, expanding stall diagnostics so a
// hung-machine report carries the executor state instead of one line.
func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "dtexlbench:", err)
	var se *pipeline.StallError
	if errors.As(err, &se) {
		fmt.Fprintln(os.Stderr, se.Dump())
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dtexlbench: interrupted; rerun with the same -checkpoint dir to resume")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "dtexlbench: -timeout budget exhausted; rerun with the same -checkpoint dir to resume")
	}
	return exitFatal
}

// runTrace captures one instrumented simulation — interval sampling on,
// and the coupled tile timeline when the policy is coupled — and writes
// it as Chrome/Perfetto trace_event JSON (load in ui.perfetto.dev; one
// trace microsecond = one simulated cycle).
func runTrace(r *sim.Runner, opt sim.Options, out, polName string, sample int64) error {
	pol, err := core.PolicyByName(polName)
	if err != nil {
		return err
	}
	aliases := trace.Aliases()
	if len(opt.Benchmarks) > 0 {
		aliases = opt.Benchmarks
	}
	alias := aliases[0]
	res, err := r.RunOneWith(alias, pol, func(cfg *pipeline.Config) {
		cfg.SampleEvery = sample
		if !cfg.Decoupled {
			cfg.CollectTimeline = true // tile + barrier spans need the timeline
		}
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := traceexport.Write(f, res.Metrics); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dtexlbench: wrote trace of %s under %s to %s (%d tiles, %d interval samples)\n",
		alias, pol.Name, out, len(res.Metrics.Timeline), len(res.Metrics.Intervals))
	return nil
}

// writeSVG renders one experiment's figure into dir/<id>.svg. Simulation
// results are memoized in the Runner, so this reuses the runs the text
// rendering just did.
func writeSVG(r *sim.Runner, dir, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.RenderSVG(id, f)
}
