// Command dtexlbench regenerates the paper's tables and figures, plus
// the ablations beyond the paper. Each experiment prints the same
// rows/series the paper reports (see DESIGN.md's experiment index and
// EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	dtexlbench -exp fig16                 # one figure at paper resolution
//	dtexlbench -exp all -scale 2 -par 0   # everything, half scale, parallel
//	dtexlbench -exp fig17 -benchmarks TRu,GTr -v
//	dtexlbench -exp abl-nuca -csv         # ablation, CSV output
//	dtexlbench -exp fig16 -svg plots/     # also emit an SVG figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dtexl/internal/sim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig1, fig2, fig11-fig18, tab1, tab2, abl-*, bg-imr) or 'all'")
		scale   = flag.Int("scale", 1, "divide the Table II resolution by this factor (1 = full 1960x768)")
		benches = flag.String("benchmarks", "", "comma-separated Table I aliases (default: full suite)")
		seed    = flag.Uint64("seed", 1, "scene generator seed")
		frames  = flag.Int("frames", 1, "animation frames per simulation (warm caches)")
		verbose = flag.Bool("v", false, "print per-simulation progress")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		par     = flag.Int("par", 0, "concurrent simulations for -exp all (0 = GOMAXPROCS, 1 = serial)")
		svgDir  = flag.String("svg", "", "also write each experiment as <dir>/<id>.svg")
		timing  = flag.Bool("timing", false, "print phase wall time and memo hit counts to stderr on exit")
	)
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "dtexlbench: -scale must be >= 1")
		os.Exit(1)
	}
	opt := sim.ScaledOptions(*scale)
	opt.Seed = *seed
	opt.Frames = *frames
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	r := sim.NewRunner(opt)
	r.CSV = *csv
	if *verbose {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = sim.ExperimentIDs()
		// Pre-run the figure simulations in parallel; the experiment
		// renderers below then assemble tables from the cache.
		r.Parallelism = *par
		if err := r.WarmAll(); err != nil {
			fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			os.Exit(1)
		}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := r.RunExperiment(id, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dtexlbench:", err)
			os.Exit(1)
		}
		if *svgDir != "" && id != "tab1" && id != "tab2" {
			if err := writeSVG(r, *svgDir, id); err != nil {
				fmt.Fprintln(os.Stderr, "dtexlbench:", err)
				os.Exit(1)
			}
		}
	}
	if *timing {
		fmt.Fprintln(os.Stderr, r.Timing())
	}
}

// writeSVG renders one experiment's figure into dir/<id>.svg. Simulation
// results are memoized in the Runner, so this reuses the runs the text
// rendering just did.
func writeSVG(r *sim.Runner, dir, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.RenderSVG(id, f)
}
