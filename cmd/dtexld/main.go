// Command dtexld serves simulations over HTTP, hardened for overload:
// admission control with a bounded queue, per-request deadlines that
// reach the executor watchdogs, fidelity degradation instead of load
// shedding for requests that opt in, request coalescing (concurrent
// identical requests join one in-flight simulation that survives any
// single client's cancellation — see DESIGN.md §11), and SIGTERM
// draining that journals completed cells so a restarted server answers
// them from memo.
//
// With -coord it instead runs as a fleet worker (DESIGN.md §12): it
// registers with a dtexlcoord coordinator, heartbeats, pulls leased
// suite cells, computes them through the full memo stack (L1 memo →
// journal → shared store), and reports checksummed results. The HTTP
// server still runs for health probes; /workerz reports worker state.
//
// Usage:
//
//	dtexld -addr :8095 -scale 4 -checkpoint ckpt/
//	curl -XPOST localhost:8095/v1/simulate \
//	     -d '{"benchmark":"TRu","policy":"DTexL","degradable":true}'
//	curl localhost:8095/v1/experiments/fig16
//
//	dtexld -coord http://127.0.0.1:8100 -worker-name w1 -store shared/
//	dtexld -coords https://c1:8100,https://c2:8101 -tls-ca tls.crt \
//	       -auth-token-file tok -store shared/     # HA fleet over TLS
//
// API (see README "Serving"):
//
//	POST /v1/simulate           {benchmark, policy, scale?, frames?, degradable?, timeout_ms?}
//	GET  /v1/experiments/{name} rendered experiment table (?csv=1)
//	GET  /healthz               liveness
//	GET  /readyz                readiness + admission stats (503 while draining)
//	GET  /workerz               fleet worker state (404 unless -coord)
//
// Exit codes: 0 = clean start-to-drain lifecycle (including SIGTERM
// under load, provided in-flight work finishes inside -grace), or a
// fleet worker that ran its suite to completion or was signalled; 1 =
// fatal setup error, a drain that had to be aborted, or a worker that
// lost its coordinator past the transport retry budget.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dtexl/internal/fleet"
	"dtexl/internal/netauth"
	"dtexl/internal/serve"
	"dtexl/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8095", "listen address")
		scale    = flag.Int("scale", 4, "full-fidelity resolution divisor (1 = the paper's 1960x768)")
		degScale = flag.Int("degraded-scale", 0, "overload fallback divisor for degradable requests (0 = 2x -scale)")
		seed     = flag.Uint64("seed", 1, "scene generator seed")
		conc     = flag.Int("concurrency", 0, "full-fidelity slots (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "bounded waiting room beyond the slots (0 = 2x concurrency)")
		cellBudg = flag.Duration("cell-timeout", 2*time.Minute, "per-simulation wall-clock budget; also the Retry-After unit")
		cellPar  = flag.Int("cellpar", 1, "worker goroutines inside each simulation (1 = serial, 0 = GOMAXPROCS); output is byte-identical to serial")
		grace    = flag.Duration("grace", 30*time.Second, "drain budget after SIGTERM before in-flight executors are aborted")
		ckptDir  = flag.String("checkpoint", "", "journal completed cells under this directory; a restarted server serves them from memo")
		storeDir = flag.String("store", "", "shared content-addressed result store directory (L2 behind the journal)")
		chaosStr = flag.String("chaos", "", "fault injection spec bench/policy/mode (mode: panic, error, stall, crash; testing only)")
		verbose  = flag.Bool("v", false, "log per-event lines")

		// Fleet worker mode (DESIGN.md §12).
		coord     = flag.String("coord", "", "coordinator base URL; when set, run as a fleet worker instead of a standalone server")
		coords    = flag.String("coords", "", "comma-separated ordered coordinator endpoints for HA fleets; the worker rotates on failure (may combine with -coord, which goes first)")
		name      = flag.String("worker-name", "", "worker label in coordinator stats (default: host:pid)")
		partAfter = flag.Int("partition-after", 0, "chaos: go silent after this many completed cells (0 = off)")
		partFor   = flag.Duration("partition-for", 5*time.Second, "chaos: how long an injected partition lasts")
	)
	var auth netauth.Flags
	auth.Register(flag.CommandLine)
	flag.Parse()

	token, err := auth.Token()
	if err != nil {
		log.Printf("dtexld: %v", err)
		return 1
	}
	tlsCfg, err := auth.ServerTLS()
	if err != nil {
		log.Printf("dtexld: %v", err)
		return 1
	}

	logf := func(format string, args ...any) { log.Printf(format, args...) }
	if !*verbose {
		logf = func(format string, args ...any) {}
	}

	cfg := serve.Config{
		Scale:         *scale,
		DegradedScale: *degScale,
		Seed:          *seed,
		Concurrency:   *conc,
		QueueDepth:    *queue,
		CellBudget:    *cellBudg,
		AuthToken:     token,
		Logf:          logf,
	}
	if *cellPar == 0 {
		cfg.Parallel = -1 // Runner semantics: negative = GOMAXPROCS
	} else {
		cfg.Parallel = *cellPar
	}
	if *chaosStr != "" {
		chaos, err := sim.ParseChaos(*chaosStr)
		if err != nil {
			log.Printf("dtexld: %v", err)
			return 1
		}
		cfg.Chaos = chaos
		log.Printf("dtexld: fault injection active: %s", *chaosStr)
	}
	if *ckptDir != "" {
		j, err := sim.OpenJournal(*ckptDir)
		if err != nil {
			log.Printf("dtexld: %v", err)
			return 1
		}
		defer j.Close()
		cfg.Journal = j
		log.Printf("dtexld: journal open under %s, %d cell(s) replayed", *ckptDir, j.Replayed())
	}
	if *storeDir != "" {
		st, err := sim.OpenStore(*storeDir)
		if err != nil {
			log.Printf("dtexld: %v", err)
			return 1
		}
		st.Logf = func(format string, args ...any) { log.Printf(format, args...) }
		cfg.Store = st
		n, _ := st.Len()
		log.Printf("dtexld: shared store open under %s, %d entry(ies)", *storeDir, n)
	}

	if *coord != "" || *coords != "" {
		client, err := auth.Client(5 * time.Minute)
		if err != nil {
			log.Printf("dtexld: %v", err)
			return 1
		}
		var endpoints []string
		if *coords != "" {
			endpoints = strings.Split(*coords, ",")
		}
		return runWorker(cfg, tlsCfg, client, *addr, *coord, endpoints, *name, *partAfter, *partFor)
	}

	s := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler(), TLSConfig: tlsCfg}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("dtexld: %v", err)
		return 1
	}
	log.Printf("dtexld: serving on %s://%s (scale %d, %d slots, queue %d, cell budget %v, auth %v)",
		netauth.URLScheme(tlsCfg), ln.Addr(), *scale, effectiveConc(*conc), *queue, *cellBudg, token != "")

	serveErr := make(chan error, 1)
	go func() { serveErr <- netauth.Serve(httpSrv, ln, tlsCfg) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("dtexld: %v: draining (grace %v)", sig, *grace)
	case err := <-serveErr:
		log.Printf("dtexld: serve: %v", err)
		return 1
	}

	// Drain: readiness off, new work rejected, in-flight finishes within
	// the grace budget. Completed cells are already fsync'd in the
	// journal, so even an aborted drain loses nothing that finished.
	s.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	if err != nil {
		// Grace exhausted: abort in-flight executors via their watchdogs,
		// then force-close connections.
		s.Abort()
		forceCtx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer fcancel()
		if err2 := httpSrv.Shutdown(forceCtx); err2 != nil {
			httpSrv.Close()
		}
		log.Printf("dtexld: drain aborted after grace budget: %v", err)
		return 1
	}
	if err := s.AwaitIdle(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		s.Abort()
		log.Printf("dtexld: in-flight work outlived the drain: %v", err)
		return 1
	}
	log.Printf("dtexld: drained cleanly")
	return 0
}

// runWorker joins the fleet at coord, keeping the HTTP server up for
// health probes (/healthz, /readyz, /workerz) while the fleet loop
// pulls and computes leased cells. The runner the worker builds from
// the coordinator's suite options layers the same memo stack as the
// serving path: L1 memo → journal → shared store → compute.
func runWorker(cfg serve.Config, tlsCfg *tls.Config, client *http.Client, addr, coord string, coords []string, name string, partAfter int, partFor time.Duration) int {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator:  coord,
		Coordinators: coords,
		Client:       client,
		Name:         name,
		NewRunner: func(opt sim.Options) *sim.Runner {
			r := sim.NewRunner(opt)
			r.Journal = cfg.Journal
			r.Store = cfg.Store
			r.Chaos = cfg.Chaos
			r.Parallel = cfg.Parallel
			r.RunTimeout = cfg.CellBudget
			r.Progress = func(line string) { cfg.Logf("dtexld: %s", line) }
			return r
		},
		PartitionAfter: partAfter,
		PartitionFor:   partFor,
		Logf:           func(format string, args ...any) { log.Printf(format, args...) },
	})
	cfg.FleetStatus = func() any { return w.Status() }

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("dtexld: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: s.Handler(), TLSConfig: tlsCfg}
	go netauth.Serve(httpSrv, ln, tlsCfg)
	targets := coords
	if coord != "" {
		targets = append([]string{coord}, coords...)
	}
	log.Printf("dtexld: worker %q joining fleet at %s (health on %s)", name, strings.Join(targets, ","), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runErr := w.Run(ctx)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	switch {
	case runErr == nil:
		log.Printf("dtexld: worker %q: suite complete after %d cell(s)", name, w.Status().Completed)
		return 0
	case errors.Is(runErr, context.Canceled):
		// Signalled mid-suite: clean exit; the coordinator reassigns any
		// lease we held once the heartbeat lapses.
		log.Printf("dtexld: worker %q: signalled; outstanding leases will be reassigned", name)
		return 0
	default:
		log.Printf("dtexld: worker %q: %v", name, runErr)
		return 1
	}
}

func effectiveConc(c int) int {
	if c < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c
}
