// Command dtexlcoord coordinates a fleet of dtexld workers through a
// sharded benchmark sweep: it slices the suite into leased cells,
// hands them to registered workers, reassigns leases when heartbeats
// lapse, lets idle workers steal from slow ones, quarantines cells
// that exhaust their retry budget, and collects checksummed results
// into the content-addressed shared store. When every cell has
// settled it renders the requested experiment tables from the store —
// byte-identical to a serial dtexlbench run.
//
// The coordinator is highly available: it periodically snapshots its
// authoritative state (leases, retry budgets, quarantine decisions,
// counters) into the store directory, and a second dtexlcoord started
// with -standby against the same store watches the epoch lease. When
// the primary dies, the standby fences the old epoch, replays the
// snapshot plus the store's completed results, and takes over;
// workers re-register with their in-flight lease tokens and no cell
// is double-counted or lost.
//
// Usage:
//
//	dtexlcoord -addr :8100 -store shared/ -scale 8 \
//	           -exps fig11,fig16,fig17 -out fleet.txt -exit-when-done
//	dtexlcoord -addr :8101 -store shared/ -scale 8 -standby &  # hot standby
//	dtexld -coords http://127.0.0.1:8100,http://127.0.0.1:8101 &  # × N workers
//
// Endpoints:
//
//	POST /fleet/register|heartbeat|lease|complete|fail   worker protocol
//	GET  /fleet/stats                                    sweep + worker stats
//	GET  /healthz                                        liveness
//
// With -auth-token (or -auth-token-file) every mutating endpoint
// demands the bearer token; GETs and /healthz stay open for probes
// and dashboards. -tls-cert/-tls-key serve HTTPS; -tls-client-ca
// additionally demands client certificates (mTLS).
//
// Exit codes: 0 = suite settled (quarantined cells, if any, are
// reported in stats and the exit stays 0 — assert on them with
// dtexlload -expect-quarantined); 1 = setup error or render failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dtexl/internal/fleet"
	"dtexl/internal/netauth"
	"dtexl/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8100", "listen address")
		storeDir  = flag.String("store", "", "shared result store directory (required)")
		scale     = flag.Int("scale", 4, "resolution divisor for the sweep (1 = the paper's 1960x768)")
		seed      = flag.Uint64("seed", 1, "scene generator seed")
		frames    = flag.Int("frames", 1, "animation frames per cell")
		benches   = flag.String("benchmarks", "", "comma-separated benchmark aliases (empty = full suite)")
		heartbeat = flag.Duration("heartbeat", fleet.DefaultHeartbeatInterval, "heartbeat interval workers are told to use")
		hbTimeout = flag.Duration("heartbeat-timeout", 0, "lapse after which a worker's leases are reassigned (0 = 4x -heartbeat)")
		budget    = flag.Int("retry-budget", fleet.DefaultRetryBudget, "lease grants per cell before quarantine")
		stealAft  = flag.Duration("steal-after", fleet.DefaultStealAfter, "lease age past which idle workers may steal the cell")
		exps      = flag.String("exps", "", "comma-separated experiments to render from the store once the suite settles")
		out       = flag.String("out", "", "write the rendered experiments to this file (default stdout)")
		exitDone  = flag.Bool("exit-when-done", false, "exit once the suite settles (after rendering -exps)")
		maxBytes  = flag.Int64("store-max-bytes", 0, "GC the store oldest-first to at most this many bytes (0 = unbounded); the live sweep's entries are never evicted")
		maxAge    = flag.Duration("store-max-age", 0, "GC store entries older than this (0 = unbounded), e.g. 168h; the live sweep's entries are never evicted")
		nodeID    = flag.String("node-id", "", "name for this coordinator in the epoch lease and stats (default host-pid)")
		standby   = flag.Bool("standby", false, "start as a hot standby: serve 503 and watch the epoch lease, taking over only when the primary's lease goes stale")
		leaseIvl  = flag.Duration("lease-interval", fleet.DefaultLeaseInterval, "epoch lease renewal (primary) and poll (standby) cadence")
		leaseTmo  = flag.Duration("lease-timeout", 0, "epoch lease staleness bound past which a standby seizes the epoch (0 = 4x -lease-interval)")
		snapIvl   = flag.Duration("snapshot-interval", fleet.DefaultSnapshotInterval, "cadence of fsync'd state snapshots into the store directory")
		verbose   = flag.Bool("v", false, "log per-event lines")
	)
	var auth netauth.Flags
	auth.Register(flag.CommandLine)
	flag.Parse()

	if *storeDir == "" {
		log.Printf("dtexlcoord: -store is required")
		return 1
	}
	token, err := auth.Token()
	if err != nil {
		log.Printf("dtexlcoord: %v", err)
		return 1
	}
	tlsCfg, err := auth.ServerTLS()
	if err != nil {
		log.Printf("dtexlcoord: %v", err)
		return 1
	}
	store, err := sim.OpenStore(*storeDir)
	if err != nil {
		log.Printf("dtexlcoord: %v", err)
		return 1
	}
	logf := func(format string, args ...any) { log.Printf(format, args...) }
	if !*verbose {
		logf = func(string, ...any) {}
	}
	store.Logf = func(format string, args ...any) { log.Printf(format, args...) }

	node := *nodeID
	if node == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "coord"
		}
		node = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	opt := sim.ScaledOptions(*scale)
	opt.Seed = *seed
	opt.Frames = *frames
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	ha, err := fleet.NewHA(fleet.HAConfig{
		Coordinator: fleet.CoordinatorConfig{
			Opt:               opt,
			Store:             store,
			HeartbeatInterval: *heartbeat,
			HeartbeatTimeout:  *hbTimeout,
			RetryBudget:       *budget,
			StealAfter:        *stealAft,
			Logf:              logf,
		},
		NodeID:           node,
		Standby:          *standby,
		LeaseInterval:    *leaseIvl,
		LeaseTimeout:     *leaseTmo,
		SnapshotInterval: *snapIvl,
		Logf:             func(format string, args ...any) { log.Printf(format, args...) },
	})
	if err != nil {
		log.Printf("dtexlcoord: %v", err)
		return 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- ha.Run(ctx) }()

	// Size/age-bounded store GC: entries from older sweeps (different
	// scale, seed, or code version) age out, but the live sweep's own
	// entries are pinned so a resume scan or render never loses a result
	// the fleet already paid for. One sweep up front reclaims space
	// before workers start writing; a background ticker keeps a
	// long-running coordinator bounded.
	if *maxBytes > 0 || *maxAge > 0 {
		pol := sim.GCPolicy{MaxBytes: *maxBytes, MaxAge: *maxAge}
		pins, err := sim.SweepEntryNames(opt)
		if err != nil {
			log.Printf("dtexlcoord: store gc pins: %v", err)
			return 1
		}
		gc := func() {
			st, err := store.GC(pol, pins)
			if err != nil {
				log.Printf("dtexlcoord: store gc: %v", err)
				return
			}
			if st.Evicted > 0 {
				log.Printf("dtexlcoord: store gc: evicted %d/%d entries (%d bytes freed, %d kept, %d pinned)",
					st.Evicted, st.Scanned, st.BytesFreed, st.BytesKept, st.Pinned)
			}
		}
		gc()
		ticker := time.NewTicker(time.Minute)
		defer ticker.Stop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-ticker.C:
					gc()
				case <-done:
					return
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("dtexlcoord: %v", err)
		return 1
	}
	// Mutations demand the bearer token (when configured); stats GETs and
	// the health probe stay open so dashboards and load balancers work
	// without secrets.
	handler := netauth.Middleware(token, netauth.Or(netauth.OpenPaths("/healthz"), netauth.OpenReadOnly), ha.Handler())
	httpSrv := &http.Server{Handler: handler, TLSConfig: tlsCfg}
	serveErr := make(chan error, 1)
	go func() { serveErr <- netauth.Serve(httpSrv, ln, tlsCfg) }()
	role := "primary"
	if *standby {
		role = "standby"
	}
	log.Printf("dtexlcoord: %s %q on %s://%s (scale %d, heartbeat %v, retry budget %d, auth %v)",
		role, node, netauth.URLScheme(tlsCfg), ln.Addr(), *scale, *heartbeat, *budget, token != "")

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	settled := false
	select {
	case <-ha.Done():
		settled = true
		if coord := ha.Coordinator(); coord != nil {
			st := coord.Stats()
			log.Printf("dtexlcoord: suite settled (epoch %d): %d done, %d quarantined, %d reassigned, %d stolen, %d late, %d rejected",
				st.Epoch, st.Done, st.Quarantined, st.Reassigned, st.Stolen, st.LateResults, st.RejectedResults)
		}
	case sig := <-sigCh:
		log.Printf("dtexlcoord: %v: shutting down", sig)
	case err := <-serveErr:
		log.Printf("dtexlcoord: serve: %v", err)
		return 1
	case err := <-runErr:
		log.Printf("dtexlcoord: ha: %v", err)
		return 1
	}

	code := 0
	if settled && *exps != "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Printf("dtexlcoord: %v", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := ha.Coordinator().RenderExperiments(strings.Split(*exps, ","), w); err != nil {
			log.Printf("dtexlcoord: %v", err)
			code = 1
		} else if *out != "" {
			log.Printf("dtexlcoord: rendered %s to %s", *exps, *out)
		}
	}
	if settled && !*exitDone && code == 0 {
		// Stay up for stats scraping until signalled.
		log.Printf("dtexlcoord: suite done; serving stats until signalled (use -exit-when-done to exit)")
		select {
		case sig := <-sigCh:
			log.Printf("dtexlcoord: %v: shutting down", sig)
		case err := <-serveErr:
			log.Printf("dtexlcoord: serve: %v", err)
			code = 1
		}
	}

	// Cancel the HA loop first: the primary takes a final snapshot on
	// the way out so a successor resumes from the freshest state.
	cancel()
	select {
	case <-runErr:
	case <-time.After(5 * time.Second):
	}
	shutdownCtx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	if !settled && code == 0 {
		// Interrupted mid-sweep: completed cells are durable in the store
		// and the final snapshot preserves lease/budget state, so a
		// restarted or standby coordinator resumes where this one stopped.
		if coord := ha.Coordinator(); coord != nil {
			st := coord.Stats()
			fmt.Fprintf(os.Stderr, "dtexlcoord: interrupted with %d/%d cells done (resumable from the store)\n", st.Done, st.Cells)
		}
	}
	return code
}
