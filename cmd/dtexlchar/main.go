// Command dtexlchar characterizes the synthetic benchmark suite: it
// prints Table I (the workload descriptions plus the generated scenes'
// actual statistics) and Table II (the simulated GPU parameters), and a
// per-benchmark texture-reuse profile that motivates the paper's §IV-B
// observation that block reuse varies greatly across games.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtexl/internal/core"
	"dtexl/internal/sim"
	"dtexl/internal/trace"
)

func main() {
	var (
		scale = flag.Int("scale", 2, "divide the Table II resolution by this factor")
		seed  = flag.Uint64("seed", 1, "scene generator seed")
	)
	flag.Parse()

	opt := sim.ScaledOptions(*scale)
	opt.Seed = *seed
	opt.Benchmarks = trace.Aliases()
	r := sim.NewRunner(opt)

	if err := r.Table1(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtexlchar:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := sim.Table2(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtexlchar:", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Println("== Texture reuse characterization (baseline runs)")
	fmt.Printf("%-6s %12s %12s %10s %12s\n", "bench", "L1 accesses", "L2 accesses", "L1 hit", "acc/quad")
	for _, alias := range opt.Benchmarks {
		res, err := sim.RunOne(alias, core.Baseline(), opt, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtexlchar:", err)
			os.Exit(1)
		}
		m := res.Metrics
		fmt.Printf("%-6s %12d %12d %9.1f%% %12.2f\n",
			alias, m.Events.L1TexAccesses, m.L2Accesses(),
			100*m.L1Tex.HitRate(),
			float64(m.Events.L1TexAccesses)/float64(m.Events.QuadsShaded))
	}
}
