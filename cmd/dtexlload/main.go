// Command dtexlload drives concurrent load at a dtexld service through
// the backoff/circuit-breaker client and checks the overload contract:
// every accepted response carries complete metrics and an honest
// degraded label; shed requests surface as 429/503, never corruption;
// stalls come back as structured diagnostics. It is the CI smoke's load
// generator and doubles as a small latency harness.
//
// Usage:
//
//	dtexlload -addr http://127.0.0.1:8095 -n 32 -c 8 \
//	          -benchmarks TRu,CCS -policies baseline,DTexL -degradable
//	dtexlload -n 16 -c 16 -identical -expect-sims 1
//	          # coalescing demonstration: 16 concurrent identical
//	          # requests must execute exactly one simulation
//
// With -coord it instead audits a dtexlcoord fleet sweep (DESIGN.md
// §12): optionally flips bytes in shared-store entries to inject
// corruption, waits for the suite to settle, and asserts the failure
// counters:
//
//	dtexlload -coord http://127.0.0.1:8100 -await-timeout 10m \
//	          -corrupt-store shared/ -corrupt-n 2 \
//	          -expect-quarantined 0 -expect-reassigned-min 1
//	dtexlload -coord http://127.0.0.1:8100 -await-busy w2
//	          # block until worker w2 holds a lease (CI kills it then)
//
// Exit codes: 0 = contract held (shed, degraded, stall and timeout
// outcomes are all legal under load; fleet assertions met); 1 =
// contract violated (malformed accepted response, internal server
// error, nothing succeeded, or a fleet assertion failed).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtexl/internal/fleet"
	"dtexl/internal/netauth"
	"dtexl/internal/serve"
	"dtexl/internal/serve/client"
)

type outcomes struct {
	ok, okDegraded       atomic.Int64
	shed, stall, timeout atomic.Int64
	circuitOpen          atomic.Int64
	canceled             atomic.Int64
	violation            atomic.Int64
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8095", "service base URL")
		n          = flag.Int("n", 32, "total requests")
		c          = flag.Int("c", 8, "concurrent workers")
		benches    = flag.String("benchmarks", "TRu,CCS", "comma-separated benchmark aliases to cycle through")
		policies   = flag.String("policies", "baseline,DTexL", "comma-separated policies to cycle through")
		scale      = flag.Int("scale", 0, "request scale (0 = server default)")
		degradable = flag.Bool("degradable", false, "mark requests degradable (opt into the overload ladder)")
		identical  = flag.Bool("identical", false, "send every request to the same (benchmark, policy) cell — the coalescing demonstration: M concurrent requests join one in-flight simulation")
		expectSims = flag.Int("expect-sims", -1, "after the run, fail unless the server's /readyz sims_computed equals this (-1 = no check; pair with -identical against a fresh server)")
		deadline   = flag.Duration("deadline", 2*time.Minute, "per-request deadline (client side)")
		retries    = flag.Int("retries", 3, "client retry budget per request")
		verbose    = flag.Bool("v", false, "log each outcome")

		// Fleet audit mode (DESIGN.md §12).
		coord         = flag.String("coord", "", "coordinator base URL; when set, audit a fleet sweep instead of generating load")
		awaitTimeout  = flag.Duration("await-timeout", 10*time.Minute, "fleet: give up if the suite has not settled by then")
		awaitBusy     = flag.String("await-busy", "", "fleet: just block until this worker holds a lease, then exit (CI kill targeting)")
		expectQuar    = flag.Int("expect-quarantined", -1, "fleet: fail unless exactly this many cells are quarantined (-1 = no check)")
		expectReassig = flag.Int("expect-reassigned-min", 0, "fleet: fail unless at least this many leases were reassigned")
		corruptStore  = flag.String("corrupt-store", "", "fleet chaos: flip a byte in entries of this shared store directory before awaiting")
		corruptN      = flag.Int("corrupt-n", 1, "fleet chaos: how many store entries to corrupt")
		expectEpoch   = flag.Int("expect-epoch-min", 0, "fleet: fail unless the coordinator's epoch is at least this (HA failover assertion)")
	)
	var auth netauth.Flags
	auth.Register(flag.CommandLine)
	flag.Parse()

	// One authenticated client serves both modes: bearer token injected
	// by the transport, TLS roots from the -tls-* flags.
	hc, err := auth.Client(2 * time.Minute)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtexlload: %v\n", err)
		return 1
	}

	if *coord != "" {
		return runFleetAudit(hc, *coord, *awaitTimeout, *awaitBusy, *expectQuar, *expectReassig, *expectEpoch, *corruptStore, *corruptN, *verbose)
	}

	cl := client.New(*addr,
		client.WithHTTP(hc),
		client.WithRetries(*retries),
		client.WithBackoff(50*time.Millisecond, 2*time.Second),
		client.WithBreaker(5, 5*time.Second),
	)
	bs := strings.Split(*benches, ",")
	ps := strings.Split(*policies, ",")
	if *identical {
		bs, ps = bs[:1], ps[:1]
	}

	var (
		o    outcomes
		mu   sync.Mutex
		lats []time.Duration
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := serve.SimRequest{
					Benchmark:  bs[i%len(bs)],
					Policy:     ps[(i/len(bs))%len(ps)],
					Scale:      *scale,
					Degradable: *degradable,
				}
				ctx, cancel := context.WithTimeout(context.Background(), *deadline)
				start := time.Now()
				res, err := cl.Simulate(ctx, req)
				lat := time.Since(start)
				cancel()
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
				record(&o, req, res, err, *verbose)
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Printf("dtexlload: %d requests: ok=%d degraded=%d shed=%d stall=%d timeout=%d circuit-open=%d canceled=%d violations=%d\n",
		*n, o.ok.Load(), o.okDegraded.Load(), o.shed.Load(), o.stall.Load(),
		o.timeout.Load(), o.circuitOpen.Load(), o.canceled.Load(), o.violation.Load())
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("dtexlload: latency p50=%v p95=%v p99=%v max=%v\n",
			pct(lats, 50), pct(lats, 95), pct(lats, 99), lats[len(lats)-1])
	}

	// The server-side coalescing picture: how many requests joined an
	// in-flight identical run, and how many simulations actually
	// executed. With -identical against a fresh server, sims_computed
	// must be exactly 1 — the M→1 contract.
	if st, err := fetchReady(hc, *addr); err == nil {
		fmt.Printf("dtexlload: server: coalesced=%d flights=%d sims_computed=%d served=%d\n",
			st.Coalesced, st.FlightsStarted, st.SimsComputed, st.Served)
		if *expectSims >= 0 && st.SimsComputed != uint64(*expectSims) {
			fmt.Printf("dtexlload: FAIL: sims_computed=%d, want %d (coalescing or memo broken?)\n",
				st.SimsComputed, *expectSims)
			return 1
		}
	} else if *expectSims >= 0 {
		fmt.Printf("dtexlload: FAIL: cannot verify sims_computed: %v\n", err)
		return 1
	}

	if o.violation.Load() > 0 {
		fmt.Println("dtexlload: FAIL: contract violations observed")
		return 1
	}
	if o.ok.Load()+o.okDegraded.Load() == 0 {
		fmt.Println("dtexlload: FAIL: no request succeeded")
		return 1
	}
	return 0
}

// runFleetAudit watches a coordinator sweep. With awaitBusy it only
// blocks until that worker holds a lease (so CI can SIGKILL it at a
// guaranteed-interesting moment). Otherwise it optionally corrupts
// store entries, polls /fleet/stats until the suite settles, and
// asserts the failure counters.
func runFleetAudit(hc *http.Client, coord string, timeout time.Duration, awaitBusy string, expectQuar, expectReassignMin, expectEpochMin int, corruptStore string, corruptN int, verbose bool) int {
	deadline := time.Now().Add(timeout)
	corruptPending := corruptStore != ""
	for {
		// Inject corruption as soon as the sweep has produced entries to
		// corrupt — mid-run, so recomputation (not just render repair) is
		// exercised. Best-effort: a sweep that settles first is fine; the
		// checksum path is covered by unit tests either way.
		if corruptPending {
			n, err := corruptStoreEntries(corruptStore, corruptN)
			if err != nil {
				fmt.Printf("dtexlload: FAIL: corrupt-store: %v\n", err)
				return 1
			}
			if n > 0 {
				fmt.Printf("dtexlload: corrupted %d store entry(ies) under %s\n", n, corruptStore)
				corruptPending = false
			}
		}
		st, err := fetchFleetStats(hc, coord)
		if err != nil {
			if verbose {
				fmt.Fprintf(os.Stderr, "dtexlload: fleet stats: %v\n", err)
			}
		} else if awaitBusy != "" {
			for _, w := range st.Workers {
				if w.Name == awaitBusy && w.Live && w.ActiveLeases >= 1 {
					fmt.Printf("dtexlload: worker %s holds %d lease(s)\n", awaitBusy, w.ActiveLeases)
					return 0
				}
			}
		} else {
			if verbose {
				fmt.Fprintf(os.Stderr, "dtexlload: fleet: %d/%d done, %d leased, %d quarantined, %d reassigned\n",
					st.Done, st.Cells, st.Leased, st.Quarantined, st.Reassigned)
			}
			if st.SuiteDone {
				if corruptPending {
					fmt.Println("dtexlload: note: suite settled before any store entry existed to corrupt")
				}
				return checkFleetStats(st, expectQuar, expectReassignMin, expectEpochMin)
			}
		}
		if time.Now().After(deadline) {
			if awaitBusy != "" {
				fmt.Printf("dtexlload: FAIL: worker %s never held a lease within %v\n", awaitBusy, timeout)
			} else {
				fmt.Printf("dtexlload: FAIL: suite did not settle within %v\n", timeout)
			}
			return 1
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// checkFleetStats asserts the post-sweep failure counters.
func checkFleetStats(st *fleet.Stats, expectQuar, expectReassignMin, expectEpochMin int) int {
	fmt.Printf("dtexlload: fleet settled: node=%s epoch=%d cells=%d done=%d quarantined=%d reassigned=%d stolen=%d rejected=%d late=%d store-primed=%d\n",
		st.NodeID, st.Epoch, st.Cells, st.Done, st.Quarantined, st.Reassigned, st.Stolen, st.RejectedResults, st.LateResults, st.StorePrimed)
	for _, r := range st.Reassignments {
		fmt.Printf("dtexlload: reassigned %s from %s (%s)\n", r.Cell, r.Worker, r.Reason)
	}
	for _, q := range st.QuarantinedCells {
		fmt.Printf("dtexlload: quarantined %s after %d attempt(s)\n", q.Cell, q.Attempts)
	}
	code := 0
	if expectQuar >= 0 && st.Quarantined != expectQuar {
		fmt.Printf("dtexlload: FAIL: quarantined=%d, want %d\n", st.Quarantined, expectQuar)
		code = 1
	}
	if st.Reassigned < expectReassignMin {
		fmt.Printf("dtexlload: FAIL: reassigned=%d, want >= %d\n", st.Reassigned, expectReassignMin)
		code = 1
	}
	if st.Epoch < uint64(expectEpochMin) {
		fmt.Printf("dtexlload: FAIL: epoch=%d, want >= %d (no failover happened?)\n", st.Epoch, expectEpochMin)
		code = 1
	}
	return code
}

// corruptStoreEntries flips one byte in the middle of up to n store
// entries (sorted for determinism). The store's checksum must catch
// every flip: corrupted cells are dropped and recomputed, never served.
// Returns 0 (not an error) while the store is still empty so the audit
// loop can retry once the sweep has produced entries.
func corruptStoreEntries(dir string, n int) (int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, err
	}
	if len(names) == 0 {
		return 0, nil
	}
	sort.Strings(names)
	if n > len(names) {
		n = len(names)
	}
	for _, name := range names[:n] {
		raw, err := os.ReadFile(name)
		if err != nil {
			return 0, err
		}
		if len(raw) == 0 {
			continue
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// fetchFleetStats reads the coordinator's /fleet/stats.
func fetchFleetStats(hc *http.Client, coord string) (*fleet.Stats, error) {
	hres, err := hc.Get(strings.TrimRight(coord, "/") + fleet.PathStats)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet stats: status %d", hres.StatusCode)
	}
	var st fleet.Stats
	if err := json.NewDecoder(hres.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// fetchReady reads /readyz, decoding the body regardless of status (a
// draining server answers 503 with the same shape).
func fetchReady(hc *http.Client, addr string) (*serve.ReadyState, error) {
	hres, err := hc.Get(strings.TrimRight(addr, "/") + "/readyz")
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	var st serve.ReadyState
	if err := json.NewDecoder(hres.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// record classifies one request's result against the overload contract.
func record(o *outcomes, req serve.SimRequest, res *serve.SimResponse, err error, verbose bool) {
	logf := func(format string, args ...any) {
		if verbose {
			fmt.Fprintf(os.Stderr, "dtexlload: "+format+"\n", args...)
		}
	}
	if err == nil {
		// Accepted responses must be complete and honestly labeled: a
		// missing metrics block or a silent fidelity change is corruption.
		switch {
		case res.Metrics == nil || res.Metrics.Cycles <= 0:
			o.violation.Add(1)
			logf("VIOLATION %s/%s: accepted response missing metrics", req.Benchmark, req.Policy)
		case req.Scale != 0 && res.Scale != req.Scale && !res.Degraded:
			o.violation.Add(1)
			logf("VIOLATION %s/%s: scale %d served as %d without degraded label", req.Benchmark, req.Policy, req.Scale, res.Scale)
		case res.Degraded:
			o.okDegraded.Add(1)
			logf("ok (degraded to scale %d) %s/%s", res.Scale, req.Benchmark, req.Policy)
		default:
			o.ok.Add(1)
			logf("ok %s/%s %.1f fps", req.Benchmark, req.Policy, res.FPS)
		}
		return
	}
	var apiErr *client.APIError
	switch {
	case errors.Is(err, client.ErrCircuitOpen):
		o.circuitOpen.Add(1)
		logf("circuit open %s/%s", req.Benchmark, req.Policy)
	case errors.As(err, &apiErr):
		switch apiErr.Body.Kind {
		case serve.KindOverCapacity, serve.KindDraining:
			o.shed.Add(1)
			logf("shed (%s) %s/%s", apiErr.Body.Kind, req.Benchmark, req.Policy)
		case serve.KindStall:
			o.stall.Add(1)
			logf("stall %s/%s: %s", req.Benchmark, req.Policy, apiErr.Body.Error)
		case serve.KindTimeout:
			o.timeout.Add(1)
			logf("timeout %s/%s", req.Benchmark, req.Policy)
		case serve.KindCanceled:
			o.canceled.Add(1)
			logf("canceled %s/%s", req.Benchmark, req.Policy)
		default:
			o.violation.Add(1)
			logf("VIOLATION %s/%s: %v", req.Benchmark, req.Policy, err)
		}
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		o.timeout.Add(1)
		logf("client deadline %s/%s", req.Benchmark, req.Policy)
	default:
		// Network-level failure: during a drain smoke the listener
		// disappears mid-run, which is shedding, not corruption.
		o.shed.Add(1)
		logf("transport (%v) %s/%s", err, req.Benchmark, req.Policy)
	}
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}
