// Command dtexlsim runs one frame of one benchmark under one policy and
// prints its metrics — the single-configuration entry point into the
// simulator.
//
// Usage:
//
//	dtexlsim -bench TRu -policy DTexL [-width 1960 -height 768] [-seed 1]
//	dtexlsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dtexl"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
	"dtexl/internal/sim"
)

func main() {
	var (
		bench      = flag.String("bench", "TRu", "Table I benchmark alias")
		policy     = flag.String("policy", "baseline", "policy name (see -list)")
		width      = flag.Int("width", 0, "screen width in pixels (0 = Table II 1960)")
		height     = flag.Int("height", 0, "screen height in pixels (0 = Table II 768)")
		seed       = flag.Uint64("seed", 1, "scene generator seed")
		frames     = flag.Int("frames", 1, "animation frames to simulate with warm caches")
		upperBound = flag.Bool("upperbound", false, "run the Fig. 16 single-SC 4x-L1 bound")
		lateZ      = flag.Bool("latez", false, "disable Early-Z (shader-written depth path)")
		prefetch   = flag.Bool("prefetch", false, "enable decoupled texture prefetching")
		nuca       = flag.Bool("nuca", false, "shared address-interleaved L1 texture caches (S-NUCA)")
		scene      = flag.String("scene", "", "replay a scene trace (JSON) instead of generating -bench")
		timeline   = flag.String("timeline", "", "write a per-tile, per-SC execution timeline CSV (coupled runs)")
		dumpScene  = flag.String("dump-scene", "", "write the generated scene as a JSON trace and exit")
		list       = flag.Bool("list", false, "list benchmarks and policies, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Benchmarks (Table I):")
		for _, b := range dtexl.Benchmarks() {
			typ := "3D"
			if b.Is2D {
				typ = "2D"
			}
			fmt.Printf("  %-4s %-32s %-9s %s  %.1f MiB textures\n", b.Alias, b.Name, b.Genre, typ, b.TextureFootprintMiB)
		}
		fmt.Println("Policies:")
		for _, p := range dtexl.Policies() {
			fmt.Printf("  %s\n", p)
		}
		return
	}

	if *dumpScene != "" {
		f, err := os.Create(*dumpScene)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtexlsim:", err)
			os.Exit(1)
		}
		if err := dtexl.ExportScene(*bench, *width, *height, *seed, 0, f); err != nil {
			fmt.Fprintln(os.Stderr, "dtexlsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dtexlsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote scene trace %s\n", *dumpScene)
		return
	}

	if *timeline != "" {
		if err := writeTimeline(*timeline, *bench, *policy, *width, *height, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "dtexlsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote timeline %s\n", *timeline)
		return
	}

	res, err := dtexl.Run(dtexl.Config{
		Benchmark:  *bench,
		Policy:     *policy,
		Width:      *width,
		Height:     *height,
		Seed:       *seed,
		Frames:     *frames,
		UpperBound: *upperBound,
		LateZ:      *lateZ,
		Prefetch:   *prefetch,
		NUCA:       *nuca,
		ScenePath:  *scene,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtexlsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("policy           %s\n", res.Policy)
	fmt.Printf("frame cycles     %d\n", res.Cycles)
	fmt.Printf("FPS              %.2f\n", res.FPS)
	fmt.Printf("L2 accesses      %d\n", res.L2Accesses)
	fmt.Printf("L1 tex hit rate  %.4f\n", res.L1TexHitRate)
	fmt.Printf("DRAM accesses    %d\n", res.DRAMAccesses)
	fmt.Printf("quads shaded     %d\n", res.QuadsShaded)
	fmt.Printf("quads culled     %d (Early-Z)\n", res.QuadsCulled)
	fmt.Printf("time imbalance   %.2f%% (per-tile mean deviation)\n", 100*res.TimeImbalance)
	fmt.Printf("quad imbalance   %.2f%%\n", 100*res.QuadImbalance)
	fmt.Printf("energy           %.4f mJ\n", res.EnergyJoules*1e3)

	keys := make([]string, 0, len(res.Energy))
	for k := range res.Energy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := res.EnergyJoules * 1e9
	for _, k := range keys {
		fmt.Printf("  %-9s %6.2f%%\n", k, 100*res.Energy[k]/total)
	}
}

// writeTimeline runs one coupled simulation with timeline collection and
// writes tile,tx,ty,gate,finish_sc0..3 rows.
func writeTimeline(path, bench, policy string, width, height int, seed uint64) error {
	pol, err := core.PolicyByName(policy)
	if err != nil {
		return err
	}
	if pol.Decoupled {
		return fmt.Errorf("timelines are defined for coupled runs; %s is decoupled", pol.Name)
	}
	opt := sim.DefaultOptions()
	if width > 0 {
		opt.Width = width
	}
	if height > 0 {
		opt.Height = height
	}
	opt.Seed = seed
	res, err := sim.RunOneWith(bench, pol, opt, func(cfg *pipeline.Config) {
		cfg.CollectTimeline = true
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "tile,tx,ty,gate,finish_sc0,finish_sc1,finish_sc2,finish_sc3")
	for _, tt := range res.Metrics.Timeline {
		fmt.Fprintf(f, "%d,%d,%d,%d", tt.Seq, tt.TX, tt.TY, tt.Gate)
		for _, fin := range tt.Finish {
			fmt.Fprintf(f, ",%d", fin)
		}
		fmt.Fprintln(f)
	}
	return nil
}
