// Command benchguard compares two `go test -bench` output files and
// fails when the geometric mean of the per-benchmark ns/op ratios
// (new/old) regresses beyond a threshold. It is the deterministic gate
// behind the CI bench job: benchstat renders the human-readable deltas,
// benchguard decides pass/fail.
//
// Each benchmark's repeated measurements (-count=N) collapse to their
// median, which tolerates one or two noisy runs per benchmark; the
// geomean across benchmarks tolerates a single benchmark jumping on a
// noisy runner without letting a broad slowdown through.
//
// Usage:
//
//	benchguard -old BENCH_baseline.txt -new bench_new.txt -threshold 0.15 [-json report.json]
//
// -json additionally writes the comparison as a perfdb.Report — the
// machine-readable artifact the continuous-perf service ingests
// (`dtexlperf ingest`); its exact shape is locked by this command's
// golden-file test.
//
// Exit codes: 0 = within threshold; 1 = regression; 2 = bad input (a
// file is unreadable, or no benchmark appears in both files).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"dtexl/internal/perfdb"
	"dtexl/internal/stats"
)

// buildReport compares two parsed bench runs over their common
// benchmarks. Pure: the testable core of the command.
func buildReport(oldName, newName string, oldRuns, newRuns map[string][]float64, threshold float64) (*perfdb.Report, error) {
	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		if _, ok := newRuns[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no benchmark appears in both files")
	}

	rep := &perfdb.Report{Old: oldName, New: newName, Threshold: threshold}
	logSum := 0.0
	for _, name := range names {
		o := stats.Median(oldRuns[name])
		n := stats.Median(newRuns[name])
		ratio := n / o
		logSum += math.Log(ratio)
		rep.Benchmarks = append(rep.Benchmarks, perfdb.BenchmarkReport{
			Name:       name,
			OldNsPerOp: o,
			NewNsPerOp: n,
			Ratio:      ratio,
			OldSamples: oldRuns[name],
			NewSamples: newRuns[name],
		})
	}
	rep.GeomeanRatio = math.Exp(logSum / float64(len(names)))
	rep.Pass = rep.GeomeanRatio <= 1+threshold
	return rep, nil
}

// render prints the human-readable table the CI log shows.
func render(w io.Writer, rep *perfdb.Report) {
	fmt.Fprintf(w, "%-50s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(w, "%-50s %12.1f %12.1f %7.3fx\n", b.Name, b.OldNsPerOp, b.NewNsPerOp, b.Ratio)
	}
	fmt.Fprintf(w, "geomean ratio: %.3fx over %d benchmarks (threshold %.3fx)\n",
		rep.GeomeanRatio, len(rep.Benchmarks), 1+rep.Threshold)
}

// marshalReport renders the -json artifact: indented, trailing
// newline, fields in struct order — the golden-file test pins these
// bytes.
func marshalReport(rep *perfdb.Report) ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perfdb.ParseGoBenchSamples(f)
}

func main() {
	oldPath := flag.String("old", "BENCH_baseline.txt", "baseline benchmark output")
	newPath := flag.String("new", "", "candidate benchmark output")
	threshold := flag.Float64("threshold", 0.15, "maximum allowed geomean slowdown (0.15 = +15%)")
	jsonPath := flag.String("json", "", "also write the comparison as a JSON report (ingestible by dtexlperf)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -new is required")
		os.Exit(2)
	}
	oldRuns, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	newRuns, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	rep, err := buildReport(*oldPath, *newPath, oldRuns, newRuns, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	render(os.Stdout, rep)
	if *jsonPath != "" {
		data, err := marshalReport(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchguard: geomean regression %.1f%% exceeds %.1f%%\n",
			(rep.GeomeanRatio-1)*100, *threshold*100)
		os.Exit(1)
	}
}
