// Command benchguard compares two `go test -bench` output files and
// fails when the geometric mean of the per-benchmark ns/op ratios
// (new/old) regresses beyond a threshold. It is the deterministic gate
// behind the CI bench job: benchstat renders the human-readable deltas,
// benchguard decides pass/fail.
//
// Each benchmark's repeated measurements (-count=N) collapse to their
// median, which tolerates one or two noisy runs per benchmark; the
// geomean across benchmarks tolerates a single benchmark jumping on a
// noisy runner without letting a broad slowdown through.
//
// Usage:
//
//	benchguard -old BENCH_baseline.txt -new bench_new.txt -threshold 0.15
//
// Exit codes: 0 = within threshold; 1 = regression; 2 = bad input (a
// file is unreadable, or no benchmark appears in both files).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parse reads a benchmark output file into name -> ns/op samples. The
// trailing -N GOMAXPROCS suffix is stripped so baselines survive runner
// core-count changes.
func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v <= 0 {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	oldPath := flag.String("old", "BENCH_baseline.txt", "baseline benchmark output")
	newPath := flag.String("new", "", "candidate benchmark output")
	threshold := flag.Float64("threshold", 0.15, "maximum allowed geomean slowdown (0.15 = +15%)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -new is required")
		os.Exit(2)
	}
	oldRuns, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	newRuns, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		if _, ok := newRuns[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark appears in both files")
		os.Exit(2)
	}

	logSum := 0.0
	fmt.Printf("%-50s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		o := median(oldRuns[name])
		n := median(newRuns[name])
		ratio := n / o
		logSum += math.Log(ratio)
		fmt.Printf("%-50s %12.1f %12.1f %7.3fx\n", name, o, n, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Printf("geomean ratio: %.3fx over %d benchmarks (threshold %.3fx)\n",
		geomean, len(names), 1+*threshold)
	if geomean > 1+*threshold {
		fmt.Fprintf(os.Stderr, "benchguard: geomean regression %.1f%% exceeds %.1f%%\n",
			(geomean-1)*100, *threshold*100)
		os.Exit(1)
	}
}
