package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtexl/internal/perfdb"
)

var update = flag.Bool("update", false, "rewrite golden files")

func parseFixture(t *testing.T, name string) map[string][]float64 {
	t.Helper()
	runs, err := parseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return runs
}

func fixtureReport(t *testing.T, threshold float64) *perfdb.Report {
	t.Helper()
	rep, err := buildReport("testdata/bench_old.txt", "testdata/bench_new.txt",
		parseFixture(t, "bench_old.txt"), parseFixture(t, "bench_new.txt"), threshold)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	return rep
}

// TestReportJSONGolden pins the exact bytes of the -json artifact.
// The report is a published interface: dtexlperf ingests it and the
// CI perf-ingest job round-trips it through the perf API, so its
// shape — field names, ordering, indentation, trailing newline — must
// not drift silently. Regenerate with `go test ./cmd/benchguard -update`
// and review the diff like any API change.
func TestReportJSONGolden(t *testing.T) {
	rep := fixtureReport(t, 0.15)
	got, err := marshalReport(rep)
	if err != nil {
		t.Fatalf("marshalReport: %v", err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON report drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportGoldenIngestible guards the other half of the contract:
// the exact golden bytes must parse back through perfdb's benchguard
// ingester. A golden regenerated into a shape perfdb cannot read
// fails here even though the byte comparison above passes.
func TestReportGoldenIngestible(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "report_golden.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got := perfdb.DetectFormat(data); got != perfdb.FormatBenchguard {
		t.Fatalf("DetectFormat on golden = %q, want %q", got, perfdb.FormatBenchguard)
	}
	points, err := perfdb.ParseBenchguardJSON(data, "deadbeef")
	if err != nil {
		t.Fatalf("ParseBenchguardJSON on golden: %v", err)
	}
	want := map[string]bool{
		"BenchmarkHotLoop":         false,
		"BenchmarkScheduler/small": false,
		"benchguard.geomean_ratio": false,
	}
	for _, p := range points {
		if _, ok := want[p.Series]; ok {
			want[p.Series] = true
		}
	}
	for series, seen := range want {
		if !seen {
			t.Errorf("golden report ingest lost series %q (got %d points)", series, len(points))
		}
	}
}

func TestBuildReportMediansAndGeomean(t *testing.T) {
	rep := fixtureReport(t, 0.15)

	// Only benchmarks present in both files are compared; each side's
	// single-sided benchmark is dropped.
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (single-sided dropped): %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	hot := rep.Benchmarks[0]
	if hot.Name != "BenchmarkHotLoop" {
		t.Fatalf("benchmarks not sorted by name: first is %q", hot.Name)
	}
	// Medians of the fixture samples: old {1000000,1040000,980000} ->
	// 1000000; new {1250000,1230000,1275000} -> 1250000.
	if hot.OldNsPerOp != 1000000 || hot.NewNsPerOp != 1250000 {
		t.Errorf("HotLoop medians = %v/%v, want 1000000/1250000", hot.OldNsPerOp, hot.NewNsPerOp)
	}
	if math.Abs(hot.Ratio-1.25) > 1e-9 {
		t.Errorf("HotLoop ratio = %v, want 1.25", hot.Ratio)
	}
	// Scheduler medians: old {20000,20400,19800} -> 20000; new
	// {19000,19500,18800} -> 19000.
	sched := rep.Benchmarks[1]
	if math.Abs(sched.Ratio-0.95) > 1e-9 {
		t.Errorf("Scheduler ratio = %v, want 0.95", sched.Ratio)
	}
	wantGeo := math.Sqrt(1.25 * 0.95)
	if math.Abs(rep.GeomeanRatio-wantGeo) > 1e-9 {
		t.Errorf("geomean = %v, want %v", rep.GeomeanRatio, wantGeo)
	}
	// geomean ≈ 1.098: passes at 15%, fails at 5%.
	if !rep.Pass {
		t.Errorf("Pass = false at threshold 0.15, geomean %v", rep.GeomeanRatio)
	}
	if strict := fixtureReport(t, 0.05); strict.Pass {
		t.Errorf("Pass = true at threshold 0.05, geomean %v", strict.GeomeanRatio)
	}
}

func TestBuildReportNoCommonBenchmarks(t *testing.T) {
	_, err := buildReport("a", "b",
		map[string][]float64{"BenchmarkA": {1}},
		map[string][]float64{"BenchmarkB": {1}}, 0.15)
	if err == nil {
		t.Fatal("expected error when no benchmark appears in both files")
	}
}

// TestReportJSONShape walks the golden as untyped JSON: even if the
// Go struct and the golden are regenerated together, the wire names
// the rest of the tooling greps for must survive.
func TestReportJSONShape(t *testing.T) {
	rep := fixtureReport(t, 0.15)
	data, err := marshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("report is not a JSON object: %v", err)
	}
	for _, key := range []string{"old", "new", "threshold", "benchmarks", "geomean_ratio", "pass"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report missing top-level key %q", key)
		}
	}
	rows, ok := m["benchmarks"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("benchmarks is %T with %v entries", m["benchmarks"], rows)
	}
	row, ok := rows[0].(map[string]any)
	if !ok {
		t.Fatalf("benchmark row is %T", rows[0])
	}
	for _, key := range []string{"name", "old_ns_per_op", "new_ns_per_op", "ratio", "old_samples_ns", "new_samples_ns"} {
		if _, ok := row[key]; !ok {
			t.Errorf("benchmark row missing key %q", key)
		}
	}
}

func TestRenderHumanOutput(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, fixtureReport(t, 0.15))
	out := buf.String()
	for _, want := range []string{"BenchmarkHotLoop", "1.250x", "geomean ratio:", "over 2 benchmarks"} {
		if !strings.Contains(out, want) {
			t.Errorf("human output missing %q:\n%s", want, out)
		}
	}
}
