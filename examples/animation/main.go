// Animation: simulate several consecutive frames of a panning camera
// with warm caches. The shared L2 retains part of the texture working
// set that consecutive frames re-reference, trimming per-frame DRAM
// traffic, while DTexL's L1-level advantage is per-frame and persists.
//
//	go run ./examples/animation
package main

import (
	"fmt"
	"log"

	"dtexl"
)

func main() {
	const (
		game   = "SoD" // Sonic Dash: a side-scroller, fitting the panning camera
		width  = 980
		height = 384
		frames = 5
	)

	fmt.Printf("%s animation, %d frames at %dx%d\n\n", game, frames, width, height)
	fmt.Printf("%-10s %12s %12s %14s\n", "run", "avg FPS", "L2/frame", "DRAM/frame")
	for _, policy := range []string{"baseline", "DTexL"} {
		// Single cold frame vs the full warm animation.
		one, err := dtexl.Run(dtexl.Config{Benchmark: game, Policy: policy, Width: width, Height: height})
		if err != nil {
			log.Fatal(err)
		}
		anim, err := dtexl.Run(dtexl.Config{Benchmark: game, Policy: policy, Width: width, Height: height, Frames: frames})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.1f %12d %14d   (cold frame)\n", policy, one.FPS, one.L2Accesses, one.DRAMAccesses)
		fmt.Printf("%-10s %12.1f %12d %14d   (%d warm frames)\n", "",
			anim.FPS, anim.L2Accesses/uint64(frames), anim.DRAMAccesses/uint64(frames), frames)
	}
	fmt.Println("\nWarm frames fetch less from DRAM: the part of the texture set the")
	fmt.Println("1 MiB L2 can retain next to the framebuffer traffic persists across")
	fmt.Println("frames. The L1-replication effect DTexL attacks is per-frame, so")
	fmt.Println("its L2-access advantage fully survives warming — matching the")
	fmt.Println("paper's observation that DTexL changes L2 accesses, not L2 misses.")
}
