// Quickstart: simulate one frame of a Table I game under the paper's
// baseline and under DTexL, and compare the headline metrics — the
// smallest end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dtexl"
)

func main() {
	// Half the Table II resolution keeps the example snappy; drop the
	// Width/Height overrides to run the paper's full 1960x768.
	const (
		game   = "TRu" // Temple Run
		width  = 980
		height = 384
	)

	baseline, err := dtexl.Run(dtexl.Config{
		Benchmark: game,
		Policy:    "baseline", // FG-xshift2, Z-order, coupled barriers
		Width:     width,
		Height:    height,
	})
	if err != nil {
		log.Fatal(err)
	}

	proposed, err := dtexl.Run(dtexl.Config{
		Benchmark: game,
		Policy:    "DTexL", // CG-square, Hilbert order, HLB-flp2, decoupled
		Width:     width,
		Height:    height,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Benchmark: %s (%dx%d)\n\n", game, width, height)
	fmt.Printf("%-22s %14s %14s\n", "", "baseline", "DTexL")
	fmt.Printf("%-22s %14.1f %14.1f\n", "FPS", baseline.FPS, proposed.FPS)
	fmt.Printf("%-22s %14d %14d\n", "L2 accesses", baseline.L2Accesses, proposed.L2Accesses)
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", "L1 texture hit rate", 100*baseline.L1TexHitRate, 100*proposed.L1TexHitRate)
	fmt.Printf("%-22s %13.2fm %13.2fm\n", "energy (mJ)", baseline.EnergyJoules*1e3, proposed.EnergyJoules*1e3)
	fmt.Println()
	fmt.Printf("speedup:      %.2fx\n", proposed.FPS/baseline.FPS)
	fmt.Printf("L2 decrease:  %.1f%%\n", 100*(1-float64(proposed.L2Accesses)/float64(baseline.L2Accesses)))
	fmt.Printf("energy saved: %.1f%%\n", 100*(1-proposed.EnergyJoules/baseline.EnergyJoules))
}
