// Tile-order study: with the coarse grouping and decoupled barriers
// fixed, walk the Fig. 8 subtile mappings — Z-order, Hilbert and S-order
// traversals with constant or flip assignments — and see how shared-edge
// awareness buys the last few points of L2 reduction.
//
//	go run ./examples/tileorder_study
package main

import (
	"fmt"
	"log"

	"dtexl"
)

// The subtile mappings of Fig. 8, in figure order.
var mappings = []string{
	"Zorder-const", "Zorder-flp",
	"HLB-const", "HLB-flp1", "HLB-flp2", "HLB-flp3",
	"Sorder-const", "Sorder-flp",
}

func main() {
	const (
		game   = "CRa" // City Racing 3D: big textures, anisotropic filtering
		width  = 980
		height = 384
	)

	base, err := dtexl.Run(dtexl.Config{Benchmark: game, Policy: "baseline", Width: width, Height: height})
	if err != nil {
		log.Fatal(err)
	}
	bound, err := dtexl.Run(dtexl.Config{Benchmark: game, UpperBound: true, Width: width, Height: height})
	if err != nil {
		log.Fatal(err)
	}
	boundDec := 100 * (1 - float64(bound.L2Accesses)/float64(base.L2Accesses))

	fmt.Printf("Subtile mapping study on %s (%dx%d), decoupled pipeline\n\n", game, width, height)
	fmt.Printf("%-14s %14s %14s %10s\n", "mapping", "L2 decrease", "gap closed", "speedup")
	for _, mname := range mappings {
		res, err := dtexl.Run(dtexl.Config{Benchmark: game, Policy: mname, Width: width, Height: height})
		if err != nil {
			log.Fatal(err)
		}
		dec := 100 * (1 - float64(res.L2Accesses)/float64(base.L2Accesses))
		fmt.Printf("%-14s %13.1f%% %13.1f%% %9.3fx\n",
			mname, dec, 100*dec/boundDec, res.FPS/base.FPS)
	}
	fmt.Printf("%-14s %13.1f%% %13.1f%%\n", "upper bound", boundDec, 100.0)
	fmt.Println("\nThe upper bound is a single SC with one 4x-capacity L1 — no")
	fmt.Println("replication by construction (conservative, not achievable).")
}
