// Render a frame: simulate one synthetic benchmark frame with the color
// pipeline enabled and write the image to a PPM file — useful for
// eyeballing the generated workloads and for checking the §III-C
// invariant that every scheduler renders the identical frame.
//
//	go run ./examples/render_frame [-bench CRa] [-o frame.ppm]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"dtexl"
)

func main() {
	bench := flag.String("bench", "CRa", "Table I benchmark alias")
	out := flag.String("o", "frame.ppm", "output PPM path")
	flag.Parse()

	const (
		width  = 980
		height = 384
	)

	// Render under two very different policies and verify the images are
	// bit-identical before writing one of them out.
	var imgBase, imgDTexL bytes.Buffer
	resBase, err := dtexl.RenderPPM(dtexl.Config{
		Benchmark: *bench, Policy: "baseline", Width: width, Height: height,
	}, &imgBase)
	if err != nil {
		log.Fatal(err)
	}
	resProp, err := dtexl.RenderPPM(dtexl.Config{
		Benchmark: *bench, Policy: "DTexL", Width: width, Height: height,
	}, &imgDTexL)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(imgBase.Bytes(), imgDTexL.Bytes()) {
		log.Fatal("scheduling changed the rendered image — pipeline correctness violated")
	}

	if err := os.WriteFile(*out, imgBase.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%dx%d, %d bytes)\n", *out, width, height, imgBase.Len())
	fmt.Printf("baseline: %.1f fps   DTexL: %.1f fps   (identical image, %.2fx speedup)\n",
		resBase.FPS, resProp.FPS, resProp.FPS/resBase.FPS)
}
