// Energy breakdown: where does DTexL's energy saving come from? Run the
// baseline, the decoupled baseline, and DTexL on one game and print the
// per-component energy — static energy falls with execution time and L2
// energy falls with L2 accesses, while the compute components stay put
// (§V-C3 of the paper).
//
//	go run ./examples/energy_breakdown
package main

import (
	"fmt"
	"log"
	"sort"

	"dtexl"
)

func main() {
	const (
		game   = "GTr" // Gravitytetris: the paper's best case (10.6% saving)
		width  = 980
		height = 384
	)

	policies := []string{"baseline", "baseline-decoupled", "DTexL"}
	results := make(map[string]*dtexl.Result, len(policies))
	for _, p := range policies {
		res, err := dtexl.Run(dtexl.Config{Benchmark: game, Policy: p, Width: width, Height: height})
		if err != nil {
			log.Fatal(err)
		}
		results[p] = res
	}

	components := make([]string, 0, len(results["baseline"].Energy))
	for c := range results["baseline"].Energy {
		components = append(components, c)
	}
	sort.Strings(components)

	fmt.Printf("GPU energy breakdown on %s (%dx%d), in microjoules\n\n", game, width, height)
	fmt.Printf("%-10s", "component")
	for _, p := range policies {
		fmt.Printf("%20s", p)
	}
	fmt.Println()
	for _, c := range components {
		fmt.Printf("%-10s", c)
		for _, p := range policies {
			fmt.Printf("%20.1f", results[p].Energy[c]*1e-3)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "TOTAL")
	for _, p := range policies {
		fmt.Printf("%20.1f", results[p].EnergyJoules*1e6)
	}
	fmt.Println()

	base := results["baseline"].EnergyJoules
	fmt.Println()
	for _, p := range policies[1:] {
		fmt.Printf("%-20s saves %5.2f%% total energy (speedup %.2fx)\n",
			p, 100*(1-results[p].EnergyJoules/base),
			results[p].FPS/results["baseline"].FPS)
	}
	fmt.Println("\nNote how 'static' shrinks with frame time and 'l2' shrinks with")
	fmt.Println("L2 accesses, while 'alu'/'l1'/'sampling' are invariant: the same")
	fmt.Println("quads execute the same shader work under every scheduler.")
}
