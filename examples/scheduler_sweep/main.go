// Scheduler sweep: explore the Fig. 6 design space — all ten quad
// groupings on the non-decoupled architecture — and print the
// locality/balance trade-off that motivates the whole paper: fine-grained
// groupings balance load, coarse-grained groupings cut L2 accesses, and
// neither alone wins on FPS.
//
//	go run ./examples/scheduler_sweep
package main

import (
	"fmt"
	"log"

	"dtexl"
)

// The groupings of Fig. 6, fine-grained first.
var groupings = []string{
	"FG-checker", "FG-xshift2", "FG-xshift1", "FG-xshift3", "FG-vpair", "FG-hpair",
	"CG-square", "CG-xrect", "CG-yrect", "CG-tri",
}

func main() {
	const (
		game   = "CCS" // Candy Crush Saga: 2D, no Early-Z relief
		width  = 980
		height = 384
	)

	base, err := dtexl.Run(dtexl.Config{Benchmark: game, Policy: "FG-xshift2", Width: width, Height: height})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Quad grouping sweep on %s (%dx%d), coupled barriers\n\n", game, width, height)
	fmt.Printf("%-12s %12s %14s %14s %10s\n",
		"grouping", "norm. L2", "quad imbal.", "time imbal.", "speedup")
	for _, g := range groupings {
		res, err := dtexl.Run(dtexl.Config{Benchmark: game, Policy: g, Width: width, Height: height})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.3f %13.1f%% %13.1f%% %9.3fx\n",
			g,
			float64(res.L2Accesses)/float64(base.L2Accesses),
			100*res.QuadImbalance,
			100*res.TimeImbalance,
			res.FPS/base.FPS)
	}
	fmt.Println("\nReading the table: CG rows trade a ~2x L2 reduction for ~10x")
	fmt.Println("worse load balance, so their coupled-pipeline speedup stays ~1.0 —")
	fmt.Println("exactly the tension Figs. 11-13 of the paper document.")
}
