package dtexl

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment end to
// end (every simulation run it needs) and reports the figure's headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benchmarks default to 1/4 of the
// Table II resolution over the full ten-game suite; -short drops to 1/8
// over a three-game subset. cmd/dtexlbench prints the full per-benchmark
// rows at any scale, including the paper's native 1960x768.

import (
	"io"
	"testing"

	"dtexl/internal/sim"
)

// benchOptions picks the benchmark operating point.
func benchOptions(b *testing.B) sim.Options {
	b.Helper()
	if testing.Short() {
		o := sim.ScaledOptions(8)
		o.Benchmarks = []string{"TRu", "CCS", "GTr"}
		return o
	}
	return sim.ScaledOptions(4)
}

func lastCol(row sim.TableRow) float64 { return row.Values[len(row.Values)-1] }

func findRow(t *sim.Table, name string) sim.TableRow {
	for _, r := range t.Rows {
		if r.Name == name {
			return r
		}
	}
	return sim.TableRow{}
}

// BenchmarkFig1 regenerates Figure 1: thread-per-SC imbalance of the
// load-balancing vs texture-locality schedulers.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "TL (CG-square)")), "TL/LB_imbalance_x")
	}
}

// BenchmarkFig2 regenerates Figure 2: normalized L2 accesses of the
// texture-locality scheduler.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(t.Rows[0]), "TL/LB_L2_ratio")
	}
}

// BenchmarkFig11 regenerates Figure 11: L2 accesses across the ten Fig. 6
// quad groupings. Reports the paper's headline pair: CG-square and
// CG-yrect normalized L2.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "CG-square")), "CGsquare_L2_ratio")
		b.ReportMetric(lastCol(findRow(t, "CG-yrect")), "CGyrect_L2_ratio")
	}
}

// BenchmarkFig12 regenerates Figure 12: quad-distribution imbalance
// across the groupings (paper: ~6-10x for the CG rectangles).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "CG-square")), "CGsquare_imbalance_x")
		b.ReportMetric(lastCol(findRow(t, "CG-yrect")), "CGyrect_imbalance_x")
	}
}

// BenchmarkFig13 regenerates Figure 13: CG speedups WITHOUT decoupling
// (paper: ~1.0 — the null result).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "CG-square")), "CGsquare_speedup")
		b.ReportMetric(lastCol(findRow(t, "CG-yrect")), "CGyrect_speedup")
	}
}

// BenchmarkFig14 regenerates Figure 14: violins of per-tile SC
// execution-time imbalance. Reports the suite-mean of the FG and CG
// violin means (%).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		fg, cg, nfg, ncg := 0.0, 0.0, 0, 0
		for _, row := range t.Rows {
			if row.Config == "FG-xshift2" {
				fg += row.Summary.Mean
				nfg++
			} else {
				cg += row.Summary.Mean
				ncg++
			}
		}
		b.ReportMetric(fg/float64(nfg), "FG_time_dev_%")
		b.ReportMetric(cg/float64(ncg), "CG_time_dev_%")
	}
}

// BenchmarkFig15 regenerates Figure 15: violins of per-tile quad-count
// imbalance.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		fg, cg, nfg, ncg := 0.0, 0.0, 0, 0
		for _, row := range t.Rows {
			if row.Config == "FG-xshift2" {
				fg += row.Summary.Mean
				nfg++
			} else {
				cg += row.Summary.Mean
				ncg++
			}
		}
		b.ReportMetric(fg/float64(nfg), "FG_quad_dev_%")
		b.ReportMetric(cg/float64(ncg), "CG_quad_dev_%")
	}
}

// BenchmarkFig16 regenerates Figure 16: L2-access decrease of the eight
// subtile mappings plus the single-SC upper bound (paper: ~40.7% const,
// ~46.5-46.8% flips, gap to the bound ~80% closed).
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "Zorder-const")), "Zconst_L2dec_%")
		b.ReportMetric(lastCol(findRow(t, "HLB-flp2")), "HLBflp2_L2dec_%")
		b.ReportMetric(lastCol(findRow(t, "UpperBound")), "bound_L2dec_%")
	}
}

// BenchmarkFig17 regenerates Figure 17: DTexL and decoupled-baseline
// speedups (paper: 1.2x and 1.09x).
func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "DTexL(HLB-flp2)")), "DTexL_speedup")
		b.ReportMetric(lastCol(findRow(t, "baseline-decoupled")), "FGdec_speedup")
	}
}

// BenchmarkFig18 regenerates Figure 18: total-GPU-energy decrease
// (paper: 6.3% DTexL, 3% decoupled baseline).
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "DTexL(HLB-flp2)")), "DTexL_energy_dec_%")
		b.ReportMetric(lastCol(findRow(t, "baseline-decoupled")), "FGdec_energy_dec_%")
	}
}

// BenchmarkTab1 regenerates Table I: the benchmark characterization.
func BenchmarkTab1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		if err := r.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab2 regenerates Table II: the simulation parameters.
func BenchmarkTab2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := sim.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblTileOrder, BenchmarkAblWarpSlots and BenchmarkAblL1Size run
// the ablations beyond the paper that DESIGN.md calls out.
func BenchmarkAblTileOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblTileOrder()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "order:hilbert-rect")), "hilbertrect_L2dec_%")
		b.ReportMetric(lastCol(findRow(t, "order:scanline")), "scanline_L2dec_%")
	}
}

func BenchmarkAblWarpSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblWarpSlots()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "2 warps")), "speedup_2warps")
		b.ReportMetric(lastCol(findRow(t, "16 warps")), "speedup_16warps")
	}
}

func BenchmarkAblL1Size(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblL1Size()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "8KiB L1")), "L2dec_8KiB_%")
		b.ReportMetric(lastCol(findRow(t, "64KiB L1")), "L2dec_64KiB_%")
	}
}

func BenchmarkAblFIFODepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblFIFODepth()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "depth 1")), "speedup_depth1")
		b.ReportMetric(lastCol(findRow(t, "depth 8")), "speedup_depth8")
	}
}

func BenchmarkAblTileSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblTileSize()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "16x16 tiles")), "speedup_16px")
		b.ReportMetric(lastCol(findRow(t, "64x64 tiles")), "speedup_64px")
	}
}

func BenchmarkAblLateZ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblLateZ()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "Early-Z")), "speedup_earlyz")
		b.ReportMetric(lastCol(findRow(t, "Late-Z")), "speedup_latez")
	}
}

func BenchmarkAblPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblPrefetch()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "baseline+prefetch")), "speedup_prefetch_only")
		b.ReportMetric(lastCol(findRow(t, "DTexL+prefetch")), "speedup_dtexl_prefetch")
	}
}

// BenchmarkFrameBaseline and BenchmarkFrameDTexL measure raw simulator
// throughput for one frame — the conventional performance benchmarks of
// the simulator itself.
func BenchmarkFrameBaseline(b *testing.B) {
	benchFrame(b, "baseline")
}

func BenchmarkFrameDTexL(b *testing.B) {
	benchFrame(b, "DTexL")
}

func benchFrame(b *testing.B, policy string) {
	b.Helper()
	opt := benchOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Benchmark: "TRu",
			Policy:    policy,
			Width:     opt.Width,
			Height:    opt.Height,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.FPS, "simulated_fps")
		}
	}
}

// BenchmarkSuiteSweep is the end-to-end evaluation benchmark: one
// iteration warms every simulation the paper's figures need and then
// renders all experiments, exactly the shape of `dtexlbench -exp all`.
// This is the number the memoization layers (scene store, prepared
// frames, config-keyed run memo) are judged by; it reports the phase
// split and the memo hit rate alongside wall time.
func BenchmarkSuiteSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		if err := r.WarmAll(); err != nil {
			b.Fatal(err)
		}
		for _, id := range sim.ExperimentIDs() {
			if err := r.RunExperiment(id, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		if i == 0 {
			tm := r.Timing()
			b.ReportMetric(float64(tm.SimHits), "memo_hits")
			b.ReportMetric(tm.Prepare.Seconds(), "prep_s")
			b.ReportMetric(tm.Raster.Seconds(), "raster_s")
		}
	}
}

// BenchmarkBgIMR runs the TBR-vs-IMR background comparison (§II,
// Antochi et al.'s external-traffic factor).
func BenchmarkBgIMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.BgIMR()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "DRAM traffic (IMR/TBR)")), "IMR/TBR_dram_x")
	}
}

// BenchmarkAblNUCA compares DTexL with the S-NUCA shared-L1 alternative.
func BenchmarkAblNUCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblNUCA()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "speedup: S-NUCA (FG, coupled)")), "speedup_nuca")
		b.ReportMetric(lastCol(findRow(t, "L2 dec%: S-NUCA (FG, coupled)")), "L2dec_nuca_%")
	}
}

// BenchmarkAblWarpSched sweeps the intra-SC warp scheduler policies.
func BenchmarkAblWarpSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchOptions(b))
		t, err := r.AblWarpSched()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastCol(findRow(t, "earliest-ready")), "speedup_earliest")
		b.ReportMetric(lastCol(findRow(t, "round-robin")), "speedup_rr")
	}
}
