package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dtexl/internal/core"
	"dtexl/internal/sim"
)

// testConfig sizes the server small and slow-to-overload: one slot, one
// waiting-room position, scale-8 cells. Admission capacity is exactly 2
// in-flight requests; everything beyond that must shed or degrade.
func testConfig() Config {
	return Config{
		Scale:       8,
		Seed:        1,
		Concurrency: 1,
		QueueDepth:  1,
		CellBudget:  time.Minute,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one SimRequest and decodes either body shape.
func post(t *testing.T, url string, req SimRequest) (int, *SimResponse, *ErrorResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	hres, err := http.Post(url+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	defer hres.Body.Close()
	if hres.StatusCode == http.StatusOK {
		var out SimResponse
		if err := json.NewDecoder(hres.Body).Decode(&out); err != nil {
			t.Fatalf("bad 200 body: %v", err)
		}
		return hres.StatusCode, &out, nil, hres.Header
	}
	var eres ErrorResponse
	if err := json.NewDecoder(hres.Body).Decode(&eres); err != nil {
		t.Fatalf("status %d with undecodable body: %v", hres.StatusCode, err)
	}
	return hres.StatusCode, nil, &eres, hres.Header
}

// --- admission lane unit tests ---

func TestLaneAdmitSheds(t *testing.T) {
	l := newLane(1, 1)
	rel1, err := l.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second occupant parks in the waiting room (cancellably).
	queued := make(chan error, 1)
	go func() {
		rel2, err := l.admit(context.Background())
		if err == nil {
			defer rel2()
		}
		queued <- err
	}()
	// Wait until it holds the queue token so the third attempt is
	// deterministic.
	for i := 0; l.waiting.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, err := l.admit(context.Background()); err != ErrOverCapacity {
		t.Fatalf("third admit err = %v, want ErrOverCapacity", err)
	}
	if got := l.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	rel1()
	if err := <-queued; err != nil {
		t.Fatalf("queued admit failed after release: %v", err)
	}
}

func TestLaneAdmitCancelWhileQueued(t *testing.T) {
	l := newLane(1, 1)
	rel, err := l.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.admit(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued admit err = %v, want DeadlineExceeded", err)
	}
	// The cancelled waiter must have freed its queue position: a new
	// arrival can park again instead of shedding.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := l.admit(ctx2); err != context.DeadlineExceeded {
		t.Fatalf("re-queued admit err = %v, want DeadlineExceeded (queue position leaked?)", err)
	}
}

func TestRetryAfterEstimate(t *testing.T) {
	l := newLane(2, 4)
	if got := l.retryAfter(time.Minute); got != time.Second {
		t.Errorf("idle lane retryAfter = %v, want the 1s floor", got)
	}
	l.active.Store(2)
	l.waiting.Store(4)
	// 6 occupants through 2 slots = 3 budget rounds.
	if got := l.retryAfter(time.Minute); got != 3*time.Minute {
		t.Errorf("full lane retryAfter = %v, want 3m", got)
	}
}

// --- HTTP contract ---

func TestSimulateMatchesDirectRunner(t *testing.T) {
	cfg := testConfig()
	_, ts := newTestServer(t, cfg)
	status, res, _, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if res.Metrics == nil || res.Metrics.Cycles <= 0 || res.Scale != cfg.Scale || res.Degraded {
		t.Fatalf("malformed response: %+v", res)
	}

	// The service must return bit-identical metrics to a direct Runner at
	// the same operating point — serving adds availability semantics, not
	// numeric drift.
	opt := sim.ScaledOptions(cfg.Scale)
	opt.Seed = cfg.Seed
	opt.Frames = 1
	direct, err := sim.NewRunner(opt).RunOneCtx(context.Background(), "TRu", mustPolicy(t, "DTexL"), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct.Metrics)
	got, _ := json.Marshal(res.Metrics)
	if !bytes.Equal(want, got) {
		t.Errorf("served metrics differ from direct run:\n got %s\nwant %s", got, want)
	}
	wantE, _ := json.Marshal(direct.Energy)
	gotE, _ := json.Marshal(res.Energy)
	if !bytes.Equal(wantE, gotE) {
		t.Errorf("served energy differs from direct run:\n got %s\nwant %s", gotE, wantE)
	}
}

func TestValidateRejects(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []SimRequest{
		{Benchmark: "nope", Policy: "DTexL"},
		{Benchmark: "TRu", Policy: "nope"},
		{Benchmark: "TRu", Policy: "DTexL", Scale: 65},
		{Benchmark: "TRu", Policy: "DTexL", Frames: 99},
	}
	for i, req := range cases {
		status, _, eres, _ := post(t, ts.URL, req)
		if status != http.StatusBadRequest || eres.Kind != KindBadRequest {
			t.Errorf("case %d: status %d kind %q, want 400 bad_request", i, status, eres.Kind)
		}
	}
}

// TestOverloadShedsExcessNever500s is the acceptance test: with the
// lone slot held, a blast of distinct non-degradable cells at 3× the
// remaining capacity must admit exactly one (the waiting-room position)
// and shed the rest with 429 + Retry-After — and the admitted one,
// once the slot frees, returns complete untainted metrics.
func TestOverloadShedsExcessNever500s(t *testing.T) {
	cfg := testConfig()
	s, ts := newTestServer(t, cfg)

	release, err := s.full.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Six distinct cells so the memo can't collapse the load.
	cells := []SimRequest{
		{Benchmark: "TRu", Policy: "baseline"},
		{Benchmark: "TRu", Policy: "DTexL"},
		{Benchmark: "TRu", Policy: "baseline-decoupled"},
		{Benchmark: "CCS", Policy: "baseline"},
		{Benchmark: "CCS", Policy: "DTexL"},
		{Benchmark: "CCS", Policy: "baseline-decoupled"},
	}
	type result struct {
		status int
		res    *SimResponse
		eres   *ErrorResponse
		header http.Header
		ttfb   time.Duration
	}
	results := make(chan result, len(cells))
	for _, req := range cells {
		go func(req SimRequest) {
			start := time.Now()
			st, res, eres, h := post(t, ts.URL, req)
			results <- result{st, res, eres, h, time.Since(start)}
		}(req)
	}

	// Free the slot once the blast has settled: one request parked in the
	// waiting room, the rest shed.
	for i := 0; s.full.waiting.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	shedBefore := s.full.shed.Load()
	for i := 0; s.full.shed.Load()-shedBefore < int64(len(cells)-1) && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	release()

	var ok, over int
	for range cells {
		r := <-results
		switch r.status {
		case http.StatusOK:
			ok++
			if r.res.Metrics == nil || r.res.Metrics.Cycles <= 0 {
				t.Error("accepted response under overload has no metrics")
			}
			if r.res.Degraded || r.res.Scale != cfg.Scale {
				t.Errorf("non-degradable request served degraded: %+v", r.res)
			}
			// TTFB bound: queue wait (≤ depth/slots budgets) + own cell.
			bound := time.Duration(cfg.QueueDepth/cfg.Concurrency+1) * cfg.CellBudget
			if r.ttfb > bound {
				t.Errorf("TTFB %v exceeds the documented bound %v", r.ttfb, bound)
			}
		case http.StatusTooManyRequests:
			over++
			if r.eres.Kind != KindOverCapacity {
				t.Errorf("429 kind = %q, want over_capacity", r.eres.Kind)
			}
			if r.header.Get("Retry-After") == "" || r.eres.RetryAfterMS < 1000 {
				t.Errorf("429 without usable Retry-After: header=%q body=%d", r.header.Get("Retry-After"), r.eres.RetryAfterMS)
			}
		default:
			t.Errorf("unexpected status %d under overload (body: %+v)", r.status, r.eres)
		}
	}
	if ok != 1 || over != len(cells)-1 {
		t.Errorf("ok=%d over=%d, want 1 admitted and %d shed", ok, over, len(cells)-1)
	}
}

// TestDegradableRequestsDegradeExplicitly: with the full lane saturated
// a degradable request runs in the degraded lane at a coarsened scale
// and says so; it is never silently served at full fidelity or shed
// while degraded capacity remains.
func TestDegradableRequestsDegradeExplicitly(t *testing.T) {
	cfg := testConfig()
	s, ts := newTestServer(t, cfg)

	// Saturate the full lane: test holds the slot, a goroutine parks in
	// the waiting room.
	release, err := s.full.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	parkCtx, parkCancel := context.WithCancel(context.Background())
	defer parkCancel()
	parked := make(chan struct{})
	go func() {
		rel, err := s.full.admit(parkCtx)
		if err == nil {
			rel()
		}
		close(parked)
	}()
	for i := 0; s.full.waiting.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}

	status, res, _, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline", Degradable: true})
	if status != http.StatusOK {
		t.Fatalf("degradable request status = %d, want 200", status)
	}
	if !res.Degraded {
		t.Fatal("degraded run not labeled degraded")
	}
	if want := 2 * cfg.Scale; res.Scale != want {
		t.Errorf("degraded scale = %d, want %d", res.Scale, want)
	}
	if res.Metrics == nil || res.Metrics.Cycles <= 0 {
		t.Error("degraded response has no metrics")
	}
	parkCancel()
	<-parked
}

// TestDeadlineExpiresWhileQueued: a request whose timeout_ms lands
// during the queue wait gets 504/timeout, and its queue position is
// reclaimed.
func TestDeadlineExpiresWhileQueued(t *testing.T) {
	cfg := testConfig()
	s, ts := newTestServer(t, cfg)
	release, err := s.full.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	status, _, eres, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline", TimeoutMS: 50})
	if status != http.StatusGatewayTimeout || eres.Kind != KindTimeout {
		t.Fatalf("status %d kind %q, want 504 timeout", status, eres.Kind)
	}
	// Queue position reclaimed: another short-deadline request can park
	// again rather than shedding.
	status, _, eres, _ = post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline", TimeoutMS: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("second queued request status %d kind %q, want 504 (queue position leaked?)", status, eres.Kind)
	}
}

// TestStallBecomesStructured500: chaos-injected livelock surfaces as a
// 500 whose body carries the watchdog's full state dump — the failure
// is diagnosable from the response alone.
func TestStallBecomesStructured500(t *testing.T) {
	cfg := testConfig()
	chaos, err := sim.ParseChaos("TRu/baseline/stall")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = chaos
	_, ts := newTestServer(t, cfg)

	status, _, eres, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline"})
	if status != http.StatusInternalServerError || eres.Kind != KindStall {
		t.Fatalf("status %d kind %q, want 500 stall", status, eres.Kind)
	}
	if eres.Stall == nil || len(eres.Stall.SCs) == 0 || eres.Stall.Dump() == "" {
		t.Fatalf("stall body carries no usable state dump: %+v", eres.Stall)
	}
	// The healthy sibling cell still works: the stall poisoned one cell,
	// not the server.
	status, res, _, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if status != http.StatusOK || res.Metrics == nil {
		t.Fatalf("healthy cell after a stall: status %d", status)
	}
}

func TestDrainingRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, testConfig())

	hres, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d before drain, want 200", hres.StatusCode)
	}

	s.BeginDrain()
	hres, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var st ReadyState
	json.NewDecoder(hres.Body).Decode(&st)
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable || st.Status != "draining" {
		t.Fatalf("/readyz = %d %q during drain, want 503 draining", hres.StatusCode, st.Status)
	}

	status, _, eres, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline"})
	if status != http.StatusServiceUnavailable || eres.Kind != KindDraining {
		t.Fatalf("simulate during drain: status %d kind %q, want 503 draining", status, eres.Kind)
	}
	if err := s.AwaitIdle(context.Background()); err != nil {
		t.Fatalf("AwaitIdle on an idle server: %v", err)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	hres, err := http.Get(ts.URL + "/v1/experiments/nope")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment = %d, want 400", hres.StatusCode)
	}

	// tab1 generates scenes but runs no simulations — a cheap happy path.
	hres, err = http.Get(ts.URL + "/v1/experiments/tab1")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("tab1 = %d, want 200", hres.StatusCode)
	}
	raw, err := io.ReadAll(hres.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "Temple Run") {
		t.Error("tab1 body missing benchmark table")
	}
}

func mustPolicy(t *testing.T, name string) core.Policy {
	t.Helper()
	p, err := core.PolicyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// --- request coalescing ---

// TestCoalescedRequestsRunOneSimulation pins the M→1 contract: M
// concurrent identical requests join one flight, consume one admission
// slot, and execute exactly one simulation. The test makes the pile-up
// deterministic by holding the lone full-lane slot until every request
// has either created or joined the flight.
func TestCoalescedRequestsRunOneSimulation(t *testing.T) {
	const m = 4
	cfg := testConfig()
	s, ts := newTestServer(t, cfg)

	release, err := s.full.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	req := SimRequest{Benchmark: "TRu", Policy: "DTexL"}
	type result struct {
		status int
		res    *SimResponse
	}
	results := make(chan result, m)
	for i := 0; i < m; i++ {
		go func() {
			st, res, _, _ := post(t, ts.URL, req)
			results <- result{st, res}
		}()
	}
	// All M requests target one flightKey: the first creates the flight
	// (parked in the admission queue), the other M-1 join it.
	for i := 0; s.flights.joined.Load() < m-1 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := s.flights.joined.Load(); got != m-1 {
		t.Fatalf("coalesced joins = %d, want %d", got, m-1)
	}
	release()

	var bodies [][]byte
	for i := 0; i < m; i++ {
		r := <-results
		if r.status != http.StatusOK || r.res.Metrics == nil {
			t.Fatalf("coalesced request %d: status %d", i, r.status)
		}
		b, _ := json.Marshal(r.res.Metrics)
		bodies = append(bodies, b)
	}
	for i := 1; i < m; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("coalesced responses diverge:\n%s\n%s", bodies[0], bodies[i])
		}
	}
	if got := s.flights.started.Load(); got != 1 {
		t.Errorf("flights started = %d, want 1", got)
	}
	if got := s.simsComputed(); got != 1 {
		t.Errorf("simulations computed = %d, want 1", got)
	}
}

// TestCoalescedRunSurvivesJoinerCancel is the cancellation regression
// test: the request that created the flight is cancelled mid-run, and
// the shared computation must keep going for the remaining joiner —
// no retry, no second simulation, no poisoned memo entry.
func TestCoalescedRunSurvivesJoinerCancel(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 4 // a meatier cell so "mid-run" is a real window
	s, ts := newTestServer(t, cfg)

	release, err := s.full.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(SimRequest{Benchmark: "TRu", Policy: "DTexL"})

	// Request A creates the flight (parked behind the held slot).
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	aerrc := make(chan error, 1)
	go func() {
		hreq, _ := http.NewRequestWithContext(actx, http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(body))
		hreq.Header.Set("Content-Type", "application/json")
		hres, err := http.DefaultClient.Do(hreq)
		if err == nil {
			hres.Body.Close()
		}
		aerrc <- err
	}()
	for i := 0; s.flights.started.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}

	// Request B joins it.
	type result struct {
		status int
		res    *SimResponse
	}
	bres := make(chan result, 1)
	go func() {
		st, res, _, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "DTexL"})
		bres <- result{st, res}
	}()
	for i := 0; s.flights.joined.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}

	// Let the flight start executing, then cancel A mid-run.
	release()
	for i := 0; s.full.active.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	acancel()
	if err := <-aerrc; err == nil {
		t.Fatal("cancelled request A unexpectedly completed")
	}

	// B still gets the real result from the one shared run.
	r := <-bres
	if r.status != http.StatusOK || r.res == nil || r.res.Metrics == nil || r.res.Metrics.Cycles <= 0 {
		t.Fatalf("joiner after creator cancel: status %d res %+v", r.status, r.res)
	}
	if got := s.flights.started.Load(); got != 1 {
		t.Errorf("flights started = %d, want 1 (joiner had to retry a killed run?)", got)
	}
	if got := s.simsComputed(); got != 1 {
		t.Errorf("simulations computed = %d, want 1", got)
	}

	// And the memo entry is healthy: a fresh request is a pure memo hit.
	st, res, _, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if st != http.StatusOK || res.Metrics == nil {
		t.Fatalf("post-cancel memo-hit request: status %d", st)
	}
	if got := s.simsComputed(); got != 1 {
		t.Errorf("memo recompute after cancel: simsComputed = %d, want 1", got)
	}
}

// TestLastLeaverCancelsFlight: when every joined request abandons a
// flight, the shared run is torn down — abandoned work must not hold an
// admission slot — and the queue position is reclaimed.
func TestLastLeaverCancelsFlight(t *testing.T) {
	cfg := testConfig()
	s, ts := newTestServer(t, cfg)
	release, err := s.full.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// The lone requester times out while its flight queues for admission.
	status, _, eres, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline", TimeoutMS: 50})
	if status != http.StatusGatewayTimeout || eres.Kind != KindTimeout {
		t.Fatalf("status %d kind %q, want 504 timeout", status, eres.Kind)
	}
	// The abandoned flight exits and frees its queue position: the next
	// short-deadline request parks again instead of shedding 429.
	for i := 0; s.full.waiting.Load() != 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	status, _, eres, _ = post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline", TimeoutMS: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("second request status %d kind %q, want 504 (flight leaked its queue position?)", status, eres.Kind)
	}
	if got := s.simsComputed(); got != 0 {
		t.Errorf("abandoned flights computed %d simulations, want 0", got)
	}
}
