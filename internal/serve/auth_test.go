package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestAuthTokenGatesSimulate: with AuthToken set, /v1/simulate demands the
// bearer token while the health probes (/healthz, /readyz, /workerz) stay
// open so load balancers and orchestrators keep working without secrets.
func TestAuthTokenGatesSimulate(t *testing.T) {
	const token = "serve-secret"
	cfg := testConfig()
	cfg.AuthToken = token
	_, ts := newTestServer(t, cfg)

	for _, path := range []string{"/healthz", "/readyz", "/workerz"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode == http.StatusUnauthorized {
			t.Errorf("GET %s = 401, want probe to stay open", path)
		}
	}

	body, _ := json.Marshal(SimRequest{Benchmark: "TRu", Policy: "baseline"})
	res, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated simulate = %d, want 401", res.StatusCode)
	}
	var eres struct {
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(res.Body).Decode(&eres); err != nil {
		t.Fatalf("401 body undecodable: %v", err)
	}
	if eres.Kind != "unauthenticated" {
		t.Fatalf("401 kind = %q, want unauthenticated", eres.Kind)
	}

	// Wrong token is rejected just like no token.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer wrong")
	wres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wres.Body.Close()
	if wres.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token simulate = %d, want 401", wres.StatusCode)
	}

	// The right token gets a real simulation.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+token)
	ores, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer ores.Body.Close()
	if ores.StatusCode != http.StatusOK {
		t.Fatalf("tokened simulate = %d, want 200", ores.StatusCode)
	}
	var out SimResponse
	if err := json.NewDecoder(ores.Body).Decode(&out); err != nil {
		t.Fatalf("bad 200 body: %v", err)
	}
	if out.Metrics == nil {
		t.Fatal("tokened simulate returned no metrics")
	}
}
