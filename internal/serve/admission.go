// Package serve is the simulation service: it exposes the sim.Runner
// memo stack over HTTP and is built to stay correct under overload.
// Admission control bounds concurrent work (queue + slots), per-request
// deadlines flow into the executors, degradable requests shed fidelity
// instead of availability, concurrent identical requests coalesce into
// one in-flight run that survives any single client's cancellation
// (coalesce.go, DESIGN.md §11), and SIGTERM drains in-flight work
// against the checkpoint journal. See DESIGN.md, "Serving & overload".
package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverCapacity is returned by lane.admit when both the slot pool and
// the waiting room are full — the request must be shed (429) or
// degraded, never silently queued without bound.
var ErrOverCapacity = errors.New("serve: over admission capacity")

// lane is one admission-controlled execution class: a fixed pool of
// concurrency slots fronted by a bounded waiting room. A request either
// holds a slot, waits in the room (cancellably), or is rejected
// immediately; nothing queues without bound, so time-to-first-byte is
// bounded by (queue depth / slots + 1) × the per-cell budget.
type lane struct {
	slots chan struct{} // buffered to the concurrency limit
	queue chan struct{} // buffered to the waiting-room depth

	waiting atomic.Int64 // requests parked in the waiting room
	active  atomic.Int64 // requests holding a slot
	shed    atomic.Int64 // requests rejected with ErrOverCapacity
}

// newLane sizes an admission lane. conc is the number of requests that
// may run at once; depth is how many more may wait for a slot.
func newLane(conc, depth int) *lane {
	if conc < 1 {
		conc = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &lane{
		slots: make(chan struct{}, conc),
		queue: make(chan struct{}, depth+conc),
	}
}

// admit acquires one execution slot. It returns a release func on
// success; ErrOverCapacity when the waiting room is full (shed or
// degrade the request — do not block); or ctx's error if the deadline
// lands while waiting for a slot, which is how a cancelled request
// frees its queue position.
func (l *lane) admit(ctx context.Context) (release func(), err error) {
	select {
	case l.queue <- struct{}{}:
	default:
		l.shed.Add(1)
		return nil, ErrOverCapacity
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	select {
	case l.slots <- struct{}{}:
		l.active.Add(1)
		return func() {
			l.active.Add(-1)
			<-l.slots
			<-l.queue
		}, nil
	case <-ctx.Done():
		<-l.queue
		return nil, ctx.Err()
	}
}

// Stats is one lane's instantaneous admission picture.
type Stats struct {
	Active   int64 `json:"active"`
	Waiting  int64 `json:"waiting"`
	Capacity int   `json:"capacity"`
	Queue    int   `json:"queue"`
	Shed     int64 `json:"shed"`
}

func (l *lane) statsSnapshot() Stats {
	return Stats{
		Active:   l.active.Load(),
		Waiting:  l.waiting.Load(),
		Capacity: cap(l.slots),
		Queue:    cap(l.queue) - cap(l.slots),
		Shed:     l.shed.Load(),
	}
}

// retryAfter estimates how long a shed request should wait before
// retrying: the time for the current queue to drain through the slot
// pool at one cell budget per occupant, floored at one second so
// clients never busy-spin.
func (l *lane) retryAfter(budget time.Duration) time.Duration {
	occupants := l.active.Load() + l.waiting.Load()
	slots := int64(cap(l.slots))
	est := time.Duration((occupants + slots - 1) / slots * int64(budget))
	if est < time.Second {
		est = time.Second
	}
	return est
}
