package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"dtexl/internal/sim"
)

// TestDrainUnderLoadLosesNothing is the drain acceptance test: with
// requests in flight, BeginDrain must let them finish (no killed work,
// no lost journal entries) while rejecting new arrivals; a restarted
// server over the same journal then answers the drained cells from the
// checkpoint without recomputing.
func TestDrainUnderLoadLosesNothing(t *testing.T) {
	dir := t.TempDir()
	j, err := sim.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Journal = j
	s, ts := newTestServer(t, cfg)

	// Two distinct cells fill the lane exactly (1 slot + 1 queued).
	cells := []SimRequest{
		{Benchmark: "TRu", Policy: "baseline"},
		{Benchmark: "CCS", Policy: "DTexL"},
	}
	type reply struct {
		req    SimRequest
		status int
		res    *SimResponse
	}
	replies := make(chan reply, len(cells))
	var wg sync.WaitGroup
	for _, req := range cells {
		wg.Add(1)
		go func(req SimRequest) {
			defer wg.Done()
			st, res, _, _ := post(t, ts.URL, req)
			replies <- reply{req, st, res}
		}(req)
	}

	// Drain as soon as the load is visibly in flight. (If both cells
	// finish before we observe them the drain is trivially clean; the
	// journal assertions below still hold.)
	for i := 0; s.InFlightRequests() < int64(len(cells)) && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	s.BeginDrain()

	// New arrivals are rejected while the drain runs...
	status, _, eres, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if status != http.StatusServiceUnavailable || eres.Kind != KindDraining {
		t.Fatalf("request during drain: status %d kind %q, want 503 draining", status, eres.Kind)
	}

	// ...but in-flight work completes normally.
	wg.Wait()
	firstRun := make(map[string]*SimResponse)
	for range cells {
		r := <-replies
		if r.status != http.StatusOK || r.res.Metrics == nil {
			t.Fatalf("in-flight request killed by drain: %s/%s status %d", r.req.Benchmark, r.req.Policy, r.status)
		}
		firstRun[r.req.Benchmark+"/"+r.req.Policy] = r.res
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.AwaitIdle(ctx); err != nil {
		t.Fatalf("drain did not go idle: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero lost journal entries: every completed cell replays.
	j2, err := sim.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != len(cells) {
		t.Fatalf("journal replayed %d cells after drain, want %d", got, len(cells))
	}

	// A restarted server over the journal serves the drained cells from
	// the checkpoint — same bytes, no recomputation.
	cfg2 := testConfig()
	cfg2.Journal = j2
	_, ts2 := newTestServer(t, cfg2)
	hitsBefore := j2.Hits()
	for _, req := range cells {
		st, res, _, _ := post(t, ts2.URL, req)
		if st != http.StatusOK {
			t.Fatalf("restarted server: %s/%s status %d", req.Benchmark, req.Policy, st)
		}
		want, _ := json.Marshal(firstRun[req.Benchmark+"/"+req.Policy].Metrics)
		got, _ := json.Marshal(res.Metrics)
		if string(want) != string(got) {
			t.Errorf("%s/%s: restarted metrics differ from pre-drain run:\n got %s\nwant %s", req.Benchmark, req.Policy, got, want)
		}
	}
	if j2.Hits() <= hitsBefore {
		t.Errorf("journal hits did not increase (%d → %d): restarted server recomputed instead of serving the checkpoint", hitsBefore, j2.Hits())
	}

	// /readyz reports the journal picture for operators.
	hres, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var st ReadyState
	json.NewDecoder(hres.Body).Decode(&st)
	hres.Body.Close()
	if st.JournalReplayed != len(cells) || st.JournalHits == 0 {
		t.Errorf("/readyz journal stats = %+v, want replayed=%d hits>0", st, len(cells))
	}
}

// TestNoGoroutineLeaks runs the request mix that exercises every
// admission path — success, shed, deadline-while-queued, drain — then
// checks the goroutine count settles back to its baseline. A hand-
// rolled leak check: the container has no goleak, and a polled count
// with tolerance catches the classes of leak this server could produce
// (stuck waiters, undrained lanes, orphaned AwaitIdle watchers).
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	func() {
		cfg := testConfig()
		s := New(cfg)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		// Success path (also warms the memo).
		if st, _, _, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "baseline"}); st != http.StatusOK {
			t.Fatalf("warm request status %d", st)
		}
		// Shed path: hold the slot, blast past capacity.
		release, err := s.full.admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Distinct uncached cell; most shed, one queues then times out.
				post(t, ts.URL, SimRequest{Benchmark: "CCS", Policy: "baseline", TimeoutMS: 100})
			}()
		}
		wg.Wait()
		release()
		// Drain path.
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.AwaitIdle(ctx); err != nil {
			t.Fatalf("AwaitIdle: %v", err)
		}
	}()

	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC() // finalize dead conns promptly
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
}
