package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtexl/internal/core"
	"dtexl/internal/energy"
	"dtexl/internal/netauth"
	"dtexl/internal/pipeline"
	"dtexl/internal/sim"
	"dtexl/internal/trace"
)

// Config sizes the service. The zero value of every field has a usable
// default; see each field.
type Config struct {
	// Scale is the full-fidelity resolution divisor (the CLI's -scale).
	// Default 4.
	Scale int
	// DegradedScale is the divisor used when a degradable request is
	// admitted under overload. Defaults to 2×Scale, and is always
	// coarsened to at least twice the request's own scale — degradation
	// at minimum quarters the pixel count.
	DegradedScale int
	// Seed drives the deterministic scene generators.
	Seed uint64
	// Concurrency is the full-fidelity slot count (0 = GOMAXPROCS).
	Concurrency int
	// QueueDepth is the bounded waiting room beyond the slots
	// (0 = 2×Concurrency). Requests beyond slots+queue are shed with
	// 429 or degraded.
	QueueDepth int
	// CellBudget bounds each simulation cell's wall time; it is also the
	// unit of the Retry-After estimate. Default 2m.
	CellBudget time.Duration
	// MaxFrames caps the per-request frames parameter. Default 4.
	MaxFrames int
	// PrepBudget bounds the bytes each runner retains for prepared
	// frames (0 = 512 MiB — the serving default is far below the batch
	// CLI's, since the service is long-lived).
	PrepBudget int64
	// Journal, when non-nil, checkpoints every completed cell and serves
	// journaled cells on restart. Shared by every runner in the pool
	// (keys embed the effective machine config, so scales never
	// collide).
	Journal *sim.Journal
	// Store, when non-nil, is the fleet's shared result store, layered
	// under the journal as L2: cells completed by any process sharing the
	// directory are served without recompute, and cells computed here
	// become visible to the fleet.
	Store *sim.Store
	// FleetStatus, when non-nil, is polled by GET /workerz and folded
	// into /readyz — the fleet-worker view of this process (registration,
	// completed cells, partition state).
	FleetStatus func() any
	// Chaos, when non-nil, injects faults into matching cells — the CI
	// smoke runs the service with an injected livelock to prove stalls
	// surface as structured 500s, not process death.
	Chaos *sim.ChaosConfig
	// Parallel, when > 1 (or < 0 for GOMAXPROCS), runs each simulation's
	// frame preparation and raster phase on that many worker goroutines.
	// Output is byte-identical to the serial path (DESIGN.md §11), so
	// the journal and memos are shared across settings. Default serial.
	Parallel int
	// AuthToken, when set, gates the /v1/* API behind bearer-token auth.
	// Health probes (/healthz, /readyz, /workerz) stay open — orchestrator
	// liveness checks cannot carry secrets.
	AuthToken string
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Scale < 1 {
		c.Scale = 4
	}
	if c.DegradedScale < 1 {
		c.DegradedScale = 2 * c.Scale
	}
	if c.Concurrency < 1 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Concurrency
	}
	if c.CellBudget <= 0 {
		c.CellBudget = 2 * time.Minute
	}
	if c.MaxFrames < 1 {
		c.MaxFrames = 4
	}
	if c.PrepBudget == 0 {
		c.PrepBudget = 512 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// runnerKey identifies one pooled Runner: the service keeps one memo
// stack per (scale, frames) machine so repeated requests are served
// from memo — the serving-path analogue of Rendering Elimination's
// reuse of already-computed results.
type runnerKey struct {
	scale  int
	frames int
}

// Server is the overload-hardened simulation service. Create with New,
// mount Handler on an http.Server, and on SIGTERM call BeginDrain
// before http.Server.Shutdown; Abort cancels in-flight executors if
// the grace budget runs out.
type Server struct {
	cfg Config

	base   context.Context // parent of every simulation; Abort cancels it
	cancel context.CancelFunc

	full     *lane // full-fidelity admission
	degraded *lane // reduced-scale overload lane

	flights *coalescer // merges concurrent identical /v1/simulate requests

	mu      sync.Mutex
	runners map[runnerKey]*sim.Runner
	expMu   sync.Mutex // serializes experiment rendering (Runner.CSV is runner state)

	draining atomic.Bool
	inflight sync.WaitGroup
	inFlight atomic.Int64
	served   atomic.Int64
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:    cfg,
		base:   base,
		cancel: cancel,
		// The degraded lane is deliberately small: it exists to keep
		// degradable requests answerable during bursts, not to double
		// capacity.
		full:     newLane(cfg.Concurrency, cfg.QueueDepth),
		degraded: newLane(max(1, cfg.Concurrency/2), cfg.QueueDepth),
		flights:  newCoalescer(),
		runners:  make(map[runnerKey]*sim.Runner),
	}
}

// runner returns the pooled Runner for (scale, frames), creating it on
// first use. Every runner shares the server's base context, journal and
// chaos config; memo stacks are per-runner (keys differ by resolution).
func (s *Server) runner(scale, frames int) *sim.Runner {
	key := runnerKey{scale: scale, frames: frames}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r
	}
	opt := sim.ScaledOptions(scale)
	opt.Seed = s.cfg.Seed
	opt.Frames = frames
	r := sim.NewRunner(opt)
	r.Ctx = s.base
	r.RunTimeout = s.cfg.CellBudget
	r.PrepBudget = s.cfg.PrepBudget
	r.Journal = s.cfg.Journal
	r.Store = s.cfg.Store
	r.Chaos = s.cfg.Chaos
	r.Parallel = s.cfg.Parallel
	s.runners[key] = r
	return r
}

// SimRequest is the body of POST /v1/simulate.
type SimRequest struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	// Scale divides the paper resolution; 0 means the server's default.
	Scale int `json:"scale,omitempty"`
	// Frames is the animation length (0 = 1).
	Frames int `json:"frames,omitempty"`
	// Degradable opts into the overload ladder: under pressure the
	// request may run at a coarser scale instead of being shed, and the
	// response is explicitly marked degraded.
	Degradable bool `json:"degradable,omitempty"`
	// TimeoutMS bounds the whole request — queue wait included — beyond
	// the server's per-cell budget. 0 means no extra deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SimResponse is the 200 body of POST /v1/simulate. Scale and Degraded
// record what actually ran: a degraded response is never silently
// substituted for the requested fidelity.
type SimResponse struct {
	Benchmark string            `json:"benchmark"`
	Policy    string            `json:"policy"`
	Scale     int               `json:"scale"`
	Frames    int               `json:"frames"`
	Degraded  bool              `json:"degraded"`
	ElapsedMS float64           `json:"elapsed_ms"`
	FPS       float64           `json:"fps"`
	Metrics   *pipeline.Metrics `json:"metrics"`
	Energy    energy.Breakdown  `json:"energy"`
}

// ErrorResponse is the JSON body of every non-200. Kind is machine
// readable; the retry/backoff client switches on it.
type ErrorResponse struct {
	Error        string               `json:"error"`
	Kind         string               `json:"kind"`
	RetryAfterMS int64                `json:"retry_after_ms,omitempty"`
	Stall        *pipeline.StallError `json:"stall,omitempty"`
}

// Error kinds.
const (
	KindBadRequest   = "bad_request"
	KindOverCapacity = "over_capacity"
	KindDraining     = "draining"
	KindStall        = "stall"
	KindTimeout      = "timeout"
	KindCanceled     = "canceled"
	KindInternal     = "internal"
)

// Handler mounts the API:
//
//	POST /v1/simulate           run one (benchmark, policy) cell
//	GET  /v1/experiments/{name} render one experiment table (text or CSV)
//	GET  /healthz               process liveness
//	GET  /readyz                readiness + admission stats (503 draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /workerz", s.handleWorkerz)
	return netauth.Middleware(s.cfg.AuthToken,
		netauth.OpenPaths("/healthz", "/readyz", "/workerz"), mux)
}

// handleWorkerz reports the process's fleet-worker status; 404 when the
// process is not a fleet worker.
func (s *Server) handleWorkerz(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.FleetStatus == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: "not a fleet worker", Kind: KindBadRequest,
		})
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.FleetStatus())
}

// ReadyState is the /readyz body. Coalesced counts requests that joined
// an already-in-flight identical run, FlightsStarted the runs actually
// launched, and SimsComputed the simulations the memo stacks really
// executed — M concurrent identical requests should move SimsComputed
// by exactly 1 (the dtexlload -identical check).
type ReadyState struct {
	Status          string `json:"status"` // "ok" or "draining"
	InFlight        int64  `json:"in_flight"`
	Served          int64  `json:"served"`
	Coalesced       int64  `json:"coalesced"`
	FlightsStarted  int64  `json:"flights_started"`
	SimsComputed    uint64 `json:"sims_computed"`
	JournalReplayed int    `json:"journal_replayed"`
	JournalHits     uint64 `json:"journal_hits"`
	Full            Stats  `json:"full"`
	Degraded        Stats  `json:"degraded"`
	// Store is the shared result store's counters when one is attached.
	Store *sim.StoreStats `json:"store,omitempty"`
	// Fleet is the fleet-worker status when this process is one.
	Fleet any `json:"fleet,omitempty"`
}

// simsComputed sums the raster-phase memo misses across the runner
// pool: the number of simulations that actually executed (journal
// replays and memo hits excluded).
func (s *Server) simsComputed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, r := range s.runners {
		n += r.Timing().SimMisses
	}
	return n
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := ReadyState{
		Status:         "ok",
		InFlight:       s.inFlight.Load(),
		Served:         s.served.Load(),
		Coalesced:      s.flights.joined.Load(),
		FlightsStarted: s.flights.started.Load(),
		SimsComputed:   s.simsComputed(),
		Full:           s.full.statsSnapshot(),
		Degraded:       s.degraded.statsSnapshot(),
	}
	if s.cfg.Journal != nil {
		st.JournalReplayed = s.cfg.Journal.Replayed()
		st.JournalHits = s.cfg.Journal.Hits()
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		st.Store = &ss
	}
	if s.cfg.FleetStatus != nil {
		st.Fleet = s.cfg.FleetStatus()
	}
	code := http.StatusOK
	if s.draining.Load() {
		st.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (s *Server) handleSimulate(w http.ResponseWriter, req *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: "server is draining", Kind: KindDraining,
		})
		return
	}
	var sr SimRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&sr); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "invalid JSON body: " + err.Error(), Kind: KindBadRequest,
		})
		return
	}
	pol, err := s.validate(&sr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: KindBadRequest})
		return
	}

	s.inflight.Add(1)
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		s.inflight.Done()
	}()

	// The request context covers queue wait and execution; a client
	// disconnect or timeout_ms deadline frees the queue position and,
	// via RunOneCtx, reaches the executor watchdog.
	ctx := req.Context()
	if sr.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(sr.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Concurrent requests for the same cell coalesce into one flight
	// that performs the whole admission ladder and run: M identical
	// requests consume one slot and at most one simulation. The flight
	// runs under a detached context derived from s.base, so cancelling
	// this request merely detaches it — the run survives for any other
	// joiners and is torn down only when the last one leaves.
	start := time.Now()
	key := flightKey{
		benchmark:  sr.Benchmark,
		policy:     pol.Name,
		scale:      sr.Scale,
		frames:     sr.Frames,
		degradable: sr.Degradable,
	}
	track := func() func() {
		s.inflight.Add(1)
		return s.inflight.Done
	}
	out, err := s.flights.do(ctx, s.base, key, track, func(runCtx context.Context) flightResult {
		// Degradation ladder: full fidelity → (degradable only) reduced
		// scale, explicitly labeled → 429 with a Retry-After estimate.
		scale, degraded := sr.Scale, false
		release, aerr := s.full.admit(runCtx)
		if errors.Is(aerr, ErrOverCapacity) && sr.Degradable {
			scale, degraded = s.degradedScaleFor(sr.Scale), true
			release, aerr = s.degraded.admit(runCtx)
		}
		if aerr != nil {
			return flightResult{scale: scale, degraded: degraded, admitErr: aerr}
		}
		defer release()
		res, rerr := s.runner(scale, sr.Frames).RunOneCtx(runCtx, sr.Benchmark, pol, nil)
		return flightResult{res: res, scale: scale, degraded: degraded, err: rerr}
	})
	if err != nil {
		// Our own context ended while waiting on the flight (which keeps
		// running if anyone else is still joined).
		s.writeAdmitError(w, err)
		return
	}
	if out.admitErr != nil {
		s.writeAdmitError(w, out.admitErr)
		return
	}
	if out.err != nil {
		s.writeRunError(w, out.err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, SimResponse{
		Benchmark: sr.Benchmark,
		Policy:    pol.Name,
		Scale:     out.scale,
		Frames:    sr.Frames,
		Degraded:  out.degraded,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		FPS:       out.res.Metrics.FPS,
		Metrics:   out.res.Metrics,
		Energy:    out.res.Energy,
	})
}

// validate normalizes and bounds a SimRequest, resolving its policy.
func (s *Server) validate(sr *SimRequest) (core.Policy, error) {
	if _, err := trace.ProfileByAlias(sr.Benchmark); err != nil {
		return core.Policy{}, fmt.Errorf("unknown benchmark %q (want one of %s)",
			sr.Benchmark, strings.Join(trace.Aliases(), ", "))
	}
	pol, err := core.PolicyByName(sr.Policy)
	if err != nil {
		return core.Policy{}, err
	}
	if sr.Scale == 0 {
		sr.Scale = s.cfg.Scale
	}
	if sr.Scale < 1 || sr.Scale > 64 {
		return core.Policy{}, fmt.Errorf("scale %d out of range [1,64]", sr.Scale)
	}
	if sr.Frames == 0 {
		sr.Frames = 1
	}
	if sr.Frames < 1 || sr.Frames > s.cfg.MaxFrames {
		return core.Policy{}, fmt.Errorf("frames %d out of range [1,%d]", sr.Frames, s.cfg.MaxFrames)
	}
	return pol, nil
}

// degradedScaleFor coarsens a request's scale for the overload lane:
// the server's degraded scale, but always at least twice the requested
// divisor so degradation genuinely sheds work.
func (s *Server) degradedScaleFor(reqScale int) int {
	ds := s.cfg.DegradedScale
	if ds < 2*reqScale {
		ds = 2 * reqScale
	}
	if ds > 64 {
		ds = 64
	}
	return ds
}

func (s *Server) handleExperiment(w http.ResponseWriter, req *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: "server is draining", Kind: KindDraining,
		})
		return
	}
	name := req.PathValue("name")
	known := false
	for _, id := range sim.ExperimentIDs() {
		if id == name {
			known = true
			break
		}
	}
	if !known {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("unknown experiment %q (want one of %s)", name, strings.Join(sim.ExperimentIDs(), ", ")),
			Kind:  KindBadRequest,
		})
		return
	}

	s.inflight.Add(1)
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		s.inflight.Done()
	}()

	// Experiments are whole-suite heavy and never degradable; they run
	// at the server's base fidelity through the full lane. The request
	// context governs the queue wait; execution is bounded per cell by
	// the server's cell budget rather than by the request deadline.
	release, aerr := s.full.admit(req.Context())
	if aerr != nil {
		s.writeAdmitError(w, aerr)
		return
	}
	defer release()

	r := s.runner(s.cfg.Scale, 1)
	var buf strings.Builder
	// Runner.CSV is runner state, so experiment rendering serializes;
	// the underlying simulations are still memo-shared with /v1/simulate.
	s.expMu.Lock()
	r.CSV = req.URL.Query().Get("csv") == "1"
	err := r.RunExperiment(name, &buf)
	r.CSV = false
	s.expMu.Unlock()
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, buf.String())
}

// writeAdmitError maps an admission failure: over capacity becomes 429
// with a Retry-After derived from the queue picture, a dead request
// context becomes 504/503.
func (s *Server) writeAdmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverCapacity):
		ra := s.full.retryAfter(s.cfg.CellBudget)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(ra.Seconds()))))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:        "over admission capacity",
			Kind:         KindOverCapacity,
			RetryAfterMS: ra.Milliseconds(),
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{
			Error: "request deadline expired while queued", Kind: KindTimeout,
		})
	default:
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: "request canceled while queued", Kind: KindCanceled,
		})
	}
}

// writeRunError maps a simulation failure to a structured body. A stall
// returns the full watchdog state dump — the diagnostic that used to be
// a process-killing panic — as a 500 the client can log and act on.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	var se *pipeline.StallError
	switch {
	case errors.As(err, &se):
		s.cfg.Logf("serve: executor stall: %v", err)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: err.Error(), Kind: KindStall, Stall: se,
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{
			Error: err.Error(), Kind: KindTimeout,
		})
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: err.Error(), Kind: KindCanceled,
		})
	default:
		s.cfg.Logf("serve: internal error: %v", err)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: err.Error(), Kind: KindInternal,
		})
	}
}

// BeginDrain flips the server unready: /readyz turns 503 and new API
// requests are rejected with kind "draining". In-flight requests keep
// their slots; call AwaitIdle (or http.Server.Shutdown) to wait for
// them, then Abort if the grace budget expires. Completed cells are
// already journaled (the journal fsyncs at completion), so a drained —
// or even aborted — server loses nothing that finished.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.cfg.Logf("serve: draining: readiness off, rejecting new work")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AwaitIdle blocks until every in-flight request has finished, or ctx
// ends (returning its error) — the drain-grace wait.
func (s *Server) AwaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Abort cancels the base context under every in-flight executor: the
// watchdogs observe it within 2^12 scheduling steps and the requests
// fail with kind "canceled". The hard edge of the grace budget.
func (s *Server) Abort() {
	s.cfg.Logf("serve: grace budget exhausted, aborting in-flight executors")
	s.cancel()
}

// InFlightRequests reports the number of requests currently admitted or
// queued.
func (s *Server) InFlightRequests() int64 { return s.inFlight.Load() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
