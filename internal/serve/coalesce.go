package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"dtexl/internal/sim"
)

// This file is the request-coalescing layer that sits ABOVE the
// sim.Runner memo stack (see DESIGN.md §11 for the full layer diagram).
// The memo already single-flights identical simulations, but the
// computing request runs the cell under its own context: if that one
// client disconnects, the shared run dies and every waiter retries.
// The coalescer fixes the ownership problem — concurrent requests for
// the same cell join one flight whose run executes under a detached,
// refcounted context cancelled only when *every* joined request has
// left (or the server aborts). A cancelled joiner detaches without
// disturbing the run; the last leaver tears it down so abandoned work
// never burns an admission slot.

// flightKey identifies one coalescable request: the exact response a
// joiner would accept. Degradable requests coalesce separately from
// non-degradable ones because their flights may legitimately resolve to
// a different (degraded) fidelity.
type flightKey struct {
	benchmark  string
	policy     string
	scale      int
	frames     int
	degradable bool
}

// flightResult is everything a flight's joiners need to write their
// responses: the simulation outcome plus the fidelity that actually ran
// and how admission resolved.
type flightResult struct {
	res      *sim.RunResult
	scale    int
	degraded bool
	admitErr error // admission ladder failure (over capacity / dead run context)
	err      error // simulation failure
}

// simFlight is one shared in-flight run. done is closed exactly once,
// after out is final; cancel tears down the run's detached context.
type simFlight struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int // joined requests still waiting (guarded by coalescer.mu)
	out    flightResult
}

// coalescer merges concurrent identical requests into shared flights.
type coalescer struct {
	mu      sync.Mutex
	flights map[flightKey]*simFlight

	joined  atomic.Int64 // requests that joined an already-in-flight run
	started atomic.Int64 // flights actually launched
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[flightKey]*simFlight)}
}

// isCtxErr mirrors the sim memo's classification: error classes a
// joiner must not inherit from a flight whose lifetime was unrelated to
// its own.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do returns the flight result for key, launching run on a new
// goroutine under a context derived from base on first use. Concurrent
// callers with the same key join the one flight. The wait respects
// ctx: a joiner whose context ends detaches with ctx's error while the
// flight keeps running for the remaining joiners; the last leaver
// cancels the flight's context, which aborts the run at the next
// executor watchdog poll.
//
// track, when non-nil, brackets the flight goroutine (the server's
// in-flight accounting for drains). It is registered while the caller
// — itself tracked — is still joined, so the underlying WaitGroup never
// touches zero early.
func (c *coalescer) do(ctx, base context.Context, key flightKey, track func() func(), run func(context.Context) flightResult) (flightResult, error) {
	for {
		c.mu.Lock()
		f, ok := c.flights[key]
		if ok {
			f.refs++
			c.mu.Unlock()
			c.joined.Add(1)
		} else {
			runCtx, cancel := context.WithCancel(base)
			f = &simFlight{done: make(chan struct{}), cancel: cancel, refs: 1}
			c.flights[key] = f
			c.mu.Unlock()
			c.started.Add(1)
			var untrack func()
			if track != nil {
				untrack = track()
			}
			go func() {
				out := run(runCtx)
				c.mu.Lock()
				f.out = out
				delete(c.flights, key)
				c.mu.Unlock()
				close(f.done)
				cancel()
				if untrack != nil {
					untrack()
				}
			}()
		}

		var waitErr error
		select {
		case <-f.done:
		case <-ctx.Done():
			waitErr = ctx.Err()
		}
		c.mu.Lock()
		f.refs--
		if f.refs == 0 {
			// Last joiner gone. If the run is still going this aborts it;
			// after completion the cancel is a no-op.
			f.cancel()
		}
		c.mu.Unlock()
		if waitErr != nil {
			return flightResult{}, waitErr
		}
		ferr := f.out.err
		if f.out.admitErr != nil {
			// A dying flight can surface its cancellation either way:
			// mid-run (err) or while still queued for admission (admitErr).
			ferr = f.out.admitErr
		}
		if ok && ferr != nil && isCtxErr(ferr) && ctx.Err() == nil {
			// We joined a flight that died under the shared context (its
			// earlier joiners all left, racing our join) while our own
			// context is live — retry on a fresh flight, mirroring the sim
			// memo's cancelled-computer contract. First-flight creators
			// return their error as-is, which bounds the retries.
			continue
		}
		return f.out, nil
	}
}
