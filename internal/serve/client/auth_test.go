package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dtexl/internal/serve"
)

// TestWithTokenAuthorizesRequests: WithToken threads the bearer token
// through both Simulate and Ready, and a server that demands it sees it.
func TestWithTokenAuthorizesRequests(t *testing.T) {
	const token = "client-secret"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer "+token {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnauthorized)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "unauthenticated", Kind: "unauthenticated"})
			return
		}
		switch r.URL.Path {
		case "/readyz":
			json.NewEncoder(w).Encode(serve.ReadyState{Status: "ok"})
		case "/v1/simulate":
			json.NewEncoder(w).Encode(serve.SimResponse{Benchmark: "TRu", Policy: "baseline"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	// Without the token the client's first attempt is rejected and the
	// unauthenticated kind is permanent — no retry storm.
	bare := New(ts.URL, func(c *Config) { c.MaxRetries = 3 })
	if _, err := bare.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "baseline"}); err == nil {
		t.Fatal("tokenless Simulate succeeded against an auth-requiring server")
	}

	c := New(ts.URL, WithToken(token))
	if _, _, err := c.Ready(context.Background()); err != nil {
		t.Fatalf("tokened Ready: %v", err)
	}
	out, err := c.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "baseline"})
	if err != nil {
		t.Fatalf("tokened Simulate: %v", err)
	}
	if out.Benchmark != "TRu" {
		t.Fatalf("tokened Simulate benchmark = %q, want TRu", out.Benchmark)
	}
}
