package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dtexl/internal/serve"
)

// scriptServer answers each request from a scripted sequence of
// (status, body) pairs, repeating the last entry when exhausted.
type scriptStep struct {
	status int
	body   any
	header map[string]string
}

func scriptServer(t *testing.T, steps []scriptStep) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(steps) {
			i = len(steps) - 1
		}
		st := steps[i]
		for k, v := range st.header {
			w.Header().Set(k, v)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st.status)
		json.NewEncoder(w).Encode(st.body)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func okBody() serve.SimResponse {
	return serve.SimResponse{Benchmark: "TRu", Policy: "DTexL", Scale: 8, Frames: 1, FPS: 12.5}
}

// harness wires a Client to a scripted server with a deterministic
// clock, recorded sleeps, and jitter pinned to the top of its range.
type harness struct {
	cl     *Client
	calls  *atomic.Int64
	mu     sync.Mutex
	slept  []time.Duration
	nowVal time.Time
}

func newHarness(t *testing.T, steps []scriptStep, opts ...func(*Config)) *harness {
	srv, calls := scriptServer(t, steps)
	h := &harness{calls: calls, nowVal: time.Unix(1000, 0)}
	h.cl = New(srv.URL, opts...)
	h.cl.cfg.rand = func() float64 { return 1.0 } // jitter pinned to the top of its range
	h.cl.cfg.now = func() time.Time { h.mu.Lock(); defer h.mu.Unlock(); return h.nowVal }
	h.cl.cfg.sleep = func(ctx context.Context, d time.Duration) error {
		h.mu.Lock()
		h.slept = append(h.slept, d)
		h.nowVal = h.nowVal.Add(d) // sleeping advances the fake clock
		h.mu.Unlock()
		return ctx.Err()
	}
	return h
}

func (h *harness) sleeps() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]time.Duration(nil), h.slept...)
}

func (h *harness) advance(d time.Duration) {
	h.mu.Lock()
	h.nowVal = h.nowVal.Add(d)
	h.mu.Unlock()
}

func TestSimulateSuccess(t *testing.T) {
	h := newHarness(t, []scriptStep{{status: 200, body: okBody()}})
	res, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if err != nil {
		t.Fatal(err)
	}
	if res.FPS != 12.5 || res.Policy != "DTexL" {
		t.Fatalf("unexpected response %+v", res)
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

// TestRetriesShedWithDecorrelatedBackoff: two 429s then success. The
// client must retry through them; each sleep is drawn from
// [base, min(3×previous, max)], so with jitter pinned to the top of the
// range the sleeps are base+(3·base−base)=3·base, then base+(3·3·base−base).
func TestRetriesShedWithDecorrelatedBackoff(t *testing.T) {
	shed := serve.ErrorResponse{Error: "over admission capacity", Kind: serve.KindOverCapacity}
	h := newHarness(t, []scriptStep{
		{status: 429, body: shed},
		{status: 429, body: shed},
		{status: 200, body: okBody()},
	}, WithBackoff(100*time.Millisecond, 5*time.Second))
	res, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if err != nil {
		t.Fatal(err)
	}
	if res.FPS != 12.5 {
		t.Fatalf("unexpected response %+v", res)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	want := []time.Duration{300 * time.Millisecond, 900 * time.Millisecond}
	got := h.sleeps()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestJitterStaysInRange: with rand pinned low the sleep must be the
// base backoff — the bottom of the decorrelated window — never zero.
func TestJitterStaysInRange(t *testing.T) {
	shed := serve.ErrorResponse{Error: "busy", Kind: serve.KindOverCapacity}
	h := newHarness(t, []scriptStep{
		{status: 429, body: shed},
		{status: 200, body: okBody()},
	})
	h.cl.cfg.rand = func() float64 { return 0.0 }
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); err != nil {
		t.Fatal(err)
	}
	got := h.sleeps()
	if len(got) != 1 || got[0] != 100*time.Millisecond {
		t.Fatalf("slept %v, want [100ms] (bottom of jitter range = base)", got)
	}
}

// TestRetryAfterFloorsBackoff: the server's Retry-After hint is a
// floor, not an exact wait — the client waits the hint PLUS jitter
// (rand pinned to 1 → hint + base), so a fleet honoring the same hint
// does not return as one synchronized wave.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	shed := serve.ErrorResponse{Error: "busy", Kind: serve.KindOverCapacity}
	h := newHarness(t, []scriptStep{
		{status: 429, body: shed, header: map[string]string{"Retry-After": "3"}},
		{status: 200, body: okBody()},
	})
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); err != nil {
		t.Fatal(err)
	}
	got := h.sleeps()
	if len(got) != 1 || got[0] != 3100*time.Millisecond {
		t.Fatalf("slept %v, want [3.1s] (Retry-After floor + jittered spread)", got)
	}
}

// TestRetryAfterBodyField: retry_after_ms in the JSON body works like
// the header.
func TestRetryAfterBodyField(t *testing.T) {
	shed := serve.ErrorResponse{Error: "busy", Kind: serve.KindOverCapacity, RetryAfterMS: 1500}
	h := newHarness(t, []scriptStep{
		{status: 429, body: shed},
		{status: 200, body: okBody()},
	})
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); err != nil {
		t.Fatal(err)
	}
	got := h.sleeps()
	if len(got) != 1 || got[0] != 1600*time.Millisecond {
		t.Fatalf("slept %v, want [1.6s] (retry_after_ms floor + jittered spread)", got)
	}
}

// TestShortRetryAfterDoesNotShrinkBackoff: a hint below the jittered
// schedule is already satisfied — the floor never pulls the wait down.
func TestShortRetryAfterDoesNotShrinkBackoff(t *testing.T) {
	shed := serve.ErrorResponse{Error: "busy", Kind: serve.KindOverCapacity, RetryAfterMS: 50}
	h := newHarness(t, []scriptStep{
		{status: 429, body: shed},
		{status: 200, body: okBody()},
	})
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); err != nil {
		t.Fatal(err)
	}
	got := h.sleeps()
	if len(got) != 1 || got[0] != 300*time.Millisecond {
		t.Fatalf("slept %v, want [300ms] (schedule wins over a shorter hint)", got)
	}
}

// TestDeadlineAwareRetryStop: when the context deadline leaves no room
// for the next backoff, the client stops immediately and surfaces the
// last real failure instead of sleeping into the deadline.
func TestDeadlineAwareRetryStop(t *testing.T) {
	shed := serve.ErrorResponse{Error: "busy", Kind: serve.KindOverCapacity, RetryAfterMS: 60_000}
	h := newHarness(t, []scriptStep{{status: 429, body: shed}})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := h.cl.Simulate(ctx, serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if err == nil {
		t.Fatal("expected error")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Body.Kind != serve.KindOverCapacity {
		t.Fatalf("err = %v, want wrapped 429 APIError", err)
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no room to retry)", got)
	}
	if got := h.sleeps(); len(got) != 0 {
		t.Fatalf("client slept %v despite deadline leaving no retry room", got)
	}
}

// TestBadRequestNotRetried: 4xx misuse is permanent — exactly one call.
func TestBadRequestNotRetried(t *testing.T) {
	bad := serve.ErrorResponse{Error: "unknown benchmark", Kind: serve.KindBadRequest}
	h := newHarness(t, []scriptStep{{status: 400, body: bad}})
	_, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "nope", Policy: "DTexL"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

// TestRetryBudgetExhausted: a persistently shedding server consumes the
// retry budget then fails with the last 429.
func TestRetryBudgetExhausted(t *testing.T) {
	shed := serve.ErrorResponse{Error: "busy", Kind: serve.KindOverCapacity}
	h := newHarness(t, []scriptStep{{status: 429, body: shed}}, WithRetries(2))
	_, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("err = %v, want 429 APIError", err)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestBreakerTripsOnConsecutiveStalls: stall responses are "sick", and
// enough of them in a row must open the circuit so further calls fail
// fast without touching the network.
func TestBreakerTripsOnConsecutiveStalls(t *testing.T) {
	stall := serve.ErrorResponse{Error: "executor stall", Kind: serve.KindStall}
	h := newHarness(t, []scriptStep{{status: 500, body: stall}},
		WithRetries(-1), WithBreaker(3, 10*time.Second))
	for i := 0; i < 3; i++ {
		_, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !apiErr.IsStall() {
			t.Fatalf("call %d: err = %v, want stall APIError", i, err)
		}
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if _, open := h.cl.State(); !open {
		t.Fatal("breaker not open after threshold consecutive stalls")
	}
	_, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("open breaker let a request through (%d calls)", got)
	}
}

// TestBreakerShedDoesNotTrip: 429s are "busy", not "sick" — no amount
// of shedding opens the circuit.
func TestBreakerShedDoesNotTrip(t *testing.T) {
	shed := serve.ErrorResponse{Error: "busy", Kind: serve.KindOverCapacity}
	h := newHarness(t, []scriptStep{{status: 429, body: shed}},
		WithRetries(-1), WithBreaker(2, 10*time.Second))
	for i := 0; i < 6; i++ {
		if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); err == nil {
			t.Fatal("expected 429")
		}
	}
	if _, open := h.cl.State(); open {
		t.Fatal("breaker opened on shed responses")
	}
	if got := h.calls.Load(); got != 6 {
		t.Fatalf("server saw %d calls, want 6", got)
	}
}

// TestBreakerHalfOpenProbeRecovers: after the cooldown one probe goes
// through; a success closes the circuit fully.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	stall := serve.ErrorResponse{Error: "executor stall", Kind: serve.KindStall}
	h := newHarness(t, []scriptStep{
		{status: 500, body: stall},
		{status: 500, body: stall},
		{status: 200, body: okBody()}, // the probe lands here
		{status: 200, body: okBody()},
	}, WithRetries(-1), WithBreaker(2, 10*time.Second))
	for i := 0; i < 2; i++ {
		h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	}
	if _, open := h.cl.State(); !open {
		t.Fatal("breaker should be open")
	}
	// Still inside the cooldown: fail fast.
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen during cooldown", err)
	}
	// Past the cooldown: the probe is admitted, succeeds, and closes the
	// circuit for everyone.
	h.advance(11 * time.Second)
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if n, open := h.cl.State(); open || n != 0 {
		t.Fatalf("breaker state (%d, %v) after successful probe, want closed and reset", n, open)
	}
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); err != nil {
		t.Fatalf("post-recovery call failed: %v", err)
	}
}

// TestBreakerFailedProbeReopens: a probe that hits another stall slams
// the circuit shut for a fresh cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	stall := serve.ErrorResponse{Error: "executor stall", Kind: serve.KindStall}
	h := newHarness(t, []scriptStep{{status: 500, body: stall}},
		WithRetries(-1), WithBreaker(2, 10*time.Second))
	for i := 0; i < 2; i++ {
		h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	}
	h.advance(11 * time.Second)
	// The probe fails (server still stalling) → open again immediately.
	h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if _, open := h.cl.State(); !open {
		t.Fatal("breaker closed after a failed probe")
	}
	calls := h.calls.Load()
	if _, err := h.cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after failed probe", err)
	}
	if h.calls.Load() != calls {
		t.Fatal("request reached the server while re-opened")
	}
}

// TestTransientNetworkErrorRetried: a dead listener is transient — the
// client retries it (and here keeps failing, eventually surfacing the
// transport error).
func TestTransientNetworkErrorRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listening
	cl := New(url, WithRetries(2))
	var slept atomic.Int64
	cl.cfg.sleep = func(ctx context.Context, d time.Duration) error { slept.Add(1); return nil }
	_, err := cl.Simulate(context.Background(), serve.SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if err == nil {
		t.Fatal("expected transport error")
	}
	if errors.Is(err, ErrCircuitOpen) {
		t.Fatal("transport errors must not trip the breaker")
	}
	if got := slept.Load(); got != 2 {
		t.Fatalf("slept %d times, want 2 (transient errors are retried)", got)
	}
}
