// Package client is the retrying dtexld client: decorrelated-jitter
// backoff, deadline-aware retries, Retry-After honored as a floor (never
// an exact wait, so a recovering server is not hit by a synchronized
// retry wave) and a circuit breaker that trips on consecutive
// stall/timeout responses — the failure classes that mean the server is
// sick rather than merely busy.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dtexl/internal/serve"
)

// ErrCircuitOpen is returned without touching the network while the
// breaker is open: the server has answered with consecutive
// stall/timeout failures and hammering it helps no one.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// APIError is a non-200 response from the service, carrying the parsed
// structured body (including a stall state dump when Kind is "stall").
type APIError struct {
	Status int
	Body   serve.ErrorResponse
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d (%s): %s", e.Status, e.Body.Kind, e.Body.Error)
}

// IsStall reports whether the failure carries an executor stall dump.
func (e *APIError) IsStall() bool { return e.Body.Kind == serve.KindStall }

// Config tunes a Client. Zero fields take the documented defaults.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8095".
	BaseURL string
	// HTTP is the underlying transport (default http.DefaultClient).
	HTTP *http.Client
	// Token, when set, is sent as "Authorization: Bearer <token>" on
	// every request — required when the server runs with -auth-token.
	Token string
	// MaxRetries is how many times a retryable failure is retried beyond
	// the first attempt (default 4; negative means never retry).
	MaxRetries int
	// BaseBackoff seeds the decorrelated-jitter schedule (default 100ms):
	// each wait is drawn uniformly from [base, min(3×previous, MaxBackoff)]
	// (MaxBackoff default 5s), so retries from a fleet of clients spread
	// out instead of pulsing in synchronized exponential waves.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold trips the circuit after this many *consecutive*
	// stall/timeout failures (default 5). Shed responses (429/503) are
	// busy, not sick — they back off but never trip the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the open circuit rejects calls before
	// allowing a half-open probe (default 10s).
	BreakerCooldown time.Duration
	// rand returns a uniform float64 in [0,1) for jitter; tests inject a
	// deterministic source.
	rand func() float64
	// now is the clock; tests inject a fake.
	now func() time.Time
	// sleep waits cancellably; tests observe requested backoffs.
	sleep func(ctx context.Context, d time.Duration) error
}

// Client is safe for concurrent use; the breaker state is shared, which
// is the point — any goroutine's consecutive failures protect them all.
type Client struct {
	cfg Config

	mu          sync.Mutex
	consecutive int       // consecutive stall/timeout failures
	openUntil   time.Time // breaker open until this instant
	probing     bool      // a half-open probe is in flight
}

// New builds a Client for the service at baseURL.
func New(baseURL string, opts ...func(*Config)) *Client {
	cfg := Config{BaseURL: baseURL}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.rand == nil {
		cfg.rand = rand.Float64
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return &Client{cfg: cfg}
}

// Simulate runs one (benchmark, policy) cell through the service,
// retrying shed and transient failures under ctx's deadline.
func (c *Client) Simulate(ctx context.Context, req serve.SimRequest) (*serve.SimResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var last error
	prev := c.cfg.BaseBackoff // decorrelated-jitter state: the last wait
	for attempt := 0; ; attempt++ {
		if err := c.breakerAllow(); err != nil {
			if last != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", err, last)
			}
			return nil, err
		}
		resp, err := c.once(ctx, body)
		outcome := classify(err)
		c.breakerRecord(outcome)
		if err == nil {
			return resp, nil
		}
		last = err
		if outcome == outcomePermanent || ctx.Err() != nil || attempt >= c.cfg.MaxRetries {
			return nil, last
		}
		d, err := c.backoff(ctx, prev, last)
		if err != nil {
			// The deadline leaves no room for another attempt: surface the
			// last real failure, not the sleep's cancellation.
			return nil, fmt.Errorf("client: deadline while backing off: %w", last)
		}
		prev = d
	}
}

// Ready fetches /readyz (any status), for probes and load harnesses.
func (c *Client) Ready(ctx context.Context) (*serve.ReadyState, int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/readyz", nil)
	if err != nil {
		return nil, 0, err
	}
	c.authorize(hreq)
	hres, err := c.cfg.HTTP.Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	defer hres.Body.Close()
	var st serve.ReadyState
	if err := json.NewDecoder(hres.Body).Decode(&st); err != nil {
		return nil, hres.StatusCode, err
	}
	return &st, hres.StatusCode, nil
}

// once performs a single HTTP attempt.
func (c *Client) once(ctx context.Context, body []byte) (*serve.SimResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.authorize(hreq)
	hres, err := c.cfg.HTTP.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if hres.StatusCode == http.StatusOK {
		var out serve.SimResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("client: bad 200 body: %w", err)
		}
		return &out, nil
	}
	apiErr := &APIError{Status: hres.StatusCode}
	if err := json.Unmarshal(raw, &apiErr.Body); err != nil {
		apiErr.Body = serve.ErrorResponse{Error: string(raw), Kind: serve.KindInternal}
	}
	if ra := hres.Header.Get("Retry-After"); ra != "" && apiErr.Body.RetryAfterMS == 0 {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil {
			apiErr.Body.RetryAfterMS = secs * 1000
		}
	}
	return nil, apiErr
}

// outcome classifies one attempt for retry and breaker decisions.
type outcome int

const (
	outcomeOK outcome = iota
	// outcomeShed: the server is protecting itself (429, draining 503).
	// Retryable with backoff; not a breaker event.
	outcomeShed
	// outcomeSick: stall or timeout — the failure classes that trip the
	// breaker when consecutive. Retryable.
	outcomeSick
	// outcomeTransient: network-level failure; retryable, no breaker.
	outcomeTransient
	// outcomePermanent: 4xx misuse or an unrecognized 5xx; not retried.
	outcomePermanent
)

func classify(err error) outcome {
	if err == nil {
		return outcomeOK
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Body.Kind {
		case serve.KindOverCapacity, serve.KindDraining, serve.KindCanceled:
			return outcomeShed
		case serve.KindStall, serve.KindTimeout:
			return outcomeSick
		case serve.KindBadRequest:
			return outcomePermanent
		default:
			return outcomePermanent
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Our own context died mid-request; the caller's deadline rules.
		return outcomePermanent
	}
	return outcomeTransient // connection refused/reset, etc.
}

// backoff sleeps the decorrelated-jitter schedule: a wait drawn
// uniformly from [base, min(3×prev, max)], floored at the server's
// Retry-After hint PLUS jitter — the hint is when the server wants
// traffic back at the earliest, not an appointment, and adding jitter
// on top keeps a fleet of clients from arriving as one synchronized
// wave the moment a recovering server reopens. Never sleeps past ctx's
// deadline. Returns the wait chosen, which seeds the next call's prev.
func (c *Client) backoff(ctx context.Context, prev time.Duration, lastErr error) (time.Duration, error) {
	u := c.cfg.rand()
	hi := 3 * prev
	if hi > c.cfg.MaxBackoff || hi <= 0 {
		hi = c.cfg.MaxBackoff
	}
	if hi < c.cfg.BaseBackoff {
		hi = c.cfg.BaseBackoff
	}
	d := c.cfg.BaseBackoff + time.Duration(u*float64(hi-c.cfg.BaseBackoff))
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.Body.RetryAfterMS > 0 {
		ra := time.Duration(apiErr.Body.RetryAfterMS) * time.Millisecond
		if floor := ra + time.Duration(u*float64(c.cfg.BaseBackoff)); floor > d {
			d = floor
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain <= d {
			// No room to back off and attempt again.
			return d, context.DeadlineExceeded
		}
	}
	return d, c.cfg.sleep(ctx, d)
}

// breakerAllow gates an attempt on the circuit state. While open it
// fails fast; once the cooldown passes exactly one caller is admitted
// as the half-open probe.
func (c *Client) breakerAllow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openUntil.IsZero() {
		return nil
	}
	if c.cfg.now().Before(c.openUntil) {
		return ErrCircuitOpen
	}
	if c.probing {
		return ErrCircuitOpen // another goroutine already holds the probe
	}
	c.probing = true
	return nil
}

// breakerRecord folds one attempt's outcome into the circuit state.
func (c *Client) breakerRecord(o outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	probe := c.probing
	c.probing = false
	switch o {
	case outcomeSick:
		c.consecutive++
		if probe || c.consecutive >= c.cfg.BreakerThreshold {
			// A failed probe re-opens immediately; threshold crossings
			// open for the cooldown.
			c.openUntil = c.cfg.now().Add(c.cfg.BreakerCooldown)
		}
	case outcomeOK:
		c.consecutive = 0
		c.openUntil = time.Time{}
	default:
		// Shed/transient/permanent outcomes neither heal nor sicken the
		// breaker: the server's health is unknown.
		if probe {
			// The probe didn't prove health; stay open for another cooldown.
			c.openUntil = c.cfg.now().Add(c.cfg.BreakerCooldown)
		}
	}
}

// State reports the breaker's instantaneous view (for logs and tests).
func (c *Client) State() (consecutiveFailures int, open bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.consecutive, !c.openUntil.IsZero() && c.cfg.now().Before(c.openUntil)
}

// WithHTTP sets the transport.
func WithHTTP(h *http.Client) func(*Config) { return func(c *Config) { c.HTTP = h } }

// WithToken sends the bearer token on every request.
func WithToken(tok string) func(*Config) { return func(c *Config) { c.Token = tok } }

// authorize attaches the bearer token, when configured.
func (c *Client) authorize(req *http.Request) {
	if c.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.Token)
	}
}

// WithRetries sets the retry budget.
func WithRetries(n int) func(*Config) { return func(c *Config) { c.MaxRetries = n } }

// WithBackoff sets the backoff schedule bounds.
func WithBackoff(base, max time.Duration) func(*Config) {
	return func(c *Config) { c.BaseBackoff, c.MaxBackoff = base, max }
}

// WithBreaker sets the circuit-breaker threshold and cooldown.
func WithBreaker(threshold int, cooldown time.Duration) func(*Config) {
	return func(c *Config) { c.BreakerThreshold, c.BreakerCooldown = threshold, cooldown }
}
