package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"dtexl/internal/sim"
)

// TestWorkerzNotAWorker: /workerz on a plain server answers 404.
func TestWorkerzNotAWorker(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	res, err := http.Get(ts.URL + "/workerz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /workerz = %d, want 404 without FleetStatus", res.StatusCode)
	}
}

// TestWorkerzReportsFleetStatus: with FleetStatus wired, /workerz serves
// the snapshot and /readyz folds it in.
func TestWorkerzReportsFleetStatus(t *testing.T) {
	cfg := testConfig()
	cfg.FleetStatus = func() any {
		return map[string]any{"name": "w-test", "completed": 7}
	}
	_, ts := newTestServer(t, cfg)

	res, err := http.Get(ts.URL + "/workerz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /workerz = %d, want 200", res.StatusCode)
	}
	var got map[string]any
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["name"] != "w-test" || got["completed"] != float64(7) {
		t.Fatalf("workerz body = %v", got)
	}

	rres, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rres.Body.Close()
	var st ReadyState
	if err := json.NewDecoder(rres.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	fl, ok := st.Fleet.(map[string]any)
	if !ok || fl["name"] != "w-test" {
		t.Fatalf("readyz fleet section = %v", st.Fleet)
	}
}

// TestServerServesFromSharedStore: a cell another process completed
// into the shared store is served by /v1/simulate without recompute,
// with results identical to a direct run — the serving path's L2.
func TestServerServesFromSharedStore(t *testing.T) {
	st, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Logf = t.Logf

	// "Another fleet worker" completes the cell.
	opt := sim.ScaledOptions(8)
	opt.Seed = 1
	opt.Frames = 1
	r := sim.NewRunner(opt)
	r.Store = st
	want, err := r.RunOneWith("TRu", mustPolicy(t, "DTexL"), nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.Store = st
	_, ts := newTestServer(t, cfg)
	code, res, eres, _ := post(t, ts.URL, SimRequest{Benchmark: "TRu", Policy: "DTexL"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, eres)
	}
	if !reflect.DeepEqual(res.Metrics, want.Metrics) || res.Energy != want.Energy {
		t.Error("store-served response differs from the direct run")
	}
	stats := st.Stats()
	if stats.Hits < 1 {
		t.Errorf("store hits = %d, want the server lookup to hit", stats.Hits)
	}

	// And the readiness body carries the store counters.
	rres, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rres.Body.Close()
	var rs ReadyState
	if err := json.NewDecoder(rres.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	if rs.Store == nil || rs.Store.Hits < 1 {
		t.Errorf("readyz store section = %+v, want hit counters", rs.Store)
	}
}
