package trace

import (
	"fmt"
	"math"

	"dtexl/internal/texture"
)

// Profile parameterizes one synthetic benchmark. The ten instances below
// stand in for the commercial games of Table I; the knobs encode the
// workload properties the paper's analysis attributes the per-game
// variation to — texture footprint, overdraw and its spatial clustering,
// object shape bias, shader cost and filtering mode.
type Profile struct {
	Name     string // full game title (Table I)
	Alias    string // three-letter alias used in all figures
	Installs int    // millions of Google Play installs (Table I)
	Genre    string
	Is2D     bool

	// TextureFootprintMiB is the total texture memory, matching Table I.
	TextureFootprintMiB float64
	// Overdraw is the average number of generated fragments per pixel
	// (background included).
	Overdraw float64
	// Clustering in [0,1] is the fraction of object geometry concentrated
	// around a few screen hotspots — the depth-complexity clustering that
	// makes coarse-grained schedulers imbalanced (§II-B).
	Clustering float64
	// HorizontalBias >= 1 elongates objects horizontally; the paper
	// observes more overdraw clustering horizontally than vertically
	// ("gravity forces objects to be more horizontally shaped", §V-A).
	HorizontalBias float64
	// MeanTriArea is the mean on-screen triangle area in pixels.
	MeanTriArea float64
	// ShaderLen bounds the per-quad ALU instruction count [min, max].
	ShaderLen [2]int
	// SamplesPerQuad bounds the texture samples per quad [min, max].
	SamplesPerQuad [2]int
	Filter         texture.Filter
	// TexelDensity is texels per pixel at which surfaces are mapped.
	TexelDensity float64
	// Reuse in [0,1] is the probability that a primitive samples a shared
	// atlas region rather than a private one — cross-primitive texture
	// block reuse ("reuse of texture memory blocks varies greatly across
	// games", §IV-B).
	Reuse float64
	// UVJitter is the amplitude, in texels, of per-quad pseudo-random
	// sampling offsets (dependent reads, distortion effects). It lowers
	// the fraction of texture lines shared between adjacent quads.
	UVJitter float64
	// TransparentFrac in [0,1] is the fraction of object batches drawn
	// with alpha blending (particles, UI, glass). Transparent fragments
	// never update the Z-Buffer, adding the paper's §II-B transparency
	// overdraw.
	TransparentFrac float64
}

// inRange reports min <= v <= max; NaN fails every range.
func inRange(v, min, max float64) bool { return v >= min && v <= max }

// Validate reports whether the profile's knobs are inside the ranges the
// scene generator is defined over. The bounds are deliberately generous
// around the Table I suite but exclude the degenerate corners a fuzzer
// finds: NaN/Inf knobs, zero triangle areas, sample counts beyond the
// engine's per-warp fill slots (4), and shader lengths that overflow the
// generator's int16 instruction field.
func (p Profile) Validate() error {
	switch {
	case !(p.TextureFootprintMiB > 0) || p.TextureFootprintMiB > 64:
		return fmt.Errorf("trace: TextureFootprintMiB %v outside (0, 64]", p.TextureFootprintMiB)
	case !inRange(p.Overdraw, 1, 16):
		return fmt.Errorf("trace: Overdraw %v outside [1, 16]", p.Overdraw)
	case !inRange(p.Clustering, 0, 1):
		return fmt.Errorf("trace: Clustering %v outside [0, 1]", p.Clustering)
	case !inRange(p.HorizontalBias, 1, 8):
		return fmt.Errorf("trace: HorizontalBias %v outside [1, 8]", p.HorizontalBias)
	case !(p.MeanTriArea >= 1) || math.IsInf(p.MeanTriArea, 1):
		return fmt.Errorf("trace: MeanTriArea %v must be finite and >= 1", p.MeanTriArea)
	case p.ShaderLen[0] <= 0 || p.ShaderLen[1] < p.ShaderLen[0] || p.ShaderLen[1] > 1024:
		return fmt.Errorf("trace: ShaderLen %v must satisfy 0 < min <= max <= 1024", p.ShaderLen)
	case p.SamplesPerQuad[0] < 1 || p.SamplesPerQuad[1] < p.SamplesPerQuad[0] || p.SamplesPerQuad[1] > 4:
		return fmt.Errorf("trace: SamplesPerQuad %v must satisfy 1 <= min <= max <= 4", p.SamplesPerQuad)
	case p.Filter != texture.Bilinear && p.Filter != texture.Trilinear && p.Filter != texture.Aniso2x:
		return fmt.Errorf("trace: unknown texture filter %v", p.Filter)
	case !(p.TexelDensity > 0) || p.TexelDensity > 16:
		return fmt.Errorf("trace: TexelDensity %v outside (0, 16]", p.TexelDensity)
	case !inRange(p.Reuse, 0, 1):
		return fmt.Errorf("trace: Reuse %v outside [0, 1]", p.Reuse)
	case !inRange(p.UVJitter, 0, 64):
		return fmt.Errorf("trace: UVJitter %v outside [0, 64]", p.UVJitter)
	case !inRange(p.TransparentFrac, 0, 1):
		return fmt.Errorf("trace: TransparentFrac %v outside [0, 1]", p.TransparentFrac)
	}
	return nil
}

// Profiles returns the ten-game benchmark suite of Table I in table
// order.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "Candy Crush Saga", Alias: "CCS", Installs: 1000, Genre: "Puzzle", Is2D: true,
			TextureFootprintMiB: 2.4, Overdraw: 1.9, Clustering: 0.30, HorizontalBias: 1.2,
			MeanTriArea: 1400, ShaderLen: [2]int{18, 36}, SamplesPerQuad: [2]int{1, 2},
			Filter: texture.Bilinear, TexelDensity: 1.4, Reuse: 0.70, UVJitter: 3.5, TransparentFrac: 0.35,
		},
		{
			Name: "Sonic Dash", Alias: "SoD", Installs: 100, Genre: "Arcade", Is2D: false,
			TextureFootprintMiB: 1.4, Overdraw: 2.4, Clustering: 0.50, HorizontalBias: 1.5,
			MeanTriArea: 2200, ShaderLen: [2]int{24, 48}, SamplesPerQuad: [2]int{2, 3},
			Filter: texture.Trilinear, TexelDensity: 1.4, Reuse: 0.50, UVJitter: 3.5, TransparentFrac: 0.15,
		},
		{
			Name: "Temple Run", Alias: "TRu", Installs: 500, Genre: "Arcade", Is2D: false,
			TextureFootprintMiB: 0.4, Overdraw: 2.8, Clustering: 0.80, HorizontalBias: 1.6,
			MeanTriArea: 2600, ShaderLen: [2]int{27, 57}, SamplesPerQuad: [2]int{2, 3},
			Filter: texture.Trilinear, TexelDensity: 1.5, Reuse: 0.60, UVJitter: 3.5, TransparentFrac: 0.12,
		},
		{
			Name: "Shoot Strike War Fire", Alias: "SWa", Installs: 10, Genre: "Shooter", Is2D: false,
			TextureFootprintMiB: 0.2, Overdraw: 2.2, Clustering: 0.50, HorizontalBias: 1.3,
			MeanTriArea: 1800, ShaderLen: [2]int{24, 42}, SamplesPerQuad: [2]int{2, 2},
			Filter: texture.Bilinear, TexelDensity: 1.3, Reuse: 0.60, UVJitter: 3.5, TransparentFrac: 0.18,
		},
		{
			Name: "City Racing 3D", Alias: "CRa", Installs: 50, Genre: "Racing", Is2D: false,
			TextureFootprintMiB: 2.8, Overdraw: 2.5, Clustering: 0.60, HorizontalBias: 2.0,
			MeanTriArea: 2400, ShaderLen: [2]int{27, 54}, SamplesPerQuad: [2]int{2, 4},
			Filter: texture.Aniso2x, TexelDensity: 1.6, Reuse: 0.40, UVJitter: 3.5, TransparentFrac: 0.15,
		},
		{
			Name: "Rise of Kingdoms: Lost Crusade", Alias: "RoK", Installs: 10, Genre: "Strategy", Is2D: true,
			TextureFootprintMiB: 6.8, Overdraw: 2.0, Clustering: 0.35, HorizontalBias: 1.2,
			MeanTriArea: 1600, ShaderLen: [2]int{18, 39}, SamplesPerQuad: [2]int{1, 3},
			Filter: texture.Bilinear, TexelDensity: 1.4, Reuse: 0.30, UVJitter: 3.5, TransparentFrac: 0.30,
		},
		{
			Name: "Derby Destruction Simulator", Alias: "DDS", Installs: 10, Genre: "Racing", Is2D: false,
			TextureFootprintMiB: 1.4, Overdraw: 2.4, Clustering: 0.55, HorizontalBias: 1.8,
			MeanTriArea: 2200, ShaderLen: [2]int{24, 48}, SamplesPerQuad: [2]int{2, 3},
			Filter: texture.Aniso2x, TexelDensity: 1.5, Reuse: 0.50, UVJitter: 3.5, TransparentFrac: 0.15,
		},
		{
			Name: "Sniper 3D", Alias: "Snp", Installs: 500, Genre: "Shooter", Is2D: false,
			TextureFootprintMiB: 1.8, Overdraw: 2.3, Clustering: 0.50, HorizontalBias: 1.4,
			MeanTriArea: 2000, ShaderLen: [2]int{27, 51}, SamplesPerQuad: [2]int{2, 3},
			Filter: texture.Trilinear, TexelDensity: 1.4, Reuse: 0.50, UVJitter: 3.5, TransparentFrac: 0.15,
		},
		{
			Name: "3D Maze 2: Diamonds & Ghosts", Alias: "Mze", Installs: 10, Genre: "Arcade", Is2D: false,
			TextureFootprintMiB: 2.4, Overdraw: 2.6, Clustering: 0.60, HorizontalBias: 1.7,
			MeanTriArea: 2400, ShaderLen: [2]int{21, 45}, SamplesPerQuad: [2]int{2, 3},
			Filter: texture.Trilinear, TexelDensity: 1.4, Reuse: 0.50, UVJitter: 3.5, TransparentFrac: 0.10,
		},
		{
			Name: "Gravitytetris", Alias: "GTr", Installs: 5, Genre: "Puzzle", Is2D: false,
			TextureFootprintMiB: 0.7, Overdraw: 2.1, Clustering: 0.45, HorizontalBias: 1.3,
			MeanTriArea: 1500, ShaderLen: [2]int{19, 38}, SamplesPerQuad: [2]int{2, 4},
			Filter: texture.Trilinear, TexelDensity: 1.4, Reuse: 0.80, UVJitter: 3.5, TransparentFrac: 0.20,
		},
	}
}

// ProfileByAlias looks a profile up by its Table I alias.
func ProfileByAlias(alias string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Alias == alias {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark alias %q", alias)
}

// Aliases returns the ten benchmark aliases in Table I order.
func Aliases() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Alias
	}
	return out
}
