package trace

import (
	"math"

	"dtexl/internal/geom"
	"dtexl/internal/texture"
)

// Memory-map constants for generated scenes. Textures and vertex buffers
// live in disjoint regions of the GPU address space so cache sets see
// realistic mixing without aliasing bugs.
const (
	textureArenaBase = 0x1000_0000
	vertexArenaBase  = 0x4000_0000
	arenaAlign       = 1 << 16
)

// trianglesPerDraw bounds the batch size of generated draw commands,
// mimicking how engines batch sprites/meshes by material.
const trianglesPerDraw = 32

// atlasSlots is the number of shared texture regions per texture that
// primitives with Reuse sample from.
const atlasSlots = 8

// maxGeneratedTriangles caps one frame's foreground triangle count so a
// hostile or fuzzed profile (tiny MeanTriArea, huge Overdraw) cannot ask
// the generator for an effectively unbounded scene. The Table I profiles
// sit orders of magnitude below it at full resolution.
const maxGeneratedTriangles = 1 << 20

// GenerateScene synthesizes one frame for profile p at the given screen
// size. The same (profile, size, seed) always produces the identical
// scene. It is frame 0 of GenerateFrame's animation.
func GenerateScene(p Profile, width, height int, seed uint64) *Scene {
	return GenerateFrame(p, width, height, seed, 0)
}

// scrollDivisor sets the camera speed: the camera pans width/scrollDivisor
// pixels per frame through a world twice the screen width.
const scrollDivisor = 8

// GenerateFrame synthesizes frame `frame` of a deterministic animation:
// the same world of objects (fixed by seed) viewed through a camera that
// pans horizontally each frame, wrapping around a world twice the screen
// width. Consecutive frames therefore share most of their texture
// working set — the cross-frame reuse a warm L2 exploits — while the
// overdraw hotspots drift across tile and Subtile boundaries.
func GenerateFrame(p Profile, width, height int, seed uint64, frame int) *Scene {
	rng := NewRNG(seed*0x9e3779b9 + hashAlias(p.Alias))
	s := &Scene{Width: width, Height: height}

	s.Textures = allocTextures(p.TextureFootprintMiB)

	// The application draws in pixel coordinates; one shared orthographic
	// transform maps them to clip space (depth passes through).
	ortho := geom.Orthographic(0, float64(width), float64(height), 0, 0, 1)

	worldW := 2 * float64(width)
	cameraX := math.Mod(float64(frame)*float64(width)/scrollDivisor, worldW)

	g := &sceneGen{
		p: p, rng: rng, scene: s, ortho: ortho,
		width: float64(width), height: float64(height),
		worldW: worldW, cameraX: cameraX,
		vertexCursor: vertexArenaBase,
	}
	g.prepareAtlases()
	g.emitBackground()
	g.emitObjects()
	return s
}

// hashAlias gives each benchmark an independent random stream for the
// same seed.
func hashAlias(alias string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(alias); i++ {
		h ^= uint64(alias[i])
		h *= 1099511628211
	}
	return h
}

// allocTextures builds a texture set totalling approximately footprintMiB
// mebibytes, preferring larger textures first (as real asset sets do).
func allocTextures(footprintMiB float64) []*texture.Texture {
	var texs []*texture.Texture
	base := uint64(textureArenaBase)
	remaining := footprintMiB * (1 << 20)
	sides := []int{512, 256, 128, 64, 32}
	id := 0
	for {
		var chosen int
		for _, side := range sides {
			if approxTexBytes(side) <= remaining {
				chosen = side
				break
			}
		}
		if chosen == 0 {
			if len(texs) == 0 {
				chosen = sides[len(sides)-1] // always at least one texture
			} else {
				break
			}
		}
		t := texture.New(id, base, chosen, chosen)
		texs = append(texs, t)
		base += (t.SizeBytes() + arenaAlign - 1) &^ (arenaAlign - 1)
		remaining -= float64(t.SizeBytes())
		id++
	}
	return texs
}

// approxTexBytes estimates the full mip-chain size of a square texture.
func approxTexBytes(side int) float64 {
	return float64(side) * float64(side) * texture.BytesPerTexel * 4 / 3
}

type atlasSlot struct {
	u, v float64
}

type sceneGen struct {
	p               Profile
	rng             *RNG
	scene           *Scene
	ortho           geom.Mat4
	width, height   float64
	worldW, cameraX float64
	vertexCursor    uint64
	atlases         [][]atlasSlot // per texture: shared UV origins
	hotspots        []geom.Vec2
}

func (g *sceneGen) prepareAtlases() {
	g.atlases = make([][]atlasSlot, len(g.scene.Textures))
	for i := range g.atlases {
		slots := make([]atlasSlot, atlasSlots)
		for j := range slots {
			slots[j] = atlasSlot{u: g.rng.Float64(), v: g.rng.Float64()}
		}
		g.atlases[i] = slots
	}
	// Overdraw hotspots: a few world regions of high depth complexity
	// (more of them across the whole world so the visible count stays in
	// the usual 3-5 range as the camera pans).
	n := int(6 + g.rng.Intn(5))
	for i := 0; i < n; i++ {
		g.hotspots = append(g.hotspots, geom.Vec2{
			X: g.rng.Float64() * g.worldW,
			Y: g.rng.Range(0.15, 0.85) * g.height,
		})
	}
}

// emitBackground covers the full screen with two large textured triangles
// at far depth: the sky/board layer every game has.
func (g *sceneGen) emitBackground() {
	tex := g.scene.Textures[0]
	w, h := g.width, g.height
	density := g.p.TexelDensity
	du := density / float64(tex.Width)
	dv := density / float64(tex.Height)
	u0 := g.cameraX * du // the background scrolls with the camera
	verts := []Vertex{
		{Pos: geom.Vec3{X: 0, Y: 0, Z: 0.99}, UV: geom.Vec2{X: u0, Y: 0}},
		{Pos: geom.Vec3{X: w, Y: 0, Z: 0.99}, UV: geom.Vec2{X: u0 + w*du, Y: 0}},
		{Pos: geom.Vec3{X: 0, Y: h, Z: 0.99}, UV: geom.Vec2{X: u0, Y: h * dv}},
		{Pos: geom.Vec3{X: w, Y: h, Z: 0.99}, UV: geom.Vec2{X: u0 + w*du, Y: h * dv}},
	}
	g.scene.Draws = append(g.scene.Draws, DrawCommand{
		Transform:      g.ortho,
		VertexBase:     g.allocVertices(len(verts)),
		Vertices:       verts,
		Indices:        []int{0, 1, 2, 2, 1, 3},
		Tex:            tex,
		Shader:         ShaderProfile{Instructions: g.p.ShaderLen[0], Samples: 1},
		Filter:         g.p.Filter,
		UVJitterTexels: g.p.UVJitter,
		Alpha:          1,
	})
}

// emitObjects generates the foreground geometry: triangles whose total
// area realizes the profile's overdraw factor, clustered around hotspots
// and batched into draw commands by texture.
func (g *sceneGen) emitObjects() {
	// Objects populate the whole (wider-than-screen) world; scale the
	// area budget so the visible portion realizes the overdraw factor.
	targetArea := (g.p.Overdraw - 1) * g.worldW * g.height
	if targetArea <= 0 {
		return
	}
	// The !(x < cap) form also catches NaN and +Inf from degenerate
	// profile knobs (e.g. MeanTriArea ~ 0), which a plain int conversion
	// would turn into an implementation-defined count.
	tris := targetArea / g.p.MeanTriArea
	if !(tris < maxGeneratedTriangles) {
		tris = maxGeneratedTriangles
	}
	numTris := int(tris)
	if numTris < 1 {
		numTris = 1
	}

	// Engines sort by material: generate per-texture runs.
	emitted := 0
	for emitted < numTris {
		texIdx := g.rng.Intn(len(g.scene.Textures))
		run := g.rng.IntRange(trianglesPerDraw/2, trianglesPerDraw)
		if run > numTris-emitted {
			run = numTris - emitted
		}
		shader := ShaderProfile{
			Instructions: g.rng.IntRange(g.p.ShaderLen[0], g.p.ShaderLen[1]),
			Samples:      g.rng.IntRange(g.p.SamplesPerQuad[0], g.p.SamplesPerQuad[1]),
		}
		g.emitBatch(texIdx, shader, run, emitted, numTris)
		emitted += run
	}
}

// emitBatch emits one draw command with `count` triangles over texture
// texIdx. A TransparentFrac share of batches renders with alpha blending.
func (g *sceneGen) emitBatch(texIdx int, shader ShaderProfile, count, seqBase, seqTotal int) {
	alpha := 1.0
	if g.rng.Float64() < g.p.TransparentFrac {
		alpha = g.rng.Range(0.3, 0.8)
	}
	tex := g.scene.Textures[texIdx]
	verts := make([]Vertex, 0, count*3)
	idx := make([]int, 0, count*3)
	for i := 0; i < count; i++ {
		tri := g.randomTriangle(seqBase+i, seqTotal)
		uvo := g.uvOrigin(texIdx)
		du := g.p.TexelDensity / float64(tex.Width)
		dv := g.p.TexelDensity / float64(tex.Height)
		for _, pv := range tri {
			verts = append(verts, Vertex{
				Pos: pv,
				UV: geom.Vec2{
					X: uvo.X + (pv.X-tri[0].X)*du,
					Y: uvo.Y + (pv.Y-tri[0].Y)*dv,
				},
			})
			idx = append(idx, len(verts)-1)
		}
	}
	g.scene.Draws = append(g.scene.Draws, DrawCommand{
		Transform:      g.ortho,
		VertexBase:     g.allocVertices(len(verts)),
		Vertices:       verts,
		Indices:        idx,
		Tex:            tex,
		Shader:         shader,
		Filter:         g.p.Filter,
		UVJitterTexels: g.p.UVJitter,
		Alpha:          alpha,
	})
}

// uvOrigin picks where on the texture a primitive samples: a shared atlas
// slot with probability Reuse, else a private random origin.
func (g *sceneGen) uvOrigin(texIdx int) geom.Vec2 {
	if g.rng.Float64() < g.p.Reuse {
		s := g.atlases[texIdx][g.rng.Intn(atlasSlots)]
		return geom.Vec2{X: s.u, Y: s.v}
	}
	return geom.Vec2{X: g.rng.Float64(), Y: g.rng.Float64()}
}

// randomTriangle places one object triangle: near a hotspot with
// probability Clustering, elongated horizontally per HorizontalBias, with
// depth by game type (2D games paint back-to-front; 3D games submit in
// arbitrary depth order).
func (g *sceneGen) randomTriangle(seq, seqTotal int) [3]geom.Vec3 {
	var cx, cy float64
	if g.rng.Float64() < g.p.Clustering {
		h := g.hotspots[g.rng.Intn(len(g.hotspots))]
		sigma := g.width / 16
		cx = g.rng.Gaussian(h.X, sigma)
		cy = g.rng.Gaussian(h.Y, sigma/g.p.HorizontalBias)
	} else {
		cx = g.rng.Float64() * g.worldW
		cy = g.rng.Float64() * g.height
	}
	// World -> camera space, wrapping around the world. Objects outside
	// the view land off-screen and are dropped by the Geometry Pipeline.
	cx = math.Mod(cx-g.cameraX+g.worldW, g.worldW)
	cy = geom.Clamp(cy, 0, g.height-1)

	area := g.rng.Triangular(0.5*g.p.MeanTriArea, 1.5*g.p.MeanTriArea)
	// Triangle area = base*height/2; bias the base horizontally.
	base := math.Sqrt(2*area) * math.Sqrt(g.p.HorizontalBias)
	ht := 2 * area / base

	var depth float64
	if g.p.Is2D {
		// Painter's algorithm: later primitives are closer (smaller z), so
		// Early-Z never culls — 2D overdraw is paid in full.
		depth = 0.95 - 0.9*float64(seq)/float64(seqTotal)
	} else {
		depth = g.rng.Range(0.05, 0.95)
	}

	apexShift := g.rng.Range(-0.4, 0.4) * base
	return [3]geom.Vec3{
		{X: cx - base/2, Y: cy + ht/2, Z: depth},
		{X: cx + base/2, Y: cy + ht/2, Z: depth},
		{X: cx + apexShift, Y: cy - ht/2, Z: depth},
	}
}

func (g *sceneGen) allocVertices(n int) uint64 {
	addr := g.vertexCursor
	g.vertexCursor += uint64(n*VertexBytes+arenaAlign-1) &^ (arenaAlign - 1)
	return addr
}

// GenerateAnimation synthesizes `frames` consecutive frames of profile
// p's panning-camera animation.
func GenerateAnimation(p Profile, width, height int, seed uint64, frames int) []*Scene {
	if frames < 1 {
		frames = 1
	}
	out := make([]*Scene, frames)
	for f := 0; f < frames; f++ {
		out[f] = GenerateFrame(p, width, height, seed, f)
	}
	return out
}
