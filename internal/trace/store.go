package trace

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// sceneKey identifies one generated animation: scene synthesis is a pure
// function of these five values (GenerateFrame seeds its generator from
// them alone), so equal keys mean bit-identical scenes.
type sceneKey struct {
	alias  string
	width  int
	height int
	seed   uint64
	frames int
}

// sceneFlight is one in-progress or completed generation. done is closed
// exactly once, after scenes/err are set.
type sceneFlight struct {
	done   chan struct{}
	scenes []*Scene
	err    error
}

// SceneStore memoizes GenerateAnimation with single-flight deduplication:
// concurrent requests for the same (profile, resolution, seed, frames)
// key share one generation, and every caller receives the same read-only
// scene slice. Scenes are never mutated by the pipeline, so sharing is
// safe across goroutines.
//
// The zero value is not usable; use NewSceneStore.
type SceneStore struct {
	mu      sync.Mutex
	flights map[sceneKey]*sceneFlight

	hits   uint64
	misses uint64

	// gen generates one animation; it defaults to GenerateAnimation and
	// exists so tests can substitute a gated generator to exercise the
	// cancellable-wait path deterministically.
	gen func(p Profile, width, height int, seed uint64, frames int) []*Scene
}

// NewSceneStore returns an empty store.
func NewSceneStore() *SceneStore {
	return &SceneStore{flights: make(map[sceneKey]*sceneFlight), gen: GenerateAnimation}
}

// Animation returns the memoized animation for profile p at the given
// resolution, seed and frame count, generating it on first use. It is
// AnimationContext under context.Background(): the wait on another
// goroutine's in-flight generation is not cancellable.
func (s *SceneStore) Animation(p Profile, width, height int, seed uint64, frames int) ([]*Scene, error) {
	return s.AnimationContext(context.Background(), p, width, height, seed, frames)
}

// AnimationContext is Animation with a cancellable wait: a caller that
// lands while another goroutine is generating the same key blocks until
// that generation completes or ctx ends, whichever is first. A failed
// generation is not cached — its entry is removed before its waiters
// are released, so a later call retries. Generation itself runs to
// completion regardless of ctx (it is shared work other waiters may
// still want); only the wait is cancellable.
func (s *SceneStore) AnimationContext(ctx context.Context, p Profile, width, height int, seed uint64, frames int) (scenes []*Scene, err error) {
	key := sceneKey{alias: p.Alias, width: width, height: height, seed: seed, frames: frames}
	for {
		s.mu.Lock()
		if f, ok := s.flights[key]; ok {
			s.hits++
			s.mu.Unlock()
			// A completed flight is served even under a dead context: ctx
			// guards only the blocking wait, never a cache hit.
			select {
			case <-f.done:
			default:
				select {
				case <-f.done:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			if f.err != nil && isCtxErr(f.err) && ctx.Err() == nil {
				// The generating caller was cancelled under its own context
				// while ours is live; the entry is gone, so retry.
				continue
			}
			return f.scenes, f.err
		}
		f := &sceneFlight{done: make(chan struct{})}
		s.flights[key] = f
		s.misses++
		s.mu.Unlock()

		defer func() {
			if r := recover(); r != nil {
				// A panicking generation must not kill the process (the call
				// may run on a Warm worker goroutine) or hand waiters a silent
				// (nil, nil): convert it to an error for generator and waiters
				// alike.
				f.err = fmt.Errorf("trace: scene generation panicked: %v\n%s", r, debug.Stack())
				scenes, err = nil, f.err
			}
			if f.scenes == nil {
				// Generation failed or panicked: drop the entry so a later
				// call retries instead of observing a partial result.
				s.mu.Lock()
				delete(s.flights, key)
				s.mu.Unlock()
			}
			close(f.done)
		}()
		f.scenes = s.gen(p, width, height, seed, frames)
		return f.scenes, f.err
	}
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats reports the store's hit/miss counters (hits include waits on an
// in-flight generation).
func (s *SceneStore) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
