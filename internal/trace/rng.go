// Package trace synthesizes the graphics workloads the evaluation runs:
// ten parameterized scene generators standing in for the commercial
// Android games of Table I (see DESIGN.md for the substitution argument).
// A scene is a list of draw commands — vertex buffers, transforms,
// texture bindings and shader profiles — exactly what the Geometry
// Pipeline consumes.
package trace

import "math"

// RNG is a small, fast, deterministic PRNG (splitmix64). Scene generation
// must be reproducible across runs and platforms, so the generators use
// this instead of math/rand.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Triangular returns a sample from a triangular distribution on
// [lo, hi] peaked at the midpoint — a cheap stand-in for "mostly average,
// occasionally extreme" workload attributes.
func (r *RNG) Triangular(lo, hi float64) float64 {
	return lo + (hi-lo)*(r.Float64()+r.Float64())/2
}

// Gaussian returns an approximately normal sample with the given mean and
// standard deviation (Irwin–Hall sum of 6 uniforms, bounded to ±3σ).
func (r *RNG) Gaussian(mean, sigma float64) float64 {
	s := 0.0
	for i := 0; i < 6; i++ {
		s += r.Float64()
	}
	// Sum of 6 uniforms: mean 3, variance 0.5 -> normalize to N(0,1)-ish.
	z := (s - 3) / math.Sqrt(0.5)
	return mean + sigma*z
}
