package trace

import (
	"dtexl/internal/geom"
	"dtexl/internal/texture"
)

// VertexBytes is the in-memory size of one vertex (position, UV, padding
// to a power-of-two stride), used to generate vertex-fetch addresses.
const VertexBytes = 32

// Vertex is one input vertex: an object-space position and a texture
// coordinate.
type Vertex struct {
	Pos geom.Vec3
	UV  geom.Vec2
}

// ShaderProfile describes the per-quad cost of a draw's fragment shader:
// how many ALU instructions run between texture samples and how many
// texture samples each quad performs. Together with the texture footprint
// this determines quad execution time in the shader core.
type ShaderProfile struct {
	// Instructions is the number of single-cycle ALU instructions per
	// quad, spread uniformly between the samples.
	Instructions int
	// Samples is the number of texture samples per quad.
	Samples int
}

// DrawCommand is the unit of work submitted to the Geometry Pipeline: an
// indexed triangle list with its transform, texture and shader state.
type DrawCommand struct {
	// Transform maps object space directly to clip space (projection *
	// modelview), as produced by the application.
	Transform geom.Mat4
	// VertexBase is the address of the vertex buffer in GPU memory; the
	// Vertex Stage fetches through the vertex cache at
	// VertexBase + index*VertexBytes.
	VertexBase uint64
	Vertices   []Vertex
	// Indices is a triangle list (length divisible by 3) into Vertices.
	Indices []int
	Tex     *texture.Texture
	Shader  ShaderProfile
	Filter  texture.Filter
	// UVJitterTexels is the amplitude of the per-quad pseudo-random
	// sampling offset this draw's shader applies (dependent reads).
	UVJitterTexels float64
	// Alpha is the draw's opacity: 1 renders opaque (depth-writing);
	// anything below 1 renders transparent — fragments blend over the
	// color buffer and do not update the Z-Buffer, so they cannot occlude
	// later work (the paper's §II-B transparency overdraw).
	Alpha float64
}

// Scene is one frame's worth of input: the draw commands in submission
// order plus the textures they reference.
type Scene struct {
	Draws    []DrawCommand
	Textures []*texture.Texture
	// Width, Height are the target screen dimensions in pixels.
	Width, Height int
}

// TriangleCount returns the total number of triangles across all draws.
func (s *Scene) TriangleCount() int {
	n := 0
	for i := range s.Draws {
		n += len(s.Draws[i].Indices) / 3
	}
	return n
}

// TextureFootprintBytes returns the total size of all referenced
// textures, the Table I "texture footprint" metric.
func (s *Scene) TextureFootprintBytes() uint64 {
	var n uint64
	for _, t := range s.Textures {
		n += t.SizeBytes()
	}
	return n
}
