package trace

import (
	"math"
	"testing"
	"testing/quick"

	"dtexl/internal/texture"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn = %d", n)
		}
		if x := r.Range(2, 5); x < 2 || x >= 5 {
			t.Fatalf("Range = %v", x)
		}
		if n := r.IntRange(3, 6); n < 3 || n > 6 {
			t.Fatalf("IntRange = %d", n)
		}
		if x := r.Triangular(0, 10); x < 0 || x > 10 {
			t.Fatalf("Triangular = %v", x)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Errorf("degenerate IntRange = %d", got)
	}
	if got := r.IntRange(5, 2); got != 5 {
		t.Errorf("inverted IntRange = %d", got)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	var buckets [10]int
	n := 100000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, b := range buckets {
		if math.Abs(float64(b)-float64(n)/10) > float64(n)/10*0.1 {
			t.Errorf("bucket %d = %d, far from uniform", i, b)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	r := NewRNG(5)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Gaussian(10, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.15 {
		t.Errorf("sigma = %v", math.Sqrt(variance))
	}
}

func TestProfilesMatchTableI(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("suite size = %d, want 10", len(ps))
	}
	footprints := map[string]float64{
		"CCS": 2.4, "SoD": 1.4, "TRu": 0.4, "SWa": 0.2, "CRa": 2.8,
		"RoK": 6.8, "DDS": 1.4, "Snp": 1.8, "Mze": 2.4, "GTr": 0.7,
	}
	types2D := map[string]bool{"CCS": true, "RoK": true}
	for _, p := range ps {
		want, ok := footprints[p.Alias]
		if !ok {
			t.Errorf("unexpected alias %q", p.Alias)
			continue
		}
		if p.TextureFootprintMiB != want {
			t.Errorf("%s footprint = %v, want %v", p.Alias, p.TextureFootprintMiB, want)
		}
		if p.Is2D != types2D[p.Alias] {
			t.Errorf("%s Is2D = %v", p.Alias, p.Is2D)
		}
		if p.Overdraw <= 1 {
			t.Errorf("%s overdraw %v must exceed 1", p.Alias, p.Overdraw)
		}
		if p.HorizontalBias < 1 {
			t.Errorf("%s horizontal bias %v must be >= 1", p.Alias, p.HorizontalBias)
		}
	}
}

func TestProfileByAlias(t *testing.T) {
	p, err := ProfileByAlias("GTr")
	if err != nil || p.Name != "Gravitytetris" {
		t.Errorf("ProfileByAlias(GTr) = %+v, %v", p, err)
	}
	if _, err := ProfileByAlias("nope"); err == nil {
		t.Error("unknown alias accepted")
	}
	if n := len(Aliases()); n != 10 {
		t.Errorf("Aliases() returned %d entries", n)
	}
}

func TestGenerateSceneDeterministic(t *testing.T) {
	p, _ := ProfileByAlias("TRu")
	a := GenerateScene(p, 512, 256, 7)
	b := GenerateScene(p, 512, 256, 7)
	if len(a.Draws) != len(b.Draws) || a.TriangleCount() != b.TriangleCount() {
		t.Fatal("same seed produced different scenes")
	}
	for i := range a.Draws {
		if len(a.Draws[i].Vertices) != len(b.Draws[i].Vertices) {
			t.Fatal("draw vertex counts differ")
		}
		for j := range a.Draws[i].Vertices {
			if a.Draws[i].Vertices[j] != b.Draws[i].Vertices[j] {
				t.Fatal("vertex data differs")
			}
		}
	}
	c := GenerateScene(p, 512, 256, 8)
	if c.TriangleCount() == a.TriangleCount() && len(c.Draws) == len(a.Draws) {
		// Counts may coincide, but vertex data must differ somewhere.
		differs := false
	outer:
		for i := range a.Draws {
			for j := range a.Draws[i].Vertices {
				if a.Draws[i].Vertices[j] != c.Draws[i].Vertices[j] {
					differs = true
					break outer
				}
			}
		}
		if !differs {
			t.Error("different seeds produced identical scenes")
		}
	}
}

func TestGeneratedFootprintMatchesProfile(t *testing.T) {
	for _, p := range Profiles() {
		s := GenerateScene(p, 256, 128, 1)
		got := float64(s.TextureFootprintBytes()) / (1 << 20)
		if got < 0.4*p.TextureFootprintMiB || got > 1.8*p.TextureFootprintMiB {
			t.Errorf("%s: generated footprint %.2f MiB, profile says %.2f MiB", p.Alias, got, p.TextureFootprintMiB)
		}
	}
}

func TestGeneratedCoverageMatchesOverdraw(t *testing.T) {
	// Total generated triangle area should be close to Overdraw * screen.
	for _, alias := range []string{"CCS", "TRu", "CRa"} {
		p, _ := ProfileByAlias(alias)
		w, h := 640, 360
		s := GenerateScene(p, w, h, 3)
		area := 0.0
		for _, d := range s.Draws {
			for i := 0; i+2 < len(d.Indices); i += 3 {
				a := d.Vertices[d.Indices[i]].Pos
				b := d.Vertices[d.Indices[i+1]].Pos
				c := d.Vertices[d.Indices[i+2]].Pos
				// The world is wider than the screen: count only the
				// visible population (center on-screen).
				cx := (a.X + b.X + c.X) / 3
				cy := (a.Y + b.Y + c.Y) / 3
				if cx < 0 || cx >= float64(w) || cy < 0 || cy >= float64(h) {
					continue
				}
				area += math.Abs((b.X-a.X)*(c.Y-a.Y)-(c.X-a.X)*(b.Y-a.Y)) / 2
			}
		}
		want := p.Overdraw * float64(w*h)
		if area < 0.55*want || area > 1.45*want {
			t.Errorf("%s: visible area %.0f, want about %.0f", alias, area, want)
		}
	}
}

func TestGeneratedSceneStructure(t *testing.T) {
	p, _ := ProfileByAlias("SoD")
	s := GenerateScene(p, 512, 256, 11)
	if len(s.Textures) == 0 {
		t.Fatal("no textures")
	}
	if len(s.Draws) < 2 {
		t.Fatalf("only %d draws", len(s.Draws))
	}
	for di, d := range s.Draws {
		if len(d.Indices)%3 != 0 {
			t.Errorf("draw %d: index count %d not divisible by 3", di, len(d.Indices))
		}
		for _, ix := range d.Indices {
			if ix < 0 || ix >= len(d.Vertices) {
				t.Fatalf("draw %d: index %d out of range", di, ix)
			}
		}
		if d.Tex == nil {
			t.Errorf("draw %d: nil texture", di)
		}
		if d.Shader.Instructions <= 0 || d.Shader.Samples <= 0 {
			t.Errorf("draw %d: degenerate shader profile %+v", di, d.Shader)
		}
		for _, v := range d.Vertices {
			if v.Pos.Z < 0 || v.Pos.Z > 1 {
				t.Errorf("draw %d: depth %v outside [0,1]", di, v.Pos.Z)
			}
		}
	}
	// Vertex buffers must not overlap.
	for i := 1; i < len(s.Draws); i++ {
		prev := s.Draws[i-1]
		end := prev.VertexBase + uint64(len(prev.Vertices)*VertexBytes)
		if s.Draws[i].VertexBase < end {
			t.Fatalf("vertex buffers overlap between draws %d and %d", i-1, i)
		}
	}
}

func Test2DScenesPaintBackToFront(t *testing.T) {
	p, _ := ProfileByAlias("CCS")
	s := GenerateScene(p, 512, 256, 2)
	// Skip the background draw; object depths must be non-increasing.
	last := math.Inf(1)
	for _, d := range s.Draws[1:] {
		for i := 0; i+2 < len(d.Indices); i += 3 {
			z := d.Vertices[d.Indices[i]].Pos.Z
			if z > last+1e-9 {
				t.Fatalf("2D scene not back-to-front: depth %v after %v", z, last)
			}
			last = z
		}
	}
}

func TestSceneScalesWithResolution(t *testing.T) {
	p, _ := ProfileByAlias("Mze")
	small := GenerateScene(p, 256, 128, 1)
	large := GenerateScene(p, 1024, 512, 1)
	if large.TriangleCount() <= small.TriangleCount() {
		t.Errorf("triangle count did not scale: %d vs %d", small.TriangleCount(), large.TriangleCount())
	}
}

func TestTextureFootprintBytesSum(t *testing.T) {
	s := &Scene{Textures: []*texture.Texture{
		texture.New(0, 0, 64, 64),
		texture.New(1, 1<<20, 128, 128),
	}}
	want := s.Textures[0].SizeBytes() + s.Textures[1].SizeBytes()
	if got := s.TextureFootprintBytes(); got != want {
		t.Errorf("footprint = %d, want %d", got, want)
	}
}

func TestAllocTexturesAlwaysAtLeastOne(t *testing.T) {
	texs := allocTextures(0.01) // tiny footprint
	if len(texs) == 0 {
		t.Fatal("no textures for tiny footprint")
	}
}

func TestHashAliasDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	for _, a := range Aliases() {
		h := hashAlias(a)
		if prev, dup := seen[h]; dup {
			t.Fatalf("alias hash collision: %s vs %s", a, prev)
		}
		seen[h] = a
	}
}

func TestRangeProperty(t *testing.T) {
	f := func(seed uint64, lo8, span8 uint8) bool {
		lo := float64(lo8)
		hi := lo + float64(span8) + 1
		r := NewRNG(seed)
		x := r.Range(lo, hi)
		return x >= lo && x < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
