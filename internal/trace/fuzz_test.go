package trace

import (
	"testing"

	"dtexl/internal/texture"
)

// FuzzSceneGeneratorBounds drives arbitrary profile knobs through
// Validate and, for the accepted ones, through the scene generator at a
// tiny resolution. The invariant: every knob combination Validate
// accepts must generate without panicking or degenerating (no draws),
// and everything else must be rejected by Validate up front — the
// generator's parameter domain is exactly what Validate says it is.
func FuzzSceneGeneratorBounds(f *testing.F) {
	for _, p := range Profiles() {
		f.Add(p.TextureFootprintMiB, p.Overdraw, p.Clustering, p.HorizontalBias,
			p.MeanTriArea, p.ShaderLen[0], p.ShaderLen[1],
			p.SamplesPerQuad[0], p.SamplesPerQuad[1], int(p.Filter),
			p.TexelDensity, p.Reuse, p.UVJitter, p.TransparentFrac, p.Is2D)
	}

	f.Fuzz(func(t *testing.T, footprint, overdraw, clustering, hbias,
		triArea float64, shMin, shMax, spqMin, spqMax, filter int,
		density, reuse, jitter, transparent float64, is2D bool) {
		p := Profile{
			Name: "fuzz", Alias: "Fzz", Is2D: is2D,
			TextureFootprintMiB: footprint,
			Overdraw:            overdraw,
			Clustering:          clustering,
			HorizontalBias:      hbias,
			MeanTriArea:         triArea,
			ShaderLen:           [2]int{shMin, shMax},
			SamplesPerQuad:      [2]int{spqMin, spqMax},
			Filter:              texture.Filter(filter),
			TexelDensity:        density,
			Reuse:               reuse,
			UVJitter:            jitter,
			TransparentFrac:     transparent,
		}
		if err := p.Validate(); err != nil {
			return // out of the generator's domain, rejected up front
		}
		scene := GenerateScene(p, 64, 32, 1)
		if scene == nil {
			t.Fatal("validated profile generated a nil scene")
		}
		if len(scene.Draws) == 0 {
			t.Fatal("validated profile generated a scene with no draws")
		}
		if len(scene.Textures) == 0 {
			t.Fatal("validated profile generated a scene with no textures")
		}
		for di, d := range scene.Draws {
			if len(d.Indices)%3 != 0 {
				t.Fatalf("draw %d has %d indices, not a triangle list", di, len(d.Indices))
			}
			for _, idx := range d.Indices {
				if idx < 0 || idx >= len(d.Vertices) {
					t.Fatalf("draw %d has out-of-range index %d (%d vertices)", di, idx, len(d.Vertices))
				}
			}
		}
	})
}
