package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"dtexl/internal/geom"
	"dtexl/internal/texture"
)

// Scene trace format: a JSON serialization of one frame's draw stream,
// so workloads can be captured once (or produced by external tools) and
// replayed through the simulator — the role TEAPOT's GLES traces play in
// the original evaluation. The format carries exactly what the Geometry
// Pipeline consumes; texture *contents* are procedural, so a texture is
// just its geometry (ID, base address, dimensions).

// sceneJSON is the on-disk schema, versioned for forward evolution.
type sceneJSON struct {
	Version  int           `json:"version"`
	Width    int           `json:"width"`
	Height   int           `json:"height"`
	Textures []textureJSON `json:"textures"`
	Draws    []drawJSON    `json:"draws"`
}

type textureJSON struct {
	ID     int    `json:"id"`
	Base   uint64 `json:"base"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
}

type drawJSON struct {
	Transform  [4][4]float64 `json:"transform"`
	VertexBase uint64        `json:"vertexBase"`
	Vertices   []vertexJSON  `json:"vertices"`
	Indices    []int         `json:"indices"`
	Texture    int           `json:"texture"`
	Instr      int           `json:"shaderInstructions"`
	Samples    int           `json:"shaderSamples"`
	Filter     string        `json:"filter"`
	UVJitter   float64       `json:"uvJitterTexels,omitempty"`
	Alpha      float64       `json:"alpha"`
}

type vertexJSON struct {
	Pos [3]float64 `json:"pos"`
	UV  [2]float64 `json:"uv"`
}

// sceneFormatVersion is the current schema version.
const sceneFormatVersion = 1

var filterToName = map[texture.Filter]string{
	texture.Bilinear:  "bilinear",
	texture.Trilinear: "trilinear",
	texture.Aniso2x:   "aniso2x",
}

var nameToFilter = map[string]texture.Filter{
	"bilinear":  texture.Bilinear,
	"trilinear": texture.Trilinear,
	"aniso2x":   texture.Aniso2x,
}

// WriteScene serializes a scene as indented JSON.
func WriteScene(w io.Writer, s *Scene) error {
	out := sceneJSON{
		Version: sceneFormatVersion,
		Width:   s.Width,
		Height:  s.Height,
	}
	texIndex := make(map[*texture.Texture]int, len(s.Textures))
	for i, t := range s.Textures {
		texIndex[t] = i
		out.Textures = append(out.Textures, textureJSON{
			ID: t.ID, Base: t.Base, Width: t.Width, Height: t.Height,
		})
	}
	for di := range s.Draws {
		d := &s.Draws[di]
		ti, ok := texIndex[d.Tex]
		if !ok {
			return fmt.Errorf("trace: draw %d references a texture not in Scene.Textures", di)
		}
		dj := drawJSON{
			VertexBase: d.VertexBase,
			Indices:    d.Indices,
			Texture:    ti,
			Instr:      d.Shader.Instructions,
			Samples:    d.Shader.Samples,
			Filter:     filterToName[d.Filter],
			UVJitter:   d.UVJitterTexels,
			Alpha:      d.Alpha,
		}
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				dj.Transform[r][c] = d.Transform[r][c]
			}
		}
		for _, v := range d.Vertices {
			dj.Vertices = append(dj.Vertices, vertexJSON{
				Pos: [3]float64{v.Pos.X, v.Pos.Y, v.Pos.Z},
				UV:  [2]float64{v.UV.X, v.UV.Y},
			})
		}
		out.Draws = append(out.Draws, dj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}

// ReadScene parses a scene trace and validates it structurally.
func ReadScene(r io.Reader) (*Scene, error) {
	var in sceneJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: parsing scene: %w", err)
	}
	if in.Version != sceneFormatVersion {
		return nil, fmt.Errorf("trace: unsupported scene version %d (want %d)", in.Version, sceneFormatVersion)
	}
	if in.Width <= 0 || in.Height <= 0 {
		return nil, fmt.Errorf("trace: invalid scene dimensions %dx%d", in.Width, in.Height)
	}
	s := &Scene{Width: in.Width, Height: in.Height}
	for i, tj := range in.Textures {
		if tj.Width <= 0 || tj.Height <= 0 || tj.Width&(tj.Width-1) != 0 || tj.Height&(tj.Height-1) != 0 {
			return nil, fmt.Errorf("trace: texture %d has non-power-of-two dimensions %dx%d", i, tj.Width, tj.Height)
		}
		s.Textures = append(s.Textures, texture.New(tj.ID, tj.Base, tj.Width, tj.Height))
	}
	for di, dj := range in.Draws {
		if dj.Texture < 0 || dj.Texture >= len(s.Textures) {
			return nil, fmt.Errorf("trace: draw %d references texture %d of %d", di, dj.Texture, len(s.Textures))
		}
		if len(dj.Indices)%3 != 0 {
			return nil, fmt.Errorf("trace: draw %d index count %d not a triangle list", di, len(dj.Indices))
		}
		for _, ix := range dj.Indices {
			if ix < 0 || ix >= len(dj.Vertices) {
				return nil, fmt.Errorf("trace: draw %d has out-of-range index %d", di, ix)
			}
		}
		filter, ok := nameToFilter[dj.Filter]
		if !ok {
			return nil, fmt.Errorf("trace: draw %d has unknown filter %q", di, dj.Filter)
		}
		if dj.Instr <= 0 || dj.Samples <= 0 {
			return nil, fmt.Errorf("trace: draw %d has degenerate shader profile (%d instr, %d samples)", di, dj.Instr, dj.Samples)
		}
		d := DrawCommand{
			VertexBase:     dj.VertexBase,
			Indices:        dj.Indices,
			Tex:            s.Textures[dj.Texture],
			Shader:         ShaderProfile{Instructions: dj.Instr, Samples: dj.Samples},
			Filter:         filter,
			UVJitterTexels: dj.UVJitter,
			Alpha:          dj.Alpha,
		}
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				d.Transform[r][c] = dj.Transform[r][c]
			}
		}
		for _, vj := range dj.Vertices {
			d.Vertices = append(d.Vertices, Vertex{
				Pos: geom.Vec3{X: vj.Pos[0], Y: vj.Pos[1], Z: vj.Pos[2]},
				UV:  geom.Vec2{X: vj.UV[0], Y: vj.UV[1]},
			})
		}
		s.Draws = append(s.Draws, d)
	}
	return s, nil
}
