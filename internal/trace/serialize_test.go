package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSceneRoundTrip(t *testing.T) {
	p, _ := ProfileByAlias("SWa")
	orig := GenerateScene(p, 256, 128, 7)
	var buf bytes.Buffer
	if err := WriteScene(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScene(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != orig.Width || got.Height != orig.Height {
		t.Fatalf("dimensions %dx%d", got.Width, got.Height)
	}
	if len(got.Draws) != len(orig.Draws) || len(got.Textures) != len(orig.Textures) {
		t.Fatalf("structure mismatch: %d/%d draws, %d/%d textures",
			len(got.Draws), len(orig.Draws), len(got.Textures), len(orig.Textures))
	}
	for i := range orig.Draws {
		a, b := &orig.Draws[i], &got.Draws[i]
		if len(a.Vertices) != len(b.Vertices) {
			t.Fatalf("draw %d vertex count", i)
		}
		for j := range a.Vertices {
			if a.Vertices[j] != b.Vertices[j] {
				t.Fatalf("draw %d vertex %d mismatch", i, j)
			}
		}
		if a.Transform != b.Transform || a.VertexBase != b.VertexBase ||
			a.Shader != b.Shader || a.Filter != b.Filter ||
			a.UVJitterTexels != b.UVJitterTexels || a.Alpha != b.Alpha {
			t.Fatalf("draw %d state mismatch", i)
		}
		if a.Tex.Base != b.Tex.Base || a.Tex.Width != b.Tex.Width {
			t.Fatalf("draw %d texture mismatch", i)
		}
	}
}

func TestSceneRoundTripSecondGeneration(t *testing.T) {
	// Serializing the deserialized scene reproduces identical bytes:
	// the format is canonical.
	p, _ := ProfileByAlias("GTr")
	orig := GenerateScene(p, 128, 64, 3)
	var b1 bytes.Buffer
	if err := WriteScene(&b1, orig); err != nil {
		t.Fatal(err)
	}
	re, err := ReadScene(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := WriteScene(&b2, re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("format is not canonical: bytes differ after a round trip")
	}
}

func TestReadSceneValidation(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"wrong version": `{"version":99,"width":64,"height":64}`,
		"bad dims":      `{"version":1,"width":0,"height":64}`,
		"bad texture":   `{"version":1,"width":64,"height":64,"textures":[{"id":0,"base":0,"width":100,"height":64}]}`,
		"bad tex ref": `{"version":1,"width":64,"height":64,"textures":[],
			"draws":[{"transform":[[1,0,0,0],[0,1,0,0],[0,0,1,0],[0,0,0,1]],"vertices":[],"indices":[],"texture":0,"shaderInstructions":1,"shaderSamples":1,"filter":"bilinear","alpha":1}]}`,
		"bad indices": `{"version":1,"width":64,"height":64,"textures":[{"id":0,"base":0,"width":64,"height":64}],
			"draws":[{"transform":[[1,0,0,0],[0,1,0,0],[0,0,1,0],[0,0,0,1]],"vertices":[{"pos":[0,0,0],"uv":[0,0]}],"indices":[0,0],"texture":0,"shaderInstructions":1,"shaderSamples":1,"filter":"bilinear","alpha":1}]}`,
		"oob index": `{"version":1,"width":64,"height":64,"textures":[{"id":0,"base":0,"width":64,"height":64}],
			"draws":[{"transform":[[1,0,0,0],[0,1,0,0],[0,0,1,0],[0,0,0,1]],"vertices":[{"pos":[0,0,0],"uv":[0,0]}],"indices":[0,0,5],"texture":0,"shaderInstructions":1,"shaderSamples":1,"filter":"bilinear","alpha":1}]}`,
		"bad filter": `{"version":1,"width":64,"height":64,"textures":[{"id":0,"base":0,"width":64,"height":64}],
			"draws":[{"transform":[[1,0,0,0],[0,1,0,0],[0,0,1,0],[0,0,0,1]],"vertices":[{"pos":[0,0,0],"uv":[0,0]}],"indices":[0,0,0],"texture":0,"shaderInstructions":1,"shaderSamples":1,"filter":"nearest","alpha":1}]}`,
		"bad shader": `{"version":1,"width":64,"height":64,"textures":[{"id":0,"base":0,"width":64,"height":64}],
			"draws":[{"transform":[[1,0,0,0],[0,1,0,0],[0,0,1,0],[0,0,0,1]],"vertices":[{"pos":[0,0,0],"uv":[0,0]}],"indices":[0,0,0],"texture":0,"shaderInstructions":0,"shaderSamples":1,"filter":"bilinear","alpha":1}]}`,
	}
	for name, payload := range cases {
		if _, err := ReadScene(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteSceneRejectsForeignTexture(t *testing.T) {
	p, _ := ProfileByAlias("SWa")
	s := GenerateScene(p, 128, 64, 1)
	// Point a draw at a texture missing from Scene.Textures.
	s.Draws[0].Tex = s.Textures[0]
	s.Textures = s.Textures[:0]
	var buf bytes.Buffer
	if err := WriteScene(&buf, s); err == nil {
		t.Error("foreign texture accepted")
	}
}
