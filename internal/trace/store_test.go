package trace

import (
	"sync"
	"testing"
)

func TestSceneStoreDedup(t *testing.T) {
	s := NewSceneStore()
	p, err := ProfileByAlias("TRu")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Animation(p, 245, 96, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Animation(p, 245, 96, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || &a[0] != &b[0] {
		t.Fatal("second lookup did not return the memoized slice")
	}
	if hits, misses := s.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// A different key generates separately.
	if _, err := s.Animation(p, 245, 96, 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, misses := s.Stats(); misses != 2 {
		t.Fatal("distinct seed did not miss")
	}
}

func TestSceneStoreConcurrent(t *testing.T) {
	s := NewSceneStore()
	p, err := ProfileByAlias("CCS")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	out := make([]*Scene, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scenes, err := s.Animation(p, 245, 96, 1, 1)
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = scenes[0]
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if out[i] != out[0] {
			t.Fatal("concurrent callers saw different scene instances")
		}
	}
	if _, misses := s.Stats(); misses != 1 {
		t.Fatalf("generated %d times, want 1", misses)
	}
}
