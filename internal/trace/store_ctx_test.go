package trace

import (
	"context"
	"errors"
	"testing"
	"time"
)

// gatedStore returns a store whose generator blocks on gate before
// producing one real frame, so tests can hold a generation in flight
// deterministically.
func gatedStore(gate chan struct{}) *SceneStore {
	s := NewSceneStore()
	real := s.gen
	s.gen = func(p Profile, width, height int, seed uint64, frames int) []*Scene {
		<-gate
		return real(p, width, height, seed, frames)
	}
	return s
}

// TestAnimationContextWaiterCancellable: a waiter blocked on another
// goroutine's in-flight generation returns its context error promptly;
// the generation itself completes and stays cached.
func TestAnimationContextWaiterCancellable(t *testing.T) {
	p, err := ProfileByAlias("TRu")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s := gatedStore(gate)

	genDone := make(chan error, 1)
	go func() {
		_, err := s.Animation(p, 245, 96, 1, 1)
		genDone <- err
	}()
	// Wait until the generation is in flight (the generator is parked on
	// the gate once the flight entry exists; poll the miss counter).
	for {
		if _, misses := s.Stats(); misses == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.AnimationContext(ctx, p, 245, 96, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled waiter blocked for %v", elapsed)
	}

	close(gate)
	if err := <-genDone; err != nil {
		t.Fatalf("generation failed: %v", err)
	}
	// The completed generation is served from cache, cancellation
	// notwithstanding.
	scenes, err := s.AnimationContext(context.Background(), p, 245, 96, 1, 1)
	if err != nil || len(scenes) != 1 {
		t.Fatalf("cached read after cancel: %d scenes, %v", len(scenes), err)
	}
}

// TestAnimationContextCompletedFlightIgnoresCtx: a key whose generation
// already completed is served even under a cancelled context — the
// cancellable select only guards the blocking wait, never a cache hit.
func TestAnimationContextCompletedFlightIgnoresCtx(t *testing.T) {
	p, err := ProfileByAlias("TRu")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSceneStore()
	if _, err := s.Animation(p, 245, 96, 1, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scenes, err := s.AnimationContext(ctx, p, 245, 96, 1, 1)
	if err != nil || len(scenes) != 1 {
		t.Fatalf("completed flight under cancelled ctx: %d scenes, %v", len(scenes), err)
	}
}
