// Package core defines DTexL itself: the named compositions of quad
// grouping, tile order, subtile assignment and barrier architecture that
// the paper proposes and evaluates. Everything else in this repository is
// substrate; this package is the paper's contribution expressed as
// configuration over that substrate.
package core

import (
	"fmt"

	"dtexl/internal/pipeline"
	"dtexl/internal/sched"
	"dtexl/internal/tileorder"
)

// Policy is a named scheduler + pipeline combination.
type Policy struct {
	// Name is the figure-style label (e.g. "HLB-flp2").
	Name string
	// Grouping maps quads to Subtiles (Fig. 6).
	Grouping sched.Grouping
	// TileOrder is the Tiling Engine's traversal (Fig. 7).
	TileOrder tileorder.Kind
	// Assignment re-maps Subtiles to SCs along the walk (Fig. 8).
	Assignment sched.Assignment
	// Decoupled selects the decoupled-barrier Raster Pipeline (§III-E).
	Decoupled bool
}

// Apply writes the policy into a pipeline configuration.
func (p Policy) Apply(cfg *pipeline.Config) {
	cfg.Grouping = p.Grouping
	cfg.TileOrder = p.TileOrder
	cfg.Assignment = p.Assignment
	cfg.Decoupled = p.Decoupled
}

// String returns the policy name.
func (p Policy) String() string { return p.Name }

// Baseline is the paper's baseline: the best load-balancing fine-grained
// grouping (FG-xshift2), Z-order tiles, constant assignment, coupled
// barriers (§V-A chooses it empirically; Table II fixes Z-order).
func Baseline() Policy {
	return Policy{
		Name:       "baseline",
		Grouping:   sched.FGXShift2,
		TileOrder:  tileorder.ZOrder,
		Assignment: sched.ConstAssign,
		Decoupled:  false,
	}
}

// BaselineDecoupled is FG-xshift2 with the decoupled-barrier pipeline —
// the second bar of Figs. 17 and 18, isolating the decoupling benefit
// from the scheduling benefit.
func BaselineDecoupled() Policy {
	p := Baseline()
	p.Name = "baseline-decoupled"
	p.Decoupled = true
	return p
}

// DTexL is the paper's proposal at its best configuration: CG-square
// grouping, the rectangle-adapted Hilbert tile order, the HLB-flp2
// subtile assignment (best performance among Fig. 8, §V-C2), and the
// decoupled-barrier pipeline.
func DTexL() Policy {
	return Policy{
		Name:       "DTexL",
		Grouping:   sched.CGSquare,
		TileOrder:  tileorder.HilbertRect,
		Assignment: sched.Flp2,
		Decoupled:  true,
	}
}

// Fig8Mappings returns the eight subtile mappings of Fig. 8 in figure
// order, all with decoupled barriers (they are evaluated as DTexL
// variants in Figs. 16-18). The S-order mappings use CG-yrect, the rest
// CG-square, matching the figure's caption.
func Fig8Mappings() []Policy {
	return []Policy{
		{Name: "Zorder-const", Grouping: sched.CGSquare, TileOrder: tileorder.ZOrder, Assignment: sched.ConstAssign, Decoupled: true},
		{Name: "Zorder-flp", Grouping: sched.CGSquare, TileOrder: tileorder.ZOrder, Assignment: sched.Flp1, Decoupled: true},
		{Name: "HLB-const", Grouping: sched.CGSquare, TileOrder: tileorder.HilbertRect, Assignment: sched.ConstAssign, Decoupled: true},
		{Name: "HLB-flp1", Grouping: sched.CGSquare, TileOrder: tileorder.HilbertRect, Assignment: sched.Flp1, Decoupled: true},
		{Name: "HLB-flp2", Grouping: sched.CGSquare, TileOrder: tileorder.HilbertRect, Assignment: sched.Flp2, Decoupled: true},
		{Name: "HLB-flp3", Grouping: sched.CGSquare, TileOrder: tileorder.HilbertRect, Assignment: sched.Flp3, Decoupled: true},
		{Name: "Sorder-const", Grouping: sched.CGYRect, TileOrder: tileorder.SOrder, Assignment: sched.ConstAssign, Decoupled: true},
		{Name: "Sorder-flp", Grouping: sched.CGYRect, TileOrder: tileorder.SOrder, Assignment: sched.Flp2, Decoupled: true},
	}
}

// GroupingPolicies returns the ten quad groupings of Fig. 6 as coupled
// policies with Z-order and constant assignment — the configuration of
// the Fig. 11/12 design-space exploration.
func GroupingPolicies() []Policy {
	gs := sched.Groupings()
	out := make([]Policy, len(gs))
	for i, g := range gs {
		out[i] = Policy{
			Name:       g.String(),
			Grouping:   g,
			TileOrder:  tileorder.ZOrder,
			Assignment: sched.ConstAssign,
			Decoupled:  false,
		}
	}
	return out
}

// PolicyByName resolves a policy by its figure-style name, accepting the
// named proposals, the Fig. 8 mappings and the Fig. 6 groupings.
func PolicyByName(name string) (Policy, error) {
	candidates := []Policy{Baseline(), BaselineDecoupled(), DTexL()}
	candidates = append(candidates, Fig8Mappings()...)
	candidates = append(candidates, GroupingPolicies()...)
	for _, p := range candidates {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("core: unknown policy %q", name)
}

// PolicyNames lists every named policy.
func PolicyNames() []string {
	var names []string
	for _, p := range []Policy{Baseline(), BaselineDecoupled(), DTexL()} {
		names = append(names, p.Name)
	}
	for _, p := range Fig8Mappings() {
		names = append(names, p.Name)
	}
	for _, p := range GroupingPolicies() {
		names = append(names, p.Name)
	}
	return names
}

// ApplyUpperBound rewrites cfg into the Fig. 16 upper-bound machine: a
// single shader core with a single texture L1 of 4x the capacity, which
// eliminates all inter-L1 block replication by construction.
func ApplyUpperBound(cfg *pipeline.Config) {
	cfg.NumSC = 1
	cfg.Hierarchy.NumSC = 1
	cfg.Hierarchy.L1Tex.SizeBytes *= sched.NumSubtiles
}
