package core

import (
	"testing"

	"dtexl/internal/pipeline"
	"dtexl/internal/sched"
	"dtexl/internal/tileorder"
)

func TestBaselineMatchesPaper(t *testing.T) {
	b := Baseline()
	if b.Grouping != sched.FGXShift2 || b.TileOrder != tileorder.ZOrder ||
		b.Assignment != sched.ConstAssign || b.Decoupled {
		t.Errorf("baseline = %+v", b)
	}
}

func TestDTexLMatchesPaper(t *testing.T) {
	d := DTexL()
	if d.Grouping != sched.CGSquare {
		t.Error("DTexL grouping is not CG-square")
	}
	if d.TileOrder != tileorder.HilbertRect {
		t.Error("DTexL tile order is not the rectangle-adapted Hilbert")
	}
	if d.Assignment != sched.Flp2 {
		t.Error("DTexL assignment is not flp2")
	}
	if !d.Decoupled {
		t.Error("DTexL is not decoupled")
	}
}

func TestBaselineDecoupledOnlyTogglesBarrier(t *testing.T) {
	b, d := Baseline(), BaselineDecoupled()
	if d.Grouping != b.Grouping || d.TileOrder != b.TileOrder || d.Assignment != b.Assignment {
		t.Error("baseline-decoupled changed more than the barrier")
	}
	if !d.Decoupled {
		t.Error("baseline-decoupled is coupled")
	}
}

func TestFig8MappingsShape(t *testing.T) {
	ms := Fig8Mappings()
	if len(ms) != 8 {
		t.Fatalf("%d mappings, want 8", len(ms))
	}
	for _, m := range ms {
		if !m.Decoupled {
			t.Errorf("%s not decoupled", m.Name)
		}
		switch m.TileOrder {
		case tileorder.SOrder:
			if m.Grouping != sched.CGYRect {
				t.Errorf("%s: S-order mappings use CG-yrect in Fig. 8", m.Name)
			}
		default:
			if m.Grouping != sched.CGSquare {
				t.Errorf("%s: grouping = %v", m.Name, m.Grouping)
			}
		}
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			t.Errorf("duplicate mapping name %s", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestGroupingPoliciesCoverFig6(t *testing.T) {
	ps := GroupingPolicies()
	if len(ps) != len(sched.Groupings()) {
		t.Fatalf("%d grouping policies", len(ps))
	}
	for _, p := range ps {
		if p.Decoupled || p.TileOrder != tileorder.ZOrder || p.Assignment != sched.ConstAssign {
			t.Errorf("%s: Fig. 11/12 exploration must be coupled, Z-order, const", p.Name)
		}
	}
}

func TestApply(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	DTexL().Apply(&cfg)
	if cfg.Grouping != sched.CGSquare || !cfg.Decoupled || cfg.TileOrder != tileorder.HilbertRect {
		t.Errorf("Apply failed: %+v", cfg)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("PolicyByName(%q) returned %q", name, p.Name)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestApplyUpperBound(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	orig := cfg.Hierarchy.L1Tex.SizeBytes
	ApplyUpperBound(&cfg)
	if cfg.NumSC != 1 || cfg.Hierarchy.NumSC != 1 {
		t.Error("upper bound did not reduce to one SC")
	}
	if cfg.Hierarchy.L1Tex.SizeBytes != 4*orig {
		t.Error("upper bound L1 not 4x")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("upper-bound config invalid: %v", err)
	}
}
