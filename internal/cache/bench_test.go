package cache

import "testing"

// BenchmarkCacheAccess measures the simulator's hottest function on
// three deterministic address streams: an in-cache working set (the
// texture-locality common case), a thrashing stride (worst case), and a
// mixed stream that alternates reuse with conflict fills. The streams
// are pure functions of the iteration index so runs are reproducible.
func BenchmarkCacheAccess(b *testing.B) {
	newL1 := func() *Cache {
		return New(Config{Name: "bench-l1", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 1})
	}
	b.Run("hit-heavy", func(b *testing.B) {
		c := newL1()
		for i := 0; i < b.N; i++ {
			c.Access(uint64(i%128) * 64) // 8 KiB working set, fits
		}
	})
	b.Run("miss-heavy", func(b *testing.B) {
		c := newL1()
		for i := 0; i < b.N; i++ {
			c.Access(uint64(i) * 4160) // 64 lines + 1 set stride, conflicts
		}
	})
	b.Run("mixed", func(b *testing.B) {
		c := newL1()
		var x uint64 = 1
		for i := 0; i < b.N; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			c.Access(x >> 44 << 6) // ~1 MiB reach, partial reuse
		}
	})
	b.Run("l2-8way", func(b *testing.B) {
		c := New(Config{Name: "bench-l2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 8, HitLatency: 12})
		var x uint64 = 1
		for i := 0; i < b.N; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			c.Access(x >> 42 << 6) // ~4 MiB reach over a 1 MiB cache
		}
	})
}
