package cache

import (
	"testing"
)

func testHierarchy() *Hierarchy {
	cfg := DefaultHierarchyConfig()
	return NewHierarchy(cfg)
}

func TestDefaultHierarchyMatchesTableII(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if cfg.NumSC != 4 {
		t.Errorf("NumSC = %d", cfg.NumSC)
	}
	if cfg.L1Tex.SizeBytes != 16<<10 || cfg.L1Tex.Ways != 4 || cfg.L1Tex.LineBytes != 64 || cfg.L1Tex.HitLatency != 1 {
		t.Errorf("L1Tex = %+v", cfg.L1Tex)
	}
	if cfg.Vertex.SizeBytes != 8<<10 || cfg.Vertex.Ways != 4 {
		t.Errorf("Vertex = %+v", cfg.Vertex)
	}
	if cfg.Tile.SizeBytes != 64<<10 || cfg.Tile.Ways != 4 {
		t.Errorf("Tile = %+v", cfg.Tile)
	}
	if cfg.L2.SizeBytes != 1<<20 || cfg.L2.Ways != 8 || cfg.L2.HitLatency != 12 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.DRAM.RowHitLat != 50 || cfg.DRAM.RowMissLat != 100 {
		t.Errorf("DRAM = %+v", cfg.DRAM)
	}
}

func TestTextureAccessLatencies(t *testing.T) {
	h := testHierarchy()
	// Cold access: L1 miss + L2 miss + DRAM (row miss) = 1 + 12 + 100.
	if lat := h.TextureAccess(0, 0x10000); lat != 113 {
		t.Errorf("cold latency = %d, want 113", lat)
	}
	// Immediately after: L1 hit = 1.
	if lat := h.TextureAccess(0, 0x10000); lat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", lat)
	}
	// Same line from another SC: its L1 misses but L2 now hits = 1 + 12.
	if lat := h.TextureAccess(1, 0x10000); lat != 13 {
		t.Errorf("L2 hit latency = %d, want 13", lat)
	}
}

func TestReplicationShowsUpAsL2Accesses(t *testing.T) {
	// The core phenomenon of the paper: the same lines touched from all
	// four SCs produce 4x the L2 accesses of single-SC access.
	lines := 128
	h := testHierarchy()
	for i := 0; i < lines; i++ {
		h.TextureAccess(0, uint64(i*64))
	}
	soloL2 := h.L2Accesses()

	h2 := testHierarchy()
	for sc := 0; sc < 4; sc++ {
		for i := 0; i < lines; i++ {
			h2.TextureAccess(sc, uint64(i*64))
		}
	}
	replicatedL2 := h2.L2Accesses()
	if replicatedL2 != 4*soloL2 {
		t.Errorf("replicated L2 accesses = %d, want %d", replicatedL2, 4*soloL2)
	}
}

func TestVertexAndTileAccessesShareL2(t *testing.T) {
	h := testHierarchy()
	h.VertexAccess(0x4000)
	h.TileAccess(0x8000)
	if got := h.L2Accesses(); got != 2 {
		t.Errorf("L2 accesses = %d, want 2", got)
	}
	// Vertex hit does not reach L2.
	h.VertexAccess(0x4000)
	if got := h.L2Accesses(); got != 2 {
		t.Errorf("L2 accesses after vertex hit = %d, want 2", got)
	}
	if lat := h.TileAccess(0x8000); lat != 1 {
		t.Errorf("tile hit latency = %d", lat)
	}
}

func TestL1TexStatsAggregate(t *testing.T) {
	h := testHierarchy()
	h.TextureAccess(0, 0)
	h.TextureAccess(1, 0)
	h.TextureAccess(0, 0)
	agg := h.L1TexStats()
	if agg.Accesses != 3 || agg.Misses != 2 || agg.Hits != 1 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := testHierarchy()
	h.TextureAccess(0, 0)
	h.VertexAccess(64)
	h.TileAccess(128)
	h.Reset()
	if h.L2Accesses() != 0 || h.L1TexStats().Accesses != 0 {
		t.Error("counters survived Reset")
	}
	if h.DRAM.Stats().Accesses != 0 {
		t.Error("DRAM counters survived Reset")
	}
	// Contents gone: cold access pays full latency again.
	if lat := h.TextureAccess(0, 0); lat != 113 {
		t.Errorf("post-reset cold latency = %d", lat)
	}
}

func TestNewHierarchyPanicsOnBadSCCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero SCs")
		}
	}()
	cfg := DefaultHierarchyConfig()
	cfg.NumSC = 0
	NewHierarchy(cfg)
}

func TestUpperBoundConfigSingleBigL1(t *testing.T) {
	// The paper's upper bound: 1 SC with a 4x-sized L1. Verify the
	// hierarchy supports it and that it yields fewer L2 accesses than 4
	// SCs replicating the same working set.
	cfg := DefaultHierarchyConfig()
	cfg.NumSC = 1
	cfg.L1Tex.SizeBytes *= 4
	hb := NewHierarchy(cfg)
	lines := 256
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < lines; i++ {
			hb.TextureAccess(0, uint64(i*64))
		}
	}
	bound := hb.L2Accesses()

	h4 := testHierarchy()
	for sc := 0; sc < 4; sc++ {
		for i := 0; i < lines; i++ {
			h4.TextureAccess(sc, uint64(i*64))
		}
	}
	if bound >= h4.L2Accesses() {
		t.Errorf("upper bound (%d) not below replicated config (%d)", bound, h4.L2Accesses())
	}
}

func TestNUCABanking(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.NUCA = true
	h := NewHierarchy(cfg)
	// Line 0's home bank is 0: SC 0 accesses it without the hop.
	lat, miss := h.TextureAccessInfo(0, 0)
	if !miss {
		t.Error("cold access hit")
	}
	// A second access from SC 0: local hit at base latency.
	lat, miss = h.TextureAccessInfo(0, 0)
	if miss || lat != cfg.L1Tex.HitLatency {
		t.Errorf("local NUCA hit: lat=%d miss=%v", lat, miss)
	}
	// From SC 1 the same line is a REMOTE HIT (no replication!): the data
	// is in bank 0, reached with the hop latency, and no L2 access
	// happens.
	l2Before := h.L2Accesses()
	lat, miss = h.TextureAccessInfo(1, 0)
	if miss {
		t.Error("NUCA replicated: remote access missed")
	}
	if lat != cfg.L1Tex.HitLatency+cfg.NUCARemoteLatency {
		t.Errorf("remote hit latency = %d", lat)
	}
	if h.L2Accesses() != l2Before {
		t.Error("remote hit went to L2")
	}
}

func TestNUCAEliminatesReplicationTraffic(t *testing.T) {
	// The same working set touched from all four SCs: private L1s fetch
	// it four times from L2, NUCA exactly once.
	lines := 128
	priv := NewHierarchy(DefaultHierarchyConfig())
	cfgN := DefaultHierarchyConfig()
	cfgN.NUCA = true
	nuca := NewHierarchy(cfgN)
	for sc := 0; sc < 4; sc++ {
		for i := 0; i < lines; i++ {
			priv.TextureAccess(sc, uint64(i*64))
			nuca.TextureAccess(sc, uint64(i*64))
		}
	}
	if nuca.L2Accesses() != uint64(lines) {
		t.Errorf("NUCA L2 accesses = %d, want %d", nuca.L2Accesses(), lines)
	}
	if priv.L2Accesses() != uint64(4*lines) {
		t.Errorf("private L2 accesses = %d, want %d", priv.L2Accesses(), 4*lines)
	}
}

func TestNUCAHomeBanksPartitionLines(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.NUCA = true
	h := NewHierarchy(cfg)
	// Consecutive lines interleave across banks round-robin.
	for i := 0; i < 16; i++ {
		h.TextureAccess(0, uint64(i*64))
	}
	for b := 0; b < 4; b++ {
		if got := h.L1Tex[b].Stats().Accesses; got != 4 {
			t.Errorf("bank %d accesses = %d, want 4", b, got)
		}
	}
}

// TestTextureAccessSplitComposes pins the contract the parallel
// executors rely on: TextureL1Access followed (on miss) by
// TextureSharedFill observes exactly the same cache state transitions
// and total latency as TextureAccessInfo, for any access stream.
func TestTextureAccessSplitComposes(t *testing.T) {
	ref := testHierarchy()
	split := testHierarchy()
	// A deterministic pseudo-random stream mixing SCs, reuse and fresh
	// lines, long enough to exercise L1 and L2 evictions.
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 200_000; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		sc := int(h % 4)
		addr := (h >> 8) % (1 << 22) // 4 MiB arena: larger than L2
		wantLat, wantMiss := ref.TextureAccessInfo(sc, addr)
		lat, miss := split.TextureL1Access(sc, addr)
		if miss {
			lat += split.TextureSharedFill(addr)
		}
		if lat != wantLat || miss != wantMiss {
			t.Fatalf("access %d (sc=%d addr=%#x): split = (%d, %v), TextureAccessInfo = (%d, %v)",
				i, sc, addr, lat, miss, wantLat, wantMiss)
		}
	}
	if ref.L2.Stats() != split.L2.Stats() {
		t.Fatalf("L2 stats diverged: ref %+v, split %+v", ref.L2.Stats(), split.L2.Stats())
	}
	if ref.DRAM.Stats() != split.DRAM.Stats() {
		t.Fatalf("DRAM stats diverged: ref %+v, split %+v", ref.DRAM.Stats(), split.DRAM.Stats())
	}
	if ref.L1TexStats() != split.L1TexStats() {
		t.Fatalf("L1 stats diverged: ref %+v, split %+v", ref.L1TexStats(), split.L1TexStats())
	}
}
