package cache

import (
	"encoding/binary"
	"testing"
)

// FuzzCacheInvariants feeds arbitrary access streams to a small cache and
// checks the counter and content invariants (run with
// `go test -fuzz FuzzCache`).
func FuzzCacheInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(Config{Name: "fz", SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, HitLatency: 1})
		for i := 0; i+4 <= len(data); i += 4 {
			addr := uint64(binary.LittleEndian.Uint32(data[i:]))
			hit := c.Access(addr)
			// An access always leaves its line resident.
			if !c.Contains(addr) {
				t.Fatalf("line %#x absent right after access", addr)
			}
			// A hit implies it was already resident; re-access must hit.
			if hit && !c.Access(addr) {
				t.Fatalf("line %#x hit then missed immediately", addr)
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("counter mismatch: %+v", s)
		}
		if s.Evictions > s.Misses {
			t.Fatalf("more evictions than misses: %+v", s)
		}
	})
}
