package cache

import (
	"encoding/binary"
	"reflect"
	"testing"

	"dtexl/internal/dram"
)

// TestStatsCommutative pins the algebraic property the parallel
// executors' sharded grants rely on: folding per-worker shadow counter
// blocks is commutative and associative, so the order workers are
// merged in (and the order counts were split across workers) cannot
// change the totals. Both cache.Stats and dram.Stats (via SharedStats)
// carry the guarantee.
func TestStatsCommutative(t *testing.T) {
	blocks := []Stats{
		{Accesses: 3, Hits: 2, Misses: 1, Evictions: 1},
		{Accesses: 10, Hits: 4, Misses: 6, Evictions: 5},
		{Accesses: 1},
		{Accesses: 7, Hits: 7},
		{Misses: 9, Evictions: 2, Accesses: 9},
	}
	var fwd Stats
	for _, b := range blocks {
		fwd.Add(b)
	}
	var rev Stats
	for i := len(blocks) - 1; i >= 0; i-- {
		rev.Add(blocks[i])
	}
	if fwd != rev {
		t.Errorf("Stats.Add not commutative: fwd %+v rev %+v", fwd, rev)
	}
	// Associativity: pre-fold a middle group, then fold the groups.
	var mid Stats
	mid.Add(blocks[1])
	mid.Add(blocks[2])
	mid.Add(blocks[3])
	var grouped Stats
	grouped.Add(blocks[0])
	grouped.Add(mid)
	grouped.Add(blocks[4])
	if fwd != grouped {
		t.Errorf("Stats.Add not associative: flat %+v grouped %+v", fwd, grouped)
	}

	dblocks := []dram.Stats{
		{Accesses: 4, RowHits: 1, RowMisses: 3},
		{Accesses: 2, RowHits: 2},
		{Accesses: 11, RowMisses: 11},
	}
	var dfwd, drev dram.Stats
	for _, b := range dblocks {
		dfwd.Add(b)
	}
	for i := len(dblocks) - 1; i >= 0; i-- {
		drev.Add(dblocks[i])
	}
	if dfwd != drev {
		t.Errorf("dram.Stats.Add not commutative: fwd %+v rev %+v", dfwd, drev)
	}
}

// shardedOps decodes a fuzz payload into a texture-fill address stream
// plus transposition-driver bytes: the last 8 bytes (at least) drive
// the permutation, the prefix decodes 4 bytes per address.
func shardedOps(data []byte) (addrs []uint64, swaps []byte) {
	if len(data) < 8 {
		return nil, nil
	}
	n := (len(data) - 8) / 4
	if n > 256 {
		n = 256
	}
	for i := 0; i < n; i++ {
		addrs = append(addrs, uint64(binary.LittleEndian.Uint32(data[i*4:])))
	}
	return addrs, data[n*4:]
}

// FuzzShardedOrderEquivalence is the executable proof obligation behind
// the sharded sequencer (DESIGN.md §11): two shared texture fills whose
// addresses map to a different L2 set AND a different DRAM bank commute
// — reordering them changes no per-op latency, no final cache or
// open-row state, and (with counters split across per-worker shadows
// folded in any order) no statistic. The fuzzer builds an arbitrary
// fill stream, applies arbitrary *commuting* adjacent transpositions,
// replays both orders on independent hierarchies, and demands
// equivalence. Run with `go test -fuzz FuzzShardedOrder ./internal/cache`.
func FuzzShardedOrderEquivalence(f *testing.F) {
	// Seed: 12 addresses striding both the set bits and the bank bits,
	// so adjacent pairs provably commute and the transpositions apply.
	seed := make([]byte, 0, 64)
	for i := 0; i < 12; i++ {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(i)*(2048+64))
		seed = append(seed, b[:]...)
	}
	f.Add(append(seed, 1, 3, 5, 7, 2, 4, 6, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		addrs, swaps := shardedOps(data)
		if len(addrs) < 2 {
			t.Skip("need at least two ops")
		}
		cfg := DefaultHierarchyConfig()
		// A small L2 makes set conflicts (and therefore evictions and
		// re-fills) common at fuzz-sized streams.
		cfg.L2.SizeBytes = 16 << 10
		cfg.L2.Ways = 2
		hA := NewHierarchy(cfg)
		hB := NewHierarchy(cfg)

		commutes := func(a, b uint64) bool {
			return hA.L2ShardOf(a) != hA.L2ShardOf(b) && hA.DRAMBankOf(a) != hA.DRAMBankOf(b)
		}

		// Build the permuted order from fuzz-chosen adjacent
		// transpositions, applying only those the shard map proves
		// commutative. Every reachable order is a product of such
		// transpositions, so equivalence here covers the general claim.
		perm := make([]int, len(addrs))
		for i := range perm {
			perm[i] = i
		}
		swapped := false
		for _, b := range swaps {
			p := int(b) % (len(perm) - 1)
			if commutes(addrs[perm[p]], addrs[perm[p+1]]) {
				perm[p], perm[p+1] = perm[p+1], perm[p]
				swapped = true
			}
		}
		if !swapped {
			t.Skip("no commuting pair to transpose")
		}

		// Replay A: program order, one shadow counter block.
		latA := make([]int64, len(addrs))
		var stA SharedStats
		for i, a := range addrs {
			latA[i] = hA.TextureSharedFillSharded(a, &stA)
		}
		hA.AddSharedStats(&stA)

		// Replay B: permuted order, counters split across two shadow
		// blocks folded in the opposite order they were filled —
		// exercising the commutative-sum half of the contract too.
		latB := make([]int64, len(addrs))
		var sh [2]SharedStats
		for j, pi := range perm {
			latB[pi] = hB.TextureSharedFillSharded(addrs[pi], &sh[j%2])
		}
		hB.AddSharedStats(&sh[1])
		hB.AddSharedStats(&sh[0])

		for i := range addrs {
			if latA[i] != latB[i] {
				t.Fatalf("op %d (addr %#x): latency %d in program order, %d permuted",
					i, addrs[i], latA[i], latB[i])
			}
		}
		if a, b := hA.L2.Stats(), hB.L2.Stats(); a != b {
			t.Fatalf("L2 stats diverge: %+v vs %+v", a, b)
		}
		if a, b := hA.DRAM.Stats(), hB.DRAM.Stats(); a != b {
			t.Fatalf("DRAM stats diverge: %+v vs %+v", a, b)
		}
		// Tag/LRU state must match exactly, not just the counters.
		if !reflect.DeepEqual(hA.L2.ways, hB.L2.ways) {
			t.Fatal("L2 tag/LRU state diverges after permuted replay")
		}
		// Probe with fresh fills: equal latencies here additionally pin
		// the DRAM open-row state left behind by each replay.
		for i, a := range addrs {
			if i >= 32 {
				break
			}
			pa, pb := hA.TextureSharedFill(a+1<<20), hB.TextureSharedFill(a+1<<20)
			if pa != pb {
				t.Fatalf("probe %d (addr %#x): latency %d vs %d (open-row state diverged)",
					i, a+1<<20, pa, pb)
			}
		}
	})
}
