package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B lines = 512 B.
	return New(Config{Name: "t", SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 1})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Ways: 4},
		{Name: "line", SizeBytes: 1024, LineBytes: 48, Ways: 4},
		{Name: "indivisible", SizeBytes: 1000, LineBytes: 64, Ways: 4},
		{Name: "sets", SizeBytes: 3 * 64 * 4, LineBytes: 64, Ways: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{SizeBytes: 7, LineBytes: 64, Ways: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	// Same line, different byte offset must also hit.
	if !c.Access(0x1030) {
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 2 ways per set
	// Three distinct lines mapping to the same set (set stride = 4*64).
	a, b, d := uint64(0), uint64(4*64), uint64(8*64)
	c.Access(a) // miss, fill
	c.Access(b) // miss, fill
	c.Access(a) // hit; b becomes LRU
	c.Access(d) // miss, evicts b
	if !c.Contains(a) {
		t.Error("a evicted, but it was MRU")
	}
	if c.Contains(b) {
		t.Error("b still resident, but it was LRU")
	}
	if !c.Contains(d) {
		t.Error("d not resident after fill")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestWorkingSetWithinCapacityNeverMissesTwice(t *testing.T) {
	// Property: accessing W distinct lines that all fit (per set) and then
	// re-accessing them in the same order yields all hits.
	c := New(Config{Name: "t", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, HitLatency: 1})
	lines := make([]uint64, 0, 64)
	for i := 0; i < 64; i++ { // 64 lines = 4KiB / 64B exactly fills it
		lines = append(lines, uint64(i*64))
	}
	for _, a := range lines {
		c.Access(a)
	}
	for _, a := range lines {
		if !c.Access(a) {
			t.Fatalf("line %#x missed on re-access within capacity", a)
		}
	}
}

func TestHitsNeverExceedAccesses(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Hits <= s.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := smallCache()
	c.Access(0)
	before := c.Stats()
	c.Contains(0)
	c.Contains(12345)
	if c.Stats() != before {
		t.Error("Contains changed counters")
	}
	// Contains must not refresh LRU: make 0 LRU, probe it, then evict.
	c.Access(4 * 64)
	c.Access(8 * 64) // set now holds {4*64, 8*64}? no: 0 is LRU after these
	_ = c
}

func TestReset(t *testing.T) {
	c := smallCache()
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Error("stats survived Reset")
	}
	if c.Contains(0) {
		t.Error("contents survived Reset")
	}
}

func TestHitRate(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 7, Misses: 3}
	if got := s.HitRate(); got != 0.7 {
		t.Errorf("HitRate = %v", got)
	}
	if got := (Stats{}).HitRate(); got != 0 {
		t.Errorf("empty HitRate = %v", got)
	}
}

func TestDirectMappedBehavior(t *testing.T) {
	// 1-way cache: two lines in the same set always conflict.
	c := New(Config{Name: "dm", SizeBytes: 256, LineBytes: 64, Ways: 1, HitLatency: 1})
	a, b := uint64(0), uint64(256) // same set (4 sets, stride 256)
	c.Access(a)
	c.Access(b)
	if c.Contains(a) {
		t.Error("direct-mapped conflict did not evict")
	}
	if !c.Contains(b) {
		t.Error("newly filled line absent")
	}
}

func TestStreamLargerThanCacheThrashes(t *testing.T) {
	// A cyclic stream over 2x capacity with LRU must miss every time.
	c := New(Config{Name: "t", SizeBytes: 1 << 10, LineBytes: 64, Ways: 4, HitLatency: 1})
	numLines := 2 * (1 << 10) / 64
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < numLines; i++ {
			if c.Access(uint64(i * 64)) {
				t.Fatalf("pass %d line %d hit; LRU should thrash on cyclic overflow", pass, i)
			}
		}
	}
}

func TestRandomizedAgainstReferenceModel(t *testing.T) {
	// Differential test: compare against a simple map+timestamp reference
	// implementation of set-associative LRU.
	cfg := Config{Name: "ref", SizeBytes: 2 << 10, LineBytes: 64, Ways: 4, HitLatency: 1}
	c := New(cfg)
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)

	type refLine struct {
		line uint64
		t    int
	}
	ref := make([][]refLine, numSets)
	clock := 0
	refAccess := func(addr uint64) bool {
		line := addr / 64
		set := int(line % uint64(numSets))
		clock++
		for i := range ref[set] {
			if ref[set][i].line == line {
				ref[set][i].t = clock
				return true
			}
		}
		if len(ref[set]) < cfg.Ways {
			ref[set] = append(ref[set], refLine{line, clock})
			return false
		}
		victim := 0
		for i := range ref[set] {
			if ref[set][i].t < ref[set][victim].t {
				victim = i
			}
		}
		ref[set][victim] = refLine{line, clock}
		return false
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1 << 14))
		want := refAccess(addr)
		got := c.Access(addr)
		if got != want {
			t.Fatalf("access %d addr %#x: got hit=%v, reference says %v", i, addr, got, want)
		}
	}
}
