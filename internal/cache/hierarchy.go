package cache

import (
	"fmt"

	"dtexl/internal/dram"
)

// HierarchyConfig mirrors the cache section of Table II.
type HierarchyConfig struct {
	NumSC  int    // number of shader cores == number of L1 texture caches
	L1Tex  Config // per-SC private texture cache
	Vertex Config // L1 vertex cache (geometry pipeline)
	Tile   Config // tile cache (parameter buffer / framebuffer traffic)
	L2     Config // shared L2
	DRAM   dram.Config

	// NUCA turns the private L1 texture caches into one shared,
	// address-interleaved organization (static NUCA, in the spirit of
	// the DTM-NUCA alternative the paper cites [6]): each line lives in
	// exactly one bank, eliminating replication by construction, but an
	// SC pays NUCARemoteLatency extra cycles to reach another SC's bank.
	NUCA bool
	// NUCARemoteLatency is the interconnect cost of a remote-bank L1
	// access (hit or fill return) under NUCA.
	NUCARemoteLatency int64
}

// DefaultHierarchyConfig returns Table II's memory configuration: 4 private
// 16 KiB 4-way L1 texture caches, an 8 KiB 4-way vertex cache, a 64 KiB
// 4-way tile cache and a shared 1 MiB 8-way L2, all with 64-byte lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		NumSC:             4,
		L1Tex:             Config{Name: "l1tex", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		Vertex:            Config{Name: "vertex", SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		Tile:              Config{Name: "tile", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		L2:                Config{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 8, HitLatency: 12},
		DRAM:              dram.DefaultConfig(),
		NUCARemoteLatency: 4,
	}
}

// Hierarchy wires the private L1 texture caches, the vertex and tile
// caches, the shared L2 and DRAM together (Fig. 5). All property counters
// needed by the evaluation (notably total L2 accesses, the paper's
// texture-locality metric) are exposed through the individual caches.
type Hierarchy struct {
	cfg    HierarchyConfig
	L1Tex  []*Cache
	Vertex *Cache
	Tile   *Cache
	L2     *Cache
	DRAM   *dram.Model
}

// NewHierarchy builds the hierarchy from cfg. Panics on invalid
// configuration (static configuration errors are programming errors).
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.NumSC <= 0 {
		panic(fmt.Sprintf("cache: invalid SC count %d", cfg.NumSC))
	}
	h := &Hierarchy{
		cfg:    cfg,
		L1Tex:  make([]*Cache, cfg.NumSC),
		Vertex: New(cfg.Vertex),
		Tile:   New(cfg.Tile),
		L2:     New(cfg.L2),
		DRAM:   dram.New(cfg.DRAM),
	}
	for i := range h.L1Tex {
		c := cfg.L1Tex
		c.Name = fmt.Sprintf("l1tex%d", i)
		h.L1Tex[i] = New(c)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// TextureAccess performs a texture read from shader core sc for the line
// containing addr and returns the total latency seen by the SC.
func (h *Hierarchy) TextureAccess(sc int, addr uint64) int64 {
	lat, _ := h.TextureAccessInfo(sc, addr)
	return lat
}

// TextureAccessInfo performs a texture read and additionally reports
// whether it missed in the L1 level (and therefore occupies an L1 fill
// port in the shader core's timing model). Under NUCA the lookup goes to
// the line's home bank, with the remote-hop latency added when that bank
// belongs to another SC; remote hits are pipelined interconnect traffic,
// not fills.
func (h *Hierarchy) TextureAccessInfo(sc int, addr uint64) (lat int64, miss bool) {
	bank := sc
	lat = h.cfg.L1Tex.HitLatency
	if h.cfg.NUCA {
		bank = int((addr >> 6) % uint64(h.cfg.NumSC))
		if bank != sc {
			lat += h.cfg.NUCARemoteLatency
		}
	}
	if h.L1Tex[bank].Access(addr) {
		return lat, false
	}
	lat += h.cfg.L2.HitLatency
	if h.L2.Access(addr) {
		return lat, true
	}
	return lat + h.DRAM.Access(addr), true
}

// TextureL1Access performs only the private-L1 half of a texture read:
// the lookup in shader core sc's own L1 texture cache. It returns the
// L1 latency and whether the line missed (and therefore needs a shared
// L2/DRAM fill via TextureSharedFill). It is undefined under NUCA,
// where the L1 level is itself shared — callers must use
// TextureAccessInfo there.
//
// The split exists for the parallel executors: the L1 half touches only
// per-SC state and may run without coordination, while the shared fill
// must be globally ordered. TextureL1Access followed (on miss) by
// TextureSharedFill is bit-identical to TextureAccessInfo; the
// composition is pinned by TestTextureAccessSplitComposes.
func (h *Hierarchy) TextureL1Access(sc int, addr uint64) (lat int64, miss bool) {
	lat = h.cfg.L1Tex.HitLatency
	if h.L1Tex[sc].Access(addr) {
		return lat, false
	}
	return lat, true
}

// TextureSharedFill performs the shared half of a texture miss — the L2
// lookup and, on an L2 miss, the DRAM access — and returns the
// additional latency beyond the L1 level.
func (h *Hierarchy) TextureSharedFill(addr uint64) int64 {
	lat := h.cfg.L2.HitLatency
	if h.L2.Access(addr) {
		return lat
	}
	return lat + h.DRAM.Access(addr)
}

// SharedStats is a per-worker shadow of the counters a sharded texture
// fill touches. Counters are the only state a fill shares across
// (L2 set, DRAM bank) shards, and they are commutative sums — so fills
// on disjoint shards may run concurrently as long as each worker counts
// into its own SharedStats, folded back with AddSharedStats.
type SharedStats struct {
	L2   Stats
	DRAM dram.Stats
}

// TextureSharedFillSharded is TextureSharedFill with the counters
// accumulated into st. The caller must hold the shard grants for
// L2ShardOf(addr) and DRAMBankOf(addr): the fill mutates only that L2
// set's tag/LRU state and that DRAM bank's open-row state, so fills
// whose shard pairs are disjoint commute (DESIGN.md §11; proved by
// FuzzShardedOrderEquivalence).
func (h *Hierarchy) TextureSharedFillSharded(addr uint64, st *SharedStats) int64 {
	lat := h.cfg.L2.HitLatency
	if h.L2.AccessInto(addr, &st.L2) {
		return lat
	}
	return lat + h.DRAM.AccessInto(addr, &st.DRAM)
}

// AddSharedStats folds a worker's shadow counters into the hierarchy.
func (h *Hierarchy) AddSharedStats(st *SharedStats) {
	h.L2.AddStats(st.L2)
	h.DRAM.AddStats(st.DRAM)
	*st = SharedStats{}
}

// L2ShardOf returns the L2-set shard index of addr.
func (h *Hierarchy) L2ShardOf(addr uint64) int { return int(h.L2.SetIndex(addr)) }

// DRAMBankOf returns the DRAM-bank shard index of addr.
func (h *Hierarchy) DRAMBankOf(addr uint64) int { return h.DRAM.BankIndex(addr) }

// NumL2Shards and NumDRAMShards size the parallel sequencer's shard
// tables.
func (h *Hierarchy) NumL2Shards() int   { return h.L2.NumSets() }
func (h *Hierarchy) NumDRAMShards() int { return h.DRAM.NumBanks() }

// VertexAccess performs a vertex fetch through the vertex cache.
func (h *Hierarchy) VertexAccess(addr uint64) int64 {
	lat := h.cfg.Vertex.HitLatency
	if h.Vertex.Access(addr) {
		return lat
	}
	lat += h.cfg.L2.HitLatency
	if h.L2.Access(addr) {
		return lat
	}
	return lat + h.DRAM.Access(addr)
}

// TileAccess performs parameter-buffer or framebuffer traffic through the
// tile cache.
func (h *Hierarchy) TileAccess(addr uint64) int64 {
	lat := h.cfg.Tile.HitLatency
	if h.Tile.Access(addr) {
		return lat
	}
	lat += h.cfg.L2.HitLatency
	if h.L2.Access(addr) {
		return lat
	}
	return lat + h.DRAM.Access(addr)
}

// L2Accesses returns the total number of L2 accesses so far — the paper's
// headline texture-locality metric (Figs. 2, 11, 16).
func (h *Hierarchy) L2Accesses() uint64 { return h.L2.Stats().Accesses }

// L1TexStats returns aggregate stats over all private L1 texture caches.
func (h *Hierarchy) L1TexStats() Stats {
	var agg Stats
	for _, c := range h.L1Tex {
		s := c.Stats()
		agg.Accesses += s.Accesses
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Evictions += s.Evictions
	}
	return agg
}

// FrontState is a deep snapshot of the hierarchy levels touched by the
// policy-independent front half of a frame (geometry fetch + parameter
// buffer binning): the vertex cache, the tile cache, the shared L2 and
// DRAM. The private L1 texture caches are deliberately absent — the
// geometry and tiling engines never access them, so after the front half
// they are still in their reset state and need no snapshotting.
//
// A FrontState is immutable once captured and may be restored into any
// number of hierarchies concurrently.
type FrontState struct {
	vertex *Cache
	tile   *Cache
	l2     *Cache
	dram   *dram.Model
}

// SaveFront captures a FrontState from h. The snapshot includes cache
// contents, LRU ordering, and all counters, so a restore reproduces the
// exact machine state — cumulative statistics included.
func (h *Hierarchy) SaveFront() *FrontState {
	return &FrontState{
		vertex: h.Vertex.Clone(),
		tile:   h.Tile.Clone(),
		l2:     h.L2.Clone(),
		dram:   h.DRAM.Clone(),
	}
}

// RestoreFront deep-copies s into h's vertex, tile, L2 and DRAM levels,
// leaving the L1 texture caches untouched. It returns an error when h was
// built with different front-end geometry than the hierarchy s was saved
// from, since the snapshot would then be meaningless. The copy is
// in-place into the storage NewHierarchy already allocated — restores run
// once per memoized simulation, and cloning the L2 there used to be a
// leading allocation site.
func (h *Hierarchy) RestoreFront(s *FrontState) error {
	if h.cfg.Vertex != s.vertex.cfg || h.cfg.Tile != s.tile.cfg ||
		h.cfg.L2 != s.l2.cfg || h.cfg.DRAM != s.dram.Config() {
		return fmt.Errorf("cache: RestoreFront config mismatch (snapshot %v/%v/%v, hierarchy %v/%v/%v)",
			s.vertex.cfg, s.tile.cfg, s.l2.cfg, h.cfg.Vertex, h.cfg.Tile, h.cfg.L2)
	}
	if err := h.Vertex.CopyFrom(s.vertex); err != nil {
		return err
	}
	if err := h.Tile.CopyFrom(s.tile); err != nil {
		return err
	}
	if err := h.L2.CopyFrom(s.l2); err != nil {
		return err
	}
	h.DRAM.CopyFrom(s.dram)
	return nil
}

// Reset clears all caches, DRAM state and counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.L1Tex {
		c.Reset()
	}
	h.Vertex.Reset()
	h.Tile.Reset()
	h.L2.Reset()
	h.DRAM.Reset()
}
