// Package cache models the GPU's on-chip cache hierarchy: set-associative
// LRU caches with 64-byte lines (Table II), plus the composition of
// private per-SC L1 texture caches backed by a shared L2 backed by DRAM.
//
// The caches are purely functional state machines over addresses: they
// track contents and counts. Timing (hit/miss latencies) is carried in
// each cache's configuration and composed by Hierarchy.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int   // total capacity
	LineBytes  int   // line (block) size; Table II uses 64
	Ways       int   // associativity
	HitLatency int64 // cycles for a hit in this cache
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %q: size %d not divisible by ways*line (%d*%d)",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats holds access counters for one cache.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Add accumulates o into s. Every field is a commutative sum, so shadow
// counters kept by concurrent workers may be folded in any order and the
// total is identical to serial counting — the property the parallel
// executors' sharded grants rely on (proved by TestStatsCommutative).
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
}

// HitRate returns hits/accesses (0 when no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// A way packs a resident line's tag and valid bit into one word:
// tag<<1 | 1 when valid, 0 when invalid. Tags are at most
// addr >> (lineShift + setBits) < 2^58 for any realistic geometry, so
// the shift cannot overflow, and no valid tag encodes to 0. One word
// per way keeps a whole 4-way set in 32 bytes — half a cache line — and
// turns the lookup into a single integer compare per way.
type way = uint64

// Cache is a set-associative cache with true-LRU replacement. Each set's
// ways are kept in recency order (MRU at index 0), so a hit on the MRU
// way — the common case under texture locality — is a pure read, the LRU
// victim is always the tail way, and no per-way timestamp is needed.
// Move-to-front recency lists and use-time timestamps implement the same
// replacement policy; only the representation differs. The ways of all
// sets live in one flat, set-major array so lookups are a single
// bounds-checked slice plus index arithmetic, and snapshot/restore is one
// memmove.
type Cache struct {
	cfg       Config
	ways      []way // numSets * cfg.Ways entries, set-major, MRU-first
	nways     int
	setMask   uint64
	lineShift uint
	// tagShift is the width of the set-index field (popcount of setMask),
	// precomputed at New time: Access and Contains are the simulator's
	// hottest functions and must not rederive it per call.
	tagShift uint
	stats    Stats
}

// New builds a cache from cfg. It panics on invalid configuration, which
// is a programming error (configurations are static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		ways:      make([]way, numSets*cfg.Ways),
		nways:     cfg.Ways,
		setMask:   uint64(numSets - 1),
		lineShift: shift,
		tagShift:  uint64OfBits(uint64(numSets - 1)),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the cache's counters.
func (c *Cache) Stats() Stats { return c.stats }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.ways) / c.nways }

// SetIndex returns the set addr maps to. Two addresses with different
// set indices touch disjoint tag/LRU state, so their accesses commute:
// the sharded parallel sequencer orders accesses per set instead of
// globally (DESIGN.md §11).
func (c *Cache) SetIndex(addr uint64) uint64 {
	return addr >> c.lineShift & c.setMask
}

// AddStats folds a shadow counter block into the cache's own counters
// (see AccessInto).
func (c *Cache) AddStats(st Stats) { c.stats.Add(st) }

// Access looks up the line containing addr, allocating it on a miss
// (allocate-on-miss, true LRU). It returns whether the access hit.
//
// Invariant: within a set, valid ways form a prefix in recency order.
// Fills insert at the front, so invalid ways can only sink toward the
// tail and the LRU victim is always the last way.
func (c *Cache) Access(addr uint64) bool {
	return c.AccessInto(addr, &c.stats)
}

// AccessInto is Access with the counters accumulated into st instead of
// the cache's own stats. The parallel executors give each worker a
// shadow Stats block so that fills on *different* sets may run
// concurrently: the tag/LRU mutation stays per-set (guarded by the
// per-set shard grant), while the counters — the only cross-set shared
// state — become commutative per-worker sums folded back via AddStats.
// Access(addr) ≡ AccessInto(addr, &c.stats).
func (c *Cache) AccessInto(addr uint64, st *Stats) bool {
	st.Accesses++
	line := addr >> c.lineShift
	base := int(line&c.setMask) * c.nways
	set := c.ways[base : base+c.nways : base+c.nways]
	want := line>>c.tagShift<<1 | 1
	if set[0] == want {
		st.Hits++
		return true
	}
	for i := 1; i < len(set); i++ {
		if set[i] == want {
			// Shift by hand: the spans are a few words, below memmove's
			// break-even.
			for j := i; j > 0; j-- {
				set[j] = set[j-1]
			}
			set[0] = want
			st.Hits++
			return true
		}
	}
	st.Misses++
	last := len(set) - 1
	if set[last] != 0 {
		st.Evictions++
	}
	for j := last; j > 0; j-- {
		set[j] = set[j-1]
	}
	set[0] = want
	return false
}

// Contains reports whether the line holding addr is resident, without
// touching LRU state or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	base := int(line&c.setMask) * c.nways
	set := c.ways[base : base+c.nways]
	want := line>>c.tagShift<<1 | 1
	for i := range set {
		if set[i] == want {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the cache: contents, LRU state and
// counters of the copy evolve independently of the original afterwards.
// The struct copy carries every derived field (tagShift included); only
// the way array needs duplicating.
func (c *Cache) Clone() *Cache {
	cp := *c
	cp.ways = make([]way, len(c.ways))
	copy(cp.ways, c.ways)
	return &cp
}

// CopyFrom overwrites c's contents, LRU state and counters with src's
// without allocating: the restore path of a memoized front-half snapshot
// runs once per simulation, and cloning a 1 MiB L2 there dominated the
// executor's allocation profile. Both caches must share a configuration.
func (c *Cache) CopyFrom(src *Cache) error {
	if c.cfg != src.cfg {
		return fmt.Errorf("cache: CopyFrom config mismatch (%+v vs %+v)", c.cfg, src.cfg)
	}
	copy(c.ways, src.ways)
	c.stats = src.stats
	return nil
}

// Reset invalidates all contents and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = 0
	}
	c.stats = Stats{}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// uint64OfBits returns the number of set bits in a (2^k - 1) mask, i.e.
// the index width of the set field. Called once per New; the result is
// cached in Cache.tagShift.
func uint64OfBits(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}
