// Package cache models the GPU's on-chip cache hierarchy: set-associative
// LRU caches with 64-byte lines (Table II), plus the composition of
// private per-SC L1 texture caches backed by a shared L2 backed by DRAM.
//
// The caches are purely functional state machines over addresses: they
// track contents and counts. Timing (hit/miss latencies) is carried in
// each cache's configuration and composed by Hierarchy.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int   // total capacity
	LineBytes  int   // line (block) size; Table II uses 64
	Ways       int   // associativity
	HitLatency int64 // cycles for a hit in this cache
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %q: size %d not divisible by ways*line (%d*%d)",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats holds access counters for one cache.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/accesses (0 when no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type way struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       Config
	sets      [][]way
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     Stats
}

// New builds a cache from cfg. It panics on invalid configuration, which
// is a programming error (configurations are static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]way, numSets)
	backing := make([]way, numSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(numSets - 1),
		lineShift: shift,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the cache's counters.
func (c *Cache) Stats() Stats { return c.stats }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Access looks up the line containing addr, allocating it on a miss
// (allocate-on-miss, true LRU). It returns whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.stats.Accesses++
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	tag := line >> uint64OfBits(c.setMask)
	// Hit path.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			c.stats.Hits++
			return true
		}
	}
	// Miss: fill the LRU (or first invalid) way.
	c.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = way{tag: tag, valid: true, lastUse: c.tick}
	return false
}

// Contains reports whether the line holding addr is resident, without
// touching LRU state or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	tag := line >> uint64OfBits(c.setMask)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the cache: contents, LRU state and
// counters of the copy evolve independently of the original afterwards.
func (c *Cache) Clone() *Cache {
	cp := *c
	numSets := len(c.sets)
	cp.sets = make([][]way, numSets)
	backing := make([]way, numSets*c.cfg.Ways)
	for i := range cp.sets {
		cp.sets[i], backing = backing[:c.cfg.Ways], backing[c.cfg.Ways:]
		copy(cp.sets[i], c.sets[i])
	}
	return &cp
}

// Reset invalidates all contents and zeroes the counters.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// uint64OfBits returns the number of set bits in a (2^k - 1) mask, i.e.
// the index width of the set field.
func uint64OfBits(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}
