package cache

import (
	"testing"
)

func testCfg(name string) Config {
	return Config{Name: name, SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, HitLatency: 1}
}

func TestCacheCloneIndependence(t *testing.T) {
	c := New(testCfg("a"))
	for i := 0; i < 200; i++ {
		c.Access(uint64(i * 64))
	}
	cp := c.Clone()
	if cp.Stats() != c.Stats() {
		t.Fatalf("clone stats %+v != original %+v", cp.Stats(), c.Stats())
	}
	// The clone must see the same residency...
	for i := 150; i < 200; i++ {
		if c.Contains(uint64(i*64)) != cp.Contains(uint64(i*64)) {
			t.Fatalf("residency diverges at line %d", i)
		}
	}
	// ...and further accesses must not leak between the two.
	before := c.Stats()
	cp.Access(0xdead000)
	if c.Stats() != before {
		t.Error("access to clone mutated original stats")
	}
	if c.Contains(0xdead000) {
		t.Error("fill in clone appeared in original")
	}
}

// TestFrontSnapshotReplay is the memoization-correctness core: restoring
// a FrontState must reproduce the exact machine state, so identical
// access sequences applied to the original and to a restored hierarchy
// return identical latencies and counters — including LRU order and DRAM
// open rows.
func TestFrontSnapshotReplay(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h1 := NewHierarchy(cfg)
	// Phase A: the "geometry phase" traffic (vertex + tile only).
	for i := 0; i < 500; i++ {
		h1.VertexAccess(uint64(i * 48))
		h1.TileAccess(uint64(0x8000_0000 + i*80))
	}
	snap := h1.SaveFront()

	// Restore into a machine with a different SC count: front-end state
	// is policy- and SC-count-independent.
	cfg2 := cfg
	cfg2.NumSC = 1
	h2 := NewHierarchy(cfg2)
	if err := h2.RestoreFront(snap); err != nil {
		t.Fatal(err)
	}

	if h1.Vertex.Stats() != h2.Vertex.Stats() || h1.Tile.Stats() != h2.Tile.Stats() ||
		h1.L2.Stats() != h2.L2.Stats() || h1.DRAM.Stats() != h2.DRAM.Stats() {
		t.Fatal("restored counters differ from original")
	}

	// Phase B: identical further traffic must behave identically.
	for i := 0; i < 500; i++ {
		a := uint64(0x8000_0000 + (i*137)%40000)
		if l1, l2 := h1.TileAccess(a), h2.TileAccess(a); l1 != l2 {
			t.Fatalf("tile access %d: latency %d != %d", i, l1, l2)
		}
		v := uint64((i * 91) % 24000)
		if l1, l2 := h1.VertexAccess(v), h2.VertexAccess(v); l1 != l2 {
			t.Fatalf("vertex access %d: latency %d != %d", i, l1, l2)
		}
	}
	if h1.L2.Stats() != h2.L2.Stats() || h1.DRAM.Stats() != h2.DRAM.Stats() {
		t.Fatal("replayed counters diverge")
	}
}

// TestFrontSnapshotImmutable checks that consumers mutating their
// restored state never corrupt the snapshot.
func TestFrontSnapshotImmutable(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	h.TileAccess(0x100)
	snap := h.SaveFront()

	a := NewHierarchy(cfg)
	if err := a.RestoreFront(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a.TileAccess(uint64(i * 64))
	}
	b := NewHierarchy(cfg)
	if err := b.RestoreFront(snap); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Tile.Stats().Accesses, uint64(1); got != want {
		t.Fatalf("snapshot corrupted by consumer: %d tile accesses, want %d", got, want)
	}
}

func TestRestoreFrontConfigMismatch(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	snap := h.SaveFront()
	cfg := DefaultHierarchyConfig()
	cfg.L2.SizeBytes *= 2
	other := NewHierarchy(cfg)
	if err := other.RestoreFront(snap); err == nil {
		t.Fatal("config-mismatched restore accepted")
	}
}
