package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dtexl/internal/core"
)

// storeOptions returns a small two-benchmark suite for store tests.
func storeOptions() Options {
	opt := ScaledOptions(8)
	opt.Benchmarks = []string{"TRu", "CCS"}
	return opt
}

// TestStoreRoundTrip: results recorded through one runner's store are
// served to a second runner sharing the directory, bit-identical to the
// original compute.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := storeOptions()

	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st1.Logf = t.Logf
	r1 := NewRunner(opt)
	r1.Store = st1
	want := map[string]*RunResult{}
	for _, alias := range opt.aliases() {
		res, err := r1.RunOneWith(alias, core.DTexL(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want[alias] = res
	}
	if n, err := st1.Len(); err != nil || n != len(want) {
		t.Fatalf("Len() = %d, %v; want %d entries on disk", n, err, len(want))
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2.Logf = t.Logf
	r2 := NewRunner(opt)
	r2.Store = st2
	for _, alias := range opt.aliases() {
		res, err := r2.RunOneWith(alias, core.DTexL(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Metrics, want[alias].Metrics) {
			t.Errorf("%s: store-served metrics differ from recorded run", alias)
		}
		if res.Energy != want[alias].Energy {
			t.Errorf("%s: store-served energy differs from recorded run", alias)
		}
	}
	stats := st2.Stats()
	if stats.Hits != uint64(len(want)) || stats.Misses != 0 {
		t.Errorf("second runner stats = %+v, want every lookup a hit", stats)
	}
	if r2.CompletedRuns() != uint64(len(want)) {
		t.Errorf("CompletedRuns() = %d, want %d (store hits count as completed)", r2.CompletedRuns(), len(want))
	}
}

// TestStoreCorruptionRoundTrip is the injected-fault acceptance for the
// checksummed store: flip a byte in an entry, assert the checksum (or
// envelope/key verification) rejects it as a miss, the cell recomputes —
// concurrently, under the race detector — and the repaired entry is
// served afterward.
func TestStoreCorruptionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := storeOptions()

	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st1.Logf = t.Logf
	r1 := NewRunner(opt)
	r1.Store = st1
	want, err := r1.RunOneWith("TRu", core.DTexL(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte mid-entry — bit rot, or the chaos harness's injected
	// corruption.
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("store entries = %v, %v; want exactly one", names, err)
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(names[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh runner must reject the corrupt entry, recompute, and repair
	// it. Two concurrent callers exercise the single-flight path under
	// -race.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2.Logf = t.Logf
	r2 := NewRunner(opt)
	r2.Store = st2
	var wg sync.WaitGroup
	got := make([]*RunResult, 2)
	errs := make([]error, 2)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = r2.RunOneWith("TRu", core.DTexL(), nil)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(got[i].Metrics, want.Metrics) || got[i].Energy != want.Energy {
			t.Errorf("recompute after corruption differs from original result")
		}
	}
	stats := st2.Stats()
	if stats.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", stats.CorruptDropped)
	}
	if stats.Repaired != 1 {
		t.Errorf("Repaired = %d, want 1 (recompute must repair the entry)", stats.Repaired)
	}
	if stats.Hits != 0 {
		t.Errorf("Hits = %d, want 0 (the corrupt entry must not be served)", stats.Hits)
	}

	// The repaired entry is served to the next runner.
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st3.Logf = t.Logf
	r3 := NewRunner(opt)
	r3.Store = st3
	res, err := r3.RunOneWith("TRu", core.DTexL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Metrics, want.Metrics) || res.Energy != want.Energy {
		t.Error("repaired entry differs from the original result")
	}
	if s := st3.Stats(); s.Hits != 1 || s.Misses != 0 || s.CorruptDropped != 0 {
		t.Errorf("repaired-store stats = %+v, want one clean hit", s)
	}
}

// TestStoreRejectsBadCellPayload: the fleet ingest path refuses payloads
// that do not parse as a complete result, and the wire checksum matches
// what MarshalCellResult computes.
func TestStoreRejectsBadCellPayload(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Logf = t.Logf
	opt := storeOptions()
	c := CellSpec{Bench: "TRu", Policy: "baseline"}
	if err := st.RecordCellResult(opt, c, []byte(`{"Metrics":`)); err == nil {
		t.Error("RecordCellResult accepted a torn payload")
	}
	if err := st.RecordCellResult(opt, c, []byte(`{"Energy":{}}`)); err == nil {
		t.Error("RecordCellResult accepted a payload with no metrics")
	}
	if st.HasCell(opt, c) {
		t.Error("rejected payloads must not create entries")
	}

	r := NewRunner(opt)
	res, err := r.RunCell(t.Context(), c)
	if err != nil {
		t.Fatal(err)
	}
	b, sum, err := MarshalCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if sum != ResultSum(b) {
		t.Errorf("MarshalCellResult sum %s != ResultSum %s", sum, ResultSum(b))
	}
	if err := st.RecordCellResult(opt, c, b); err != nil {
		t.Fatal(err)
	}
	if !st.HasCell(opt, c) {
		t.Error("HasCell false after a valid RecordCellResult")
	}
}

// TestSuiteCellsRenderExperimentsFromStore is the fleet's correctness
// oracle in miniature: completing every suite cell into a shared store
// lets a fresh runner render the experiment tables entirely from the
// store (zero misses), byte-identical to a serial run.
func TestSuiteCellsRenderExperimentsFromStore(t *testing.T) {
	opt := storeOptions()
	exps := []string{"fig11", "fig16", "fig17"}

	// Serial reference.
	ref := NewRunner(opt)
	want := map[string]string{}
	for _, id := range exps {
		var buf bytes.Buffer
		if err := ref.RunExperiment(id, &buf); err != nil {
			t.Fatal(err)
		}
		want[id] = buf.String()
	}

	// "Fleet": every suite cell computed through RunCell into the store,
	// as workers would.
	dir := t.TempDir()
	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st1.Logf = t.Logf
	r1 := NewRunner(opt)
	r1.Store = st1
	cells := SuiteCells(opt)
	if len(cells) == 0 {
		t.Fatal("SuiteCells returned no cells")
	}
	for _, c := range cells {
		if _, err := r1.RunCell(t.Context(), c); err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		if !st1.HasCell(opt, c) {
			t.Fatalf("%s: store has no entry after RunCell", c.ID())
		}
	}

	// Coordinator render: a fresh runner over the same store must serve
	// every lookup from L2 and reproduce the serial bytes exactly.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2.Logf = t.Logf
	r2 := NewRunner(opt)
	r2.Store = st2
	for _, id := range exps {
		var buf bytes.Buffer
		if err := r2.RunExperiment(id, &buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != want[id] {
			t.Errorf("%s rendered from store differs from serial run:\n--- want\n%s--- got\n%s", id, want[id], buf.String())
		}
	}
	if s := st2.Stats(); s.Misses != 0 || s.CorruptDropped != 0 {
		t.Errorf("store-backed render stats = %+v, want zero misses (suite cells must cover every experiment)", s)
	}
}

// TestSuiteCellsDeterministic: the shard source is stable and unique.
func TestSuiteCellsDeterministic(t *testing.T) {
	opt := storeOptions()
	a, b := SuiteCells(opt), SuiteCells(opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SuiteCells is not deterministic")
	}
	seen := map[string]bool{}
	for _, c := range a {
		if seen[c.ID()] {
			t.Errorf("duplicate cell %s", c.ID())
		}
		seen[c.ID()] = true
		if _, _, err := c.ResolvePolicy(); err != nil {
			t.Errorf("%s: %v", c.ID(), err)
		}
	}
	if _, _, err := (CellSpec{Bench: "TRu", Policy: "no-such-policy"}).ResolvePolicy(); err == nil {
		t.Error("ResolvePolicy accepted an unknown policy label")
	}
}
