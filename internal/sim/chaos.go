package sim

import (
	"fmt"
	"strings"
)

// ChaosMode selects which fault ChaosConfig injects into a matching
// simulation.
type ChaosMode int

const (
	// ChaosPanic panics inside the memoized simulation body, exercising
	// the recover/isolation path end to end.
	ChaosPanic ChaosMode = iota
	// ChaosError returns a plain error from the simulation.
	ChaosError
	// ChaosStall runs the real executor under pipeline.WithChaosStall, so
	// the run livelocks deterministically until the watchdog converts it
	// into a genuine *pipeline.StallError with a real state dump.
	ChaosStall
	// ChaosCrash kills the whole process (exit 137, the SIGKILL code) the
	// moment the matching cell starts computing — a worker dying mid-lease
	// with no cleanup, used by the fleet chaos harness.
	ChaosCrash
)

var chaosModeNames = map[string]ChaosMode{
	"panic": ChaosPanic,
	"error": ChaosError,
	"stall": ChaosStall,
	"crash": ChaosCrash,
}

// String returns the mode's CLI spelling.
func (m ChaosMode) String() string {
	for s, v := range chaosModeNames {
		if v == m {
			return s
		}
	}
	return fmt.Sprintf("sim.ChaosMode(%d)", int(m))
}

// ChaosConfig injects one fault into every simulation of the matching
// (benchmark, policy) cell. It exists for fault injection only — tests
// and CI use it to prove the isolation, degradation (-keep-going) and
// checkpoint/resume paths work; it is never set in normal operation.
//
// Caveat: simulations are memoized on the *effective* machine
// configuration, not the policy label, so targeting a policy whose
// configuration another label shares (e.g. DTexL and HLB-flp2) faults
// the shared cell for both labels.
type ChaosConfig struct {
	// Bench and Policy select the cell; "" or "*" match everything.
	Bench  string
	Policy string
	Mode   ChaosMode
}

// matches reports whether the (benchmark, policy) cell is targeted. A
// nil receiver matches nothing, so call sites need no guard.
func (c *ChaosConfig) matches(alias, policy string) bool {
	if c == nil {
		return false
	}
	return matchToken(c.Bench, alias) && matchToken(c.Policy, policy)
}

func matchToken(pat, v string) bool {
	return pat == "" || pat == "*" || pat == v
}

// ParseChaos parses the CLI's -chaos spec: "bench/policy/mode", where
// bench and policy may be "*" (or empty) wildcards and mode is one of
// panic, error, stall — e.g. "TRu/DTexL/stall" or "*/Baseline/panic".
func ParseChaos(spec string) (*ChaosConfig, error) {
	parts := strings.Split(spec, "/")
	if len(parts) != 3 {
		return nil, fmt.Errorf("sim: chaos spec %q is not bench/policy/mode", spec)
	}
	mode, ok := chaosModeNames[parts[2]]
	if !ok {
		return nil, fmt.Errorf("sim: unknown chaos mode %q (want panic, error, stall or crash)", parts[2])
	}
	return &ChaosConfig{Bench: parts[0], Policy: parts[1], Mode: mode}, nil
}
