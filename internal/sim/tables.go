package sim

import (
	"fmt"
	"io"

	"dtexl/internal/pipeline"
	"dtexl/internal/trace"
)

// Table1 reproduces Table I: the benchmark suite characterization, with
// both the profile's nominal texture footprint and the footprint of the
// actually generated scene.
func (r *Runner) Table1(w io.Writer) error {
	fmt.Fprintln(w, "== tab1: Evaluated benchmarks (Table I)")
	fmt.Fprintf(w, "%-32s %-6s %9s %-9s %-5s %10s %10s %8s %7s\n",
		"Benchmark", "Alias", "Installs", "Genre", "Type", "FootMiB", "GenMiB", "Tris", "Draws")
	for _, p := range trace.Profiles() {
		typ := "3D"
		if p.Is2D {
			typ = "2D"
		}
		scene, err := r.scene(p.Alias)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-32s %-6s %8dM %-9s %-5s %10.1f %10.1f %8d %7d\n",
			p.Name, p.Alias, p.Installs, p.Genre, typ,
			p.TextureFootprintMiB,
			float64(scene.TextureFootprintBytes())/(1<<20),
			scene.TriangleCount(), len(scene.Draws))
	}
	return nil
}

// Table2 reproduces Table II: the GPU simulation parameters actually in
// force (the defaults of the pipeline and cache packages).
func Table2(w io.Writer) error {
	cfg := pipeline.DefaultConfig()
	h := cfg.Hierarchy
	fmt.Fprintln(w, "== tab2: GPU simulation parameters (Table II)")
	fmt.Fprintf(w, "Tech specs            %d MHz\n", int(cfg.ClockHz/1e6))
	fmt.Fprintf(w, "Screen resolution     %dx%d\n", cfg.Width, cfg.Height)
	fmt.Fprintf(w, "Tile size             %dx%d\n", cfg.TileSize, cfg.TileSize)
	fmt.Fprintf(w, "Tile traversal order  %s (baseline)\n", cfg.TileOrder)
	fmt.Fprintf(w, "Shader cores          %d (x%d warp slots, %d L1 fill port(s))\n",
		cfg.NumSC, cfg.WarpSlots, cfg.L1FillPorts)
	fmt.Fprintf(w, "Main memory           %d-%d cycles, %d banks\n",
		h.DRAM.RowHitLat, h.DRAM.RowMissLat, h.DRAM.Banks)
	fmt.Fprintf(w, "Vertex cache          %d-bytes/line, %dKiB, %d-way, %d cycle(s)\n",
		h.Vertex.LineBytes, h.Vertex.SizeBytes>>10, h.Vertex.Ways, h.Vertex.HitLatency)
	fmt.Fprintf(w, "Texture caches (%dx)   %d-bytes/line, %dKiB, %d-way, %d cycle(s)\n",
		h.NumSC, h.L1Tex.LineBytes, h.L1Tex.SizeBytes>>10, h.L1Tex.Ways, h.L1Tex.HitLatency)
	fmt.Fprintf(w, "Tile cache            %d-bytes/line, %dKiB, %d-way, %d cycle(s)\n",
		h.Tile.LineBytes, h.Tile.SizeBytes>>10, h.Tile.Ways, h.Tile.HitLatency)
	fmt.Fprintf(w, "L2 cache              %d-bytes/line, %dMiB, %d-way, %d cycles\n",
		h.L2.LineBytes, h.L2.SizeBytes>>20, h.L2.Ways, h.L2.HitLatency)
	return nil
}
