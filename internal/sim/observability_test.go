package sim

import (
	"sync"
	"testing"

	"dtexl/internal/pipeline"
)

// sweepResult is one simulated frame of the conservation sweep, labeled
// for error messages.
type sweepResult struct {
	name string
	m    *pipeline.Metrics
}

var (
	sweepOnce sync.Once
	sweepRes  []sweepResult
	sweepErr  error
)

// stallSweep simulates every (benchmark × policy) pair of the evaluation
// suite — coupled and decoupled executors via the policies, plus the IMR
// baseline per benchmark — once at 1/8 scale, shared between the
// conservation tests below. The runner's memo layers make the sweep cost
// one raster phase per distinct effective configuration.
func stallSweep(t *testing.T) []sweepResult {
	t.Helper()
	sweepOnce.Do(func() {
		opt := ScaledOptions(8)
		r := NewRunner(opt)
		r.Parallelism = 4
		var jobs []runJob
		for _, alias := range opt.aliases() {
			for _, pol := range suitePolicies() {
				jobs = append(jobs, runJob{Alias: alias, Policy: pol})
			}
		}
		if sweepErr = r.Warm(jobs); sweepErr != nil {
			return
		}
		for _, j := range jobs {
			res, err := r.run(j.Alias, j.Policy, j.UpperBound)
			if err != nil {
				sweepErr = err
				return
			}
			sweepRes = append(sweepRes, sweepResult{j.Alias + "/" + j.Policy.Name, res.Metrics})
		}
		for _, alias := range opt.aliases() {
			scene, err := r.scene(alias)
			if err != nil {
				sweepErr = err
				return
			}
			cfg := pipeline.DefaultConfig()
			cfg.Width, cfg.Height = opt.Width, opt.Height
			m, err := r.runIMR(scene, cfg)
			if err != nil {
				sweepErr = err
				return
			}
			sweepRes = append(sweepRes, sweepResult{alias + "/imr", m})
		}
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sweepRes
}

// TestStallBreakdownConserved is the suite-wide conservation law: for
// every benchmark under every policy and executor, each SC's five stall
// causes partition its clock exactly — Busy + TexWait + BarrierWait +
// QueueEmpty + DrainWait == RasterCycles, with no negative cause — and
// executors without a tile barrier report structurally zero BarrierWait.
func TestStallBreakdownConserved(t *testing.T) {
	for _, sr := range stallSweep(t) {
		m := sr.m
		if len(m.SCBreakdown) != m.Config.NumSC {
			t.Fatalf("%s: SCBreakdown has %d entries, want NumSC=%d", sr.name, len(m.SCBreakdown), m.Config.NumSC)
		}
		for i, b := range m.SCBreakdown {
			if got := b.Total(); got != m.RasterCycles {
				t.Errorf("%s: SC%d breakdown sums to %d, want RasterCycles=%d (%+v)",
					sr.name, i, got, m.RasterCycles, b)
			}
			if b.Busy < 0 || b.TexWait < 0 || b.BarrierWait < 0 || b.QueueEmpty < 0 || b.DrainWait < 0 {
				t.Errorf("%s: SC%d has a negative stall cause: %+v", sr.name, i, b)
			}
		}
		if m.Config.Decoupled {
			if bt := m.BreakdownTotals(); bt.BarrierWait != 0 {
				t.Errorf("%s: decoupled run reports %d barrier-wait cycles, want structural 0",
					sr.name, bt.BarrierWait)
			}
		}
	}
}

// TestIdleCyclesBackCompat pins the derived legacy counter: on every
// frame of the sweep, Events.SCIdleCycles still equals the seed-era
// formula NumSC*RasterCycles − SCBusyCycles bit-for-bit, and the
// breakdown's idle components (everything but Busy) reproduce it, so
// consumers of the old lump and of the new taxonomy can never disagree.
func TestIdleCyclesBackCompat(t *testing.T) {
	for _, sr := range stallSweep(t) {
		m := sr.m
		seedIdle := uint64(int64(m.Config.NumSC)*m.RasterCycles) - m.Events.SCBusyCycles
		if m.Events.SCIdleCycles != seedIdle {
			t.Errorf("%s: SCIdleCycles %d != seed formula NumSC*RasterCycles-SCBusyCycles = %d",
				sr.name, m.Events.SCIdleCycles, seedIdle)
		}
		var idle, busy int64
		for _, b := range m.SCBreakdown {
			idle += b.Idle()
			busy += b.Busy
		}
		if uint64(idle) != m.Events.SCIdleCycles {
			t.Errorf("%s: breakdown idle sum %d != SCIdleCycles %d", sr.name, idle, m.Events.SCIdleCycles)
		}
		if uint64(busy) != m.Events.SCBusyCycles {
			t.Errorf("%s: breakdown busy sum %d != SCBusyCycles %d", sr.name, busy, m.Events.SCBusyCycles)
		}
	}
}

// TestStallsExperimentSumsTo100 checks the -exp stalls table itself: the
// five cause shares of each policy row must sum to ~100% per benchmark
// column (the conservation law, surfaced at the reporting layer).
func TestStallsExperimentSumsTo100(t *testing.T) {
	opt := ScaledOptions(8)
	opt.Benchmarks = []string{"SWa", "CRa"}
	r := NewRunner(opt)
	tab, err := r.Stalls()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(stallCauses)
	if len(tab.Rows) != wantRows {
		t.Fatalf("stalls table has %d rows, want %d", len(tab.Rows), wantRows)
	}
	// Rows are grouped per policy: sum each cause share column-wise
	// within a policy block.
	for blk := 0; blk < len(tab.Rows); blk += len(stallCauses) {
		for col := range tab.Cols {
			var sum float64
			for c := 0; c < len(stallCauses); c++ {
				sum += tab.Rows[blk+c].Values[col]
			}
			if sum < 99.9 || sum > 100.1 {
				t.Errorf("policy block %d, column %s: cause shares sum to %.3f%%, want 100%%",
					blk/len(stallCauses), tab.Cols[col], sum)
			}
		}
	}
}

// TestStallsShapeMatchesPaper locks the qualitative §III-E story the
// stalls experiment exists to show: decoupling eliminates barrier waits
// entirely and converts part of them into useful work — DTexL's busy
// share must exceed the coupled baseline's on average.
func TestStallsShapeMatchesPaper(t *testing.T) {
	opt := ScaledOptions(8)
	r := NewRunner(opt)
	tab, err := r.Stalls()
	if err != nil {
		t.Fatal(err)
	}
	avg := len(tab.Cols) - 1 // the appended Avg column
	get := func(row string) float64 {
		for _, rr := range tab.Rows {
			if rr.Name == row {
				return rr.Values[avg]
			}
		}
		t.Fatalf("stalls table has no row %q", row)
		return 0
	}
	if bw := get("DTexL(HLB-flp2) barrier-wait"); bw != 0 {
		t.Errorf("DTexL(HLB-flp2) average barrier-wait share is %.3f%%, want exactly 0", bw)
	}
	if get("baseline barrier-wait") <= 0 {
		t.Error("coupled baseline shows no barrier-wait share; the experiment is vacuous")
	}
	if d, b := get("DTexL(HLB-flp2) busy"), get("baseline busy"); d <= b {
		t.Errorf("DTexL busy share %.2f%% not above baseline %.2f%%", d, b)
	}
}
