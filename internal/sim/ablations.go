package sim

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"

	"dtexl/internal/core"
	"dtexl/internal/energy"
	"dtexl/internal/pipeline"
	"dtexl/internal/sched"
	"dtexl/internal/tileorder"
	"dtexl/internal/trace"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: how much each ingredient of DTexL (tile order, warp-level
// latency hiding, L1 capacity) contributes.

// RunOneWith simulates one benchmark under a policy with an extra
// configuration mutation applied after the policy (for ablations that
// change the machine rather than the schedule). With opt.Frames > 1 it
// simulates that many animation frames against warm caches and
// aggregates the metrics.
func RunOneWith(alias string, pol core.Policy, opt Options, mutate func(*pipeline.Config)) (*RunResult, error) {
	return RunOneWithContext(context.Background(), alias, pol, opt, mutate)
}

// RunOneWithContext is RunOneWith under a cancelable context: canceling
// ctx aborts the simulation at the next executor watchdog poll.
func RunOneWithContext(ctx context.Context, alias string, pol core.Policy, opt Options, mutate func(*pipeline.Config)) (*RunResult, error) {
	prof, err := trace.ProfileByAlias(alias)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = opt.Width, opt.Height
	pol.Apply(&cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	frames := opt.Frames
	if frames < 1 {
		frames = 1
	}
	scenes := trace.GenerateAnimation(prof, cfg.Width, cfg.Height, opt.Seed, frames)
	ms, err := pipeline.RunFramesContext(ctx, scenes, cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %s/%s: %w", alias, pol.Name, err)
	}
	m := aggregateMetrics(ms)
	return &RunResult{
		Bench:   alias,
		Policy:  pol,
		Metrics: m,
		Energy:  energy.DefaultModel().Estimate(m.Events),
	}, nil
}

// AblTileOrder isolates the tile order: DTexL's grouping, assignment and
// decoupling held fixed while the Tiling Engine walks each implemented
// traversal. Reports the L2-access decrease vs the coupled baseline.
func (r *Runner) AblTileOrder() (*Table, error) {
	t := &Table{
		ID:     "abl-tileorder",
		Title:  "Ablation: tile order under fixed CG-square + flp2 + decoupled",
		Metric: "% decrease in total L2 accesses vs non-decoupled FG-xshift2",
		Cols:   r.cols(),
	}
	for _, ord := range tileorder.Kinds() {
		pol := core.DTexL()
		pol.Name = "order:" + ord.String()
		pol.TileOrder = ord
		if ord == tileorder.SOrder || ord == tileorder.Scanline {
			// flp2's mirror bookkeeping is meaningful for any order; keep
			// the assignment fixed so only the traversal varies.
			pol.Assignment = sched.Flp2
		}
		row, err := r.rowCells(pol.Name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.run(alias, pol, false)
			if err != nil {
				return 0, err
			}
			return pctDecrease(base.Metrics.L2Accesses(), res.Metrics.L2Accesses()), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: pol.Name, Values: withMean(row)})
	}
	return t, nil
}

// AblWarpSlots sweeps the SCs' warp slots. Extra warps cannot rescue the
// baseline — its miss stream saturates the L1 fill ports whatever the
// occupancy — while DTexL's low-miss streams convert every added warp
// into hidden latency, so DTexL's advantage *grows* with warp slots.
// This quantifies the paper's §V-C2 argument from the other side: the
// scheduler, not multithreading depth, is what removes the memory
// bottleneck.
func (r *Runner) AblWarpSlots() (*Table, error) {
	t := &Table{
		ID:     "abl-warps",
		Title:  "Ablation: DTexL speedup vs shader-core warp slots",
		Metric: "FPS speedup of DTexL over the coupled baseline at equal warp slots",
		Cols:   r.cols(),
	}
	for _, slots := range []int{2, 4, 8, 16} {
		mutate := func(cfg *pipeline.Config) { cfg.WarpSlots = slots }
		name := fmt.Sprintf("%d warps", slots)
		row, err := r.rowCells(name, func(alias string) (float64, error) {
			base, err := r.RunOneWith(alias, core.Baseline(), mutate)
			if err != nil {
				return 0, err
			}
			res, err := r.RunOneWith(alias, core.DTexL(), mutate)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: name, Values: withGeoMean(row)})
	}
	return t, nil
}

// AblFIFODepth sweeps the quad-FIFO depth that bounds how far the
// decoupled units may drift apart (Fig. 10 shows units "two tiles
// ahead"). A depth of one tile degenerates to near-coupled behaviour;
// the benefit saturates after a few tiles, which is why the paper's
// change is cheap.
func (r *Runner) AblFIFODepth() (*Table, error) {
	t := &Table{
		ID:     "abl-fifo",
		Title:  "Ablation: DTexL speedup vs decoupling FIFO depth",
		Metric: "FPS speedup of DTexL over the coupled baseline at the given FIFO depth",
		Cols:   r.cols(),
	}
	for _, depth := range []int{1, 2, 4, 8, 16} {
		mutate := func(cfg *pipeline.Config) { cfg.FIFODepth = depth }
		name := fmt.Sprintf("depth %d", depth)
		row, err := r.rowCells(name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.RunOneWith(alias, core.DTexL(), mutate)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: name, Values: withGeoMean(row)})
	}
	return t, nil
}

// AblTileSize sweeps the tile side (Table II fixes 32): smaller tiles
// cross barriers more often (hurting the coupled baseline) and give each
// Subtile less spatial locality; larger tiles do the opposite but need
// bigger on-chip buffers.
func (r *Runner) AblTileSize() (*Table, error) {
	t := &Table{
		ID:     "abl-tilesize",
		Title:  "Ablation: DTexL speedup vs tile size",
		Metric: "FPS speedup of DTexL over the coupled baseline at equal tile size",
		Cols:   r.cols(),
	}
	for _, ts := range []int{16, 32, 64} {
		mutate := func(cfg *pipeline.Config) { cfg.TileSize = ts }
		name := fmt.Sprintf("%dx%d tiles", ts, ts)
		row, err := r.rowCells(name, func(alias string) (float64, error) {
			base, err := r.RunOneWith(alias, core.Baseline(), mutate)
			if err != nil {
				return 0, err
			}
			res, err := r.RunOneWith(alias, core.DTexL(), mutate)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: name, Values: withGeoMean(row)})
	}
	return t, nil
}

// AblLateZ compares DTexL's benefit under Early-Z versus Late-Z
// (shader-written depth, §II-A): with overdraw paid in full, there is
// more fragment work per tile and proportionally more to win back.
func (r *Runner) AblLateZ() (*Table, error) {
	t := &Table{
		ID:     "abl-latez",
		Title:  "Ablation: DTexL speedup with Early-Z vs Late-Z",
		Metric: "FPS speedup of DTexL over the coupled baseline in the same Z mode",
		Cols:   r.cols(),
	}
	for _, late := range []bool{false, true} {
		late := late
		mutate := func(cfg *pipeline.Config) { cfg.LateZ = late }
		name := "Early-Z"
		if late {
			name = "Late-Z"
		}
		row, err := r.rowCells(name, func(alias string) (float64, error) {
			base, err := r.RunOneWith(alias, core.Baseline(), mutate)
			if err != nil {
				return 0, err
			}
			res, err := r.RunOneWith(alias, core.DTexL(), mutate)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: name, Values: withGeoMean(row)})
	}
	return t, nil
}

// AblL1Size sweeps the private texture L1 capacity. The relative benefit
// is remarkably flat: tiny L1s lose some headroom to capacity misses that
// hit both schedulers, huge L1s absorb part of the replication on their
// own, and in between the scheduler does the work — DTexL's win does not
// depend on a lucky cache size.
func (r *Runner) AblL1Size() (*Table, error) {
	t := &Table{
		ID:     "abl-l1size",
		Title:  "Ablation: DTexL L2-access decrease vs private L1 capacity",
		Metric: "% decrease in total L2 accesses (DTexL vs baseline) at equal L1 size",
		Cols:   r.cols(),
	}
	for _, kib := range []int{8, 16, 32, 64} {
		mutate := func(cfg *pipeline.Config) { cfg.Hierarchy.L1Tex.SizeBytes = kib << 10 }
		name := fmt.Sprintf("%dKiB L1", kib)
		row, err := r.rowCells(name, func(alias string) (float64, error) {
			base, err := r.RunOneWith(alias, core.Baseline(), mutate)
			if err != nil {
				return 0, err
			}
			res, err := r.RunOneWith(alias, core.DTexL(), mutate)
			if err != nil {
				return 0, err
			}
			return pctDecrease(base.Metrics.L2Accesses(), res.Metrics.L2Accesses()), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: name, Values: withMean(row)})
	}
	return t, nil
}

// AblPrefetch positions DTexL against decoupled access/execute texture
// prefetching (Arnau et al., §VI): prefetching hides latency but creates
// no L1 fill bandwidth, so it cannot recover what scheduling for
// locality recovers — and the two compose.
func (r *Runner) AblPrefetch() (*Table, error) {
	t := &Table{
		ID:     "abl-prefetch",
		Title:  "Ablation: texture prefetching vs (and with) DTexL",
		Metric: "FPS speedup over the coupled baseline",
		Cols:   r.cols(),
	}
	type variant struct {
		name string
		pol  core.Policy
		pf   bool
	}
	variants := []variant{
		{"baseline+prefetch", core.Baseline(), true},
		{"DTexL", core.DTexL(), false},
		{"DTexL+prefetch", core.DTexL(), true},
	}
	for _, v := range variants {
		v := v
		mutate := func(cfg *pipeline.Config) { cfg.TexturePrefetch = v.pf }
		row, err := r.rowCells(v.name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.RunOneWith(alias, v.pol, mutate)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: v.name, Values: withGeoMean(row)})
	}
	return t, nil
}

// BgIMR reproduces the background claim TBR rests on (§II, Antochi et
// al.): a tile-based pipeline keeps the Z/Color working set on chip and
// cuts external memory traffic by roughly 2x versus immediate-mode
// rendering. Both machines share every other parameter.
func (r *Runner) BgIMR() (*Table, error) {
	t := &Table{
		ID:     "bg-imr",
		Title:  "Background: TBR vs immediate-mode rendering",
		Metric: "IMR / TBR ratio per benchmark",
		Cols:   r.cols(),
	}
	// One IMR run feeds both rows, so the loop is bespoke: under
	// KeepGoing a failed benchmark goes NA in both.
	var dramRow, cycRow []float64
	for _, alias := range r.Opt.aliases() {
		alias := alias
		dram, cyc, err := func() (float64, float64, error) {
			tbr, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, 0, err
			}
			cfg := pipeline.DefaultConfig()
			cfg.Width, cfg.Height = r.Opt.Width, r.Opt.Height
			scene, err := r.scene(alias)
			if err != nil {
				return 0, 0, err
			}
			imr, err := r.runIMR(scene, cfg)
			if err != nil {
				return 0, 0, err
			}
			return float64(imr.Events.DRAMAccesses) / float64(tbr.Metrics.Events.DRAMAccesses),
				float64(imr.Cycles) / float64(tbr.Metrics.Cycles), nil
		}()
		if err != nil {
			if !r.KeepGoing {
				return nil, err
			}
			r.recordFailure(alias, "IMR/TBR", err)
			dram, cyc = math.NaN(), math.NaN()
		}
		dramRow = append(dramRow, dram)
		cycRow = append(cycRow, cyc)
	}
	t.Rows = append(t.Rows,
		TableRow{Name: "DRAM traffic (IMR/TBR)", Values: withMean(dramRow)},
		TableRow{Name: "cycles (IMR/TBR)", Values: withMean(cycRow)},
	)
	return t, nil
}

// runIMR executes the immediate-mode baseline. IMR runs live outside the
// memo layer, so panic recovery and the Runner's context/timeout are
// applied here rather than inherited from it.
func (r *Runner) runIMR(scene *trace.Scene, cfg pipeline.Config) (m *pipeline.Metrics, err error) {
	ctx := r.baseCtx()
	if r.Parallel > 1 || r.Parallel < 0 {
		ctx = pipeline.WithParallel(ctx, r.Parallel)
	}
	if r.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.RunTimeout)
		defer cancel()
	}
	defer func() {
		if rec := recover(); rec != nil {
			m, err = nil, fmt.Errorf("sim: IMR simulation panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	return pipeline.RunIMRContext(ctx, scene, cfg)
}

// AblNUCA compares DTexL against the other way to kill L1 replication the
// paper cites [6]: a shared, address-interleaved (static NUCA) L1
// organization. NUCA removes replication by construction but taxes most
// accesses with a remote-bank hop and leaves the coupled barriers in
// place, so it trades the paper's two problems differently than DTexL.
func (r *Runner) AblNUCA() (*Table, error) {
	t := &Table{
		ID:     "abl-nuca",
		Title:  "Ablation: S-NUCA shared L1s vs DTexL",
		Metric: "speedup over the coupled baseline / % L2-access decrease",
		Cols:   r.cols(),
	}
	type variant struct {
		name string
		pol  core.Policy
		nuca bool
	}
	variants := []variant{
		{"S-NUCA (FG, coupled)", core.Baseline(), true},
		{"S-NUCA + decoupled", core.BaselineDecoupled(), true},
		{"DTexL", core.DTexL(), false},
	}
	for _, v := range variants {
		v := v
		mutate := func(cfg *pipeline.Config) { cfg.Hierarchy.NUCA = v.nuca }
		// One run feeds both rows; a failed benchmark goes NA in both.
		var spdRow, l2Row []float64
		for _, alias := range r.Opt.aliases() {
			spd, l2, err := func() (float64, float64, error) {
				base, err := r.run(alias, core.Baseline(), false)
				if err != nil {
					return 0, 0, err
				}
				res, err := r.RunOneWith(alias, v.pol, mutate)
				if err != nil {
					return 0, 0, err
				}
				return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles),
					pctDecrease(base.Metrics.L2Accesses(), res.Metrics.L2Accesses()), nil
			}()
			if err != nil {
				if !r.KeepGoing {
					return nil, err
				}
				r.recordFailure(alias, v.name, err)
				spd, l2 = math.NaN(), math.NaN()
			}
			spdRow = append(spdRow, spd)
			l2Row = append(l2Row, l2)
		}
		t.Rows = append(t.Rows,
			TableRow{Name: "speedup: " + v.name, Values: withGeoMean(spdRow)},
			TableRow{Name: "L2 dec%: " + v.name, Values: withMean(l2Row)},
		)
	}
	return t, nil
}

// AblWarpSched sweeps the intra-SC warp scheduling policy (the axis the
// paper's §VI related work explores for GPGPU): DTexL's gain comes from
// where quads land, not from which resident warp issues next, so the
// speedup is expected to be insensitive to it.
func (r *Runner) AblWarpSched() (*Table, error) {
	t := &Table{
		ID:     "abl-warpsched",
		Title:  "Ablation: DTexL speedup vs intra-SC warp scheduling policy",
		Metric: "FPS speedup of DTexL over the coupled baseline under the same policy",
		Cols:   r.cols(),
	}
	for _, pol := range []pipeline.WarpSchedPolicy{
		pipeline.WarpSchedEarliest, pipeline.WarpSchedRoundRobin, pipeline.WarpSchedYoungest,
	} {
		pol := pol
		mutate := func(cfg *pipeline.Config) { cfg.WarpSched = pol }
		row, err := r.rowCells(pol.String(), func(alias string) (float64, error) {
			base, err := r.RunOneWith(alias, core.Baseline(), mutate)
			if err != nil {
				return 0, err
			}
			res, err := r.RunOneWith(alias, core.DTexL(), mutate)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: pol.String(), Values: withGeoMean(row)})
	}
	return t, nil
}
