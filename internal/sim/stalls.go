package sim

import (
	"dtexl/internal/core"
	"dtexl/internal/pipeline"
)

// stallCauses orders the five disjoint cycle attributions of
// pipeline.SCBreakdown for rendering. Every SC cycle of the raster
// phase lands in exactly one, so each policy's five rows sum to 100%.
var stallCauses = []struct {
	name string
	get  func(pipeline.SCBreakdown) int64
}{
	{"busy", func(b pipeline.SCBreakdown) int64 { return b.Busy }},
	{"tex-wait", func(b pipeline.SCBreakdown) int64 { return b.TexWait }},
	{"barrier-wait", func(b pipeline.SCBreakdown) int64 { return b.BarrierWait }},
	{"queue-empty", func(b pipeline.SCBreakdown) int64 { return b.QueueEmpty }},
	{"drain-wait", func(b pipeline.SCBreakdown) int64 { return b.DrainWait }},
}

// Stalls renders the stall-cause breakdown behind Fig. 17's speedup: for
// the coupled baseline and DTexL, the share of total shader-core cycles
// (NumSC x raster cycles) attributed to each disjoint cause. The paper's
// §III-E claim — decoupling drives inter-tile idle "to near zero" — shows
// up as the baseline's barrier-wait share collapsing to structural zero
// under DTexL, partially reinvested as busy/tex-wait.
func (r *Runner) Stalls() (*Table, error) {
	t := &Table{
		ID:     "stalls",
		Title:  "Stall breakdown: where SC cycles go (coupled baseline vs DTexL)",
		Metric: "% of total SC raster-phase cycles, by disjoint cause",
		Cols:   r.cols(),
	}
	for _, pol := range []core.Policy{core.Baseline(), dtexlAsHLBFlp2()} {
		pol := pol
		for _, cause := range stallCauses {
			cause := cause
			series := pol.Name + " " + cause.name
			row, err := r.rowCells(series, func(alias string) (float64, error) {
				res, err := r.run(alias, pol, false)
				if err != nil {
					return 0, err
				}
				m := res.Metrics
				denom := float64(int64(m.Config.NumSC) * m.RasterCycles)
				if denom == 0 {
					return 0, nil
				}
				return 100 * float64(cause.get(m.BreakdownTotals())) / denom, nil
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, TableRow{Name: series, Values: withMean(row)})
		}
	}
	return t, nil
}
