package sim

import (
	"fmt"
	"runtime/debug"
	"sync"

	"dtexl/internal/pipeline"
)

// memo is a concurrency-safe, single-flight memo table. The first caller
// of do for a key computes the value while concurrent callers for the
// same key block on the flight instead of duplicating the work. A
// computation that returns an error (or panics) removes its entry before
// releasing its waiters, so the table never holds a partial result that
// a later read would treat as complete — later calls simply retry.
type memo[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
	hits    uint64
	misses  uint64
}

// flight is one in-progress or completed computation. done is closed
// exactly once, after val/err are final.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newMemo[K comparable, V any]() *memo[K, V] {
	return &memo[K, V]{flights: make(map[K]*flight[V])}
}

// do returns the memoized value for key, computing it with fn on first
// use. A panicking fn is recovered into an error: the computing caller
// and every waiter receive it, and the panic never escapes to kill a
// Warm worker goroutine.
func (m *memo[K, V]) do(key K, fn func() (V, error)) (val V, err error) {
	m.mu.Lock()
	if f, ok := m.flights[key]; ok {
		m.hits++
		m.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	m.flights[key] = f
	m.misses++
	m.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			f.err = fmt.Errorf("sim: memoized computation panicked: %v\n%s", recover(), debug.Stack())
			var zero V
			val, err = zero, f.err
		}
		if f.err != nil {
			m.mu.Lock()
			delete(m.flights, key)
			m.mu.Unlock()
		}
		close(f.done)
	}()
	f.val, f.err = fn()
	completed = true
	return f.val, f.err
}

// stats returns the hit/miss counters (hits include waits on a flight
// that was still in progress).
func (m *memo[K, V]) stats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// prepKey identifies one shareable PreparedFrame: the benchmark's frame-0
// scene plus the front-half configuration projection. Policies, SC
// counts, L1 texture sizes and warp parameters deliberately do not
// appear — preparations are shared across all of them.
type prepKey struct {
	Alias string
	Seed  uint64
	Front pipeline.FrontKey
}

// defaultPrepBudget bounds the retained bytes of prepared frames. At the
// paper's full resolution a preparation is ~100 MiB, so the default
// holds a few dozen; past the budget the least-recently-used completed
// preparations are dropped and recomputed on next use.
const defaultPrepBudget = 4 << 30

// prepStore memoizes PreparedFrames with single-flight dedup (same
// error-path contract as memo) plus an LRU byte budget.
type prepStore struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[prepKey]*prepEntry
	clock   uint64
	hits    uint64
	misses  uint64
}

type prepEntry struct {
	done    chan struct{}
	prep    *pipeline.PreparedFrame
	err     error
	size    int64 // 0 until completed
	lastUse uint64
}

func newPrepStore(budget int64) *prepStore {
	if budget == 0 {
		budget = defaultPrepBudget
	}
	return &prepStore{budget: budget, entries: make(map[prepKey]*prepEntry)}
}

// do returns the memoized preparation for key, building it with fn on
// first use and evicting least-recently-used preparations beyond the
// byte budget.
func (s *prepStore) do(key prepKey, fn func() (*pipeline.PreparedFrame, error)) (prep *pipeline.PreparedFrame, err error) {
	s.mu.Lock()
	s.clock++
	if e, ok := s.entries[key]; ok {
		e.lastUse = s.clock
		s.hits++
		s.mu.Unlock()
		<-e.done
		return e.prep, e.err
	}
	e := &prepEntry{done: make(chan struct{}), lastUse: s.clock}
	s.entries[key] = e
	s.misses++
	s.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			// Recover the panic so it cannot kill a Warm worker; waiters
			// and the computing caller all see the error.
			e.err = fmt.Errorf("sim: frame preparation panicked: %v\n%s", recover(), debug.Stack())
			prep, err = nil, e.err
		}
		s.mu.Lock()
		if e.err != nil {
			delete(s.entries, key)
		} else {
			e.size = e.prep.SizeBytes()
			s.used += e.size
			s.evictLocked(key)
		}
		s.mu.Unlock()
		close(e.done)
	}()
	e.prep, e.err = fn()
	completed = true
	return e.prep, e.err
}

// evictLocked drops completed entries, least recently used first, until
// the budget is met. The entry under `keep` and in-flight entries are
// never evicted. Callers hold s.mu.
func (s *prepStore) evictLocked(keep prepKey) {
	for s.used > s.budget {
		var victim prepKey
		var ve *prepEntry
		for k, e := range s.entries {
			if k == keep || e.size == 0 {
				continue
			}
			if ve == nil || e.lastUse < ve.lastUse {
				victim, ve = k, e
			}
		}
		if ve == nil {
			return
		}
		s.used -= ve.size
		delete(s.entries, victim)
	}
}

// stats returns the hit/miss counters.
func (s *prepStore) stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
