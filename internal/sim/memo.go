package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"dtexl/internal/pipeline"
)

// memo is a concurrency-safe, single-flight memo table. The first caller
// of do for a key computes the value while concurrent callers for the
// same key block on the flight instead of duplicating the work. A
// computation that returns an error (or panics) removes its entry before
// releasing its waiters, so the table never holds a partial result that
// a later read would treat as complete — later calls simply retry.
//
// Waits are cancellable: a waiter whose context ends returns its
// context error immediately without disturbing the flight. Conversely,
// when the *computing* caller is cancelled, its waiters do not inherit
// that foreign context error — the failed entry has already been
// removed, so a still-live waiter retries (becoming the new computer if
// it gets there first). Serving-path requests therefore never fail just
// because the request that happened to arrive first gave up.
type memo[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
	hits    uint64
	misses  uint64
}

// flight is one in-progress or completed computation. done is closed
// exactly once, after val/err are final.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newMemo[K comparable, V any]() *memo[K, V] {
	return &memo[K, V]{flights: make(map[K]*flight[V])}
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error — the classes a waiter should not inherit from a
// computing caller whose lifetime is unrelated to its own.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do returns the memoized value for key, computing it with fn on first
// use. A panicking fn is recovered into an error: the computing caller
// and every waiter receive it, and the panic never escapes to kill a
// Warm worker goroutine. Waiting on another caller's in-flight
// computation respects ctx; fn itself is responsible for observing ctx
// (the Runner threads it into the executors).
func (m *memo[K, V]) do(ctx context.Context, key K, fn func() (V, error)) (val V, err error) {
	for {
		m.mu.Lock()
		if f, ok := m.flights[key]; ok {
			m.hits++
			m.mu.Unlock()
			// A completed flight is served even under a dead context: ctx
			// guards only the blocking wait, never a cache hit.
			select {
			case <-f.done:
			default:
				select {
				case <-f.done:
				case <-ctx.Done():
					var zero V
					return zero, ctx.Err()
				}
			}
			if f.err != nil && isCtxErr(f.err) && ctx.Err() == nil {
				// The computer was cancelled or timed out under its own
				// context while ours is still live; its entry is gone, so
				// retry rather than propagate a foreign cancellation.
				continue
			}
			return f.val, f.err
		}
		f := &flight[V]{done: make(chan struct{})}
		m.flights[key] = f
		m.misses++
		m.mu.Unlock()

		completed := false
		defer func() {
			if !completed {
				f.err = fmt.Errorf("sim: memoized computation panicked: %v\n%s", recover(), debug.Stack())
				var zero V
				val, err = zero, f.err
			}
			if f.err != nil {
				m.mu.Lock()
				delete(m.flights, key)
				m.mu.Unlock()
			}
			close(f.done)
		}()
		f.val, f.err = fn()
		completed = true
		return f.val, f.err
	}
}

// stats returns the hit/miss counters (hits include waits on a flight
// that was still in progress).
func (m *memo[K, V]) stats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// prepKey identifies one shareable PreparedFrame: the benchmark's frame-0
// scene plus the front-half configuration projection. Policies, SC
// counts, L1 texture sizes and warp parameters deliberately do not
// appear — preparations are shared across all of them.
type prepKey struct {
	Alias string
	Seed  uint64
	Front pipeline.FrontKey
}

// defaultPrepBudget bounds the retained bytes of prepared frames. At the
// paper's full resolution a preparation is ~100 MiB, so the default
// holds a few dozen; past the budget the least-recently-used completed
// preparations are dropped and recomputed on next use.
const defaultPrepBudget = 4 << 30

// prepStore memoizes PreparedFrames with single-flight dedup (same
// error-path and cancellable-wait contract as memo) plus an LRU byte
// budget.
type prepStore struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[prepKey]*prepEntry
	clock   uint64
	hits    uint64
	misses  uint64
}

type prepEntry struct {
	done    chan struct{}
	prep    *pipeline.PreparedFrame
	err     error
	size    int64 // 0 until completed
	lastUse uint64
}

func newPrepStore(budget int64) *prepStore {
	if budget == 0 {
		budget = defaultPrepBudget
	}
	return &prepStore{budget: budget, entries: make(map[prepKey]*prepEntry)}
}

// do returns the memoized preparation for key, building it with fn on
// first use and evicting least-recently-used preparations beyond the
// byte budget. Waits on another caller's in-flight build respect ctx,
// with the same cancelled-computer retry contract as memo.do.
func (s *prepStore) do(ctx context.Context, key prepKey, fn func() (*pipeline.PreparedFrame, error)) (prep *pipeline.PreparedFrame, err error) {
	for {
		s.mu.Lock()
		s.clock++
		if e, ok := s.entries[key]; ok {
			e.lastUse = s.clock
			s.hits++
			s.mu.Unlock()
			select {
			case <-e.done:
			default:
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			if e.err != nil && isCtxErr(e.err) && ctx.Err() == nil {
				continue
			}
			return e.prep, e.err
		}
		e := &prepEntry{done: make(chan struct{}), lastUse: s.clock}
		s.entries[key] = e
		s.misses++
		s.mu.Unlock()

		completed := false
		defer func() {
			if !completed {
				// Recover the panic so it cannot kill a Warm worker; waiters
				// and the computing caller all see the error.
				e.err = fmt.Errorf("sim: frame preparation panicked: %v\n%s", recover(), debug.Stack())
				prep, err = nil, e.err
			}
			s.mu.Lock()
			if e.err != nil {
				delete(s.entries, key)
			} else {
				e.size = e.prep.SizeBytes()
				s.used += e.size
				s.evictLocked(key)
			}
			s.mu.Unlock()
			close(e.done)
		}()
		e.prep, e.err = fn()
		completed = true
		return e.prep, e.err
	}
}

// evictLocked drops completed entries, least recently used first, until
// the budget is met. The entry under `keep` and in-flight entries are
// never evicted. Callers hold s.mu.
func (s *prepStore) evictLocked(keep prepKey) {
	for s.used > s.budget {
		var victim prepKey
		var ve *prepEntry
		for k, e := range s.entries {
			if k == keep || e.size == 0 {
				continue
			}
			if ve == nil || e.lastUse < ve.lastUse {
				victim, ve = k, e
			}
		}
		if ve == nil {
			return
		}
		s.used -= ve.size
		delete(s.entries, victim)
	}
}

// stats returns the hit/miss counters.
func (s *prepStore) stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
