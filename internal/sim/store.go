package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is the content-addressed shared result store — the multi-process
// generalization of the per-process checkpoint Journal. Each completed
// simulation is one file under the store directory, named by the SHA-256
// of its canonical simKey bytes (the effective machine configuration plus
// workload identity, exactly the in-memory memo key), holding the
// label-independent result JSON guarded by a CRC-64 checksum.
//
// The store is safe for concurrent use by many processes sharing the
// directory: writes go to a temp file, fsync, then rename, so readers
// never observe a torn entry, and two workers recording the same cell
// write byte-identical content in either order. Reads verify both the
// checksum and the stored key bytes; a corrupt entry (bit rot, torn
// write, injected fault) is dropped and reported as a miss, so the cell
// is recomputed — and the recompute's record repairs the entry in place.
// Results round-trip bit-identically through JSON (the same property the
// Journal relies on), so a cell served from the store renders byte-for-
// byte the same output as a cell computed live.
//
// In the fleet (internal/fleet) the store is the L2 of a three-level
// lookup: Runner's single-flight memo (L1, per process) → shared store
// (L2, per fleet) → compute.
type Store struct {
	dir string
	// Logf, when non-nil, replaces the standard logger for corruption
	// warnings. Set before concurrent use.
	Logf func(format string, args ...any)

	mu          sync.Mutex
	hits        uint64
	misses      uint64
	corrupt     uint64
	repaired    uint64
	corruptKeys map[string]bool // entry name → dropped as corrupt, awaiting repair
}

// StoreStats is a snapshot of the store's counters.
type StoreStats struct {
	// Hits and Misses count lookups served and not served.
	Hits, Misses uint64
	// CorruptDropped counts entries that failed checksum or key
	// verification and were removed (each also counts as a miss).
	CorruptDropped uint64
	// Repaired counts records that replaced a previously dropped corrupt
	// entry.
	Repaired uint64
}

// storeEntry is the on-disk envelope: the canonical key bytes, the
// CRC-64 (ECMA) of the raw result bytes, and the result itself.
type storeEntry struct {
	Key    json.RawMessage `json:"key"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// OpenStore opens (creating if needed) a shared result store rooted at
// dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sim: result store dir: %w", err)
	}
	return &Store{dir: dir, corruptKeys: make(map[string]bool)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

var crcTable = crc64.MakeTable(crc64.ECMA)

// ResultSum is the checksum the store and the fleet wire protocol use to
// guard result payloads: CRC-64 (ECMA) over the exact bytes, hex encoded.
func ResultSum(b []byte) string {
	return fmt.Sprintf("%016x", crc64.Checksum(b, crcTable))
}

// entryName returns the content address of a key: SHA-256 over the
// canonical key bytes.
func entryName(keyBytes []byte) string {
	h := sha256.Sum256(keyBytes)
	return hex.EncodeToString(h[:])
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+".json")
}

func (s *Store) warnf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// lookup returns the stored result for key, verifying the checksum and
// key bytes. A corrupt entry is removed (so the recompute repairs it)
// and reported as a miss.
func (s *Store) lookup(key simKey) (*simResult, bool) {
	kb, err := simKeyBytes(key)
	if err != nil {
		return nil, false
	}
	res, ok := s.load(kb, true)
	return res, ok
}

// has reports whether a valid entry exists for the key without counting
// a hit or miss; corrupt entries are still dropped (and counted).
func (s *Store) has(keyBytes []byte) bool {
	_, ok := s.load(keyBytes, false)
	return ok
}

// load reads and verifies one entry. count selects whether the hit/miss
// counters move; corruption always counts.
func (s *Store) load(keyBytes []byte, count bool) (*simResult, bool) {
	name := entryName(keyBytes)
	miss := func() (*simResult, bool) {
		if count {
			s.mu.Lock()
			s.misses++
			s.mu.Unlock()
		}
		return nil, false
	}
	raw, err := os.ReadFile(s.path(name))
	if err != nil {
		return miss()
	}
	reject := func(reason string) (*simResult, bool) {
		os.Remove(s.path(name))
		s.mu.Lock()
		s.corrupt++
		s.corruptKeys[name] = true
		s.mu.Unlock()
		s.warnf("sim: store %s: dropped corrupt entry %s (%s); the cell will be recomputed", s.dir, name[:12], reason)
		return miss()
	}
	var e storeEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return reject("unparseable envelope")
	}
	if e.Sum != ResultSum(e.Result) {
		return reject("result checksum mismatch")
	}
	if !bytes.Equal(e.Key, keyBytes) {
		return reject("key bytes do not match the content address")
	}
	var res simResult
	if err := json.Unmarshal(e.Result, &res); err != nil || res.Metrics == nil {
		return reject("unparseable result")
	}
	if count {
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
	}
	return &res, true
}

// record persists one computed result. Failures are returned, not fatal:
// a missed record only costs a deterministic recompute later.
func (s *Store) record(key simKey, res *simResult) error {
	kb, err := simKeyBytes(key)
	if err != nil {
		return fmt.Errorf("sim: store key: %w", err)
	}
	rb, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sim: store result: %w", err)
	}
	return s.recordRaw(kb, rb)
}

// recordRaw writes the entry for keyBytes with the given raw result
// bytes, atomically (temp file + fsync + rename), so concurrent writers
// and a crash mid-write can never leave a torn entry under the final
// name.
func (s *Store) recordRaw(keyBytes, resultBytes []byte) error {
	name := entryName(keyBytes)
	env, err := json.Marshal(storeEntry{
		Key:    keyBytes,
		Sum:    ResultSum(resultBytes),
		Result: resultBytes,
	})
	if err != nil {
		return fmt.Errorf("sim: store entry: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name[:12]+"-*")
	if err != nil {
		return fmt.Errorf("sim: store write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return fmt.Errorf("sim: store write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sim: store fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sim: store close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		return fmt.Errorf("sim: store rename: %w", err)
	}
	s.mu.Lock()
	if s.corruptKeys[name] {
		delete(s.corruptKeys, name)
		s.repaired++
	}
	s.mu.Unlock()
	return nil
}

// RecordCellResult verifies and persists a result payload produced by a
// fleet worker for the given suite cell: the raw bytes must parse as a
// complete result, and they are stored exactly as received so the
// worker's float encoding is preserved bit for bit.
func (s *Store) RecordCellResult(opt Options, c CellSpec, resultBytes []byte) error {
	var res simResult
	if err := json.Unmarshal(resultBytes, &res); err != nil || res.Metrics == nil {
		return fmt.Errorf("sim: store: cell %s result does not parse: %v", c.ID(), err)
	}
	key, err := cellKey(opt, c)
	if err != nil {
		return err
	}
	kb, err := simKeyBytes(key)
	if err != nil {
		return fmt.Errorf("sim: store key: %w", err)
	}
	return s.recordRaw(kb, resultBytes)
}

// HasCell reports whether the store holds a valid result for the suite
// cell under the given options — the coordinator's resume scan. Corrupt
// entries found during the scan are dropped (and the cell reported
// absent) so the fleet recomputes them.
func (s *Store) HasCell(opt Options, c CellSpec) bool {
	key, err := cellKey(opt, c)
	if err != nil {
		return false
	}
	kb, err := simKeyBytes(key)
	if err != nil {
		return false
	}
	return s.has(kb)
}

// Stats snapshots the store's counters. Safe to call concurrently.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Hits: s.hits, Misses: s.misses, CorruptDropped: s.corrupt, Repaired: s.repaired}
}

// Len counts the entries currently on disk (excluding in-flight temp
// files).
func (s *Store) Len() (int, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// GCPolicy bounds the store's disk footprint. Zero fields are
// unbounded: the zero policy makes GC a no-op scan.
type GCPolicy struct {
	// MaxBytes evicts oldest-first until the entries total at most this
	// many bytes (pinned entries are never evicted and still count
	// toward the total).
	MaxBytes int64
	// MaxAge evicts entries whose file modification time is older than
	// this, regardless of the size budget.
	MaxAge time.Duration
}

// GCStats reports one GC sweep.
type GCStats struct {
	Scanned    int   // entries examined
	Evicted    int   // entries removed
	Pinned     int   // entries spared by the pin set
	BytesFreed int64 // total size of evicted entries
	BytesKept  int64 // total size of surviving entries
}

// SweepEntryNames returns the entry names (content addresses) of every
// cell in the suite sweep described by opt — the pin set a coordinator
// passes to GC so that a live sweep's results are never evicted out
// from under it (see TestStoreGCKeepsLiveSweep).
func SweepEntryNames(opt Options) (map[string]bool, error) {
	pins := make(map[string]bool)
	for _, c := range SuiteCells(opt) {
		key, err := cellKey(opt, c)
		if err != nil {
			return nil, err
		}
		kb, err := simKeyBytes(key)
		if err != nil {
			return nil, err
		}
		pins[entryName(kb)] = true
	}
	return pins, nil
}

// GC removes entries to enforce pol, never touching entries named in
// pinned. Eviction is oldest-modification-first, so under a size bound
// the least recently written results go first; a concurrent writer can
// re-record any evicted entry (eviction only costs a deterministic
// recompute, exactly like a corruption drop). Stale temp files from
// crashed writers are also reaped. Safe to run while lookups and
// records proceed: lookup holds no entry open across the remove, and
// a lost race simply reads as a miss.
func (s *Store) GC(pol GCPolicy, pinned map[string]bool) (GCStats, error) {
	var st GCStats
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("sim: store gc: %w", err)
	}
	type entry struct {
		name string // content address (no .json)
		size int64
		mod  time.Time
	}
	var live []entry
	now := time.Now()
	for _, de := range ents {
		fn := de.Name()
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent remove/rename
		}
		if strings.HasPrefix(fn, ".tmp-") {
			// A writer holds its temp file only for one write+rename;
			// anything this old is an orphan from a crashed process.
			if now.Sub(info.ModTime()) > time.Hour {
				os.Remove(filepath.Join(s.dir, fn))
			}
			continue
		}
		name, ok := strings.CutSuffix(fn, ".json")
		if !ok {
			continue
		}
		live = append(live, entry{name: name, size: info.Size(), mod: info.ModTime()})
	}
	st.Scanned = len(live)
	sort.Slice(live, func(i, j int) bool { return live[i].mod.Before(live[j].mod) })
	var total int64
	for _, e := range live {
		total += e.size
	}
	evict := func(e entry) {
		os.Remove(s.path(e.name))
		st.Evicted++
		st.BytesFreed += e.size
		total -= e.size
	}
	for _, e := range live {
		if pinned[e.name] {
			st.Pinned++
			continue
		}
		tooOld := pol.MaxAge > 0 && now.Sub(e.mod) > pol.MaxAge
		overBudget := pol.MaxBytes > 0 && total > pol.MaxBytes
		if tooOld || overBudget {
			evict(e)
		}
	}
	st.BytesKept = total
	return st, nil
}

// MarshalCellResult renders a completed run as the fleet's wire payload:
// the label-independent result JSON plus its checksum. The coordinator
// verifies the checksum before accepting the result into the store, so a
// payload torn or corrupted in transit is rejected and the cell retried
// rather than served wrong.
func MarshalCellResult(res *RunResult) (resultBytes []byte, sum string, err error) {
	b, err := json.Marshal(&simResult{Metrics: res.Metrics, Energy: res.Energy})
	if err != nil {
		return nil, "", fmt.Errorf("sim: marshal cell result: %w", err)
	}
	return b, ResultSum(b), nil
}
