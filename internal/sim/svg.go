package sim

import (
	"fmt"
	"io"
	"strings"

	"dtexl/internal/plot"
)

// BarChart converts a result table into a plottable grouped bar chart.
// Normalized and speedup metrics get a dashed reference line at 1.
func (t *Table) BarChart() *plot.BarChart {
	c := &plot.BarChart{
		Title:      fmt.Sprintf("%s: %s", t.ID, t.Title),
		YLabel:     t.Metric,
		Categories: t.Cols,
	}
	if strings.Contains(t.Metric, "normalized") || strings.Contains(t.Metric, "speedup") ||
		strings.Contains(t.Metric, "ratio") {
		c.RefLine = 1
	}
	for _, r := range t.Rows {
		c.Series = append(c.Series, plot.Series{Name: r.Name, Values: r.Values})
	}
	return c
}

// BoxChart converts violin summaries into a plottable box chart. Boxes
// are colored by configuration.
func (t *ViolinTable) BoxChart() *plot.BoxChart {
	c := &plot.BoxChart{
		Title:  fmt.Sprintf("%s: %s", t.ID, t.Title),
		YLabel: t.Metric,
	}
	groups := map[string]int{}
	for _, r := range t.Rows {
		g, ok := groups[r.Config]
		if !ok {
			g = len(groups)
			groups[r.Config] = g
		}
		c.Boxes = append(c.Boxes, plot.BoxEntry{
			Label:  r.Bench + "/" + r.Config,
			Min:    r.Summary.Min,
			Q1:     r.Summary.Q1,
			Median: r.Summary.Median,
			Q3:     r.Summary.Q3,
			Max:    r.Summary.Max,
			Mean:   r.Summary.Mean,
			Group:  g,
		})
	}
	return c
}

// RenderSVG runs one experiment and writes it as an SVG figure. The text
// tables (tab1, tab2) have no graphical form and are rejected.
func (r *Runner) RenderSVG(id string, w io.Writer) error {
	switch strings.ToLower(id) {
	case "fig14":
		t, err := r.Fig14()
		if err != nil {
			return err
		}
		return t.BoxChart().WriteSVG(w)
	case "fig15":
		t, err := r.Fig15()
		if err != nil {
			return err
		}
		return t.BoxChart().WriteSVG(w)
	case "tab1", "tab2":
		return fmt.Errorf("sim: %s is a text table with no SVG form", id)
	}
	t, err := r.tableFor(id)
	if err != nil {
		return err
	}
	return t.BarChart().WriteSVG(w)
}

// tableFor dispatches the bar-chart experiments by ID.
func (r *Runner) tableFor(id string) (*Table, error) {
	switch strings.ToLower(id) {
	case "fig1":
		return r.Fig1()
	case "fig2":
		return r.Fig2()
	case "fig11":
		return r.Fig11()
	case "fig12":
		return r.Fig12()
	case "fig13":
		return r.Fig13()
	case "fig16":
		return r.Fig16()
	case "fig17":
		return r.Fig17()
	case "fig18":
		return r.Fig18()
	case "abl-tileorder":
		return r.AblTileOrder()
	case "abl-warps":
		return r.AblWarpSlots()
	case "abl-l1size":
		return r.AblL1Size()
	case "abl-fifo":
		return r.AblFIFODepth()
	case "abl-tilesize":
		return r.AblTileSize()
	case "abl-latez":
		return r.AblLateZ()
	case "abl-prefetch":
		return r.AblPrefetch()
	case "abl-nuca":
		return r.AblNUCA()
	case "abl-warpsched":
		return r.AblWarpSched()
	case "bg-imr":
		return r.BgIMR()
	case "stalls":
		return r.Stalls()
	default:
		return nil, fmt.Errorf("sim: unknown experiment %q", id)
	}
}
