package sim

import (
	"reflect"
	"testing"

	"dtexl/internal/cache"
	"dtexl/internal/core"
	"dtexl/internal/pipeline"
	"dtexl/internal/trace"
)

// suitePolicies is every named policy the evaluation runs: the three
// reference points, the Fig. 6/11/12 groupings and the Fig. 8 subtile
// mappings.
func suitePolicies() []core.Policy {
	pols := []core.Policy{core.Baseline(), core.BaselineDecoupled(), core.DTexL()}
	pols = append(pols, core.GroupingPolicies()...)
	pols = append(pols, core.Fig8Mappings()...)
	return pols
}

// TestMemoizedRunsBitIdentical is the acceptance gate for the memo
// layers: for every (benchmark, policy) pair — plus the Fig. 16 upper
// bound — the Runner's memoized path must produce metrics and energy
// bit-identical to the unmemoized package-level RunOneWith.
func TestMemoizedRunsBitIdentical(t *testing.T) {
	opt := ScaledOptions(8) // full benchmark suite
	r := NewRunner(opt)
	for _, alias := range opt.aliases() {
		for _, pol := range suitePolicies() {
			live, err := RunOneWith(alias, pol, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			memo, err := r.RunOneWith(alias, pol, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(live.Metrics, memo.Metrics) {
				t.Errorf("%s/%s: memoized metrics differ from live run", alias, pol.Name)
			}
			if live.Energy != memo.Energy {
				t.Errorf("%s/%s: memoized energy differs from live run", alias, pol.Name)
			}
		}
		live, err := RunOne(alias, core.Baseline(), opt, true)
		if err != nil {
			t.Fatal(err)
		}
		memo, err := r.run(alias, core.Baseline(), true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live.Metrics, memo.Metrics) || live.Energy != memo.Energy {
			t.Errorf("%s/upper-bound: memoized run differs from live run", alias)
		}
	}
	tm := r.Timing()
	if tm.PrepHits == 0 || tm.SceneHits == 0 {
		t.Errorf("memo layers idle during sweep: %+v", tm)
	}
}

// TestGeometryPolicyIndependent pins the §III-C property the whole
// memoization scheme rests on: the geometry phase and the tiling
// engine's binning are identical under the baseline, DTexL and every
// Fig. 8 mapping — the scheduling policy only affects the raster phase.
func TestGeometryPolicyIndependent(t *testing.T) {
	opt := ScaledOptions(4)
	for _, alias := range opt.aliases() {
		prof, err := trace.ProfileByAlias(alias)
		if err != nil {
			t.Fatal(err)
		}
		scene := trace.GenerateScene(prof, opt.Width, opt.Height, opt.Seed)
		var refGeo *pipeline.GeometryResult
		var refBin *pipeline.Binning
		var refName string
		for _, pol := range suitePolicies() {
			cfg := pipeline.DefaultConfig()
			cfg.Width, cfg.Height = opt.Width, opt.Height
			pol.Apply(&cfg)
			hier := cache.NewHierarchy(cfg.Hierarchy)
			geo := pipeline.RunGeometry(scene, hier, cfg)
			bin := pipeline.BinPrimitives(geo.Primitives, hier, cfg)
			if refGeo == nil {
				refGeo, refBin, refName = &geo, bin, pol.Name
				continue
			}
			if !reflect.DeepEqual(*refGeo, geo) {
				t.Errorf("%s: geometry under %s differs from %s", alias, pol.Name, refName)
			}
			if !reflect.DeepEqual(refBin, bin) {
				t.Errorf("%s: binning under %s differs from %s", alias, pol.Name, refName)
			}
		}
	}
}
