package sim

import (
	"bytes"
	"strings"
	"testing"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
)

func TestRunOneWith(t *testing.T) {
	opt := testOptions()
	small, err := RunOneWith("TRu", core.Baseline(), opt, func(cfg *pipeline.Config) {
		cfg.WarpSlots = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunOneWith("TRu", core.Baseline(), opt, func(cfg *pipeline.Config) {
		cfg.WarpSlots = 16
	})
	if err != nil {
		t.Fatal(err)
	}
	// More warps hide more latency: never slower.
	if big.Metrics.Cycles > small.Metrics.Cycles {
		t.Errorf("16 warps (%d cycles) slower than 2 warps (%d)", big.Metrics.Cycles, small.Metrics.Cycles)
	}
	// Nil mutation is allowed.
	if _, err := RunOneWith("TRu", core.Baseline(), opt, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOneWith("???", core.Baseline(), opt, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAblTileOrder(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblTileOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d tile orders, want 5", len(tbl.Rows))
	}
	// Every order still delivers a large L2 decrease: the grouping does
	// the heavy lifting, the order contributes the last few points.
	last := len(tbl.Cols) - 1
	for _, row := range tbl.Rows {
		if row.Values[last] < 25 {
			t.Errorf("%s: only %v%% decrease", row.Name, row.Values[last])
		}
	}
}

func TestAblWarpSlotsMonotoneBenefit(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblWarpSlots()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d warp points", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	// DTexL helps at every occupancy, and extra warps widen its lead:
	// the baseline is pinned by saturated L1 fill ports, DTexL is not.
	lo := tbl.Rows[0].Values[last]
	hi := tbl.Rows[len(tbl.Rows)-1].Values[last]
	if hi <= lo {
		t.Errorf("DTexL speedup at 16 warps (%v) not above 2 warps (%v)", hi, lo)
	}
	for _, row := range tbl.Rows {
		if row.Values[last] <= 0.95 {
			t.Errorf("%s: speedup %v", row.Name, row.Values[last])
		}
	}
}

func TestAblL1SizeShrinksHeadroom(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblL1Size()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d L1 points", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	// The benefit is flat across a factor-8 capacity range: every point
	// must deliver a substantial decrease, and the spread stays small.
	mn, mx := tbl.Rows[0].Values[last], tbl.Rows[0].Values[last]
	for _, row := range tbl.Rows {
		v := row.Values[last]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if v < 30 {
			t.Errorf("%s: only %v%% decrease", row.Name, v)
		}
	}
	if mx-mn > 15 {
		t.Errorf("L1-size sensitivity too large: %v%%..%v%%", mn, mx)
	}
}

func TestAblationDispatch(t *testing.T) {
	r := NewRunner(testOptions())
	for _, id := range []string{"abl-tileorder", "abl-warps", "abl-l1size"} {
		var sink countingWriter
		if err := r.RunExperiment(id, &sink); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sink == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

func TestAblFIFODepthSaturates(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblFIFODepth()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d FIFO points", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	// Deeper FIFOs never hurt, and most of the benefit is in by depth 8:
	// the marginal gain from 8 to 16 is small.
	for i := 1; i < len(tbl.Rows); i++ {
		if tbl.Rows[i].Values[last] < tbl.Rows[i-1].Values[last]-0.02 {
			t.Errorf("speedup regressed from %s (%v) to %s (%v)",
				tbl.Rows[i-1].Name, tbl.Rows[i-1].Values[last],
				tbl.Rows[i].Name, tbl.Rows[i].Values[last])
		}
	}
	d8 := tbl.Rows[3].Values[last]
	d16 := tbl.Rows[4].Values[last]
	if d16-d8 > 0.05 {
		t.Errorf("FIFO benefit not saturating: depth8=%v depth16=%v", d8, d16)
	}
}

func TestCSVRendering(t *testing.T) {
	r := NewRunner(testOptions())
	r.CSV = true
	var buf bytes.Buffer
	if err := r.RunExperiment("fig13", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "series,TRu,CCS,GTr,Avg") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "CG-square,") {
		t.Error("CSV rows missing")
	}
	buf.Reset()
	if err := r.RunExperiment("fig14", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bench,config,min,q1,median,mean,q3,max") {
		t.Error("violin CSV header missing")
	}
}

func TestAblTileSize(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblTileSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d tile sizes", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	for i, row := range tbl.Rows {
		// At the test's 1/8 resolution the 64x64 point leaves only a
		// handful of tiles, so decoupling has little to reorder; accept
		// near-parity there and demand real wins at 16 and 32.
		floor := 1.0
		if i == len(tbl.Rows)-1 {
			floor = 0.9
		}
		if row.Values[last] <= floor {
			t.Errorf("%s: DTexL speedup %v, want > %v", row.Name, row.Values[last], floor)
		}
	}
}

func TestAblLateZ(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblLateZ()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d Z modes", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	for _, row := range tbl.Rows {
		if row.Values[last] <= 1.0 {
			t.Errorf("%s: DTexL speedup %v, want > 1 in both Z modes", row.Name, row.Values[last])
		}
	}
}

func TestAblPrefetch(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d prefetch variants", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	byName := map[string]float64{}
	for _, row := range tbl.Rows {
		byName[row.Name] = row.Values[last]
	}
	if byName["DTexL"] <= byName["baseline+prefetch"] {
		t.Errorf("DTexL (%v) not above prefetching alone (%v)",
			byName["DTexL"], byName["baseline+prefetch"])
	}
	if byName["DTexL+prefetch"] < byName["DTexL"]*0.98 {
		t.Errorf("adding prefetch to DTexL regressed it: %v vs %v",
			byName["DTexL+prefetch"], byName["DTexL"])
	}
}

func TestBgIMR(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.BgIMR()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	// IMR must cost more external traffic on average; the factor grows
	// with resolution (the 1 MiB L2 absorbs much of it at 1/8 scale).
	if tbl.Rows[0].Values[last] <= 1.05 {
		t.Errorf("IMR/TBR DRAM ratio = %v, want > 1.05", tbl.Rows[0].Values[last])
	}
}

func TestRunExperimentAllIDs(t *testing.T) {
	// Drive every experiment end to end through the dispatcher, text and
	// CSV, over a single benchmark at tiny scale.
	opt := ScaledOptions(8)
	opt.Benchmarks = []string{"SWa"}
	for _, csv := range []bool{false, true} {
		r := NewRunner(opt)
		r.CSV = csv
		for _, id := range ExperimentIDs() {
			var buf bytes.Buffer
			if err := r.RunExperiment(id, &buf); err != nil {
				t.Fatalf("csv=%v %s: %v", csv, id, err)
			}
			if buf.Len() == 0 {
				t.Errorf("csv=%v %s produced no output", csv, id)
			}
		}
	}
}

func TestWarmAllMatchesSerial(t *testing.T) {
	opt := ScaledOptions(8)
	opt.Benchmarks = []string{"SWa"}

	serial := NewRunner(opt)
	fSerial, err := serial.Fig17()
	if err != nil {
		t.Fatal(err)
	}

	parallel := NewRunner(opt)
	parallel.Parallelism = 4
	if err := parallel.WarmAll(); err != nil {
		t.Fatal(err)
	}
	fPar, err := parallel.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fSerial.Rows {
		for j := range fSerial.Rows[i].Values {
			if fSerial.Rows[i].Values[j] != fPar.Rows[i].Values[j] {
				t.Fatalf("parallel warm changed results: %v vs %v",
					fPar.Rows[i].Values, fSerial.Rows[i].Values)
			}
		}
	}
}

func TestWarmErrorPropagates(t *testing.T) {
	opt := ScaledOptions(8)
	r := NewRunner(opt)
	r.Parallelism = 2
	err := r.Warm([]runJob{
		{Alias: "SWa", Policy: core.Baseline()},
		{Alias: "???", Policy: core.Baseline()},
	})
	if err == nil {
		t.Error("bad job did not propagate an error")
	}
}

func TestAblNUCA(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblNUCA()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	vals := map[string]float64{}
	for _, row := range tbl.Rows {
		vals[row.Name] = row.Values[last]
	}
	// NUCA kills replication by construction: its L2 decrease must be at
	// least DTexL's (which leaves some intra-tile replication behind).
	if vals["L2 dec%: S-NUCA (FG, coupled)"] < vals["L2 dec%: DTexL"] {
		t.Errorf("NUCA L2 decrease (%v) below DTexL (%v)",
			vals["L2 dec%: S-NUCA (FG, coupled)"], vals["L2 dec%: DTexL"])
	}
	// Both approaches speed the GPU up.
	for _, name := range []string{"speedup: S-NUCA (FG, coupled)", "speedup: S-NUCA + decoupled", "speedup: DTexL"} {
		if vals[name] <= 1 {
			t.Errorf("%s = %v, want > 1", name, vals[name])
		}
	}
}

func TestAblWarpSchedInsensitive(t *testing.T) {
	r := NewRunner(testOptions())
	tbl, err := r.AblWarpSched()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d policies", len(tbl.Rows))
	}
	last := len(tbl.Cols) - 1
	mn, mx := tbl.Rows[0].Values[last], tbl.Rows[0].Values[last]
	for _, row := range tbl.Rows {
		v := row.Values[last]
		if v <= 1 {
			t.Errorf("%s: DTexL speedup %v", row.Name, v)
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	// The claim: warp scheduling is orthogonal — the spread stays small.
	if mx-mn > 0.05 {
		t.Errorf("warp-scheduling sensitivity too large: %v..%v", mn, mx)
	}
}

func TestRenderSVG(t *testing.T) {
	opt := ScaledOptions(8)
	opt.Benchmarks = []string{"SWa"}
	r := NewRunner(opt)
	for _, id := range []string{"fig2", "fig14", "fig17"} {
		var buf bytes.Buffer
		if err := r.RenderSVG(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
			t.Errorf("%s: not an SVG document", id)
		}
	}
	var buf bytes.Buffer
	if err := r.RenderSVG("tab1", &buf); err == nil {
		t.Error("tab1 rendered as SVG")
	}
	if err := r.RenderSVG("nope", &buf); err == nil {
		t.Error("unknown id accepted")
	}
}
