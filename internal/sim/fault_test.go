package sim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
)

// faultOptions returns a small two-benchmark suite for fault tests.
func faultOptions() Options {
	opt := ScaledOptions(8)
	opt.Benchmarks = []string{"TRu", "CCS"}
	return opt
}

// TestWarmPanicIsolationStrict: a panicking job must surface as an error
// from Warm — not kill the process or deadlock the worker pool — and the
// sibling jobs' results must stay usable.
func TestWarmPanicIsolationStrict(t *testing.T) {
	r := NewRunner(faultOptions())
	r.Parallelism = 2
	r.Chaos = &ChaosConfig{Bench: "TRu", Policy: "*", Mode: ChaosPanic}
	jobs := []runJob{
		{"CCS", core.Baseline(), false},
		{"TRu", core.Baseline(), false},
		{"CCS", core.DTexL(), false},
	}
	err := r.Warm(jobs)
	if err == nil {
		t.Fatal("Warm with an injected panic returned nil")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered-panic diagnostic", err)
	}

	// The failed flight must not poison the memo: with the fault removed,
	// the same cell computes cleanly.
	r.Chaos = nil
	if _, err := r.RunOneWith("TRu", core.Baseline(), nil); err != nil {
		t.Fatalf("memo poisoned by recovered panic: %v", err)
	}
	// And the untargeted cell is served from cache.
	if _, err := r.RunOneWith("CCS", core.Baseline(), nil); err != nil {
		t.Fatalf("sibling result lost: %v", err)
	}
}

// TestWarmKeepGoingDegrades: under KeepGoing, a faulted cell is recorded
// and the rest of the warm-up completes with Warm returning nil.
func TestWarmKeepGoingDegrades(t *testing.T) {
	r := NewRunner(faultOptions())
	r.KeepGoing = true
	r.Parallelism = 2
	r.Chaos = &ChaosConfig{Bench: "TRu", Policy: "baseline", Mode: ChaosPanic}
	jobs := []runJob{
		{"TRu", core.Baseline(), false},
		{"CCS", core.Baseline(), false},
		{"TRu", core.DTexL(), false},
	}
	if err := r.Warm(jobs); err != nil {
		t.Fatalf("keep-going Warm returned %v", err)
	}
	fails := r.Failures()
	if len(fails) != 1 {
		t.Fatalf("Failures() = %v, want exactly the injected cell", fails)
	}
	if fails[0].Bench != "TRu" || fails[0].Series != "baseline" {
		t.Errorf("failure recorded against %s/%s, want TRu/baseline", fails[0].Bench, fails[0].Series)
	}
	if r.CompletedRuns() == 0 {
		t.Error("no completed runs despite two healthy jobs")
	}
}

// TestChaosStallSurfacesErrStall: a stall-mode fault runs the real
// executor under livelock injection, so the error reaching the sim layer
// is a genuine *pipeline.StallError with a state dump.
func TestChaosStallSurfacesErrStall(t *testing.T) {
	r := NewRunner(faultOptions())
	r.Chaos = &ChaosConfig{Bench: "TRu", Policy: "baseline", Mode: ChaosStall}
	_, err := r.RunOneWith("TRu", core.Baseline(), nil)
	if err == nil {
		t.Fatal("stall-injected run returned nil")
	}
	if !errors.Is(err, pipeline.ErrStall) {
		t.Fatalf("err = %v, does not unwrap to pipeline.ErrStall", err)
	}
	var se *pipeline.StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, no *pipeline.StallError in chain", err)
	}
	if se.Dump() == "" || len(se.SCs) == 0 {
		t.Error("stall error carries no state dump")
	}
}

// TestKeepGoingRendersNA: with chaos on one benchmark and KeepGoing set,
// an experiment renders every other cell and marks the faulted ones NA,
// in both the text and CSV output.
func TestKeepGoingRendersNA(t *testing.T) {
	r := NewRunner(faultOptions())
	r.KeepGoing = true
	r.Chaos = &ChaosConfig{Bench: "TRu", Policy: "*", Mode: ChaosError}
	tab, err := r.Fig11()
	if err != nil {
		t.Fatalf("keep-going Fig11 aborted: %v", err)
	}
	for _, row := range tab.Rows {
		// Columns are [TRu, CCS, Avg]: the faulted benchmark is NA, the
		// healthy one and the NA-skipping aggregate are not.
		if !math.IsNaN(row.Values[0]) {
			t.Errorf("row %s: faulted cell = %v, want NaN", row.Name, row.Values[0])
		}
		if math.IsNaN(row.Values[1]) {
			t.Errorf("row %s: healthy cell is NaN", row.Name)
		}
		if math.IsNaN(row.Values[2]) {
			t.Errorf("row %s: aggregate is NaN despite a healthy cell", row.Name)
		}
	}
	var text, csv bytes.Buffer
	tab.Render(&text)
	tab.RenderCSV(&csv)
	if !strings.Contains(text.String(), "NA") {
		t.Error("text rendering of a degraded table has no NA cells")
	}
	if !strings.Contains(csv.String(), ",NA") {
		t.Error("CSV rendering of a degraded table has no NA cells")
	}
	if len(r.Failures()) == 0 {
		t.Error("degraded run recorded no failures")
	}
	if r.CompletedRuns() == 0 {
		t.Error("degraded run recorded no completed simulations")
	}
}

// TestCellTimeoutKeepGoingRendersNA: the dtexlbench -cell-timeout
// -keep-going combination — a per-cell deadline with keep-going — must
// render hung cells NA and finish the experiment instead of aborting.
func TestCellTimeoutKeepGoingRendersNA(t *testing.T) {
	r := NewRunner(faultOptions())
	r.KeepGoing = true
	r.RunTimeout = time.Nanosecond // every cell "hangs" past its budget
	tab, err := r.Fig11()
	if err != nil {
		t.Fatalf("keep-going Fig11 aborted on cell timeouts: %v", err)
	}
	for _, row := range tab.Rows {
		for i, v := range row.Values {
			if !math.IsNaN(v) {
				t.Errorf("row %s col %d = %v, want NaN (all cells timed out)", row.Name, i, v)
			}
		}
	}
	fails := r.Failures()
	if len(fails) == 0 {
		t.Fatal("timed-out run recorded no failures")
	}
	for _, f := range fails {
		if !errors.Is(f.Err, context.DeadlineExceeded) {
			t.Errorf("%s/%s failure = %v, want context.DeadlineExceeded", f.Bench, f.Series, f.Err)
		}
	}
	var text bytes.Buffer
	tab.Render(&text)
	if !strings.Contains(text.String(), "NA") {
		t.Error("text rendering of a timed-out table has no NA cells")
	}
}

// TestKeepGoingFailureCached: a failed configuration is cached, so a
// cell shared by several figures fails once instead of re-running the
// doomed simulation per figure.
func TestKeepGoingFailureCached(t *testing.T) {
	r := NewRunner(faultOptions())
	r.KeepGoing = true
	r.Chaos = &ChaosConfig{Bench: "TRu", Policy: "baseline", Mode: ChaosError}
	_, err1 := r.RunOneWith("TRu", core.Baseline(), nil)
	if err1 == nil {
		t.Fatal("faulted run returned nil")
	}
	// Remove the fault: the cached failure must still be served.
	r.Chaos = nil
	_, err2 := r.RunOneWith("TRu", core.Baseline(), nil)
	if err2 == nil {
		t.Fatal("failure cache missed: faulted configuration re-ran")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("cached failure differs: %v vs %v", err1, err2)
	}
}

// TestRunTimeout: a per-run deadline converts a (here: artificially
// livelocked) simulation into context.DeadlineExceeded instead of
// hanging the suite.
func TestRunTimeout(t *testing.T) {
	r := NewRunner(faultOptions())
	r.RunTimeout = time.Nanosecond
	_, err := r.RunOneWith("CCS", core.Baseline(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunnerCtxCanceled: canceling the Runner's base context aborts
// simulations with the context error.
func TestRunnerCtxCanceled(t *testing.T) {
	r := NewRunner(faultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Ctx = ctx
	_, err := r.RunOneWith("CCS", core.Baseline(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestKeepGoingViolin: a faulted violin row renders as an all-NA
// summary instead of aborting the figure.
func TestKeepGoingViolin(t *testing.T) {
	r := NewRunner(faultOptions())
	r.KeepGoing = true
	r.Chaos = &ChaosConfig{Bench: "TRu", Policy: "*", Mode: ChaosError}
	tab, err := r.Fig14()
	if err != nil {
		t.Fatalf("keep-going Fig14 aborted: %v", err)
	}
	var na, healthy int
	for _, row := range tab.Rows {
		if math.IsNaN(row.Summary.Mean) {
			na++
		} else {
			healthy++
		}
	}
	if na == 0 || healthy == 0 {
		t.Fatalf("violin rows: %d NA, %d healthy; want both present", na, healthy)
	}
}
