package sim

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"dtexl/internal/core"
)

// gcPayload computes one real cell result and returns its wire payload,
// reused as the stored bytes for every synthetic entry in the GC tests
// (the store only requires that the payload parses).
func gcPayload(t *testing.T, opt Options) []byte {
	t.Helper()
	r := NewRunner(opt)
	res, err := r.RunCell(t.Context(), CellSpec{Bench: "TRu", Policy: core.Baseline().Name})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := MarshalCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// backdate rewinds the mtime of every entry named in names.
func backdate(t *testing.T, dir string, names map[string]bool, to time.Time) {
	t.Helper()
	for name := range names {
		p := filepath.Join(dir, name+".json")
		if err := os.Chtimes(p, to, to); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreGCKeepsLiveSweep is the satellite acceptance for store GC:
// even under maximum pressure (a size budget smaller than any single
// entry AND an age bound every entry violates), a sweep's pinned
// entries survive while everything else is reclaimed — GC can never
// evict a result the live sweep still needs.
func TestStoreGCKeepsLiveSweep(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Logf = t.Logf
	opt := storeOptions()
	payload := gcPayload(t, opt)

	live := SuiteCells(opt)
	for _, c := range live {
		if err := st.RecordCellResult(opt, c, payload); err != nil {
			t.Fatal(err)
		}
	}
	// A finished sweep from another seed: same suite shape, disjoint keys.
	oldOpt := opt
	oldOpt.Seed = 99
	stale := SuiteCells(oldOpt)
	for _, c := range stale {
		if err := st.RecordCellResult(oldOpt, c, payload); err != nil {
			t.Fatal(err)
		}
	}

	// Cells are content-addressed by their label-independent key, so
	// distinct cells may share an entry; count unique names, not cells.
	pins, err := SweepEntryNames(opt)
	if err != nil {
		t.Fatal(err)
	}
	stalePins, err := SweepEntryNames(oldOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Make every entry (live and stale) violate the age bound too.
	all := make(map[string]bool, len(pins)+len(stalePins))
	for n := range pins {
		all[n] = true
	}
	for n := range stalePins {
		all[n] = true
	}
	if len(all) != len(pins)+len(stalePins) {
		t.Fatalf("live and stale sweeps share entries (%d unique of %d+%d)", len(all), len(pins), len(stalePins))
	}
	backdate(t, dir, all, time.Now().Add(-48*time.Hour))

	gs, err := st.GC(GCPolicy{MaxBytes: 1, MaxAge: 24 * time.Hour}, pins)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Scanned != len(all) {
		t.Errorf("Scanned = %d, want %d", gs.Scanned, len(all))
	}
	if gs.Evicted != len(stalePins) || gs.Pinned != len(pins) {
		t.Errorf("gc = %+v, want %d evicted and %d pinned", gs, len(stalePins), len(pins))
	}
	for _, c := range live {
		if !st.HasCell(opt, c) {
			t.Errorf("live sweep cell %s evicted by GC", c.ID())
		}
	}
	for _, c := range stale {
		if st.HasCell(oldOpt, c) {
			t.Errorf("stale cell %s survived GC", c.ID())
		}
	}
}

// TestStoreGCBounds checks the two bounds separately: MaxAge evicts
// exactly the backdated entries, and MaxBytes evicts oldest-first only
// until the store fits the budget.
func TestStoreGCBounds(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Logf = t.Logf
	opt := storeOptions()
	payload := gcPayload(t, opt)

	cells := SuiteCells(opt)
	for _, c := range cells {
		if err := st.RecordCellResult(opt, c, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Distinct cells may share a content address; all counting below is
	// in unique entries.
	names, err := SweepEntryNames(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 4 {
		t.Fatalf("suite too small for the test: %d unique entries", len(names))
	}
	// Backdate two entries past the age bound.
	oldNames := make(map[string]bool)
	for n := range names {
		if len(oldNames) == 2 {
			break
		}
		oldNames[n] = true
	}
	backdate(t, dir, oldNames, time.Now().Add(-2*time.Hour))

	gs, err := st.GC(GCPolicy{MaxAge: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Evicted != 2 {
		t.Fatalf("age gc evicted %d, want 2", gs.Evicted)
	}
	n, err := st.Len()
	if err != nil || n != len(names)-2 {
		t.Fatalf("Len() = %d, %v; want %d", n, err, len(names)-2)
	}

	// Size bound: a budget of roughly half the store. Entry sizes vary
	// (key bytes differ per cell), so predict the oldest-first eviction
	// set from the actual directory listing and check GC matches it.
	type ent struct {
		path string
		size int64
		mod  time.Time
	}
	var ents []ent
	var total int64
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		ents = append(ents, ent{filepath.Join(dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mod.Before(ents[j].mod) })
	budget := total / 2
	wantEvict := map[string]bool{}
	run := total
	for _, e := range ents {
		if run <= budget {
			break
		}
		wantEvict[e.path] = true
		run -= e.size
	}
	gs, err = st.GC(GCPolicy{MaxBytes: budget}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gs.BytesKept > budget {
		t.Errorf("size gc left %d bytes, budget %d", gs.BytesKept, budget)
	}
	if gs.Evicted != len(wantEvict) {
		t.Errorf("size gc evicted %d of %d, want %d (oldest-first)", gs.Evicted, n, len(wantEvict))
	}
	for _, e := range ents {
		_, statErr := os.Stat(e.path)
		gone := os.IsNotExist(statErr)
		if gone != wantEvict[e.path] {
			t.Errorf("entry %s: evicted=%v, want %v", filepath.Base(e.path), gone, wantEvict[e.path])
		}
	}
	// The zero policy is a no-op.
	gs, err = st.GC(GCPolicy{}, nil)
	if err != nil || gs.Evicted != 0 {
		t.Errorf("zero-policy gc = %+v, %v; want no evictions", gs, err)
	}
}
