package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dtexl/internal/core"
)

// journalOptions returns a small two-benchmark suite for journal tests.
func journalOptions() Options {
	opt := ScaledOptions(8)
	opt.Benchmarks = []string{"TRu", "CCS"}
	return opt
}

// TestJournalRoundTrip: results recorded by one runner are replayed into
// the next, served as journal hits, and bit-identical to a fresh
// recompute.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := journalOptions()

	j1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(opt)
	r1.Journal = j1
	want := map[string]*RunResult{}
	for _, alias := range opt.aliases() {
		res, err := r1.RunOneWith(alias, core.DTexL(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want[alias] = res
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != len(want) {
		t.Fatalf("Replayed() = %d, want %d", got, len(want))
	}
	r2 := NewRunner(opt)
	r2.Journal = j2
	for _, alias := range opt.aliases() {
		res, err := r2.RunOneWith(alias, core.DTexL(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Metrics, want[alias].Metrics) {
			t.Errorf("%s: journaled metrics differ from recorded run", alias)
		}
		if res.Energy != want[alias].Energy {
			t.Errorf("%s: journaled energy differs from recorded run", alias)
		}
	}
	if j2.Hits() != uint64(len(want)) {
		t.Errorf("Hits() = %d, want %d (every run served from the journal)", j2.Hits(), len(want))
	}
	if r2.CompletedRuns() != uint64(len(want)) {
		t.Errorf("CompletedRuns() = %d, want %d (journal hits count as completed)", r2.CompletedRuns(), len(want))
	}
}

// TestJournalTornTail: a journal whose final line was torn by a crash
// mid-append replays its valid prefix and recomputes the rest.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	opt := journalOptions()

	j1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(opt)
	r1.Journal = j1
	for _, alias := range opt.aliases() {
		if _, err := r1.RunOneWith(alias, core.Baseline(), nil); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()

	// Tear the tail: chop bytes off the final record, as SIGKILL between
	// write and fsync can leave it.
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != len(opt.aliases())-1 {
		t.Fatalf("Replayed() = %d after torn tail, want %d", got, len(opt.aliases())-1)
	}
	if got := j2.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d after torn tail, want 1", got)
	}
	if off := j2.TornOffset(); off <= 0 || off >= int64(len(raw)) {
		t.Errorf("TornOffset() = %d, want inside the file (0, %d)", off, len(raw))
	}
	// The torn bytes are truncated away so fresh appends land cleanly.
	if fi, err := os.Stat(path); err != nil || fi.Size() != j2.TornOffset() {
		t.Errorf("journal size %v after reopen, want truncated to torn offset %d", fi.Size(), j2.TornOffset())
	}
	// The torn cell recomputes; the suite still completes.
	r2 := NewRunner(opt)
	r2.Journal = j2
	for _, alias := range opt.aliases() {
		if _, err := r2.RunOneWith(alias, core.Baseline(), nil); err != nil {
			t.Fatalf("%s: resume over torn journal failed: %v", alias, err)
		}
	}
}

// TestJournalGarbageTail: trailing garbage (not even JSON) is treated
// exactly like a torn tail.
func TestJournalGarbageTail(t *testing.T) {
	dir := t.TempDir()
	j1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := journalOptions()
	r1 := NewRunner(opt)
	r1.Journal = j1
	if _, err := r1.RunOneWith("CCS", core.Baseline(), nil); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	path := filepath.Join(dir, journalFile)
	clean, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"key\":{\"Alias\":\"tr")
	f.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("garbage-tailed journal failed to open: %v", err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != 1 {
		t.Fatalf("Replayed() = %d, want 1", got)
	}
	if got := j2.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
	if off := j2.TornOffset(); off != clean.Size() {
		t.Errorf("TornOffset() = %d, want %d (end of the clean prefix)", off, clean.Size())
	}
}

// TestJournalResumeByteIdentical is the tentpole's resume acceptance: an
// interrupted suite (journal holding only part of the results) resumed
// under a fresh runner renders output byte-identical to an uninterrupted
// run.
func TestJournalResumeByteIdentical(t *testing.T) {
	opt := journalOptions()

	// Reference: uninterrupted, journal-free run.
	ref := NewRunner(opt)
	var want bytes.Buffer
	if err := ref.RunExperiment("fig11", &want); err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	ref.CSV = true
	if err := ref.RunExperiment("fig11", &wantCSV); err != nil {
		t.Fatal(err)
	}

	// "Crashed" run: journal a strict subset of the needed cells, then
	// abandon the runner (simulating SIGKILL between cells).
	dir := t.TempDir()
	j1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(opt)
	r1.Journal = j1
	if _, err := r1.RunOneWith("TRu", core.Baseline(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.RunOneWith("TRu", core.DTexL(), nil); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Resumed run: replays the journaled cells, computes the rest.
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r2 := NewRunner(opt)
	r2.Journal = j2
	var got bytes.Buffer
	if err := r2.RunExperiment("fig11", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("resumed fig11 differs from uninterrupted run:\n--- want\n%s--- got\n%s", want.String(), got.String())
	}
	if j2.Hits() == 0 {
		t.Error("resumed run never hit the journal")
	}
	var gotCSV bytes.Buffer
	r2.CSV = true
	if err := r2.RunExperiment("fig11", &gotCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Error("resumed fig11 CSV differs from uninterrupted run")
	}
}
