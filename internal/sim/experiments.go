package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
	"dtexl/internal/stats"
	"dtexl/internal/trace"
)

// Table is a rendered experiment: one row per configuration/series, one
// column per benchmark plus a final aggregate column, mirroring how the
// paper's bar charts are organized.
type Table struct {
	ID     string // "fig11", "tab1", ...
	Title  string
	Metric string // meaning of the numbers
	Cols   []string
	Rows   []TableRow
}

// TableRow is one series of a Table.
type TableRow struct {
	Name   string
	Values []float64
}

// numCell formats one table value, rendering NaN — a failed cell under
// -keep-going — as "NA" right-aligned to the same width.
func numCell(format string, width int, v float64) string {
	if math.IsNaN(v) {
		return fmt.Sprintf("%*s", width, "NA")
	}
	return fmt.Sprintf(format, v)
}

// csvCell is numCell for CSV fields (%.6g, unpadded).
func csvCell(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	return fmt.Sprintf("%.6g", v)
}

// RenderCSV writes the table as CSV: one header row of benchmark
// columns, one record per series. Failed cells render as NA.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s (%s)\n", t.ID, t.Title, t.Metric)
	fmt.Fprintf(w, "series,%s\n", strings.Join(t.Cols, ","))
	for _, r := range t.Rows {
		fmt.Fprint(w, r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(w, ",%s", csvCell(v))
		}
		fmt.Fprintln(w)
	}
}

// Render pretty-prints the table. Failed cells render as NA.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   metric: %s\n", t.Metric)
	fmt.Fprintf(w, "%-18s", "")
	for _, c := range t.Cols {
		fmt.Fprintf(w, "%9s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-18s", r.Name)
		for _, v := range r.Values {
			fmt.Fprint(w, numCell("%9.3f", 9, v))
		}
		fmt.Fprintln(w)
	}
}

// ViolinTable carries the five-number summaries behind a violin plot
// (Figs. 14 and 15).
type ViolinTable struct {
	ID     string
	Title  string
	Metric string
	Rows   []ViolinRow
}

// ViolinRow is one violin: a benchmark under one configuration.
type ViolinRow struct {
	Bench   string
	Config  string
	Summary stats.Summary
}

// RenderCSV writes the violin summaries as CSV. Failed rows render as
// NA.
func (t *ViolinTable) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s (%s)\n", t.ID, t.Title, t.Metric)
	fmt.Fprintln(w, "bench,config,min,q1,median,mean,q3,max")
	for _, r := range t.Rows {
		s := r.Summary
		fmt.Fprintf(w, "%s,%s,%s,%s,%s,%s,%s,%s\n",
			r.Bench, r.Config,
			csvCell(s.Min), csvCell(s.Q1), csvCell(s.Median),
			csvCell(s.Mean), csvCell(s.Q3), csvCell(s.Max))
	}
}

// Render pretty-prints the violin summaries. Failed rows render as NA.
func (t *ViolinTable) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   metric: %s\n", t.Metric)
	fmt.Fprintf(w, "%-6s %-12s %8s %8s %8s %8s %8s %8s\n",
		"bench", "config", "min", "q1", "median", "mean", "q3", "max")
	for _, r := range t.Rows {
		s := r.Summary
		fmt.Fprintf(w, "%-6s %-12s %s %s %s %s %s %s\n",
			r.Bench, r.Config,
			numCell("%8.2f", 8, s.Min), numCell("%8.2f", 8, s.Q1),
			numCell("%8.2f", 8, s.Median), numCell("%8.2f", 8, s.Mean),
			numCell("%8.2f", 8, s.Q3), numCell("%8.2f", 8, s.Max))
	}
}

// Runner executes experiments with memoized simulation runs, so figures
// sharing configurations (e.g. Figs. 11 and 12, or 17 and 18) pay for
// each run once. Memoization is layered (see DESIGN.md, "Memoization
// correctness"):
//
//  1. scenes: one generated animation per (benchmark, resolution, seed,
//     frames), shared by every policy (trace.SceneStore);
//  2. preps: one policy-independent front half — geometry, binning,
//     front-end cache snapshot, raster coverage — per (benchmark,
//     pipeline.FrontKey), shared across policies, SC counts and L1
//     sizes (pipeline.PreparedFrame);
//  3. sims: one full simulation per effective pipeline.Config, so
//     differently-named policies that resolve to the same machine
//     configuration (e.g. DTexL and HLB-flp2) run once.
//
// All three layers are single-flight and safe for concurrent use from
// Warm's worker pool.
type Runner struct {
	Opt Options
	// Progress, if set, receives a line per completed simulation.
	Progress func(string)
	// CSV switches RunExperiment's output from aligned text to CSV.
	CSV bool
	// Parallelism bounds concurrent simulations in Warm (0 = GOMAXPROCS).
	// Individual simulations are single-threaded and independent; results
	// are deterministic regardless of completion order.
	Parallelism int
	// Parallel, when > 1 (or < 0 for GOMAXPROCS), runs each simulation's
	// raster phase and frame preparation on that many worker goroutines
	// (pipeline.WithParallel). Output is byte-identical to the serial
	// path — the memo keys deliberately ignore it — so intra-run and
	// across-run parallelism compose freely; see DESIGN.md §11.
	Parallel int
	// PrepBudget bounds the bytes retained by memoized frame
	// preparations (0 = a 4 GiB default); least-recently-used
	// preparations beyond it are dropped and recomputed on demand.
	PrepBudget int64

	// Ctx, when non-nil, is the base context of every simulation:
	// canceling it (e.g. from a SIGINT handler) aborts in-flight runs at
	// the next executor watchdog poll.
	Ctx context.Context
	// RunTimeout, when positive, bounds each simulation's wall time: a
	// run past its deadline fails with context.DeadlineExceeded instead
	// of hanging the suite.
	RunTimeout time.Duration
	// KeepGoing degrades instead of aborting: a failed simulation marks
	// its table cells NA, the failure is recorded (Failures), and every
	// other cell still renders. The failed configuration is cached so a
	// cell shared by several figures fails once, not once per figure.
	KeepGoing bool
	// Journal, when non-nil, checkpoints every completed simulation and
	// serves journaled results instead of recomputing them — the
	// crash-safe resume path behind -checkpoint.
	Journal *Journal
	// Store, when non-nil, is the shared content-addressed result store
	// (L2): lookups fall through L1 memo → Journal → Store → compute, and
	// computed cells are recorded back so any process sharing the store —
	// including a cold-started fleet worker — answers them without
	// recomputing. Store entries are checksummed; a corrupt entry reads
	// as a miss and the recompute repairs it.
	Store *Store
	// Chaos, when non-nil, injects a fault into the matching
	// (benchmark, policy) cell. Fault-injection testing only.
	Chaos *ChaosConfig

	scenes *trace.SceneStore
	sims   *memo[simKey, *simResult]

	prepOnce sync.Once
	preps    *prepStore

	// failure bookkeeping under KeepGoing.
	failMu     sync.Mutex
	failures   []CellFailure
	failSeen   map[string]bool
	failedSims map[simKey]error

	// completedSims counts unique successful simulations (atomic),
	// including journal replays — the "partial results" side of the exit
	// code contract.
	completedSims uint64

	// wall-clock split, in nanoseconds (atomic). prepareNanos is the whole
	// preparation (including waiting on another worker's in-flight build);
	// geometryNanos/coverageNanos split only the actual build time.
	generateNanos int64
	prepareNanos  int64
	geometryNanos int64
	coverageNanos int64
	rasterNanos   int64
}

// CellFailure records one failed (benchmark, series) cell under
// KeepGoing.
type CellFailure struct {
	Bench  string
	Series string
	Err    error
}

// Failures returns the cells that failed under KeepGoing, in first-seen
// order. Safe to call concurrently with runs.
func (r *Runner) Failures() []CellFailure {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	out := make([]CellFailure, len(r.failures))
	copy(out, r.failures)
	return out
}

// CompletedRuns reports how many unique simulations completed
// successfully (journal replays included). Together with Failures it
// drives the CLI's 0/1/2 exit-code contract: failures with completed
// runs is "partial results" (2), failures without is "total failure"
// (1).
func (r *Runner) CompletedRuns() uint64 {
	return atomic.LoadUint64(&r.completedSims)
}

// recordFailure notes a failed cell once per (benchmark, series) pair.
func (r *Runner) recordFailure(alias, series string, err error) {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	if r.failSeen == nil {
		r.failSeen = make(map[string]bool)
	}
	k := alias + "/" + series
	if r.failSeen[k] {
		return
	}
	r.failSeen[k] = true
	r.failures = append(r.failures, CellFailure{Bench: alias, Series: series, Err: err})
}

// baseCtx resolves the Runner's root context.
func (r *Runner) baseCtx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// rowCells assembles one table row: get runs (memoized) simulations for
// one benchmark and returns the cell value. Under KeepGoing a failed
// cell becomes NaN — rendered "NA" — with the failure recorded against
// series; otherwise the first error aborts the experiment.
func (r *Runner) rowCells(series string, get func(alias string) (float64, error)) ([]float64, error) {
	var row []float64
	for _, alias := range r.Opt.aliases() {
		v, err := get(alias)
		if err != nil {
			if !r.KeepGoing {
				return nil, err
			}
			r.recordFailure(alias, series, err)
			v = math.NaN()
		}
		row = append(row, v)
	}
	return row, nil
}

// NewRunner returns a Runner over the given options.
func NewRunner(opt Options) *Runner {
	return &Runner{
		Opt:    opt,
		scenes: trace.NewSceneStore(),
		sims:   newMemo[simKey, *simResult](),
	}
}

// prepStoreLazy returns the preparation store, building it on first use
// so PrepBudget set after NewRunner is honored.
func (r *Runner) prepStoreLazy() *prepStore {
	r.prepOnce.Do(func() { r.preps = newPrepStore(r.PrepBudget) })
	return r.preps
}

func (r *Runner) run(alias string, pol core.Policy, ub bool) (*RunResult, error) {
	var mutate func(*pipeline.Config)
	if ub {
		mutate = func(cfg *pipeline.Config) { core.ApplyUpperBound(cfg) }
	}
	return r.RunOneWith(alias, pol, mutate)
}

// runJob names one simulation for Warm.
type runJob struct {
	Alias      string
	Policy     core.Policy
	UpperBound bool
}

// Warm executes the given simulations concurrently (bounded by
// Parallelism) and memoizes their results, so the figure functions that
// follow assemble their tables from the cache. Experiments share many
// configurations; Warm with the union of jobs parallelizes a whole
// evaluation.
//
// On failure Warm returns the first error. The failed job leaves no memo
// entry behind (the single-flight layer removes entries on error), so
// completed results stay usable and a retried job re-executes. A
// panicking job is recovered into an error by the memo layer, so it
// cannot kill a worker goroutine or the process.
//
// Under KeepGoing failed jobs are recorded (Failures) and the remaining
// jobs still run; Warm then returns nil and the failed cells surface as
// NA when the figures render.
func (r *Runner) Warm(jobs []runJob) error {
	do := func(j runJob) error {
		_, err := r.run(j.Alias, j.Policy, j.UpperBound)
		if err != nil && r.KeepGoing {
			r.recordFailure(j.Alias, j.Policy.Name, err)
			return nil
		}
		return err
	}
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			if err := do(j); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	stop := make(chan struct{})
	var stopOnce sync.Once
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	work := make(chan runJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				if err := do(j); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	// The producer must never block on a send with no live receivers: a
	// worker exiting on error signals stop, which aborts the feed.
feed:
	for _, j := range jobs {
		select {
		case work <- j:
		case <-stop:
			break feed
		}
	}
	close(work)
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// WarmAll pre-runs every simulation the paper's figures need — the
// suite cells the fleet shards (SuiteCells) — in parallel.
// RunExperiment calls afterwards hit the cache.
func (r *Runner) WarmAll() error {
	var jobs []runJob
	for _, c := range SuiteCells(r.Opt) {
		pol, ub, err := c.ResolvePolicy()
		if err != nil {
			return err
		}
		jobs = append(jobs, runJob{c.Bench, pol, ub})
	}
	return r.Warm(jobs)
}

// withMean and withGeoMean append the aggregate column, skipping NA
// cells (NaN) so one failed benchmark does not poison a row's average.
// On clean rows they compute exactly what stats.Mean/GeoMean compute.
func withMean(vals []float64) []float64 { return append(vals, naMean(vals)) }

func withGeoMean(vals []float64) []float64 { return append(vals, naGeoMean(vals)) }

func naMean(vals []float64) float64 {
	s, n := 0.0, 0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		s += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

func naGeoMean(vals []float64) float64 {
	s, n := 0.0, 0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v > 0 {
			s += math.Log(v)
		}
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

func (r *Runner) cols() []string { return append(r.Opt.aliases(), "Avg") }

// ---------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------

// Fig1 reproduces Figure 1: the normalized mean deviation of quads
// (threads) per SC for a load-balancing scheduler (FG-xshift2) versus a
// texture-locality scheduler (CG-square), per benchmark. Values are
// normalized to the load-balancing scheduler.
func (r *Runner) Fig1() (*Table, error) {
	lbPol := core.Baseline()
	tlPol, err := core.PolicyByName("CG-square")
	if err != nil {
		return nil, err
	}
	lbRow, err := r.rowCells("LB (FG-xshift2)", func(alias string) (float64, error) {
		if _, err := r.run(alias, lbPol, false); err != nil {
			return 0, err
		}
		return 1, nil
	})
	if err != nil {
		return nil, err
	}
	tlRow, err := r.rowCells("TL (CG-square)", func(alias string) (float64, error) {
		lb, err := r.run(alias, lbPol, false)
		if err != nil {
			return 0, err
		}
		tl, err := r.run(alias, tlPol, false)
		if err != nil {
			return 0, err
		}
		return tl.Metrics.MeanTileQuadDeviation() / lb.Metrics.MeanTileQuadDeviation(), nil
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:     "fig1",
		Title:  "Thread-per-SC imbalance: load balancing vs texture locality",
		Metric: "mean deviation of quads per SC, normalized to the LB scheduler",
		Cols:   r.cols(),
		Rows: []TableRow{
			{Name: "LB (FG-xshift2)", Values: withMean(lbRow)},
			{Name: "TL (CG-square)", Values: withMean(tlRow)},
		},
	}, nil
}

// Fig2 reproduces Figure 2: L2 accesses of the texture-locality scheduler
// normalized to the load-balancing one.
func (r *Runner) Fig2() (*Table, error) {
	tlPol, err := core.PolicyByName("CG-square")
	if err != nil {
		return nil, err
	}
	row, err := r.rowCells("TL (CG-square)", func(alias string) (float64, error) {
		lb, err := r.run(alias, core.Baseline(), false)
		if err != nil {
			return 0, err
		}
		tl, err := r.run(alias, tlPol, false)
		if err != nil {
			return 0, err
		}
		return float64(tl.Metrics.L2Accesses()) / float64(lb.Metrics.L2Accesses()), nil
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:     "fig2",
		Title:  "L2 accesses: texture-locality scheduler vs load balancing",
		Metric: "L2 accesses normalized to the LB scheduler",
		Cols:   r.cols(),
		Rows:   []TableRow{{Name: "TL (CG-square)", Values: withMean(row)}},
	}, nil
}

// ---------------------------------------------------------------------
// Quad grouping exploration (Figs. 11 and 12)
// ---------------------------------------------------------------------

// Fig11 reproduces Figure 11: average L2 accesses of the Fig. 6 quad
// groupings, normalized to FG-xshift2 per benchmark.
func (r *Runner) Fig11() (*Table, error) {
	return r.groupingTable("fig11",
		"L2 accesses per quad grouping (fine- and coarse-grained)",
		"L2 accesses normalized to FG-xshift2",
		func(res, base *RunResult) float64 {
			return float64(res.Metrics.L2Accesses()) / float64(base.Metrics.L2Accesses())
		})
}

// Fig12 reproduces Figure 12: per-tile quad-distribution imbalance of the
// Fig. 6 groupings, normalized to FG-xshift2.
func (r *Runner) Fig12() (*Table, error) {
	return r.groupingTable("fig12",
		"Quad distribution imbalance per quad grouping",
		"mean deviation of quads per SC, normalized to FG-xshift2",
		func(res, base *RunResult) float64 {
			return res.Metrics.MeanTileQuadDeviation() / base.Metrics.MeanTileQuadDeviation()
		})
}

func (r *Runner) groupingTable(id, title, metric string, f func(res, base *RunResult) float64) (*Table, error) {
	t := &Table{ID: id, Title: title, Metric: metric, Cols: r.cols()}
	for _, pol := range core.GroupingPolicies() {
		pol := pol
		row, err := r.rowCells(pol.Name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.run(alias, pol, false)
			if err != nil {
				return 0, err
			}
			return f(res, base), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: pol.Name, Values: withMean(row)})
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Non-decoupled performance (Figs. 13, 14, 15)
// ---------------------------------------------------------------------

// Fig13 reproduces Figure 13: the speedup of the coarse-grained groupings
// over FG-xshift2 in the NON-decoupled architecture — the null result
// motivating the decoupled barriers.
func (r *Runner) Fig13() (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Speedup of CG groupings without decoupling",
		Metric: "FPS speedup over FG-xshift2 (coupled)",
		Cols:   r.cols(),
	}
	for _, name := range []string{"CG-square", "CG-yrect"} {
		pol, err := core.PolicyByName(name)
		if err != nil {
			return nil, err
		}
		row, err := r.rowCells(name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.run(alias, pol, false)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: name, Values: withGeoMean(row)})
	}
	return t, nil
}

// Fig14 reproduces Figure 14: violins of per-tile SC execution-time
// imbalance under FG-xshift2 vs CG-square (coupled).
func (r *Runner) Fig14() (*ViolinTable, error) {
	return r.violin("fig14",
		"SC execution time imbalance per tile",
		"per-tile mean deviation of SC execution time, % of mean",
		func(res *RunResult) []float64 { return scale100(res.Metrics.TileTimeDeviation) })
}

// Fig15 reproduces Figure 15: violins of per-tile quad-count imbalance.
func (r *Runner) Fig15() (*ViolinTable, error) {
	return r.violin("fig15",
		"Quad distribution imbalance per tile",
		"per-tile mean deviation of quads per SC, % of mean",
		func(res *RunResult) []float64 { return scale100(res.Metrics.TileQuadDeviation) })
}

func scale100(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * x
	}
	return out
}

func (r *Runner) violin(id, title, metric string, f func(*RunResult) []float64) (*ViolinTable, error) {
	t := &ViolinTable{ID: id, Title: title, Metric: metric}
	cg, err := core.PolicyByName("CG-square")
	if err != nil {
		return nil, err
	}
	for _, alias := range r.Opt.aliases() {
		for _, pol := range []core.Policy{core.Baseline(), cg} {
			name := pol.Name
			if name == "baseline" {
				name = "FG-xshift2"
			}
			res, err := r.run(alias, pol, false)
			if err != nil {
				if !r.KeepGoing {
					return nil, err
				}
				// A failed violin renders as an all-NA summary row.
				r.recordFailure(alias, name, err)
				nan := math.NaN()
				t.Rows = append(t.Rows, ViolinRow{
					Bench:  alias,
					Config: name,
					Summary: stats.Summary{
						Min: nan, Q1: nan, Median: nan, Mean: nan, Q3: nan, Max: nan,
					},
				})
				continue
			}
			t.Rows = append(t.Rows, ViolinRow{
				Bench:   alias,
				Config:  name,
				Summary: stats.Summarize(f(res)),
			})
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------
// DTexL evaluation (Figs. 16, 17, 18)
// ---------------------------------------------------------------------

// Fig16 reproduces Figure 16: the percentage decrease in total L2
// accesses for the eight Fig. 8 subtile mappings and the single-SC upper
// bound, all relative to the non-decoupled FG-xshift2 baseline.
func (r *Runner) Fig16() (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "Decrease in L2 accesses per subtile mapping",
		Metric: "% decrease in total L2 accesses vs non-decoupled FG-xshift2",
		Cols:   r.cols(),
	}
	for _, pol := range core.Fig8Mappings() {
		pol := pol
		row, err := r.rowCells(pol.Name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.run(alias, pol, false)
			if err != nil {
				return 0, err
			}
			return pctDecrease(base.Metrics.L2Accesses(), res.Metrics.L2Accesses()), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: pol.Name, Values: withMean(row)})
	}
	// Upper bound: one SC with a 4x L1.
	row, err := r.rowCells("UpperBound", func(alias string) (float64, error) {
		base, err := r.run(alias, core.Baseline(), false)
		if err != nil {
			return 0, err
		}
		ubPol := core.Baseline()
		ubPol.Name = "upper-bound"
		ub, err := r.run(alias, ubPol, true)
		if err != nil {
			return 0, err
		}
		return pctDecrease(base.Metrics.L2Accesses(), ub.Metrics.L2Accesses()), nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, TableRow{Name: "UpperBound", Values: withMean(row)})
	return t, nil
}

func pctDecrease(base, v uint64) float64 {
	return 100 * (1 - float64(v)/float64(base))
}

// Fig17 reproduces Figure 17: the FPS speedup of DTexL (HLB-flp2) and of
// the decoupled FG-xshift2 over the non-decoupled baseline.
func (r *Runner) Fig17() (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "Speedup with the decoupled architecture",
		Metric: "FPS speedup over non-decoupled FG-xshift2",
		Cols:   r.cols(),
	}
	for _, pol := range []core.Policy{dtexlAsHLBFlp2(), core.BaselineDecoupled()} {
		pol := pol
		row, err := r.rowCells(pol.Name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.run(alias, pol, false)
			if err != nil {
				return 0, err
			}
			return float64(base.Metrics.Cycles) / float64(res.Metrics.Cycles), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: pol.Name, Values: withGeoMean(row)})
	}
	return t, nil
}

// Fig18 reproduces Figure 18: the percentage decrease in total GPU energy
// for the same two configurations.
func (r *Runner) Fig18() (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "Decrease in total GPU energy",
		Metric: "% decrease in total GPU energy vs non-decoupled FG-xshift2",
		Cols:   r.cols(),
	}
	for _, pol := range []core.Policy{dtexlAsHLBFlp2(), core.BaselineDecoupled()} {
		pol := pol
		row, err := r.rowCells(pol.Name, func(alias string) (float64, error) {
			base, err := r.run(alias, core.Baseline(), false)
			if err != nil {
				return 0, err
			}
			res, err := r.run(alias, pol, false)
			if err != nil {
				return 0, err
			}
			return 100 * (1 - res.Energy.Total()/base.Energy.Total()), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{Name: pol.Name, Values: withMean(row)})
	}
	return t, nil
}

// dtexlAsHLBFlp2 returns the DTexL policy under its Fig. 17/18 label.
func dtexlAsHLBFlp2() core.Policy {
	p := core.DTexL()
	p.Name = "DTexL(HLB-flp2)"
	return p
}

// ExperimentIDs lists every implemented experiment: the paper's figures
// and tables first, then the ablations beyond the paper.
func ExperimentIDs() []string {
	return []string{
		"fig1", "fig2", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "tab1", "tab2",
		"abl-tileorder", "abl-warps", "abl-l1size", "abl-fifo", "abl-tilesize", "abl-latez", "abl-prefetch", "abl-nuca", "abl-warpsched", "bg-imr",
		"stalls",
	}
}

// RunExperiment executes one experiment by ID and renders it to w (as
// CSV when r.CSV is set; tab1/tab2 are text-only).
func (r *Runner) RunExperiment(id string, w io.Writer) error {
	table := renderTable
	violin := renderViolin
	if r.CSV {
		table = renderTableCSV
		violin = renderViolinCSV
	}
	switch strings.ToLower(id) {
	case "fig1":
		return table(r.Fig1())(w)
	case "fig2":
		return table(r.Fig2())(w)
	case "fig11":
		return table(r.Fig11())(w)
	case "fig12":
		return table(r.Fig12())(w)
	case "fig13":
		return table(r.Fig13())(w)
	case "fig14":
		return violin(r.Fig14())(w)
	case "fig15":
		return violin(r.Fig15())(w)
	case "fig16":
		return table(r.Fig16())(w)
	case "fig17":
		return table(r.Fig17())(w)
	case "fig18":
		return table(r.Fig18())(w)
	case "tab1":
		return r.Table1(w)
	case "tab2":
		return Table2(w)
	case "abl-tileorder":
		return table(r.AblTileOrder())(w)
	case "abl-warps":
		return table(r.AblWarpSlots())(w)
	case "abl-l1size":
		return table(r.AblL1Size())(w)
	case "abl-fifo":
		return table(r.AblFIFODepth())(w)
	case "abl-tilesize":
		return table(r.AblTileSize())(w)
	case "abl-latez":
		return table(r.AblLateZ())(w)
	case "abl-prefetch":
		return table(r.AblPrefetch())(w)
	case "abl-nuca":
		return table(r.AblNUCA())(w)
	case "abl-warpsched":
		return table(r.AblWarpSched())(w)
	case "bg-imr":
		return table(r.BgIMR())(w)
	case "stalls":
		return table(r.Stalls())(w)
	default:
		return fmt.Errorf("sim: unknown experiment %q (known: %s)", id, strings.Join(ExperimentIDs(), ", "))
	}
}

func renderTable(t *Table, err error) func(io.Writer) error {
	return func(w io.Writer) error {
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
}

func renderViolin(t *ViolinTable, err error) func(io.Writer) error {
	return func(w io.Writer) error {
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
}

func renderTableCSV(t *Table, err error) func(io.Writer) error {
	return func(w io.Writer) error {
		if err != nil {
			return err
		}
		t.RenderCSV(w)
		return nil
	}
}

func renderViolinCSV(t *ViolinTable, err error) func(io.Writer) error {
	return func(w io.Writer) error {
		if err != nil {
			return err
		}
		t.RenderCSV(w)
		return nil
	}
}
