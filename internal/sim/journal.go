package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// journalFile is the result journal's name under the checkpoint
// directory.
const journalFile = "journal.jsonl"

// journalRecord is one completed simulation, persisted as a single JSON
// line: the canonical simKey and the label-independent result. The key
// is identical to the in-memory memo key — the alias, seed, frame count
// and the *effective* machine configuration — so replay feeds exactly
// the cells the memo would have held.
type journalRecord struct {
	Key    json.RawMessage `json:"key"`
	Result *simResult      `json:"result"`
}

// Journal is a crash-safe checkpoint of completed simulations: each
// result is appended as one fsync'd JSON line the moment it completes,
// and on restart the valid prefix of the file is replayed into memory so
// a killed suite resumes from its completed cells. Replayed results are
// bit-identical to recomputed ones (Go's float64 JSON encoding
// round-trips exactly), so a resumed run's output matches an
// uninterrupted run byte for byte.
//
// The file tolerates a SIGKILL mid-write: replay stops at the first
// line that does not parse (the torn tail) and the affected cell is
// simply recomputed.
type Journal struct {
	mu         sync.Mutex
	f          *os.File
	results    map[string]*simResult
	replayed   int
	dropped    int
	tornOffset int64
	hits       uint64
}

// OpenJournal opens (creating if needed) the journal under dir and
// replays its valid prefix.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sim: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	j := &Journal{results: make(map[string]*simResult)}

	if rf, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(rf)
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // timeline-bearing results make long lines
		var offset int64
		torn := false
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				offset += int64(len(line)) + 1
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.Result == nil {
				// Torn tail from a crash mid-append: replay stops here, and
				// everything from this byte on is dropped and recomputed.
				if !torn {
					torn = true
					j.tornOffset = offset
				}
				j.dropped++
				offset += int64(len(line)) + 1
				continue
			}
			if torn {
				// A parseable record after a torn one means the damage is
				// not a clean tail; count it as dropped too, since replay
				// must not skip over corruption (the append offset would
				// interleave with live lines).
				j.dropped++
				offset += int64(len(line)) + 1
				continue
			}
			j.results[string(rec.Key)] = rec.Result
			j.replayed++
			offset += int64(len(line)) + 1
		}
		rf.Close()
		if torn {
			// One line, so operators can tell clean resume from data loss.
			fmt.Fprintf(os.Stderr, "sim: journal %s: dropped %d torn record(s) from byte offset %d; affected cells will be recomputed\n",
				path, j.dropped, j.tornOffset)
			// Truncate the file at the torn offset so fresh appends do not
			// land after unparseable bytes (which would tear them too).
			if err := os.Truncate(path, j.tornOffset); err != nil {
				return nil, fmt.Errorf("sim: checkpoint journal truncate: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("sim: checkpoint journal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint journal: %w", err)
	}
	j.f = f
	return j, nil
}

// simKeyBytes renders the canonical identity of a simulation — the bytes
// the journal, the shared store's content address and the fleet protocol
// all key on. Struct-field order makes json.Marshal deterministic for
// identical keys.
func simKeyBytes(key simKey) ([]byte, error) {
	return json.Marshal(key)
}

// lookup returns the journaled result for key, if one was replayed or
// recorded.
func (j *Journal) lookup(key simKey) (*simResult, bool) {
	kb, err := simKeyBytes(key)
	if err != nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.results[string(kb)]
	if ok {
		j.hits++
	}
	return res, ok
}

// record appends one completed result and fsyncs it, so a kill after
// record returns can never lose the cell. Failures are returned, not
// fatal: a missed journal entry only costs a deterministic recompute on
// resume.
func (j *Journal) record(key simKey, res *simResult) error {
	kb, err := simKeyBytes(key)
	if err != nil {
		return fmt.Errorf("sim: journal key: %w", err)
	}
	line, err := json.Marshal(journalRecord{Key: kb, Result: res})
	if err != nil {
		return fmt.Errorf("sim: journal record: %w", err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.results[string(kb)] != nil {
		return nil // already journaled (e.g. replayed then re-run)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sim: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sim: journal fsync: %w", err)
	}
	j.results[string(kb)] = res
	return nil
}

// Replayed reports how many completed results the journal restored on
// open.
func (j *Journal) Replayed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// Dropped reports how many torn or unparseable records replay discarded
// on open (zero for a clean resume).
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// TornOffset reports the byte offset where replay stopped trusting the
// file; meaningful only when Dropped() > 0.
func (j *Journal) TornOffset() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tornOffset
}

// Hits reports how many simulations were served from the journal.
func (j *Journal) Hits() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
