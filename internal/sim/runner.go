// Package sim drives complete experiments: it wires benchmarks (trace),
// policies (core), the pipeline and the energy model together, and
// implements one function per table and figure of the paper's evaluation
// (see experiments.go and DESIGN.md's experiment index).
//
// Runs are memoized at three layers (scene store, preparation store,
// simulation memo), each single-flighted so concurrent Warm workers
// never duplicate a computation, and each cancellation-safe: a waiter
// whose context ends detaches without poisoning the shared entry. Two
// axes of parallelism compose on top — Runner.Parallelism runs whole
// simulations concurrently, Runner.Parallel fans each simulation's
// raster phase out over worker goroutines with byte-identical output
// (DESIGN.md §11), so memo entries are shared across every setting.
package sim

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"dtexl/internal/core"
	"dtexl/internal/energy"
	"dtexl/internal/pipeline"
	"dtexl/internal/trace"
)

// Options selects the simulated machine size and workload inputs shared
// by every experiment.
type Options struct {
	// Width, Height is the screen resolution. The paper's Table II
	// resolution is 1960x768; smaller values run proportionally faster
	// with the same qualitative behaviour.
	Width, Height int
	// Seed drives the deterministic scene generators.
	Seed uint64
	// Benchmarks are Table I aliases; empty means the full suite.
	Benchmarks []string
	// Frames is the number of animation frames to simulate per run with
	// warm caches (0 or 1 = single frame). Metrics aggregate over frames.
	Frames int
}

// DefaultOptions returns the paper's operating point over the full
// benchmark suite.
func DefaultOptions() Options {
	return Options{Width: 1960, Height: 768, Seed: 1}
}

// ScaledOptions returns options at a fraction of the paper resolution —
// the quick mode used by tests and -short benchmarks.
func ScaledOptions(divisor int) Options {
	o := DefaultOptions()
	o.Width /= divisor
	o.Height /= divisor
	return o
}

// aliases resolves the benchmark list.
func (o Options) aliases() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return trace.Aliases()
}

// RunResult is one (benchmark, policy) simulation with its energy
// estimate.
type RunResult struct {
	Bench   string
	Policy  core.Policy
	Metrics *pipeline.Metrics
	Energy  energy.Breakdown
}

// RunOne simulates one benchmark under one policy. If upperBound is set,
// the machine is rewritten to the Fig. 16 single-SC bound (the policy's
// grouping is then irrelevant).
func RunOne(alias string, pol core.Policy, opt Options, upperBound bool) (*RunResult, error) {
	var mutate func(*pipeline.Config)
	if upperBound {
		mutate = func(cfg *pipeline.Config) { core.ApplyUpperBound(cfg) }
	}
	return RunOneWith(alias, pol, opt, mutate)
}

// simKey identifies one memoizable simulation: the workload (benchmark
// alias + seed + frame count) and the *effective* machine configuration
// after the policy and any ablation mutation are applied. Keying on the
// resolved Config rather than the policy name means two policies that
// configure the same machine (e.g. DTexL under its HLB-flp2 label, or an
// ablation sweep point equal to the default) share one simulation.
type simKey struct {
	Alias  string
	Seed   uint64
	Frames int
	Cfg    pipeline.Config
}

// simResult is the label-independent part of a RunResult.
type simResult struct {
	Metrics *pipeline.Metrics
	Energy  energy.Breakdown
}

// RunOneWith simulates one benchmark under a policy with an optional
// configuration mutation applied after the policy, memoizing the result
// on the effective configuration. It is the Runner-level counterpart of
// the package function RunOneWith and produces bit-identical results:
// the scene comes from the shared scene store, and single-frame runs
// reuse the memoized policy-independent front half (pipeline.
// PreparedFrame) of any earlier run with the same front configuration.
//
// Multi-frame runs take the unmemoized path beyond scene generation:
// frames after the first run their geometry against policy-warmed
// caches, so their front half is not policy-independent.
func (r *Runner) RunOneWith(alias string, pol core.Policy, mutate func(*pipeline.Config)) (*RunResult, error) {
	return r.RunOneCtx(r.baseCtx(), alias, pol, mutate)
}

// RunOneCtx is RunOneWith under a caller-supplied context — the serving
// path. ctx bounds the whole call: it is threaded into the executors
// (so a deadline or cancellation aborts a compute-bound run at the next
// watchdog poll) and into every memo layer's wait (so a cancelled
// caller stops blocking on a cell another goroutine is computing,
// without disturbing that computation). When the computing caller
// itself is cancelled, still-live waiters retry the cell rather than
// inherit the foreign context error; each retry is bounded by the
// retrier's own ctx and the Runner's per-cell RunTimeout.
func (r *Runner) RunOneCtx(reqCtx context.Context, alias string, pol core.Policy, mutate func(*pipeline.Config)) (*RunResult, error) {
	prof, err := trace.ProfileByAlias(alias)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = r.Opt.Width, r.Opt.Height
	pol.Apply(&cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	frames := r.Opt.Frames
	if frames < 1 {
		frames = 1
	}
	key := simKey{Alias: alias, Seed: r.Opt.Seed, Frames: frames, Cfg: cfg}
	if r.KeepGoing {
		// A configuration that already failed fails fast: cells shared by
		// several figures go NA from the cached error instead of re-running
		// (the single-flight memo drops failed entries, so without this
		// cache each figure would re-execute the doomed simulation).
		r.failMu.Lock()
		cached := r.failedSims[key]
		r.failMu.Unlock()
		if cached != nil {
			return nil, cached
		}
	}
	res, err := r.sims.do(reqCtx, key, func() (*simResult, error) {
		if r.Journal != nil {
			if sr, ok := r.Journal.lookup(key); ok {
				atomic.AddUint64(&r.completedSims, 1)
				if r.Progress != nil {
					r.Progress(fmt.Sprintf("%-4s %-18s resumed from checkpoint", alias, pol.Name))
				}
				return sr, nil
			}
		}
		if r.Store != nil {
			// L2: the shared result store. Checksummed, so a corrupt entry
			// reads as a miss and the compute below repairs it.
			if sr, ok := r.Store.lookup(key); ok {
				atomic.AddUint64(&r.completedSims, 1)
				if r.Progress != nil {
					r.Progress(fmt.Sprintf("%-4s %-18s served from shared store", alias, pol.Name))
				}
				return sr, nil
			}
		}
		ctx := reqCtx
		if r.RunTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, r.RunTimeout)
			defer cancel()
		}
		if r.Parallel > 1 || r.Parallel < 0 {
			// Intra-run parallelism rides on the context, not the key: the
			// parallel executors are byte-identical to the serial ones, so
			// serial and parallel callers share memo entries freely.
			ctx = pipeline.WithParallel(ctx, r.Parallel)
		}
		if r.Chaos.matches(alias, pol.Name) {
			switch r.Chaos.Mode {
			case ChaosPanic:
				// Deliberately panic inside the memoized body: the memo layer
				// must recover it into an error without poisoning the cache.
				panic(fmt.Sprintf("sim: injected chaos panic for %s/%s", alias, pol.Name))
			case ChaosError:
				return nil, fmt.Errorf("sim: injected chaos error for %s/%s", alias, pol.Name)
			case ChaosStall:
				// Livelock the real executor; its watchdog converts the spin
				// into a *pipeline.StallError with a genuine state dump.
				ctx = pipeline.WithChaosStall(ctx)
			case ChaosCrash:
				// Die mid-cell the way SIGKILL would: no deferred cleanup, no
				// journal/store record for the in-flight cell. The fleet chaos
				// harness uses this to prove lease reassignment recovers the
				// cell on another worker.
				fmt.Fprintf(os.Stderr, "sim: injected chaos crash for %s/%s\n", alias, pol.Name)
				os.Exit(137)
			}
		}
		t0 := time.Now()
		scenes, err := r.scenes.AnimationContext(ctx, prof, cfg.Width, cfg.Height, r.Opt.Seed, frames)
		atomic.AddInt64(&r.generateNanos, int64(time.Since(t0)))
		if err != nil {
			return nil, fmt.Errorf("sim: %s/%s: %w", alias, pol.Name, err)
		}
		var ms []*pipeline.Metrics
		if frames == 1 && cfg.RenderTarget == nil {
			pk := prepKey{Alias: alias, Seed: r.Opt.Seed, Front: pipeline.FrontKeyOf(cfg)}
			t1 := time.Now()
			prep, err := r.prepStoreLazy().do(ctx, pk, func() (*pipeline.PreparedFrame, error) {
				p, perr := pipeline.PrepareFrameContext(ctx, scenes[0], cfg)
				if perr == nil {
					// Attribute the build split inside the memo body so only
					// the worker that actually built the frame counts it.
					atomic.AddInt64(&r.geometryNanos, int64(p.GeometryTime))
					atomic.AddInt64(&r.coverageNanos, int64(p.CoverageTime))
				}
				return p, perr
			})
			atomic.AddInt64(&r.prepareNanos, int64(time.Since(t1)))
			if err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", alias, pol.Name, err)
			}
			t2 := time.Now()
			m, err := pipeline.RunPreparedContext(ctx, prep, cfg)
			atomic.AddInt64(&r.rasterNanos, int64(time.Since(t2)))
			if err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", alias, pol.Name, err)
			}
			ms = []*pipeline.Metrics{m}
		} else {
			t2 := time.Now()
			ms, err = pipeline.RunFramesContext(ctx, scenes, cfg)
			atomic.AddInt64(&r.rasterNanos, int64(time.Since(t2)))
			if err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", alias, pol.Name, err)
			}
		}
		m := aggregateMetrics(ms)
		sr := &simResult{Metrics: m, Energy: energy.DefaultModel().Estimate(m.Events)}
		if r.Journal != nil {
			// Best-effort: a failed append only costs a deterministic
			// recompute on resume, so warn and continue.
			if jerr := r.Journal.record(key, sr); jerr != nil && r.Progress != nil {
				r.Progress(fmt.Sprintf("warning: %v", jerr))
			}
		}
		if r.Store != nil {
			// Equally best-effort: a missed store record costs another
			// worker a recompute, never correctness.
			if serr := r.Store.record(key, sr); serr != nil && r.Progress != nil {
				r.Progress(fmt.Sprintf("warning: %v", serr))
			}
		}
		atomic.AddUint64(&r.completedSims, 1)
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("%-4s %-18s %8.1f fps  %9d L2 accesses", alias, pol.Name, m.FPS, m.L2Accesses()))
		}
		return sr, nil
	})
	if err != nil {
		if r.KeepGoing {
			r.failMu.Lock()
			if r.failedSims == nil {
				r.failedSims = make(map[simKey]error)
			}
			if r.failedSims[key] == nil {
				r.failedSims[key] = err
			}
			r.failMu.Unlock()
		}
		return nil, err
	}
	return &RunResult{Bench: alias, Policy: pol, Metrics: res.Metrics, Energy: res.Energy}, nil
}

// scene returns the benchmark's frame-0 scene from the shared store
// (generating the animation on first use), for consumers that need the
// scene itself rather than a simulation — Table 1 and the IMR baseline.
func (r *Runner) scene(alias string) (*trace.Scene, error) {
	prof, err := trace.ProfileByAlias(alias)
	if err != nil {
		return nil, err
	}
	frames := r.Opt.Frames
	if frames < 1 {
		frames = 1
	}
	t0 := time.Now()
	scenes, err := r.scenes.Animation(prof, r.Opt.Width, r.Opt.Height, r.Opt.Seed, frames)
	atomic.AddInt64(&r.generateNanos, int64(time.Since(t0)))
	if err != nil {
		return nil, err
	}
	return scenes[0], nil
}

// Timing is the Runner's wall-clock split across the memoized phases,
// plus the hit/miss counters of each memo layer. Durations are summed
// over Warm's workers, so with parallelism they can exceed elapsed time.
type Timing struct {
	// Generate is time spent generating (or waiting on) scenes.
	Generate time.Duration
	// Prepare is time spent building (or waiting on) policy-independent
	// front halves: geometry, binning, coverage.
	Prepare time.Duration
	// Geometry and Coverage split Prepare's actual build time between the
	// geometry+binning phase and the per-tile coverage phase (excluding
	// time spent waiting on another worker's in-flight build).
	Geometry time.Duration
	Coverage time.Duration
	// Raster is time spent in per-policy raster-phase simulation.
	Raster time.Duration

	SceneHits, SceneMisses uint64
	PrepHits, PrepMisses   uint64
	SimHits, SimMisses     uint64
}

// Timing snapshots the Runner's counters. Safe to call concurrently
// with runs.
func (r *Runner) Timing() Timing {
	t := Timing{
		Generate: time.Duration(atomic.LoadInt64(&r.generateNanos)),
		Prepare:  time.Duration(atomic.LoadInt64(&r.prepareNanos)),
		Geometry: time.Duration(atomic.LoadInt64(&r.geometryNanos)),
		Coverage: time.Duration(atomic.LoadInt64(&r.coverageNanos)),
		Raster:   time.Duration(atomic.LoadInt64(&r.rasterNanos)),
	}
	t.SceneHits, t.SceneMisses = r.scenes.Stats()
	t.SimHits, t.SimMisses = r.sims.stats()
	t.PrepHits, t.PrepMisses = r.prepStoreLazy().stats()
	return t
}

// String renders the timing summary as the -timing flag prints it: one
// line per phase (scene generation, geometry+binning, tile coverage,
// raster simulation) so perf work can attribute wins without a profiler.
func (t Timing) String() string {
	return fmt.Sprintf(
		"phase wall time: scene generation %v, geometry+binning %v, tile coverage %v, raster %v\n"+
			"memo hits/misses: scenes %d/%d, preparations %d/%d, simulations %d/%d",
		t.Generate.Round(time.Millisecond),
		t.Geometry.Round(time.Millisecond),
		t.Coverage.Round(time.Millisecond),
		t.Raster.Round(time.Millisecond),
		t.SceneHits, t.SceneMisses,
		t.PrepHits, t.PrepMisses,
		t.SimHits, t.SimMisses)
}

// aggregateMetrics folds per-frame metrics into one whole-animation
// record: counts and cycles sum, per-tile imbalance samples concatenate,
// FPS becomes frames per second over the whole run.
func aggregateMetrics(ms []*pipeline.Metrics) *pipeline.Metrics {
	if len(ms) == 1 {
		return ms[0]
	}
	agg := &pipeline.Metrics{Config: ms[0].Config}
	agg.PerSCQuads = make([]uint64, len(ms[0].PerSCQuads))
	agg.PerSCBusy = make([]int64, len(ms[0].PerSCBusy))
	agg.SCBreakdown = make([]pipeline.SCBreakdown, len(ms[0].SCBreakdown))
	for _, m := range ms {
		agg.Cycles += m.Cycles
		agg.GeometryCycles += m.GeometryCycles
		agg.RasterCycles += m.RasterCycles
		agg.Events.ALUInstructions += m.Events.ALUInstructions
		agg.Events.TextureSamples += m.Events.TextureSamples
		agg.Events.L1TexAccesses += m.Events.L1TexAccesses
		agg.Events.L2Accesses += m.Events.L2Accesses
		agg.Events.DRAMAccesses += m.Events.DRAMAccesses
		agg.Events.VertexFetches += m.Events.VertexFetches
		agg.Events.QuadsShaded += m.Events.QuadsShaded
		agg.Events.QuadsCulled += m.Events.QuadsCulled
		agg.Events.FlushedLines += m.Events.FlushedLines
		agg.Events.SCBusyCycles += m.Events.SCBusyCycles
		agg.Events.SCIdleCycles += m.Events.SCIdleCycles
		agg.Events.FrameCycles += m.Events.FrameCycles
		for i := range agg.PerSCQuads {
			agg.PerSCQuads[i] += m.PerSCQuads[i]
			agg.PerSCBusy[i] += m.PerSCBusy[i]
		}
		agg.TileTimeDeviation = append(agg.TileTimeDeviation, m.TileTimeDeviation...)
		agg.TileQuadDeviation = append(agg.TileQuadDeviation, m.TileQuadDeviation...)
		// Per-SC stall causes sum across frames (conservation then holds
		// against the summed RasterCycles); interval snapshots concatenate
		// in frame order, each frame's Cycle axis restarting at zero.
		for i := range agg.SCBreakdown {
			agg.SCBreakdown[i].Add(m.SCBreakdown[i])
		}
		agg.Intervals = append(agg.Intervals, m.Intervals...)
		agg.IntervalsDropped += m.IntervalsDropped
		agg.L1Tex.Accesses += m.L1Tex.Accesses
		agg.L1Tex.Hits += m.L1Tex.Hits
		agg.L1Tex.Misses += m.L1Tex.Misses
		agg.L1Tex.Evictions += m.L1Tex.Evictions
		agg.L2.Accesses += m.L2.Accesses
		agg.L2.Hits += m.L2.Hits
		agg.L2.Misses += m.L2.Misses
		agg.L2.Evictions += m.L2.Evictions
	}
	agg.FPS = ms[0].Config.ClockHz * float64(len(ms)) / float64(agg.Cycles)
	return agg
}

// RunScene simulates one externally supplied scene (e.g. loaded from a
// scene trace) under a policy; the machine resolution follows the scene.
func RunScene(scene *trace.Scene, pol core.Policy, mutate func(*pipeline.Config)) (*RunResult, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = scene.Width, scene.Height
	pol.Apply(&cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := pipeline.Run(scene, cfg)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Bench:   "scene",
		Policy:  pol,
		Metrics: m,
		Energy:  energy.DefaultModel().Estimate(m.Events),
	}, nil
}
