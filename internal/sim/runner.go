// Package sim drives complete experiments: it wires benchmarks (trace),
// policies (core), the pipeline and the energy model together, and
// implements one function per table and figure of the paper's evaluation
// (see experiments.go and DESIGN.md's experiment index).
package sim

import (
	"dtexl/internal/core"
	"dtexl/internal/energy"
	"dtexl/internal/pipeline"
	"dtexl/internal/trace"
)

// Options selects the simulated machine size and workload inputs shared
// by every experiment.
type Options struct {
	// Width, Height is the screen resolution. The paper's Table II
	// resolution is 1960x768; smaller values run proportionally faster
	// with the same qualitative behaviour.
	Width, Height int
	// Seed drives the deterministic scene generators.
	Seed uint64
	// Benchmarks are Table I aliases; empty means the full suite.
	Benchmarks []string
	// Frames is the number of animation frames to simulate per run with
	// warm caches (0 or 1 = single frame). Metrics aggregate over frames.
	Frames int
}

// DefaultOptions returns the paper's operating point over the full
// benchmark suite.
func DefaultOptions() Options {
	return Options{Width: 1960, Height: 768, Seed: 1}
}

// ScaledOptions returns options at a fraction of the paper resolution —
// the quick mode used by tests and -short benchmarks.
func ScaledOptions(divisor int) Options {
	o := DefaultOptions()
	o.Width /= divisor
	o.Height /= divisor
	return o
}

// aliases resolves the benchmark list.
func (o Options) aliases() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return trace.Aliases()
}

// RunResult is one (benchmark, policy) simulation with its energy
// estimate.
type RunResult struct {
	Bench   string
	Policy  core.Policy
	Metrics *pipeline.Metrics
	Energy  energy.Breakdown
}

// RunOne simulates one benchmark under one policy. If upperBound is set,
// the machine is rewritten to the Fig. 16 single-SC bound (the policy's
// grouping is then irrelevant).
func RunOne(alias string, pol core.Policy, opt Options, upperBound bool) (*RunResult, error) {
	var mutate func(*pipeline.Config)
	if upperBound {
		mutate = func(cfg *pipeline.Config) { core.ApplyUpperBound(cfg) }
	}
	return RunOneWith(alias, pol, opt, mutate)
}

// aggregateMetrics folds per-frame metrics into one whole-animation
// record: counts and cycles sum, per-tile imbalance samples concatenate,
// FPS becomes frames per second over the whole run.
func aggregateMetrics(ms []*pipeline.Metrics) *pipeline.Metrics {
	if len(ms) == 1 {
		return ms[0]
	}
	agg := &pipeline.Metrics{Config: ms[0].Config}
	agg.PerSCQuads = make([]uint64, len(ms[0].PerSCQuads))
	agg.PerSCBusy = make([]int64, len(ms[0].PerSCBusy))
	for _, m := range ms {
		agg.Cycles += m.Cycles
		agg.GeometryCycles += m.GeometryCycles
		agg.RasterCycles += m.RasterCycles
		agg.Events.ALUInstructions += m.Events.ALUInstructions
		agg.Events.TextureSamples += m.Events.TextureSamples
		agg.Events.L1TexAccesses += m.Events.L1TexAccesses
		agg.Events.L2Accesses += m.Events.L2Accesses
		agg.Events.DRAMAccesses += m.Events.DRAMAccesses
		agg.Events.VertexFetches += m.Events.VertexFetches
		agg.Events.QuadsShaded += m.Events.QuadsShaded
		agg.Events.QuadsCulled += m.Events.QuadsCulled
		agg.Events.FlushedLines += m.Events.FlushedLines
		agg.Events.SCBusyCycles += m.Events.SCBusyCycles
		agg.Events.SCIdleCycles += m.Events.SCIdleCycles
		agg.Events.FrameCycles += m.Events.FrameCycles
		for i := range agg.PerSCQuads {
			agg.PerSCQuads[i] += m.PerSCQuads[i]
			agg.PerSCBusy[i] += m.PerSCBusy[i]
		}
		agg.TileTimeDeviation = append(agg.TileTimeDeviation, m.TileTimeDeviation...)
		agg.TileQuadDeviation = append(agg.TileQuadDeviation, m.TileQuadDeviation...)
		agg.L1Tex.Accesses += m.L1Tex.Accesses
		agg.L1Tex.Hits += m.L1Tex.Hits
		agg.L1Tex.Misses += m.L1Tex.Misses
		agg.L1Tex.Evictions += m.L1Tex.Evictions
		agg.L2.Accesses += m.L2.Accesses
		agg.L2.Hits += m.L2.Hits
		agg.L2.Misses += m.L2.Misses
		agg.L2.Evictions += m.L2.Evictions
	}
	agg.FPS = ms[0].Config.ClockHz * float64(len(ms)) / float64(agg.Cycles)
	return agg
}

// RunScene simulates one externally supplied scene (e.g. loaded from a
// scene trace) under a policy; the machine resolution follows the scene.
func RunScene(scene *trace.Scene, pol core.Policy, mutate func(*pipeline.Config)) (*RunResult, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = scene.Width, scene.Height
	pol.Apply(&cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := pipeline.Run(scene, cfg)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Bench:   "scene",
		Policy:  pol,
		Metrics: m,
		Energy:  energy.DefaultModel().Estimate(m.Events),
	}, nil
}
