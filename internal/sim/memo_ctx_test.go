package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dtexl/internal/core"
)

// TestMemoWaiterCancellable: a waiter blocked on another caller's
// in-flight computation returns its own context error promptly instead
// of blocking until the computation finishes.
func TestMemoWaiterCancellable(t *testing.T) {
	m := newMemo[int, int]()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.do(context.Background(), 1, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan error, 1)
	go func() {
		_, err := m.do(ctx, 1, func() (int, error) { return 2, nil })
		waited <- err
	}()
	cancel()
	select {
	case err := <-waited:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked on the in-flight computation")
	}

	// The computation itself is undisturbed: release it and confirm the
	// value is memoized.
	close(release)
	<-done
	v, err := m.do(context.Background(), 1, func() (int, error) { return -1, nil })
	if err != nil || v != 1 {
		t.Fatalf("after cancel: got %d, %v; want the original computation's 1", v, err)
	}
}

// TestMemoWaiterRetriesCancelledComputer: when the computing caller is
// cancelled under its own context, a still-live waiter must not inherit
// that foreign cancellation — the failed entry is gone, so the waiter
// retries and computes the value itself.
func TestMemoWaiterRetriesCancelledComputer(t *testing.T) {
	m := newMemo[int, int]()
	compCtx, cancelComp := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		m.do(context.Background(), 1, func() (int, error) {
			close(started)
			<-compCtx.Done() // the "executor" observing its request context
			return 0, compCtx.Err()
		})
	}()
	<-started

	waited := make(chan struct{})
	var got int
	var gotErr error
	var retried int32
	go func() {
		defer close(waited)
		got, gotErr = m.do(context.Background(), 1, func() (int, error) {
			atomic.AddInt32(&retried, 1)
			return 7, nil
		})
	}()
	cancelComp()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never returned after the computer was cancelled")
	}
	if gotErr != nil || got != 7 {
		t.Fatalf("waiter got (%d, %v), want (7, nil) via retry", got, gotErr)
	}
	if atomic.LoadInt32(&retried) != 1 {
		t.Fatalf("retry count = %d, want 1", retried)
	}
}

// TestRunOneCtxWaiterCancel drives the same contract end to end through
// the Runner: one request computes a cell while a second, cancelled
// request waiting on the same cell returns promptly with its own
// context error — today's serving path for "a cancelled request stops
// blocking on a cell another goroutine is computing".
func TestRunOneCtxWaiterCancel(t *testing.T) {
	r := NewRunner(faultOptions())
	// Livelock the computation so the first request holds the flight
	// until its own deadline.
	r.Chaos = &ChaosConfig{Bench: "CCS", Policy: "baseline", Mode: ChaosStall}

	compStarted := make(chan struct{})
	compDone := make(chan error, 1)
	go func() {
		close(compStarted)
		_, err := r.RunOneCtx(context.Background(), "CCS", core.Baseline(), nil)
		compDone <- err
	}()
	<-compStarted

	// Second request for the same cell with a short deadline: it must
	// give up on the wait at its deadline, not at the watchdog's.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.RunOneCtx(ctx, "CCS", core.Baseline(), nil)
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		// The waiter may also have become the computer after the first
		// request stalled; then it sees the stall or its own deadline.
		t.Logf("waiter error: %v (acceptable if context-derived)", err)
	}
	if err == nil {
		t.Fatal("deadline-bounded waiter returned nil while the cell was livelocked")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("waiter took %v to observe its deadline", elapsed)
	}
	if err := <-compDone; err == nil {
		t.Fatal("livelocked computation returned nil")
	}
}

// TestWarmSurvivesCancelledWaiters: cancelled waiters racing with live
// Warm workers over shared cells must not corrupt the memo stack. Run
// under -race in CI.
func TestWarmSurvivesCancelledWaiters(t *testing.T) {
	r := NewRunner(faultOptions())
	r.Parallelism = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				r.RunOneCtx(ctx, "TRu", core.Baseline(), nil)
				cancel()
			}
		}()
	}
	err := r.Warm([]runJob{
		{"TRu", core.Baseline(), false},
		{"CCS", core.Baseline(), false},
		{"TRu", core.DTexL(), false},
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Warm failed amid cancelled waiters: %v", err)
	}
	// The cells are intact and served from memo.
	if _, err := r.RunOneWith("TRu", core.Baseline(), nil); err != nil {
		t.Fatalf("cell unusable after cancelled-waiter churn: %v", err)
	}
}
