package sim

import (
	"reflect"
	"testing"

	"dtexl/internal/pipeline"
	"dtexl/internal/trace"
)

// TestParallelRunsBitIdentical is the sim-layer acceptance gate for
// intra-run parallelism (DESIGN.md §11): for every (benchmark, policy)
// pair the evaluation suite runs — coupled, decoupled and the IMR
// executor — a Runner with parallel workers must produce metrics and
// energy byte-identical to the serial Runner. CI runs this under -race
// at GOMAXPROCS ∈ {1, 2, 8}; any ordering leak in the parallel
// executors shows up here as a diff, and any data race under the flag.
func TestParallelRunsBitIdentical(t *testing.T) {
	opt := ScaledOptions(8) // full benchmark suite
	serial := NewRunner(opt)
	par := NewRunner(opt)
	par.Parallel = 8
	for _, alias := range opt.aliases() {
		for _, pol := range suitePolicies() {
			want, err := serial.RunOneWith(alias, pol, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.RunOneWith(alias, pol, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s/%s: parallel metrics differ from serial run", alias, pol.Name)
			}
			if want.Energy != got.Energy {
				t.Errorf("%s/%s: parallel energy differs from serial run", alias, pol.Name)
			}
		}

		// The IMR executor runs live outside the memo layer; compare it
		// directly on the same generated scene.
		prof, err := trace.ProfileByAlias(alias)
		if err != nil {
			t.Fatal(err)
		}
		cfg := pipeline.DefaultConfig()
		cfg.Width, cfg.Height = opt.Width, opt.Height
		scene := trace.GenerateScene(prof, cfg.Width, cfg.Height, opt.Seed)
		wantM, err := serial.runIMR(scene, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotM, err := par.runIMR(scene, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantM, gotM) {
			t.Errorf("%s/IMR: parallel metrics differ from serial run", alias)
		}
	}
}
