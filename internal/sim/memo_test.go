package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dtexl/internal/core"
)

func TestMemoSingleFlight(t *testing.T) {
	m := newMemo[int, int]()
	var execs int32
	var wg sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.do(context.Background(), 7, func() (int, error) {
				atomic.AddInt32(&execs, 1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if n := atomic.LoadInt32(&execs); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
}

func TestMemoErrorEntryRemoved(t *testing.T) {
	m := newMemo[string, int]()
	boom := errors.New("boom")
	calls := 0
	fail := func() (int, error) { calls++; return 0, boom }
	if _, err := m.do(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failed flight must not be treated as a completed entry.
	v, err := m.do(context.Background(), "k", func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry: %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (error entry cached?)", calls)
	}
	// And the success is now memoized.
	v, err = m.do(context.Background(), "k", func() (int, error) { calls++; return -1, nil })
	if err != nil || v != 9 || calls != 2 {
		t.Fatalf("memoized read: %d, %v, calls=%d", v, err, calls)
	}
}

func TestMemoPanicReleasesWaiters(t *testing.T) {
	m := newMemo[int, int]()
	func() {
		defer func() { recover() }()
		m.do(context.Background(), 1, func() (int, error) { panic("die") })
	}()
	// The entry must be gone and a retry must work.
	v, err := m.do(context.Background(), 1, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("after panic: %d, %v", v, err)
	}
}

// TestWarmErrorPath exercises the Runner.Warm failure contract: a bad
// job must surface its error without deadlocking the producer (all
// workers can exit while jobs remain), and without leaving a partial
// memo entry — good jobs remain runnable and the bad one re-errors.
func TestWarmErrorPath(t *testing.T) {
	r := NewRunner(testOptions())
	r.Parallelism = 4
	bad := core.Baseline()
	jobs := []runJob{{Alias: "???", Policy: bad}}
	for i := 0; i < 32; i++ {
		// Enough trailing jobs that a blocked producer would deadlock.
		jobs = append(jobs, runJob{Alias: "TRu", Policy: core.Baseline()})
	}
	if err := r.Warm(jobs); err == nil {
		t.Fatal("Warm swallowed the bad job's error")
	}
	if _, err := r.run("???", bad, false); err == nil {
		t.Fatal("failed job left a memo entry that reads as complete")
	}
	if _, err := r.run("TRu", core.Baseline(), false); err != nil {
		t.Fatalf("good job unusable after failed Warm: %v", err)
	}
}

// TestWarmConcurrentSharing drives the full memo stack (scene store,
// preparation store, simulation memo) from many workers at once; run
// under -race this is the shared-state check the CI workflow pins.
func TestWarmConcurrentSharing(t *testing.T) {
	r := NewRunner(testOptions())
	r.Parallelism = 8
	var jobs []runJob
	pols := []core.Policy{core.Baseline(), core.BaselineDecoupled(), core.DTexL()}
	for _, alias := range r.Opt.aliases() {
		for _, pol := range pols {
			// Duplicate each job so concurrent workers collide on keys.
			jobs = append(jobs, runJob{Alias: alias, Policy: pol}, runJob{Alias: alias, Policy: pol})
		}
	}
	if err := r.Warm(jobs); err != nil {
		t.Fatal(err)
	}
	tm := r.Timing()
	if tm.SceneMisses != uint64(len(r.Opt.aliases())) {
		t.Errorf("scene generations = %d, want one per benchmark (%d)", tm.SceneMisses, len(r.Opt.aliases()))
	}
	if tm.PrepMisses != uint64(len(r.Opt.aliases())) {
		t.Errorf("preparations = %d, want one per benchmark (%d)", tm.PrepMisses, len(r.Opt.aliases()))
	}
	if tm.SimMisses != uint64(len(r.Opt.aliases())*len(pols)) {
		t.Errorf("simulations = %d, want %d", tm.SimMisses, len(r.Opt.aliases())*len(pols))
	}
	if tm.SimHits == 0 {
		t.Error("duplicate jobs produced no memo hits")
	}
}

// TestWarmAllSharesConfigDuplicates checks the config-keyed layer: the
// WarmAll job list repeats machine configurations under different policy
// names (DTexL vs HLB-flp2, FG-xshift2 vs baseline), which must not
// re-simulate.
func TestWarmAllSharesConfigDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("full WarmAll sweep")
	}
	r := NewRunner(testOptions())
	if err := r.WarmAll(); err != nil {
		t.Fatal(err)
	}
	tm := r.Timing()
	// 22 named jobs per benchmark; at least 2 are config-duplicates
	// (HLB-flp2 == DTexL's config, FG-xshift2 == baseline's).
	perBench := uint64(20)
	maxSims := perBench * uint64(len(r.Opt.aliases()))
	if tm.SimMisses > maxSims {
		t.Errorf("WarmAll executed %d simulations, want <= %d (config dedup broken)", tm.SimMisses, maxSims)
	}
}
