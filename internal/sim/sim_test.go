package sim

import (
	"bytes"
	"strings"
	"testing"

	"dtexl/internal/core"
)

// testOptions runs at 1/8 the paper resolution over a 3-game subset to
// keep the suite fast while still exercising every experiment end to end.
func testOptions() Options {
	o := ScaledOptions(8)
	o.Benchmarks = []string{"TRu", "CCS", "GTr"}
	return o
}

func TestRunOne(t *testing.T) {
	res, err := RunOne("TRu", core.Baseline(), testOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Cycles <= 0 || res.Energy.Total() <= 0 {
		t.Errorf("cycles=%d energy=%v", res.Metrics.Cycles, res.Energy.Total())
	}
	if res.Bench != "TRu" || res.Policy.Name != "baseline" {
		t.Errorf("labels: %s %s", res.Bench, res.Policy.Name)
	}
}

func TestRunOneUnknownBenchmark(t *testing.T) {
	if _, err := RunOne("???", core.Baseline(), testOptions(), false); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(testOptions())
	calls := 0
	r.Progress = func(string) { calls++ }
	if _, err := r.run("TRu", core.Baseline(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.run("TRu", core.Baseline(), false); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("progress called %d times, want 1 (second run must be cached)", calls)
	}
}

func TestFig1And2Shapes(t *testing.T) {
	r := NewRunner(testOptions())
	f1, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != 2 || len(f1.Rows[0].Values) != 4 {
		t.Fatalf("fig1 shape: %d rows x %d cols", len(f1.Rows), len(f1.Rows[0].Values))
	}
	// TL imbalance must exceed LB on every benchmark (Fig. 1's message).
	for i, v := range f1.Rows[1].Values {
		if v <= f1.Rows[0].Values[i] {
			t.Errorf("fig1 col %d: TL (%v) not above LB (%v)", i, v, f1.Rows[0].Values[i])
		}
	}
	f2, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// TL must reduce L2 accesses on every benchmark (Fig. 2's message).
	for i, v := range f2.Rows[0].Values {
		if v >= 1 {
			t.Errorf("fig2 col %d: normalized L2 = %v, want < 1", i, v)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r := NewRunner(testOptions())
	f, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 10 {
		t.Fatalf("fig11 has %d groupings, want 10", len(f.Rows))
	}
	byName := map[string][]float64{}
	for _, row := range f.Rows {
		byName[row.Name] = row.Values
	}
	// FG-xshift2 is the normalization base: all 1.
	for _, v := range byName["FG-xshift2"] {
		if v != 1 {
			t.Errorf("FG-xshift2 normalized value = %v", v)
		}
	}
	// Every coarse grouping must beat every fine grouping on average
	// (last column).
	last := len(f.Cols) - 1
	for _, fg := range []string{"FG-checker", "FG-xshift2", "FG-xshift1", "FG-xshift3", "FG-vpair", "FG-hpair"} {
		for _, cg := range []string{"CG-square", "CG-xrect", "CG-yrect", "CG-tri"} {
			if byName[cg][last] >= byName[fg][last] {
				t.Errorf("%s (%v) not below %s (%v) in avg L2", cg, byName[cg][last], fg, byName[fg][last])
			}
		}
	}
}

func TestFig12CGImbalanceAboveFG(t *testing.T) {
	r := NewRunner(testOptions())
	f, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, row := range f.Rows {
		byName[row.Name] = row.Values
	}
	last := len(f.Cols) - 1
	if byName["CG-square"][last] < 3 {
		t.Errorf("CG-square imbalance only %vx FG-xshift2; paper reports ~6-10x for CG rects", byName["CG-square"][last])
	}
	if byName["FG-checker"][last] > 2 {
		t.Errorf("FG-checker imbalance %vx; fine groupings should stay near 1x", byName["FG-checker"][last])
	}
}

func TestFig13NoSpeedupWithoutDecoupling(t *testing.T) {
	r := NewRunner(testOptions())
	f, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	last := len(f.Cols) - 1
	for _, row := range f.Rows {
		if row.Values[last] < 0.85 || row.Values[last] > 1.15 {
			t.Errorf("%s coupled speedup = %v; paper reports ~1.0", row.Name, row.Values[last])
		}
	}
}

func TestFig14And15Violins(t *testing.T) {
	r := NewRunner(testOptions())
	f14, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(f14.Rows) != 6 { // 3 benches x 2 configs
		t.Fatalf("fig14 rows = %d", len(f14.Rows))
	}
	// Per bench, CG-square mean must exceed FG-xshift2 mean.
	for i := 0; i+1 < len(f14.Rows); i += 2 {
		fg, cg := f14.Rows[i], f14.Rows[i+1]
		if cg.Summary.Mean <= fg.Summary.Mean {
			t.Errorf("%s: CG time imbalance (%v) not above FG (%v)", fg.Bench, cg.Summary.Mean, fg.Summary.Mean)
		}
	}
	f15, err := r.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(f15.Rows); i += 2 {
		fg, cg := f15.Rows[i], f15.Rows[i+1]
		if cg.Summary.Mean <= fg.Summary.Mean {
			t.Errorf("%s: CG quad imbalance not above FG", fg.Bench)
		}
	}
}

func TestFig16MappingsAndBound(t *testing.T) {
	r := NewRunner(testOptions())
	f, err := r.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 9 { // 8 mappings + upper bound
		t.Fatalf("fig16 rows = %d", len(f.Rows))
	}
	last := len(f.Cols) - 1
	var bound float64
	for _, row := range f.Rows {
		if row.Name == "UpperBound" {
			bound = row.Values[last]
		}
	}
	for _, row := range f.Rows {
		if row.Name == "UpperBound" {
			continue
		}
		v := row.Values[last]
		if v < 20 || v > 65 {
			t.Errorf("%s: L2 decrease %v%% outside plausible band", row.Name, v)
		}
		if v >= bound {
			t.Errorf("%s: decrease %v%% exceeds the upper bound %v%%", row.Name, v, bound)
		}
		// Paper: mappings close >= ~70% of the gap to the bound.
		if v < 0.55*bound {
			t.Errorf("%s: closes only %v%% of a %v%% bound", row.Name, v, bound)
		}
	}
}

func TestFig17SpeedupOrdering(t *testing.T) {
	r := NewRunner(testOptions())
	f, err := r.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	last := len(f.Cols) - 1
	var dtexl, fgdec float64
	for _, row := range f.Rows {
		switch row.Name {
		case "DTexL(HLB-flp2)":
			dtexl = row.Values[last]
		case "baseline-decoupled":
			fgdec = row.Values[last]
		}
	}
	if !(dtexl > fgdec && fgdec > 1) {
		t.Errorf("speedup ordering violated: dtexl=%v fgdec=%v; paper has 1.2 > 1.09 > 1", dtexl, fgdec)
	}
	if dtexl < 1.05 || dtexl > 1.6 {
		t.Errorf("DTexL speedup %v outside plausible band around the paper's 1.2", dtexl)
	}
}

func TestFig18EnergyOrdering(t *testing.T) {
	r := NewRunner(testOptions())
	f, err := r.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	last := len(f.Cols) - 1
	var dtexl, fgdec float64
	for _, row := range f.Rows {
		switch row.Name {
		case "DTexL(HLB-flp2)":
			dtexl = row.Values[last]
		case "baseline-decoupled":
			fgdec = row.Values[last]
		}
	}
	if !(dtexl > fgdec && fgdec > 0) {
		t.Errorf("energy ordering violated: dtexl=%v%% fgdec=%v%%; paper has 6.3 > 3 > 0", dtexl, fgdec)
	}
	if dtexl < 2 || dtexl > 15 {
		t.Errorf("DTexL energy decrease %v%% outside plausible band around the paper's 6.3%%", dtexl)
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	r := NewRunner(testOptions())
	for _, id := range []string{"tab1", "tab2"} {
		var buf bytes.Buffer
		if err := r.RunExperiment(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
	var buf bytes.Buffer
	if err := r.RunExperiment("fig99", &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1ListsAllGames(t *testing.T) {
	r := NewRunner(testOptions())
	var buf bytes.Buffer
	if err := r.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, alias := range []string{"CCS", "SoD", "TRu", "SWa", "CRa", "RoK", "DDS", "Snp", "Mze", "GTr"} {
		if !strings.Contains(out, alias) {
			t.Errorf("tab1 missing %s", alias)
		}
	}
}

func TestTable2MatchesTableII(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"600 MHz", "1960x768", "32x32", "16KiB", "1MiB", "50-100"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab2 missing %q\n%s", want, out)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "t", Title: "x", Metric: "y",
		Cols: []string{"A", "Avg"},
		Rows: []TableRow{{Name: "r", Values: []float64{1, 1}}},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), "1.000") {
		t.Error("render missing values")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := map[string]bool{
		"fig1": true, "fig2": true, "fig11": true, "fig12": true, "fig13": true,
		"fig14": true, "fig15": true, "fig16": true, "fig17": true, "fig18": true,
		"tab1": true, "tab2": true,
		"abl-tileorder": true, "abl-warps": true, "abl-l1size": true, "abl-fifo": true,
		"abl-tilesize": true, "abl-latez": true, "abl-prefetch": true, "abl-nuca": true, "abl-warpsched": true, "bg-imr": true,
		"stalls": true,
	}
	if len(ids) != len(want) {
		t.Fatalf("%d experiments, want %d", len(ids), len(want))
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected experiment %q", id)
		}
	}
}
