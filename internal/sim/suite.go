package sim

import (
	"context"
	"fmt"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
)

// CellSpec names one suite cell — a (benchmark, policy) simulation — in
// a form that serializes over the fleet wire protocol and round-trips
// to the exact simulation the serial suite would run. Policy is the
// figure-style label resolved by ResolvePolicy (including the suite's
// special labels "DTexL(HLB-flp2)" and "upper-bound").
type CellSpec struct {
	Bench  string `json:"bench"`
	Policy string `json:"policy"`
	// UpperBound applies the Fig. 16 single-SC rewrite after the policy.
	UpperBound bool `json:"upper_bound,omitempty"`
}

// ID is the cell's human-readable identity ("bench/policy"), unique
// within a suite.
func (c CellSpec) ID() string { return c.Bench + "/" + c.Policy }

// upperBoundName is the label the suite gives the Fig. 16 single-SC
// bound cell.
const upperBoundName = "upper-bound"

// ResolvePolicy resolves the cell's policy label, covering the named
// core policies plus the suite's special labels. The boolean reports
// whether the upper-bound configuration rewrite applies.
func (c CellSpec) ResolvePolicy() (core.Policy, bool, error) {
	if c.UpperBound {
		if c.Policy != "" && c.Policy != upperBoundName {
			return core.Policy{}, false, fmt.Errorf("sim: upper-bound cell with policy %q", c.Policy)
		}
		p := core.Baseline()
		p.Name = upperBoundName
		return p, true, nil
	}
	if c.Policy == dtexlAsHLBFlp2().Name {
		return dtexlAsHLBFlp2(), false, nil
	}
	p, err := core.PolicyByName(c.Policy)
	return p, false, err
}

// SuiteCells enumerates every simulation the paper's figures need under
// the given options — the same set WarmAll pre-runs — as serializable
// cells, in deterministic order. This is the unit of fleet sharding:
// a coordinator leases these cells to workers, and completing all of
// them lets every figure render without further simulation.
func SuiteCells(opt Options) []CellSpec {
	var cells []CellSpec
	seen := map[string]bool{}
	add := func(c CellSpec) {
		if !seen[c.ID()] {
			seen[c.ID()] = true
			cells = append(cells, c)
		}
	}
	pols := suitePolicyList()
	for _, alias := range opt.aliases() {
		for _, pol := range pols {
			add(CellSpec{Bench: alias, Policy: pol.Name})
		}
		add(CellSpec{Bench: alias, Policy: upperBoundName, UpperBound: true})
	}
	return cells
}

// suitePolicyList is every named policy the evaluation sweeps: the three
// reference points (with DTexL under its Fig. 17/18 label), the Fig. 6
// groupings and the Fig. 8 subtile mappings.
func suitePolicyList() []core.Policy {
	pols := []core.Policy{core.Baseline(), core.BaselineDecoupled(), dtexlAsHLBFlp2()}
	pols = append(pols, core.GroupingPolicies()...)
	pols = append(pols, core.Fig8Mappings()...)
	return pols
}

// cellKey builds the canonical memo/store key of a cell under opt — the
// same key RunOneCtx derives, so a result recorded against this key is
// found by the Runner's store lookup.
func cellKey(opt Options, c CellSpec) (simKey, error) {
	pol, ub, err := c.ResolvePolicy()
	if err != nil {
		return simKey{}, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = opt.Width, opt.Height
	pol.Apply(&cfg)
	if ub {
		core.ApplyUpperBound(&cfg)
	}
	frames := opt.Frames
	if frames < 1 {
		frames = 1
	}
	return simKey{Alias: c.Bench, Seed: opt.Seed, Frames: frames, Cfg: cfg}, nil
}

// RunCell executes one suite cell through the Runner's full memo stack
// (L1 memo → journal → shared store → compute) — the fleet worker's
// entry point. Results are bit-identical to the serial suite's.
func (r *Runner) RunCell(ctx context.Context, c CellSpec) (*RunResult, error) {
	pol, ub, err := c.ResolvePolicy()
	if err != nil {
		return nil, err
	}
	var mutate func(*pipeline.Config)
	if ub {
		mutate = func(cfg *pipeline.Config) { core.ApplyUpperBound(cfg) }
	}
	return r.RunOneCtx(ctx, c.Bench, pol, mutate)
}
