package sim

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dtexl/internal/energy"
	"dtexl/internal/pipeline"
)

// syntheticKey builds a distinct simKey without running a simulation —
// the journal's contract is over keys and JSON lines, not metrics.
func syntheticKey(alias string, seed uint64) simKey {
	cfg := pipeline.DefaultConfig()
	cfg.Width = int(seed) // distinct effective configs → distinct keys
	return simKey{Alias: alias, Seed: seed, Frames: 1, Cfg: cfg}
}

func syntheticResult(n uint64) *simResult {
	return &simResult{
		Metrics: &pipeline.Metrics{Cycles: int64(n), FPS: float64(n) / 3.0},
		Energy:  energy.Breakdown{},
	}
}

// TestJournalConcurrentWriters hammers one journal from many goroutines
// — the dtexld service shares a single journal across its whole runner
// pool — and proves (under -race in CI) that every record lands, the
// file replays completely, and replayed results match what was written.
func TestJournalConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seed := uint64(w*perWriter + i + 1)
				key := syntheticKey("TRu", seed)
				if err := j.record(key, syntheticResult(seed)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				// Concurrent lookups interleave with appends, as the serve
				// path's journal-first reads do.
				if _, ok := j.lookup(key); !ok {
					t.Errorf("writer %d: record %d not readable after append", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got, want := j2.Replayed(), writers*perWriter; got != want {
		t.Fatalf("Replayed() = %d, want %d (concurrent appends interleaved mid-line?)", got, want)
	}
	for seed := uint64(1); seed <= writers*perWriter; seed++ {
		res, ok := j2.lookup(syntheticKey("TRu", seed))
		if !ok {
			t.Fatalf("seed %d missing after replay", seed)
		}
		if res.Metrics.Cycles != int64(seed) {
			t.Fatalf("seed %d replayed cycles = %d, want %d", seed, res.Metrics.Cycles, seed)
		}
	}
}

// TestJournalConcurrentWritersTornTail combines the two recovery
// properties the drain contract needs: concurrent writers followed by a
// torn final line (SIGKILL mid-append) must replay every complete
// record and only the torn one is lost.
func TestJournalConcurrentWritersTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seed := uint64(w*perWriter + i + 1)
				if err := j.record(syntheticKey("CCS", seed), syntheticResult(seed)); err != nil {
					t.Errorf("writer %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()

	// Tear the tail mid-record.
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	defer j2.Close()
	if got, want := j2.Replayed(), writers*perWriter-1; got != want {
		t.Fatalf("Replayed() = %d after torn tail, want %d", got, want)
	}
	// The torn record is re-recordable; everything else was preserved.
	found := 0
	for seed := uint64(1); seed <= writers*perWriter; seed++ {
		if _, ok := j2.lookup(syntheticKey("CCS", seed)); ok {
			found++
		}
	}
	if found != writers*perWriter-1 {
		t.Fatalf("found %d records after torn tail, want %d", found, writers*perWriter-1)
	}
}
