// Package sched implements the quad-scheduling design space of the paper:
// the fine-grained and coarse-grained quad groupings of Fig. 6, which
// partition a tile's quads into four Subtiles (one per Z/Color-buffer
// bank), and the subtile-assignment policies of Fig. 8, which decide
// which shader core renders each Subtile as the frame's tile sequence
// progresses.
package sched

import "fmt"

// NumSubtiles is the number of Subtiles per tile, equal to the number of
// Z-Buffer / Color-Buffer banks and shader cores in the modeled GPU
// (§II-A assumes four parallel raster pipelines).
const NumSubtiles = 4

// Grouping is a static mapping from quad coordinates within a tile to one
// of the four Subtiles. Fine-grained groupings interleave neighbouring
// quads across Subtiles to balance load; coarse-grained groupings keep
// spatially adjacent quads together to preserve texture locality.
type Grouping int

const (
	// FGChecker (Fig. 6a) tiles the 2x2 pattern [0 1 / 2 3]; no quad has a
	// 4-adjacent or diagonal neighbour in the same Subtile... adjacent
	// horizontal/vertical neighbours always differ.
	FGChecker Grouping = iota
	// FGXShift2 (Fig. 6b) interleaves columns 0,1,2,3 and shifts each row
	// by two: no neighbour (including diagonals) shares a Subtile. This is
	// the paper's load-balancing baseline.
	FGXShift2
	// FGXShift1 (Fig. 6c) shifts each row by one; at most two diagonal
	// neighbours share a Subtile.
	FGXShift1
	// FGXShift3 (Fig. 6d) shifts each row by three (the mirror diagonal of
	// FGXShift1).
	FGXShift3
	// FGVPair (Fig. 6e) interleaves 1x2 vertical quad pairs; at most two
	// vertical neighbours share a Subtile.
	FGVPair
	// FGHPair (Fig. 6f) interleaves 2x1 horizontal quad pairs; at most two
	// horizontal neighbours share a Subtile.
	FGHPair
	// CGSquare (Fig. 6i) splits the tile into 2x2 square quadrants — the
	// paper's best coarse-grained grouping for texture locality.
	CGSquare
	// CGXRect (Fig. 6g) splits the tile into four full-width horizontal
	// strips (rectangles elongated in x).
	CGXRect
	// CGYRect (Fig. 6h) splits the tile into four full-height vertical
	// strips (rectangles elongated in y).
	CGYRect
	// CGTri (Fig. 6j) splits the tile into four triangles along its two
	// diagonals.
	CGTri

	numGroupings
)

var groupingNames = [numGroupings]string{
	"FG-checker", "FG-xshift2", "FG-xshift1", "FG-xshift3", "FG-vpair", "FG-hpair",
	"CG-square", "CG-xrect", "CG-yrect", "CG-tri",
}

// String returns the figure-style name of the grouping.
func (g Grouping) String() string {
	if g >= 0 && int(g) < len(groupingNames) {
		return groupingNames[g]
	}
	return fmt.Sprintf("sched.Grouping(%d)", int(g))
}

// Groupings returns all ten groupings in the order they appear in Fig. 6
// (fine-grained first).
func Groupings() []Grouping {
	return []Grouping{
		FGChecker, FGXShift2, FGXShift1, FGXShift3, FGVPair, FGHPair,
		CGSquare, CGXRect, CGYRect, CGTri,
	}
}

// FineGrained reports whether the grouping is one of the fine-grained
// (load-balancing) interleavings.
func (g Grouping) FineGrained() bool { return g <= FGHPair }

// SubtileOf maps quad (qx, qy) inside a tile of qw x qh quads to its
// Subtile label in [0, NumSubtiles). Tile dimensions must be multiples of
// 4 so the four Subtiles are exactly equal-sized, matching the equal-size
// buffer banks (§III-E).
func (g Grouping) SubtileOf(qx, qy, qw, qh int) int {
	switch g {
	case FGChecker:
		return qx&1 | (qy&1)<<1
	case FGXShift2:
		return (qx + 2*qy) & 3
	case FGXShift1:
		return (qx + qy) & 3
	case FGXShift3:
		return (qx + 3*qy) & 3
	case FGVPair:
		return qx&1 | ((qy>>1)&1)<<1
	case FGHPair:
		return (qx>>1)&1 | (qy&1)<<1
	case CGSquare:
		sx := 0
		if qx >= qw/2 {
			sx = 1
		}
		sy := 0
		if qy >= qh/2 {
			sy = 1
		}
		return sx | sy<<1
	case CGXRect:
		return qy / (qh / 4)
	case CGYRect:
		return qx / (qw / 4)
	case CGTri:
		return triSubtile(qx, qy, qw, qh)
	default:
		panic(fmt.Sprintf("sched: unknown grouping %d", int(g)))
	}
}

// triSubtile splits the tile into four triangles by its diagonals:
// label 0 = top, 1 = right, 2 = left, 3 = bottom. Cells whose center lies
// exactly on a diagonal are split by x parity between the two adjacent
// triangles so the partition stays exactly balanced.
func triSubtile(qx, qy, qw, qh int) int {
	// Work in doubled coordinates so cell centers are integers:
	// cx = 2*qx + 1 - qw, cy = 2*qy + 1 - qh.
	cx := 2*qx + 1 - qw
	cy := 2*qy + 1 - qh
	ax, ay := cx, cy
	if ax < 0 {
		ax = -ax
	}
	if ay < 0 {
		ay = -ay
	}
	switch {
	case ax > ay: // strictly left/right
		if cx > 0 {
			return 1
		}
		return 2
	case ay > ax: // strictly top/bottom
		if cy > 0 {
			return 3
		}
		return 0
	default: // on a diagonal: alternate by x parity
		horizontal := qx%2 == 0
		if horizontal {
			if cx > 0 {
				return 1
			}
			return 2
		}
		if cy > 0 {
			return 3
		}
		return 0
	}
}

// MirrorH returns the label permutation induced by mirroring the tile
// horizontally (about the vertical axis): mh[label] is the label that
// occupies the mirrored position. Fine-grained interleavings have no
// meaningful geometric side, so they mirror to the identity.
func (g Grouping) MirrorH() [NumSubtiles]int {
	switch g {
	case CGSquare:
		return [NumSubtiles]int{1, 0, 3, 2}
	case CGYRect:
		return [NumSubtiles]int{3, 2, 1, 0}
	case CGTri:
		return [NumSubtiles]int{0, 2, 1, 3}
	default: // FG groupings and CGXRect are invariant under horizontal mirror
		return [NumSubtiles]int{0, 1, 2, 3}
	}
}

// MirrorV returns the label permutation induced by mirroring the tile
// vertically (about the horizontal axis).
func (g Grouping) MirrorV() [NumSubtiles]int {
	switch g {
	case CGSquare:
		return [NumSubtiles]int{2, 3, 0, 1}
	case CGXRect:
		return [NumSubtiles]int{3, 2, 1, 0}
	case CGTri:
		return [NumSubtiles]int{3, 1, 2, 0}
	default:
		return [NumSubtiles]int{0, 1, 2, 3}
	}
}

// SharedEdgeLabels returns the Subtile labels that touch the given tile
// edge ("left", "right", "top", "bottom"). Used by tests and by the
// shared-edge locality analysis in the examples.
func (g Grouping) SharedEdgeLabels(edge string, qw, qh int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(l int) {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	switch edge {
	case "left":
		for qy := 0; qy < qh; qy++ {
			add(g.SubtileOf(0, qy, qw, qh))
		}
	case "right":
		for qy := 0; qy < qh; qy++ {
			add(g.SubtileOf(qw-1, qy, qw, qh))
		}
	case "top":
		for qx := 0; qx < qw; qx++ {
			add(g.SubtileOf(qx, 0, qw, qh))
		}
	case "bottom":
		for qx := 0; qx < qw; qx++ {
			add(g.SubtileOf(qx, qh-1, qw, qh))
		}
	default:
		panic("sched: unknown edge " + edge)
	}
	return out
}
