package sched

import (
	"testing"

	"dtexl/internal/tileorder"
)

func isPerm(p Perm) bool {
	var seen [NumSubtiles]bool
	for _, v := range p {
		if v < 0 || v >= NumSubtiles || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestAssignerAlwaysYieldsPermutations(t *testing.T) {
	// Property: for every policy, grouping and tile order, the produced
	// label->SC mapping is a permutation on every tile.
	for _, policy := range Assignments() {
		for _, g := range []Grouping{CGSquare, CGYRect, CGXRect, CGTri, FGXShift2} {
			for _, ord := range tileorder.Kinds() {
				seq := tileorder.Sequence(ord, 8, 6)
				a := NewAssigner(policy, g)
				for _, p := range seq {
					perm := a.Next(p)
					if !isPerm(perm) {
						t.Fatalf("policy=%v grouping=%v order=%v: non-permutation %v at tile %v",
							policy, g, ord, perm, p)
					}
				}
			}
		}
	}
}

func TestConstAssignIsIdentityEverywhere(t *testing.T) {
	a := NewAssigner(ConstAssign, CGSquare)
	for _, p := range tileorder.Sequence(tileorder.ZOrder, 4, 4) {
		if perm := a.Next(p); perm != IdentityPerm() {
			t.Fatalf("const assignment produced %v", perm)
		}
	}
}

func TestFlp1SharedEdgePropagation(t *testing.T) {
	// Paper's Fig. 8d example: moving right from a tile with identity
	// assignment, the SCs of the right column (labels 1, 3) must appear on
	// the left column (labels 0, 2) of the next tile.
	a := NewAssigner(Flp1, CGSquare)
	p0 := a.Next(tileorder.Point{X: 0, Y: 0})
	p1 := a.Next(tileorder.Point{X: 1, Y: 0})
	if p1[0] != p0[1] || p1[2] != p0[3] {
		t.Errorf("horizontal flip broken: tile0=%v tile1=%v", p0, p1)
	}
	// Moving down afterwards: bottom row SCs move to the top row.
	p2 := a.Next(tileorder.Point{X: 1, Y: 1})
	if p2[0] != p1[2] || p2[1] != p1[3] {
		t.Errorf("vertical flip broken: tile1=%v tile2=%v", p1, p2)
	}
}

func TestFlp1SharedEdgeAlwaysSameSC(t *testing.T) {
	// Along an S-order walk (always edge-adjacent steps) with CG-square
	// and Flp1, the Subtiles facing the shared edge of consecutive tiles
	// must be assigned to the same SCs.
	seq := tileorder.Sequence(tileorder.SOrder, 10, 6)
	a := NewAssigner(Flp1, CGSquare)
	perms := make([]Perm, len(seq))
	for i, p := range seq {
		perms[i] = a.Next(p)
	}
	for i := 1; i < len(seq); i++ {
		dx := seq[i].X - seq[i-1].X
		dy := seq[i].Y - seq[i-1].Y
		switch {
		case dx == 1: // moved right: prev right column == cur left column
			if perms[i][0] != perms[i-1][1] || perms[i][2] != perms[i-1][3] {
				t.Fatalf("step %d: right-move edge mismatch", i)
			}
		case dx == -1:
			if perms[i][1] != perms[i-1][0] || perms[i][3] != perms[i-1][2] {
				t.Fatalf("step %d: left-move edge mismatch", i)
			}
		case dy == 1:
			if perms[i][0] != perms[i-1][2] || perms[i][1] != perms[i-1][3] {
				t.Fatalf("step %d: down-move edge mismatch", i)
			}
		}
	}
}

// edgeShareCounts returns, per SC, how many consecutive-tile transitions
// give that SC a shared edge (its subtile in the new tile touches the
// edge shared with the previous tile), for CG-square.
func edgeShareCounts(policy Assignment, ord tileorder.Kind, w, h int) [NumSubtiles]int {
	seq := tileorder.Sequence(ord, w, h)
	a := NewAssigner(policy, CGSquare)
	var counts [NumSubtiles]int
	var prevPerm Perm
	for i, p := range seq {
		perm := a.Next(p)
		if i > 0 {
			dx := p.X - seq[i-1].X
			dy := p.Y - seq[i-1].Y
			var labels []int
			switch {
			case dx == 1 && dy == 0:
				labels = []int{0, 2} // left column of new tile
			case dx == -1 && dy == 0:
				labels = []int{1, 3}
			case dy == 1 && dx == 0:
				labels = []int{0, 1} // top row of new tile
			case dy == -1 && dx == 0:
				labels = []int{2, 3}
			}
			for _, l := range labels {
				// Shared edge only counts if the same SC also owned the
				// matching subtile in the previous tile.
				var prevLabel int
				switch {
				case dx == 1:
					prevLabel = l + 1
				case dx == -1:
					prevLabel = l - 1
				case dy == 1:
					prevLabel = l + 2
				default:
					prevLabel = l - 2
				}
				if perm[l] == prevPerm[prevLabel] {
					counts[perm[l]]++
				}
			}
		}
		prevPerm = perm
	}
	return counts
}

func TestFlp2IsFairerThanFlp1(t *testing.T) {
	// The motivation for Flp2 (Fig. 8e): Flp1 permanently favors one SC
	// for edge sharing; Flp2 spreads shared edges across SCs.
	spread := func(c [NumSubtiles]int) int {
		mn, mx := c[0], c[0]
		for _, v := range c[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return mx - mn
	}
	c1 := edgeShareCounts(Flp1, tileorder.HilbertRect, 16, 16)
	c2 := edgeShareCounts(Flp2, tileorder.HilbertRect, 16, 16)
	if spread(c2) >= spread(c1) {
		t.Errorf("flp2 spread %v (%d) not fairer than flp1 %v (%d)", c2, spread(c2), c1, spread(c1))
	}
}

func TestFlp3RotatesEverySixteenTiles(t *testing.T) {
	// Walk a straight horizontal line: without the 16-tile rotation the
	// permutation would alternate with period 2. Flp3 must break that
	// periodicity at tile 16.
	a3 := NewAssigner(Flp3, CGSquare)
	a1 := NewAssigner(Flp1, CGSquare)
	var at16diff bool
	for i := 0; i < 32; i++ {
		p := tileorder.Point{X: i, Y: 0}
		p3 := a3.Next(p)
		p1 := a1.Next(p)
		if i < 16 && p3 != p1 {
			t.Fatalf("flp3 diverged from flp1 before tile 16 (tile %d)", i)
		}
		if i >= 16 && p3 != p1 {
			at16diff = true
		}
	}
	if !at16diff {
		t.Error("flp3 never applied its 16-tile rotation")
	}
}

func TestFlp2YRectReversesOnHorizontalMove(t *testing.T) {
	a := NewAssigner(Flp1, CGYRect)
	p0 := a.Next(tileorder.Point{X: 0, Y: 0})
	p1 := a.Next(tileorder.Point{X: 1, Y: 0})
	// Moving right: strip order reverses, so the new leftmost strip gets
	// the SC of the previous rightmost strip.
	if p1[0] != p0[3] || p1[3] != p0[0] {
		t.Errorf("yrect horizontal flip broken: %v -> %v", p0, p1)
	}
	// Moving down: vertical mirror is identity for vertical strips.
	p2 := a.Next(tileorder.Point{X: 1, Y: 1})
	if p2 != p1 {
		t.Errorf("yrect vertical move should not change assignment: %v -> %v", p1, p2)
	}
}

func TestSCOf(t *testing.T) {
	perm := Perm{3, 2, 1, 0}
	// Quad (0,0) with CG-square is label 0, so SC must be perm[0] = 3.
	if got := SCOf(CGSquare, perm, 0, 0, 16, 16); got != 3 {
		t.Errorf("SCOf = %d, want 3", got)
	}
	if got := SCOf(CGSquare, perm, 15, 15, 16, 16); got != 0 {
		t.Errorf("SCOf = %d, want 0", got)
	}
}

func TestAssignmentString(t *testing.T) {
	if Flp2.String() != "flp2" || ConstAssign.String() != "const" {
		t.Error("assignment names wrong")
	}
	if Assignment(42).String() != "sched.Assignment(42)" {
		t.Errorf("unknown assignment name = %q", Assignment(42).String())
	}
}
