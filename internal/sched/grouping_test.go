package sched

import (
	"testing"
)

const (
	testQW = 16
	testQH = 16
)

func TestGroupingPartitionIsBalanced(t *testing.T) {
	// Every grouping must split the quad grid into four exactly equal
	// Subtiles: the Z/Color buffer banks are equal-sized (§III-E).
	for _, g := range Groupings() {
		for _, dim := range []struct{ w, h int }{{16, 16}, {8, 8}, {4, 4}} {
			var counts [NumSubtiles]int
			for qy := 0; qy < dim.h; qy++ {
				for qx := 0; qx < dim.w; qx++ {
					s := g.SubtileOf(qx, qy, dim.w, dim.h)
					if s < 0 || s >= NumSubtiles {
						t.Fatalf("%v: label %d out of range", g, s)
					}
					counts[s]++
				}
			}
			want := dim.w * dim.h / NumSubtiles
			for s, c := range counts {
				if c != want {
					t.Errorf("%v %dx%d: subtile %d has %d quads, want %d", g, dim.w, dim.h, s, c, want)
				}
			}
		}
	}
}

func TestFineGrainedFlag(t *testing.T) {
	fg := map[Grouping]bool{
		FGChecker: true, FGXShift2: true, FGXShift1: true, FGXShift3: true,
		FGVPair: true, FGHPair: true,
		CGSquare: false, CGXRect: false, CGYRect: false, CGTri: false,
	}
	for g, want := range fg {
		if g.FineGrained() != want {
			t.Errorf("%v.FineGrained() = %v, want %v", g, g.FineGrained(), want)
		}
	}
}

// sameSubtileNeighbors counts, over all quads, neighbours (in the given
// offsets) that share the quad's Subtile.
func sameSubtileNeighbors(g Grouping, offsets [][2]int) int {
	count := 0
	for qy := 0; qy < testQH; qy++ {
		for qx := 0; qx < testQW; qx++ {
			s := g.SubtileOf(qx, qy, testQW, testQH)
			for _, off := range offsets {
				nx, ny := qx+off[0], qy+off[1]
				if nx < 0 || nx >= testQW || ny < 0 || ny >= testQH {
					continue
				}
				if g.SubtileOf(nx, ny, testQW, testQH) == s {
					count++
				}
			}
		}
	}
	return count
}

var cardinal = [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
var diagonal = [][2]int{{1, 1}, {-1, 1}, {1, -1}, {-1, -1}}

func TestFGCheckerAndXShift2HaveNoAdjacentSame(t *testing.T) {
	// Fig. 6a/6b property: no 4-adjacent neighbour shares the Subtile.
	for _, g := range []Grouping{FGChecker, FGXShift2} {
		if n := sameSubtileNeighbors(g, cardinal); n != 0 {
			t.Errorf("%v: %d cardinal same-subtile neighbours, want 0", g, n)
		}
	}
	// FG-xshift2 additionally has no diagonal same-subtile neighbours.
	if n := sameSubtileNeighbors(FGXShift2, diagonal); n != 0 {
		t.Errorf("FG-xshift2: %d diagonal same-subtile neighbours, want 0", n)
	}
}

func TestFGShiftDiagonalBound(t *testing.T) {
	// Fig. 6c/6d property: cardinal neighbours never share; at most two
	// diagonal neighbours do.
	for _, g := range []Grouping{FGXShift1, FGXShift3} {
		if n := sameSubtileNeighbors(g, cardinal); n != 0 {
			t.Errorf("%v: cardinal same-subtile neighbours = %d, want 0", g, n)
		}
		for qy := 1; qy < testQH-1; qy++ {
			for qx := 1; qx < testQW-1; qx++ {
				s := g.SubtileOf(qx, qy, testQW, testQH)
				same := 0
				for _, off := range diagonal {
					if g.SubtileOf(qx+off[0], qy+off[1], testQW, testQH) == s {
						same++
					}
				}
				if same > 2 {
					t.Fatalf("%v: quad (%d,%d) has %d same-subtile diagonal neighbours", g, qx, qy, same)
				}
			}
		}
	}
}

func TestFGPairVerticalHorizontalBound(t *testing.T) {
	// Fig. 6e/6f property: at most 2 vertical (resp. horizontal)
	// neighbours share; the other cardinal direction never does.
	if n := sameSubtileNeighbors(FGVPair, [][2]int{{1, 0}, {-1, 0}}); n != 0 {
		t.Errorf("FG-vpair: horizontal same-subtile neighbours = %d, want 0", n)
	}
	if n := sameSubtileNeighbors(FGHPair, [][2]int{{0, 1}, {0, -1}}); n != 0 {
		t.Errorf("FG-hpair: vertical same-subtile neighbours = %d, want 0", n)
	}
	for qy := 0; qy < testQH; qy++ {
		for qx := 0; qx < testQW; qx++ {
			s := FGVPair.SubtileOf(qx, qy, testQW, testQH)
			same := 0
			for _, off := range [][2]int{{0, 1}, {0, -1}} {
				ny := qy + off[1]
				if ny >= 0 && ny < testQH && FGVPair.SubtileOf(qx, ny, testQW, testQH) == s {
					same++
				}
			}
			if same > 1 {
				t.Fatalf("FG-vpair: quad (%d,%d) has %d same-subtile vertical neighbours (pair size exceeded)", qx, qy, same)
			}
		}
	}
}

func TestCGSquareQuadrants(t *testing.T) {
	cases := []struct {
		qx, qy int
		want   int
	}{
		{0, 0, 0}, {7, 7, 0}, {8, 0, 1}, {15, 7, 1},
		{0, 8, 2}, {7, 15, 2}, {8, 8, 3}, {15, 15, 3},
	}
	for _, c := range cases {
		if got := CGSquare.SubtileOf(c.qx, c.qy, testQW, testQH); got != c.want {
			t.Errorf("CG-square (%d,%d) = %d, want %d", c.qx, c.qy, got, c.want)
		}
	}
}

func TestCGRectStrips(t *testing.T) {
	for qy := 0; qy < testQH; qy++ {
		want := qy / 4
		for qx := 0; qx < testQW; qx++ {
			if got := CGXRect.SubtileOf(qx, qy, testQW, testQH); got != want {
				t.Fatalf("CG-xrect (%d,%d) = %d, want %d", qx, qy, got, want)
			}
		}
	}
	for qx := 0; qx < testQW; qx++ {
		want := qx / 4
		for qy := 0; qy < testQH; qy++ {
			if got := CGYRect.SubtileOf(qx, qy, testQW, testQH); got != want {
				t.Fatalf("CG-yrect (%d,%d) = %d, want %d", qx, qy, got, want)
			}
		}
	}
}

func TestCGTriRegions(t *testing.T) {
	// Corners of each triangular region (centers far from the diagonals).
	cases := []struct {
		qx, qy int
		want   int
	}{
		{7, 0, 0}, {8, 0, 0}, // top
		{15, 7, 1}, {15, 8, 1}, // right
		{0, 7, 2}, {0, 8, 2}, // left
		{7, 15, 3}, {8, 15, 3}, // bottom
	}
	for _, c := range cases {
		if got := CGTri.SubtileOf(c.qx, c.qy, testQW, testQH); got != c.want {
			t.Errorf("CG-tri (%d,%d) = %d, want %d", c.qx, c.qy, got, c.want)
		}
	}
}

// contiguity measures how clustered a grouping is: the number of
// same-subtile cardinal neighbour pairs. Coarse groupings must beat fine
// groupings on this — that is the texture-locality argument of §III.
func TestCoarseGroupingsAreMoreContiguous(t *testing.T) {
	worstCG := 1 << 30
	bestFG := -1
	for _, g := range Groupings() {
		n := sameSubtileNeighbors(g, cardinal)
		if g.FineGrained() {
			if n > bestFG {
				bestFG = n
			}
		} else if n < worstCG {
			worstCG = n
		}
	}
	if worstCG <= bestFG {
		t.Errorf("least contiguous CG (%d) not above most contiguous FG (%d)", worstCG, bestFG)
	}
}

func TestMirrorsArePermutationsAndInvolutions(t *testing.T) {
	for _, g := range Groupings() {
		for _, m := range [][NumSubtiles]int{g.MirrorH(), g.MirrorV()} {
			var seen [NumSubtiles]bool
			for _, v := range m {
				if v < 0 || v >= NumSubtiles || seen[v] {
					t.Fatalf("%v: mirror %v is not a permutation", g, m)
				}
				seen[v] = true
			}
			for i := 0; i < NumSubtiles; i++ {
				if m[m[i]] != i {
					t.Fatalf("%v: mirror %v is not an involution", g, m)
				}
			}
		}
	}
}

func TestMirrorMatchesGeometry(t *testing.T) {
	// MirrorH must agree with geometrically reflecting quad coordinates
	// for the coarse groupings (where flipping is meaningful).
	for _, g := range []Grouping{CGSquare, CGXRect, CGYRect, CGTri} {
		mh := g.MirrorH()
		mv := g.MirrorV()
		for qy := 0; qy < testQH; qy++ {
			for qx := 0; qx < testQW; qx++ {
				s := g.SubtileOf(qx, qy, testQW, testQH)
				hs := g.SubtileOf(testQW-1-qx, qy, testQW, testQH)
				vs := g.SubtileOf(qx, testQH-1-qy, testQW, testQH)
				if g != CGTri {
					// CG-tri's diagonal tie-breaking is parity-based and not
					// exactly mirror-symmetric on the diagonals themselves.
					if mh[s] != hs {
						t.Fatalf("%v: MirrorH mismatch at (%d,%d): perm says %d, geometry says %d", g, qx, qy, mh[s], hs)
					}
					if mv[s] != vs {
						t.Fatalf("%v: MirrorV mismatch at (%d,%d)", g, qx, qy)
					}
				} else if mh[s] != hs && onDiagonal(qx, qy, testQW, testQH) == false {
					t.Fatalf("CG-tri: MirrorH mismatch off-diagonal at (%d,%d)", qx, qy)
				}
			}
		}
	}
}

func onDiagonal(qx, qy, qw, qh int) bool {
	cx := 2*qx + 1 - qw
	cy := 2*qy + 1 - qh
	if cx < 0 {
		cx = -cx
	}
	if cy < 0 {
		cy = -cy
	}
	return cx == cy
}

func TestSharedEdgeLabels(t *testing.T) {
	// CG-square: left edge touches quadrants 0 and 2; right edge 1 and 3.
	left := CGSquare.SharedEdgeLabels("left", testQW, testQH)
	if len(left) != 2 || left[0] != 0 || left[1] != 2 {
		t.Errorf("CG-square left edge labels = %v", left)
	}
	right := CGSquare.SharedEdgeLabels("right", testQW, testQH)
	if len(right) != 2 || right[0] != 1 || right[1] != 3 {
		t.Errorf("CG-square right edge labels = %v", right)
	}
	// CG-yrect: left edge is strip 0 only.
	l := CGYRect.SharedEdgeLabels("left", testQW, testQH)
	if len(l) != 1 || l[0] != 0 {
		t.Errorf("CG-yrect left edge labels = %v", l)
	}
	// FG-xshift2: the top and bottom edges interleave all four subtiles,
	// and the left/right edges alternate two (rows are shifted by 2).
	for _, e := range []string{"top", "bottom"} {
		if n := len(FGXShift2.SharedEdgeLabels(e, testQW, testQH)); n != 4 {
			t.Errorf("FG-xshift2 %s edge touches %d subtiles, want 4", e, n)
		}
	}
	for _, e := range []string{"left", "right"} {
		if n := len(FGXShift2.SharedEdgeLabels(e, testQW, testQH)); n != 2 {
			t.Errorf("FG-xshift2 %s edge touches %d subtiles, want 2", e, n)
		}
	}
}

func TestGroupingString(t *testing.T) {
	if FGXShift2.String() != "FG-xshift2" {
		t.Errorf("FGXShift2.String() = %q", FGXShift2.String())
	}
	if CGSquare.String() != "CG-square" {
		t.Errorf("CGSquare.String() = %q", CGSquare.String())
	}
	if Grouping(99).String() != "sched.Grouping(99)" {
		t.Errorf("unknown grouping name = %q", Grouping(99).String())
	}
}
