package sched

import (
	"fmt"

	"dtexl/internal/tileorder"
)

// Assignment selects how Subtile labels are (re)assigned to shader cores
// as the tile sequence progresses (§III-D, Fig. 8).
type Assignment int

const (
	// ConstAssign keeps the same label->SC mapping for every tile
	// (Figs. 8a, 8c, 8g).
	ConstAssign Assignment = iota
	// Flp1 mirrors the mapping across the edge shared with the previous
	// tile, so adjacent Subtiles of consecutive tiles land on the same SC
	// (Figs. 8b, 8d). One SC ends up always owning the shared edge.
	Flp1
	// Flp2 is Flp1 plus, on every even->odd tile transition, a swap of the
	// two SCs on the non-shared side, so no SC is permanently favored
	// (Figs. 8e, 8h).
	Flp2
	// Flp3 is Flp1 plus a 180-degree rotation of all four Subtiles every
	// 16 tiles (Fig. 8f).
	Flp3

	numAssignments
)

var assignmentNames = [numAssignments]string{"const", "flp1", "flp2", "flp3"}

// String returns the figure-style suffix of the assignment policy.
func (a Assignment) String() string {
	if a >= 0 && int(a) < len(assignmentNames) {
		return assignmentNames[a]
	}
	return fmt.Sprintf("sched.Assignment(%d)", int(a))
}

// Assignments returns all assignment policies.
func Assignments() []Assignment {
	return []Assignment{ConstAssign, Flp1, Flp2, Flp3}
}

// Perm maps a Subtile label to the shader core that renders it.
type Perm [NumSubtiles]int

// IdentityPerm assigns label i to SC i.
func IdentityPerm() Perm { return Perm{0, 1, 2, 3} }

// compose returns the permutation p∘q: (p∘q)[i] = p[q[i]].
func compose(p Perm, q [NumSubtiles]int) Perm {
	var r Perm
	for i := 0; i < NumSubtiles; i++ {
		r[i] = p[q[i]]
	}
	return r
}

// Assigner walks a frame's tile sequence and produces the label->SC
// permutation for each tile. It is stateful: flip policies depend on the
// path taken through the frame.
type Assigner struct {
	policy   Assignment
	grouping Grouping
	perm     Perm
	idx      int
	prev     tileorder.Point
	started  bool
}

// NewAssigner returns an Assigner for one frame. Call Next once per tile,
// in tile-sequence order.
func NewAssigner(policy Assignment, grouping Grouping) *Assigner {
	return &Assigner{policy: policy, grouping: grouping, perm: IdentityPerm()}
}

// Next advances to the tile at cur and returns the Subtile label -> SC
// permutation to use for it.
func (a *Assigner) Next(cur tileorder.Point) Perm {
	if a.policy == ConstAssign {
		a.idx++
		return IdentityPerm()
	}
	if !a.started {
		a.started = true
		a.prev = cur
		a.idx++
		return a.perm
	}
	dx := cur.X - a.prev.X
	dy := cur.Y - a.prev.Y
	// Mirror across every axis along which we moved. For the usual
	// edge-adjacent steps this is exactly the paper's "flip along the
	// shared edge"; for the occasional long or diagonal jumps of Z-order
	// it mirrors along both axes, keeping the policy total.
	if dx != 0 {
		a.perm = compose(a.perm, a.grouping.MirrorH())
	}
	if dy != 0 {
		a.perm = compose(a.perm, a.grouping.MirrorV())
	}
	switch a.policy {
	case Flp2:
		// On even->odd transitions additionally exchange the SCs on the
		// non-shared side so edge ownership rotates among SCs (Fig. 8e).
		if a.idx%2 == 0 {
			a.perm = compose(a.perm, a.nonSharedSwap(dx, dy))
		}
	case Flp3:
		// Rotate everything 180 degrees every 16 tiles (Fig. 8f).
		if a.idx%16 == 0 {
			a.perm = compose(a.perm, compose(Perm(a.grouping.MirrorH()), a.grouping.MirrorV()))
		}
	}
	a.prev = cur
	a.idx++
	return a.perm
}

// nonSharedSwap returns the label permutation that exchanges the two
// Subtiles on the side opposite the shared edge. For groupings where the
// notion does not apply (mirror is identity) it returns the identity.
func (a *Assigner) nonSharedSwap(dx, dy int) [NumSubtiles]int {
	id := [NumSubtiles]int{0, 1, 2, 3}
	switch a.grouping {
	case CGSquare:
		if dx != 0 {
			// Moving horizontally: the shared edge is a column; swap the two
			// labels of the opposite column vertically.
			if dx > 0 {
				return [NumSubtiles]int{0, 3, 2, 1} // swap right column labels 1,3
			}
			return [NumSubtiles]int{2, 1, 0, 3} // swap left column labels 0,2
		}
		if dy != 0 {
			if dy > 0 {
				return [NumSubtiles]int{0, 1, 3, 2} // swap bottom row labels 2,3
			}
			return [NumSubtiles]int{1, 0, 2, 3} // swap top row labels 0,1
		}
	case CGYRect:
		// Vertical strips: the non-shared side is the strip farthest from
		// the shared edge; swapping the two innermost strips rotates edge
		// ownership (Fig. 8h).
		if dx != 0 {
			return [NumSubtiles]int{0, 2, 1, 3}
		}
	case CGXRect:
		if dy != 0 {
			return [NumSubtiles]int{0, 2, 1, 3}
		}
	}
	return id
}

// SCOf is a convenience helper combining a grouping, a permutation and a
// quad position: it returns the shader core for quad (qx, qy).
func SCOf(g Grouping, p Perm, qx, qy, qw, qh int) int {
	return p[g.SubtileOf(qx, qy, qw, qh)]
}
