package netauth

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"
)

// GenerateSelfSigned creates a self-signed ECDSA P-256 certificate
// valid for the given hosts (DNS names or IP literals) and duration,
// returned as PEM blocks. The certificate is marked as its own CA, so
// the same cert.pem doubles as the -tls-ca trust bundle — the one-file
// deployment story the CI jobs and tests use.
func GenerateSelfSigned(hosts []string, validFor time.Duration) (certPEM, keyPEM []byte, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("netauth: generate key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, fmt.Errorf("netauth: serial: %w", err)
	}
	now := time.Now()
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "dtexl self-signed", Organization: []string{"dtexl"}},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(validFor),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, fmt.Errorf("netauth: create certificate: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, fmt.Errorf("netauth: marshal key: %w", err)
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	return certPEM, keyPEM, nil
}

// WriteSelfSigned generates a self-signed certificate for hosts and
// writes the PEM pair to certPath and keyPath (key mode 0600).
func WriteSelfSigned(certPath, keyPath string, hosts []string, validFor time.Duration) error {
	certPEM, keyPEM, err := GenerateSelfSigned(hosts, validFor)
	if err != nil {
		return err
	}
	if err := os.WriteFile(certPath, certPEM, 0o644); err != nil {
		return fmt.Errorf("netauth: write cert: %w", err)
	}
	if err := os.WriteFile(keyPath, keyPEM, 0o600); err != nil {
		return fmt.Errorf("netauth: write key: %w", err)
	}
	return nil
}
