// Command gencert writes a self-signed TLS certificate/key pair for
// local and CI deployments of the dtexl services. The certificate is
// its own CA, so the emitted cert.pem is also the -tls-ca bundle
// clients verify against:
//
//	go run ./internal/netauth/gencert -cert tls.crt -key tls.key \
//	       -hosts 127.0.0.1,localhost
//	dtexlcoord -tls-cert tls.crt -tls-key tls.key ...
//	dtexld     -tls-ca tls.crt ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dtexl/internal/netauth"
)

func main() {
	var (
		cert  = flag.String("cert", "tls.crt", "output certificate path (PEM)")
		key   = flag.String("key", "tls.key", "output private key path (PEM, mode 0600)")
		hosts = flag.String("hosts", "127.0.0.1,localhost", "comma-separated DNS names and IPs the cert is valid for")
		valid = flag.Duration("valid-for", 24*time.Hour, "certificate lifetime")
	)
	flag.Parse()
	if err := netauth.WriteSelfSigned(*cert, *key, strings.Split(*hosts, ","), *valid); err != nil {
		fmt.Fprintln(os.Stderr, "gencert:", err)
		os.Exit(1)
	}
	fmt.Printf("gencert: wrote %s and %s for %s\n", *cert, *key, *hosts)
}
