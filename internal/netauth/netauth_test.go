package netauth

import (
	"crypto/tls"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

func TestMiddlewareEnforcesToken(t *testing.T) {
	h := Middleware("s3cret", nil, okHandler())
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/thing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: got %d, want 401", resp.StatusCode)
	}
	var body Unauthenticated
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("401 body not JSON: %v", err)
	}
	if body.Kind != KindUnauthenticated {
		t.Fatalf("401 kind = %q, want %q", body.Kind, KindUnauthenticated)
	}
	if got := resp.Header.Get("WWW-Authenticate"); got != Scheme {
		t.Fatalf("WWW-Authenticate = %q, want %q", got, Scheme)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/thing", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: got %d, want 401", resp2.StatusCode)
	}

	req.Header.Set("Authorization", "Bearer s3cret")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("right token: got %d, want 200", resp3.StatusCode)
	}
}

func TestMiddlewareOpenPredicates(t *testing.T) {
	open := Or(OpenPaths("/healthz"), OpenReadOnly)
	h := Middleware("tok", open, okHandler())
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/healthz", http.StatusOK},
		{http.MethodGet, "/api/stats", http.StatusOK}, // read-only open
		{http.MethodPost, "/api/ingest", http.StatusUnauthorized},
		{http.MethodPost, "/healthz", http.StatusOK}, // exact path open regardless of method
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: got %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestMiddlewareEmptyTokenPassThrough(t *testing.T) {
	h := Middleware("", nil, okHandler())
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/write", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auth off: got %d, want 200", resp.StatusCode)
	}
}

func TestTransportInjectsToken(t *testing.T) {
	var seen string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get("Authorization")
	}))
	defer srv.Close()

	c := &http.Client{Transport: &Transport{Token: "abc"}}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seen != "Bearer abc" {
		t.Fatalf("Authorization = %q, want %q", seen, "Bearer abc")
	}
}

func TestEqualToken(t *testing.T) {
	if !EqualToken("a", "a") {
		t.Fatal("equal tokens reported unequal")
	}
	if EqualToken("a", "b") || EqualToken("a", "aa") {
		t.Fatal("unequal tokens reported equal")
	}
}

func TestTLSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cert := filepath.Join(dir, "tls.crt")
	key := filepath.Join(dir, "tls.key")
	if err := WriteSelfSigned(cert, key, []string{"127.0.0.1", "localhost"}, time.Hour); err != nil {
		t.Fatal(err)
	}

	srvCfg, err := ServerTLS(cert, key, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(okHandler())
	srv.TLS = srvCfg
	srv.StartTLS()
	defer srv.Close()

	// Self-signed cert doubles as the CA bundle.
	cliCfg, err := ClientTLS(cert, "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.TLSClientConfig = cliCfg
	c := &http.Client{Transport: tr}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("TLS round trip: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("TLS round trip: got %d", resp.StatusCode)
	}
}

func TestMutualTLS(t *testing.T) {
	dir := t.TempDir()
	cert := filepath.Join(dir, "tls.crt")
	key := filepath.Join(dir, "tls.key")
	if err := WriteSelfSigned(cert, key, []string{"127.0.0.1", "localhost"}, time.Hour); err != nil {
		t.Fatal(err)
	}

	srvCfg, err := ServerTLS(cert, key, cert) // require client certs signed by our own CA
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(okHandler())
	srv.TLS = srvCfg
	srv.StartTLS()
	defer srv.Close()

	// Without a client cert the handshake (or first read) must fail.
	noCert, err := ClientTLS(cert, "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.TLSClientConfig = noCert
	if resp, err := (&http.Client{Transport: tr}).Get(srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("mTLS server accepted a client without a certificate")
	}

	withCert, err := ClientTLS(cert, cert, key, false)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := http.DefaultTransport.(*http.Transport).Clone()
	tr2.TLSClientConfig = withCert
	resp, err := (&http.Client{Transport: tr2}).Get(srv.URL)
	if err != nil {
		t.Fatalf("mTLS with client cert: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mTLS with client cert: got %d", resp.StatusCode)
	}
}

func TestServerTLSPartialConfig(t *testing.T) {
	if _, err := ServerTLS("cert-only", "", ""); err == nil {
		t.Fatal("cert without key accepted")
	}
	if _, err := ServerTLS("", "", "ca.pem"); err == nil {
		t.Fatal("client CA without cert/key accepted")
	}
	cfg, err := ServerTLS("", "", "")
	if err != nil || cfg != nil {
		t.Fatalf("all-empty: got cfg=%v err=%v, want nil,nil", cfg, err)
	}
}

func TestFlagsTokenResolution(t *testing.T) {
	dir := t.TempDir()
	tokFile := filepath.Join(dir, "token")
	if err := os.WriteFile(tokFile, []byte("from-file\n"), 0o600); err != nil {
		t.Fatal(err)
	}

	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-auth-token", "inline", "-auth-token-file", tokFile}); err != nil {
		t.Fatal(err)
	}
	tok, err := f.Token()
	if err != nil {
		t.Fatal(err)
	}
	if tok != "from-file" {
		t.Fatalf("token = %q, want file contents to win (trimmed)", tok)
	}

	f2 := Flags{TokenFlag: "inline"}
	tok2, err := f2.Token()
	if err != nil || tok2 != "inline" {
		t.Fatalf("inline token = %q err=%v", tok2, err)
	}

	f3 := Flags{TokenFile: filepath.Join(dir, "missing")}
	if _, err := f3.Token(); err == nil {
		t.Fatal("missing token file accepted")
	}
}

func TestFlagsClient(t *testing.T) {
	var seen string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get("Authorization")
	}))
	defer srv.Close()

	f := Flags{TokenFlag: "tok"}
	c, err := f.Client(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seen != "Bearer tok" {
		t.Fatalf("Authorization = %q", seen)
	}
}

func TestURLScheme(t *testing.T) {
	if URLScheme(nil) != "http" {
		t.Fatal("nil config should be http")
	}
	if URLScheme(&tls.Config{}) != "https" {
		t.Fatal("non-nil config should be https")
	}
}
