// Package netauth is the shared transport-hardening layer for every
// networked surface in the repo: the fleet protocol (internal/fleet),
// the simulation service (internal/serve), and the continuous-perf
// service (internal/perfdb).
//
// It provides exactly two mechanisms, applied uniformly:
//
//   - Bearer-token authentication: a single shared secret per
//     deployment, checked in constant time. Servers wrap their handler
//     in Middleware; clients wrap their transport in Transport. Which
//     paths stay open without a token (health probes, read-only stats)
//     is each server's choice, expressed as an open-path predicate.
//
//   - TLS, optionally mutual: ServerTLS builds a server config from a
//     cert/key pair plus an optional client CA (presence of the CA
//     makes client certificates mandatory — mTLS); ClientTLS builds the
//     dialing side from a trust bundle and an optional client cert.
//
// The Flags struct registers the same flag names on every command
// (-auth-token, -auth-token-file, -tls-cert, -tls-key, -tls-ca,
// -tls-client-ca, -tls-insecure), so operating the fleet, the serving
// API and the perf service is one set of habits, not three.
package netauth

import (
	"crypto/sha256"
	"crypto/subtle"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Scheme is the Authorization scheme the middleware accepts.
const Scheme = "Bearer"

// EqualToken compares two tokens in constant time. Both sides are
// hashed first so the comparison leaks neither contents nor length.
func EqualToken(a, b string) bool {
	ha := sha256.Sum256([]byte(a))
	hb := sha256.Sum256([]byte(b))
	return subtle.ConstantTimeCompare(ha[:], hb[:]) == 1
}

// RequestToken extracts the bearer token from a request
// ("Authorization: Bearer <token>"); empty when absent or malformed.
func RequestToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	if h == "" {
		return ""
	}
	parts := strings.SplitN(h, " ", 2)
	if len(parts) != 2 || !strings.EqualFold(parts[0], Scheme) {
		return ""
	}
	return strings.TrimSpace(parts[1])
}

// Unauthenticated is the JSON body of every 401 the middleware writes.
// Kind matches the serve package's error-body convention so clients can
// switch on it without importing serve.
type Unauthenticated struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// KindUnauthenticated is the machine-readable kind of a 401 body.
const KindUnauthenticated = "unauthenticated"

// Middleware enforces the bearer token on every request that the open
// predicate does not exempt. An empty token disables enforcement
// entirely (auth off). open may be nil (nothing exempt). The 401 body
// is JSON and carries WWW-Authenticate so curl users see why.
func Middleware(token string, open func(*http.Request) bool, next http.Handler) http.Handler {
	if token == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if open != nil && open(r) {
			next.ServeHTTP(w, r)
			return
		}
		if !EqualToken(RequestToken(r), token) {
			w.Header().Set("WWW-Authenticate", Scheme)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnauthorized)
			fmt.Fprintf(w, `{"error":"missing or invalid bearer token","kind":%q}`+"\n", KindUnauthenticated)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// OpenReadOnly is the common open-path predicate: GET/HEAD requests
// pass without a token, writes require one. Servers whose reads are
// public by default (fleet stats, perf dashboards) use this.
func OpenReadOnly(r *http.Request) bool {
	return r.Method == http.MethodGet || r.Method == http.MethodHead
}

// OpenPaths builds an open predicate from exact request paths —
// typically health probes ("/healthz", "/readyz").
func OpenPaths(paths ...string) func(*http.Request) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(r *http.Request) bool { return set[r.URL.Path] }
}

// Or combines open predicates: a request is open if any predicate says
// so. Nil predicates are skipped.
func Or(preds ...func(*http.Request) bool) func(*http.Request) bool {
	return func(r *http.Request) bool {
		for _, p := range preds {
			if p != nil && p(r) {
				return true
			}
		}
		return false
	}
}

// Transport is an http.RoundTripper that attaches the bearer token to
// every outgoing request. A zero token makes it a transparent pass-
// through, so clients can wrap unconditionally.
type Transport struct {
	// Token is the shared secret; empty disables injection.
	Token string
	// Base is the underlying transport (nil = http.DefaultTransport).
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper. The request is cloned before
// the header write, per the RoundTripper contract.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Token == "" {
		return base.RoundTrip(req)
	}
	req = req.Clone(req.Context())
	req.Header.Set("Authorization", Scheme+" "+t.Token)
	return base.RoundTrip(req)
}

// ServerTLS builds a server-side TLS config from a PEM cert/key pair.
// When clientCAFile is non-empty the returned config also requires and
// verifies client certificates against that bundle (mTLS). Both files
// empty returns (nil, nil): TLS off.
func ServerTLS(certFile, keyFile, clientCAFile string) (*tls.Config, error) {
	if certFile == "" && keyFile == "" {
		if clientCAFile != "" {
			return nil, fmt.Errorf("netauth: -tls-client-ca needs -tls-cert and -tls-key")
		}
		return nil, nil
	}
	if certFile == "" || keyFile == "" {
		return nil, fmt.Errorf("netauth: -tls-cert and -tls-key must be set together")
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("netauth: load server cert: %w", err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if clientCAFile != "" {
		pool, err := loadCertPool(clientCAFile)
		if err != nil {
			return nil, err
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// ClientTLS builds the dialing side: caFile is the trust bundle for
// server verification (empty = system roots), certFile/keyFile an
// optional client certificate for mTLS, and insecure skips server
// verification (testing only). All-empty and secure returns (nil, nil):
// the plain default transport suffices.
func ClientTLS(caFile, certFile, keyFile string, insecure bool) (*tls.Config, error) {
	if caFile == "" && certFile == "" && keyFile == "" && !insecure {
		return nil, nil
	}
	if (certFile == "") != (keyFile == "") {
		return nil, fmt.Errorf("netauth: -tls-cert and -tls-key must be set together")
	}
	cfg := &tls.Config{MinVersion: tls.VersionTLS12, InsecureSkipVerify: insecure}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = pool
	}
	if certFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("netauth: load client cert: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

func loadCertPool(path string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("netauth: read CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("netauth: no certificates in %s", path)
	}
	return pool, nil
}
