package netauth

import (
	"crypto/tls"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"
)

// Flags is the uniform auth/TLS flag surface every networked command
// registers. One deployment shares one token and one CA, so a process
// that is both a server (its own API) and a client (dialing the
// coordinator) uses the same flag values for both roles:
//
//	-auth-token / -auth-token-file   shared bearer token
//	-tls-cert / -tls-key             this process's certificate
//	-tls-ca                          trust bundle for servers it dials
//	-tls-client-ca                   require client certs signed by this (mTLS)
//	-tls-insecure                    skip server verification (testing)
type Flags struct {
	TokenFlag string
	TokenFile string
	Cert      string
	Key       string
	CA        string
	ClientCA  string
	Insecure  bool
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TokenFlag, "auth-token", "", "shared bearer token; when set, write endpoints require it")
	fs.StringVar(&f.TokenFile, "auth-token-file", "", "read the bearer token from this file (trailing whitespace stripped; overrides -auth-token)")
	fs.StringVar(&f.Cert, "tls-cert", "", "PEM certificate for this process (serve TLS; also presented as the client certificate under mTLS)")
	fs.StringVar(&f.Key, "tls-key", "", "PEM private key matching -tls-cert")
	fs.StringVar(&f.CA, "tls-ca", "", "PEM trust bundle for verifying servers this process dials (empty = system roots)")
	fs.StringVar(&f.ClientCA, "tls-client-ca", "", "PEM bundle; when set, clients must present a certificate signed by it (mTLS)")
	fs.BoolVar(&f.Insecure, "tls-insecure", false, "skip server certificate verification (testing only)")
}

// Token resolves the bearer token: the token file wins over the inline
// flag; both empty means auth off.
func (f *Flags) Token() (string, error) {
	if f.TokenFile != "" {
		b, err := os.ReadFile(f.TokenFile)
		if err != nil {
			return "", fmt.Errorf("netauth: -auth-token-file: %w", err)
		}
		tok := strings.TrimRight(string(b), " \t\r\n")
		if tok == "" {
			return "", fmt.Errorf("netauth: -auth-token-file %s is empty", f.TokenFile)
		}
		return tok, nil
	}
	return f.TokenFlag, nil
}

// ServerTLS resolves the serve-side TLS config (nil when TLS is off).
func (f *Flags) ServerTLS() (*tls.Config, error) {
	return ServerTLS(f.Cert, f.Key, f.ClientCA)
}

// ClientTLS resolves the dial-side TLS config (nil when default
// transport verification suffices).
func (f *Flags) ClientTLS() (*tls.Config, error) {
	return ClientTLS(f.CA, f.Cert, f.Key, f.Insecure)
}

// Client builds an *http.Client carrying the token and dial-side TLS
// config; timeout <= 0 means no client timeout.
func (f *Flags) Client(timeout time.Duration) (*http.Client, error) {
	tok, err := f.Token()
	if err != nil {
		return nil, err
	}
	tlsCfg, err := f.ClientTLS()
	if err != nil {
		return nil, err
	}
	var base http.RoundTripper
	if tlsCfg != nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.TLSClientConfig = tlsCfg
		base = t
	}
	c := &http.Client{Transport: &Transport{Token: tok, Base: base}}
	if timeout > 0 {
		c.Timeout = timeout
	}
	return c, nil
}

// Serve runs srv on ln, upgrading to TLS when tlsCfg is non-nil. The
// cert and key already live inside tlsCfg, so ServeTLS gets empty
// paths.
func Serve(srv *http.Server, ln net.Listener, tlsCfg *tls.Config) error {
	if tlsCfg != nil {
		srv.TLSConfig = tlsCfg
		return srv.ServeTLS(ln, "", "")
	}
	return srv.Serve(ln)
}

// URLScheme returns the scheme a client should use against a server
// configured with tlsCfg — a convenience for log lines.
func URLScheme(tlsCfg *tls.Config) string {
	if tlsCfg != nil {
		return "https"
	}
	return "http"
}
