package energy

import (
	"testing"
	"testing/quick"

	"dtexl/internal/pipeline"
)

func sampleEvents() pipeline.EventCounts {
	return pipeline.EventCounts{
		ALUInstructions: 5_000_000,
		TextureSamples:  460_000,
		L1TexAccesses:   1_000_000,
		L2Accesses:      534_000,
		DRAMAccesses:    50_000,
		VertexFetches:   10_000,
		QuadsShaded:     184_000,
		QuadsCulled:     338_000,
		FlushedLines:    23_000,
		FrameCycles:     1_900_000,
	}
}

func TestEstimatePositive(t *testing.T) {
	b := DefaultModel().Estimate(sampleEvents())
	if b.Total() <= 0 {
		t.Fatal("non-positive total energy")
	}
	for name, v := range map[string]float64{
		"static": b.Static, "alu": b.ALU, "l1": b.L1, "sampling": b.Sampling,
		"l2": b.L2, "dram": b.DRAM, "vertex": b.Vertex, "flush": b.Flush, "raster": b.Raster,
	} {
		if v <= 0 {
			t.Errorf("component %s = %v", name, v)
		}
	}
}

func TestCalibratedShares(t *testing.T) {
	// The documented calibration: static ~30%, ALU ~30%, L1 ~12%, L2 small.
	b := DefaultModel().Estimate(sampleEvents())
	tot := b.Total()
	check := func(name string, v, lo, hi float64) {
		share := v / tot
		if share < lo || share > hi {
			t.Errorf("%s share = %.3f, want in [%.2f, %.2f]", name, share, lo, hi)
		}
	}
	check("static", b.Static, 0.20, 0.40)
	check("alu", b.ALU, 0.20, 0.40)
	check("l1", b.L1, 0.06, 0.20)
	check("l2", b.L2, 0.01, 0.08)
	check("dram", b.DRAM, 0.04, 0.18)
}

func TestMonotoneInEvents(t *testing.T) {
	// Property: energy is monotone in every event count.
	m := DefaultModel()
	base := m.Estimate(sampleEvents()).Total()
	f := func(extraL2 uint16, extraCycles uint16) bool {
		ev := sampleEvents()
		ev.L2Accesses += uint64(extraL2)
		ev.FrameCycles += uint64(extraCycles)
		return m.Estimate(ev).Total() >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearity(t *testing.T) {
	// Doubling every event count doubles the energy.
	m := DefaultModel()
	ev := sampleEvents()
	e1 := m.Estimate(ev).Total()
	ev2 := pipeline.EventCounts{
		ALUInstructions: ev.ALUInstructions * 2,
		TextureSamples:  ev.TextureSamples * 2,
		L1TexAccesses:   ev.L1TexAccesses * 2,
		L2Accesses:      ev.L2Accesses * 2,
		DRAMAccesses:    ev.DRAMAccesses * 2,
		VertexFetches:   ev.VertexFetches * 2,
		QuadsShaded:     ev.QuadsShaded * 2,
		QuadsCulled:     ev.QuadsCulled * 2,
		FlushedLines:    ev.FlushedLines * 2,
		FrameCycles:     ev.FrameCycles * 2,
	}
	e2 := m.Estimate(ev2).Total()
	if e2 < 1.99*e1 || e2 > 2.01*e1 {
		t.Errorf("doubled events: energy %v -> %v", e1, e2)
	}
}

func TestZeroEventsZeroEnergy(t *testing.T) {
	if got := DefaultModel().Estimate(pipeline.EventCounts{}).Total(); got != 0 {
		t.Errorf("zero events -> %v nJ", got)
	}
}

func TestTotalJoules(t *testing.T) {
	b := Breakdown{Static: 1e9} // 1e9 nJ = 1 J
	if got := TotalJoules(b); got != 1 {
		t.Errorf("TotalJoules = %v", got)
	}
}

func TestFasterFrameSavesStaticEnergy(t *testing.T) {
	// The paper's energy mechanism: same work in fewer cycles -> less
	// static energy -> lower total.
	m := DefaultModel()
	ev := sampleEvents()
	slow := m.Estimate(ev).Total()
	ev.FrameCycles = ev.FrameCycles * 8 / 10
	fast := m.Estimate(ev).Total()
	if fast >= slow {
		t.Error("shorter frame did not reduce energy")
	}
	// And the saving equals exactly the static delta.
	if slow-fast != m.StaticPerCycle*float64(1_900_000-1_900_000*8/10) {
		t.Error("saving is not the static component")
	}
}
