// Package energy estimates total GPU energy from the pipeline's event
// counts, standing in for McPAT in the original toolchain (see DESIGN.md).
//
// The model is the standard first-order decomposition
//
//	E = P_static * t  +  Σ_event N_event * E_event
//
// with per-event energies chosen for a 32 nm, 600 MHz, ~1 W mobile GPU
// (Table II's technology point). The default constants give a baseline
// breakdown of roughly: static + clock ≈ 25%, shader ALU ≈ 32%, L1
// texture accesses ≈ 12%, texture sampling/filtering ≈ 8%, L2 ≈ 3%,
// DRAM ≈ 10%, and the remaining fixed-function work ≈ 7% — in line with
// published mobile-GPU power studies. The paper's energy result is a
// composition of (i) static energy falling with execution time and
// (ii) L2 dynamic energy falling with L2 accesses; both terms are modeled
// directly, so the result's shape does not depend on the absolute scale.
package energy

import "dtexl/internal/pipeline"

// Model holds the per-event energies in nanojoules and static power in
// nanojoules per cycle.
type Model struct {
	StaticPerCycle float64 // whole-GPU leakage + clock tree, nJ/cycle
	ALUInstr       float64 // per quad-wide ALU instruction
	L1Access       float64 // per L1 texture cache access
	Sample         float64 // per texture sample (addressing + filtering)
	L2Access       float64 // per L2 access
	DRAMAccess     float64 // per DRAM access (64 B)
	VertexFetch    float64 // per vertex fetch (fetch + transform)
	FlushLine      float64 // per color-buffer line flushed
	QuadOverhead   float64 // raster + Early-Z + blend per surviving quad
	CulledQuad     float64 // raster + Early-Z per rejected quad
}

// DefaultModel returns the calibrated 32 nm constants described in the
// package comment.
func DefaultModel() Model {
	return Model{
		StaticPerCycle: 1.2,
		ALUInstr:       0.6,
		L1Access:       1.2,
		Sample:         1.8,
		L2Access:       0.56,
		DRAMAccess:     24,
		VertexFetch:    1.0,
		FlushLine:      1.2,
		QuadOverhead:   0.5,
		CulledQuad:     0.2,
	}
}

// Breakdown is the energy split of one simulated frame, in nanojoules.
type Breakdown struct {
	Static   float64
	ALU      float64
	L1       float64
	Sampling float64
	L2       float64
	DRAM     float64
	Vertex   float64
	Flush    float64
	Raster   float64 // quad overheads, shaded + culled
}

// Total returns the summed frame energy in nanojoules.
func (b Breakdown) Total() float64 {
	return b.Static + b.ALU + b.L1 + b.Sampling + b.L2 + b.DRAM + b.Vertex + b.Flush + b.Raster
}

// Estimate computes the frame energy breakdown from the pipeline's event
// counts.
func (m Model) Estimate(ev pipeline.EventCounts) Breakdown {
	return Breakdown{
		Static:   m.StaticPerCycle * float64(ev.FrameCycles),
		ALU:      m.ALUInstr * float64(ev.ALUInstructions),
		L1:       m.L1Access * float64(ev.L1TexAccesses),
		Sampling: m.Sample * float64(ev.TextureSamples),
		L2:       m.L2Access * float64(ev.L2Accesses),
		DRAM:     m.DRAMAccess * float64(ev.DRAMAccesses),
		Vertex:   m.VertexFetch * float64(ev.VertexFetches),
		Flush:    m.FlushLine * float64(ev.FlushedLines),
		Raster:   m.QuadOverhead*float64(ev.QuadsShaded) + m.CulledQuad*float64(ev.QuadsCulled),
	}
}

// TotalJoules converts a breakdown to joules.
func TotalJoules(b Breakdown) float64 { return b.Total() * 1e-9 }
