package dram

import (
	"testing"
	"testing/quick"
)

func TestRowHitAndMissLatency(t *testing.T) {
	m := New(DefaultConfig())
	// First touch of a row: row miss.
	if lat := m.Access(0); lat != 100 {
		t.Errorf("cold access latency = %d, want 100", lat)
	}
	// Same row again: open-row hit.
	if lat := m.Access(64); lat != 50 {
		t.Errorf("open-row latency = %d, want 50", lat)
	}
	s := m.Stats()
	if s.Accesses != 2 || s.RowHits != 1 || s.RowMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRowConflictSameBank(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	rowStride := uint64(cfg.RowBytes * cfg.Banks) // same bank, next row
	m.Access(0)
	if lat := m.Access(rowStride); lat != cfg.RowMissLat {
		t.Errorf("row conflict latency = %d, want %d", lat, cfg.RowMissLat)
	}
	// The original row is now closed.
	if lat := m.Access(0); lat != cfg.RowMissLat {
		t.Errorf("reopened row latency = %d, want %d", lat, cfg.RowMissLat)
	}
}

func TestDifferentBanksDoNotConflict(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.Access(0)                                    // bank 0
	m.Access(uint64(cfg.RowBytes))                 // bank 1
	if lat := m.Access(32); lat != cfg.RowHitLat { // bank 0, same row: still open
		t.Errorf("bank 0 row closed by bank 1 access: lat = %d", lat)
	}
}

func TestLatencyAlwaysInTableIIRange(t *testing.T) {
	cfg := DefaultConfig()
	f := func(addrs []uint32) bool {
		m := New(cfg)
		for _, a := range addrs {
			lat := m.Access(uint64(a))
			if lat < cfg.RowHitLat || lat > cfg.RowMissLat {
				return false
			}
		}
		s := m.Stats()
		return s.RowHits+s.RowMisses == s.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0)
	m.Access(0)
	m.Reset()
	if m.Stats() != (Stats{}) {
		t.Error("stats survived Reset")
	}
	if lat := m.Access(0); lat != 100 {
		t.Errorf("row survived Reset: lat = %d", lat)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	bad := []Config{
		{Banks: 0, RowBytes: 2048, RowHitLat: 50, RowMissLat: 100},
		{Banks: 3, RowBytes: 2048, RowHitLat: 50, RowMissLat: 100},
		{Banks: 8, RowBytes: 1000, RowHitLat: 50, RowMissLat: 100},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
