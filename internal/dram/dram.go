// Package dram models main memory with the latency envelope of Table II
// (50-100 cycles): a multi-bank DRAM with open-row policy. A request to
// an open row costs the minimum latency; a row conflict pays the full
// precharge+activate cost. This stands in for DRAMSim2 in the original
// toolchain; the paper's proposal does not change DRAM traffic, so only a
// plausible latency distribution and access counting are required.
package dram

// Config describes the DRAM model.
type Config struct {
	Banks      int   // number of banks (power of two)
	RowBytes   int   // bytes per row (power of two)
	RowHitLat  int64 // cycles for an open-row access (Table II lower bound)
	RowMissLat int64 // cycles for a row conflict (Table II upper bound)
}

// DefaultConfig matches Table II: 50-100 cycle latency.
func DefaultConfig() Config {
	return Config{Banks: 8, RowBytes: 2048, RowHitLat: 50, RowMissLat: 100}
}

// Stats counts DRAM traffic.
type Stats struct {
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
}

// Add accumulates o into s. All fields are commutative sums, so
// per-worker shadow counters may be folded in any order (the parallel
// executors rely on this; see cache.Stats.Add).
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
}

// Model is the DRAM state: one open row per bank.
type Model struct {
	cfg      Config
	openRow  []uint64
	rowValid []bool
	stats    Stats
	bankMask uint64
	rowShift uint
}

// New builds a DRAM model. Panics on invalid (non-power-of-two) geometry.
func New(cfg Config) *Model {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("dram: bank count must be a positive power of two")
	}
	if cfg.RowBytes <= 0 || cfg.RowBytes&(cfg.RowBytes-1) != 0 {
		panic("dram: row size must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != cfg.RowBytes {
		shift++
	}
	return &Model{
		cfg:      cfg,
		openRow:  make([]uint64, cfg.Banks),
		rowValid: make([]bool, cfg.Banks),
		bankMask: uint64(cfg.Banks - 1),
		rowShift: shift,
	}
}

// Access performs one memory access and returns its latency in cycles.
func (m *Model) Access(addr uint64) int64 {
	return m.AccessInto(addr, &m.stats)
}

// AccessInto is Access with the counters accumulated into st instead of
// the model's own stats. Accesses to different banks touch disjoint
// open-row state and therefore commute; the counters are the only
// cross-bank shared state, and a per-worker shadow folded back with
// AddStats makes them commutative sums. Access(addr) ≡
// AccessInto(addr, &m.stats).
func (m *Model) AccessInto(addr uint64, st *Stats) int64 {
	st.Accesses++
	row := addr >> m.rowShift
	bank := int(row & m.bankMask)
	if m.rowValid[bank] && m.openRow[bank] == row {
		st.RowHits++
		return m.cfg.RowHitLat
	}
	st.RowMisses++
	m.openRow[bank] = row
	m.rowValid[bank] = true
	return m.cfg.RowMissLat
}

// BankIndex returns the bank addr maps to — a pure function of the
// address, so shard reservations can be taken before knowing whether the
// access will reach DRAM at all.
func (m *Model) BankIndex(addr uint64) int {
	return int(addr >> m.rowShift & m.bankMask)
}

// NumBanks returns the bank count.
func (m *Model) NumBanks() int { return m.cfg.Banks }

// AddStats folds a shadow counter block into the model's own counters.
func (m *Model) AddStats(st Stats) { m.stats.Add(st) }

// Stats returns a copy of the counters.
func (m *Model) Stats() Stats { return m.stats }

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Clone returns a deep copy of the model: open-row state and counters
// evolve independently of the original afterwards.
func (m *Model) Clone() *Model {
	c := *m
	c.openRow = append([]uint64(nil), m.openRow...)
	c.rowValid = append([]bool(nil), m.rowValid...)
	return &c
}

// CopyFrom overwrites m's open-row state and counters with src's without
// allocating. Both models must share a configuration; the snapshot
// restore path validates that before calling.
func (m *Model) CopyFrom(src *Model) {
	copy(m.openRow, src.openRow)
	copy(m.rowValid, src.rowValid)
	m.stats = src.stats
}

// Reset closes all rows and zeroes counters.
func (m *Model) Reset() {
	for i := range m.rowValid {
		m.rowValid[i] = false
	}
	m.stats = Stats{}
}
