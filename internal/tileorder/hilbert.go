package tileorder

// HilbertD2XY converts a distance d along the Hilbert curve filling an
// n x n grid (n a power of two) to cell coordinates. This is the
// classical iterative formulation (Lam & Shapiro); it uses only integer
// operations, so unlike the floating-point formulation discussed in the
// paper it is exact for any grid the Tiling Engine can produce.
func HilbertD2XY(n, d int) (x, y int) {
	rx, ry := 0, 0
	t := d
	for s := 1; s < n; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return
}

// HilbertXY2D converts cell coordinates in an n x n grid (n a power of
// two) to the distance along the Hilbert curve. It is the inverse of
// HilbertD2XY.
func HilbertXY2D(n, x, y int) int {
	d := 0
	for s := n / 2; s > 0; s /= 2 {
		rx := 0
		if x&s > 0 {
			rx = 1
		}
		ry := 0
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(n, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = n - 1 - x
			y = n - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
