package tileorder

// MortonEncode interleaves the bits of x and y into a Z-order (Morton)
// code: bit i of x lands at bit 2i of the code, bit i of y at bit 2i+1.
// Coordinates must fit in 32 bits.
func MortonEncode(x, y int) uint64 {
	return spreadBits(uint64(uint32(x))) | spreadBits(uint64(uint32(y)))<<1
}

// MortonDecode inverts MortonEncode.
func MortonDecode(code uint64) (x, y int) {
	return int(compactBits(code)), int(compactBits(code >> 1))
}

// spreadBits inserts a zero bit between every bit of the low 32 bits of v.
func spreadBits(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compactBits inverts spreadBits, collecting every other bit of v.
func compactBits(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}
