package tileorder

import "testing"

// FuzzMortonRoundTrip exercises the Z-order bit interleaving with
// arbitrary coordinates (run with `go test -fuzz FuzzMorton`).
func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(0, 0)
	f.Add(61, 23)
	f.Add(1<<20, 1<<19)
	f.Fuzz(func(t *testing.T, x, y int) {
		x &= 0x7fffffff
		y &= 0x7fffffff
		gx, gy := MortonDecode(MortonEncode(x, y))
		if gx != x || gy != y {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	})
}

// FuzzHilbertRoundTrip exercises the Hilbert mapping over arbitrary
// power-of-two grids and distances.
func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint8(3), 17)
	f.Add(uint8(6), 1000)
	f.Fuzz(func(t *testing.T, logN uint8, d int) {
		n := 1 << (logN%10 + 1) // 2..1024
		if d < 0 {
			d = -d
		}
		d %= n * n
		x, y := HilbertD2XY(n, d)
		if x < 0 || x >= n || y < 0 || y >= n {
			t.Fatalf("n=%d d=%d: out of range (%d,%d)", n, d, x, y)
		}
		if got := HilbertXY2D(n, x, y); got != d {
			t.Fatalf("n=%d: roundtrip %d -> %d", n, d, got)
		}
	})
}

// FuzzSequencePermutation checks that every order is a permutation of any
// small grid.
func FuzzSequencePermutation(f *testing.F) {
	f.Add(uint8(0), uint8(7), uint8(5))
	f.Add(uint8(4), uint8(8), uint8(8))
	f.Fuzz(func(t *testing.T, kind, w8, h8 uint8) {
		k := Kind(int(kind) % len(Kinds()))
		w := int(w8)%20 + 1
		h := int(h8)%20 + 1
		seq := Sequence(k, w, h)
		if len(seq) != w*h {
			t.Fatalf("%v %dx%d: %d cells", k, w, h, len(seq))
		}
		seen := make(map[Point]bool, len(seq))
		for _, p := range seq {
			if p.X < 0 || p.X >= w || p.Y < 0 || p.Y >= h || seen[p] {
				t.Fatalf("%v %dx%d: bad cell %v", k, w, h, p)
			}
			seen[p] = true
		}
	})
}
