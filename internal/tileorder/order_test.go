package tileorder

import (
	"testing"
	"testing/quick"
)

// checkPermutation verifies that seq visits every cell of a w x h grid
// exactly once.
func checkPermutation(t *testing.T, seq []Point, w, h int) {
	t.Helper()
	if len(seq) != w*h {
		t.Fatalf("sequence length = %d, want %d", len(seq), w*h)
	}
	seen := make(map[Point]bool, len(seq))
	for _, p := range seq {
		if p.X < 0 || p.X >= w || p.Y < 0 || p.Y >= h {
			t.Fatalf("out-of-grid point %v in %dx%d", p, w, h)
		}
		if seen[p] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[p] = true
	}
}

func TestAllOrdersArePermutations(t *testing.T) {
	grids := []struct{ w, h int }{
		{1, 1}, {2, 2}, {8, 8}, {16, 16},
		{7, 5}, {62, 24}, {3, 17}, {16, 8},
	}
	for _, k := range Kinds() {
		for _, g := range grids {
			seq := Sequence(k, g.w, g.h)
			checkPermutation(t, seq, g.w, g.h)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range Kinds() {
		if s := k.String(); s == "" || s[0] == 't' && len(s) > 20 {
			t.Errorf("suspicious name %q for kind %d", s, int(k))
		}
	}
	if Kind(99).String() != "tileorder.Kind(99)" {
		t.Errorf("unknown kind name = %q", Kind(99).String())
	}
}

func TestScanlineOrder(t *testing.T) {
	seq := Sequence(Scanline, 3, 2)
	want := []Point{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq[%d] = %v, want %v", i, seq[i], want[i])
		}
	}
}

func TestSOrderAlternatesDirection(t *testing.T) {
	seq := Sequence(SOrder, 3, 3)
	want := []Point{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {1, 1}, {0, 1}, {0, 2}, {1, 2}, {2, 2}}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq[%d] = %v, want %v", i, seq[i], want[i])
		}
	}
}

func TestSOrderConsecutiveAdjacent(t *testing.T) {
	// Every consecutive pair in S-order shares an edge — the defining
	// property of boustrophedon traversal.
	seq := Sequence(SOrder, 9, 7)
	for i := 1; i < len(seq); i++ {
		if adjacency(seq[i-1], seq[i]) != 1 {
			t.Fatalf("non-adjacent consecutive pair %v -> %v", seq[i-1], seq[i])
		}
	}
}

// adjacency returns the Manhattan distance between two points.
func adjacency(a, b Point) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func TestZOrderMatchesFigure7a(t *testing.T) {
	// Fig. 7a: a 4x4 grid in Z-order starts (0,0),(1,0),(0,1),(1,1),(2,0)...
	seq := Sequence(ZOrder, 4, 4)
	want := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 0}, {3, 0}, {2, 1}, {3, 1}}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq[%d] = %v, want %v", i, seq[i], want[i])
		}
	}
}

func TestHilbertConsecutiveAdjacent(t *testing.T) {
	// The defining property of the Hilbert curve: consecutive cells are
	// always 4-adjacent (on a full power-of-two square grid).
	for _, n := range []int{2, 4, 8, 16, 32} {
		seq := Sequence(Hilbert, n, n)
		for i := 1; i < len(seq); i++ {
			if adjacency(seq[i-1], seq[i]) != 1 {
				t.Fatalf("n=%d: non-adjacent pair at %d: %v -> %v", n, i, seq[i-1], seq[i])
			}
		}
	}
}

func TestHilbertRectBlockAdjacency(t *testing.T) {
	// Inside each complete 8x8 sub-frame, HilbertRect consecutive cells
	// must be 4-adjacent.
	seq := Sequence(HilbertRect, 16, 8)
	for i := 1; i < 64; i++ {
		if adjacency(seq[i-1], seq[i]) != 1 {
			t.Fatalf("non-adjacent pair inside first block: %v -> %v", seq[i-1], seq[i])
		}
	}
	// The first 64 cells must all lie within the first 8x8 block.
	for i := 0; i < 64; i++ {
		if seq[i].X >= 8 {
			t.Fatalf("cell %v escaped the first sub-frame", seq[i])
		}
	}
	// The next 64 must lie in the second block.
	for i := 64; i < 128; i++ {
		if seq[i].X < 8 {
			t.Fatalf("cell %v not in the second sub-frame", seq[i])
		}
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y uint16) bool {
		code := MortonEncode(int(x), int(y))
		gx, gy := MortonDecode(code)
		return gx == int(x) && gy == int(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonMonotoneInBlocks(t *testing.T) {
	// Morton codes of a 2x2 block starting at even coordinates are
	// consecutive: (0,0),(1,0),(0,1),(1,1).
	base := MortonEncode(4, 6)
	if MortonEncode(5, 6) != base+1 || MortonEncode(4, 7) != base+2 || MortonEncode(5, 7) != base+3 {
		t.Error("2x2 block not consecutive in Morton order")
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64} {
		for d := 0; d < n*n; d++ {
			x, y := HilbertD2XY(n, d)
			if x < 0 || x >= n || y < 0 || y >= n {
				t.Fatalf("n=%d d=%d: out of range (%d,%d)", n, d, x, y)
			}
			if got := HilbertXY2D(n, x, y); got != d {
				t.Fatalf("n=%d: XY2D(D2XY(%d)) = %d", n, d, got)
			}
		}
	}
}

func TestLocalityRanking(t *testing.T) {
	// Space-filling curves must beat scanline on the average distance
	// between consecutive tiles — the reason the paper considers them.
	w, h := 16, 16
	avg := func(k Kind) float64 {
		seq := Sequence(k, w, h)
		total := 0
		for i := 1; i < len(seq); i++ {
			total += adjacency(seq[i-1], seq[i])
		}
		return float64(total) / float64(len(seq)-1)
	}
	scan := avg(Scanline)
	hil := avg(Hilbert)
	z := avg(ZOrder)
	if hil >= scan || z > scan {
		t.Errorf("locality ranking violated: scanline=%v z=%v hilbert=%v", scan, z, hil)
	}
	if hil != 1 {
		t.Errorf("hilbert average step = %v, want exactly 1", hil)
	}
}

func TestSequencePanicsOnBadGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero-size grid")
		}
	}()
	Sequence(ZOrder, 0, 4)
}
