// Package tileorder implements the tile traversal orders studied in the
// paper (§III-C): Scanline, S-order (boustrophedon), Z-order (Morton),
// Hilbert, and the paper's rectangle-adapted Hilbert that applies a
// Hilbert curve inside 8x8-tile sub-frames and walks the sub-frames in an
// S shape.
//
// Orders are materialized as explicit permutations of the tile grid; in a
// TBR GPU the number of tiles is a few thousand, so the paper argues the
// order can be precomputed once per resolution to avoid any per-tile
// computation overhead.
package tileorder

import "fmt"

// Point identifies a tile by its (column, row) coordinates in the tile
// grid.
type Point struct {
	X, Y int
}

// Kind selects one of the implemented traversal orders.
type Kind int

const (
	// Scanline visits tiles row by row, left to right in every row.
	Scanline Kind = iota
	// SOrder visits tiles row by row, alternating direction each row
	// (boustrophedon), so consecutive tiles always share an edge.
	SOrder
	// ZOrder visits tiles in Morton order (Fig. 7a).
	ZOrder
	// Hilbert visits tiles along a Hilbert curve over the bounding
	// power-of-two square, skipping out-of-frame cells (Fig. 7b).
	Hilbert
	// HilbertRect is the paper's rectangular adaptation: a Hilbert curve
	// inside each 8x8-tile sub-frame, with sub-frames traversed
	// boustrophedonically.
	HilbertRect
)

// SubFrameSize is the side, in tiles, of the square sub-frames used by
// HilbertRect, as specified in §III-C.
const SubFrameSize = 8

var kindNames = map[Kind]string{
	Scanline:    "scanline",
	SOrder:      "s-order",
	ZOrder:      "z-order",
	Hilbert:     "hilbert",
	HilbertRect: "hilbert-rect",
}

// String returns the lowercase name of the order.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tileorder.Kind(%d)", int(k))
}

// Kinds lists every implemented order, in declaration order.
func Kinds() []Kind {
	return []Kind{Scanline, SOrder, ZOrder, Hilbert, HilbertRect}
}

// Sequence returns the visit order of every tile of a w x h tile grid as
// a permutation of the grid. It panics on non-positive dimensions, which
// indicate a configuration bug.
func Sequence(k Kind, w, h int) []Point {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("tileorder: invalid grid %dx%d", w, h))
	}
	switch k {
	case Scanline:
		return scanline(w, h)
	case SOrder:
		return sOrder(w, h)
	case ZOrder:
		return zOrder(w, h)
	case Hilbert:
		return hilbertSeq(w, h)
	case HilbertRect:
		return hilbertRect(w, h)
	default:
		panic(fmt.Sprintf("tileorder: unknown kind %d", int(k)))
	}
}

func scanline(w, h int) []Point {
	seq := make([]Point, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			seq = append(seq, Point{x, y})
		}
	}
	return seq
}

func sOrder(w, h int) []Point {
	seq := make([]Point, 0, w*h)
	for y := 0; y < h; y++ {
		if y%2 == 0 {
			for x := 0; x < w; x++ {
				seq = append(seq, Point{x, y})
			}
		} else {
			for x := w - 1; x >= 0; x-- {
				seq = append(seq, Point{x, y})
			}
		}
	}
	return seq
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func zOrder(w, h int) []Point {
	side := nextPow2(max(w, h))
	seq := make([]Point, 0, w*h)
	total := uint64(side) * uint64(side)
	for code := uint64(0); code < total; code++ {
		x, y := MortonDecode(code)
		if x < w && y < h {
			seq = append(seq, Point{x, y})
		}
	}
	return seq
}

func hilbertSeq(w, h int) []Point {
	side := nextPow2(max(w, h))
	seq := make([]Point, 0, w*h)
	total := side * side
	for d := 0; d < total; d++ {
		x, y := HilbertD2XY(side, d)
		if x < w && y < h {
			seq = append(seq, Point{x, y})
		}
	}
	return seq
}

// hilbertRect walks SubFrameSize x SubFrameSize blocks of tiles in an S
// shape over the frame; inside each block the tiles follow a Hilbert
// curve. Blocks on the right/bottom frame edges may be partial; their
// out-of-frame cells are skipped.
func hilbertRect(w, h int) []Point {
	bw := (w + SubFrameSize - 1) / SubFrameSize
	bh := (h + SubFrameSize - 1) / SubFrameSize
	seq := make([]Point, 0, w*h)
	for by := 0; by < bh; by++ {
		// Boustrophedon block traversal.
		for i := 0; i < bw; i++ {
			bx := i
			if by%2 == 1 {
				bx = bw - 1 - i
			}
			ox := bx * SubFrameSize
			oy := by * SubFrameSize
			for d := 0; d < SubFrameSize*SubFrameSize; d++ {
				lx, ly := HilbertD2XY(SubFrameSize, d)
				x, y := ox+lx, oy+ly
				if x < w && y < h {
					seq = append(seq, Point{x, y})
				}
			}
		}
	}
	return seq
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
