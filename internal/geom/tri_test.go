package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rightTriangle() Triangle {
	return Triangle{
		P:  [3]Vec3{{0, 0, 0}, {10, 0, 0.5}, {0, 10, 1}},
		UV: [3]Vec2{{0, 0}, {1, 0}, {0, 1}},
	}
}

func TestTriangleBounds(t *testing.T) {
	tr := rightTriangle()
	b := tr.Bounds()
	if b.MinX != 0 || b.MinY != 0 || b.MaxX != 10 || b.MaxY != 10 {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestAABBIntersect(t *testing.T) {
	a := AABB{0, 0, 10, 10}
	b := AABB{5, 5, 20, 20}
	got := a.Intersect(b)
	if got.MinX != 5 || got.MinY != 5 || got.MaxX != 10 || got.MaxY != 10 {
		t.Errorf("Intersect = %+v", got)
	}
	if got.Empty() {
		t.Error("non-empty intersection reported empty")
	}
	c := AABB{20, 20, 30, 30}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint boxes reported non-empty")
	}
}

func TestEdgeSetupInside(t *testing.T) {
	tr := rightTriangle()
	e, ok := tr.Setup()
	if !ok {
		t.Fatal("setup failed on valid triangle")
	}
	if !e.Inside(1, 1) {
		t.Error("interior point reported outside")
	}
	if e.Inside(9, 9) {
		t.Error("exterior point reported inside")
	}
	// Vertices lie on edges; edge-inclusive test must accept them.
	for i, p := range tr.P {
		if !e.Inside(p.X, p.Y) {
			t.Errorf("vertex %d reported outside", i)
		}
	}
}

func TestEdgeSetupWindingInvariant(t *testing.T) {
	tr := rightTriangle()
	rev := Triangle{
		P:  [3]Vec3{tr.P[0], tr.P[2], tr.P[1]},
		UV: [3]Vec2{tr.UV[0], tr.UV[2], tr.UV[1]},
	}
	e1, ok1 := tr.Setup()
	e2, ok2 := rev.Setup()
	if !ok1 || !ok2 {
		t.Fatal("setup failed")
	}
	pts := []Vec2{{1, 1}, {5, 4}, {9, 9}, {-1, 0}, {3, 3}}
	for _, p := range pts {
		if e1.Inside(p.X, p.Y) != e2.Inside(p.X, p.Y) {
			t.Errorf("winding changed inclusion at %v", p)
		}
	}
}

func TestDegenerate(t *testing.T) {
	tr := Triangle{P: [3]Vec3{{0, 0, 0}, {5, 5, 0}, {10, 10, 0}}}
	if !tr.Degenerate() {
		t.Error("collinear triangle not reported degenerate")
	}
	if _, ok := tr.Setup(); ok {
		t.Error("Setup accepted degenerate triangle")
	}
}

func TestBarycentricSumsToOne(t *testing.T) {
	tr := rightTriangle()
	e, _ := tr.Setup()
	f := func(x, y float64) bool {
		x = math.Mod(x, 100)
		y = math.Mod(y, 100)
		l0, l1, l2 := e.Barycentric(x, y)
		return almost(l0+l1+l2, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBarycentricAtVertices(t *testing.T) {
	tr := rightTriangle()
	e, _ := tr.Setup()
	want := [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for i, p := range tr.P {
		l0, l1, l2 := e.Barycentric(p.X, p.Y)
		got := [3]float64{l0, l1, l2}
		for j := 0; j < 3; j++ {
			if !almost(got[j], want[i][j]) {
				t.Errorf("vertex %d: bary = %v", i, got)
			}
		}
	}
}

func TestDepthInterpolation(t *testing.T) {
	tr := rightTriangle()
	e, _ := tr.Setup()
	if got := e.DepthAt(0, 0); !almost(got, 0) {
		t.Errorf("depth at v0 = %v", got)
	}
	if got := e.DepthAt(10, 0); !almost(got, 0.5) {
		t.Errorf("depth at v1 = %v", got)
	}
	if got := e.DepthAt(5, 0); !almost(got, 0.25) {
		t.Errorf("depth at edge midpoint = %v", got)
	}
}

func TestUVInterpolation(t *testing.T) {
	tr := rightTriangle()
	e, _ := tr.Setup()
	uv := e.UVAt(5, 5) // midpoint of hypotenuse
	if !almost(uv.X, 0.5) || !almost(uv.Y, 0.5) {
		t.Errorf("UV at hypotenuse midpoint = %v", uv)
	}
	uv0 := e.UVAt(0, 0)
	if !almost(uv0.X, 0) || !almost(uv0.Y, 0) {
		t.Errorf("UV at v0 = %v", uv0)
	}
}

func TestUVFootprintConstantDerivatives(t *testing.T) {
	// UV maps 10 screen pixels to 1 UV unit, so du/dx = 0.1, dv/dy = 0.1.
	tr := rightTriangle()
	e, _ := tr.Setup()
	dudx, dvdx, dudy, dvdy := e.UVFootprint()
	if !almost(dudx, 0.1) || !almost(dvdx, 0) || !almost(dudy, 0) || !almost(dvdy, 0.1) {
		t.Errorf("footprint = %v %v %v %v", dudx, dvdx, dudy, dvdy)
	}
}

func TestInsideMatchesBarycentric(t *testing.T) {
	// Property: Inside(x,y) iff all barycentric coordinates >= 0 (within eps),
	// for randomized triangles and points.
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		tr := Triangle{
			P: [3]Vec3{
				{rng.Float64() * 50, rng.Float64() * 50, 0},
				{rng.Float64() * 50, rng.Float64() * 50, 0},
				{rng.Float64() * 50, rng.Float64() * 50, 0},
			},
		}
		e, ok := tr.Setup()
		if !ok {
			continue
		}
		for p := 0; p < 20; p++ {
			x := rng.Float64() * 50
			y := rng.Float64() * 50
			l0, l1, l2 := e.Barycentric(x, y)
			baryInside := l0 >= -1e-9 && l1 >= -1e-9 && l2 >= -1e-9
			if e.Inside(x, y) != baryInside {
				t.Fatalf("mismatch at (%v,%v): inside=%v bary=(%v,%v,%v)", x, y, e.Inside(x, y), l0, l1, l2)
			}
		}
	}
}
