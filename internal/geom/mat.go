package geom

import "math"

// Mat4 is a 4x4 matrix stored row-major: M[row][col]. It multiplies
// column vectors: v' = M.MulVec4(v).
type Mat4 [4][4]float64

// Identity returns the 4x4 identity matrix.
func Identity() Mat4 {
	return Mat4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
}

// Mul returns the matrix product m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[i][k] * n[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// MulVec4 returns m * v.
func (m Mat4) MulVec4(v Vec4) Vec4 {
	return Vec4{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z + m[0][3]*v.W,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z + m[1][3]*v.W,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z + m[2][3]*v.W,
		m[3][0]*v.X + m[3][1]*v.Y + m[3][2]*v.Z + m[3][3]*v.W,
	}
}

// Translate returns a translation matrix by (x, y, z).
func Translate(x, y, z float64) Mat4 {
	m := Identity()
	m[0][3], m[1][3], m[2][3] = x, y, z
	return m
}

// ScaleUniform returns a scaling matrix with per-axis factors.
func ScaleUniform(x, y, z float64) Mat4 {
	m := Identity()
	m[0][0], m[1][1], m[2][2] = x, y, z
	return m
}

// RotateZ returns a rotation matrix about the z axis by theta radians.
func RotateZ(theta float64) Mat4 {
	c, s := math.Cos(theta), math.Sin(theta)
	m := Identity()
	m[0][0], m[0][1] = c, -s
	m[1][0], m[1][1] = s, c
	return m
}

// RotateY returns a rotation matrix about the y axis by theta radians.
func RotateY(theta float64) Mat4 {
	c, s := math.Cos(theta), math.Sin(theta)
	m := Identity()
	m[0][0], m[0][2] = c, s
	m[2][0], m[2][2] = -s, c
	return m
}

// Perspective returns a perspective projection matrix with the given
// vertical field of view (radians), aspect ratio (width/height), and
// near/far clip distances. Depth maps to [0,1] with near at 0, the
// convention the Early-Z unit expects.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	var m Mat4
	m[0][0] = f / aspect
	m[1][1] = f
	m[2][2] = far / (far - near)
	m[2][3] = -far * near / (far - near)
	m[3][2] = 1
	return m
}

// Orthographic returns an orthographic projection matrix mapping the box
// [l,r]x[b,t]x[n,f] to NDC with depth in [0,1].
func Orthographic(l, r, b, t, n, f float64) Mat4 {
	var m Mat4
	m[0][0] = 2 / (r - l)
	m[0][3] = -(r + l) / (r - l)
	m[1][1] = 2 / (t - b)
	m[1][3] = -(t + b) / (t - b)
	m[2][2] = 1 / (f - n)
	m[2][3] = -n / (f - n)
	m[3][3] = 1
	return m
}

// Viewport maps NDC ([-1,1]^2, depth [0,1]) to screen-space pixels for a
// width x height frame, with y flipped so +y points down.
type Viewport struct {
	Width, Height float64
}

// ToScreen converts an NDC point to screen space. Depth passes through.
func (vp Viewport) ToScreen(ndc Vec3) Vec3 {
	return Vec3{
		X: (ndc.X + 1) * 0.5 * vp.Width,
		Y: (1 - (ndc.Y+1)*0.5) * vp.Height,
		Z: ndc.Z,
	}
}
