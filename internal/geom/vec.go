// Package geom provides the small linear-algebra and triangle-setup
// substrate used by the graphics pipeline: vectors, 4x4 matrices,
// screen-space triangles with edge functions and barycentric
// interpolation, and axis-aligned bounding boxes.
//
// Conventions: right-handed clip space, row-vector * matrix is NOT used;
// matrices multiply column vectors (v' = M * v). Screen space has the
// origin at the top-left pixel, +x right, +y down, matching the raster
// pipeline's tile addressing.
package geom

import "math"

// Vec2 is a 2-component float64 vector (UV coordinates, screen points).
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3D cross product of v and w,
// i.e. the signed area of the parallelogram they span.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Vec3 is a 3-component float64 vector (positions, normals, colors).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Vec4 is a 4-component homogeneous vector.
type Vec4 struct {
	X, Y, Z, W float64
}

// Add returns v + w.
func (v Vec4) Add(w Vec4) Vec4 { return Vec4{v.X + w.X, v.Y + w.Y, v.Z + w.Z, v.W + w.W} }

// Sub returns v - w.
func (v Vec4) Sub(w Vec4) Vec4 { return Vec4{v.X - w.X, v.Y - w.Y, v.Z - w.Z, v.W - w.W} }

// Scale returns s*v.
func (v Vec4) Scale(s float64) Vec4 { return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s} }

// Dot returns the dot product of v and w.
func (v Vec4) Dot(w Vec4) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z + v.W*w.W }

// XYZ drops the W component.
func (v Vec4) XYZ() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// PerspectiveDivide returns the normalized-device-coordinate point v/w.
// A w of zero yields the unmodified XYZ to avoid NaN propagation; callers
// clip such vertices beforehand.
func (v Vec4) PerspectiveDivide() Vec3 {
	if v.W == 0 {
		return v.XYZ()
	}
	inv := 1 / v.W
	return Vec3{v.X * inv, v.Y * inv, v.Z * inv}
}

// Point4 promotes a Vec3 position to homogeneous coordinates (w=1).
func Point4(v Vec3) Vec4 { return Vec4{v.X, v.Y, v.Z, 1} }

// Lerp2 linearly interpolates between a and b by t in [0,1].
func Lerp2(a, b Vec2, t float64) Vec2 {
	return Vec2{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// Lerp3 linearly interpolates between a and b by t in [0,1].
func Lerp3(a, b Vec3, t float64) Vec3 {
	return Vec3{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t, a.Z + (b.Z-a.Z)*t}
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
