package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdentityMul(t *testing.T) {
	id := Identity()
	v := Vec4{1, 2, 3, 1}
	if got := id.MulVec4(v); got != v {
		t.Errorf("I*v = %v, want %v", got, v)
	}
	m := Translate(1, 2, 3)
	if got := id.Mul(m); got != m {
		t.Errorf("I*M != M")
	}
	if got := m.Mul(id); got != m {
		t.Errorf("M*I != M")
	}
}

func TestTranslate(t *testing.T) {
	m := Translate(10, -5, 2)
	got := m.MulVec4(Point4(Vec3{1, 1, 1}))
	want := Vec4{11, -4, 3, 1}
	if got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
	// Direction vectors (w=0) must be unaffected by translation.
	dir := m.MulVec4(Vec4{1, 0, 0, 0})
	if dir != (Vec4{1, 0, 0, 0}) {
		t.Errorf("Translate on direction = %v", dir)
	}
}

func TestScaleUniform(t *testing.T) {
	m := ScaleUniform(2, 3, 4)
	got := m.MulVec4(Point4(Vec3{1, 1, 1}))
	if got != (Vec4{2, 3, 4, 1}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRotateZ(t *testing.T) {
	m := RotateZ(math.Pi / 2)
	got := m.MulVec4(Vec4{1, 0, 0, 1})
	if !almost(got.X, 0) || !almost(got.Y, 1) || !almost(got.Z, 0) {
		t.Errorf("RotateZ(90) * x-hat = %v", got)
	}
}

func TestRotateY(t *testing.T) {
	m := RotateY(math.Pi / 2)
	got := m.MulVec4(Vec4{1, 0, 0, 1})
	if !almost(got.X, 0) || !almost(got.Y, 0) || !almost(got.Z, -1) {
		t.Errorf("RotateY(90) * x-hat = %v", got)
	}
}

func TestMatMulAssociative(t *testing.T) {
	a := RotateZ(0.3)
	b := Translate(1, 2, 3)
	c := ScaleUniform(2, 2, 2)
	ab_c := a.Mul(b).Mul(c)
	a_bc := a.Mul(b.Mul(c))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almost(ab_c[i][j], a_bc[i][j]) {
				t.Fatalf("associativity failed at [%d][%d]: %v vs %v", i, j, ab_c[i][j], a_bc[i][j])
			}
		}
	}
}

func TestMatVecLinear(t *testing.T) {
	m := RotateZ(0.7).Mul(Translate(3, -1, 2))
	f := func(x1, y1, z1, x2, y2, z2 float64) bool {
		a := Vec4{math.Mod(x1, 1e3), math.Mod(y1, 1e3), math.Mod(z1, 1e3), 1}
		b := Vec4{math.Mod(x2, 1e3), math.Mod(y2, 1e3), math.Mod(z2, 1e3), 0}
		lhs := m.MulVec4(a.Add(b))
		rhs := m.MulVec4(a).Add(m.MulVec4(b))
		return almost(lhs.X, rhs.X) && almost(lhs.Y, rhs.Y) && almost(lhs.Z, rhs.Z) && almost(lhs.W, rhs.W)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	p := Perspective(math.Pi/3, 16.0/9.0, 1, 100)
	near := p.MulVec4(Vec4{0, 0, 1, 1}).PerspectiveDivide()
	far := p.MulVec4(Vec4{0, 0, 100, 1}).PerspectiveDivide()
	if !almost(near.Z, 0) {
		t.Errorf("near depth = %v, want 0", near.Z)
	}
	if !almost(far.Z, 1) {
		t.Errorf("far depth = %v, want 1", far.Z)
	}
	// Depth must be monotonically increasing with distance.
	mid := p.MulVec4(Vec4{0, 0, 10, 1}).PerspectiveDivide()
	if !(mid.Z > near.Z && mid.Z < far.Z) {
		t.Errorf("depth not monotone: near=%v mid=%v far=%v", near.Z, mid.Z, far.Z)
	}
}

func TestOrthographicMapsCorners(t *testing.T) {
	m := Orthographic(-2, 2, -1, 1, 0, 10)
	lo := m.MulVec4(Vec4{-2, -1, 0, 1})
	hi := m.MulVec4(Vec4{2, 1, 10, 1})
	if !almost(lo.X, -1) || !almost(lo.Y, -1) || !almost(lo.Z, 0) {
		t.Errorf("ortho low corner = %v", lo)
	}
	if !almost(hi.X, 1) || !almost(hi.Y, 1) || !almost(hi.Z, 1) {
		t.Errorf("ortho high corner = %v", hi)
	}
}

func TestViewportToScreen(t *testing.T) {
	vp := Viewport{Width: 640, Height: 480}
	// NDC center -> screen center.
	c := vp.ToScreen(Vec3{0, 0, 0.5})
	if !almost(c.X, 320) || !almost(c.Y, 240) || !almost(c.Z, 0.5) {
		t.Errorf("center = %v", c)
	}
	// NDC (-1, +1) is the top-left corner in the y-down convention.
	tl := vp.ToScreen(Vec3{-1, 1, 0})
	if !almost(tl.X, 0) || !almost(tl.Y, 0) {
		t.Errorf("top-left = %v", tl)
	}
	br := vp.ToScreen(Vec3{1, -1, 0})
	if !almost(br.X, 640) || !almost(br.Y, 480) {
		t.Errorf("bottom-right = %v", br)
	}
}
