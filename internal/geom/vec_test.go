package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestVec2Ops(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -1}
	if got := a.Add(b); got != (Vec2{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec2{3, 4}).Len(); !almost(got, 5) {
		t.Errorf("Len = %v", got)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if got := a.Cross(b); got != (Vec3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Dot(b); got != 0 {
		t.Errorf("Dot = %v", got)
	}
	v := Vec3{0, 3, 4}
	if got := v.Normalize().Len(); !almost(got, 1) {
		t.Errorf("Normalize length = %v", got)
	}
	zero := Vec3{}
	if got := zero.Normalize(); got != zero {
		t.Errorf("Normalize(0) = %v", got)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add/Sub roundtrip = %v", got)
	}
	if got := a.Scale(3); got != (Vec3{3, 0, 0}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestVec3CrossAnticommutative(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100)}
		b := Vec3{math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100)}
		c1 := a.Cross(b)
		c2 := b.Cross(a).Scale(-1)
		return almost(c1.X, c2.X) && almost(c1.Y, c2.Y) && almost(c1.Z, c2.Z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Keep magnitudes small to bound floating-point error.
		a := Vec3{math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100)}
		b := Vec3{math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100)}
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-6 && math.Abs(c.Dot(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec4PerspectiveDivide(t *testing.T) {
	v := Vec4{2, 4, 6, 2}
	if got := v.PerspectiveDivide(); got != (Vec3{1, 2, 3}) {
		t.Errorf("PerspectiveDivide = %v", got)
	}
	// w=0 must not produce NaN.
	v0 := Vec4{1, 2, 3, 0}
	got := v0.PerspectiveDivide()
	if math.IsNaN(got.X) || got != (Vec3{1, 2, 3}) {
		t.Errorf("PerspectiveDivide w=0 = %v", got)
	}
}

func TestVec4Ops(t *testing.T) {
	a := Vec4{1, 2, 3, 4}
	b := Vec4{4, 3, 2, 1}
	if got := a.Add(b); got != (Vec4{5, 5, 5, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec4{-3, -1, 1, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 20 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2).XYZ(); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale/XYZ = %v", got)
	}
	if got := Point4(Vec3{1, 2, 3}); got != (Vec4{1, 2, 3, 1}) {
		t.Errorf("Point4 = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a2, b2 := Vec2{0, 0}, Vec2{2, 4}
	if got := Lerp2(a2, b2, 0.5); got != (Vec2{1, 2}) {
		t.Errorf("Lerp2 = %v", got)
	}
	a3, b3 := Vec3{0, 0, 0}, Vec3{2, 4, 8}
	if got := Lerp3(a3, b3, 0.25); got != (Vec3{0.5, 1, 2}) {
		t.Errorf("Lerp3 = %v", got)
	}
	if got := Lerp2(a2, b2, 0); got != a2 {
		t.Errorf("Lerp2 t=0 = %v", got)
	}
	if got := Lerp2(a2, b2, 1); got != b2 {
		t.Errorf("Lerp2 t=1 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}
