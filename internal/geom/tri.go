package geom

import "math"

// AABB is an axis-aligned 2D bounding box over screen coordinates with
// inclusive Min and exclusive Max, matching half-open pixel ranges.
type AABB struct {
	MinX, MinY float64
	MaxX, MaxY float64
}

// Empty reports whether the box contains no area.
func (b AABB) Empty() bool { return b.MaxX <= b.MinX || b.MaxY <= b.MinY }

// Intersect returns the intersection of b and o (possibly empty).
func (b AABB) Intersect(o AABB) AABB {
	return AABB{
		MinX: math.Max(b.MinX, o.MinX),
		MinY: math.Max(b.MinY, o.MinY),
		MaxX: math.Min(b.MaxX, o.MaxX),
		MaxY: math.Min(b.MaxY, o.MaxY),
	}
}

// Triangle is a screen-space triangle carrying the per-vertex attributes
// the fragment stage interpolates: depth and texture coordinates.
// P holds screen positions with Z = depth in [0,1].
type Triangle struct {
	P  [3]Vec3
	UV [3]Vec2
}

// Bounds returns the screen-space bounding box of the triangle.
func (t *Triangle) Bounds() AABB {
	minX := math.Min(t.P[0].X, math.Min(t.P[1].X, t.P[2].X))
	minY := math.Min(t.P[0].Y, math.Min(t.P[1].Y, t.P[2].Y))
	maxX := math.Max(t.P[0].X, math.Max(t.P[1].X, t.P[2].X))
	maxY := math.Max(t.P[0].Y, math.Max(t.P[1].Y, t.P[2].Y))
	return AABB{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// SignedArea2 returns twice the signed area of the triangle in screen
// space (positive for counter-clockwise in the y-down convention used
// here when vertices wind clockwise on screen).
func (t *Triangle) SignedArea2() float64 {
	a := Vec2{t.P[1].X - t.P[0].X, t.P[1].Y - t.P[0].Y}
	b := Vec2{t.P[2].X - t.P[0].X, t.P[2].Y - t.P[0].Y}
	return a.Cross(b)
}

// Degenerate reports whether the triangle has (near-)zero area and can be
// skipped by the rasterizer.
func (t *Triangle) Degenerate() bool {
	return math.Abs(t.SignedArea2()) < 1e-12
}

// EdgeSetup holds the precomputed edge-function coefficients for point-in-
// triangle tests and barycentric interpolation, plus copies of the
// per-vertex attributes it interpolates. Build once per primitive,
// evaluate per sample: this mirrors the fixed-function triangle setup in
// hardware rasterizers. The setup is self-contained (it does not alias
// the source Triangle), so it can be stored and moved freely.
type EdgeSetup struct {
	// Edge functions E_i(x,y) = A_i*x + B_i*y + C_i, one per edge.
	A, B, C [3]float64
	invArea float64 // 1 / (2 * signed area), sign-normalized
	z       [3]float64
	uv      [3]Vec2
}

// Setup computes the edge functions for t. Triangles of either winding
// are accepted; the coefficients are normalized so that interior points
// have all E_i >= 0. Returns false for degenerate triangles.
func (t *Triangle) Setup() (EdgeSetup, bool) {
	area2 := t.SignedArea2()
	if math.Abs(area2) < 1e-12 {
		return EdgeSetup{}, false
	}
	var e EdgeSetup
	for i := 0; i < 3; i++ {
		e.z[i] = t.P[i].Z
		e.uv[i] = t.UV[i]
	}
	sign := 1.0
	if area2 < 0 {
		sign = -1.0
	}
	// Edge i is opposite vertex i: connects vertex (i+1)%3 to (i+2)%3.
	for i := 0; i < 3; i++ {
		p1 := t.P[(i+1)%3]
		p2 := t.P[(i+2)%3]
		e.A[i] = sign * (p1.Y - p2.Y)
		e.B[i] = sign * (p2.X - p1.X)
		e.C[i] = sign * (p1.X*p2.Y - p2.X*p1.Y)
	}
	e.invArea = 1 / (sign * area2)
	return e, true
}

// Inside reports whether screen point (x, y) lies inside the triangle
// (edge-inclusive).
func (e *EdgeSetup) Inside(x, y float64) bool {
	for i := 0; i < 3; i++ {
		if e.A[i]*x+e.B[i]*y+e.C[i] < 0 {
			return false
		}
	}
	return true
}

// Barycentric returns the barycentric coordinates of (x, y) with respect
// to the triangle's vertices. Coordinates sum to 1; points outside the
// triangle yield negative components.
func (e *EdgeSetup) Barycentric(x, y float64) (l0, l1, l2 float64) {
	l0 = (e.A[0]*x + e.B[0]*y + e.C[0]) * e.invArea
	l1 = (e.A[1]*x + e.B[1]*y + e.C[1]) * e.invArea
	l2 = 1 - l0 - l1
	return
}

// DepthAt interpolates the triangle's depth at screen point (x, y).
func (e *EdgeSetup) DepthAt(x, y float64) float64 {
	l0, l1, l2 := e.Barycentric(x, y)
	return l0*e.z[0] + l1*e.z[1] + l2*e.z[2]
}

// UVAt interpolates the triangle's texture coordinates at screen point
// (x, y). Interpolation is affine (screen-linear); the synthetic scenes
// use modest depth ranges for which perspective correction does not
// change cache-line footprints materially.
func (e *EdgeSetup) UVAt(x, y float64) Vec2 {
	l0, l1, l2 := e.Barycentric(x, y)
	return Vec2{
		X: l0*e.uv[0].X + l1*e.uv[1].X + l2*e.uv[2].X,
		Y: l0*e.uv[0].Y + l1*e.uv[1].Y + l2*e.uv[2].Y,
	}
}

// UVFootprint returns |d(uv)/d(x)| and |d(uv)/d(y)| in texture-coordinate
// units per pixel. For an affine mapping these derivatives are constant
// across the triangle, which is what the LOD computation needs.
func (e *EdgeSetup) UVFootprint() (dudx, dvdx, dudy, dvdy float64) {
	for i := 0; i < 3; i++ {
		u := e.uv[i].X
		v := e.uv[i].Y
		dudx += e.A[i] * e.invArea * u
		dvdx += e.A[i] * e.invArea * v
		dudy += e.B[i] * e.invArea * u
		dvdy += e.B[i] * e.invArea * v
	}
	return
}
