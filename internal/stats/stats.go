// Package stats provides the small statistical toolkit the evaluation
// uses: the paper's normalized mean-deviation imbalance metric, running
// accumulators, and five-number summaries for the violin plots of
// Figs. 14 and 15.
package stats

import (
	"math"
	"sort"
)

// MeanDeviation returns the mean absolute deviation of xs from their
// mean, normalized to the mean (as a fraction; multiply by 100 for the
// percentages the paper plots). This is the imbalance metric of Figs. 1,
// 12, 14 and 15: deviation of per-SC quantities normalized to the mean of
// all SCs. Returns 0 for empty input or zero mean.
func MeanDeviation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := Mean(xs)
	if mean == 0 {
		return 0
	}
	dev := 0.0
	for _, x := range xs {
		dev += math.Abs(x - mean)
	}
	return dev / float64(len(xs)) / mean
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, the conventional way to
// average speedups. All inputs must be positive; non-positive inputs
// contribute as if they were 1.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
		}
	}
	return math.Exp(s / float64(len(xs)))
}

// Summary is a five-number summary plus mean, the data behind a violin
// plot entry.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Median   float64
	Q1, Q3   float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		Median: quantile(sorted, 0.5),
		Q1:     quantile(sorted, 0.25),
		Q3:     quantile(sorted, 0.75),
	}
}

// quantile returns the q-quantile of sorted data using linear
// interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Accumulator collects a stream of samples with O(1) memory for mean and
// extrema plus the raw samples when retention is enabled (needed for
// Summarize).
type Accumulator struct {
	n        int
	sum      float64
	min, max float64
	keep     bool
	samples  []float64
}

// NewAccumulator returns an accumulator. If keepSamples is true the raw
// samples are retained so Summary() can compute quantiles.
func NewAccumulator(keepSamples bool) *Accumulator {
	return &Accumulator{keep: keepSamples}
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	if a.keep {
		a.samples = append(a.samples, x)
	}
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the mean of the recorded samples (0 if none).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min returns the smallest recorded sample (0 if none).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest recorded sample (0 if none).
func (a *Accumulator) Max() float64 { return a.max }

// Summary returns the five-number summary. It panics if the accumulator
// was created without sample retention and samples were added, because
// quantiles would silently be wrong.
func (a *Accumulator) Summary() Summary {
	if !a.keep && a.n > 0 {
		panic("stats: Summary requires an accumulator with sample retention")
	}
	return Summarize(a.samples)
}

// Samples returns the retained raw samples (nil when retention is off).
func (a *Accumulator) Samples() []float64 { return a.samples }
