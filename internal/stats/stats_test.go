package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestMeanDeviation(t *testing.T) {
	// Perfectly balanced input has zero deviation.
	if got := MeanDeviation([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("balanced deviation = %v", got)
	}
	// [0, 10]: mean 5, |dev| = 5 each, normalized = 1.
	if got := MeanDeviation([]float64{0, 10}); !almost(got, 1) {
		t.Errorf("deviation = %v, want 1", got)
	}
	// [2, 4, 6, 8]: mean 5, deviations 3,1,1,3 -> mad 2, normalized 0.4.
	if got := MeanDeviation([]float64{2, 4, 6, 8}); !almost(got, 0.4) {
		t.Errorf("deviation = %v, want 0.4", got)
	}
	if got := MeanDeviation(nil); got != 0 {
		t.Errorf("MeanDeviation(nil) = %v", got)
	}
	if got := MeanDeviation([]float64{0, 0}); got != 0 {
		t.Errorf("MeanDeviation(zero mean) = %v", got)
	}
}

func TestMeanDeviationScaleInvariant(t *testing.T) {
	// Property: scaling all samples by a positive constant does not change
	// the normalized deviation — it is a relative imbalance measure.
	f := func(a, b, c, d uint16, scale uint8) bool {
		if scale == 0 {
			return true
		}
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1}
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = xs[i] * float64(scale)
		}
		return math.Abs(MeanDeviation(xs)-MeanDeviation(ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almost(got, 2) {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Median, 3) || !almost(s.Mean, 3) {
		t.Errorf("Summary = %+v", s)
	}
	if !almost(s.Q1, 2) || !almost(s.Q3, 4) {
		t.Errorf("quartiles = %v %v", s.Q1, s.Q3)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 || one.Q1 != 7 || one.Q3 != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	a := Summarize([]float64{1, 2, 3, 4, 5, 6})
	b := Summarize([]float64{6, 3, 1, 5, 2, 4})
	if a != b {
		t.Errorf("summaries differ: %+v vs %+v", a, b)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(true)
	for _, x := range []float64{3, 1, 4, 1, 5} {
		a.Add(x)
	}
	if a.N() != 5 || a.Min() != 1 || a.Max() != 5 || !almost(a.Mean(), 2.8) {
		t.Errorf("accumulator state: n=%d min=%v max=%v mean=%v", a.N(), a.Min(), a.Max(), a.Mean())
	}
	s := a.Summary()
	if s.N != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestAccumulatorNoRetentionPanics(t *testing.T) {
	a := NewAccumulator(false)
	a.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("Summary on non-retaining accumulator did not panic")
		}
	}()
	a.Summary()
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator(false)
	if a.Mean() != 0 || a.N() != 0 {
		t.Error("empty accumulator not zero")
	}
	// Summary on an empty non-retaining accumulator is legal.
	if s := a.Summary(); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}
