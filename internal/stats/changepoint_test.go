package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// stepSeries builds a deterministic synthetic benchmark series of n
// points at level base, multiplied by (1+mag) from index offset on
// (offset < 0: no step), with multiplicative Gaussian noise of the
// given fraction.
func stepSeries(n, offset int, base, mag, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		level := base
		if offset >= 0 && i >= offset {
			level = base * (1 + mag)
		}
		xs[i] = level * (1 + noise*rng.NormFloat64())
	}
	return xs
}

// driftSeries ramps linearly from base to base*(1+total) over n points,
// with multiplicative noise.
func driftSeries(n int, base, total, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		level := base * (1 + total*float64(i)/float64(n-1))
		xs[i] = level * (1 + noise*rng.NormFloat64())
	}
	return xs
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range cases {
		if got := Median(tc.in); got != tc.want {
			t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMAD(t *testing.T) {
	if got := MAD([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("MAD of constant series = %v, want 0", got)
	}
	// {1,2,3,4,5}: median 3, residuals {2,1,0,1,2}, MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD(nil); got != 0 {
		t.Errorf("MAD(nil) = %v, want 0", got)
	}
}

// TestDetectStepsInjected is the core battery: synthetic series with a
// step of known offset and magnitude, across noise levels, directions
// and positions, must yield exactly one detection at (or adjacent to)
// the injected offset with the right ratio.
func TestDetectStepsInjected(t *testing.T) {
	cases := []struct {
		name   string
		n, off int
		mag    float64
		noise  float64
	}{
		{"clean-20pct", 80, 40, 0.20, 0},
		{"noisy1-20pct", 80, 40, 0.20, 0.01},
		{"noisy3-20pct", 80, 40, 0.20, 0.03},
		{"noisy3-50pct", 80, 40, 0.50, 0.03},
		{"noisy1-10pct", 80, 40, 0.10, 0.01},
		{"improvement-20pct", 80, 40, -0.20, 0.02},
		{"early-step", 100, 20, 0.25, 0.02},
		{"late-step", 100, 80, 0.25, 0.02},
		{"large-2x", 60, 30, 1.00, 0.03},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			xs := stepSeries(tc.n, tc.off, 100, tc.mag, tc.noise, int64(1000+ci))
			steps := DetectSteps(xs, StepConfig{})
			if len(steps) != 1 {
				t.Fatalf("got %d steps (%+v), want exactly 1", len(steps), steps)
			}
			s := steps[0]
			if d := s.Index - tc.off; d < -2 || d > 2 {
				t.Errorf("step at index %d, want %d (±2)", s.Index, tc.off)
			}
			wantRatio := 1 + tc.mag
			if math.Abs(s.Ratio-wantRatio) > 0.05*wantRatio {
				t.Errorf("ratio %.3f, want %.3f (±5%%)", s.Ratio, wantRatio)
			}
			up := tc.mag > 0
			if (s.Ratio > 1) != up {
				t.Errorf("step direction wrong: ratio %.3f for magnitude %+.2f", s.Ratio, tc.mag)
			}
		})
	}
}

// TestDetectStepsNoiseOnly asserts a zero false-positive count at the
// default thresholds over pure-noise series of several amplitudes and
// seeds — the budget DESIGN.md §13 promises.
func TestDetectStepsNoiseOnly(t *testing.T) {
	for _, noise := range []float64{0, 0.01, 0.03, 0.05} {
		for seed := int64(0); seed < 20; seed++ {
			xs := stepSeries(200, -1, 100, 0, noise, 7000+seed)
			if steps := DetectSteps(xs, StepConfig{}); len(steps) != 0 {
				t.Errorf("noise=%.2f seed=%d: false positive %+v", noise, seed, steps)
			}
		}
	}
}

// TestDetectStepsDrift asserts slow monotone drift — even a doubling,
// as long as it accrues gradually — is not reported as a step.
func TestDetectStepsDrift(t *testing.T) {
	for _, total := range []float64{0.30, 0.60, 1.00} {
		for _, noise := range []float64{0, 0.01} {
			xs := driftSeries(120, 100, total, noise, int64(9000+int(total*100)))
			if steps := DetectSteps(xs, StepConfig{}); len(steps) != 0 {
				t.Errorf("drift total=%.0f%% noise=%.2f: flagged %+v", total*100, noise, steps)
			}
		}
	}
}

// TestDetectStepsTwoSteps checks independent shifts far apart are both
// found, in order.
func TestDetectStepsTwoSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 120)
	for i := range xs {
		level := 100.0
		if i >= 40 {
			level = 125
		}
		if i >= 90 {
			level = 100
		}
		xs[i] = level * (1 + 0.02*rng.NormFloat64())
	}
	steps := DetectSteps(xs, StepConfig{})
	if len(steps) != 2 {
		t.Fatalf("got %d steps (%+v), want 2", len(steps), steps)
	}
	if d := steps[0].Index - 40; d < -2 || d > 2 {
		t.Errorf("first step at %d, want 40 (±2)", steps[0].Index)
	}
	if d := steps[1].Index - 90; d < -2 || d > 2 {
		t.Errorf("second step at %d, want 90 (±2)", steps[1].Index)
	}
	if steps[0].Ratio < 1 || steps[1].Ratio > 1 {
		t.Errorf("directions wrong: %+v", steps)
	}
}

// TestDetectStepsScaleInvariant is the property test: multiplying a
// series by any positive constant must not change what is detected —
// same indices, same scores (within float tolerance), scaled levels.
// This is what makes the detector unit-agnostic (ns/op vs ms/op).
func TestDetectStepsScaleInvariant(t *testing.T) {
	series := [][]float64{
		stepSeries(80, 40, 100, 0.20, 0.03, 1),
		stepSeries(80, -1, 100, 0, 0.03, 2),
		driftSeries(120, 100, 0.60, 0.01, 3),
		stepSeries(100, 25, 3e-7, 0.30, 0.02, 4), // sub-microsecond units
	}
	for si, xs := range series {
		ref := DetectSteps(xs, StepConfig{})
		for _, c := range []float64{1e-6, 0.5, 3, 1e6} {
			scaled := make([]float64, len(xs))
			for i, x := range xs {
				scaled[i] = c * x
			}
			got := DetectSteps(scaled, StepConfig{})
			if len(got) != len(ref) {
				t.Fatalf("series %d scale %g: %d steps, want %d", si, c, len(got), len(ref))
			}
			for i := range got {
				if got[i].Index != ref[i].Index {
					t.Errorf("series %d scale %g: index %d, want %d", si, c, got[i].Index, ref[i].Index)
				}
				if relDiff(got[i].Score, ref[i].Score) > 1e-6 {
					t.Errorf("series %d scale %g: score %g, want %g", si, c, got[i].Score, ref[i].Score)
				}
				if relDiff(got[i].Ratio, ref[i].Ratio) > 1e-9 {
					t.Errorf("series %d scale %g: ratio %g, want %g", si, c, got[i].Ratio, ref[i].Ratio)
				}
				if relDiff(got[i].Before, c*ref[i].Before) > 1e-9 {
					t.Errorf("series %d scale %g: before %g, want %g", si, c, got[i].Before, c*ref[i].Before)
				}
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestDetectStepsShortSeries: series shorter than two windows cannot
// support the test and must return nil rather than panic.
func TestDetectStepsShortSeries(t *testing.T) {
	for n := 0; n < 20; n++ {
		xs := stepSeries(n, n/2, 100, 0.5, 0, 1)
		if steps := DetectSteps(xs, StepConfig{}); steps != nil {
			t.Errorf("n=%d: got %+v, want nil", n, steps)
		}
	}
}

func ExampleDetectSteps() {
	xs := stepSeries(60, 30, 100, 0.25, 0, 1)
	for _, s := range DetectSteps(xs, StepConfig{}) {
		fmt.Printf("step at %d: %.0f -> %.0f (%.2fx)\n", s.Index, s.Before, s.After, s.Ratio)
	}
	// Output:
	// step at 30: 100 -> 125 (1.25x)
}
