package stats

import (
	"math"
	"sort"
)

// This file holds the step-change (changepoint) detector behind the
// continuous-perf service (internal/perfdb, DESIGN.md §13). The input
// is a per-commit series of benchmark measurements (already collapsed
// to medians-of-runs by the caller); the output is the set of sharp
// level shifts — the signature of a regression or an optimization
// landing at one commit — with slow drift and pure noise rejected.
//
// The test is windowed and rank-based: at every candidate boundary i
// the medians of the Window points on each side are compared, and the
// gap is normalized by the pooled median absolute deviation (MAD) of
// the two windows. Every threshold is relative or MAD-normalized, so
// detection is invariant under constant positive scaling of the series
// (ns/op vs µs/op must not change verdicts); the property is pinned by
// TestDetectStepsScaleInvariant.

// Median returns the median of xs (0 for empty input). The input is
// not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// MAD returns the median absolute deviation of xs around its median —
// the robust noise scale the step detector normalizes by. Unscaled
// (no 1.4826 Gaussian-consistency factor): the detector's K threshold
// absorbs the constant.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	res := make([]float64, len(xs))
	for i, x := range xs {
		res[i] = math.Abs(x - m)
	}
	return Median(res)
}

// StepConfig tunes DetectSteps. The zero value selects the defaults
// below, which target benchmark time series: medians of repeated runs
// with a few percent of run-to-run noise, where a defended regression
// is a level shift of 5% or more.
type StepConfig struct {
	// Window is the number of points compared on each side of a
	// candidate boundary (default 10, minimum 2). Series shorter than
	// 2*Window yield no detections.
	Window int
	// K is the significance threshold in pooled-MAD multiples: the
	// window medians must differ by at least K*MAD (default 6 —
	// calibrated so that 500 pure-noise series of 200 points at up to
	// 5% relative noise produce zero detections, while a 20% step over
	// 3% noise is found >98% of the time; see changepoint_test.go).
	K float64
	// MinRel is the minimum relative level shift |after/before - 1|
	// (default 0.05): a shift can be many MADs in a near-noiseless
	// series and still be too small to care about.
	MinRel float64
	// DriftGuard rejects slow drift (default 2). Two ratios must both
	// exceed it: the median gap over the summed within-window
	// half-trends, and — where the series is long enough to measure it
	// — the gap at the candidate over the larger of the gaps one full
	// window to each side (peakedness). A pure linear ramp scores
	// exactly 1 on both ratios regardless of slope, so any guard above
	// 1 rejects it; a sharp step has flat half-windows and
	// noise-floor neighbor gaps, and passes easily.
	DriftGuard float64
}

func (c StepConfig) withDefaults() StepConfig {
	if c.Window == 0 {
		c.Window = 10
	}
	if c.Window < 2 {
		c.Window = 2
	}
	if c.K == 0 {
		c.K = 6
	}
	if c.MinRel == 0 {
		c.MinRel = 0.05
	}
	if c.DriftGuard == 0 {
		c.DriftGuard = 2
	}
	return c
}

// Step is one detected level shift.
type Step struct {
	// Index is the first point of the new regime: xs[Index-1] is the
	// last point at the old level, xs[Index] the first at the new one.
	Index int `json:"index"`
	// Before and After are the window medians on each side of Index.
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	// Ratio is After/Before (>1: the series went up — a regression for
	// time-like series; <1: an improvement). 0 when Before is 0.
	Ratio float64 `json:"ratio"`
	// Score is the MAD-normalized significance of the shift at Index.
	Score float64 `json:"score"`
}

// DetectSteps scans xs for sharp level shifts and returns them in
// index order, at most one per Window-sized neighborhood (contiguous
// flagged boundaries cluster to their maximum-score member). Pure
// noise and slow drift return nil; see StepConfig for the knobs.
func DetectSteps(xs []float64, cfg StepConfig) []Step {
	cfg = cfg.withDefaults()
	w := cfg.Window
	if len(xs) < 2*w {
		return nil
	}

	// Window medians and gaps at every candidate boundary, computed up
	// front so the peakedness guard can compare a candidate's gap with
	// its neighbors' without recomputation.
	lo, hi := w, len(xs)-w
	mbs := make([]float64, hi-lo+1)
	mas := make([]float64, hi-lo+1)
	gaps := make([]float64, hi-lo+1)
	for i := lo; i <= hi; i++ {
		mbs[i-lo] = Median(xs[i-w : i])
		mas[i-lo] = Median(xs[i : i+w])
		gaps[i-lo] = math.Abs(mas[i-lo] - mbs[i-lo])
	}

	type cand struct {
		idx    int
		before float64
		after  float64
		score  float64
	}
	var flagged []cand
	res := make([]float64, 0, 2*w) // pooled residual scratch
	for i := lo; i <= hi; i++ {
		before, after := xs[i-w:i], xs[i:i+w]
		mb, ma, gap := mbs[i-lo], mas[i-lo], gaps[i-lo]

		// Relative size of the shift; scale-invariant even at mb == 0.
		var rel float64
		switch {
		case mb != 0:
			rel = gap / math.Abs(mb)
		case gap != 0:
			rel = math.Inf(1)
		}
		if rel < cfg.MinRel {
			continue
		}

		// Significance: gap in pooled-MAD multiples. The |mb|-relative
		// floor keeps the score finite (and scale-invariant) when a
		// noiseless series would otherwise divide by zero.
		res = res[:0]
		for _, x := range before {
			res = append(res, math.Abs(x-mb))
		}
		for _, x := range after {
			res = append(res, math.Abs(x-ma))
		}
		mad := Median(res)
		score := gap / (mad + 1e-9*math.Abs(mb) + math.SmallestNonzeroFloat64)
		if score < cfg.K {
			continue
		}

		// Drift guard 1 (sharpness): the gap must dominate the trend
		// *inside* each window (median of its younger half minus its
		// older half). This also rejects boundaries offset from a true
		// step by nearly half a window, localizing the detection.
		h := w / 2
		tb := math.Abs(Median(before[h:]) - Median(before[:h]))
		ta := math.Abs(Median(after[h:]) - Median(after[:h]))
		if gap <= cfg.DriftGuard*(tb+ta) {
			continue
		}

		// Drift guard 2 (peakedness): a ramp has the same median gap
		// at every boundary, a step only at the boundary itself — the
		// gap must dominate the gap one full window to each side.
		peak := 0.0
		if i-w >= lo {
			peak = gaps[i-w-lo]
		}
		if i+w <= hi && gaps[i+w-lo] > peak {
			peak = gaps[i+w-lo]
		}
		if gap <= cfg.DriftGuard*peak {
			continue
		}

		flagged = append(flagged, cand{idx: i, before: mb, after: ma, score: score})
	}

	// Cluster: boundaries within one window of each other describe the
	// same shift; keep the sharpest. Exact score ties (noiseless
	// series, where boundaries adjacent to the true step tie) break to
	// the middle tied index, which is the step itself by symmetry.
	var out []Step
	for s := 0; s < len(flagged); {
		e := s + 1
		for e < len(flagged) && flagged[e].idx-flagged[e-1].idx < w {
			e++
		}
		best := flagged[s].score
		for _, c := range flagged[s+1 : e] {
			if c.score > best {
				best = c.score
			}
		}
		var tied []cand
		for _, c := range flagged[s:e] {
			if c.score >= best*(1-1e-12) {
				tied = append(tied, c)
			}
		}
		pick := tied[len(tied)/2]
		ratio := 0.0
		if pick.before != 0 {
			ratio = pick.after / pick.before
		}
		out = append(out, Step{
			Index:  pick.idx,
			Before: pick.before,
			After:  pick.after,
			Ratio:  ratio,
			Score:  pick.score,
		})
		s = e
	}
	return out
}
