package pipeline

import (
	"testing"

	"dtexl/internal/sched"
)

func TestLateZShadesEverything(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "Mze", cfg) // 3D: Early-Z normally culls a lot
	early, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lz := cfg
	lz.LateZ = true
	late, err := Run(scene, lz)
	if err != nil {
		t.Fatal(err)
	}
	if late.Events.QuadsCulled != 0 {
		t.Errorf("Late-Z culled %d quads at the raster stage", late.Events.QuadsCulled)
	}
	wantShaded := early.Events.QuadsShaded + early.Events.QuadsCulled
	if late.Events.QuadsShaded != wantShaded {
		t.Errorf("Late-Z shaded %d quads, want all %d covered quads", late.Events.QuadsShaded, wantShaded)
	}
	// Paying overdraw in full must cost time.
	if late.Cycles <= early.Cycles {
		t.Errorf("Late-Z (%d cycles) not slower than Early-Z (%d)", late.Cycles, early.Cycles)
	}
}

func TestLateZStillBenefitsFromDTexL(t *testing.T) {
	// The scheduler's locality argument is orthogonal to the Z mode.
	cfg := testConfig()
	cfg.LateZ = true
	scene := testScene(t, "TRu", cfg)
	base, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dt := cfg
	dt.Grouping = sched.CGSquare
	dt.Decoupled = true
	prop, err := Run(scene, dt)
	if err != nil {
		t.Fatal(err)
	}
	if prop.L2Accesses() >= base.L2Accesses() {
		t.Errorf("DTexL under Late-Z: L2 %d not below baseline %d", prop.L2Accesses(), base.L2Accesses())
	}
	if prop.Cycles >= base.Cycles {
		t.Errorf("DTexL under Late-Z: cycles %d not below baseline %d", prop.Cycles, base.Cycles)
	}
}
