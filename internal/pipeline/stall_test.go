package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// stallConfig returns a small configuration with a fast-firing watchdog,
// so injected livelocks are declared in microseconds instead of the
// production threshold.
func stallConfig() Config {
	cfg := testConfig()
	cfg.WatchdogSteps = 128
	return cfg
}

// assertStall checks the structured-stall contract the executors share:
// the error unwraps to ErrStall, carries the executor mode and a full
// per-SC dump, and never reaches the caller as a panic.
func assertStall(t *testing.T, err error, mode string, numSC int) *StallError {
	t.Helper()
	if err == nil {
		t.Fatal("stalled run returned nil error")
	}
	if !errors.Is(err, ErrStall) {
		t.Fatalf("error does not unwrap to ErrStall: %v", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *StallError: %v", err)
	}
	if se.Mode != mode {
		t.Errorf("Mode = %q, want %q", se.Mode, mode)
	}
	if se.Steps == 0 {
		t.Error("Steps = 0, want the exhausted watchdog budget")
	}
	if len(se.SCs) != numSC {
		t.Errorf("dump has %d SCs, want %d", len(se.SCs), numSC)
	}
	dump := se.Dump()
	for _, want := range []string{"mode=" + mode, "SC0:", "in-flight tile"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump() missing %q:\n%s", want, dump)
		}
	}
	return se
}

// TestChaosStallCoupled is the regression test for the former coupled
// drainAll deadlock panic: a stalled coupled executor must return a
// diagnosable *StallError, not kill the process.
func TestChaosStallCoupled(t *testing.T) {
	cfg := stallConfig()
	scene := testScene(t, "TRu", cfg)
	_, err := RunContext(WithChaosStall(context.Background()), scene, cfg)
	se := assertStall(t, err, "coupled", cfg.NumSC)
	if se.Reason == "" {
		t.Error("empty stall reason")
	}
}

// TestChaosStallDecoupled covers the decoupled executor's two former
// panic sites (blocked SC, window livelock) via the same watchdog path.
func TestChaosStallDecoupled(t *testing.T) {
	cfg := stallConfig()
	cfg.Decoupled = true
	scene := testScene(t, "TRu", cfg)
	_, err := RunContext(WithChaosStall(context.Background()), scene, cfg)
	se := assertStall(t, err, "decoupled", cfg.NumSC)
	if se.WindowHi < se.WindowLo {
		t.Errorf("window [%d,%d) is inverted", se.WindowLo, se.WindowHi)
	}
}

// TestChaosStallIMR covers the IMR executor's former deadlock panic.
func TestChaosStallIMR(t *testing.T) {
	cfg := stallConfig()
	scene := testScene(t, "TRu", cfg)
	_, err := RunIMRContext(WithChaosStall(context.Background()), scene, cfg)
	assertStall(t, err, "imr", cfg.NumSC)
}

// TestRunContextCanceled verifies a canceled context aborts a run with
// the context's error instead of completing or hanging.
func TestRunContextCanceled(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, scene, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunPreparedContextCanceled exercises the mid-raster cancellation
// path: RunPreparedContext has no per-frame check, so the abort must
// come from the executor watchdog's periodic context poll.
func TestRunPreparedContextCanceled(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	prep, err := PrepareFrame(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPreparedContext(ctx, prep, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextDeadline verifies deadline expiry surfaces as
// context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	if _, err := RunContext(ctx, scene, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestWatchdogStepsValidation pins the new Config field's bounds.
func TestWatchdogStepsValidation(t *testing.T) {
	cfg := testConfig()
	cfg.WatchdogSteps = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative WatchdogSteps validated")
	}
	cfg.WatchdogSteps = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero WatchdogSteps (use default) rejected: %v", err)
	}
	if got := cfg.watchdogLimit(); got != defaultWatchdogSteps {
		t.Fatalf("watchdogLimit() = %d, want default %d", got, defaultWatchdogSteps)
	}
}

// TestCleanRunsStayClean guards against watchdog false positives: every
// healthy executor mode must still complete under the production
// threshold.
func TestCleanRunsStayClean(t *testing.T) {
	for _, mode := range []string{"coupled", "decoupled", "imr"} {
		cfg := testConfig()
		scene := testScene(t, "CCS", cfg)
		var err error
		switch mode {
		case "coupled":
			_, err = RunContext(context.Background(), scene, cfg)
		case "decoupled":
			cfg.Decoupled = true
			_, err = RunContext(context.Background(), scene, cfg)
		case "imr":
			_, err = RunIMRContext(context.Background(), scene, cfg)
		}
		if err != nil {
			t.Errorf("%s: clean run failed: %v", mode, err)
		}
	}
}
