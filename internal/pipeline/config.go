// Package pipeline implements the TBR graphics pipeline of Fig. 3 — the
// Geometry Pipeline, the Tiling Engine, and the Raster Pipeline with its
// four parallel Early-Z / Fragment / Blend units — together with the
// cycle-approximate execution engine that the evaluation measures.
//
// Two barrier disciplines are implemented (§II-C vs §III-E):
//
//   - Coupled (baseline, Fig. 4): every raster stage works on a single
//     tile at a time; a shader core may not receive quads from tile t+1
//     until all shader cores have finished tile t.
//   - Decoupled (DTexL, Fig. 10): the Z/Color-buffer banks gate per
//     Subtile, so each shader core streams straight into its next subtile
//     as soon as it finishes its own, bounded only by the rasterizer FIFO.
//
// Every executor is deterministic and, by default, single-threaded. A
// context wrapped with WithParallel opts a run into the intra-run
// parallel executors (parallel.go): per-tile coverage construction and
// per-shader-core stepping fan out over worker goroutines while a
// conservative sequencer replays every shared-state access in the
// serial executors' exact order, so the output is byte-identical to the
// serial path — callers may memoize across the setting. The full
// concurrency & determinism contract, including the rules future
// policies must follow to stay inside it, is DESIGN.md §11.
package pipeline

import (
	"fmt"

	"dtexl/internal/cache"
	"dtexl/internal/render"
	"dtexl/internal/sched"
	"dtexl/internal/stats"
	"dtexl/internal/tileorder"
)

// GPU address-map bases for the frame's working structures. They share
// the address space with textures (0x1000_0000) and vertex buffers
// (0x4000_0000) allocated by the trace package.
const (
	primAttrBase    = 0x8000_0000 // parameter buffer: per-primitive attributes
	tileListBase    = 0xa000_0000 // parameter buffer: per-tile primitive ID lists
	framebufferBase = 0xc000_0000 // final color buffer in DRAM
)

// Config selects the architecture under evaluation. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Width, Height is the screen resolution in pixels (Table II:
	// 1960x768).
	Width, Height int
	// TileSize is the square tile side in pixels (Table II: 32).
	TileSize int
	// NumSC is the number of shader cores / parallel raster pipelines.
	// The paper (and DefaultConfig) uses 4; 1 with a 4x L1 gives the
	// upper-bound configuration of Fig. 16.
	NumSC int
	// WarpSlots is the number of quad-warps resident per SC; it bounds
	// how much memory latency multithreading can hide.
	WarpSlots int
	// RasterRate is the rasterizer throughput in quads per cycle.
	RasterRate float64
	// FIFODepth is how many tiles the rasterizer may run ahead of the
	// slowest consumer (the quad FIFO capacity, in tiles).
	FIFODepth int
	// SampleOverhead is the fixed texture-unit cycles added per sample on
	// top of cache latencies.
	SampleOverhead int64
	// L1FillPorts is the number of outstanding L1 texture misses an SC
	// can sustain (MSHRs). Misses beyond it queue on the fill ports.
	L1FillPorts int
	// TileBarrierCycles is the fixed cost of crossing the coupled
	// barriers between tiles: draining and refilling the raster-stage
	// FIFOs and swapping the Z/Color bank state. The decoupled
	// architecture overlaps this per parallel unit with its own stream
	// (§III-E reduces inter-tile idle time "to near zero"), so it is
	// charged only in coupled mode.
	TileBarrierCycles int64

	// Grouping maps quads to Subtiles (Fig. 6).
	Grouping sched.Grouping
	// Assignment re-maps Subtiles to SCs along the tile walk (Fig. 8).
	Assignment sched.Assignment
	// TileOrder sets the Tiling Engine's tile processing order (Fig. 7).
	TileOrder tileorder.Kind
	// Decoupled selects the DTexL barrier architecture (§III-E).
	Decoupled bool
	// LateZ disables the Early-Z stage, as required when the shader
	// writes fragment depth (§II-A): every covered quad is shaded and
	// depth is resolved at the (Late) Z test before blending. Overdraw is
	// then paid in full by the shader cores.
	LateZ bool
	// PreciseBinning makes the Polygon List Builder test exact
	// triangle/tile overlap instead of bounding boxes, shedding the
	// false-positive list entries thin diagonal triangles produce. It
	// never changes what is rendered — the rasterizer re-tests coverage —
	// only Parameter Buffer size and Tile Fetcher traffic.
	PreciseBinning bool
	// WarpSched selects the intra-SC warp scheduling policy. The paper's
	// related work (§VI) surveys many GPGPU warp schedulers; the
	// abl-warpsched experiment shows DTexL's benefit is insensitive to
	// this axis, as those works are orthogonal to quad placement.
	WarpSched WarpSchedPolicy
	// TexturePrefetch enables a decoupled access/execute texture
	// prefetcher in the style of Arnau et al. (cited in the paper's §VI
	// as orthogonal to DTexL): a quad's texture lines are fetched when
	// the warp is admitted, so the fills overlap its leading compute
	// segments instead of stalling its samples. Prefetching hides
	// latency but creates no fill bandwidth, so it cannot substitute for
	// the scheduler: a replication-heavy stream stays port-bound.
	TexturePrefetch bool

	// Hierarchy configures the memory system (Table II). Hierarchy.NumSC
	// must equal NumSC.
	Hierarchy cache.HierarchyConfig

	// CollectTimeline records per-tile, per-SC execution spans in
	// Metrics.Timeline (coupled mode only, where tiles delimit clean
	// spans) — the raw data behind the Figs. 14/15 violins, exportable
	// for visualizing barrier bubbles.
	CollectTimeline bool

	// SampleEvery, when positive, snapshots per-SC occupancy, queue
	// depth, busy-cycle deltas and L1/L2 traffic deltas into
	// Metrics.Intervals roughly every SampleEvery cycles (at the first
	// SC event on or after each boundary). 0 disables sampling entirely:
	// the executors then carry a single nil pointer check per scheduling
	// step and the simulated timing, traffic and output are untouched —
	// the steady state stays allocation-free. Sampling never perturbs
	// the simulation either way (it only reads state), so it is excluded
	// from the prepared-frame memo key like WatchdogSteps.
	SampleEvery int64

	// WatchdogSteps bounds how many scheduling steps an executor may
	// take without any SC clock advance or quad retirement before the
	// run fails with a *StallError (livelock detection). 0 selects the
	// conservative default (defaultWatchdogSteps); the threshold never
	// affects the simulated timing of a healthy run, so it is excluded
	// from the prepared-frame memo key.
	WatchdogSteps int

	// RenderTarget, when non-nil, receives the resolved frame colors.
	// Rendering is purely observational: timing, traffic and energy are
	// identical with or without it, and the image is identical under
	// every scheduler — the pipeline-correctness invariant of §III-C.
	RenderTarget *render.Framebuffer

	// ClockHz converts cycles to FPS (Table II: 600 MHz).
	ClockHz float64
}

// DefaultConfig returns the paper's baseline architecture at the Table II
// operating point: FG-xshift2 grouping, Z-order tiles, constant subtile
// assignment, coupled barriers.
func DefaultConfig() Config {
	return Config{
		Width: 1960, Height: 768,
		TileSize:          32,
		NumSC:             4,
		WarpSlots:         8,
		RasterRate:        2,
		FIFODepth:         8,
		SampleOverhead:    2,
		L1FillPorts:       1,
		TileBarrierCycles: 96,
		Grouping:          sched.FGXShift2,
		Assignment:        sched.ConstAssign,
		TileOrder:         tileorder.ZOrder,
		Decoupled:         false,
		Hierarchy:         cache.DefaultHierarchyConfig(),
		ClockHz:           600e6,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("pipeline: invalid resolution %dx%d", c.Width, c.Height)
	case c.TileSize <= 0 || c.TileSize%8 != 0:
		// The tile side in quads (TileSize/2) must divide into four equal
		// strips/quadrants for every Fig. 6 grouping.
		return fmt.Errorf("pipeline: tile size %d must be a positive multiple of 8", c.TileSize)
	case c.NumSC != 1 && c.NumSC != sched.NumSubtiles:
		return fmt.Errorf("pipeline: NumSC must be %d (or 1 for the upper bound), got %d", sched.NumSubtiles, c.NumSC)
	case c.NumSC != c.Hierarchy.NumSC:
		return fmt.Errorf("pipeline: NumSC (%d) != Hierarchy.NumSC (%d)", c.NumSC, c.Hierarchy.NumSC)
	case c.WarpSlots <= 0:
		return fmt.Errorf("pipeline: WarpSlots must be positive")
	case c.RasterRate <= 0:
		return fmt.Errorf("pipeline: RasterRate must be positive")
	case c.FIFODepth <= 0:
		return fmt.Errorf("pipeline: FIFODepth must be positive")
	case c.L1FillPorts <= 0:
		return fmt.Errorf("pipeline: L1FillPorts must be positive")
	case c.ClockHz <= 0:
		return fmt.Errorf("pipeline: ClockHz must be positive")
	case c.WatchdogSteps < 0:
		return fmt.Errorf("pipeline: WatchdogSteps must be non-negative")
	case c.SampleEvery < 0:
		return fmt.Errorf("pipeline: SampleEvery must be non-negative")
	// Out-of-range enum values would otherwise surface as panics deep in
	// the run (e.g. tileorder.Sequence); reject them here instead.
	case c.Grouping < sched.FGChecker || c.Grouping > sched.CGTri:
		return fmt.Errorf("pipeline: unknown grouping %d", int(c.Grouping))
	case c.Assignment < sched.ConstAssign || c.Assignment > sched.Flp3:
		return fmt.Errorf("pipeline: unknown subtile assignment %d", int(c.Assignment))
	case c.TileOrder < tileorder.Scanline || c.TileOrder > tileorder.HilbertRect:
		return fmt.Errorf("pipeline: unknown tile order %d", int(c.TileOrder))
	case c.WarpSched < WarpSchedEarliest || c.WarpSched > WarpSchedYoungest:
		return fmt.Errorf("pipeline: unknown warp scheduling policy %d", int(c.WarpSched))
	}
	return nil
}

// watchdogLimit resolves the livelock threshold.
func (c Config) watchdogLimit() int {
	if c.WatchdogSteps > 0 {
		return c.WatchdogSteps
	}
	return defaultWatchdogSteps
}

// TilesX returns the tile-grid width (partial edge tiles round up).
func (c Config) TilesX() int { return (c.Width + c.TileSize - 1) / c.TileSize }

// TilesY returns the tile-grid height.
func (c Config) TilesY() int { return (c.Height + c.TileSize - 1) / c.TileSize }

// QuadsPerTileSide returns the tile side measured in quads.
func (c Config) QuadsPerTileSide() int { return c.TileSize / 2 }

// WarpSchedPolicy selects which ready warp an SC issues from.
type WarpSchedPolicy int

const (
	// WarpSchedEarliest issues the warp that became ready first — the
	// default, approximating greedy-then-oldest behaviour.
	WarpSchedEarliest WarpSchedPolicy = iota
	// WarpSchedRoundRobin rotates fairly through the ready warps.
	WarpSchedRoundRobin
	// WarpSchedYoungest issues the most recently admitted ready warp
	// (LIFO), the greedy extreme.
	WarpSchedYoungest
)

var warpSchedNames = map[WarpSchedPolicy]string{
	WarpSchedEarliest:   "earliest-ready",
	WarpSchedRoundRobin: "round-robin",
	WarpSchedYoungest:   "youngest-first",
}

// String returns the policy name.
func (p WarpSchedPolicy) String() string {
	if s, ok := warpSchedNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pipeline.WarpSchedPolicy(%d)", int(p))
}

// EventCounts are the activity counters the energy model integrates.
type EventCounts struct {
	ALUInstructions uint64 // shader ALU cycles issued
	TextureSamples  uint64 // texture unit sample operations
	L1TexAccesses   uint64
	L2Accesses      uint64
	DRAMAccesses    uint64
	VertexFetches   uint64
	QuadsShaded     uint64
	QuadsCulled     uint64 // rejected by Early-Z
	// FragmentsShaded counts the live lanes of the shaded quads: quads
	// on primitive edges run with helper lanes masked off.
	FragmentsShaded uint64
	FlushedLines    uint64 // color-buffer lines written to memory
	SCBusyCycles    uint64 // cycles an SC issued work, summed over SCs
	SCIdleCycles    uint64 // cycles an SC was stalled or barred, summed
	FrameCycles     uint64
}

// TileTiming is one tile's execution record under coupled barriers.
type TileTiming struct {
	Seq    int   // position in the tile walk
	TX, TY int   // tile coordinates
	Gate   int64 // cycle the barrier released the tile
	// Finish[sc] is when SC sc retired its last quad of this tile (Gate
	// if it had none); the tile completes at the max, and the gaps to it
	// are the barrier idle time.
	Finish []int64
}

// Metrics is everything one simulated frame reports.
type Metrics struct {
	Config Config

	// Cycles is the frame's total execution time.
	Cycles int64
	// FPS is ClockHz / Cycles.
	FPS float64

	// GeometryCycles and RasterCycles split the frame between the two
	// phases (TBR renders geometry for the whole frame before rastering).
	GeometryCycles int64
	RasterCycles   int64

	Events EventCounts

	// PerSCQuads counts shaded quads per SC over the frame.
	PerSCQuads []uint64
	// PerSCBusy is per-SC busy cycles.
	PerSCBusy []int64

	// TileTimeDeviation holds, per tile, the mean deviation of per-SC
	// execution time normalized to the mean (Fig. 14 violins). Only
	// meaningful for coupled runs (per-tile timing is well-defined there).
	TileTimeDeviation []float64
	// TileQuadDeviation is the same for per-SC quad counts (Fig. 15).
	TileQuadDeviation []float64
	// Timeline holds per-tile execution spans when CollectTimeline is set
	// on a coupled run.
	Timeline []TileTiming

	// SCBreakdown attributes every raster-phase cycle of each shader
	// core to one of five disjoint stall causes (see breakdown.go). For
	// every SC, SCBreakdown[i].Total() == RasterCycles exactly, and the
	// Idle() sum over SCs equals Events.SCIdleCycles bit-for-bit.
	SCBreakdown []SCBreakdown

	// Intervals is the periodic time series captured when
	// Config.SampleEvery > 0 (see interval.go); nil otherwise. The ring
	// buffer keeps the most recent maxIntervals snapshots;
	// IntervalsDropped counts older snapshots that were overwritten.
	Intervals        []Interval
	IntervalsDropped int

	// L1Tex and L2 and DRAM summarize the memory system.
	L1Tex cache.Stats
	L2    cache.Stats
}

// L2Accesses is a convenience accessor for the headline metric.
func (m *Metrics) L2Accesses() uint64 { return m.L2.Accesses }

// MeanTileTimeDeviation averages the per-tile execution-time imbalance.
func (m *Metrics) MeanTileTimeDeviation() float64 {
	return stats.Mean(m.TileTimeDeviation)
}

// MeanTileQuadDeviation averages the per-tile quad-count imbalance.
func (m *Metrics) MeanTileQuadDeviation() float64 {
	return stats.Mean(m.TileQuadDeviation)
}
