package pipeline_test

import (
	"reflect"
	"testing"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
	"dtexl/internal/trace"
)

// TestRunPreparedBitIdentical verifies the memoization contract at the
// pipeline level: a frame simulated from a shared PreparedFrame must
// produce metrics bit-identical to the unprepared Run, for every policy
// consuming the same preparation — including the single-SC upper bound,
// whose back half differs but whose front half is shared.
func TestRunPreparedBitIdentical(t *testing.T) {
	prof, err := trace.ProfileByAlias("TRu")
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 245, 96
	scene := trace.GenerateScene(prof, w, h, 1)

	pols := []core.Policy{core.Baseline(), core.BaselineDecoupled(), core.DTexL()}
	pols = append(pols, core.Fig8Mappings()...)

	var prep *pipeline.PreparedFrame
	for _, pol := range pols {
		cfg := pipeline.DefaultConfig()
		cfg.Width, cfg.Height = w, h
		pol.Apply(&cfg)
		if prep == nil {
			// One preparation (built under the first policy) serves all.
			prep, err = pipeline.PrepareFrame(scene, cfg)
			if err != nil {
				t.Fatal(err)
			}
		}
		live, err := pipeline.Run(scene, cfg)
		if err != nil {
			t.Fatal(err)
		}
		memo, err := pipeline.RunPrepared(prep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, memo) {
			t.Errorf("%s: prepared metrics differ from live run", pol.Name)
		}
	}

	// Upper bound: different SC count and L1 size, same front half.
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	core.ApplyUpperBound(&cfg)
	live, err := pipeline.Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := pipeline.RunPrepared(prep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, memo) {
		t.Error("upper bound: prepared metrics differ from live run")
	}
}

// TestRunPreparedRejectsMismatch checks the guard rails: a preparation
// must refuse configs whose front half differs.
func TestRunPreparedRejectsMismatch(t *testing.T) {
	prof, err := trace.ProfileByAlias("GTr")
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 245, 96
	scene := trace.GenerateScene(prof, w, h, 1)
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	prep, err := pipeline.PrepareFrame(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*pipeline.Config){
		"tilesize": func(c *pipeline.Config) { c.TileSize = 16 },
		"latez":    func(c *pipeline.Config) { c.LateZ = true },
		"l2size":   func(c *pipeline.Config) { c.Hierarchy.L2.SizeBytes *= 2 },
	} {
		bad := cfg
		mutate(&bad)
		if _, err := pipeline.RunPrepared(prep, bad); err == nil {
			t.Errorf("%s: mismatched config accepted", name)
		}
	}
}
