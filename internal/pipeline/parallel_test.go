package pipeline_test

import (
	"context"
	"reflect"
	"testing"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
	"dtexl/internal/trace"
)

// TestParallelBitIdenticalPipeline pins the concurrency contract at the
// pipeline level: a WithParallel run must produce metrics bit-identical
// to the serial run for every executor (coupled, decoupled, IMR). The
// sim-level TestParallelRunsBitIdentical covers the full benchmark
// matrix; this one is the fast, pipeline-only edition that runs under
// -race in ordinary test sweeps.
func TestParallelBitIdenticalPipeline(t *testing.T) {
	prof, err := trace.ProfileByAlias("TRu")
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 245, 96
	scene := trace.GenerateScene(prof, w, h, 1)
	pctx := pipeline.WithParallel(context.Background(), 8)

	pols := []core.Policy{core.Baseline(), core.BaselineDecoupled(), core.DTexL()}
	for _, pol := range pols {
		cfg := pipeline.DefaultConfig()
		cfg.Width, cfg.Height = w, h
		pol.Apply(&cfg)
		serial, err := pipeline.Run(scene, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := pipeline.RunContext(pctx, scene, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: parallel metrics differ from serial run", pol.Name)
		}
	}

	// IMR executor.
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	serial, err := pipeline.RunIMR(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := pipeline.RunIMRContext(pctx, scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("imr: parallel metrics differ from serial run")
	}
}

// TestParallelSampledBitIdentical pins the sampler half of the
// concurrency contract: with SampleEvery > 0 (now parallel-eligible,
// DESIGN.md §11) the parallel run's full Metrics — including the
// Intervals time series — must be bit-identical to the serial run's
// for every executor. The non-empty check keeps the comparison from
// passing vacuously if sampling were silently disabled again.
func TestParallelSampledBitIdentical(t *testing.T) {
	prof, err := trace.ProfileByAlias("TRu")
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 245, 96
	scene := trace.GenerateScene(prof, w, h, 1)
	pctx := pipeline.WithParallel(context.Background(), 8)

	type variant struct {
		name   string
		apply  func(*pipeline.Config)
		serial func(cfg pipeline.Config) (*pipeline.Metrics, error)
		par    func(cfg pipeline.Config) (*pipeline.Metrics, error)
	}
	var runs []variant
	for _, pol := range []core.Policy{core.Baseline(), core.BaselineDecoupled(), core.DTexL()} {
		pol := pol
		runs = append(runs, variant{
			name:  pol.Name,
			apply: func(cfg *pipeline.Config) { pol.Apply(cfg) },
			serial: func(cfg pipeline.Config) (*pipeline.Metrics, error) {
				return pipeline.Run(scene, cfg)
			},
			par: func(cfg pipeline.Config) (*pipeline.Metrics, error) {
				return pipeline.RunContext(pctx, scene, cfg)
			},
		})
	}
	runs = append(runs, variant{
		name: "imr",
		serial: func(cfg pipeline.Config) (*pipeline.Metrics, error) {
			return pipeline.RunIMR(scene, cfg)
		},
		par: func(cfg pipeline.Config) (*pipeline.Metrics, error) {
			return pipeline.RunIMRContext(pctx, scene, cfg)
		},
	})

	for _, r := range runs {
		cfg := pipeline.DefaultConfig()
		cfg.Width, cfg.Height = w, h
		if r.apply != nil {
			r.apply(&cfg)
		}
		cfg.SampleEvery = 256
		serial, err := r.serial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Intervals) == 0 {
			t.Fatalf("%s: serial run recorded no intervals; sampled bit-identity check is vacuous", r.name)
		}
		par, err := r.par(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: sampled parallel metrics (incl. Intervals) differ from serial run", r.name)
		}
	}
}

// TestParallelPreparedBitIdentical verifies that a preparation built on
// the worker pool is interchangeable with a serial one, and that a
// parallel RunPrepared matches the serial prepared run.
func TestParallelPreparedBitIdentical(t *testing.T) {
	prof, err := trace.ProfileByAlias("GTr")
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 245, 96
	scene := trace.GenerateScene(prof, w, h, 1)
	pctx := pipeline.WithParallel(context.Background(), 8)

	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	core.DTexL().Apply(&cfg)

	serialPrep, err := pipeline.PrepareFrame(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parPrep, err := pipeline.PrepareFrameContext(pctx, scene, cfg)
	if err != nil {
		t.Fatal(err)
	}

	want, err := pipeline.RunPrepared(serialPrep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*pipeline.Metrics, error){
		"parallel-prep/serial-run":   func() (*pipeline.Metrics, error) { return pipeline.RunPrepared(parPrep, cfg) },
		"serial-prep/parallel-run":   func() (*pipeline.Metrics, error) { return pipeline.RunPreparedContext(pctx, serialPrep, cfg) },
		"parallel-prep/parallel-run": func() (*pipeline.Metrics, error) { return pipeline.RunPreparedContext(pctx, parPrep, cfg) },
	} {
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: metrics differ from serial prepared run", name)
		}
	}
}

// TestParallelCanceledContext checks that cancellation reaches the
// parallel drains and surfaces as the context's error.
func TestParallelCanceledContext(t *testing.T) {
	prof, err := trace.ProfileByAlias("TRu")
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 245, 96
	scene := trace.GenerateScene(prof, w, h, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	if _, err := pipeline.RunContext(pipeline.WithParallel(ctx, 8), scene, cfg); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
