package pipeline

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dtexl/internal/cache"
)

// This file holds the intra-run parallel machinery shared by all three
// executors: the context knob that opts a run in, the conservative
// sequencer that reproduces the serial executors' shared-memory access
// order exactly (making parallel output byte-identical to serial — see
// DESIGN.md §11), the per-worker gate that routes texture traffic
// through it, and the parallel tile-coverage builder.
//
// The central invariant: a shader core's *private* state (its clock,
// warps, L1 texture cache, fill ports) evolves independently of every
// other core between shared-memory touch points, so only the global
// order of shared operations — L2/DRAM fills, tile-cache traffic,
// decoupled window mutations — is observable. The serial executors
// perform those operations in ascending (clock, SC index) order of the
// step that issues them. The sequencer is commutativity-aware
// (DESIGN.md §11): shared-operation *order* is established globally —
// a worker reserves its operations when its published key is the
// minimum — but *execution* is sharded by (L2 set, DRAM bank), since
// fills whose shard footprints are disjoint touch disjoint tag/LRU and
// open-row state and their counters are commutative per-worker sums.
// Two levers keep the global minimum moving: lookahead horizons
// (workers publish a proven lower bound on their next shared
// operation's key — the jump target of a clock jump, the post-step
// clock of a provably-private step — instead of the pessimistic current
// clock), and early release (a demand fill's reservation is the last
// shared action of its step, so the grant passes on before the fill
// executes, overlapping fills on disjoint shards).

// parallelKey flags a context with a worker count for intra-run
// parallelism.
type parallelKey struct{}

// WithParallel returns a context under which the executors run their
// per-SC stepping (and the prepared-frame coverage build) on up to n
// worker goroutines. n <= 0 means GOMAXPROCS. The run's output is
// byte-identical to the serial path, so memoized results are shared
// freely between serial and parallel requests; Config (and therefore
// every memo key) is deliberately untouched.
func WithParallel(ctx context.Context, n int) context.Context {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return context.WithValue(ctx, parallelKey{}, n)
}

// parallelWorkers reports the worker budget carried by ctx (1 = serial).
func parallelWorkers(ctx context.Context) int {
	n, _ := ctx.Value(parallelKey{}).(int)
	if n < 1 {
		return 1
	}
	return n
}

// parallelEligible reports whether a run under cfg may use the parallel
// drains. The gates are features whose state is inherently cross-SC or
// observation-order-dependent:
//   - NUCA makes the L1 level itself shared (every texture access is a
//     shared operation; nothing overlaps);
//   - chaos stall injection wants the serial watchdog's step accounting;
//   - a single SC has nothing to overlap.
//
// Interval sampling (Config.SampleEvery > 0) is deliberately *not* a
// gate: the sampler records per-SC state at deterministic clock
// thresholds and buckets fill traffic by issuing clock, so every worker
// writes only its own SC's series and the assembled Metrics.Intervals
// is bit-identical to the serial run's (see interval.go).
func parallelEligible(ctx context.Context, cfg Config) bool {
	return cfg.NumSC > 1 && cfg.NumSC <= 64 && // decoupled park bookkeeping is a uint64 mask
		!cfg.Hierarchy.NUCA &&
		!chaosStallEnabled(ctx)
}

// horizonDone is the horizon of a worker with no further shared
// operations: it never blocks anyone.
const horizonDone = math.MaxInt64

// paddedClock is a cache-line-padded atomic clock: each worker's horizon
// lives on its own line so publishing one never invalidates another's.
type paddedClock struct {
	v atomic.Int64
	_ [56]byte
}

// drainSync is the conservative sequencer. Each worker i continuously
// publishes its horizon — the pre-step clock of the scheduling step it
// is about to execute (or executing) — and acquire(i) blocks until
// worker i's (horizon, index) key is the global lexicographic minimum.
// Because each SC's step sequence and pre-step clocks are independent
// of interleaving (given the serial shared results, which holds
// inductively), granting shared operations in ascending key order
// reproduces the serial executors' shared access order exactly.
//
// Memory ordering: horizons are sync/atomic (sequentially consistent in
// the Go memory model), so a worker that observes every other horizon
// above its key also observes all shared-state writes those workers made
// before publishing — the grant transfer is a happens-before edge, which
// is what makes plain writes to the shared hierarchy race-free.
type drainSync struct {
	horizons []paddedClock
	mu       sync.Mutex
	cond     *sync.Cond
	// waiters counts workers inside the cond-wait slow path; publishers
	// skip the mutex entirely while it is zero (the common case).
	waiters atomic.Int32
	// failed aborts the drain: set on stall, cancellation or panic, it
	// releases every waiter and makes all subsequent grants fail fast.
	failed atomic.Bool
}

func (d *drainSync) init(n int) {
	d.horizons = make([]paddedClock, n)
	d.cond = sync.NewCond(&d.mu)
}

// cleared reports whether worker i, at key, holds the minimum
// (horizon, index) key and may touch shared state.
func (d *drainSync) cleared(i int, key int64) bool {
	for j := range d.horizons {
		if j == i {
			continue
		}
		h := d.horizons[j].v.Load()
		if h < key || (h == key && j < i) {
			return false
		}
	}
	return true
}

// acquire blocks until worker i's published key is the global minimum,
// returning false if the drain failed while waiting. Short spin first:
// grants usually clear within a few other-worker steps.
func (d *drainSync) acquire(i int) bool {
	key := d.horizons[i].v.Load()
	for spin := 0; spin < 128; spin++ {
		if d.failed.Load() {
			return false
		}
		if d.cleared(i, key) {
			return true
		}
		runtime.Gosched()
	}
	d.mu.Lock()
	d.waiters.Add(1)
	for !d.cleared(i, key) && !d.failed.Load() {
		d.cond.Wait()
	}
	d.waiters.Add(-1)
	d.mu.Unlock()
	return !d.failed.Load()
}

// publish sets worker i's horizon and wakes any slow-path waiters.
// Publishing a higher key is the grant release. The waiter increments
// waiters under the mutex before re-checking cleared, and both sides use
// sequentially-consistent atomics, so a publisher that misses the
// waiter's increment is ordered before the waiter's horizon load — the
// waiter then sees the new horizon and never sleeps on a stale picture.
func (d *drainSync) publish(i int, key int64) {
	d.horizons[i].v.Store(key)
	if d.waiters.Load() > 0 {
		d.mu.Lock()
		d.mu.Unlock() //nolint:staticcheck // empty section: fence against a waiter between check and Wait
		d.cond.Broadcast()
	}
}

// fail aborts the drain and wakes everyone.
func (d *drainSync) fail() {
	d.failed.Store(true)
	d.mu.Lock()
	d.mu.Unlock() //nolint:staticcheck // see publish
	d.cond.Broadcast()
}

// shardTable is the commutativity layer under the sequencer: one busy
// flag per L2 set and per DRAM bank, plus a count of in-flight sharded
// fill batches. Reservations are only ever taken by the worker holding
// the global minimum key — so per-shard reservation order equals global
// key order, no tickets needed — but execution proceeds after the grant
// moves on, letting fills with disjoint shard footprints overlap.
// Flag acquire/release are the happens-before edges that order two
// fills on the *same* shard; the `active` count lets operations with an
// unpredictable footprint (window bookkeeping, tile flushes, retires)
// wait until every in-flight fill has drained.
type shardTable struct {
	l2     []atomic.Int32
	dram   []atomic.Int32
	active atomic.Int64
}

// acquireFlag claims one shard's busy flag. Only a grant holder calls
// it; the flag, if set, is held by an earlier already-executing fill
// batch that never blocks, so the spin is bounded by that batch's
// remaining work.
func acquireFlag(f *atomic.Int32) {
	for spin := 0; !f.CompareAndSwap(0, 1); spin++ {
		if spin > 64 {
			runtime.Gosched()
		}
	}
}

// drainGate mediates one worker's shared-state access. A worker's first
// shared operation in a scheduling step acquires the global grant; the
// grant then covers the rest of the step (and the post-step feed work in
// the decoupled executor) until the worker publishes its next horizon —
// unless the operation was a demand fill batch, which releases the
// grant early after reserving its shards (sharedFills). Exclusivity
// persists for the whole region because horizons are monotone while
// anyone holds a grant: the only horizon-lowering operation (feeding a
// parked decoupled worker) is performed by the grant holder itself,
// deferred to its release.
type drainGate struct {
	d       *drainSync
	idx     int
	hier    *cache.Hierarchy
	shards  *shardTable
	held    bool
	aborted bool
	// entered records that the gate was taken at any point in the
	// current scheduling step, even if an early release (sharedFills)
	// already cleared held — it feeds the plan-divergence assertion and
	// the decoupled end-of-step feed decision.
	entered bool

	// shared is the worker's shadow of the L2/DRAM counters its sharded
	// fills touch — the only cross-shard state a fill mutates, and a
	// commutative sum (cache.Stats.Add), folded back by parDrain.merge.
	shared cache.SharedStats

	// Per-batch scratch for accessSampleGated (reused across steps).
	lineMiss  []bool
	missLines []uint64
	missLats  []int64
	resSets   []int32
}

// enter acquires the grant for the current step region (idempotent).
// It returns false when the drain is being torn down.
func (g *drainGate) enter() bool {
	if g.held {
		return true
	}
	if g.aborted {
		return false
	}
	if !g.d.acquire(g.idx) {
		g.aborted = true
		return false
	}
	g.held = true
	g.entered = true
	return true
}

// enterExclusive acquires the grant and additionally waits for every
// in-flight sharded fill batch to drain. Operations whose shard
// footprint is unpredictable — decoupled retires, feed passes, window
// extension, tile flushes — conflict with any shard, so they run only
// at active == 0. No new batch can start while the caller holds the
// grant (reservations require it), so the wait is bounded by the
// batches already executing, which never block.
func (g *drainGate) enterExclusive() bool {
	if !g.enter() {
		return false
	}
	for spin := 0; g.shards.active.Load() != 0; spin++ {
		if spin > 64 {
			runtime.Gosched()
		}
	}
	return true
}

// sharedFills performs the shared half of the misses collected in
// g.missLines, appending each fill's L2/DRAM latency to g.missLats:
// take the grant, reserve every distinct (L2 set, DRAM bank) the lines
// map to, then — for a demand batch, whose reservation is provably the
// last shared action of its scheduling step — publish the post-step
// clock and release the grant *before* executing the fills. The next
// worker in key order proceeds immediately and its fills overlap these
// wherever the shard reservations are disjoint; same-shard fills
// serialize on the busy flags in reservation (= serial key) order, so
// every fill sees exactly the tag/LRU and open-row state it would have
// seen serially. Counters go to the worker's shadow (g.shared).
//
// Returns false when the drain is being torn down; the caller then
// substitutes plausible latencies, since the run's results are
// discarded anyway.
func (g *drainGate) sharedFills(now int64, demand bool) bool {
	if !g.enter() {
		return false
	}
	t := g.shards
	g.resSets = g.resSets[:0]
	var banks uint64
	for _, line := range g.missLines {
		s := int32(g.hier.L2ShardOf(line))
		dup := false
		for _, r := range g.resSets {
			if r == s {
				dup = true
				break
			}
		}
		if !dup {
			acquireFlag(&t.l2[s])
			g.resSets = append(g.resSets, s)
		}
		b := g.hier.DRAMBankOf(line)
		if banks>>uint(b)&1 == 0 {
			acquireFlag(&t.dram[b])
			banks |= 1 << uint(b)
		}
	}
	t.active.Add(1)
	if demand {
		g.held = false
		g.d.publish(g.idx, now)
	}
	for _, line := range g.missLines {
		g.missLats = append(g.missLats, g.hier.TextureSharedFillSharded(line, &g.shared))
	}
	for _, s := range g.resSets {
		t.l2[s].Store(0)
	}
	for b := 0; banks != 0; b++ {
		if banks>>uint(b)&1 == 1 {
			t.dram[b].Store(0)
			banks &^= 1 << uint(b)
		}
	}
	t.active.Add(-1)
	return true
}

// accessSampleGated is accessSample's parallel-drain body: the span's
// private L1 lookups run uncoordinated first (they touch only this
// SC's L1), the misses' shared fills go through the sharded gate as
// one batch, and the fill-port bookkeeping replays in original line
// order. The reordering is invisible: L1 state and L2/DRAM state are
// disjoint, per-line L1 order and per-line fill order are both
// preserved, and the port logic consumes the same (hit/miss, latency)
// sequence the serial interleaving produces.
func (sc *scState) accessSampleGated(e *engineState, cov *tileCover, sp span, demand bool) int64 {
	g := e.gate
	if sc.fillFree == nil {
		sc.fillFree = make([]int64, e.cfg.L1FillPorts)
	}
	hitLat := e.cfg.Hierarchy.L1Tex.HitLatency
	lines := cov.lines[sp.off : sp.off+sp.n]
	g.lineMiss = g.lineMiss[:0]
	g.missLines = g.missLines[:0]
	g.missLats = g.missLats[:0]
	for _, line := range lines {
		_, miss := e.hier.TextureL1Access(sc.id, line)
		g.lineMiss = append(g.lineMiss, miss)
		if miss {
			g.missLines = append(g.missLines, line)
		}
	}
	if len(g.missLines) > 0 {
		l2Before := g.shared.L2
		if !g.sharedFills(sc.clock, demand) {
			for range g.missLines {
				g.missLats = append(g.missLats, e.cfg.Hierarchy.L2.HitLatency)
			}
		}
		if e.sampler != nil {
			e.sampler.bucketFill(sc.id, sc.clock, statsDelta(g.shared.L2, l2Before))
		}
	}
	ready := sc.clock + e.cfg.SampleOverhead + hitLat
	mi := 0
	for li := range lines {
		if !g.lineMiss[li] {
			// Pipelined L1 hit: covered by the base latency (NUCA, where
			// hits can cost more, is not parallel-eligible).
			continue
		}
		lat := hitLat + g.missLats[mi]
		mi++
		port := 0
		for p := 1; p < len(sc.fillFree); p++ {
			if sc.fillFree[p] < sc.fillFree[port] {
				port = p
			}
		}
		start := sc.clock
		if sc.fillFree[port] > start {
			start = sc.fillFree[port]
		}
		sc.fillFree[port] = start + lat
		if sc.fillFree[port] > ready {
			ready = sc.fillFree[port]
		}
	}
	e.events.L1TexAccesses += uint64(sp.n)
	e.events.TextureSamples++
	return ready
}

// drainWorker is one worker's per-goroutine state: a private engineState
// whose event counters shadow the shared ones (merged in fixed SC order
// after the drain), the gate, a private watchdog, and the failure
// outcome it observed.
type drainWorker struct {
	es     engineState
	gate   drainGate
	wd     watchdog
	err    error
	reason string
}

// parDrain runs the barrier-to-barrier SC drain of the coupled and IMR
// executors on one goroutine per shader core. It is allocated once per
// frame and reused across every drain (coupled runs one per tile).
type parDrain struct {
	d       drainSync
	shards  shardTable
	workers []drainWorker
}

func newParDrain(ctx context.Context, cfg Config, hier *cache.Hierarchy, numSC int, sampler *intervalSampler) *parDrain {
	p := &parDrain{workers: make([]drainWorker, numSC)}
	p.d.init(numSC)
	p.shards.l2 = make([]atomic.Int32, hier.NumL2Shards())
	p.shards.dram = make([]atomic.Int32, hier.NumDRAMShards())
	for i := range p.workers {
		w := &p.workers[i]
		w.gate = drainGate{d: &p.d, idx: i, hier: hier, shards: &p.shards}
		w.es = engineState{cfg: cfg, hier: hier, gate: &w.gate, sampler: sampler}
		w.wd = watchdog{ctx: ctx, limit: cfg.watchdogLimit()}
	}
	return p
}

// reset prepares the sequencer for a new drain: horizons of pending SCs
// start at their current clocks, finished SCs never block.
func (p *parDrain) reset(scs []*scState) {
	p.d.failed.Store(false)
	for i := range p.workers {
		w := &p.workers[i]
		if scs[i].pending() {
			p.d.horizons[i].v.Store(scs[i].clock)
		} else {
			p.d.horizons[i].v.Store(horizonDone)
		}
		w.err = nil
		w.reason = ""
		w.gate.held = false
		w.gate.entered = false
		w.gate.aborted = false
	}
}

// drain steps every pending SC to completion concurrently. It returns
// ran=false when fewer than two SCs have pending work — the caller then
// uses its serial loop, whose single-SC stepping the sequencer could
// only slow down. On ran=true, reason/err carry the first (by SC index)
// worker failure, mirroring the serial loop's error surface.
func (p *parDrain) drain(scs []*scState) (ran bool, reason string, err error) {
	pending := 0
	for _, sc := range scs {
		if sc.pending() {
			pending++
		}
	}
	if pending <= 1 {
		return false, "", nil
	}
	p.reset(scs)
	var wg sync.WaitGroup
	for i := range p.workers {
		if !scs[i].pending() {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.run(i, scs[i])
		}(i)
	}
	wg.Wait()
	for i := range p.workers {
		if w := &p.workers[i]; w.err != nil {
			return true, "", w.err
		}
	}
	for i := range p.workers {
		if w := &p.workers[i]; w.reason != "" {
			return true, w.reason, nil
		}
	}
	return true, "", nil
}

// errPlanDiverged reports the invariant the lookahead rests on: a step
// plan() declared shared-free must not touch the gate. It fails the
// drain loudly (the run errors out and its results are discarded)
// instead of silently corrupting the shared-order replay.
var errPlanDiverged = errors.New("pipeline: internal: private-planned step performed a shared operation")

// run is the coupled/IMR worker loop: publish the next step's lookahead
// horizon, step, repeat. No feeds or retires happen during these drains
// (the coupled executor aligns inputs before the barrier and the IMR
// executor before the batch), so the only shared operations are texture
// fills inside steps, all mediated by the gate.
func (p *parDrain) run(i int, sc *scState) {
	w := &p.workers[i]
	d := &p.d
	for sc.pending() {
		if d.failed.Load() {
			break
		}
		w.gate.held = false
		w.gate.entered = false
		h, priv := sc.plan(&w.es)
		d.publish(i, h)
		reason, err := w.wd.step(&w.es, sc)
		if priv && w.gate.entered {
			err = errPlanDiverged
		}
		if err != nil {
			w.err = err
			d.fail()
			break
		}
		if reason != "" {
			w.reason = reason
			d.fail()
			break
		}
	}
	d.publish(i, horizonDone)
}

// ---------------------------------------------------------------------
// Decoupled parallel drain.
//
// The decoupled executor interleaves SC steps with shared bookkeeping
// that the coupled/IMR drains never see mid-drain: quad retires move the
// window (advanceLo), drained SCs are re-fed (decAdvance: bank flush +
// setInput), and the window is extended (rasterizeTile). The serial
// loop runs a feed pass over the drained SCs before every step batch;
// a pass only does something when an SC just drained or the window
// moved since its last failed attempt. The parallel drain reproduces
// that order with three rules:
//
//  1. Every shared operation inside a step (texture fill, retire) runs
//     under the sequencer grant at the step's (pre-step clock, index)
//     key — exactly the serial step order.
//  2. A worker whose step took the grant, drained its SC, or observed
//     `armed` runs one feed pass at the end of the step, still under
//     the same grant — the serial pass position, since the serial loop
//     re-passes immediately after any step that changed feedability.
//     Passes that find nothing feedable are no-ops, so extra passes
//     never diverge from the serial schedule.
//  3. A drained SC whose self-feed failed parks: its worker registers
//     in parkedMask (under the grant), publishes horizonDone and
//     sleeps. Feeding it is then some grant holder's job; the feeder
//     defers the horizon restore and wakeup to after its whole pass so
//     grant exclusivity is never shared. The last worker to park
//     drives the serial loop's idle branch (extend window / watchdog)
//     under its grant.
//
// `armed` flags the one case a pass leaves work behind: decAdvance can
// extend the window mid-pass, making SCs tried earlier in that same
// pass feedable again. The serial loop handles it by re-passing after
// the next step; here every worker checks armed at end of step and runs
// the pass under its grant. armed is recomputed at the end of every
// pass, so a stale true costs a no-op pass and a momentarily stale
// false is caught by the next sequentially-consistent load — private
// steps in between commute with shared state either way.
// ---------------------------------------------------------------------

// decPar is the decoupled drain's park/wake state. parkedMask and the
// executor's window state are only touched under the sequencer grant;
// wakeFed and done are guarded by parkMu; armed is atomic.
type decPar struct {
	ex *executor
	p  *parDrain

	parkMu   sync.Mutex
	parkCond *sync.Cond
	wakeFed  []bool
	done     bool

	parkedMask uint64 // grant-guarded: workers whose SC drained and could not be re-fed
	allMask    uint64
	armed      atomic.Bool
}

// abort fails the drain and wakes both grant waiters and parked workers.
func (dp *decPar) abort() {
	dp.p.d.fail()
	dp.parkMu.Lock()
	dp.parkMu.Unlock() //nolint:staticcheck // fence against a parker between predicate check and Wait
	dp.parkCond.Broadcast()
}

// finish marks the frame complete and wakes every parked worker.
func (dp *decPar) finish() {
	dp.parkMu.Lock()
	dp.done = true
	dp.parkMu.Unlock()
	dp.parkCond.Broadcast()
}

// wakeParked restores the horizons of freshly fed workers and wakes
// them. The caller holds the grant and must perform no further shared
// operations: a restored horizon may be the new global minimum, at
// which point the fed worker owns the shared state.
func (dp *decPar) wakeParked(fed uint64) {
	if fed == 0 {
		return
	}
	dp.parkMu.Lock()
	for j := range dp.wakeFed {
		if fed>>uint(j)&1 == 1 {
			dp.p.d.horizons[j].v.Store(dp.ex.scs[j].clock)
			dp.wakeFed[j] = true
		}
	}
	dp.parkMu.Unlock()
	dp.parkCond.Broadcast()
}

// decFeedPass runs one serial-order feed pass over the parked SCs plus
// the caller's own, under the caller's grant. Only those SCs may be
// examined: a running worker's pending state is racy, and the invariant
// that parking happens under a continuously-held grant makes
// "not pending" equivalent to "in parkedMask" for every other SC.
// Fed workers' mask bits are cleared here, but their horizons are not
// restored — the caller wakes them via wakeParked after its last shared
// operation. Returns the mask of other workers fed.
func (ex *executor) decFeedPass(dp *decPar, self int) uint64 {
	var fed uint64
	mask := dp.parkedMask | 1<<uint(self)
	for i, sc := range ex.scs {
		if mask>>uint(i)&1 == 0 || sc.pending() || ex.dFail[i] == ex.windowGen {
			continue
		}
		if ex.decAdvance(sc) {
			ex.dFail[i] = neverFailed
			if i != self {
				fed |= 1 << uint(i)
				dp.parkedMask &^= 1 << uint(i)
			}
		} else {
			ex.dFail[i] = ex.windowGen
		}
	}
	armed := false
	for i, sc := range ex.scs {
		if dp.parkedMask>>uint(i)&1 == 1 && !sc.pending() && ex.dFail[i] != ex.windowGen {
			armed = true
			break
		}
	}
	dp.armed.Store(armed)
	return fed
}

// decDriveIdle is the serial loop's nothing-pending branch, run under
// the grant by the last worker to park: extend the window, re-pass, and
// count idle iterations toward the watchdog until some SC is fed, the
// frame completes, or the window stalls. Returns the mask of other
// workers fed (the caller wakes them); if the driver's own SC was fed
// its park bit is cleared and it resumes stepping.
func (ex *executor) decDriveIdle(dp *decPar, self int) uint64 {
	n := len(ex.seq)
	w := &dp.p.workers[self]
	var fed uint64
	for {
		if dp.p.d.failed.Load() {
			return fed
		}
		fed |= ex.decFeedPass(dp, self)
		if ex.scs[self].pending() {
			dp.parkedMask &^= 1 << uint(self)
			return fed
		}
		if fed != 0 {
			return fed
		}
		if ex.lo >= n && ex.hi >= n {
			dp.finish()
			return fed
		}
		if ex.extendWindow() {
			w.wd.noProgress = 0
			continue
		}
		if ex.lo >= n {
			dp.finish()
			return fed
		}
		if w.wd.idleTick() {
			w.reason = "window stalled: rasterizer cannot advance"
			dp.abort()
			return fed
		}
	}
}

// decWorker is one SC's decoupled worker loop: publish the step key,
// step, and run the end-of-step feed pass whenever this step could have
// changed feedability (it took the grant or drained the SC) or another
// worker's pass left armed feed work behind.
func (ex *executor) decWorker(dp *decPar, i int) {
	p := dp.p
	w := &p.workers[i]
	sc := ex.scs[i]
	d := &p.d
	for {
		if d.failed.Load() {
			break
		}
		if !sc.pending() {
			// Parked: our mask bit is set and horizonDone published (by
			// the prologue, or by our own park below). Sleep until a
			// feeder hands us input — it restores our horizon before
			// setting wakeFed, so waking straight into a step is safe.
			dp.parkMu.Lock()
			for !dp.wakeFed[i] && !dp.done && !d.failed.Load() {
				dp.parkCond.Wait()
			}
			dp.wakeFed[i] = false
			dp.parkMu.Unlock()
			if !sc.pending() {
				break // done or failed
			}
			continue
		}
		w.gate.held = false
		w.gate.entered = false
		h, priv := sc.plan(&w.es)
		d.publish(i, h)
		reason, err := w.wd.step(&w.es, sc)
		if priv && w.gate.entered {
			w.err = errPlanDiverged
			dp.abort()
			break
		}
		if err != nil {
			w.err = err
			dp.abort()
			break
		}
		if reason != "" {
			w.reason = reason
			dp.abort()
			break
		}
		// Run the end-of-step feed pass when this step could have changed
		// feedability (it held the grant through a retire or prefetch, or
		// it drained the SC) or another worker's pass left armed feed work
		// behind. A demand fill batch released the grant early (held is
		// false again) and cannot change feedability, so it skips the
		// pass unless armed — and its gate entry ordered it after any
		// armed store, so the flag is never stale for it.
		if w.gate.held || !sc.pending() || dp.armed.Load() {
			if !w.gate.enterExclusive() {
				break
			}
			fed := ex.decFeedPass(dp, i)
			if !sc.pending() {
				// Self-feed failed: park under the still-held grant.
				dp.parkedMask |= 1 << uint(i)
				if dp.parkedMask == dp.allMask {
					fed |= ex.decDriveIdle(dp, i)
				}
			}
			dp.wakeParked(fed)
			if !sc.pending() {
				d.publish(i, horizonDone)
			}
		}
	}
	d.publish(i, horizonDone)
}

// runDecoupledParallel drains the decoupled frame on one worker per SC
// with output byte-identical to the serial loop in runDecoupled. The
// serial prologue below replays the loop's feed/extend sequence until
// some SC has work — no steps have run yet, so it is trivially
// order-identical — and the workers take over from there.
func (ex *executor) runDecoupledParallel() error {
	p := ex.par
	n := len(ex.seq)
	nsc := len(ex.scs)
	dp := &decPar{ex: ex, p: p}
	dp.parkCond = sync.NewCond(&dp.parkMu)
	dp.wakeFed = make([]bool, nsc)
	dp.allMask = uint64(1)<<uint(nsc) - 1

	for {
		any := false
		for _, sc := range ex.scs {
			if !sc.pending() && ex.dFail[sc.id] != ex.windowGen {
				if ex.decAdvance(sc) {
					ex.dFail[sc.id] = neverFailed
				} else {
					ex.dFail[sc.id] = ex.windowGen
				}
			}
			if sc.pending() {
				any = true
			}
		}
		if any {
			break
		}
		if ex.lo >= n && ex.hi >= n {
			ex.decFrameEnd()
			return nil
		}
		if ex.extendWindow() {
			ex.wd.noProgress = 0
			continue
		}
		if ex.lo >= n {
			ex.decFrameEnd()
			return nil
		}
		if ex.wd.idleTick() {
			return ex.stallErr("decoupled", "window stalled: rasterizer cannot advance")
		}
	}

	p.reset(ex.scs)
	armed := false
	for i, sc := range ex.scs {
		if !sc.pending() {
			dp.parkedMask |= 1 << uint(i)
			if ex.dFail[i] != ex.windowGen {
				armed = true
			}
		}
	}
	dp.armed.Store(armed)

	// Each worker's retire takes the grant and forwards to the shared
	// window bookkeeping installed by runDecoupled. After an abort the
	// retire is dropped: the step only needs to finish locally.
	sharedRetire := ex.es.retire
	for i := range p.workers {
		w := &p.workers[i]
		w.es.retire = func(sc *scState, tw *tileWork, at int64) {
			// Retires mutate the decoupled window and flush through the
			// tile cache — an unpredictable shard footprint — so they wait
			// out every in-flight sharded fill besides taking the grant.
			if !w.gate.enterExclusive() {
				return
			}
			sharedRetire(sc, tw, at)
		}
	}
	defer func() {
		for i := range p.workers {
			p.workers[i].es.retire = nil
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < nsc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ex.decWorker(dp, i)
		}(i)
	}
	wg.Wait()

	for i := range p.workers {
		if w := &p.workers[i]; w.err != nil {
			return w.err
		}
	}
	for i := range p.workers {
		if w := &p.workers[i]; w.reason != "" {
			return ex.stallErr("decoupled", w.reason)
		}
	}
	p.merge(&ex.es.events)
	ex.decFrameEnd()
	return nil
}

// merge folds the per-worker event shadows into the shared counters and
// the per-worker L2/DRAM stat shadows into the hierarchy, in fixed
// worker (= SC index) order. Every field is a commutative sum (proved
// for the cache/DRAM side by TestStatsCommutative), so the result is
// independent of which worker counted what — the fixed order is
// belt-and-braces for bit-identity.
func (p *parDrain) merge(ev *EventCounts) {
	for i := range p.workers {
		w := &p.workers[i]
		ev.add(&w.es.events)
		w.es.events = EventCounts{}
		w.gate.hier.AddSharedStats(&w.gate.shared)
	}
}

// add accumulates o into c field by field.
func (c *EventCounts) add(o *EventCounts) {
	c.ALUInstructions += o.ALUInstructions
	c.TextureSamples += o.TextureSamples
	c.L1TexAccesses += o.L1TexAccesses
	c.L2Accesses += o.L2Accesses
	c.DRAMAccesses += o.DRAMAccesses
	c.VertexFetches += o.VertexFetches
	c.QuadsShaded += o.QuadsShaded
	c.QuadsCulled += o.QuadsCulled
	c.FragmentsShaded += o.FragmentsShaded
	c.FlushedLines += o.FlushedLines
	c.SCBusyCycles += o.SCBusyCycles
	c.SCIdleCycles += o.SCIdleCycles
	c.FrameCycles += o.FrameCycles
}

// parallelCovers builds every tile's policy-independent coverage
// skeleton on `workers` goroutines. Coverage is a pure function of
// (primitives, binning, tile) — the coverer never touches the memory
// hierarchy — so each worker uses its own coverer (Z-buffer, samplers)
// and writes disjoint slots; the result is identical to the serial
// loop in PrepareFrame. Callers must ensure cfg.RenderTarget == nil
// (coverTile with a live render target also resolves colors, whose
// blend order must follow the tile walk).
func parallelCovers(cfg Config, prims []Primitive, b *Binning, workers int) []*tileCover {
	tilesX, tilesY := cfg.TilesX(), cfg.TilesY()
	n := tilesX * tilesY
	if workers > n {
		workers = n
	}
	covers := make([]*tileCover, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cov := newCoverer(cfg, prims, b)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				covers[i] = cov.coverTile(i%tilesX, i/tilesX, nil)
			}
		}()
	}
	wg.Wait()
	return covers
}
