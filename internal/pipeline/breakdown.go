package pipeline

// Cycle-attributed stall accounting (§III-E, Fig. 17's mechanism). Every
// shader-core cycle of the raster phase is attributed to exactly one
// disjoint cause, so the paper's idle-time story — coupled barriers turn
// SC time into barrier-idle, decoupled barriers turn it into useful work
// bounded only by texture latency and raster supply — can be decomposed,
// plotted and regression-tested instead of inferred from a lump-sum idle
// counter.
//
// The taxonomy is operational: the executors advance an SC's clock in
// exactly four ways, and each advance increments exactly one counter.
//
//   - Busy: cycles the SC issued ALU work (scState.exec).
//   - TexWait: the SC had resident warps but none ready — the clock
//     jumped to the earliest texture-fill completion (scState.step).
//   - BarrierWait: coupled mode only — the SC waited at the inter-tile
//     barrier for the slowest core of the previous tile plus the fixed
//     barrier-crossing cost (executor.coupledTile's gate alignment, up
//     to the barrier component of the gate).
//   - QueueEmpty: the SC had no admissible quads because the rasterizer
//     (or, decoupled, its own previous bank flush) had not produced its
//     next stream yet — the raster-supply component of gate waits in all
//     three executors.
//   - DrainWait: end-of-frame — the SC finished its last quad and waited
//     for the remaining cores and flushes to drain (frameEnd - clock).
//
// Conservation law, enforced by TestStallBreakdownConserved: for every
// SC, Busy + TexWait + BarrierWait + QueueEmpty + DrainWait equals the
// frame's raster cycles exactly, and the sum of the four wait causes
// over all SCs equals the legacy EventCounts.SCIdleCycles bit-for-bit.

// SCBreakdown attributes one shader core's raster-phase cycles to the
// five disjoint stall causes. All counters are exact (no sampling).
type SCBreakdown struct {
	// Busy is cycles spent issuing ALU instructions.
	Busy int64
	// TexWait is cycles stalled on texture data with warps resident:
	// L1/L2/DRAM miss latency and fill-port queueing the other warps
	// could not hide.
	TexWait int64
	// BarrierWait is cycles aligned at a coupled inter-tile barrier
	// (waiting for slower cores plus TileBarrierCycles). Structurally
	// zero for the decoupled and IMR executors.
	BarrierWait int64
	// QueueEmpty is cycles with no admissible input: the rasterizer had
	// not produced the SC's next quad stream (pipeline fill, raster-bound
	// tiles, decoupled window stalls and bank-flush gating).
	QueueEmpty int64
	// DrainWait is end-of-frame cycles between the SC's last event and
	// frame completion (other cores and posted flushes draining).
	DrainWait int64
}

// Total is the sum of all five causes — the SC's share of RasterCycles.
func (b SCBreakdown) Total() int64 {
	return b.Busy + b.TexWait + b.BarrierWait + b.QueueEmpty + b.DrainWait
}

// Idle is the sum of the four wait causes — the SC's share of the legacy
// SCIdleCycles lump.
func (b SCBreakdown) Idle() int64 {
	return b.TexWait + b.BarrierWait + b.QueueEmpty + b.DrainWait
}

// Add accumulates o into b (multi-frame aggregation).
func (b *SCBreakdown) Add(o SCBreakdown) {
	b.Busy += o.Busy
	b.TexWait += o.TexWait
	b.BarrierWait += o.BarrierWait
	b.QueueEmpty += o.QueueEmpty
	b.DrainWait += o.DrainWait
}

// scBreakdowns assembles the per-SC breakdown at frame end. frameEnd is
// the raster phase's completion cycle; the gap between an SC's final
// clock and it is the drain wait.
func scBreakdowns(scs []*scState, frameEnd int64) []SCBreakdown {
	out := make([]SCBreakdown, len(scs))
	for i, sc := range scs {
		drain := frameEnd - sc.clock
		if drain < 0 {
			// Cannot happen (frameEnd majorizes every SC clock); keep the
			// breakdown non-negative so a future executor bug surfaces as
			// a conservation failure, not a negative counter.
			drain = 0
		}
		out[i] = SCBreakdown{
			Busy:        sc.busy,
			TexWait:     sc.texWait,
			BarrierWait: sc.barrierWait,
			QueueEmpty:  sc.queueEmpty,
			DrainWait:   drain,
		}
	}
	return out
}

// BreakdownTotals sums the per-SC breakdown over all shader cores.
func (m *Metrics) BreakdownTotals() SCBreakdown {
	var t SCBreakdown
	for _, b := range m.SCBreakdown {
		t.Add(b)
	}
	return t
}
