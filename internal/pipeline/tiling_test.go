package pipeline

import (
	"testing"

	"dtexl/internal/cache"
	"dtexl/internal/geom"
	"dtexl/internal/texture"
	"dtexl/internal/trace"
)

// thinDiagonalScene builds one long, thin diagonal triangle crossing many
// tiles — the worst case for bounding-box binning.
func thinDiagonalScene(cfg Config) *trace.Scene {
	w, h := float64(cfg.Width), float64(cfg.Height)
	tex := texture.New(0, 0x1000_0000, 64, 64)
	return &trace.Scene{
		Width: cfg.Width, Height: cfg.Height,
		Textures: []*texture.Texture{tex},
		Draws: []trace.DrawCommand{{
			Transform:  geom.Orthographic(0, w, h, 0, 0, 1),
			VertexBase: 0x4000_0000,
			Vertices: []trace.Vertex{
				{Pos: geom.Vec3{X: 2, Y: 2, Z: 0.5}},
				{Pos: geom.Vec3{X: 10, Y: 2, Z: 0.5}},
				{Pos: geom.Vec3{X: w - 2, Y: h - 2, Z: 0.5}},
			},
			Indices: []int{0, 1, 2},
			Tex:     tex,
			Shader:  trace.ShaderProfile{Instructions: 8, Samples: 1},
			Filter:  texture.Bilinear,
			Alpha:   1,
		}},
	}
}

func TestPreciseBinningShedsFalsePositives(t *testing.T) {
	cfg := testConfig()
	scene := thinDiagonalScene(cfg)
	hier := cache.NewHierarchy(cfg.Hierarchy)
	geo := RunGeometry(scene, hier, cfg)

	bbox := BinPrimitives(geo.Primitives, cache.NewHierarchy(cfg.Hierarchy), cfg)
	pc := cfg
	pc.PreciseBinning = true
	precise := BinPrimitives(geo.Primitives, cache.NewHierarchy(pc.Hierarchy), pc)

	count := func(b *Binning) int {
		n := 0
		for _, l := range b.Lists {
			n += len(l)
		}
		return n
	}
	nb, np := count(bbox), count(precise)
	if np >= nb {
		t.Errorf("precise binning (%d entries) not below bbox (%d) for a thin diagonal", np, nb)
	}
	// Precise lists must be a subset of bbox lists per tile.
	for i := range bbox.Lists {
		set := map[int32]bool{}
		for _, pi := range bbox.Lists[i] {
			set[pi] = true
		}
		for _, pi := range precise.Lists[i] {
			if !set[pi] {
				t.Fatalf("tile %d: precise binning added primitive %d missing from bbox binning", i, pi)
			}
		}
	}
}

func TestPreciseBinningPreservesRendering(t *testing.T) {
	// Shedding false positives must not change what is drawn.
	cfg := testConfig()
	scene := testScene(t, "CRa", cfg)
	plain, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc := cfg
	pc.PreciseBinning = true
	precise, err := Run(scene, pc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Events.QuadsShaded != precise.Events.QuadsShaded ||
		plain.Events.QuadsCulled != precise.Events.QuadsCulled {
		t.Errorf("precise binning changed shading: %d/%d vs %d/%d",
			precise.Events.QuadsShaded, precise.Events.QuadsCulled,
			plain.Events.QuadsShaded, plain.Events.QuadsCulled)
	}
	ref := renderFrame(t, "CRa", cfg)
	img := renderFrame(t, "CRa", pc)
	if !ref.Equal(img) {
		t.Error("precise binning changed the rendered image")
	}
}

func TestTileOverlapsExact(t *testing.T) {
	tri := geom.Triangle{P: [3]geom.Vec3{{X: 0, Y: 0}, {X: 64, Y: 0}, {X: 0, Y: 64}}}
	setup, ok := tri.Setup()
	if !ok {
		t.Fatal("setup failed")
	}
	p := &Primitive{Setup: setup}
	// Tile (0,0) with 32px tiles clearly overlaps.
	if !tileOverlaps(p, 0, 0, 32) {
		t.Error("overlapping tile rejected")
	}
	// Tile (1,1): the triangle's hypotenuse passes exactly through the
	// corner (32,32) -> still touches.
	if !tileOverlaps(p, 1, 1, 32) {
		t.Error("corner-touching tile rejected")
	}
	// Tile (2,2) (64..96) is fully outside.
	if tileOverlaps(p, 2, 2, 32) {
		t.Error("disjoint tile accepted")
	}
}

func TestBinningCycleCosts(t *testing.T) {
	cfg := testConfig()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	scene := testScene(t, "SWa", cfg)
	geo := RunGeometry(scene, hier, cfg)
	b := BinPrimitives(geo.Primitives, hier, cfg)
	if b.Cycles <= 0 {
		t.Error("binning recorded no cost")
	}
	cost := b.FetchTileCost(0, 0, geo.Primitives, hier)
	if cost <= 0 {
		t.Error("tile fetch recorded no cost")
	}
}
