package traceexport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"dtexl/internal/pipeline"
	"dtexl/internal/sched"
	dtrace "dtexl/internal/trace"
)

// testMetrics runs one small instrumented frame (timeline + interval
// sampling) and returns its metrics.
func testMetrics(t *testing.T, decoupled bool) *pipeline.Metrics {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Width, cfg.Height = 256, 128
	cfg.CollectTimeline = true
	cfg.SampleEvery = 512
	if decoupled {
		cfg.Decoupled = true
		cfg.Grouping = sched.CGSquare
	}
	prof, err := dtrace.ProfileByAlias("SWa")
	if err != nil {
		t.Fatal(err)
	}
	scene := dtrace.GenerateScene(prof, cfg.Width, cfg.Height, 1)
	m, err := pipeline.Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// validateEvents enforces the trace_event invariants the writer
// guarantees for arbitrary input: per-track monotone timestamps,
// balanced B/E with matching names, and no negative durations. Returns
// the first violation.
func validateEvents(evs []Event) error {
	type key struct{ pid, tid int }
	stacks := make(map[key][]Event)
	last := make(map[key]int64)
	for i, ev := range evs {
		k := key{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "B":
			if ev.Ts < 0 {
				return fmt.Errorf("event %d: negative B timestamp %d", i, ev.Ts)
			}
			if ev.Ts < last[k] {
				return fmt.Errorf("event %d (%q): B at %d before track high-water %d", i, ev.Name, ev.Ts, last[k])
			}
			stacks[k] = append(stacks[k], ev)
			last[k] = ev.Ts
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("event %d (%q): E with no open span on track %v", i, ev.Name, k)
			}
			open := st[len(st)-1]
			stacks[k] = st[:len(st)-1]
			if open.Name != ev.Name {
				return fmt.Errorf("event %d: E %q closes B %q", i, ev.Name, open.Name)
			}
			if ev.Ts < open.Ts {
				return fmt.Errorf("event %d (%q): negative duration %d..%d", i, ev.Name, open.Ts, ev.Ts)
			}
			last[k] = ev.Ts
		case "C":
			if ev.Ts < 0 {
				return fmt.Errorf("event %d (%q): negative counter timestamp %d", i, ev.Name, ev.Ts)
			}
		case "M":
			// metadata carries no timing
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("track %v: %d unbalanced B event(s), first %q", k, len(st), st[0].Name)
		}
	}
	return nil
}

// TestWriteRoundTrip writes a real coupled frame, parses the JSON back
// and checks the structural invariants plus exact agreement between the
// emitted tile spans and Metrics.Timeline (the executor's output is
// monotone, so the writer's defensive clamps must all be no-ops).
func TestWriteRoundTrip(t *testing.T) {
	m := testMetrics(t, false)
	if len(m.Timeline) == 0 || len(m.Intervals) == 0 {
		t.Fatalf("instrumented run produced %d tiles, %d intervals", len(m.Timeline), len(m.Intervals))
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace does not parse: %v", err)
	}
	if err := validateEvents(doc.TraceEvents); err != nil {
		t.Fatal(err)
	}

	// Tile spans on the tiles track must reproduce the timeline exactly.
	tilesTid := m.Config.NumSC
	type spanRec struct{ b, e int64 }
	spans := make(map[string]spanRec)
	var open map[string]int64 = make(map[string]int64)
	for _, ev := range doc.TraceEvents {
		if ev.Tid != tilesTid {
			continue
		}
		switch ev.Ph {
		case "B":
			open[ev.Name] = ev.Ts
		case "E":
			spans[ev.Name] = spanRec{open[ev.Name], ev.Ts}
		}
	}
	for _, tt := range m.Timeline {
		maxFin := tt.Gate
		for _, f := range tt.Finish {
			if f > maxFin {
				maxFin = f
			}
		}
		name := fmt.Sprintf("tile %d (%d,%d)", tt.Seq, tt.TX, tt.TY)
		got, ok := spans[name]
		if !ok {
			t.Fatalf("timeline tile %q has no span in the trace", name)
		}
		if got.b != tt.Gate || got.e != maxFin {
			t.Errorf("%s: span [%d,%d] disagrees with timeline [%d,%d]", name, got.b, got.e, tt.Gate, maxFin)
		}
	}
	if frame, ok := spans["raster"]; !ok || frame.b != 0 || frame.e < m.RasterCycles {
		t.Errorf("frame span [%d,%d] does not cover [0,%d]", frame.b, frame.e, m.RasterCycles)
	}

	// Counter tracks must carry one sample per interval.
	occ := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" && ev.Name == "warp occupancy" {
			occ++
		}
	}
	if occ != len(m.Intervals) {
		t.Errorf("%d occupancy samples for %d intervals", occ, len(m.Intervals))
	}
}

// TestWriteDecoupled covers the timeline-less shape: a decoupled run has
// no tile spans, but the trace must still parse, balance and carry the
// counter tracks.
func TestWriteDecoupled(t *testing.T) {
	m := testMetrics(t, true)
	if len(m.Timeline) != 0 {
		t.Fatal("decoupled run unexpectedly produced a timeline")
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if err := validateEvents(doc.TraceEvents); err != nil {
		t.Fatal(err)
	}
	counters := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" {
			counters++
		}
	}
	if counters == 0 {
		t.Error("decoupled trace has no counter samples")
	}
}

// FuzzEventsValid feeds Events arbitrary (unsorted, negative,
// inconsistent) timeline and interval values and requires the emitted
// trace to stay structurally valid: parseable JSON, balanced B/E per
// track, monotone timestamps, no negative durations. The writer's
// clamps, not the input, are what is under test.
func FuzzEventsValid(f *testing.F) {
	f.Add(int64(100), int64(0), int64(40), int64(30), int64(50), int64(80), int64(70), int64(-5), int64(256))
	f.Add(int64(-1), int64(-10), int64(-20), int64(5), int64(3), int64(2), int64(1), int64(0), int64(-7))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, rasterCycles, g0, f0, f1, g1, f2, f3, ivCycle, busy int64) {
		cfg := pipeline.DefaultConfig()
		m := &pipeline.Metrics{
			Config:       cfg,
			RasterCycles: rasterCycles,
			Timeline: []pipeline.TileTiming{
				{Seq: 0, TX: 0, TY: 0, Gate: g0, Finish: []int64{f0, f1}},
				{Seq: 1, TX: 1, TY: 0, Gate: g1, Finish: []int64{f2, f3, f2, f3}},
			},
			Intervals: []pipeline.Interval{
				{Cycle: ivCycle, Occupancy: []int32{1, 2}, QueueDepth: []int32{3}, BusyDelta: []int64{busy, busy}},
			},
		}
		evs := Events(m)
		if err := validateEvents(evs); err != nil {
			t.Fatalf("invalid trace from fuzzed timeline: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatal("emitted trace is not valid JSON")
		}
	})
}
