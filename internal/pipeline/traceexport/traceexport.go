// Package traceexport renders a frame's Metrics as Chrome/Perfetto
// trace_event JSON (the "JSON Trace Event Format"), loadable in
// ui.perfetto.dev or chrome://tracing. One simulated cycle maps to one
// microsecond of trace time (the format's ts unit), so a span of N
// trace-microseconds is N cycles.
//
// The trace carries three kinds of tracks, all under a single process:
//
//   - One "tiles" thread track with the frame span, a span per tile of
//     the coupled walk ([Gate, max Finish], from Metrics.Timeline) and
//     the barrier regions between consecutive tiles — the visual of the
//     §II-C barrier bubbles.
//   - One thread track per shader core with its execution span for each
//     tile it shaded ([Gate, Finish[sc]]).
//   - Counter tracks (warp occupancy, input-queue depth, SC utilization,
//     L1/L2 hit rates) sampled from Metrics.Intervals when the run had
//     Config.SampleEvery set.
//
// Tile/barrier tracks need a coupled run with Config.CollectTimeline;
// counter tracks need Config.SampleEvery > 0. A Metrics without either
// still produces a valid (if span-less) trace.
//
// The writer enforces the format's per-track invariants regardless of
// input: begin/end events are balanced, durations are non-negative and
// each track's event times are monotone (out-of-order or negative input
// spans are clamped forward). On well-formed executor output the clamps
// are no-ops and spans reproduce Metrics.Timeline exactly; the fuzz test
// relies on the clamps to keep arbitrary Timeline bytes valid.
package traceexport

import (
	"encoding/json"
	"fmt"
	"io"

	"dtexl/internal/pipeline"
)

// pid is the single trace process all tracks live under.
const pid = 0

// Event is one trace_event entry. Ph "B"/"E" delimit duration spans,
// "C" carries counter samples, "M" is track metadata.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// trace is the top-level JSON object (the "JSON Object Format" variant,
// which tolerates trailing metadata fields).
type trace struct {
	TraceEvents []Event `json:"traceEvents"`
	// DisplayTimeUnit only affects how the UI prints times.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// emitter accumulates events while keeping each track's span sequence
// balanced and monotone.
type emitter struct {
	evs  []Event
	last map[int]int64 // per-tid high-water mark of emitted span times
}

// span emits one B/E pair on track tid, clamped so it begins no earlier
// than the track's previous span ended (and never before 0) and ends no
// earlier than it begins. Returns the clamped bounds.
func (em *emitter) span(tid int, name string, begin, end int64, args map[string]any) (int64, int64) {
	if begin < em.last[tid] {
		begin = em.last[tid]
	}
	if end < begin {
		end = begin
	}
	em.last[tid] = end
	em.evs = append(em.evs,
		Event{Name: name, Ph: "B", Ts: begin, Pid: pid, Tid: tid, Args: args},
		Event{Name: name, Ph: "E", Ts: end, Pid: pid, Tid: tid})
	return begin, end
}

// meta emits a metadata event (process/thread naming).
func (em *emitter) meta(name string, tid int, value string) {
	em.evs = append(em.evs, Event{
		Name: name, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": value},
	})
}

// Events builds the trace event list for one frame's metrics.
func Events(m *pipeline.Metrics) []Event {
	nsc := m.Config.NumSC
	if nsc <= 0 {
		nsc = len(m.PerSCBusy)
	}
	tilesTid := nsc

	em := &emitter{last: make(map[int]int64)}
	em.meta("process_name", 0, "dtexl raster pipeline")
	for sc := 0; sc < nsc; sc++ {
		em.meta("thread_name", sc, fmt.Sprintf("SC%d", sc))
	}
	em.meta("thread_name", tilesTid, "tiles")

	// The frame span encloses every tile span on the tiles track; its E
	// is emitted after the children so the per-track stack nests.
	em.evs = append(em.evs, Event{Name: "raster", Ph: "B", Ts: 0, Pid: pid, Tid: tilesTid})

	prevEnd := int64(0)
	for i := range m.Timeline {
		tt := &m.Timeline[i]
		maxFin := tt.Gate
		for _, f := range tt.Finish {
			if f > maxFin {
				maxFin = f
			}
		}
		if i > 0 && tt.Gate > prevEnd {
			// The inter-tile barrier region: FIFO drain/refill and bank
			// swap between the previous tile's completion and this
			// tile's release.
			em.span(tilesTid, "barrier", prevEnd, tt.Gate, nil)
		}
		name := fmt.Sprintf("tile %d (%d,%d)", tt.Seq, tt.TX, tt.TY)
		_, prevEnd = em.span(tilesTid, name, tt.Gate, maxFin, map[string]any{
			"seq": tt.Seq, "tx": tt.TX, "ty": tt.TY,
		})
		for sc, f := range tt.Finish {
			if sc >= nsc || f <= tt.Gate {
				continue // the SC shaded nothing in this tile
			}
			em.span(sc, fmt.Sprintf("tile %d", tt.Seq), tt.Gate, f, nil)
		}
	}
	frameEnd := m.RasterCycles
	if frameEnd < em.last[tilesTid] {
		frameEnd = em.last[tilesTid]
	}
	em.evs = append(em.evs, Event{Name: "raster", Ph: "E", Ts: frameEnd, Pid: pid, Tid: tilesTid})

	// Counter tracks from the interval time series.
	prevCycle := int64(0)
	for i := range m.Intervals {
		iv := &m.Intervals[i]
		ts := iv.Cycle
		if ts < 0 {
			ts = 0
		}
		occ := make(map[string]any, len(iv.Occupancy))
		queue := make(map[string]any, len(iv.QueueDepth))
		util := make(map[string]any, len(iv.BusyDelta))
		elapsed := ts - prevCycle
		for sc := range iv.Occupancy {
			key := fmt.Sprintf("SC%d", sc)
			occ[key] = iv.Occupancy[sc]
			if sc < len(iv.QueueDepth) {
				queue[key] = iv.QueueDepth[sc]
			}
			if sc < len(iv.BusyDelta) && elapsed > 0 {
				util[key] = 100 * float64(iv.BusyDelta[sc]) / float64(elapsed)
			}
		}
		em.evs = append(em.evs,
			Event{Name: "warp occupancy", Ph: "C", Ts: ts, Pid: pid, Tid: 0, Args: occ},
			Event{Name: "input queue", Ph: "C", Ts: ts, Pid: pid, Tid: 0, Args: queue},
			Event{Name: "SC utilization %", Ph: "C", Ts: ts, Pid: pid, Tid: 0, Args: util},
			Event{Name: "L1 tex hit rate %", Ph: "C", Ts: ts, Pid: pid, Tid: 0,
				Args: map[string]any{"L1": 100 * iv.L1Tex.HitRate()}},
			Event{Name: "L2 hit rate %", Ph: "C", Ts: ts, Pid: pid, Tid: 0,
				Args: map[string]any{"L2": 100 * iv.L2.HitRate()}},
		)
		prevCycle = ts
	}
	return em.evs
}

// Write renders m as trace_event JSON onto w.
func Write(w io.Writer, m *pipeline.Metrics) error {
	enc := json.NewEncoder(w)
	return enc.Encode(trace{TraceEvents: Events(m), DisplayTimeUnit: "ms"})
}
