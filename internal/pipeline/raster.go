package pipeline

import (
	"dtexl/internal/cache"
	"dtexl/internal/render"
	"dtexl/internal/sched"
	"dtexl/internal/texture"
	"dtexl/internal/tileorder"
)

// sampleUVStride is the texel offset between consecutive samples of the
// same quad, modeling layered materials (diffuse + detail/normal layers)
// that sample nearby but distinct texture regions.
const sampleUVStride = 8

// span is the cache-line footprint of one texture sample.
type span struct {
	off int32
	n   int32
}

// tileWork is the per-policy work unit for one tile: the shared,
// read-only tile coverage plus the quad→SC partition, which is the only
// per-quad state that depends on the scheduling policy. tileWorks are
// pooled by the executor and recycled across tiles, so holders other
// than the executor itself (the decoupled window, an SC's input stream)
// must hold a reference via refs.
type tileWork struct {
	seq    int // index in the frame's tile sequence
	tx, ty int
	// cov is the policy-independent skeleton: either a shared cover from
	// a PreparedFrame, or this work unit's own ownCov scratch.
	cov *tileCover
	// perSC partitions cov.quads indices by shader core, preserving
	// rasterization order within each core's list.
	perSC [][]int32
	// rasterCycles is the front-end cost: tile fetch + rasterization +
	// Early-Z, before the quads reach the shader cores.
	rasterCycles int64
	// refs counts holders in the decoupled executor (window slot + SC
	// input streams); the work unit returns to the pool at zero. The
	// coupled executor reuses a single unit and leaves refs alone.
	refs int32
	// ownCov is the inline coverage scratch used on the live path (no
	// prepared covers); its slices are recycled with the work unit.
	ownCov tileCover
}

// reset prepares a (possibly recycled) tileWork for a new tile, keeping
// the perSC backing arrays.
func (tw *tileWork) reset(numSC int) {
	if tw.perSC == nil {
		tw.perSC = make([][]int32, numSC)
	}
	for i := range tw.perSC {
		tw.perSC[i] = tw.perSC[i][:0]
	}
	tw.cov = nil
	tw.rasterCycles = 0
	tw.refs = 0
}

// popcount4 counts the set bits of a 4-bit mask.
func popcount4(m uint8) int {
	return int(m&1 + m>>1&1 + m>>2&1 + m>>3&1)
}

// coverQuad is the policy-independent part of one surviving quad: its
// quad coordinates within the tile, shader workload and sample-footprint
// reference. It deliberately omits the shader-core assignment, which is
// the only per-quad field that depends on the scheduling policy.
// seg0/segN cache segLen for stages 0 and >0 — the shader cores would
// otherwise pay two integer divisions per executed stage.
type coverQuad struct {
	qx, qy     int16
	samples    int8
	instr      int16
	seg0, segN int16
	firstSpan  int32
}

// setSegs derives the cached compute-segment lengths from instr/samples.
func (q *coverQuad) setSegs() {
	q.seg0 = int16(segLen(q.instr, q.samples, 0))
	q.segN = int16(segLen(q.instr, q.samples, 1))
}

// tileCover is the policy-independent rasterization of one tile:
// coverage, Early-Z survival, shader workloads and texture sample
// footprints. None of it depends on Grouping, Assignment, TileOrder or
// Decoupled (§III-C: the proposal never changes which fragments are
// shaded or which texels they read, only where and when), so one
// tileCover can be shared read-only across every policy's run.
type tileCover struct {
	quads []coverQuad
	spans []span
	lines []uint64
	// culled counts quads fully rejected by Early-Z.
	culled uint64
	// fragments counts live SIMD lanes across all emitted quads.
	fragments uint64
	// quadsTested counts coverage/Early-Z tests (rasterizer throughput).
	quadsTested int
}

// reset empties a cover for refilling, keeping the backing arrays.
func (c *tileCover) reset() {
	c.quads = c.quads[:0]
	c.spans = c.spans[:0]
	c.lines = c.lines[:0]
	c.culled = 0
	c.fragments = 0
	c.quadsTested = 0
}

// coverer computes tileCovers. It owns the Z-Buffer (tile-sized, reset
// per tile) and the samplers, and never touches the memory hierarchy —
// coverage is a pure function of (primitives, binning, tile, viewport
// config), which is what makes it precomputable.
type coverer struct {
	cfg      Config
	prims    []Primitive
	binning  *Binning
	zbuf     *ZBuffer
	samplers [3]texture.Sampler
	// pre, when non-nil, holds precomputed covers indexed ty*TilesX+tx
	// (from a PreparedFrame); cover() then skips recomputation.
	pre []*tileCover
}

func newCoverer(cfg Config, prims []Primitive, b *Binning) *coverer {
	c := &coverer{
		cfg:     cfg,
		prims:   prims,
		binning: b,
		zbuf:    NewZBuffer(cfg.TileSize),
	}
	c.samplers[texture.Bilinear] = texture.Sampler{Filter: texture.Bilinear}
	c.samplers[texture.Trilinear] = texture.Sampler{Filter: texture.Trilinear}
	c.samplers[texture.Aniso2x] = texture.Sampler{Filter: texture.Aniso2x}
	return c
}

// cover returns the tileCover for tile (tx, ty), from the precomputed set
// when one is installed; otherwise it computes into scratch (allocating
// a fresh cover when scratch is nil). Precomputed covers are only
// installed when cfg.RenderTarget is nil (the simulation paths), since
// coverTile also resolves colors into a live render target.
func (c *coverer) cover(tx, ty int, scratch *tileCover) *tileCover {
	if c.pre != nil {
		return c.pre[ty*c.cfg.TilesX()+tx]
	}
	return c.coverTile(tx, ty, scratch)
}

// rasterizer turns binned primitives into tileWork, tile by tile, in the
// configured traversal order. It layers the policy-dependent work — tile
// fetch through the memory hierarchy and subtile-to-SC assignment — on
// top of the policy-independent coverer.
type rasterizer struct {
	cfg      Config
	cov      *coverer
	hier     *cache.Hierarchy
	assigner *sched.Assigner
}

func newRasterizer(cfg Config, prims []Primitive, b *Binning, hier *cache.Hierarchy) *rasterizer {
	return &rasterizer{
		cfg:      cfg,
		cov:      newCoverer(cfg, prims, b),
		hier:     hier,
		assigner: sched.NewAssigner(cfg.Assignment, cfg.Grouping),
	}
}

// rasterizeTile fills tw with the work unit for the tile at pt (the
// seq-th tile of the walk). Must be called in tile-sequence order: the
// Subtile assigner is stateful. The hierarchy is touched only by the
// tile fetch, before any coverage work, so substituting a precomputed
// cover leaves the access stream bit-identical. Only the quad→SC
// partition is computed per policy; the skeleton (coverage, footprints,
// raster cycle counts) comes from the shared cover.
func (r *rasterizer) rasterizeTile(tw *tileWork, seq int, pt tileorder.Point) {
	cfg := &r.cfg
	tw.reset(cfg.NumSC)
	tw.seq, tw.tx, tw.ty = seq, pt.X, pt.Y
	perm := r.assigner.Next(pt)
	qside := cfg.QuadsPerTileSide()

	// The Tile Fetcher reads this tile's primitive list and attributes.
	tw.rasterCycles += r.cov.binning.FetchTileCost(pt.X, pt.Y, r.cov.prims, r.hier)

	// Policy-independent coverage, then the per-policy SC assignment.
	cov := r.cov.cover(pt.X, pt.Y, &tw.ownCov)
	tw.cov = cov
	for i := range cov.quads {
		cq := &cov.quads[i]
		sc := perm[cfg.Grouping.SubtileOf(int(cq.qx), int(cq.qy), qside, qside)] % cfg.NumSC
		tw.perSC[sc] = append(tw.perSC[sc], int32(i))
	}
	// Rasterizer throughput plus the four parallel Early-Z units (1
	// quad/cycle each).
	tw.rasterCycles += int64(float64(cov.quadsTested) / cfg.RasterRate)
	tw.rasterCycles += int64(len(cov.quads) / 4)
}

// coverTile computes the tile's coverage from scratch: coverage + Early-Z
// over every binned primitive, shader workloads, and texture sample
// footprints, filled into out (or a fresh cover when out is nil). When
// cfg.RenderTarget is set it also resolves colors, which is why
// precomputed covers are restricted to RenderTarget == nil.
func (c *coverer) coverTile(tx, ty int, out *tileCover) *tileCover {
	cfg := &c.cfg
	tw := out
	if tw == nil {
		tw = &tileCover{}
	}
	tw.reset()
	c.zbuf.Reset()

	ts := cfg.TileSize
	ox := tx * ts // tile origin in screen pixels
	oy := ty * ts

	for _, pi := range c.binning.List(tx, ty) {
		p := &c.prims[pi]
		// Quad range of the primitive's bbox clipped to this tile and to
		// the physical screen (edge tiles may extend past it).
		qx0, qy0, qx1, qy1 := quadRange(p, ox, oy, ts, cfg.Width, cfg.Height)
		if qx0 > qx1 || qy0 > qy1 {
			continue
		}
		sampler := &c.samplers[p.Filter]
		opaque := p.Alpha >= 1
		for qy := qy0; qy <= qy1; qy++ {
			for qx := qx0; qx <= qx1; qx++ {
				tw.quadsTested++
				px := ox + qx*2 // quad's top-left pixel in screen coords
				py := oy + qy*2
				// Coverage + Early-Z over the quad's four pixels. A quad
				// is covered if any pixel center is inside the triangle,
				// and survives if any covered pixel passes the depth
				// test; only covered-but-occluded quads count as culled.
				// Transparent fragments test but never write depth.
				covered := false
				alive := false
				var passMask, coverMask uint8
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						x := float64(px+dx) + 0.5
						y := float64(py+dy) + 0.5
						if !p.Setup.Inside(x, y) {
							continue
						}
						covered = true
						coverMask |= 1 << uint(dy*2+dx)
						d := p.Setup.DepthAt(x, y)
						var pass bool
						if opaque {
							pass = c.zbuf.TestAndSet(qx*2+dx, qy*2+dy, d)
						} else {
							pass = c.zbuf.Pass(qx*2+dx, qy*2+dy, d)
						}
						if pass {
							alive = true
							passMask |= 1 << uint(dy*2+dx)
						}
					}
				}
				if !covered {
					continue
				}
				if !alive {
					if !cfg.LateZ {
						tw.culled++
						continue
					}
					// Late-Z: occluded quads are shaded anyway; the Z
					// resolution moves behind the fragment stage.
					alive = true
				}
				if cfg.RenderTarget != nil && passMask != 0 {
					resolveColor(cfg.RenderTarget, p, px, py, passMask)
				}
				// Fragments actually shaded: the visible lanes under
				// Early-Z, or every covered lane under Late-Z (the SIMD
				// quad always executes, but only these lanes are live).
				if cfg.LateZ {
					tw.fragments += uint64(popcount4(coverMask))
				} else {
					tw.fragments += uint64(popcount4(passMask))
				}
				// Shared texture state for the whole quad: sampled at the
				// quad center; the texture unit coalesces the four
				// fragments' accesses. Dependent-read jitter perturbs the
				// sample position per quad; it depends only on screen
				// position and primitive, never on scheduling.
				cxf := float64(px) + 1.0
				cyf := float64(py) + 1.0
				uv := p.Setup.UVAt(cxf, cyf)
				jx, jy := quadJitter(px, py, p.ID)
				uv.X += jx * p.UVJitter / float64(p.Tex.Width)
				uv.Y += jy * p.UVJitter / float64(p.Tex.Height)
				firstSpan := int32(len(tw.spans))
				for s := 0; s < p.Shader.Samples; s++ {
					du := float64(s*sampleUVStride) / float64(p.Tex.Width)
					lines := sampler.Footprint(p.Tex, uv.X+du, uv.Y, p.LOD)
					off := int32(len(tw.lines))
					tw.lines = append(tw.lines, lines...)
					tw.spans = append(tw.spans, span{off: off, n: int32(len(lines))})
				}
				cq := coverQuad{
					qx:        int16(qx),
					qy:        int16(qy),
					samples:   int8(p.Shader.Samples),
					instr:     int16(p.Shader.Instructions),
					firstSpan: firstSpan,
				}
				cq.setSegs()
				tw.quads = append(tw.quads, cq)
			}
		}
	}
	return tw
}

// resolveColor shades the depth-passing pixels of the quad at (px, py)
// into the render target: per-pixel filtered texture samples averaged
// across the shader's sample layers, alpha-blended over the destination.
// Colors are a pure function of scene and position, so the image cannot
// depend on scheduling; resolving in rasterization (= primitive) order
// gives the blend ordering the real Blending unit preserves. Shared by
// the TBR rasterizer and the IMR machine: both must render the same
// frame.
func resolveColor(rt *render.Framebuffer, p *Primitive, px, py int, passMask uint8) {
	jx, jy := quadJitter(px, py, p.ID)
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			if passMask&(1<<uint(dy*2+dx)) == 0 {
				continue
			}
			x := float64(px+dx) + 0.5
			y := float64(py+dy) + 0.5
			uv := p.Setup.UVAt(x, y)
			uv.X += jx * p.UVJitter / float64(p.Tex.Width)
			uv.Y += jy * p.UVJitter / float64(p.Tex.Height)
			var sr, sg, sb int
			n := p.Shader.Samples
			if n < 1 {
				n = 1
			}
			for s := 0; s < n; s++ {
				du := float64(s*sampleUVStride) / float64(p.Tex.Width)
				c := texture.SampleColor(p.Tex, uv.X+du, uv.Y, p.LOD, p.Filter)
				sr += int(c.R())
				sg += int(c.G())
				sb += int(c.B())
			}
			src := render.RGBA(uint8(sr/n), uint8(sg/n), uint8(sb/n), 0xff)
			rt.Set(px+dx, py+dy, render.Over(src, rt.At(px+dx, py+dy), p.Alpha))
		}
	}
}

// quadJitter returns a deterministic pseudo-random offset in [-1, 1]^2
// for the quad at screen pixel (px, py) of primitive id. It is a pure
// function of position, so every scheduler sees identical addresses.
func quadJitter(px, py, id int) (float64, float64) {
	h := uint64(px)*0x9e3779b97f4a7c15 ^ uint64(py)*0xc2b2ae3d27d4eb4f ^ uint64(id)*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	jx := float64(uint32(h))/float64(1<<32)*2 - 1
	jy := float64(uint32(h>>32))/float64(1<<32)*2 - 1
	return jx, jy
}

// quadRange clips primitive p's bounds to the tile at pixel origin
// (ox, oy) and to the screen, returning an inclusive quad-coordinate
// range within the tile.
func quadRange(p *Primitive, ox, oy, tileSize, screenW, screenH int) (qx0, qy0, qx1, qy1 int) {
	minX := int(p.Bounds.MinX)
	minY := int(p.Bounds.MinY)
	maxX := int(p.Bounds.MaxX)
	maxY := int(p.Bounds.MaxY)
	if minX < ox {
		minX = ox
	}
	if minY < oy {
		minY = oy
	}
	hi := ox + tileSize - 1
	if hi > screenW-1 {
		hi = screenW - 1
	}
	if maxX > hi {
		maxX = hi
	}
	hi = oy + tileSize - 1
	if hi > screenH-1 {
		hi = screenH - 1
	}
	if maxY > hi {
		maxY = hi
	}
	qx0 = (minX - ox) / 2
	qy0 = (minY - oy) / 2
	qx1 = (maxX - ox) / 2
	qy1 = (maxY - oy) / 2
	return
}
