package pipeline

import (
	"testing"

	"dtexl/internal/trace"
)

func animScenes(t *testing.T, alias string, cfg Config, frames int) []*trace.Scene {
	t.Helper()
	p, err := trace.ProfileByAlias(alias)
	if err != nil {
		t.Fatal(err)
	}
	return trace.GenerateAnimation(p, cfg.Width, cfg.Height, 1, frames)
}

func TestRunFramesWarmsTheL2(t *testing.T) {
	// Consecutive animation frames share most of their texture working
	// set; with the L2 kept warm, later frames must fetch less from DRAM
	// than the cold first frame.
	cfg := testConfig()
	scenes := animScenes(t, "TRu", cfg, 3)
	ms, err := RunFrames(scenes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("%d frame metrics", len(ms))
	}
	if ms[1].Events.DRAMAccesses >= ms[0].Events.DRAMAccesses {
		t.Errorf("frame 1 DRAM accesses (%d) not below cold frame 0 (%d)",
			ms[1].Events.DRAMAccesses, ms[0].Events.DRAMAccesses)
	}
	if ms[2].Events.DRAMAccesses >= ms[0].Events.DRAMAccesses {
		t.Errorf("frame 2 DRAM accesses (%d) not below cold frame 0 (%d)",
			ms[2].Events.DRAMAccesses, ms[0].Events.DRAMAccesses)
	}
}

func TestRunFramesDeltasArePerFrame(t *testing.T) {
	// Per-frame counters must be deltas, not cumulative: the sum over
	// frames must match a manual accumulation, and every frame must do
	// real work.
	cfg := testConfig()
	scenes := animScenes(t, "SWa", cfg, 3)
	ms, err := RunFrames(scenes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m.Events.QuadsShaded == 0 || m.L2.Accesses == 0 {
			t.Errorf("frame %d recorded no work", i)
		}
		if m.L2.Hits+m.L2.Misses != m.L2.Accesses {
			t.Errorf("frame %d: L2 delta inconsistent: %+v", i, m.L2)
		}
		if m.Events.L2Accesses != m.L2.Accesses {
			t.Errorf("frame %d: event/stat L2 mismatch", i)
		}
	}
}

func TestRunFramesEmptyInput(t *testing.T) {
	if _, err := RunFrames(nil, testConfig()); err == nil {
		t.Error("empty frame list accepted")
	}
}

func TestAnimationFramesDiffer(t *testing.T) {
	cfg := testConfig()
	scenes := animScenes(t, "CRa", cfg, 2)
	// The camera moved: the frames' draw data must differ.
	same := true
	a, b := scenes[0], scenes[1]
	if len(a.Draws) != len(b.Draws) {
		same = false
	} else {
	outer:
		for i := range a.Draws {
			if len(a.Draws[i].Vertices) != len(b.Draws[i].Vertices) {
				same = false
				break
			}
			for j := range a.Draws[i].Vertices {
				if a.Draws[i].Vertices[j] != b.Draws[i].Vertices[j] {
					same = false
					break outer
				}
			}
		}
	}
	if same {
		t.Error("animation frames are identical")
	}
	// But they share the same textures (the whole point of warm caches).
	if a.Textures[0].Base != b.Textures[0].Base {
		t.Error("animation frames use different texture allocations")
	}
}

func TestAnimationDeterministic(t *testing.T) {
	cfg := testConfig()
	a := animScenes(t, "GTr", cfg, 2)
	b := animScenes(t, "GTr", cfg, 2)
	for f := range a {
		if a[f].TriangleCount() != b[f].TriangleCount() {
			t.Fatalf("frame %d differs between generations", f)
		}
	}
}
