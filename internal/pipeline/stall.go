package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// ErrStall is the sentinel every executor stall unwraps to: a run that
// stopped making forward progress (a blocked shader core with pending
// work, or watchdog-detected livelock) returns a *StallError instead of
// panicking, and callers select on the class with
// errors.Is(err, ErrStall).
var ErrStall = errors.New("pipeline: executor stalled")

// SCStallState is one shader core's scheduler-visible state at the
// moment a stall was declared, for the diagnostic dump.
type SCStallState struct {
	ID            int    `json:"id"`
	Clock         int64  `json:"clock"`          // local clock, cycles
	ResidentWarps int    `json:"resident_warps"` // warps holding a slot
	QueuedQuads   int    `json:"queued_quads"`   // un-admitted quads in the current input stream
	InputGate     int64  `json:"input_gate"`     // earliest admission cycle of that input
	Retired       uint64 `json:"retired"`        // quads retired so far
}

// StallError is the structured diagnostic an executor returns when it
// deadlocks or livelocks: instead of killing the process it carries the
// engine state needed to debug the scheduling bug — the cycle, the
// per-SC queue depths, the decoupled barrier window and the in-flight
// tile. It unwraps to ErrStall.
// The JSON field names are part of the serving API: the dtexld service
// returns the dump verbatim inside structured 500 bodies, and the
// round-trip is pinned by TestStallErrorJSONRoundTrip.
type StallError struct {
	Mode   string `json:"mode"`   // "coupled", "decoupled" or "imr"
	Reason string `json:"reason"` // what the watchdog observed
	Cycle  int64  `json:"cycle"`  // max SC clock when the stall was declared
	Steps  int    `json:"steps"`  // scheduling steps taken without progress

	// TileSeq/TileX/TileY locate the in-flight tile: the tile being
	// drained (coupled), the window's oldest unretired tile (decoupled)
	// or the primitive batch (IMR, TileX/TileY unused).
	TileSeq int `json:"tile_seq"`
	TileX   int `json:"tile_x"`
	TileY   int `json:"tile_y"`
	// WindowLo, WindowHi is the decoupled barrier window [lo, hi)
	// (zero for the other modes).
	WindowLo int `json:"window_lo"`
	WindowHi int `json:"window_hi"`

	SCs []SCStallState `json:"scs"`
}

// Error summarizes the stall in one line; Dump has the full state.
func (e *StallError) Error() string {
	return fmt.Sprintf("pipeline: %s executor stalled at cycle %d (%s; tile seq %d, window [%d,%d), %d steps without progress)",
		e.Mode, e.Cycle, e.Reason, e.TileSeq, e.WindowLo, e.WindowHi, e.Steps)
}

// Unwrap makes errors.Is(err, ErrStall) true for every stall.
func (e *StallError) Unwrap() error { return ErrStall }

// Dump renders the full state dump, one SC per line — the diagnostic
// that replaced the former bare deadlock panics.
func (e *StallError) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", e.Error())
	fmt.Fprintf(&b, "  mode=%s cycle=%d steps=%d\n", e.Mode, e.Cycle, e.Steps)
	fmt.Fprintf(&b, "  in-flight tile: seq=%d (%d,%d)  window: lo=%d hi=%d\n",
		e.TileSeq, e.TileX, e.TileY, e.WindowLo, e.WindowHi)
	for _, sc := range e.SCs {
		fmt.Fprintf(&b, "  SC%d: clock=%d warps=%d queued=%d gate=%d retired=%d\n",
			sc.ID, sc.Clock, sc.ResidentWarps, sc.QueuedQuads, sc.InputGate, sc.Retired)
	}
	return b.String()
}

// scStallStates snapshots the shader cores for a stall dump.
func scStallStates(scs []*scState) []SCStallState {
	out := make([]SCStallState, len(scs))
	for i, sc := range scs {
		st := SCStallState{
			ID:            sc.id,
			Clock:         sc.clock,
			ResidentWarps: len(sc.warps),
			Retired:       sc.quadsRetired,
		}
		if sc.inTile != nil {
			st.QueuedQuads = len(sc.inTile.perSC[sc.id]) - sc.inPos
			st.InputGate = sc.inGate
		}
		out[i] = st
	}
	return out
}

func maxClock(scs []*scState) int64 {
	var m int64
	for _, sc := range scs {
		if sc.clock > m {
			m = sc.clock
		}
	}
	return m
}

// defaultWatchdogSteps is the livelock threshold when
// Config.WatchdogSteps is zero. Legitimate execution can take at most a
// few warp-slots' worth of scheduling steps without advancing any SC
// clock or retiring a quad (admissions and zero-length compute segments
// are bounded by the resident warps), so tens of steps would already be
// safe; 1<<16 leaves orders of magnitude of margin while still firing
// in well under a millisecond of wall time.
const defaultWatchdogSteps = 1 << 16

// ctxCheckInterval is how many scheduling steps pass between context
// cancellation polls: frequent enough that cancellation and deadlines
// land promptly, rare enough to stay off the hot path.
const ctxCheckInterval = 1 << 12

// watchdog guards an executor drive loop: it polls the run's context
// every ctxCheckInterval steps and counts scheduling steps that advance
// neither any SC clock nor the retired-quad count, converting livelock
// into a diagnosable stall instead of a hung process.
type watchdog struct {
	ctx        context.Context
	chaos      bool // chaos-stall injection: never step, exhaust the budget
	limit      int
	noProgress int
	sinceCheck int
}

func newWatchdog(ctx context.Context, cfg Config) watchdog {
	return watchdog{ctx: ctx, chaos: chaosStallEnabled(ctx), limit: cfg.watchdogLimit()}
}

// chaosTick consumes one injected-livelock iteration and reports whether
// the watchdog budget is exhausted (time to declare the stall).
func (w *watchdog) chaosTick() bool {
	w.noProgress++
	return w.noProgress > w.limit
}

// idleTick counts a drive-loop iteration that could not step any SC
// (e.g. the decoupled window refusing to extend); it reports whether
// the watchdog budget is exhausted.
func (w *watchdog) idleTick() bool {
	w.noProgress++
	return w.noProgress > w.limit
}

// step advances sc one scheduling decision under the guard. It returns
// a non-empty stall reason when the core is blocked with pending work
// or the livelock threshold is crossed, and a non-nil error when the
// context is canceled or past its deadline.
func (w *watchdog) step(es *engineState, sc *scState) (reason string, err error) {
	w.sinceCheck++
	if w.sinceCheck >= ctxCheckInterval {
		w.sinceCheck = 0
		if cerr := w.ctx.Err(); cerr != nil {
			return "", cerr
		}
	}
	clock, retired := sc.clock, sc.quadsRetired
	if !sc.step(es) {
		return "shader core blocked with pending work", nil
	}
	if sc.clock != clock || sc.quadsRetired != retired {
		w.noProgress = 0
		return "", nil
	}
	w.noProgress++
	if w.noProgress > w.limit {
		return "no cycle progress (livelock)", nil
	}
	return "", nil
}

// chaosStallKey flags a context for deterministic livelock injection.
type chaosStallKey struct{}

// WithChaosStall returns a context under which every executor
// deterministically livelocks until its watchdog fires, producing a
// genuine StallError with a real state dump. It exists for fault
// injection: tests (and sim.ChaosConfig) use it to exercise the stall,
// isolation and degradation paths without a real scheduling bug.
func WithChaosStall(ctx context.Context) context.Context {
	return context.WithValue(ctx, chaosStallKey{}, true)
}

func chaosStallEnabled(ctx context.Context) bool {
	v, _ := ctx.Value(chaosStallKey{}).(bool)
	return v
}
