package pipeline

import (
	"dtexl/internal/cache"
	"dtexl/internal/tileorder"
)

// tileFetchCostPerPrim is the Tile Fetcher's fixed cost per primitive ID
// dequeued from the Parameter Buffer, beyond cache latencies.
const tileFetchCostPerPrim = 2

// Binning is the Tiling Engine's output: for each tile of the grid, the
// IDs of the primitives overlapping it, in program order (the Polygon
// List Builder appends primitives in the order they arrive, §II-A).
type Binning struct {
	TilesX, TilesY int
	// Lists[y*TilesX+x] holds primitive indices for tile (x, y).
	Lists [][]int32
	// Cycles is the Polygon List Builder's processing time.
	Cycles int64
}

// BinPrimitives runs the Polygon List Builder: each primitive is appended
// to the list of every tile it overlaps. With cfg.PreciseBinning the
// overlap test evaluates the triangle's edge functions against the tile
// square (exact for convex primitives), eliminating the false positives
// of plain bounding-box binning on thin or diagonal triangles; otherwise
// the bounding box is used. Writing the per-tile lists and the attribute
// records goes through the tile cache (the Parameter Buffer lives in
// main memory).
func BinPrimitives(prims []Primitive, hier *cache.Hierarchy, cfg Config) *Binning {
	b := &Binning{TilesX: cfg.TilesX(), TilesY: cfg.TilesY()}
	b.Lists = make([][]int32, b.TilesX*b.TilesY)
	ts := float64(cfg.TileSize)
	var listCursor uint64
	for pi := range prims {
		p := &prims[pi]
		// Attribute record write (once per primitive, §II-A: attributes
		// are stored only once however many tiles the primitive touches).
		attrAddr := uint64(primAttrBase) + uint64(p.ID)*primAttrBytes
		b.Cycles += hier.TileAccess(attrAddr)
		b.Cycles += hier.TileAccess(attrAddr + 64)

		x0 := int(p.Bounds.MinX / ts)
		y0 := int(p.Bounds.MinY / ts)
		x1 := int(p.Bounds.MaxX / ts)
		y1 := int(p.Bounds.MaxY / ts)
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 >= b.TilesX {
			x1 = b.TilesX - 1
		}
		if y1 >= b.TilesY {
			y1 = b.TilesY - 1
		}
		for ty := y0; ty <= y1; ty++ {
			for tx := x0; tx <= x1; tx++ {
				if cfg.PreciseBinning && !tileOverlaps(p, tx, ty, ts) {
					continue
				}
				b.Lists[ty*b.TilesX+tx] = append(b.Lists[ty*b.TilesX+tx], int32(pi))
				// Appending one 4-byte primitive ID to the tile's list.
				b.Cycles += hier.TileAccess(uint64(tileListBase) + listCursor)
				listCursor += 4
			}
		}
	}
	return b
}

// tileOverlaps reports whether primitive p's triangle intersects the
// tile square at (tx, ty): for each edge function, at least the most
// favorable tile corner must be non-negative (standard conservative
// rasterization; exact for triangle-vs-box).
func tileOverlaps(p *Primitive, tx, ty int, ts float64) bool {
	x0 := float64(tx) * ts
	y0 := float64(ty) * ts
	x1 := x0 + ts
	y1 := y0 + ts
	e := &p.Setup
	for i := 0; i < 3; i++ {
		// Pick the corner maximizing A*x + B*y.
		x := x0
		if e.A[i] > 0 {
			x = x1
		}
		y := y0
		if e.B[i] > 0 {
			y = y1
		}
		if e.A[i]*x+e.B[i]*y+e.C[i] < 0 {
			return false
		}
	}
	return true
}

// List returns the primitive IDs binned to tile (tx, ty).
func (b *Binning) List(tx, ty int) []int32 {
	return b.Lists[ty*b.TilesX+tx]
}

// FetchTileCost models the Tile Fetcher reading tile t's primitive list
// and attribute records out of the Parameter Buffer, returning the cycles
// spent. Each primitive costs its list-entry read, its two attribute
// lines, and a fixed dequeue cost.
func (b *Binning) FetchTileCost(tx, ty int, prims []Primitive, hier *cache.Hierarchy) int64 {
	var cycles int64
	for _, pi := range b.List(tx, ty) {
		p := &prims[pi]
		attrAddr := uint64(primAttrBase) + uint64(p.ID)*primAttrBytes
		cycles += hier.TileAccess(attrAddr)
		cycles += hier.TileAccess(attrAddr + 64)
		cycles += tileFetchCostPerPrim
	}
	return cycles
}

// TileSequence materializes the frame's tile visit order for the
// configured traversal.
func TileSequence(cfg Config) []tileorder.Point {
	return tileorder.Sequence(cfg.TileOrder, cfg.TilesX(), cfg.TilesY())
}
