package pipeline

import (
	"dtexl/internal/cache"
)

// Interval time series: when Config.SampleEvery > 0, the executors
// record scheduler and memory-system state at periodic simulated-cycle
// boundaries B_k = k*SampleEvery. The semantics are *per shader core*
// and deterministic: each SC contributes its own state at its own first
// scheduling event on or after B_k, and the texture-fill L2 traffic is
// bucketed by the issuing SC's clock. Nothing in the series depends on
// the relative progress of different SCs at observation time, which is
// what lets the parallel drains keep sampling enabled (DESIGN.md §11):
// every sampler write is indexed by the recording SC, so workers touch
// disjoint state and the assembled series is bit-identical to the
// serial run's. Sampling records only reads of existing state: enabling
// it never changes the simulated timing, traffic or image.
//
// The per-SC series are ring-buffered (maxIntervals boundaries), so a
// long frame cannot grow memory without bound; the retained window is
// the most recent one, which is where a stall under investigation
// usually lives.

// maxIntervals bounds Metrics.Intervals: the most recent maxIntervals
// boundaries are retained and Metrics.IntervalsDropped counts the
// trimmed remainder.
const maxIntervals = 4096

// seriesCap sizes the per-SC boundary rings: one extra slot beyond
// maxIntervals so the delta fields of the oldest retained interval
// still have their predecessor available.
const seriesCap = maxIntervals + 1

// Interval is one periodic record of the raster phase. Slices are
// indexed by SC id. Cycle restarts at each frame boundary (multi-frame
// aggregation concatenates frames).
type Interval struct {
	// Cycle is the boundary clock itself: k*SampleEvery for the k-th
	// interval of the frame.
	Cycle int64
	// Occupancy is resident warps per SC at the SC's first event on or
	// after the boundary (its final state if it finished earlier).
	Occupancy []int32
	// QueueDepth is un-admitted quads in each SC's current input stream
	// at the same per-SC observation point.
	QueueDepth []int32
	// BusyDelta is per-SC busy cycles accumulated since the previous
	// boundary (utilization = BusyDelta / SampleEvery).
	BusyDelta []int64
	// L1Tex is the traffic accumulated since the previous boundary,
	// aggregated over all SCs' own L1 texture caches, each observed at
	// its owner's boundary crossing.
	L1Tex cache.Stats
	// L2 is the *texture-fill* L2 traffic whose issuing SC clock falls
	// in (B_{k-1}, B_k] (executor-level tile/vertex L2 traffic is not
	// attributed to intervals; Metrics.L2 still counts everything).
	L2 cache.Stats
}

// scSeries is one SC's boundary-crossing record: a ring, dense in the
// boundary index k, of the SC's state at its crossing of each boundary.
// Slot (k-1)%seriesCap holds boundary k; entries are valid for
// k in (lastK-seriesCap, lastK]. Values are written by the SC's own
// stepping goroutine only.
type scSeries struct {
	lastK int64
	occ   []int32
	qd    []int32
	busy  []int64       // cumulative busy cycles at the crossing
	l1    []cache.Stats // cumulative own-L1 traffic (since sampler creation)
}

// l2Buckets is one SC's texture-fill L2 traffic, bucketed by boundary
// index with the same ring layout as scSeries. Written only by the SC's
// own goroutine (in the parallel drains the deltas come from the
// worker's private shadow stats).
type l2Buckets struct {
	lastK int64
	d     []cache.Stats
}

// intervalSampler drives the periodic records. A nil sampler (the
// SampleEvery == 0 default) costs the executors one pointer comparison
// per scheduling step and nothing else. All mutable state is indexed by
// SC id and touched only by the goroutine stepping that SC, so one
// sampler is shared race-free by the serial executors and every
// parallel drain worker.
type intervalSampler struct {
	every int64
	scs   []*scState
	hier  *cache.Hierarchy

	// next[i] is SC i's next boundary clock; the step hook fires cross()
	// when the SC's clock reaches it.
	next []int64

	series []scSeries
	fills  []l2Buckets
	// l1Base is each SC's own-L1 stats at sampler creation (the
	// post-geometry state), so the series covers raster-phase traffic
	// only even when the hierarchy is reused across frames.
	l1Base []cache.Stats
}

func newIntervalSampler(every int64, scs []*scState, hier *cache.Hierarchy) *intervalSampler {
	n := len(scs)
	s := &intervalSampler{
		every:  every,
		scs:    scs,
		hier:   hier,
		next:   make([]int64, n),
		series: make([]scSeries, n),
		fills:  make([]l2Buckets, n),
		l1Base: make([]cache.Stats, n),
	}
	for i := range scs {
		s.next[i] = every
		se := &s.series[i]
		se.occ = make([]int32, seriesCap)
		se.qd = make([]int32, seriesCap)
		se.busy = make([]int64, seriesCap)
		se.l1 = make([]cache.Stats, seriesCap)
		s.fills[i].d = make([]cache.Stats, seriesCap)
		s.l1Base[i] = hier.L1Tex[i].Stats()
	}
	return s
}

// cross records SC sc's state at every boundary its clock has reached
// since its last crossing, and re-arms next[sc.id]. An event that jumps
// several boundaries records the same state for each (the delta fields
// then concentrate in the first of the group). Reads only the SC's own
// state and its own L1 texture cache; writes only the SC's own series.
func (s *intervalSampler) cross(sc *scState) {
	id := sc.id
	se := &s.series[id]
	kEnd := sc.clock / s.every
	occ := int32(len(sc.warps))
	var qd int32
	if sc.inTile != nil {
		qd = int32(len(sc.inTile.perSC[id]) - sc.inPos)
	}
	l1 := statsDelta(s.hier.L1Tex[id].Stats(), s.l1Base[id])
	k0 := se.lastK + 1
	if kEnd-k0+1 > seriesCap {
		// The jump skipped more boundaries than the ring holds; only the
		// retained window needs slots.
		k0 = kEnd - seriesCap + 1
	}
	for k := k0; k <= kEnd; k++ {
		j := int((k - 1) % seriesCap)
		se.occ[j], se.qd[j], se.busy[j], se.l1[j] = occ, qd, sc.busy, l1
	}
	se.lastK = kEnd
	s.next[id] = (kEnd + 1) * s.every
}

// bucketFill attributes one texture sample's L2 traffic delta to the
// interval containing the issuing clock: boundary k covers fills with
// clock in (B_{k-1}, B_k].
func (s *intervalSampler) bucketFill(id int, clock int64, d cache.Stats) {
	if d.Accesses == 0 {
		return
	}
	k := (clock + s.every - 1) / s.every
	if k < 1 {
		k = 1
	}
	b := &s.fills[id]
	if k > b.lastK {
		k0 := b.lastK + 1
		if k-k0+1 > seriesCap {
			k0 = k - seriesCap + 1
		}
		for kk := k0; kk <= k; kk++ {
			b.d[int((kk-1)%seriesCap)] = cache.Stats{}
		}
		b.lastK = k
	}
	b.d[int((k-1)%seriesCap)].Add(d)
}

// drain assembles the retained boundaries into chronological Intervals
// plus the trimmed count. For boundaries an SC never reached (it
// finished earlier), the SC contributes its final state, so late
// intervals show drained cores at zero occupancy and zero deltas.
// Nil-receiver safe (sampling disabled).
func (s *intervalSampler) drain() ([]Interval, int) {
	if s == nil {
		return nil, 0
	}
	var kMax int64
	for i := range s.series {
		if s.series[i].lastK > kMax {
			kMax = s.series[i].lastK
		}
	}
	if kMax == 0 {
		return nil, 0
	}
	start := int64(1)
	if kMax > maxIntervals {
		start = kMax - maxIntervals + 1
	}
	n := len(s.scs)
	finOcc := make([]int32, n)
	finQd := make([]int32, n)
	finBusy := make([]int64, n)
	finL1 := make([]cache.Stats, n)
	for i, sc := range s.scs {
		finOcc[i] = int32(len(sc.warps))
		if sc.inTile != nil {
			finQd[i] = int32(len(sc.inTile.perSC[sc.id]) - sc.inPos)
		}
		finBusy[i] = sc.busy
		finL1[i] = statsDelta(s.hier.L1Tex[i].Stats(), s.l1Base[i])
	}
	get := func(i int, k int64) (occ, qd int32, busy int64, l1 cache.Stats) {
		if k <= 0 {
			return 0, 0, 0, cache.Stats{}
		}
		se := &s.series[i]
		if k > se.lastK {
			return finOcc[i], finQd[i], finBusy[i], finL1[i]
		}
		j := int((k - 1) % seriesCap)
		return se.occ[j], se.qd[j], se.busy[j], se.l1[j]
	}
	out := make([]Interval, 0, kMax-start+1)
	for k := start; k <= kMax; k++ {
		iv := Interval{
			Cycle:      k * s.every,
			Occupancy:  make([]int32, n),
			QueueDepth: make([]int32, n),
			BusyDelta:  make([]int64, n),
		}
		for i := range s.scs {
			occ, qd, busy, l1 := get(i, k)
			_, _, pbusy, pl1 := get(i, k-1)
			iv.Occupancy[i] = occ
			iv.QueueDepth[i] = qd
			iv.BusyDelta[i] = busy - pbusy
			iv.L1Tex.Add(statsDelta(l1, pl1))
			b := &s.fills[i]
			if k <= b.lastK && k > b.lastK-seriesCap {
				iv.L2.Add(b.d[int((k-1)%seriesCap)])
			}
			if k == kMax {
				// Fills issued past the last crossed boundary (a partial
				// trailing interval) fold into the final row.
				for kk := kMax + 1; kk <= b.lastK; kk++ {
					iv.L2.Add(b.d[int((kk-1)%seriesCap)])
				}
			}
		}
		out = append(out, iv)
	}
	return out, int(start - 1)
}
