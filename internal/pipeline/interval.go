package pipeline

import (
	"dtexl/internal/cache"
)

// Interval time series: when Config.SampleEvery > 0, the executors
// snapshot scheduler and memory-system state at (roughly) periodic
// simulated-cycle boundaries. Snapshots are taken at the first SC event
// on or after each boundary — the executors are event-driven, so there
// is no per-cycle tick to hook — and record only reads of existing
// state: enabling sampling never changes the simulated timing, traffic
// or image. The series is ring-buffered (maxIntervals) so a long frame
// cannot grow memory without bound; the retained window is the most
// recent one, which is where a stall under investigation usually lives.

// maxIntervals bounds Metrics.Intervals: the ring keeps the most recent
// maxIntervals snapshots and Metrics.IntervalsDropped counts the
// overwritten remainder.
const maxIntervals = 4096

// Interval is one periodic snapshot of the raster phase. Slices are
// indexed by SC id. Cycle is the raster-phase clock of the frame the
// snapshot was taken in (multi-frame aggregation concatenates frames,
// so Cycle restarts at each frame boundary).
type Interval struct {
	// Cycle is the clock of the SC whose event crossed the sampling
	// boundary (>= the boundary itself).
	Cycle int64
	// Occupancy is resident warps per SC at the snapshot.
	Occupancy []int32
	// QueueDepth is un-admitted quads in each SC's current input stream.
	QueueDepth []int32
	// BusyDelta is per-SC busy cycles accumulated since the previous
	// snapshot (utilization = BusyDelta / elapsed cycles).
	BusyDelta []int64
	// L1Tex and L2 are the traffic accumulated since the previous
	// snapshot, aggregated over all L1 texture caches / the shared L2.
	L1Tex cache.Stats
	L2    cache.Stats
}

// intervalSampler drives the periodic snapshots. A nil sampler (the
// SampleEvery == 0 default) costs the executors one pointer comparison
// per scheduling step and nothing else.
type intervalSampler struct {
	every int64
	next  int64
	scs   []*scState
	hier  *cache.Hierarchy

	ring  []Interval
	taken int // total snapshots, including overwritten ones

	// previous-snapshot state for the delta fields. The cache baselines
	// start at the hierarchy's state when the sampler is created (the
	// post-geometry state), so the first interval covers raster-phase
	// traffic only.
	prevBusy []int64
	prevL1   cache.Stats
	prevL2   cache.Stats
}

func newIntervalSampler(every int64, scs []*scState, hier *cache.Hierarchy) *intervalSampler {
	return &intervalSampler{
		every:    every,
		next:     every,
		scs:      scs,
		hier:     hier,
		prevBusy: make([]int64, len(scs)),
		prevL1:   hier.L1TexStats(),
		prevL2:   hier.L2.Stats(),
	}
}

// sample records one snapshot at clock `now` and arms the next boundary.
// Callers fire it from the scheduling step whose event reached s.next;
// boundaries the event jumped over collapse into this one snapshot (the
// series is a sampling of state, not an integral, and the delta fields
// span the whole gap regardless).
func (s *intervalSampler) sample(now int64) {
	var iv *Interval
	if len(s.ring) < maxIntervals {
		s.ring = append(s.ring, Interval{})
		iv = &s.ring[len(s.ring)-1]
	} else {
		iv = &s.ring[s.taken%maxIntervals]
	}
	s.taken++

	n := len(s.scs)
	if iv.Occupancy == nil {
		iv.Occupancy = make([]int32, n)
		iv.QueueDepth = make([]int32, n)
		iv.BusyDelta = make([]int64, n)
	}
	iv.Cycle = now
	for i, sc := range s.scs {
		iv.Occupancy[i] = int32(len(sc.warps))
		q := 0
		if sc.inTile != nil {
			q = len(sc.inTile.perSC[sc.id]) - sc.inPos
		}
		iv.QueueDepth[i] = int32(q)
		iv.BusyDelta[i] = sc.busy - s.prevBusy[i]
		s.prevBusy[i] = sc.busy
	}
	l1 := s.hier.L1TexStats()
	l2 := s.hier.L2.Stats()
	iv.L1Tex = statsDelta(l1, s.prevL1)
	iv.L2 = statsDelta(l2, s.prevL2)
	s.prevL1, s.prevL2 = l1, l2

	s.next = (now/s.every + 1) * s.every
}

// drain returns the retained snapshots in chronological order plus the
// overwritten count. Nil-receiver safe (sampling disabled).
func (s *intervalSampler) drain() ([]Interval, int) {
	if s == nil || s.taken == 0 {
		return nil, 0
	}
	if s.taken <= maxIntervals {
		out := make([]Interval, len(s.ring))
		copy(out, s.ring)
		return out, 0
	}
	// The ring wrapped: the oldest retained snapshot sits at the next
	// overwrite position.
	out := make([]Interval, 0, maxIntervals)
	start := s.taken % maxIntervals
	out = append(out, s.ring[start:]...)
	out = append(out, s.ring[:start]...)
	return out, s.taken - maxIntervals
}
