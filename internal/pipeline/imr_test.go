package pipeline

import (
	"testing"

	"dtexl/internal/render"
)

func TestIMRSmoke(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	m, err := RunIMR(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles <= 0 || m.Events.QuadsShaded == 0 {
		t.Fatalf("IMR produced no work: %+v", m.Events)
	}
	// Full screen coverage still holds.
	minQuads := uint64(cfg.Width * cfg.Height / 4)
	if m.Events.QuadsShaded < minQuads {
		t.Errorf("IMR shaded %d quads, below screen coverage %d", m.Events.QuadsShaded, minQuads)
	}
}

func TestIMRShadesSameQuadsAsTBR(t *testing.T) {
	// Same scene, same Z discipline: the set of visible quads is an
	// architecture-independent property of the scene.
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	tbr, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imr, err := RunIMR(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if imr.Events.QuadsShaded != tbr.Events.QuadsShaded {
		t.Errorf("IMR shaded %d quads, TBR %d", imr.Events.QuadsShaded, tbr.Events.QuadsShaded)
	}
	if imr.Events.QuadsCulled != tbr.Events.QuadsCulled {
		t.Errorf("IMR culled %d, TBR %d", imr.Events.QuadsCulled, tbr.Events.QuadsCulled)
	}
	if imr.Events.FragmentsShaded != tbr.Events.FragmentsShaded {
		t.Errorf("IMR fragments %d, TBR %d", imr.Events.FragmentsShaded, tbr.Events.FragmentsShaded)
	}
}

func TestIMRHasMoreExternalTraffic(t *testing.T) {
	// The TBR motivation (§II, Antochi et al.): keeping the Z/Color
	// buffers on-chip cuts external (DRAM) traffic substantially. The
	// effect needs framebuffer >> L2 as at real resolutions; the test
	// screen is 1/8 scale, so scale the L2 down proportionally (both
	// architectures get the same machine).
	cfg := testConfig()
	cfg.Hierarchy.L2.SizeBytes = 128 << 10
	scene := testScene(t, "CCS", cfg)
	tbr, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imr, err := RunIMR(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(imr.Events.DRAMAccesses) / float64(tbr.Events.DRAMAccesses)
	if ratio < 1.3 {
		t.Errorf("IMR/TBR DRAM traffic ratio = %.2f, want well above 1 (paper background: ~1.96)", ratio)
	}
}

func TestIMRValidation(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	bad := cfg
	bad.Width = 0
	if _, err := RunIMR(scene, bad); err == nil {
		t.Error("invalid config accepted")
	}
	mismatch := cfg
	mismatch.Width *= 2
	if _, err := RunIMR(scene, mismatch); err == nil {
		t.Error("scene/config mismatch accepted")
	}
}

func TestIMRRendersSameImageAsTBR(t *testing.T) {
	// The two architectures resolve identical frames: per-pixel winners
	// and blend order depend only on the scene.
	cfg := testConfig()
	scene := testScene(t, "SoD", cfg)
	tbrFB := render.NewFramebuffer(cfg.Width, cfg.Height)
	ctbr := cfg
	ctbr.RenderTarget = tbrFB
	if _, err := Run(scene, ctbr); err != nil {
		t.Fatal(err)
	}
	imrFB := render.NewFramebuffer(cfg.Width, cfg.Height)
	cimr := cfg
	cimr.RenderTarget = imrFB
	if _, err := RunIMR(scene, cimr); err != nil {
		t.Fatal(err)
	}
	if !tbrFB.Equal(imrFB) {
		t.Error("IMR rendered a different image than TBR")
	}
}

func TestIMRDeterministic(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "CRa", cfg)
	a, err := RunIMR(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIMR(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Events != b.Events {
		t.Error("IMR results differ between identical runs")
	}
}
