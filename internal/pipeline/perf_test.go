package pipeline

import (
	"context"
	"reflect"
	"testing"

	"dtexl/internal/cache"
	"dtexl/internal/sched"
	"dtexl/internal/tileorder"
)

// TestTileSkeletonPolicyIndependent pins the invariant the shared-cover
// optimization rests on (§III-C): the tile skeleton — surviving quads,
// their sample spans and texture lines, and the tile's raster cycle
// count — is identical under every Grouping and Assignment policy. Only
// the quad→SC partition (tileWork.perSC) may differ.
func TestTileSkeletonPolicyIndependent(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	base := cache.NewHierarchy(cfg.Hierarchy)
	geo := RunGeometry(scene, base, cfg)
	bin := BinPrimitives(geo.Primitives, base, cfg)
	tiles := tileorder.Sequence(cfg.TileOrder, cfg.TilesX(), cfg.TilesY())

	type skel struct {
		quads  []coverQuad
		spans  []span
		lines  []uint64
		cycles int64
	}
	var ref []skel
	var refName string
	for _, g := range sched.Groupings() {
		for _, a := range sched.Assignments() {
			c := cfg
			c.Grouping, c.Assignment = g, a
			r := newRasterizer(c, geo.Primitives, bin, cache.NewHierarchy(c.Hierarchy))
			cur := make([]skel, 0, len(tiles))
			tw := &tileWork{}
			for i, pt := range tiles {
				r.rasterizeTile(tw, i, pt)
				cov := tw.cov
				cur = append(cur, skel{
					quads:  append([]coverQuad(nil), cov.quads...),
					spans:  append([]span(nil), cov.spans...),
					lines:  append([]uint64(nil), cov.lines...),
					cycles: tw.rasterCycles,
				})
			}
			name := g.String() + "/" + a.String()
			if ref == nil {
				ref, refName = cur, name
				continue
			}
			for i := range ref {
				if !reflect.DeepEqual(ref[i], cur[i]) {
					t.Fatalf("tile %d skeleton differs between %s and %s", i, refName, name)
				}
			}
		}
	}
}

// TestPreparedRunsBitIdenticalWithPooling proves the pipeline-level
// half of the memoization contract under the pooled executor: a run on
// precomputed covers (recycled tileWork units, shared skeletons) returns
// metrics bit-identical to a live run, in both barrier disciplines.
func TestPreparedRunsBitIdenticalWithPooling(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "CRa", cfg)
	for _, decoupled := range []bool{false, true} {
		c := cfg
		c.Decoupled = decoupled
		if decoupled {
			c.Grouping = sched.CGSquare
		}
		live, err := Run(scene, c)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := PrepareFrame(scene, c)
		if err != nil {
			t.Fatal(err)
		}
		memo, err := RunPrepared(prep, c)
		if err != nil {
			t.Fatal(err)
		}
		// The wall-time split is measurement metadata, not simulation
		// output; everything else must match exactly.
		if !reflect.DeepEqual(live, memo) {
			t.Errorf("decoupled=%v: prepared run differs from live run", decoupled)
		}

		// Instrumentation-off invariance, prepared-path half: a prepared
		// run with interval sampling enabled must still be bit-identical
		// to the uninstrumented live run outside the observability-only
		// fields (the same prepared frame is reusable either way).
		ci := c
		ci.SampleEvery = 512
		inst, err := RunPrepared(prep, ci)
		if err != nil {
			t.Fatal(err)
		}
		if len(inst.Intervals) == 0 {
			t.Fatalf("decoupled=%v: instrumented prepared run captured no intervals", decoupled)
		}
		inst.Intervals, inst.IntervalsDropped = nil, 0
		inst.Config.SampleEvery = 0
		if !reflect.DeepEqual(live, inst) {
			t.Errorf("decoupled=%v: sampling perturbed the prepared run", decoupled)
		}
	}
}

// TestCoupledSteadyStateZeroAlloc asserts the coupled raster loop's
// steady state allocates nothing per tile: after the warm-up tile has
// grown the pooled buffers, rasterize + barrier + drain + flush for
// every further tile must run entirely on recycled storage.
func TestCoupledSteadyStateZeroAlloc(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	hier := cache.NewHierarchy(cfg.Hierarchy)
	geo := RunGeometry(scene, hier, cfg)
	bin := BinPrimitives(geo.Primitives, hier, cfg)
	cov := newCoverer(cfg, geo.Primitives, bin)
	tilesX, tilesY := cfg.TilesX(), cfg.TilesY()
	covers := make([]*tileCover, tilesX*tilesY)
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			covers[ty*tilesX+tx] = cov.coverTile(tx, ty, nil)
		}
	}

	ex := newExecutor(cfg, hier, geo.Primitives, bin)
	ex.raster.cov.pre = covers
	ex.wd = newWatchdog(context.Background(), cfg)
	// Instrumentation-off invariance: with the default SampleEvery == 0
	// no sampler exists, so the only observability cost on this path is
	// the stall counters' integer adds — which allocate nothing.
	if cfg.SampleEvery != 0 || ex.es.sampler != nil {
		t.Fatalf("instrumentation unexpectedly enabled by default (SampleEvery=%d, sampler=%v)",
			cfg.SampleEvery, ex.es.sampler)
	}
	ex.beginCoupled()
	if err := ex.coupledTile(0); err != nil {
		t.Fatal(err)
	}
	n := len(ex.seq)
	if n < 8 {
		t.Fatalf("scene too small for a steady-state window: %d tiles", n)
	}
	next := 1
	// AllocsPerRun adds one warm-up invocation, so this consumes tiles
	// 1..n-1 exactly.
	avg := testing.AllocsPerRun(n-2, func() {
		if err := ex.coupledTile(next); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if avg != 0 {
		t.Errorf("coupled steady state allocates %.2f allocs/tile, want 0", avg)
	}
}
