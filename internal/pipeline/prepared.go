package pipeline

import (
	"context"
	"fmt"
	"time"

	"dtexl/internal/cache"
	"dtexl/internal/dram"
	"dtexl/internal/trace"
)

// FrontKey is the subset of Config that the policy-independent front
// half of a frame — geometry fetch, binning, and raster coverage —
// actually depends on. Two configs with equal FrontKeys can share one
// PreparedFrame, whatever their scheduling policy, SC count, L1 texture
// geometry, warp configuration or barrier discipline.
type FrontKey struct {
	Width, Height  int
	TileSize       int
	PreciseBinning bool
	LateZ          bool
	Vertex         cache.Config
	Tile           cache.Config
	L2             cache.Config
	DRAM           dram.Config
}

// FrontKeyOf projects cfg onto its front-half fields.
func FrontKeyOf(cfg Config) FrontKey {
	return FrontKey{
		Width:          cfg.Width,
		Height:         cfg.Height,
		TileSize:       cfg.TileSize,
		PreciseBinning: cfg.PreciseBinning,
		LateZ:          cfg.LateZ,
		Vertex:         cfg.Hierarchy.Vertex,
		Tile:           cfg.Hierarchy.Tile,
		L2:             cfg.Hierarchy.L2,
		DRAM:           cfg.Hierarchy.DRAM,
	}
}

// PreparedFrame is the memoized front half of one frame's simulation:
// the Geometry Pipeline's output, the Tiling Engine's Parameter Buffer,
// a deep snapshot of the memory-hierarchy state those two phases
// produced, and the policy-independent per-tile raster coverage. It is
// immutable once built and safe to share across any number of
// concurrent RunPrepared calls.
//
// Only the front half is captured. Everything policy-dependent — the
// tile walk, subtile-to-SC assignment, warp execution, and the live L1
// texture / L2 / DRAM interaction of the fragment phase — is re-simulated
// per policy, so a prepared run is bit-identical to an unprepared one.
type PreparedFrame struct {
	// Geometry is the Geometry Pipeline's output (read-only).
	Geometry GeometryResult
	// Binning is the binned Parameter Buffer (read-only).
	Binning *Binning
	// GeometryTime and CoverageTime split the preparation's wall time
	// between its two halves (geometry+binning vs. per-tile coverage), so
	// callers can attribute phase cost without a profiler.
	GeometryTime time.Duration
	CoverageTime time.Duration

	front  *cache.FrontState
	covers []*tileCover
	key    FrontKey
}

// Key returns the FrontKey the frame was prepared under.
func (p *PreparedFrame) Key() FrontKey { return p.key }

// PrepareFrame runs the policy-independent front half of a frame under
// cfg and captures everything the raster phase needs. cfg.RenderTarget
// must be nil: coverage with a live render target also resolves colors,
// which must happen on the live path.
func PrepareFrame(scene *trace.Scene, cfg Config) (*PreparedFrame, error) {
	return PrepareFrameContext(context.Background(), scene, cfg)
}

// PrepareFrameContext is PrepareFrame under a context. A WithParallel
// context builds the per-tile coverage skeletons on the worker pool —
// coverage is a pure function per tile, so the prepared frame is
// byte-identical to a serial preparation.
func PrepareFrameContext(ctx context.Context, scene *trace.Scene, cfg Config) (*PreparedFrame, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RenderTarget != nil {
		return nil, fmt.Errorf("pipeline: PrepareFrame requires a nil RenderTarget")
	}
	if scene.Width != cfg.Width || scene.Height != cfg.Height {
		return nil, fmt.Errorf("pipeline: scene is %dx%d but config is %dx%d",
			scene.Width, scene.Height, cfg.Width, cfg.Height)
	}
	t0 := time.Now()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	geo := RunGeometry(scene, hier, cfg)
	binning := BinPrimitives(geo.Primitives, hier, cfg)
	p := &PreparedFrame{
		Geometry:     geo,
		Binning:      binning,
		GeometryTime: time.Since(t0),
		front:        hier.SaveFront(),
		key:          FrontKeyOf(cfg),
	}
	t1 := time.Now()
	if workers := parallelWorkers(ctx); workers > 1 {
		p.covers = parallelCovers(cfg, geo.Primitives, binning, workers)
	} else {
		cov := newCoverer(cfg, geo.Primitives, binning)
		tilesX, tilesY := cfg.TilesX(), cfg.TilesY()
		p.covers = make([]*tileCover, tilesX*tilesY)
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				p.covers[ty*tilesX+tx] = cov.coverTile(tx, ty, nil)
			}
		}
	}
	p.CoverageTime = time.Since(t1)
	return p, nil
}

// SizeBytes estimates the retained memory of the prepared frame, for
// cache budgeting.
func (p *PreparedFrame) SizeBytes() int64 {
	var n int64 = 1 << 12 // struct + snapshot overhead
	n += int64(len(p.Geometry.Primitives)) * 256
	for _, l := range p.Binning.Lists {
		n += int64(len(l)) * 4
	}
	for _, c := range p.covers {
		if c == nil {
			continue
		}
		n += int64(len(c.quads))*12 + int64(len(c.spans))*8 + int64(len(c.lines))*8 + 64
	}
	return n
}

// RunPrepared simulates one frame's raster phase on top of a prepared
// front half, under a (possibly different) policy configuration. The
// result is bit-identical to Run(scene, cfg): the restored hierarchy
// snapshot reproduces the exact post-geometry machine state, and the
// precomputed coverage replaces only computation that never touches the
// hierarchy.
//
// cfg must agree with the preparation on every front-half field
// (FrontKeyOf) and must not set a RenderTarget; multi-frame animations
// must use RunFrames, whose later frames see policy-warmed caches.
func RunPrepared(prep *PreparedFrame, cfg Config) (*Metrics, error) {
	return RunPreparedContext(context.Background(), prep, cfg)
}

// RunPreparedContext is RunPrepared under a context for cancellation,
// deadlines and stall diagnostics.
func RunPreparedContext(ctx context.Context, prep *PreparedFrame, cfg Config) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RenderTarget != nil {
		return nil, fmt.Errorf("pipeline: RunPrepared requires a nil RenderTarget")
	}
	if k := FrontKeyOf(cfg); k != prep.key {
		return nil, fmt.Errorf("pipeline: config front key %+v does not match preparation %+v", k, prep.key)
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	if err := hier.RestoreFront(prep.front); err != nil {
		return nil, err
	}
	return rasterFrame(ctx, cfg, hier, prep.Geometry, prep.Binning, prep.covers)
}
