package pipeline

import (
	"testing"

	"dtexl/internal/sched"
	"dtexl/internal/tileorder"
)

// FuzzConfigValidate drives arbitrary machine configurations through
// Validate and, for the ones it accepts, through the cheap derived
// helpers every run depends on. The invariant under fuzz: Validate
// itself never panics, and a config it accepts never yields a
// nonsensical tile grid or watchdog threshold — bad configurations must
// be rejected with an error, not discovered later as a crash mid-run.
func FuzzConfigValidate(f *testing.F) {
	seed := func(c Config) {
		f.Add(c.Width, c.Height, c.TileSize, c.NumSC, c.Hierarchy.NumSC,
			c.WarpSlots, c.RasterRate, c.FIFODepth, c.L1FillPorts,
			c.ClockHz, c.WatchdogSteps,
			int(c.Grouping), int(c.Assignment), int(c.TileOrder), int(c.WarpSched),
			c.Decoupled)
	}
	seed(DefaultConfig())
	small := testConfig()
	seed(small)
	dec := small
	dec.Decoupled = true
	dec.Grouping = sched.CGSquare
	dec.TileOrder = tileorder.HilbertRect
	dec.Assignment = sched.Flp2
	seed(dec)
	ub := small
	ub.NumSC = 1
	ub.Hierarchy.NumSC = 1
	seed(ub)
	bad := small
	bad.TileSize = 12
	bad.WatchdogSteps = -1
	seed(bad)

	f.Fuzz(func(t *testing.T, width, height, tileSize, numSC, hierNumSC,
		warpSlots int, rasterRate float64, fifoDepth, fillPorts int,
		clockHz float64, watchdogSteps, grouping, assignment, order, wsched int,
		decoupled bool) {
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = width, height
		cfg.TileSize = tileSize
		cfg.NumSC = numSC
		cfg.Hierarchy.NumSC = hierNumSC
		cfg.WarpSlots = warpSlots
		cfg.RasterRate = rasterRate
		cfg.FIFODepth = fifoDepth
		cfg.L1FillPorts = fillPorts
		cfg.ClockHz = clockHz
		cfg.WatchdogSteps = watchdogSteps
		cfg.Grouping = sched.Grouping(grouping)
		cfg.Assignment = sched.Assignment(assignment)
		cfg.TileOrder = tileorder.Kind(order)
		cfg.WarpSched = WarpSchedPolicy(wsched)
		cfg.Decoupled = decoupled

		if err := cfg.Validate(); err != nil {
			return // rejected: exactly what bad inputs should get
		}
		if cfg.TilesX() < 1 || cfg.TilesY() < 1 {
			t.Fatalf("validated config has empty tile grid %dx%d", cfg.TilesX(), cfg.TilesY())
		}
		if cfg.QuadsPerTileSide() < 4 {
			t.Fatalf("validated config has %d quads per tile side, want >= 4", cfg.QuadsPerTileSide())
		}
		if cfg.watchdogLimit() <= 0 {
			t.Fatalf("validated config has non-positive watchdog limit %d", cfg.watchdogLimit())
		}
		// The tile walk must visit every tile exactly once; cap the grid so
		// the fuzzer's huge-resolution inputs stay cheap.
		if n := cfg.TilesX() * cfg.TilesY(); n <= 1<<12 {
			seq := TileSequence(cfg)
			if len(seq) != n {
				t.Fatalf("tile walk visits %d tiles, grid has %d", len(seq), n)
			}
		}
	})
}
