package pipeline

import (
	"testing"

	"dtexl/internal/cache"
	"dtexl/internal/sched"
	"dtexl/internal/tileorder"
	"dtexl/internal/trace"
)

// testConfig returns a small-resolution configuration for fast tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 256, 128
	return cfg
}

func testScene(t *testing.T, alias string, cfg Config) *trace.Scene {
	t.Helper()
	p, err := trace.ProfileByAlias(alias)
	if err != nil {
		t.Fatal(err)
	}
	return trace.GenerateScene(p, cfg.Width, cfg.Height, 1)
}

func TestRunSmoke(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	m, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles <= 0 || m.FPS <= 0 {
		t.Errorf("cycles=%d fps=%v", m.Cycles, m.FPS)
	}
	if m.Events.QuadsShaded == 0 {
		t.Error("no quads shaded")
	}
	if m.Events.L2Accesses == 0 || m.Events.L1TexAccesses == 0 {
		t.Error("no memory traffic recorded")
	}
	if m.Events.ALUInstructions == 0 {
		t.Error("no ALU work recorded")
	}
	// A frame covers the screen: at least one quad per screen quad must
	// survive (the background alone guarantees this for 3D scenes).
	minQuads := uint64(cfg.Width * cfg.Height / 4)
	if m.Events.QuadsShaded < minQuads {
		t.Errorf("shaded quads %d below full-screen coverage %d", m.Events.QuadsShaded, minQuads)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	a, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Events != b.Events {
		t.Error("same scene and config produced different results")
	}
}

func TestConfigValidation(t *testing.T) {
	scene := testScene(t, "SWa", testConfig())
	bad := testConfig()
	bad.NumSC = 3
	if _, err := Run(scene, bad); err == nil {
		t.Error("NumSC=3 accepted")
	}
	bad = testConfig()
	bad.Width = 0
	if _, err := Run(scene, bad); err == nil {
		t.Error("zero width accepted")
	}
	bad = testConfig()
	bad.TileSize = 30
	if _, err := Run(scene, bad); err == nil {
		t.Error("tile size 30 accepted")
	}
	// Mismatched scene/config resolutions.
	cfg := testConfig()
	cfg.Width *= 2
	if _, err := Run(scene, cfg); err == nil {
		t.Error("scene/config resolution mismatch accepted")
	}
	bad = testConfig()
	bad.Hierarchy.NumSC = 1
	if _, err := Run(scene, bad); err == nil {
		t.Error("NumSC/Hierarchy.NumSC mismatch accepted")
	}
}

// shadedQuadsInvariant: the set of shaded quads is a function of the
// scene and tile geometry only — scheduling must never change what gets
// drawn, only where and when (§III: correctness of the pipeline).
func TestShadedQuadsInvariantAcrossSchedulers(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	var want uint64
	for i, g := range []sched.Grouping{sched.FGXShift2, sched.CGSquare, sched.CGYRect, sched.CGTri} {
		for _, dec := range []bool{false, true} {
			c := cfg
			c.Grouping = g
			c.Decoupled = dec
			m, err := Run(scene, c)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 && !dec {
				want = m.Events.QuadsShaded
				continue
			}
			if m.Events.QuadsShaded != want {
				t.Errorf("grouping %v decoupled=%v shaded %d quads, want %d", g, dec, m.Events.QuadsShaded, want)
			}
		}
	}
}

// Tile order must not change the shaded quad count either (tiles are
// independent, §III-C).
func TestShadedQuadsInvariantAcrossTileOrders(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	var want uint64
	for i, ord := range tileorder.Kinds() {
		c := cfg
		c.TileOrder = ord
		m, err := Run(scene, c)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = m.Events.QuadsShaded
		} else if m.Events.QuadsShaded != want {
			t.Errorf("order %v shaded %d quads, want %d", ord, m.Events.QuadsShaded, want)
		}
	}
}

func TestPerSCQuadsSumToShaded(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "CCS", cfg)
	for _, g := range []sched.Grouping{sched.FGXShift2, sched.CGSquare} {
		c := cfg
		c.Grouping = g
		m, err := Run(scene, c)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, q := range m.PerSCQuads {
			sum += q
		}
		if sum != m.Events.QuadsShaded {
			t.Errorf("%v: per-SC quads sum %d != shaded %d", g, sum, m.Events.QuadsShaded)
		}
	}
}

func TestCoarseGroupingReducesL2Accesses(t *testing.T) {
	// The paper's Fig. 11 headline: CG-square cuts L2 accesses hard
	// relative to FG-xshift2.
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	fg, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Grouping = sched.CGSquare
	cg, err := Run(scene, c)
	if err != nil {
		t.Fatal(err)
	}
	if cg.L2Accesses() >= fg.L2Accesses() {
		t.Errorf("CG-square L2 accesses (%d) not below FG-xshift2 (%d)", cg.L2Accesses(), fg.L2Accesses())
	}
}

func TestCoarseGroupingIncreasesQuadImbalance(t *testing.T) {
	// Fig. 12/15: coarse grouping has much higher per-tile quad deviation.
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	fg, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Grouping = sched.CGSquare
	cg, err := Run(scene, c)
	if err != nil {
		t.Fatal(err)
	}
	if cg.MeanTileQuadDeviation() <= fg.MeanTileQuadDeviation() {
		t.Errorf("CG quad deviation (%v) not above FG (%v)",
			cg.MeanTileQuadDeviation(), fg.MeanTileQuadDeviation())
	}
	if cg.MeanTileTimeDeviation() <= fg.MeanTileTimeDeviation() {
		t.Errorf("CG time deviation (%v) not above FG (%v)",
			cg.MeanTileTimeDeviation(), fg.MeanTileTimeDeviation())
	}
}

func TestDecouplingImprovesPerformance(t *testing.T) {
	// Fig. 17: decoupling speeds up both FG and CG configurations.
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	for _, g := range []sched.Grouping{sched.FGXShift2, sched.CGSquare} {
		coupled := cfg
		coupled.Grouping = g
		mc, err := Run(scene, coupled)
		if err != nil {
			t.Fatal(err)
		}
		dec := coupled
		dec.Decoupled = true
		md, err := Run(scene, dec)
		if err != nil {
			t.Fatal(err)
		}
		if md.Cycles >= mc.Cycles {
			t.Errorf("%v: decoupled cycles (%d) not below coupled (%d)", g, md.Cycles, mc.Cycles)
		}
	}
}

func TestUpperBoundHasFewestL2Accesses(t *testing.T) {
	// Fig. 16's bound: 1 SC with a 4x L1 must beat every 4-SC mapping.
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	base, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ub := cfg
	ub.NumSC = 1
	ub.Hierarchy.NumSC = 1
	ub.Hierarchy.L1Tex.SizeBytes *= 4
	mb, err := Run(scene, ub)
	if err != nil {
		t.Fatal(err)
	}
	if mb.L2Accesses() >= base.L2Accesses() {
		t.Errorf("upper bound L2 (%d) not below baseline (%d)", mb.L2Accesses(), base.L2Accesses())
	}
	if mb.Events.QuadsShaded != base.Events.QuadsShaded {
		t.Errorf("upper bound shaded %d quads, baseline %d", mb.Events.QuadsShaded, base.Events.QuadsShaded)
	}
}

func TestEarlyZCulls3DScenes(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "Mze", cfg) // 3D: random depth order
	m, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events.QuadsCulled == 0 {
		t.Error("3D scene had zero Early-Z culls")
	}
}

func Test2DScenesCullLittle(t *testing.T) {
	// 2D painter's-order scenes defeat Early-Z almost entirely.
	cfg := testConfig()
	scene2d := testScene(t, "CCS", cfg)
	m2d, err := Run(scene2d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scene3d := testScene(t, "Mze", cfg)
	m3d, err := Run(scene3d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cullRate := func(m *Metrics) float64 {
		total := m.Events.QuadsShaded + m.Events.QuadsCulled
		return float64(m.Events.QuadsCulled) / float64(total)
	}
	if cullRate(m2d) >= cullRate(m3d) {
		t.Errorf("2D cull rate (%v) not below 3D (%v)", cullRate(m2d), cullRate(m3d))
	}
}

func TestFlushTrafficIndependentOfBarriers(t *testing.T) {
	// Decoupling changes flush *timing*, not traffic: same lines flushed.
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	mc, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec := cfg
	dec.Decoupled = true
	md, err := Run(scene, dec)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Events.FlushedLines != md.Events.FlushedLines {
		t.Errorf("flush lines differ: coupled %d, decoupled %d", mc.Events.FlushedLines, md.Events.FlushedLines)
	}
}

func TestBusyCyclesIndependentOfBarriers(t *testing.T) {
	// The same quads run the same instructions whichever barrier is used;
	// only idle time changes.
	cfg := testConfig()
	scene := testScene(t, "GTr", cfg)
	mc, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec := cfg
	dec.Decoupled = true
	md, err := Run(scene, dec)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Events.ALUInstructions != md.Events.ALUInstructions {
		t.Errorf("ALU work differs: %d vs %d", mc.Events.ALUInstructions, md.Events.ALUInstructions)
	}
	if md.Events.SCIdleCycles >= mc.Events.SCIdleCycles {
		t.Errorf("decoupled idle (%d) not below coupled idle (%d)",
			md.Events.SCIdleCycles, mc.Events.SCIdleCycles)
	}
}

func TestZBuffer(t *testing.T) {
	z := NewZBuffer(4)
	if !z.TestAndSet(0, 0, 0.5) {
		t.Error("first write failed depth test")
	}
	if z.TestAndSet(0, 0, 0.7) {
		t.Error("farther fragment passed")
	}
	if !z.TestAndSet(0, 0, 0.3) {
		t.Error("closer fragment failed")
	}
	if z.DepthAt(0, 0) != 0.3 {
		t.Errorf("depth = %v", z.DepthAt(0, 0))
	}
	z.Reset()
	if !z.TestAndSet(0, 0, 0.99) {
		t.Error("reset did not clear depth")
	}
}

func TestSegLen(t *testing.T) {
	// 10 instructions over 2 samples -> 3 segments: 4, 3, 3.
	if got := segLen(10, 2, 0); got != 4 {
		t.Errorf("seg0 = %d", got)
	}
	if got := segLen(10, 2, 1); got != 3 {
		t.Errorf("seg1 = %d", got)
	}
	if got := segLen(10, 2, 2); got != 3 {
		t.Errorf("seg2 = %d", got)
	}
	// Total must always equal the instruction count.
	for instr := int16(1); instr < 60; instr++ {
		for samples := int8(0); samples < 5; samples++ {
			var sum int64
			for st := int8(0); st <= samples; st++ {
				sum += segLen(instr, samples, st)
			}
			if sum != int64(instr) {
				t.Fatalf("instr=%d samples=%d: segments sum to %d", instr, samples, sum)
			}
		}
	}
}

func TestGeometryDropsDegenerateAndOffscreen(t *testing.T) {
	cfg := testConfig()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	scene := testScene(t, "SWa", cfg)
	geo := RunGeometry(scene, hier, cfg)
	if len(geo.Primitives) == 0 {
		t.Fatal("no primitives")
	}
	screenW, screenH := float64(cfg.Width), float64(cfg.Height)
	for _, p := range geo.Primitives {
		if p.Bounds.MaxX < 0 || p.Bounds.MinX > screenW || p.Bounds.MaxY < 0 || p.Bounds.MinY > screenH {
			t.Fatalf("off-screen primitive survived: %+v", p.Bounds)
		}
	}
	if geo.Cycles <= 0 || geo.VertexFetches == 0 {
		t.Error("geometry phase recorded no work")
	}
}

func TestBinningCoversPrimitiveBounds(t *testing.T) {
	cfg := testConfig()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	scene := testScene(t, "SWa", cfg)
	geo := RunGeometry(scene, hier, cfg)
	b := BinPrimitives(geo.Primitives, hier, cfg)
	// The background primitive (ID 0 or 1) covers the whole screen, so
	// every tile's list must be non-empty.
	for ty := 0; ty < b.TilesY; ty++ {
		for tx := 0; tx < b.TilesX; tx++ {
			if len(b.List(tx, ty)) == 0 {
				t.Fatalf("tile (%d,%d) has no primitives", tx, ty)
			}
		}
	}
}

func TestMetricsFPS(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	m, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.ClockHz / float64(m.Cycles)
	if m.FPS != want {
		t.Errorf("FPS = %v, want %v", m.FPS, want)
	}
	if m.RasterCycles <= 0 || m.GeometryCycles <= 0 {
		t.Error("phase cycle split missing")
	}
	if m.Cycles != m.GeometryCycles+m.RasterCycles {
		t.Error("cycles != geometry + raster")
	}
}

func TestTimelineCollection(t *testing.T) {
	cfg := testConfig()
	cfg.CollectTimeline = true
	scene := testScene(t, "SWa", cfg)
	m, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Timeline) != cfg.TilesX()*cfg.TilesY() {
		t.Fatalf("timeline has %d entries, want %d", len(m.Timeline), cfg.TilesX()*cfg.TilesY())
	}
	var prevGate int64 = -1
	for _, tt := range m.Timeline {
		if tt.Gate < prevGate {
			t.Fatalf("tile %d gate %d before previous gate %d", tt.Seq, tt.Gate, prevGate)
		}
		prevGate = tt.Gate
		if len(tt.Finish) != cfg.NumSC {
			t.Fatalf("tile %d has %d finishes", tt.Seq, len(tt.Finish))
		}
		for sc, f := range tt.Finish {
			if f < tt.Gate {
				t.Fatalf("tile %d SC %d finished at %d before gate %d", tt.Seq, sc, f, tt.Gate)
			}
		}
	}
	// Without the flag, no timeline is collected.
	cfg.CollectTimeline = false
	m2, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Timeline) != 0 {
		t.Error("timeline collected without the flag")
	}
}
