package pipeline

import "math"

// ZBuffer is the on-chip, tile-sized depth buffer used by the Early-Z
// stage. It is banked four ways by Subtile in hardware; since Subtiles
// are disjoint pixel sets, a single array models all banks exactly.
type ZBuffer struct {
	side  int
	depth []float64
}

// NewZBuffer allocates a depth buffer for a side x side pixel tile.
func NewZBuffer(side int) *ZBuffer {
	z := &ZBuffer{side: side, depth: make([]float64, side*side)}
	z.Reset()
	return z
}

// Reset clears all depths to the far plane, as happens when the Raster
// Pipeline advances to a new tile.
func (z *ZBuffer) Reset() {
	for i := range z.depth {
		z.depth[i] = math.Inf(1)
	}
}

// TestAndSet performs the Early-Z test for the pixel at tile-local
// (x, y): it passes if d is strictly closer than the stored depth, and
// updates the buffer when it passes.
func (z *ZBuffer) TestAndSet(x, y int, d float64) bool {
	i := y*z.side + x
	if d < z.depth[i] {
		z.depth[i] = d
		return true
	}
	return false
}

// Pass reports whether depth d would pass the test at tile-local (x, y)
// without updating the buffer — the comparison transparent fragments use
// (they test against opaque depth but never write it).
func (z *ZBuffer) Pass(x, y int, d float64) bool {
	return d < z.depth[y*z.side+x]
}

// DepthAt returns the stored depth for tile-local (x, y).
func (z *ZBuffer) DepthAt(x, y int) float64 { return z.depth[y*z.side+x] }
