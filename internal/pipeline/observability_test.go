package pipeline

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dtexl/internal/cache"
	"dtexl/internal/sched"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics files")

// TestStatsDeltaCoversAllFields guards engine.go's hand-listed statsDelta
// against silent drift: when a field is added to cache.Stats but not to
// statsDelta, the per-frame deltas of RunFrames (and the interval time
// series) silently report cumulative values for it. The reflection walk
// fails the moment the field list and the subtraction disagree.
func TestStatsDeltaCoversAllFields(t *testing.T) {
	var cur, prev cache.Stats
	cv := reflect.ValueOf(&cur).Elem()
	pv := reflect.ValueOf(&prev).Elem()
	st := cv.Type()
	for i := 0; i < st.NumField(); i++ {
		if st.Field(i).Type.Kind() != reflect.Uint64 {
			t.Fatalf("cache.Stats.%s is %s, not uint64: teach statsDelta (engine.go) and this test about it",
				st.Field(i).Name, st.Field(i).Type)
		}
		cv.Field(i).SetUint(uint64(1000 * (i + 1)))
		pv.Field(i).SetUint(uint64(i + 1))
	}
	d := statsDelta(cur, prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < st.NumField(); i++ {
		want := cv.Field(i).Uint() - pv.Field(i).Uint()
		if got := dv.Field(i).Uint(); got != want {
			t.Errorf("statsDelta drops cache.Stats.%s: got %d, want %d — add it to statsDelta in engine.go",
				st.Field(i).Name, got, want)
		}
	}
}

// goldenConfig returns the instrumented small-scale configuration the
// golden metrics are recorded under: timeline and interval sampling on,
// so every observability field is exercised and present in the JSON.
func goldenConfig() Config {
	cfg := testConfig()
	cfg.CollectTimeline = true
	cfg.SampleEvery = 512
	return cfg
}

// TestMetricsGolden locks the full Metrics struct of one (benchmark,
// policy) per executor against checked-in golden JSON, and walks the
// Metrics type by reflection so a newly added field that is invisible in
// the golden (json:"-", omitempty, or a stale file) fails loudly instead
// of drifting silently. Regenerate with `go test ./internal/pipeline
// -run TestMetricsGolden -update` after an intentional change.
func TestMetricsGolden(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T) *Metrics
	}{
		{"coupled", func(t *testing.T) *Metrics {
			cfg := goldenConfig()
			m, err := Run(testScene(t, "SWa", cfg), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"decoupled", func(t *testing.T) *Metrics {
			cfg := goldenConfig()
			cfg.Decoupled = true
			cfg.Grouping = sched.CGSquare
			m, err := Run(testScene(t, "SWa", cfg), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"imr", func(t *testing.T) *Metrics {
			cfg := goldenConfig()
			m, err := RunIMR(testScene(t, "SWa", cfg), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.run(t)
			got, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_metrics_"+tc.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to record the golden)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s metrics diverge from %s: simulation output changed; if intentional, rerun with -update", tc.name, path)
			}
		})
	}

	// Every field of the Metrics tree must be visible in at least one
	// golden (the coupled one carries the Timeline-only fields), or the
	// byte comparisons above cannot protect it: a field hidden by a
	// json:"-" or omitempty tag — or simply absent from every recorded
	// executor — would drift without failing anything.
	t.Run("field-walk", func(t *testing.T) {
		var union []byte
		for _, tc := range cases {
			b, err := os.ReadFile(filepath.Join("testdata", "golden_metrics_"+tc.name+".json"))
			if err != nil {
				t.Fatalf("%v (run with -update to record the golden)", err)
			}
			union = append(union, b...)
		}
		for _, field := range structFieldNames(reflect.TypeOf(Metrics{})) {
			if !bytes.Contains(union, []byte(`"`+field+`"`)) {
				t.Errorf("field %q of Metrics appears in no golden: marshal it and rerun with -update", field)
			}
		}
	})
}

// structFieldNames walks a struct type and returns the JSON-visible
// names of every exported field, recursing through nested structs and
// slices/arrays of structs (but not through pointers or maps, whose
// contents need not be populated in the golden).
func structFieldNames(t reflect.Type) []string {
	var names []string
	seen := map[reflect.Type]bool{}
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		if t.Kind() != reflect.Struct || seen[t] {
			return
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := f.Name
			if tag, ok := f.Tag.Lookup("json"); ok {
				if tag == "-" {
					continue
				}
				if i := strings.IndexByte(tag, ','); i >= 0 {
					tag = tag[:i]
				}
				if tag != "" {
					name = tag
				}
			}
			names = append(names, name)
			ft := f.Type
			for ft.Kind() == reflect.Slice || ft.Kind() == reflect.Array {
				ft = ft.Elem()
			}
			walk(ft)
		}
	}
	walk(t)
	return names
}

// TestStallBreakdownConservedSmall is the pipeline-local conservation
// check (the whole-suite sweep lives in internal/sim): for each
// executor, every SC's five causes sum to the raster cycle count
// exactly, and their idle components reproduce Events.SCIdleCycles
// bit-for-bit.
func TestStallBreakdownConservedSmall(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "CRa", cfg)
	run := map[string]func() (*Metrics, error){
		"coupled": func() (*Metrics, error) { return Run(scene, cfg) },
		"decoupled": func() (*Metrics, error) {
			c := cfg
			c.Decoupled = true
			c.Grouping = sched.CGSquare
			return Run(scene, c)
		},
		"imr": func() (*Metrics, error) { return RunIMR(scene, cfg) },
	}
	for name, f := range run {
		m, err := f()
		if err != nil {
			t.Fatal(err)
		}
		assertBreakdownConserved(t, name, m)
	}
}

// assertBreakdownConserved checks the conservation law on one frame's
// metrics. Shared with the sampling-invariance test below.
func assertBreakdownConserved(t *testing.T, name string, m *Metrics) {
	t.Helper()
	if len(m.SCBreakdown) != m.Config.NumSC {
		t.Fatalf("%s: SCBreakdown has %d entries, want NumSC=%d", name, len(m.SCBreakdown), m.Config.NumSC)
	}
	var idle int64
	for i, b := range m.SCBreakdown {
		if got := b.Total(); got != m.RasterCycles {
			t.Errorf("%s: SC%d breakdown sums to %d, want RasterCycles=%d (%+v)",
				name, i, got, m.RasterCycles, b)
		}
		if b.Busy < 0 || b.TexWait < 0 || b.BarrierWait < 0 || b.QueueEmpty < 0 || b.DrainWait < 0 {
			t.Errorf("%s: SC%d has a negative cause: %+v", name, i, b)
		}
		idle += b.Idle()
	}
	if uint64(idle) != m.Events.SCIdleCycles {
		t.Errorf("%s: breakdown idle sum %d != legacy SCIdleCycles %d", name, idle, m.Events.SCIdleCycles)
	}
	if m.Config.Decoupled {
		if bt := m.BreakdownTotals(); bt.BarrierWait != 0 {
			t.Errorf("%s: decoupled run reports %d barrier-wait cycles, want structural 0", name, bt.BarrierWait)
		}
	}
}

// TestSamplingDoesNotPerturbSimulation proves Config.SampleEvery is
// purely observational: an instrumented run's metrics equal the
// uninstrumented run's bit-for-bit once the observability-only fields
// (Intervals and the config knob itself) are set aside, in all three
// executors. It also sanity-checks the series' shape.
func TestSamplingDoesNotPerturbSimulation(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "SWa", cfg)
	type variant struct {
		name string
		run  func(c Config) (*Metrics, error)
		cfg  Config
	}
	dec := cfg
	dec.Decoupled = true
	dec.Grouping = sched.CGSquare
	variants := []variant{
		{"coupled", func(c Config) (*Metrics, error) { return Run(scene, c) }, cfg},
		{"decoupled", func(c Config) (*Metrics, error) { return Run(scene, c) }, dec},
		{"imr", func(c Config) (*Metrics, error) { return RunIMR(scene, c) }, cfg},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base, err := v.run(v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if base.Intervals != nil || base.IntervalsDropped != 0 {
				t.Fatalf("uninstrumented run produced %d intervals", len(base.Intervals))
			}
			c := v.cfg
			c.SampleEvery = 256
			inst, err := v.run(c)
			if err != nil {
				t.Fatal(err)
			}
			assertBreakdownConserved(t, v.name+"/instrumented", inst)
			if len(inst.Intervals) == 0 {
				t.Fatal("instrumented run captured no intervals")
			}
			prev := int64(0)
			for i, iv := range inst.Intervals {
				if iv.Cycle <= prev && i > 0 {
					t.Fatalf("interval %d at cycle %d not after previous (%d)", i, iv.Cycle, prev)
				}
				if len(iv.Occupancy) != c.NumSC || len(iv.QueueDepth) != c.NumSC || len(iv.BusyDelta) != c.NumSC {
					t.Fatalf("interval %d has wrong per-SC arity", i)
				}
				prev = iv.Cycle
			}
			// Everything except the series itself (and the knob that
			// enabled it) must match the uninstrumented run exactly.
			inst.Intervals, inst.IntervalsDropped = nil, 0
			inst.Config.SampleEvery = 0
			if !reflect.DeepEqual(base, inst) {
				t.Errorf("%s: sampling perturbed the simulation output", v.name)
			}
		})
	}
}
