package pipeline

import (
	"testing"

	"dtexl/internal/sched"
)

func TestPrefetchRoughlyNeutralOrBetter(t *testing.T) {
	// Moving fills earlier helps when ports are free; when they are
	// saturated, prefetching a warp's later samples can delay another
	// warp's first fill (priority inversion), so allow a small loss but
	// no real regression.
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	demand, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf := cfg
	pf.TexturePrefetch = true
	prefetched, err := Run(scene, pf)
	if err != nil {
		t.Fatal(err)
	}
	if prefetched.Cycles > demand.Cycles*102/100 {
		t.Errorf("prefetch regressed the frame: %d vs %d", prefetched.Cycles, demand.Cycles)
	}
	// Same work, same traffic: the prefetcher fetches exactly the demand
	// stream, just earlier.
	if prefetched.Events.L1TexAccesses != demand.Events.L1TexAccesses {
		t.Errorf("prefetch changed L1 traffic: %d vs %d",
			prefetched.Events.L1TexAccesses, demand.Events.L1TexAccesses)
	}
	if prefetched.Events.QuadsShaded != demand.Events.QuadsShaded {
		t.Error("prefetch changed the shaded quad count")
	}
}

func TestPrefetchCannotSubstituteForDTexL(t *testing.T) {
	// The paper's related-work positioning: prefetching (Arnau et al.) is
	// orthogonal to DTexL. With one L1 fill port, the baseline's
	// replication-heavy miss stream is bandwidth-bound, so prefetching
	// alone recovers far less than scheduling for locality does.
	cfg := testConfig()
	cfg.Decoupled = true // isolate the memory effect from the barriers
	scene := testScene(t, "TRu", cfg)

	base, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf := cfg
	pf.TexturePrefetch = true
	basePF, err := Run(scene, pf)
	if err != nil {
		t.Fatal(err)
	}
	dt := cfg
	dt.Grouping = sched.CGSquare
	dtexl, err := Run(scene, dt)
	if err != nil {
		t.Fatal(err)
	}
	gainPF := float64(base.Cycles) / float64(basePF.Cycles)
	gainDT := float64(base.Cycles) / float64(dtexl.Cycles)
	if gainDT <= gainPF {
		t.Errorf("scheduling gain (%.3f) not above prefetching gain (%.3f): fill bandwidth should bound the prefetcher", gainDT, gainPF)
	}
	// And prefetching does not reduce L2 accesses at all — it is a
	// latency tool, not a locality tool.
	if basePF.L2Accesses() < base.L2Accesses()*99/100 {
		t.Errorf("prefetching changed L2 accesses materially: %d vs %d", basePF.L2Accesses(), base.L2Accesses())
	}
}

func TestPrefetchComposesWithDTexL(t *testing.T) {
	// Orthogonal means composable: DTexL + prefetch is at least as fast
	// as DTexL alone.
	cfg := testConfig()
	cfg.Grouping = sched.CGSquare
	cfg.Decoupled = true
	scene := testScene(t, "GTr", cfg)
	alone, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf := cfg
	pf.TexturePrefetch = true
	both, err := Run(scene, pf)
	if err != nil {
		t.Fatal(err)
	}
	if both.Cycles > alone.Cycles {
		t.Errorf("prefetch hurt DTexL: %d vs %d", both.Cycles, alone.Cycles)
	}
}

func TestPrefetchPreservesImage(t *testing.T) {
	cfg := testConfig()
	ref := renderFrame(t, "CRa", cfg)
	pf := cfg
	pf.TexturePrefetch = true
	img := renderFrame(t, "CRa", pf)
	if !ref.Equal(img) {
		t.Error("prefetching changed the rendered image")
	}
}
