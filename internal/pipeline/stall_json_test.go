package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestStallErrorJSONRoundTrip pins the serving contract: the dtexld
// service returns watchdog state dumps as structured 500 bodies, so a
// StallError must survive a JSON round-trip field for field (including
// every per-SC record) and render the identical human dump afterwards.
func TestStallErrorJSONRoundTrip(t *testing.T) {
	in := &StallError{
		Mode:    "decoupled",
		Reason:  "no cycle progress (livelock)",
		Cycle:   123456789,
		Steps:   1 << 16,
		TileSeq: 42, TileX: 6, TileY: 7,
		WindowLo: 40, WindowHi: 48,
		SCs: []SCStallState{
			{ID: 0, Clock: 99, ResidentWarps: 3, QueuedQuads: 17, InputGate: 101, Retired: 4040},
			{ID: 1, Clock: 98, ResidentWarps: 0, QueuedQuads: 0, InputGate: 0, Retired: 512},
		},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out StallError
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	if in.Dump() != out.Dump() {
		t.Error("state dump differs after JSON round-trip")
	}
	if in.Error() != out.Error() {
		t.Error("one-line summary differs after JSON round-trip")
	}
}

// TestStallErrorJSONFieldNames pins the wire names the service clients
// parse — renaming a field is an API break, not a refactor.
func TestStallErrorJSONFieldNames(t *testing.T) {
	raw, err := json.Marshal(&StallError{SCs: []SCStallState{{}}})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"mode", "reason", "cycle", "steps", "tile_seq", "tile_x", "tile_y", "window_lo", "window_hi", "scs"} {
		if _, ok := m[k]; !ok {
			t.Errorf("marshaled StallError missing field %q (keys: %v)", k, keys(m))
		}
	}
	sc, ok := m["scs"].([]any)
	if !ok || len(sc) != 1 {
		t.Fatalf("scs did not marshal as an array: %v", m["scs"])
	}
	scm := sc[0].(map[string]any)
	for _, k := range []string{"id", "clock", "resident_warps", "queued_quads", "input_gate", "retired"} {
		if _, ok := scm[k]; !ok {
			t.Errorf("marshaled SCStallState missing field %q (keys: %v)", k, keys(scm))
		}
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestGenuineStallRoundTrips marshals a real watchdog-produced stall —
// the one chaos injection raises — through JSON, as the service does.
func TestGenuineStallRoundTrips(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "TRu", cfg)
	_, err := RunContext(WithChaosStall(context.Background()), scene, cfg)
	if err == nil {
		t.Fatal("chaos-stall run returned nil")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	raw, err := json.Marshal(se)
	if err != nil {
		t.Fatal(err)
	}
	var out StallError
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(se, &out) {
		t.Error("genuine stall dump not preserved by JSON round-trip")
	}
}
