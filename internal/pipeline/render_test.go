package pipeline

import (
	"testing"

	"dtexl/internal/render"
	"dtexl/internal/sched"
	"dtexl/internal/tileorder"
)

// renderFrame runs the scene under cfg with a framebuffer attached and
// returns the image.
func renderFrame(t *testing.T, alias string, cfg Config) *render.Framebuffer {
	t.Helper()
	scene := testScene(t, alias, cfg)
	fb := render.NewFramebuffer(cfg.Width, cfg.Height)
	cfg.RenderTarget = fb
	if _, err := Run(scene, cfg); err != nil {
		t.Fatal(err)
	}
	return fb
}

func TestImageIdenticalAcrossSchedulers(t *testing.T) {
	// The paper's correctness constraint (§III-C): scheduling may reorder
	// work across tiles and cores but must never change the rendered
	// image. Every grouping, assignment, order and barrier discipline
	// must produce bit-identical frames.
	cfg := testConfig()
	ref := renderFrame(t, "SoD", cfg)
	variants := []func(*Config){
		func(c *Config) { c.Grouping = sched.CGSquare },
		func(c *Config) { c.Grouping = sched.CGTri; c.Decoupled = true },
		func(c *Config) { c.TileOrder = tileorder.HilbertRect; c.Assignment = sched.Flp2 },
		func(c *Config) { c.TileOrder = tileorder.SOrder; c.Grouping = sched.CGYRect; c.Decoupled = true },
		func(c *Config) { c.TileOrder = tileorder.Scanline },
		func(c *Config) { c.LateZ = true },
		func(c *Config) { c.WarpSlots = 2 },
	}
	for i, mutate := range variants {
		c := cfg
		mutate(&c)
		img := renderFrame(t, "SoD", c)
		if !ref.Equal(img) {
			t.Errorf("variant %d rendered a different image (hash %x vs %x)", i, img.Hash(), ref.Hash())
		}
	}
}

func TestImageIdenticalUpperBound(t *testing.T) {
	// Even the single-SC bound renders the same frame.
	cfg := testConfig()
	ref := renderFrame(t, "SWa", cfg)
	ub := cfg
	ub.NumSC = 1
	ub.Hierarchy.NumSC = 1
	ub.Hierarchy.L1Tex.SizeBytes *= 4
	img := renderFrame(t, "SWa", ub)
	if !ref.Equal(img) {
		t.Error("upper-bound machine rendered a different image")
	}
}

func TestImageNonTrivial(t *testing.T) {
	// The frame must actually contain content: not a constant image.
	cfg := testConfig()
	img := renderFrame(t, "CRa", cfg)
	first := img.At(0, 0)
	diverse := false
	for y := 0; y < cfg.Height && !diverse; y += 7 {
		for x := 0; x < cfg.Width; x += 7 {
			if img.At(x, y) != first {
				diverse = true
				break
			}
		}
	}
	if !diverse {
		t.Error("rendered frame is a constant color")
	}
	// Every pixel must have been written (background covers the screen):
	// alpha is forced to 0xff by blending.
	for y := 0; y < cfg.Height; y += 3 {
		for x := 0; x < cfg.Width; x += 3 {
			if img.At(x, y).A() != 0xff {
				t.Fatalf("pixel (%d,%d) never shaded", x, y)
			}
		}
	}
}

func TestRenderingDoesNotPerturbMetrics(t *testing.T) {
	cfg := testConfig()
	scene := testScene(t, "GTr", cfg)
	plain, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.RenderTarget = render.NewFramebuffer(cfg.Width, cfg.Height)
	rendered, err := Run(scene, c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != rendered.Cycles || plain.Events != rendered.Events {
		t.Error("attaching a render target changed simulation results")
	}
}

func TestTransparencyBlends(t *testing.T) {
	// Rendering the same scene with object draws half-transparent vs
	// opaque must change the image: transparency blends.
	cfg := testConfig()
	scene := testScene(t, "CCS", cfg)
	for i := 1; i < len(scene.Draws); i++ {
		scene.Draws[i].Alpha = 0.5
	}
	fb1 := render.NewFramebuffer(cfg.Width, cfg.Height)
	c1 := cfg
	c1.RenderTarget = fb1
	if _, err := Run(scene, c1); err != nil {
		t.Fatal(err)
	}
	for i := range scene.Draws {
		scene.Draws[i].Alpha = 1
	}
	fb2 := render.NewFramebuffer(cfg.Width, cfg.Height)
	c2 := cfg
	c2.RenderTarget = fb2
	if _, err := Run(scene, c2); err != nil {
		t.Fatal(err)
	}
	if fb1.Equal(fb2) {
		t.Error("forcing opacity did not change the image: transparency is not blending")
	}
}

func TestTransparentPrimitivesDoNotOccludeButAreOccluded(t *testing.T) {
	// A 3D scene with transparency: transparent quads shade when visible
	// but never cull later opaque work. Force every object transparent
	// and check more quads shade than the all-opaque version (no culling
	// between objects).
	cfg := testConfig()
	scene := testScene(t, "Mze", cfg)
	opaqueRun, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scene.Draws); i++ { // keep background opaque
		scene.Draws[i].Alpha = 0.5
	}
	transRun, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if transRun.Events.QuadsShaded <= opaqueRun.Events.QuadsShaded {
		t.Errorf("all-transparent scene shaded %d quads, opaque %d: transparency should disable culling",
			transRun.Events.QuadsShaded, opaqueRun.Events.QuadsShaded)
	}
}
