package pipeline

import (
	"testing"

	"dtexl/internal/geom"
	"dtexl/internal/render"
	"dtexl/internal/sched"
	"dtexl/internal/texture"
	"dtexl/internal/tileorder"
	"dtexl/internal/trace"
)

// randomScene builds an arbitrary little scene from an RNG: random
// triangle soup over a couple of textures with mixed filters, alphas and
// shader profiles — nastier than the profile generators because nothing
// is tuned.
func randomScene(rng *trace.RNG, w, h int) *trace.Scene {
	texs := []*texture.Texture{
		texture.New(0, 0x1000_0000, 128, 128),
		texture.New(1, 0x1100_0000, 64, 64),
	}
	s := &trace.Scene{Width: w, Height: h, Textures: texs}
	ortho := geom.Orthographic(0, float64(w), float64(h), 0, 0, 1)
	nDraws := 1 + rng.Intn(6)
	vbase := uint64(0x4000_0000)
	for d := 0; d < nDraws; d++ {
		nTris := 1 + rng.Intn(8)
		var verts []trace.Vertex
		var idx []int
		for i := 0; i < nTris; i++ {
			for v := 0; v < 3; v++ {
				verts = append(verts, trace.Vertex{
					Pos: geom.Vec3{
						// Positions may fall off-screen (negative or beyond),
						// exercising clipping paths.
						X: rng.Range(-50, float64(w)+50),
						Y: rng.Range(-50, float64(h)+50),
						Z: rng.Float64(),
					},
					UV: geom.Vec2{X: rng.Range(-2, 2), Y: rng.Range(-2, 2)},
				})
				idx = append(idx, len(verts)-1)
			}
		}
		alpha := 1.0
		if rng.Float64() < 0.3 {
			alpha = rng.Range(0.2, 0.9)
		}
		s.Draws = append(s.Draws, trace.DrawCommand{
			Transform:  ortho,
			VertexBase: vbase,
			Vertices:   verts,
			Indices:    idx,
			Tex:        texs[rng.Intn(len(texs))],
			Shader: trace.ShaderProfile{
				Instructions: rng.IntRange(1, 40),
				Samples:      rng.IntRange(1, 4),
			},
			Filter:         texture.Filter(rng.Intn(3)),
			UVJitterTexels: rng.Range(0, 4),
			Alpha:          alpha,
		})
		vbase += uint64(len(verts)*trace.VertexBytes + 0xffff)
	}
	return s
}

// TestFuzzInvariants runs randomized scenes through many configurations
// and checks every cross-configuration invariant at once.
func TestFuzzInvariants(t *testing.T) {
	rng := trace.NewRNG(2024)
	base := testConfig()
	base.Width, base.Height = 192, 96
	iterations := 25
	if testing.Short() {
		iterations = 8
	}
	for iter := 0; iter < iterations; iter++ {
		scene := randomScene(rng, base.Width, base.Height)

		type variant struct {
			name string
			mut  func(*Config)
		}
		variants := []variant{
			{"baseline", func(*Config) {}},
			{"cg-square-dec", func(c *Config) { c.Grouping = sched.CGSquare; c.Decoupled = true }},
			{"hlb-flp2", func(c *Config) {
				c.Grouping = sched.CGSquare
				c.TileOrder = tileorder.HilbertRect
				c.Assignment = sched.Flp2
				c.Decoupled = true
			}},
			{"cg-tri-sorder", func(c *Config) {
				c.Grouping = sched.CGTri
				c.TileOrder = tileorder.SOrder
				c.Assignment = sched.Flp1
			}},
			{"precise-binning", func(c *Config) { c.PreciseBinning = true }},
		}

		var refShaded, refCulled, refFrag uint64
		var refImg *render.Framebuffer
		for vi, v := range variants {
			cfg := base
			v.mut(&cfg)
			fb := render.NewFramebuffer(cfg.Width, cfg.Height)
			cfg.RenderTarget = fb
			m, err := Run(scene, cfg)
			if err != nil {
				t.Fatalf("iter %d %s: %v", iter, v.name, err)
			}
			if m.Cycles <= 0 {
				t.Fatalf("iter %d %s: non-positive cycles", iter, v.name)
			}
			if vi == 0 {
				refShaded, refCulled, refFrag = m.Events.QuadsShaded, m.Events.QuadsCulled, m.Events.FragmentsShaded
				refImg = fb
				continue
			}
			if m.Events.QuadsShaded != refShaded || m.Events.QuadsCulled != refCulled {
				t.Fatalf("iter %d %s: shaded/culled %d/%d, want %d/%d",
					iter, v.name, m.Events.QuadsShaded, m.Events.QuadsCulled, refShaded, refCulled)
			}
			if m.Events.FragmentsShaded != refFrag {
				t.Fatalf("iter %d %s: fragments %d, want %d", iter, v.name, m.Events.FragmentsShaded, refFrag)
			}
			if !fb.Equal(refImg) {
				t.Fatalf("iter %d %s: image differs from baseline", iter, v.name)
			}
			var sum uint64
			for _, q := range m.PerSCQuads {
				sum += q
			}
			if sum != m.Events.QuadsShaded {
				t.Fatalf("iter %d %s: per-SC quads do not sum", iter, v.name)
			}
		}
	}
}
