package pipeline

import (
	"context"
	"fmt"
	"math"

	"dtexl/internal/cache"
	"dtexl/internal/stats"
	"dtexl/internal/tileorder"
	"dtexl/internal/trace"
)

// Run simulates one frame of scene under cfg and returns its metrics.
func Run(scene *trace.Scene, cfg Config) (*Metrics, error) {
	return RunContext(context.Background(), scene, cfg)
}

// RunContext is Run under a context: cancellation or deadline expiry
// aborts the simulation at the next watchdog poll and returns ctx's
// error.
func RunContext(ctx context.Context, scene *trace.Scene, cfg Config) (*Metrics, error) {
	ms, err := RunFramesContext(ctx, []*trace.Scene{scene}, cfg)
	if err != nil {
		return nil, err
	}
	return ms[0], nil
}

// RunFrames simulates a sequence of frames (an animation) against a
// single memory hierarchy, so the caches stay warm across frames exactly
// as on hardware: the shared L2 retains the texture working set that
// consecutive frames re-reference. Returns one Metrics per frame, with
// per-frame (not cumulative) traffic counts.
func RunFrames(scenes []*trace.Scene, cfg Config) ([]*Metrics, error) {
	return RunFramesContext(context.Background(), scenes, cfg)
}

// RunFramesContext is RunFrames under a context, checked between frames
// and inside the executors' watchdog polls.
func RunFramesContext(ctx context.Context, scenes []*trace.Scene, cfg Config) ([]*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(scenes) == 0 {
		return nil, fmt.Errorf("pipeline: no frames to simulate")
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	out := make([]*Metrics, 0, len(scenes))
	var prevL1, prevL2 cache.Stats
	var prevDRAM uint64
	for i, scene := range scenes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := runFrame(ctx, scene, cfg, hier)
		if err != nil {
			return nil, fmt.Errorf("pipeline: frame %d: %w", i, err)
		}
		// Convert cumulative hierarchy counters to per-frame deltas.
		l1, l2 := m.L1Tex, m.L2
		m.L1Tex = statsDelta(l1, prevL1)
		m.L2 = statsDelta(l2, prevL2)
		m.Events.L2Accesses = m.L2.Accesses
		dram := m.Events.DRAMAccesses
		m.Events.DRAMAccesses = dram - prevDRAM
		prevL1, prevL2, prevDRAM = l1, l2, dram
		out = append(out, m)
	}
	return out, nil
}

func statsDelta(cur, prev cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:  cur.Accesses - prev.Accesses,
		Hits:      cur.Hits - prev.Hits,
		Misses:    cur.Misses - prev.Misses,
		Evictions: cur.Evictions - prev.Evictions,
	}
}

// runFrame simulates one frame against an existing hierarchy. Cache
// counters in the result are cumulative over the hierarchy's lifetime;
// RunFrames converts them to per-frame deltas.
func runFrame(ctx context.Context, scene *trace.Scene, cfg Config, hier *cache.Hierarchy) (*Metrics, error) {
	if scene.Width != cfg.Width || scene.Height != cfg.Height {
		return nil, fmt.Errorf("pipeline: scene is %dx%d but config is %dx%d",
			scene.Width, scene.Height, cfg.Width, cfg.Height)
	}

	// Phase 1: Geometry Pipeline + Tiling Engine (whole frame, §II-A).
	geo := RunGeometry(scene, hier, cfg)
	binning := BinPrimitives(geo.Primitives, hier, cfg)

	return rasterFrame(ctx, cfg, hier, geo, binning, nil)
}

// rasterFrame simulates Phase 2 — the Raster Pipeline over the tile
// sequence — against a hierarchy already holding the post-geometry
// state, and assembles the frame's metrics. covers, when non-nil, is the
// precomputed policy-independent tile coverage of a PreparedFrame.
// A stalled or canceled run returns the executor's error with no
// metrics.
func rasterFrame(ctx context.Context, cfg Config, hier *cache.Hierarchy, geo GeometryResult, binning *Binning, covers []*tileCover) (*Metrics, error) {
	ex := newExecutor(cfg, hier, geo.Primitives, binning)
	ex.raster.cov.pre = covers
	ex.wd = newWatchdog(ctx, cfg)
	if cfg.SampleEvery > 0 {
		ex.es.sampler = newIntervalSampler(cfg.SampleEvery, ex.scs, hier)
	}
	if workers := parallelWorkers(ctx); workers > 1 && parallelEligible(ctx, cfg) {
		// Live path without a PreparedFrame: build the policy-independent
		// coverage skeletons up front on the worker pool (pure functions,
		// identical to the serial per-tile computation). Gated on a nil
		// RenderTarget because coverTile with a live target also resolves
		// colors, whose blend order must follow the tile walk.
		if covers == nil && cfg.RenderTarget == nil {
			ex.raster.cov.pre = parallelCovers(cfg, geo.Primitives, binning, workers)
			ex.perSCCapV = -1
		}
		ex.par = newParDrain(ctx, cfg, hier, cfg.NumSC, ex.es.sampler)
	}
	var err error
	if cfg.Decoupled {
		err = ex.runDecoupled()
	} else {
		err = ex.runCoupled()
	}
	if err != nil {
		return nil, err
	}

	m := &Metrics{
		Config:            cfg,
		GeometryCycles:    geo.Cycles + binning.Cycles,
		RasterCycles:      ex.frameEnd,
		PerSCQuads:        make([]uint64, cfg.NumSC),
		PerSCBusy:         make([]int64, cfg.NumSC),
		TileTimeDeviation: ex.tileTimeDev,
		TileQuadDeviation: ex.tileQuadDev,
		Timeline:          ex.timeline,
		SCBreakdown:       scBreakdowns(ex.scs, ex.frameEnd),
	}
	m.Intervals, m.IntervalsDropped = ex.es.sampler.drain()
	m.Cycles = m.GeometryCycles + m.RasterCycles
	m.FPS = cfg.ClockHz / float64(m.Cycles)

	ev := &ex.es.events
	ev.VertexFetches = geo.VertexFetches
	ev.L2Accesses = hier.L2.Stats().Accesses
	ev.DRAMAccesses = hier.DRAM.Stats().Accesses
	ev.FrameCycles = uint64(m.Cycles)
	var busy int64
	for i, sc := range ex.scs {
		m.PerSCQuads[i] = sc.quadsRetired
		m.PerSCBusy[i] = sc.busy
		busy += sc.busy
	}
	ev.SCBusyCycles = uint64(busy)
	idle := int64(cfg.NumSC)*ex.frameEnd - busy
	if idle < 0 {
		idle = 0
	}
	ev.SCIdleCycles = uint64(idle)
	m.Events = *ev
	m.L1Tex = hier.L1TexStats()
	m.L2 = hier.L2.Stats()
	return m, nil
}

// executor drives the Raster Pipeline's back end: the shader cores and
// the blend/flush bookkeeping, under either barrier discipline.
type executor struct {
	cfg      Config
	hier     *cache.Hierarchy
	raster   *rasterizer
	seq      []tileorder.Point
	scs      []*scState
	es       *engineState
	tilesX   int
	frameEnd int64

	tileTimeDev []float64
	tileQuadDev []float64
	timeline    []TileTiming

	// wd guards the drive loops; curSeq/curTX/curTY locate the in-flight
	// tile for stall dumps.
	wd                   watchdog
	curSeq, curTX, curTY int

	// par, when non-nil, runs the barrier-to-barrier drains on one
	// worker per SC with output byte-identical to the serial loops
	// (see parallel.go); nil keeps the executors fully serial.
	par *parDrain

	// pool recycles tileWork units (with their perSC and ownCov backing
	// arrays) across tiles; perSCCapV caches the presize for their perSC
	// lists (-1 until computed).
	pool      []*tileWork
	perSCCapV int

	// coupled-mode per-frame scratch (see beginCoupled).
	gates                              []int64
	cBefore                            []uint64
	cTimes, cQuads                     []float64
	cTW                                *tileWork
	cRasterPrev, cGatePrev, cFlushPrev int64

	// decoupled-mode bookkeeping
	tiles         []*tileWork
	rasterDone    []int64
	tileRemaining []int
	tileFinish    []int64
	lo, hi        int
	lastRasterEnd int64
	// Per-SC decoupled stream state (see runDecoupled). dFail[i] is the
	// window generation at which SC i's advance last came up empty;
	// neverFailed otherwise.
	dTile  []int   // current tile index per SC
	dFlush []int64 // completion of the SC's last bank flush
	dFail  []uint64
	// windowGen counts decoupled window movements (lo or hi); the drive
	// loop uses it to re-try parked SCs only when the window changed.
	windowGen uint64
}

func newExecutor(cfg Config, hier *cache.Hierarchy, prims []Primitive, b *Binning) *executor {
	ex := &executor{
		cfg:       cfg,
		hier:      hier,
		raster:    newRasterizer(cfg, prims, b, hier),
		seq:       TileSequence(cfg),
		tilesX:    cfg.TilesX(),
		perSCCapV: -1,
	}
	ex.scs = make([]*scState, cfg.NumSC)
	for i := range ex.scs {
		ex.scs[i] = &scState{
			id:       i,
			warps:    make([]warpState, 0, cfg.WarpSlots),
			ready:    make([]int64, 0, cfg.WarpSlots),
			fillFree: make([]int64, cfg.L1FillPorts),
		}
	}
	ex.es = &engineState{cfg: cfg, hier: hier}
	return ex
}

// perSCCap is the presize for pooled perSC quad lists: with prepared
// covers the per-tile maximum is known up front, making steady-state
// rasterization allocation-free.
func (ex *executor) perSCCap() int {
	if ex.perSCCapV >= 0 {
		return ex.perSCCapV
	}
	m := 0
	for _, c := range ex.raster.cov.pre {
		if c != nil && len(c.quads) > m {
			m = len(c.quads)
		}
	}
	ex.perSCCapV = m
	return m
}

// acquireTile returns a tileWork from the pool, or a fresh one with
// presized perSC lists.
func (ex *executor) acquireTile() *tileWork {
	if n := len(ex.pool); n > 0 {
		tw := ex.pool[n-1]
		ex.pool = ex.pool[:n-1]
		return tw
	}
	tw := &tileWork{perSC: make([][]int32, ex.cfg.NumSC)}
	if c := ex.perSCCap(); c > 0 {
		for i := range tw.perSC {
			tw.perSC[i] = make([]int32, 0, c)
		}
	}
	return tw
}

// releaseTile drops one reference and recycles the work unit when no
// holder remains (decoupled window slot and SC input streams each hold
// one).
func (ex *executor) releaseTile(tw *tileWork) {
	if tw == nil {
		return
	}
	if tw.refs--; tw.refs <= 0 {
		ex.pool = append(ex.pool, tw)
	}
}

// tileFlushLines is the number of color-buffer cache lines per tile.
func (ex *executor) tileFlushLines() int {
	return ex.cfg.TileSize * ex.cfg.TileSize * 4 / 64
}

// flush writes `lines` color-buffer lines of tile tw starting at cycle
// `at`, returning the completion time. Flushes are posted writes: the
// write buffer drains one line per cycle, so the latency is the line
// count, while the traffic still flows through the tile cache toward L2
// and DRAM (Fig. 5) for the traffic and energy accounting.
func (ex *executor) flush(tw *tileWork, bank int, lines int, at int64) int64 {
	tileIdx := tw.ty*ex.tilesX + tw.tx
	tileBytes := ex.cfg.TileSize * ex.cfg.TileSize * 4
	base := uint64(framebufferBase) + uint64(tileIdx*tileBytes) + uint64(bank*lines*64)
	for i := 0; i < lines; i++ {
		ex.hier.TileAccess(base + uint64(i*64))
	}
	ex.es.events.FlushedLines += uint64(lines)
	return at + int64(lines)
}

// ---------------------------------------------------------------------
// Coupled (baseline) execution: Fig. 4.
// ---------------------------------------------------------------------

func (ex *executor) runCoupled() error {
	ex.beginCoupled()
	for i := range ex.seq {
		if err := ex.coupledTile(i); err != nil {
			return err
		}
	}
	return nil
}

// beginCoupled allocates the coupled loop's per-frame scratch once, so
// the per-tile path (coupledTile) is allocation-free in steady state.
func (ex *executor) beginCoupled() {
	n := len(ex.seq)
	ex.gates = make([]int64, n+1) // gate[i] = when tile i's fragment work may start
	nsc := len(ex.scs)
	ex.cBefore = make([]uint64, nsc)
	ex.cTimes = make([]float64, nsc)
	ex.cQuads = make([]float64, nsc)
	if ex.cfg.NumSC > 1 {
		ex.tileTimeDev = make([]float64, 0, n)
		ex.tileQuadDev = make([]float64, 0, n)
	}
	if ex.cfg.CollectTimeline {
		ex.timeline = make([]TileTiming, 0, n)
	}
	// One work unit, reused: each tile fully drains before the next.
	ex.cTW = ex.acquireTile()
	ex.cRasterPrev, ex.cGatePrev, ex.cFlushPrev = 0, 0, 0
}

// coupledTile rasterizes and drains the i-th tile of the walk under the
// per-tile barrier discipline (Fig. 4).
func (ex *executor) coupledTile(i int) error {
	pt := ex.seq[i]
	ex.curSeq, ex.curTX, ex.curTY = i, pt.X, pt.Y
	tw := ex.cTW
	ex.raster.rasterizeTile(tw, i, pt)
	ex.es.events.QuadsShaded += uint64(len(tw.cov.quads))
	ex.es.events.QuadsCulled += tw.cov.culled
	ex.es.events.FragmentsShaded += tw.cov.fragments

	// The rasterizer runs ahead of the fragment stage, bounded by the
	// quad FIFO (FIFODepth tiles).
	rasterStart := ex.cRasterPrev
	if i >= ex.cfg.FIFODepth && ex.gates[i-ex.cfg.FIFODepth] > rasterStart {
		rasterStart = ex.gates[i-ex.cfg.FIFODepth]
	}
	rasterDone := rasterStart + tw.rasterCycles
	ex.cRasterPrev = rasterDone

	// barGate is the barrier-release point: the slowest core of the
	// previous tile plus the fixed crossing cost. The gate additionally
	// waits for the rasterizer when it runs behind.
	gate := ex.cGatePrev
	if i > 0 {
		gate += ex.cfg.TileBarrierCycles
	}
	barGate := gate
	if rasterDone > gate {
		gate = rasterDone
	}
	ex.gates[i] = gate

	// Barrier: all SCs align to the gate, then drain this tile. The
	// alignment is attributed per SC: cycles up to barGate are
	// BarrierWait (waiting for slower cores and the crossing cost; for
	// tile 0 barGate is 0, so the pipeline-fill wait is all supply);
	// any excess up to the gate is the rasterizer running behind —
	// QueueEmpty.
	before := ex.cBefore
	for si, sc := range ex.scs {
		if sc.clock < gate {
			bw := barGate - sc.clock
			if bw < 0 {
				bw = 0
			}
			sc.barrierWait += bw
			sc.queueEmpty += gate - sc.clock - bw
			sc.clock = gate
		}
		sc.setInput(tw, gate)
		before[si] = sc.quadsRetired
	}
	if err := ex.drainAll(); err != nil {
		return err
	}

	// Per-tile imbalance metrics (Figs. 12, 14, 15).
	times := ex.cTimes
	quads := ex.cQuads
	var maxFinish int64 = gate
	for si, sc := range ex.scs {
		times[si] = 0
		if sc.quadsRetired > before[si] {
			times[si] = float64(sc.lastRetire - gate)
			if sc.lastRetire > maxFinish {
				maxFinish = sc.lastRetire
			}
		}
		quads[si] = float64(len(tw.perSC[si]))
	}
	if ex.cfg.NumSC > 1 {
		ex.tileTimeDev = append(ex.tileTimeDev, stats.MeanDeviation(times))
		ex.tileQuadDev = append(ex.tileQuadDev, stats.MeanDeviation(quads))
	}
	if ex.cfg.CollectTimeline {
		tt := TileTiming{Seq: i, TX: pt.X, TY: pt.Y, Gate: gate, Finish: make([]int64, len(ex.scs))}
		for si, sc := range ex.scs {
			if sc.quadsRetired > before[si] {
				tt.Finish[si] = sc.lastRetire
			} else {
				tt.Finish[si] = gate
			}
		}
		ex.timeline = append(ex.timeline, tt)
	}

	// Whole-tile color flush. The single Color Buffer serializes the
	// flush chain: tile t+1's flush cannot begin before tile t's
	// completes (§III-E change #1 makes this per-bank instead). The
	// fragment stage of the next tile is gated only by its own
	// barrier; the quad FIFO in front of Blending absorbs the flush
	// window.
	flushStart := maxFinish
	if ex.cFlushPrev > flushStart {
		flushStart = ex.cFlushPrev
	}
	ex.cFlushPrev = ex.flush(tw, 0, ex.tileFlushLines(), flushStart)
	ex.cGatePrev = maxFinish
	if ex.cFlushPrev > ex.frameEnd {
		ex.frameEnd = ex.cFlushPrev
	}
	return nil
}

// drainAll advances SCs (always the one with the smallest clock, lowest
// index on ties) until none has pending work. A blocked core or
// watchdog-detected livelock returns a *StallError — formerly a
// process-killing panic — and a canceled context returns its error.
//
// Instead of rescanning every SC per step, one scan finds the minimum
// and runner-up (clock, index) pair, and the minimum SC is stepped
// repeatedly while it still precedes the runner-up in that order —
// during its steps no other SC's clock or pending state can change, so
// the step sequence is exactly the rescan-per-step one.
func (ex *executor) drainAll() error {
	for ex.wd.chaos {
		if ex.wd.chaosTick() {
			return ex.stallErr("coupled", "injected chaos stall")
		}
	}
	if ex.par != nil {
		if ran, reason, err := ex.par.drain(ex.scs); ran {
			if err != nil {
				return err
			}
			if reason != "" {
				return ex.stallErr("coupled", reason)
			}
			ex.par.merge(&ex.es.events)
			return nil
		}
		// Fewer than two pending SCs: fall through to the serial loop.
	}
	scs := ex.scs
	for {
		var best *scState
		bestIdx := -1
		second := int64(math.MaxInt64)
		secondIdx := len(scs)
		for i, sc := range scs {
			if !sc.pending() {
				continue
			}
			if best == nil || sc.clock < best.clock {
				if best != nil {
					second, secondIdx = best.clock, bestIdx
				}
				best, bestIdx = sc, i
			} else if sc.clock < second {
				second, secondIdx = sc.clock, i
			}
		}
		if best == nil {
			return nil
		}
		for {
			reason, err := ex.wd.step(ex.es, best)
			if err != nil {
				return err
			}
			if reason != "" {
				return ex.stallErr("coupled", reason)
			}
			if !best.pending() {
				break
			}
			if best.clock > second || (best.clock == second && bestIdx > secondIdx) {
				break
			}
		}
	}
}

// stallErr assembles the diagnostic state dump for a stalled executor.
func (ex *executor) stallErr(mode, reason string) *StallError {
	e := &StallError{
		Mode:     mode,
		Reason:   reason,
		Cycle:    maxClock(ex.scs),
		Steps:    ex.wd.noProgress,
		TileSeq:  ex.curSeq,
		TileX:    ex.curTX,
		TileY:    ex.curTY,
		WindowLo: ex.lo,
		WindowHi: ex.hi,
		SCs:      scStallStates(ex.scs),
	}
	if mode == "decoupled" && ex.lo < len(ex.seq) {
		// The oldest unretired tile is the window's lo edge.
		e.TileSeq = ex.lo
		e.TileX, e.TileY = ex.seq[ex.lo].X, ex.seq[ex.lo].Y
	}
	return e
}

// ---------------------------------------------------------------------
// Decoupled (DTexL) execution: Fig. 10.
// ---------------------------------------------------------------------

func (ex *executor) runDecoupled() error {
	n := len(ex.seq)
	ex.tiles = make([]*tileWork, n)
	ex.rasterDone = make([]int64, n)
	ex.tileRemaining = make([]int, n)
	ex.tileFinish = make([]int64, n)

	// Per-SC stream state. dFail[i] is the window generation at which
	// SC i's advance last came up empty; the feed loop re-tries a parked
	// SC only after the window moved, since a failed advance is a pure
	// no-op until then (the drained-subtile flush happens on the first
	// attempt, before the SC can park).
	nsc := len(ex.scs)
	ex.dTile = make([]int, nsc)
	ex.dFlush = make([]int64, nsc)
	ex.dFail = make([]uint64, nsc)
	for i := range ex.dTile {
		ex.dTile[i] = -1
		ex.dFail[i] = neverFailed
	}

	ex.es.retire = func(sc *scState, tw *tileWork, at int64) {
		ex.tileRemaining[tw.seq]--
		if ex.tileRemaining[tw.seq] == 0 {
			ex.tileFinish[tw.seq] = at
			ex.advanceLo()
		}
	}
	defer func() { ex.es.retire = nil }()

	ex.extendWindow()

	if ex.par != nil {
		return ex.runDecoupledParallel()
	}

	for ex.wd.chaos {
		if ex.wd.chaosTick() {
			return ex.stallErr("decoupled", "injected chaos stall")
		}
	}
	scs := ex.scs
	for {
		// Feed drained SCs (index order — advances touch the hierarchy).
		feedGen := ex.windowGen
		anyPending := false
		for _, sc := range scs {
			if !sc.pending() && ex.dFail[sc.id] != ex.windowGen {
				if ex.decAdvance(sc) {
					ex.dFail[sc.id] = neverFailed
				} else {
					ex.dFail[sc.id] = ex.windowGen
				}
			}
			if sc.pending() {
				anyPending = true
			}
		}
		if !anyPending {
			if ex.lo >= n && ex.hi >= n {
				break
			}
			if ex.extendWindow() {
				ex.wd.noProgress = 0
				continue
			}
			if ex.lo >= n {
				break
			}
			// No SC has work and the window cannot grow: only retires can
			// unwedge this, and there are none in flight — count it toward
			// the watchdog instead of spinning forever.
			if ex.wd.idleTick() {
				return ex.stallErr("decoupled", "window stalled: rasterizer cannot advance")
			}
			continue
		}
		// One scan finds the minimum and runner-up (clock, index); the
		// minimum SC then steps repeatedly while it still precedes the
		// runner-up in that order. The batch stops as soon as the window
		// moved — a retire may have unparked another SC, which must be
		// fed (and may preempt) before the next step, exactly as the
		// feed-before-every-step loop did. A feed pass that itself moved
		// the window limits the batch to a single step for the same
		// reason.
		feedMoved := ex.windowGen != feedGen
		var best *scState
		bestIdx := -1
		second := int64(math.MaxInt64)
		secondIdx := nsc
		for i, sc := range scs {
			if !sc.pending() {
				continue
			}
			if best == nil || sc.clock < best.clock {
				if best != nil {
					second, secondIdx = best.clock, bestIdx
				}
				best, bestIdx = sc, i
			} else if sc.clock < second {
				second, secondIdx = sc.clock, i
			}
		}
		for {
			gen := ex.windowGen
			reason, err := ex.wd.step(ex.es, best)
			if err != nil {
				return err
			}
			if reason != "" {
				return ex.stallErr("decoupled", reason)
			}
			if feedMoved || ex.windowGen != gen || !best.pending() {
				break
			}
			if best.clock > second || (best.clock == second && bestIdx > secondIdx) {
				break
			}
		}
	}

	ex.decFrameEnd()
	return nil
}

// neverFailed is the dFail sentinel for an SC whose last advance
// succeeded (or that has not yet advanced).
const neverFailed = ^uint64(0)

// decAdvance moves sc's input to its next non-empty subtile stream,
// returning false when it must wait for the window. It touches the
// shared hierarchy (bank flush, window extension), so under the
// parallel drain it must only run while holding the sequencer grant.
func (ex *executor) decAdvance(sc *scState) bool {
	if sc.inTile != nil && len(sc.inTile.perSC[sc.id]) > 0 {
		// Bank flush of the subtile just drained (16 lines, §III-E).
		ex.dFlush[sc.id] = ex.flush(sc.inTile, sc.id, ex.tileFlushLines()/len(ex.scs), sc.lastRetire)
		ex.releaseTile(sc.inTile)
		sc.inTile = nil
	}
	for {
		next := ex.dTile[sc.id] + 1
		if next >= ex.hi {
			if !ex.extendWindow() {
				return false
			}
			if next >= ex.hi {
				return false
			}
		}
		ex.dTile[sc.id] = next
		tw := ex.tiles[next]
		if tw == nil || len(tw.perSC[sc.id]) == 0 {
			continue // nothing for this SC in that tile
		}
		gate := ex.rasterDone[next]
		if ex.dFlush[sc.id] > gate {
			gate = ex.dFlush[sc.id]
		}
		tw.refs++
		sc.setInput(tw, gate)
		return true
	}
}

// decFrameEnd folds the decoupled run's completion times into frameEnd.
func (ex *executor) decFrameEnd() {
	for _, sc := range ex.scs {
		if sc.clock > ex.frameEnd {
			ex.frameEnd = sc.clock
		}
	}
	for _, f := range ex.dFlush {
		if f > ex.frameEnd {
			ex.frameEnd = f
		}
	}
	if ex.lastRasterEnd > ex.frameEnd {
		ex.frameEnd = ex.lastRasterEnd
	}
}

// extendWindow rasterizes tiles up to the FIFO bound and returns whether
// it made progress.
func (ex *executor) extendWindow() bool {
	n := len(ex.seq)
	progressed := false
	for ex.hi < n && ex.hi < ex.lo+ex.cfg.FIFODepth {
		i := ex.hi
		tw := ex.acquireTile()
		ex.raster.rasterizeTile(tw, i, ex.seq[i])
		tw.refs = 1 // the window slot's reference
		nq := len(tw.cov.quads)
		ex.es.events.QuadsShaded += uint64(nq)
		ex.es.events.QuadsCulled += tw.cov.culled
		ex.es.events.FragmentsShaded += tw.cov.fragments

		start := ex.lastRasterEnd
		if i >= ex.cfg.FIFODepth && ex.tileFinish[i-ex.cfg.FIFODepth] > start {
			start = ex.tileFinish[i-ex.cfg.FIFODepth]
		}
		ex.rasterDone[i] = start + tw.rasterCycles
		ex.lastRasterEnd = ex.rasterDone[i]

		ex.tiles[i] = tw
		ex.tileRemaining[i] = nq
		if nq == 0 {
			ex.tileFinish[i] = ex.rasterDone[i]
		}
		ex.hi++
		ex.advanceLo()
		progressed = true
	}
	if progressed {
		ex.windowGen++
	}
	return progressed
}

// advanceLo slides the window past fully retired tiles, releasing their
// work units back to the pool.
func (ex *executor) advanceLo() {
	moved := false
	for ex.lo < ex.hi && ex.tileRemaining[ex.lo] == 0 {
		ex.releaseTile(ex.tiles[ex.lo])
		ex.tiles[ex.lo] = nil
		ex.lo++
		moved = true
	}
	if moved {
		ex.windowGen++
	}
}
