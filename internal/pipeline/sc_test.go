package pipeline

import (
	"testing"

	"dtexl/internal/cache"
)

// buildTileWork constructs a synthetic tile with n identical quads for
// SC 0: `instr` ALU instructions, one sample touching one line each, all
// lines distinct (pure miss stream) or all the same (hit stream).
func buildTileWork(n int, instr int16, distinctLines bool) *tileWork {
	tw := &tileWork{perSC: make([][]int32, 1)}
	cov := &tw.ownCov
	tw.cov = cov
	for i := 0; i < n; i++ {
		line := uint64(0x100000)
		if distinctLines {
			line += uint64(i) * 64
		}
		off := int32(len(cov.lines))
		cov.lines = append(cov.lines, line)
		cov.spans = append(cov.spans, span{off: off, n: 1})
		tw.perSC[0] = append(tw.perSC[0], int32(len(cov.quads)))
		cq := coverQuad{samples: 1, instr: instr, firstSpan: int32(len(cov.spans) - 1)}
		cq.setSegs()
		cov.quads = append(cov.quads, cq)
	}
	return tw
}

// runSC drains one SC over the given tile and returns its finish time.
func runSC(t *testing.T, cfg Config, tw *tileWork) (finish int64, es *engineState) {
	t.Helper()
	cfg.NumSC = 1
	cfg.Hierarchy.NumSC = 1
	es = &engineState{cfg: cfg, hier: cache.NewHierarchy(cfg.Hierarchy)}
	sc := &scState{id: 0}
	sc.setInput(tw, 0)
	for sc.pending() {
		if !sc.step(es) {
			t.Fatal("SC blocked with pending work")
		}
	}
	return sc.clock, es
}

func scTestConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSC = 1
	cfg.Hierarchy.NumSC = 1
	return cfg
}

func TestSingleWarpTiming(t *testing.T) {
	// One quad, 10 instructions, 1 sample hitting nothing (cold miss to
	// DRAM): time = instructions + sample overhead + L1 + L2 + DRAM.
	cfg := scTestConfig()
	cfg.WarpSlots = 1
	tw := buildTileWork(1, 10, true)
	finish, _ := runSC(t, cfg, tw)
	// 10 ALU + the cold miss fill (1 L1 + 12 L2 + 100 DRAM = 113); the
	// texture unit's fixed overhead pipelines under the fill.
	want := int64(10) + 113
	if finish != want {
		t.Errorf("single-warp finish = %d, want %d", finish, want)
	}
}

func TestMultithreadingHidesLatency(t *testing.T) {
	// With warp slots, other warps' compute overlaps a warp's memory
	// stall: 8 warps must finish much faster than 8 x single-warp time.
	cfg := scTestConfig()
	n := 32
	cfg.WarpSlots = 1
	serial, _ := runSC(t, cfg, buildTileWork(n, 20, true))
	cfg.WarpSlots = 8
	overlapped, _ := runSC(t, cfg, buildTileWork(n, 20, true))
	if overlapped >= serial {
		t.Errorf("8 warps (%d cycles) not faster than 1 warp (%d)", overlapped, serial)
	}
	// All ALU work still executes: lower bound is pure compute time.
	if overlapped < int64(n*20) {
		t.Errorf("finish %d below ALU lower bound %d", overlapped, n*20)
	}
}

func TestHitStreamIsComputeBound(t *testing.T) {
	// All quads touching one line: first access misses, the rest hit, so
	// with a few warps the SC is compute-bound: time ~ total ALU + small.
	cfg := scTestConfig()
	cfg.WarpSlots = 8
	n := 64
	finish, es := runSC(t, cfg, buildTileWork(n, 20, false))
	alu := int64(n * 20)
	if finish < alu {
		t.Fatalf("finish %d below ALU time %d", finish, alu)
	}
	if finish > alu+300 {
		t.Errorf("hit stream finish %d far above compute bound %d", finish, alu)
	}
	if es.events.ALUInstructions != uint64(alu) {
		t.Errorf("ALU count = %d, want %d", es.events.ALUInstructions, alu)
	}
}

func TestFillPortSerializesMissStream(t *testing.T) {
	// A pure miss stream (distinct lines, L2 hits after the first) must
	// be bounded below by misses x L2 latency with one fill port, however
	// many warps are resident.
	cfg := scTestConfig()
	cfg.WarpSlots = 16
	cfg.L1FillPorts = 1
	n := 64
	// Short shaders so compute cannot dominate: 4 cycles each.
	finish, _ := runSC(t, cfg, buildTileWork(n, 4, true))
	// Lines land in distinct sets of a cold L1, so all n accesses miss to
	// L2/DRAM; with one fill port they serialize at >= 13 cycles each.
	minBound := int64(n) * 13
	if finish < minBound {
		t.Errorf("miss stream finish %d below fill-port bound %d", finish, minBound)
	}
	// Two fill ports must relieve the bound.
	cfg.L1FillPorts = 2
	finish2, _ := runSC(t, cfg, buildTileWork(n, 4, true))
	if finish2 >= finish {
		t.Errorf("2 fill ports (%d) not faster than 1 (%d)", finish2, finish)
	}
}

func TestWarpSlotsBoundResidency(t *testing.T) {
	// The engine must never hold more warps than slots.
	cfg := scTestConfig()
	cfg.WarpSlots = 3
	es := &engineState{cfg: cfg, hier: cache.NewHierarchy(cfg.Hierarchy)}
	sc := &scState{id: 0}
	tw := buildTileWork(32, 10, true)
	sc.setInput(tw, 0)
	for sc.pending() {
		if len(sc.warps) > 3 {
			t.Fatalf("%d warps resident with 3 slots", len(sc.warps))
		}
		if !sc.step(es) {
			t.Fatal("blocked")
		}
	}
}

func TestInputGateDelaysAdmission(t *testing.T) {
	// Quads gated at cycle 1000 must not start earlier.
	cfg := scTestConfig()
	es := &engineState{cfg: cfg, hier: cache.NewHierarchy(cfg.Hierarchy)}
	sc := &scState{id: 0}
	tw := buildTileWork(1, 10, true)
	sc.setInput(tw, 1000)
	for sc.pending() {
		if !sc.step(es) {
			t.Fatal("blocked")
		}
	}
	if sc.lastRetire < 1000+10 {
		t.Errorf("quad retired at %d despite gate 1000", sc.lastRetire)
	}
	if sc.busy != 10 {
		t.Errorf("busy = %d, want 10", sc.busy)
	}
}

func TestBlockedWithoutInput(t *testing.T) {
	cfg := scTestConfig()
	es := &engineState{cfg: cfg, hier: cache.NewHierarchy(cfg.Hierarchy)}
	sc := &scState{id: 0}
	if sc.step(es) {
		t.Error("idle SC reported progress")
	}
	if sc.pending() {
		t.Error("idle SC reports pending work")
	}
}

func TestPrefetchFillsRecordedAtAdmission(t *testing.T) {
	// With prefetching, a single warp's sample must not wait the full
	// miss latency at the sample point: the fill started at admission and
	// overlapped the leading compute segment.
	cfg := scTestConfig()
	cfg.WarpSlots = 1
	cfg.TexturePrefetch = true
	tw := buildTileWork(1, 40, true) // long leading segment
	finish, es := runSC(t, cfg, tw)
	// Demand fetching: 40 + 113 = 153. Prefetch: the fill (113, started
	// at admission) overlaps the first segment (20), so the sample waits
	// only the remainder: finish = max(40, 113) + trailing segment 20 =
	// 133.
	if finish >= 153 {
		t.Errorf("prefetch did not overlap compute: finish = %d", finish)
	}
	if es.events.TextureSamples != 1 || es.events.L1TexAccesses != 1 {
		t.Errorf("prefetch miscounted events: %+v", es.events)
	}
}

func TestPrefetchEventParity(t *testing.T) {
	// Prefetching must count exactly the same events as demand fetching.
	cfg := scTestConfig()
	cfg.WarpSlots = 4
	fin1, es1 := runSC(t, cfg, buildTileWork(16, 12, true))
	cfg.TexturePrefetch = true
	fin2, es2 := runSC(t, cfg, buildTileWork(16, 12, true))
	if es1.events.L1TexAccesses != es2.events.L1TexAccesses ||
		es1.events.TextureSamples != es2.events.TextureSamples ||
		es1.events.ALUInstructions != es2.events.ALUInstructions {
		t.Errorf("event mismatch: %+v vs %+v", es1.events, es2.events)
	}
	if fin2 > fin1 {
		t.Errorf("prefetch slower on a clean stream: %d vs %d", fin2, fin1)
	}
}
