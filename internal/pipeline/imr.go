package pipeline

import (
	"context"
	"fmt"
	"math"

	"dtexl/internal/cache"
	"dtexl/internal/texture"
	"dtexl/internal/trace"
)

// Immediate-Mode Rendering (IMR): the non-tiled architecture TBR is
// motivated against (§II, citing Antochi et al.'s ~1.96x external-traffic
// factor). IMR rasterizes primitives in submission order over the whole
// screen; the depth and color buffers live in main memory and every
// Z-test and color write is a cached memory access instead of an on-chip
// bank access. The shader-core model, texture path and memory hierarchy
// are exactly the TBR ones, so the comparison isolates the architecture.

// zBufferBase is the IMR depth buffer's address arena (4 B/pixel,
// row-linear, 16 pixels per 64 B line).
const zBufferBase = 0xe000_0000

// imrBatchPrims bounds how many primitives one IMR dispatch batch holds;
// batches bound simulator memory the way the tile window does for TBR.
const imrBatchPrims = 64

// RunIMR simulates one frame on the immediate-mode machine. The
// configuration's scheduler fields are ignored except the fine-grained
// quad-to-SC interleave (IMR has no tiles, so quads scatter across SCs by
// screen position); Decoupled/TileOrder/Assignment do not apply.
func RunIMR(scene *trace.Scene, cfg Config) (*Metrics, error) {
	return RunIMRContext(context.Background(), scene, cfg)
}

// RunIMRContext is RunIMR under a context for cancellation and
// deadlines; a stalled executor returns a *StallError instead of
// panicking, like the TBR executors.
func RunIMRContext(ctx context.Context, scene *trace.Scene, cfg Config) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if scene.Width != cfg.Width || scene.Height != cfg.Height {
		return nil, fmt.Errorf("pipeline: scene is %dx%d but config is %dx%d",
			scene.Width, scene.Height, cfg.Width, cfg.Height)
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	geo := RunGeometry(scene, hier, cfg)

	im := &imrExecutor{
		cfg:  cfg,
		hier: hier,
		es:   &engineState{cfg: cfg, hier: hier},
		// The memory-resident depth buffer, pixel-granular like the TBR
		// Z-Buffer; its traffic flows through the cache hierarchy.
		depth: make([]float64, cfg.Width*cfg.Height),
	}
	for i := range im.depth {
		im.depth[i] = 2 // beyond the far plane
	}
	im.scs = make([]*scState, cfg.NumSC)
	for i := range im.scs {
		im.scs[i] = &scState{
			id:       i,
			warps:    make([]warpState, 0, cfg.WarpSlots),
			ready:    make([]int64, 0, cfg.WarpSlots),
			fillFree: make([]int64, cfg.L1FillPorts),
		}
	}
	im.wd = newWatchdog(ctx, cfg)
	if cfg.SampleEvery > 0 {
		im.es.sampler = newIntervalSampler(cfg.SampleEvery, im.scs, hier)
	}
	if workers := parallelWorkers(ctx); workers > 1 && parallelEligible(ctx, cfg) {
		im.par = newParDrain(ctx, cfg, hier, cfg.NumSC, im.es.sampler)
	}
	if err := im.run(geo.Primitives); err != nil {
		return nil, err
	}

	m := &Metrics{
		Config:         cfg,
		GeometryCycles: geo.Cycles, // no Tiling Engine in IMR
		RasterCycles:   im.frameEnd,
		PerSCQuads:     make([]uint64, cfg.NumSC),
		PerSCBusy:      make([]int64, cfg.NumSC),
		SCBreakdown:    scBreakdowns(im.scs, im.frameEnd),
	}
	m.Intervals, m.IntervalsDropped = im.es.sampler.drain()
	m.Cycles = m.GeometryCycles + m.RasterCycles
	m.FPS = cfg.ClockHz / float64(m.Cycles)
	ev := &im.es.events
	ev.VertexFetches = geo.VertexFetches
	ev.L2Accesses = hier.L2.Stats().Accesses
	ev.DRAMAccesses = hier.DRAM.Stats().Accesses
	ev.FrameCycles = uint64(m.Cycles)
	var busy int64
	for i, sc := range im.scs {
		m.PerSCQuads[i] = sc.quadsRetired
		m.PerSCBusy[i] = sc.busy
		busy += sc.busy
	}
	ev.SCBusyCycles = uint64(busy)
	if idle := int64(cfg.NumSC)*im.frameEnd - busy; idle > 0 {
		ev.SCIdleCycles = uint64(idle)
	}
	m.Events = *ev
	m.L1Tex = hier.L1TexStats()
	m.L2 = hier.L2.Stats()
	return m, nil
}

type imrExecutor struct {
	cfg      Config
	hier     *cache.Hierarchy
	es       *engineState
	scs      []*scState
	depth    []float64
	frameEnd int64

	wd     watchdog
	curSeq int // in-flight primitive batch, for stall dumps

	// par, when non-nil, drains each batch on one worker per SC with
	// byte-identical output (see parallel.go).
	par *parDrain

	samplers [3]texture.Sampler
}

// stallErr assembles the IMR stall diagnostic (no tiles or window; the
// batch sequence number stands in for the in-flight tile).
func (im *imrExecutor) stallErr(reason string) *StallError {
	return &StallError{
		Mode:    "imr",
		Reason:  reason,
		Cycle:   maxClock(im.scs),
		Steps:   im.wd.noProgress,
		TileSeq: im.curSeq,
		SCs:     scStallStates(im.scs),
	}
}

// run streams primitive batches through rasterization + memory Z-test and
// feeds the shader cores without any barrier: IMR has no tiles to wait
// on. Batches exist only to bound simulator memory.
func (im *imrExecutor) run(prims []Primitive) error {
	im.samplers[texture.Bilinear] = texture.Sampler{Filter: texture.Bilinear}
	im.samplers[texture.Trilinear] = texture.Sampler{Filter: texture.Trilinear}
	im.samplers[texture.Aniso2x] = texture.Sampler{Filter: texture.Aniso2x}

	var rasterDone int64
	seq := 0
	// One work unit, reused: each batch fully drains before the next.
	tw := &tileWork{perSC: make([][]int32, im.cfg.NumSC)}
	for start := 0; start < len(prims); start += imrBatchPrims {
		end := start + imrBatchPrims
		if end > len(prims) {
			end = len(prims)
		}
		im.curSeq = seq
		im.rasterizeBatch(tw, seq, prims[start:end])
		seq++
		rasterDone += tw.rasterCycles
		im.es.events.QuadsShaded += uint64(len(tw.cov.quads))
		im.es.events.QuadsCulled += tw.cov.culled
		im.es.events.FragmentsShaded += tw.cov.fragments

		// Feed every SC its share and drain the batch (no barrier: the
		// gate is only raster availability, and SC clocks carry over).
		for _, sc := range im.scs {
			sc.setInput(tw, rasterDone)
		}
		for im.wd.chaos {
			if im.wd.chaosTick() {
				return im.stallErr("injected chaos stall")
			}
		}
		if im.par != nil {
			if ran, reason, err := im.par.drain(im.scs); ran {
				if err != nil {
					return err
				}
				if reason != "" {
					return im.stallErr(reason)
				}
				im.par.merge(&im.es.events)
				continue
			}
			// Fewer than two pending SCs: use the serial loop below.
		}
		// Same min/runner-up tracker as the TBR drainAll: IMR has no
		// retire callback, so only the stepped SC's state can change
		// between rescans.
		for {
			var best *scState
			bestIdx := -1
			second := int64(math.MaxInt64)
			secondIdx := len(im.scs)
			for i, sc := range im.scs {
				if !sc.pending() {
					continue
				}
				if best == nil || sc.clock < best.clock {
					if best != nil {
						second, secondIdx = best.clock, bestIdx
					}
					best, bestIdx = sc, i
				} else if sc.clock < second {
					second, secondIdx = sc.clock, i
				}
			}
			if best == nil {
				break
			}
			for {
				reason, err := im.wd.step(im.es, best)
				if err != nil {
					return err
				}
				if reason != "" {
					return im.stallErr(reason)
				}
				if !best.pending() {
					break
				}
				if best.clock > second || (best.clock == second && bestIdx > secondIdx) {
					break
				}
			}
		}
	}
	for _, sc := range im.scs {
		if sc.clock > im.frameEnd {
			im.frameEnd = sc.clock
		}
	}
	if rasterDone > im.frameEnd {
		im.frameEnd = rasterDone
	}
	return nil
}

// zLineAddr returns the depth-buffer line holding pixel (x, y).
func (im *imrExecutor) zLineAddr(x, y int) uint64 {
	return (uint64(zBufferBase) + uint64(y*im.cfg.Width+x)*4) &^ 63
}

// colorLineAddr returns the framebuffer line holding pixel (x, y).
func (im *imrExecutor) colorLineAddr(x, y int) uint64 {
	return (uint64(framebufferBase) + uint64(y*im.cfg.Width+x)*4) &^ 63
}

// rasterizeBatch rasterizes a run of primitives over the full screen,
// performing the Z read-modify-write and the color write against the
// memory-resident buffers. Their cache latencies are charged to the
// raster/ROP pipeline.
func (im *imrExecutor) rasterizeBatch(tw *tileWork, seq int, prims []Primitive) {
	cfg := &im.cfg
	tw.reset(cfg.NumSC)
	tw.seq = seq
	cov := &tw.ownCov
	cov.reset()
	tw.cov = cov
	quadsTested := 0
	for pi := range prims {
		p := &prims[pi]
		sampler := &im.samplers[p.Filter]
		opaque := p.Alpha >= 1
		minX, minY, maxX, maxY := clampBoundsToScreen(p, cfg.Width, cfg.Height)
		if minX > maxX || minY > maxY {
			continue
		}
		for qy := minY / 2; qy <= maxY/2; qy++ {
			for qx := minX / 2; qx <= maxX/2; qx++ {
				quadsTested++
				px, py := qx*2, qy*2
				covered := false
				alive := false
				var passMask, coverMask uint8
				// A 2x2 quad touches up to four depth lines (two rows, and
				// each row may straddle a 16-pixel line boundary).
				var touched [4]uint64
				nTouched := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						x := float64(px+dx) + 0.5
						y := float64(py+dy) + 0.5
						if px+dx >= cfg.Width || py+dy >= cfg.Height || !p.Setup.Inside(x, y) {
							continue
						}
						covered = true
						coverMask |= 1 << uint(dy*2+dx)
						// Memory Z-test: read the depth line once per quad.
						addr := im.zLineAddr(px+dx, py+dy)
						seen := false
						for i := 0; i < nTouched; i++ {
							if touched[i] == addr {
								seen = true
								break
							}
						}
						if !seen {
							touched[nTouched] = addr
							nTouched++
							tw.rasterCycles += im.hier.TileAccess(addr)
						}
						d := p.Setup.DepthAt(x, y)
						idx := (py+dy)*cfg.Width + px + dx
						if d < im.depth[idx] {
							if opaque {
								im.depth[idx] = d
							}
							alive = true
							passMask |= 1 << uint(dy*2+dx)
						}
					}
				}
				if !covered {
					continue
				}
				if alive && opaque {
					// Depth writeback: one access per touched line.
					for i := 0; i < nTouched; i++ {
						tw.rasterCycles += im.hier.TileAccess(touched[i])
					}
				}
				if !alive {
					if !cfg.LateZ {
						cov.culled++
						continue
					}
					alive = true
				}
				// Color write for the shaded pixels' lines (up to four).
				var colorLines [4]uint64
				nColor := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if passMask&(1<<uint(dy*2+dx)) == 0 {
							continue
						}
						addr := im.colorLineAddr(px+dx, py+dy)
						seen := false
						for i := 0; i < nColor; i++ {
							if colorLines[i] == addr {
								seen = true
								break
							}
						}
						if !seen {
							colorLines[nColor] = addr
							nColor++
						}
					}
				}
				for i := 0; i < nColor; i++ {
					im.hier.TileAccess(colorLines[i])
					tw.rasterCycles++ // posted write, throughput-limited
					im.es.events.FlushedLines++
				}
				if cfg.RenderTarget != nil && passMask != 0 {
					resolveColor(cfg.RenderTarget, p, px, py, passMask)
				}
				if cfg.LateZ {
					cov.fragments += uint64(popcount4(coverMask))
				} else {
					cov.fragments += uint64(popcount4(passMask))
				}

				// Texture footprint, identical to the TBR path.
				cxf := float64(px) + 1.0
				cyf := float64(py) + 1.0
				uv := p.Setup.UVAt(cxf, cyf)
				jx, jy := quadJitter(px, py, p.ID)
				uv.X += jx * p.UVJitter / float64(p.Tex.Width)
				uv.Y += jy * p.UVJitter / float64(p.Tex.Height)
				firstSpan := int32(len(cov.spans))
				for s := 0; s < p.Shader.Samples; s++ {
					du := float64(s*sampleUVStride) / float64(p.Tex.Width)
					lines := sampler.Footprint(p.Tex, uv.X+du, uv.Y, p.LOD)
					off := int32(len(cov.lines))
					cov.lines = append(cov.lines, lines...)
					cov.spans = append(cov.spans, span{off: off, n: int32(len(lines))})
				}
				// Quads scatter across SCs by screen position with the
				// fine-grained interleave (no tiles, no subtile notion).
				sc := (qx + 2*qy) & 3 % cfg.NumSC
				tw.perSC[sc] = append(tw.perSC[sc], int32(len(cov.quads)))
				cq := coverQuad{
					samples:   int8(p.Shader.Samples),
					instr:     int16(p.Shader.Instructions),
					firstSpan: firstSpan,
				}
				cq.setSegs()
				cov.quads = append(cov.quads, cq)
			}
		}
	}
	tw.rasterCycles += int64(float64(quadsTested) / cfg.RasterRate)
}

// clampBoundsToScreen clips a primitive's pixel bounds to the screen.
func clampBoundsToScreen(p *Primitive, w, h int) (minX, minY, maxX, maxY int) {
	minX, minY = int(p.Bounds.MinX), int(p.Bounds.MinY)
	maxX, maxY = int(p.Bounds.MaxX), int(p.Bounds.MaxY)
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > w-1 {
		maxX = w - 1
	}
	if maxY > h-1 {
		maxY = h - 1
	}
	return
}
