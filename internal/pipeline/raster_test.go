package pipeline

import (
	"testing"

	"dtexl/internal/cache"
	"dtexl/internal/geom"
	"dtexl/internal/sched"
	"dtexl/internal/texture"
	"dtexl/internal/tileorder"
	"dtexl/internal/trace"
)

func TestQuadRangeClipsToTileAndScreen(t *testing.T) {
	p := &Primitive{Bounds: geom.AABB{MinX: -10, MinY: -10, MaxX: 1000, MaxY: 1000}}
	// Tile at origin (0,0), 32px tiles, screen 50x40 (not tile-aligned).
	qx0, qy0, qx1, qy1 := quadRange(p, 0, 0, 32, 50, 40)
	if qx0 != 0 || qy0 != 0 {
		t.Errorf("lower corner = (%d,%d)", qx0, qy0)
	}
	if qx1 != 15 || qy1 != 15 {
		t.Errorf("upper corner = (%d,%d), want (15,15)", qx1, qy1)
	}
	// Edge tile at (32,32): screen limits to pixel 49x39.
	qx0, qy0, qx1, qy1 = quadRange(p, 32, 32, 32, 50, 40)
	if qx1 != (49-32)/2 || qy1 != (39-32)/2 {
		t.Errorf("edge tile upper corner = (%d,%d)", qx1, qy1)
	}
	// Primitive entirely right of the tile: empty range.
	p2 := &Primitive{Bounds: geom.AABB{MinX: 100, MinY: 0, MaxX: 120, MaxY: 10}}
	qx0, _, qx1, _ = quadRange(p2, 0, 0, 32, 200, 200)
	if qx0 <= qx1 {
		t.Errorf("disjoint primitive produced range %d..%d", qx0, qx1)
	}
}

func TestQuadJitterDeterministicAndBounded(t *testing.T) {
	for px := 0; px < 64; px += 2 {
		for py := 0; py < 64; py += 2 {
			x1, y1 := quadJitter(px, py, 7)
			x2, y2 := quadJitter(px, py, 7)
			if x1 != x2 || y1 != y2 {
				t.Fatal("jitter not deterministic")
			}
			if x1 < -1 || x1 > 1 || y1 < -1 || y1 > 1 {
				t.Fatalf("jitter out of range: %v %v", x1, y1)
			}
		}
	}
	// Different primitives must jitter differently (almost surely).
	a, _ := quadJitter(10, 10, 1)
	b, _ := quadJitter(10, 10, 2)
	if a == b {
		t.Error("distinct primitives share jitter")
	}
}

func TestJitterIndependentOfScheduling(t *testing.T) {
	// The same scene rasterized under two different assignments must
	// touch exactly the same set of texture lines (just on different
	// SCs): addresses are a pure function of position.
	cfg := testConfig()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	scene := testScene(t, "SWa", cfg)
	geo := RunGeometry(scene, hier, cfg)
	b := BinPrimitives(geo.Primitives, hier, cfg)

	collect := func(assign sched.Assignment, order tileorder.Kind) map[uint64]int {
		c := cfg
		c.Assignment = assign
		c.TileOrder = order
		r := newRasterizer(c, geo.Primitives, b, cache.NewHierarchy(c.Hierarchy))
		lines := make(map[uint64]int)
		tw := &tileWork{}
		for i, pt := range tileorder.Sequence(order, c.TilesX(), c.TilesY()) {
			r.rasterizeTile(tw, i, pt)
			for _, l := range tw.cov.lines {
				lines[l]++
			}
		}
		return lines
	}
	a := collect(sched.ConstAssign, tileorder.ZOrder)
	bm := collect(sched.Flp2, tileorder.HilbertRect)
	if len(a) != len(bm) {
		t.Fatalf("distinct line sets: %d vs %d", len(a), len(bm))
	}
	for l, n := range a {
		if bm[l] != n {
			t.Fatalf("line %#x count %d vs %d", l, n, bm[l])
		}
	}
}

func TestRasterizeTileHonorsGroupingAndPerm(t *testing.T) {
	cfg := testConfig()
	cfg.Grouping = sched.CGSquare
	hier := cache.NewHierarchy(cfg.Hierarchy)
	scene := testScene(t, "SWa", cfg)
	geo := RunGeometry(scene, hier, cfg)
	b := BinPrimitives(geo.Primitives, hier, cfg)
	r := newRasterizer(cfg, geo.Primitives, b, hier)
	tw := &tileWork{}
	r.rasterizeTile(tw, 0, tileorder.Point{X: 0, Y: 0})
	if len(tw.cov.quads) == 0 {
		t.Fatal("no quads in tile 0")
	}
	// perSC lists must partition the quads, and each quad must land on
	// the SC its subtile's permutation entry names.
	perm := sched.NewAssigner(cfg.Assignment, cfg.Grouping).Next(tileorder.Point{X: 0, Y: 0})
	qside := cfg.QuadsPerTileSide()
	seen := make([]int, len(tw.cov.quads))
	total := 0
	for sc, list := range tw.perSC {
		total += len(list)
		for _, qi := range list {
			seen[qi]++
			cq := &tw.cov.quads[qi]
			want := perm[cfg.Grouping.SubtileOf(int(cq.qx), int(cq.qy), qside, qside)] % cfg.NumSC
			if want != sc {
				t.Fatalf("quad %d in list %d but its subtile maps to SC %d", qi, sc, want)
			}
		}
	}
	if total != len(tw.cov.quads) {
		t.Fatalf("perSC lists cover %d of %d quads", total, len(tw.cov.quads))
	}
	for qi, n := range seen {
		if n != 1 {
			t.Fatalf("quad %d appears in %d perSC lists", qi, n)
		}
	}
}

func TestSpansMatchSamples(t *testing.T) {
	cfg := testConfig()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	scene := testScene(t, "CRa", cfg)
	geo := RunGeometry(scene, hier, cfg)
	b := BinPrimitives(geo.Primitives, hier, cfg)
	r := newRasterizer(cfg, geo.Primitives, b, hier)
	tw := &tileWork{}
	r.rasterizeTile(tw, 0, tileorder.Point{X: 1, Y: 1})
	for _, q := range tw.cov.quads {
		if q.samples <= 0 {
			t.Fatal("quad with no samples")
		}
		for s := int32(0); s < int32(q.samples); s++ {
			sp := tw.cov.spans[q.firstSpan+s]
			if sp.n <= 0 {
				t.Fatal("empty sample footprint")
			}
			if int(sp.off+sp.n) > len(tw.cov.lines) {
				t.Fatal("span exceeds line arena")
			}
		}
	}
}

func TestRasterCostsPositive(t *testing.T) {
	cfg := testConfig()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	scene := testScene(t, "SWa", cfg)
	geo := RunGeometry(scene, hier, cfg)
	b := BinPrimitives(geo.Primitives, hier, cfg)
	r := newRasterizer(cfg, geo.Primitives, b, hier)
	tw := &tileWork{}
	r.rasterizeTile(tw, 0, tileorder.Point{X: 0, Y: 0})
	if tw.rasterCycles <= 0 {
		t.Error("no raster cost recorded")
	}
}

func TestEdgeTilesRespectScreenBounds(t *testing.T) {
	// With a screen that is not tile-aligned (like the paper's 1960x768),
	// edge tiles must not shade quads beyond the screen. A scene holding
	// only a huge full-screen quad pins the expected count exactly: one
	// shaded quad per on-screen 2x2 pixel block, nothing more.
	cfg := testConfig()
	cfg.Width = 250 // 7.8125 tiles wide -> 8 tiles, last tile partial
	cfg.Height = 120
	w, h := float64(cfg.Width), float64(cfg.Height)
	tex := texture.New(0, 0x1000_0000, 64, 64)
	scene := &trace.Scene{
		Width: cfg.Width, Height: cfg.Height,
		Textures: []*texture.Texture{tex},
		Draws: []trace.DrawCommand{{
			Transform:  geom.Orthographic(0, w, h, 0, 0, 1),
			VertexBase: 0x4000_0000,
			Vertices: []trace.Vertex{
				{Pos: geom.Vec3{X: -50, Y: -50, Z: 0.5}, UV: geom.Vec2{}},
				{Pos: geom.Vec3{X: w + 50, Y: -50, Z: 0.5}, UV: geom.Vec2{X: 2}},
				{Pos: geom.Vec3{X: -50, Y: h + 50, Z: 0.5}, UV: geom.Vec2{Y: 2}},
				{Pos: geom.Vec3{X: w + 50, Y: h + 50, Z: 0.5}, UV: geom.Vec2{X: 2, Y: 2}},
			},
			Indices: []int{0, 1, 2, 2, 1, 3},
			Tex:     tex,
			Shader:  trace.ShaderProfile{Instructions: 8, Samples: 1},
			Filter:  texture.Bilinear,
		}},
	}
	m, err := Run(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	screenQuads := uint64(((cfg.Width + 1) / 2) * ((cfg.Height + 1) / 2))
	// The diagonal of the two triangles double-covers its quads once
	// (edge-inclusive tests), so allow the diagonal's worth of slack.
	diagSlack := uint64(cfg.Width/2 + cfg.Height/2 + 2)
	got := m.Events.QuadsShaded + m.Events.QuadsCulled
	if got < screenQuads {
		t.Errorf("covered %d quads, below full-screen %d", got, screenQuads)
	}
	if got > screenQuads+diagSlack {
		t.Errorf("covered %d quads, above screen+diagonal %d: off-screen leak",
			got, screenQuads+diagSlack)
	}
}

func TestSamplerFilterSelection(t *testing.T) {
	// The rasterizer keeps one sampler per filter; confirm footprints of
	// different filters differ for the same primitive state.
	tex := texture.New(0, 0, 256, 256)
	bi := texture.Sampler{Filter: texture.Bilinear}
	tri := texture.Sampler{Filter: texture.Trilinear}
	nb := len(bi.Footprint(tex, 0.3, 0.3, 1.5))
	nt := len(tri.Footprint(tex, 0.3, 0.3, 1.5))
	if nb >= nt {
		t.Errorf("bilinear lines %d >= trilinear %d", nb, nt)
	}
}
