package pipeline

import (
	"dtexl/internal/cache"
)

// warpState is one resident quad-warp in a shader core. A quad executes
// stages 0..samples: each stage runs a slice of the ALU instructions and,
// except for the last, issues one texture sample whose latency parks the
// warp until the data returns. The warp's ready time lives in the SC's
// parallel `ready` array, not here: the scheduler scans ready times every
// step, and a dense int64 array keeps that scan inside a couple of cache
// lines instead of striding across one warpState per line.
type warpState struct {
	tile  *tileWork
	stage int8 // next stage to execute (0..samples)
	// samples, seg0, segN and firstSpan are copied out of the quad at
	// admission: exec runs once per stage, and reading them here avoids
	// chasing tile -> cover -> quad on every issue.
	samples    int8
	seg0, segN int16
	firstSpan  int32
	// prefetched marks that the quad's texture lines were fetched at
	// admission (decoupled prefetch); fills holds each sample's fill
	// completion time.
	prefetched bool
	fills      [4]int64
}

// scState is an in-order, single-issue, fine-grained multithreaded shader
// core: one ALU instruction per cycle from whichever resident warp is
// ready; switch-on-sample. Texture latency is hidden exactly to the
// extent other warps have instructions to issue — which is how periods of
// low occupancy (tile drain under coupled barriers) expose memory
// latency (§V-C2).
type scState struct {
	id    int
	clock int64
	busy  int64 // cycles spent issuing instructions
	// Stall attribution (see breakdown.go): every clock advance that is
	// not busy execution lands in exactly one of these counters, so
	// busy + texWait + barrierWait + queueEmpty == clock at all times.
	texWait     int64 // clock jumps to the earliest texture-fill return
	barrierWait int64 // coupled barrier alignment up to the release point
	queueEmpty  int64 // waits for raster supply / bank-flush gates
	warps       []warpState
	// ready[i] is the cycle warps[i] may issue again (parallel to warps;
	// see warpState).
	ready []int64
	// fillFree is when each L1 fill port becomes free again. The small
	// per-SC texture L1 has a limited number of outstanding misses
	// (MSHRs); misses beyond that queue, so a stream with a high miss
	// rate saturates its fill ports and exposes memory latency even with
	// spare warps — the effect that turns the caching win into a
	// performance win (§V-C2).
	fillFree []int64

	// input stream: quads this SC still has to admit, as (tile, index
	// into tile.perSC[id]) supplied by the executor.
	inTile *tileWork
	inPos  int
	inGate int64 // earliest cycle input quads may be admitted

	quadsRetired uint64
	lastRetire   int64
	// rrNext is the round-robin warp scheduler's rotation pointer.
	rrNext int
}

// setInput points the SC at its quad queue for one tile. gate is the
// earliest admission time (the barrier/availability time).
func (sc *scState) setInput(tw *tileWork, gate int64) {
	sc.inTile = tw
	sc.inPos = 0
	sc.inGate = gate
}

// hasInput reports whether un-admitted quads remain in the current input.
func (sc *scState) hasInput() bool {
	return sc.inTile != nil && sc.inPos < len(sc.inTile.perSC[sc.id])
}

// pending reports whether the SC still has any work: resident warps or
// un-admitted input.
func (sc *scState) pending() bool {
	return len(sc.warps) > 0 || sc.hasInput()
}

// segLen returns the ALU instruction count of stage `stage` for a quad
// with the given totals: instructions are split evenly across the
// samples+1 compute segments, remainder to the first.
func segLen(instr int16, samples, stage int8) int64 {
	segs := int64(samples) + 1
	base := int64(instr) / segs
	if stage == 0 {
		return base + int64(instr)%segs
	}
	return base
}

// step advances the SC by one scheduling decision and returns false if it
// is blocked (nothing resident, nothing admissible — the executor must
// resolve a gate first). The SC issues work for, or jumps its clock to,
// the earliest actionable event.
func (sc *scState) step(e *engineState) bool {
	// Admit as many quads as fit: warp slots are filled greedily so
	// latency hiding is maximal.
	if sc.inTile != nil && sc.inGate <= sc.clock {
		list := sc.inTile.perSC[sc.id]
		cov := sc.inTile.cov
		for len(sc.warps) < e.cfg.WarpSlots && sc.inPos < len(list) {
			cq := &cov.quads[list[sc.inPos]]
			sc.inPos++
			w := warpState{
				tile:      sc.inTile,
				samples:   cq.samples,
				seg0:      cq.seg0,
				segN:      cq.segN,
				firstSpan: cq.firstSpan,
			}
			if e.cfg.TexturePrefetch {
				sc.prefetch(e, &w)
			}
			sc.warps = append(sc.warps, w)
			sc.ready = append(sc.ready, sc.clock)
		}
	}

	// Pick a resident warp to issue from, per the warp-scheduling policy.
	// The policy only arbitrates among warps that are ready *now*; the
	// earliest-ready warp always determines how far the clock may jump.
	ready := sc.ready
	best := -1
	minReady := int64(1)<<62 - 1
	for i, r := range ready {
		if r < minReady {
			minReady = r
			best = i
		}
	}

	if best >= 0 && minReady <= sc.clock {
		pick, rrNext := sc.schedule(e, best, minReady)
		sc.rrNext = rrNext
		sc.exec(e, pick)
		if e.sampler != nil && sc.clock >= e.sampler.next[sc.id] {
			e.sampler.cross(sc)
		}
		return true
	}

	// Nothing issuable now: advance the clock to the next event (warp
	// ready or input gate opening onto a free slot).
	next := int64(-1)
	if best >= 0 {
		next = minReady
	}
	fromGate := false
	if sc.hasInput() && len(sc.warps) < e.cfg.WarpSlots && sc.inGate > sc.clock {
		if next < 0 || sc.inGate < next {
			next = sc.inGate
			fromGate = true
		}
	}
	if next <= sc.clock {
		return false // blocked: executor must supply input or a new gate
	}
	// Attribute the jump: a wait for the input gate is raster supply (or
	// a bank-flush gate) running behind — QueueEmpty; a wait for a
	// resident warp's ready time is texture latency the other warps
	// could not cover — TexWait. On a tie the SC is waiting for both;
	// texture is the binding constraint (the gate alone opens no warp
	// until its quads are admitted on the next step), so TexWait wins.
	if fromGate {
		sc.queueEmpty += next - sc.clock
	} else {
		sc.texWait += next - sc.clock
	}
	sc.clock = next
	if e.sampler != nil && sc.clock >= e.sampler.next[sc.id] {
		e.sampler.cross(sc)
	}
	return true
}

// schedule picks the warp to issue per the warp-scheduling policy among
// the warps whose ready time is at or before the clock; best/minReady
// come from the caller's scan of sc.ready. It mutates nothing — the
// round-robin rotation pointer to store on issue is returned instead —
// so the parallel planner (plan) shares the exact pick logic with step.
// The two must never diverge: the worker loops assert after every step
// that a private-planned step performed no shared operation.
func (sc *scState) schedule(e *engineState, best int, minReady int64) (pick, rrNext int) {
	pick, rrNext = best, sc.rrNext
	ready := sc.ready
	switch e.cfg.WarpSched {
	case WarpSchedRoundRobin:
		// Wraparound arithmetic instead of a modulo per probe; the
		// single % only fires when the warp count shrank since the
		// rotation pointer was last stored.
		n := len(ready)
		i := sc.rrNext
		if i >= n {
			i %= n
		}
		for off := 0; off < n; off++ {
			if ready[i] <= sc.clock {
				pick = i
				rrNext = i + 1
				if rrNext == n {
					rrNext = 0
				}
				break
			}
			if i++; i == n {
				i = 0
			}
		}
	case WarpSchedYoungest:
		for i := len(ready) - 1; i >= 0; i-- {
			if ready[i] <= sc.clock {
				pick = i
				break
			}
		}
	}
	return pick, rrNext
}

// plan computes, without mutating anything, a conservative lower bound
// on the key of sc's next *shared* operation — its lookahead horizon —
// and whether the upcoming scheduling step is provably free of shared
// operations. The parallel workers publish the horizon before stepping
// (DESIGN.md §11): a jump step publishes its jump target (the SC cannot
// act at all before then), and a provably-private execute step
// publishes the post-step clock, so peers with smaller keys proceed
// instead of waiting on this SC's pessimistic current clock.
//
// Privacy proofs, case by case:
//   - admission possible: pessimistic. Prefetch fills are shared, and
//     even without prefetch the admitted warps change the pick below.
//   - prefetched warp, stage < samples: exec touches only the warp's
//     recorded fill times — private.
//   - demand warp whose whole span is resident in the SC's own L1:
//     exec performs pure L1 hits (no insertion, no shared fill) —
//     private. Contains does not touch LRU state, and only this SC
//     mutates its L1, so the probe cannot go stale before the step.
//   - retire step: shared only when a retire hook is installed (the
//     decoupled executor's window bookkeeping); the coupled and IMR
//     drains retire locally.
func (sc *scState) plan(e *engineState) (horizon int64, private bool) {
	if sc.inTile != nil && sc.inGate <= sc.clock &&
		sc.hasInput() && len(sc.warps) < e.cfg.WarpSlots {
		return sc.clock, false
	}
	best := -1
	minReady := int64(1)<<62 - 1
	for i, r := range sc.ready {
		if r < minReady {
			minReady = r
			best = i
		}
	}
	if best >= 0 && minReady <= sc.clock {
		pick, _ := sc.schedule(e, best, minReady)
		w := &sc.warps[pick]
		seg := int64(w.segN)
		if w.stage == 0 {
			seg = int64(w.seg0)
		}
		if w.stage < w.samples {
			if w.prefetched {
				return sc.clock + seg, true
			}
			cov := w.tile.cov
			sp := cov.spans[w.firstSpan+int32(w.stage)]
			for _, line := range cov.lines[sp.off : sp.off+sp.n] {
				if !e.hier.L1Tex[sc.id].Contains(line) {
					return sc.clock, false
				}
			}
			return sc.clock + seg, true
		}
		if e.retire != nil {
			return sc.clock, false
		}
		return sc.clock + seg, true
	}
	next := int64(-1)
	if best >= 0 {
		next = minReady
	}
	if sc.hasInput() && len(sc.warps) < e.cfg.WarpSlots && sc.inGate > sc.clock {
		if next < 0 || sc.inGate < next {
			next = sc.inGate
		}
	}
	if next <= sc.clock {
		return sc.clock, false // blocked: the watchdog deals with it
	}
	return next, true
}

// exec runs one stage of warp w: its compute segment and, if stages
// remain, its next texture sample.
func (sc *scState) exec(e *engineState, wi int) {
	w := &sc.warps[wi]
	seg := int64(w.segN)
	if w.stage == 0 {
		seg = int64(w.seg0)
	}
	sc.clock += seg
	sc.busy += seg
	e.events.ALUInstructions += uint64(seg)

	if w.stage < w.samples {
		var ready int64
		if w.prefetched {
			// Fills were issued at admission; the sample only waits for
			// its data if the fill has not landed yet.
			ready = sc.clock + e.cfg.SampleOverhead + e.cfg.Hierarchy.L1Tex.HitLatency
			if f := w.fills[w.stage]; f > ready {
				ready = f
			}
		} else {
			cov := w.tile.cov
			sp := cov.spans[w.firstSpan+int32(w.stage)]
			ready = sc.accessSample(e, cov, sp, true)
		}
		w.stage++
		sc.ready[wi] = ready
		return
	}

	// Final segment done: retire the quad into blending.
	if e.retire != nil {
		e.retire(sc, w.tile, sc.clock)
	}
	sc.quadsRetired++
	sc.lastRetire = sc.clock
	last := len(sc.warps) - 1
	sc.warps[wi] = sc.warps[last]
	sc.warps = sc.warps[:last]
	sc.ready[wi] = sc.ready[last]
	sc.ready = sc.ready[:last]
}

// accessSample walks one sample's cache lines at the current clock and
// returns when its data is complete: hits pipeline under the base
// latency; misses queue on the SC's L1 fill ports. demand distinguishes
// exec's demand fetch — the final action of its scheduling step — from
// admission-time prefetching, which may be followed by more shared
// fills in the same step; the parallel gate uses the distinction to
// release the sequencer grant early (see drainGate.sharedFills).
func (sc *scState) accessSample(e *engineState, cov *tileCover, sp span, demand bool) int64 {
	if e.gate != nil {
		// Parallel drain: batch the span through the sharded gate.
		return sc.accessSampleGated(e, cov, sp, demand)
	}
	if sc.fillFree == nil {
		sc.fillFree = make([]int64, e.cfg.L1FillPorts)
	}
	var l2Before cache.Stats
	if e.sampler != nil {
		l2Before = e.hier.L2.Stats()
	}
	hitLat := e.cfg.Hierarchy.L1Tex.HitLatency
	ready := sc.clock + e.cfg.SampleOverhead + hitLat
	for _, line := range cov.lines[sp.off : sp.off+sp.n] {
		lat, miss := e.hier.TextureAccessInfo(sc.id, line)
		if !miss {
			// Pipelined hit: local hits are covered by the base latency;
			// NUCA remote hits add interconnect latency without occupying
			// a fill port.
			if t := sc.clock + e.cfg.SampleOverhead + lat; t > ready {
				ready = t
			}
			continue
		}
		// Miss: grab the earliest-free fill port.
		port := 0
		for p := 1; p < len(sc.fillFree); p++ {
			if sc.fillFree[p] < sc.fillFree[port] {
				port = p
			}
		}
		start := sc.clock
		if sc.fillFree[port] > start {
			start = sc.fillFree[port]
		}
		sc.fillFree[port] = start + lat
		if sc.fillFree[port] > ready {
			ready = sc.fillFree[port]
		}
	}
	if e.sampler != nil {
		e.sampler.bucketFill(sc.id, sc.clock, statsDelta(e.hier.L2.Stats(), l2Before))
	}
	e.events.L1TexAccesses += uint64(sp.n)
	e.events.TextureSamples++
	return ready
}

// prefetch issues all of warp w's texture fills at admission time, so
// the fills overlap the warp's compute segments (decoupled
// access/execute prefetching). Traffic and fill-port occupancy are
// identical to demand fetching; only the start times move earlier.
func (sc *scState) prefetch(e *engineState, w *warpState) {
	cov := w.tile.cov
	for s := int8(0); s < w.samples; s++ {
		sp := cov.spans[w.firstSpan+int32(s)]
		w.fills[s] = sc.accessSample(e, cov, sp, false)
	}
	w.prefetched = true
}

// engineState is the shared execution context the SCs run against. The
// serial executors use one; the parallel drains give each worker its own
// (events become a per-worker shadow merged in fixed SC order, and gate
// routes shared-memory traffic through the sequencer — see parallel.go).
type engineState struct {
	cfg    Config
	hier   *cache.Hierarchy
	events EventCounts
	// retire is invoked at each quad completion (blending bookkeeping).
	retire func(sc *scState, tw *tileWork, at int64)
	// sampler, when non-nil, captures the Config.SampleEvery interval
	// time series; nil (the default) keeps the hot path at one pointer
	// comparison per step.
	sampler *intervalSampler
	// gate, when non-nil, marks a parallel drain: texture accesses go
	// through it instead of hitting the hierarchy directly.
	gate *drainGate
}
