package pipeline

import (
	"context"
	"testing"

	"dtexl/internal/cache"
	"dtexl/internal/tileorder"
	"dtexl/internal/trace"
)

// The microbenchmarks cover the simulator's hot path layer by layer —
// tile rasterization, the shader-core step loop, and a whole frame in
// both barrier disciplines — on the same mid-size scene. CI compares
// them against BENCH_baseline.txt (see .github/workflows/ci.yml).

func benchScene(b *testing.B, alias string, cfg Config) *trace.Scene {
	b.Helper()
	p, err := trace.ProfileByAlias(alias)
	if err != nil {
		b.Fatal(err)
	}
	return trace.GenerateScene(p, cfg.Width, cfg.Height, 1)
}

func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 490, 192 // paper resolution / 4
	return cfg
}

// BenchmarkRasterizeTile measures the live (unprepared) raster front
// end: tile fetch, coverage + Early-Z, footprints and the quad→SC
// partition, on recycled tileWork storage.
func BenchmarkRasterizeTile(b *testing.B) {
	cfg := benchConfig()
	scene := benchScene(b, "SWa", cfg)
	hier := cache.NewHierarchy(cfg.Hierarchy)
	geo := RunGeometry(scene, hier, cfg)
	bin := BinPrimitives(geo.Primitives, hier, cfg)
	r := newRasterizer(cfg, geo.Primitives, bin, hier)
	tiles := tileorder.Sequence(cfg.TileOrder, cfg.TilesX(), cfg.TilesY())
	tw := &tileWork{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.rasterizeTile(tw, i%len(tiles), tiles[i%len(tiles)])
	}
}

// BenchmarkSCStep measures the shader-core scheduling loop draining a
// synthetic miss-stream tile: admission, warp scan, exec and the fill
// port model, without executor overhead.
func BenchmarkSCStep(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumSC = 1
	cfg.Hierarchy.NumSC = 1
	cfg.WarpSlots = 8
	es := &engineState{cfg: cfg, hier: cache.NewHierarchy(cfg.Hierarchy)}
	tw := buildTileWork(256, 12, true)
	steps := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := &scState{id: 0}
		sc.setInput(tw, 0)
		for sc.pending() {
			if !sc.step(es) {
				b.Fatal("SC blocked")
			}
			steps++
		}
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
}

// BenchmarkRunFrame measures one whole-frame simulation from scene to
// metrics, in the coupled baseline and the decoupled DTexL discipline.
func BenchmarkRunFrame(b *testing.B) {
	for _, bc := range []struct {
		name      string
		decoupled bool
	}{{"coupled", false}, {"decoupled", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Decoupled = bc.decoupled
			scene := benchScene(b, "SWa", cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(scene, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunParallel measures the prepared-frame raster phase serial
// vs parallel (WithParallel at GOMAXPROCS) in both barrier disciplines.
// The serial variants double as the regression reference: parallel is
// opt-in, so the serial medians must not move. CI runs this benchmark
// at GOMAXPROCS=1 and GOMAXPROCS=8 — the single-core run bounds the
// sequencer's overhead, the 8-core run carries the speedup claim.
func BenchmarkRunParallel(b *testing.B) {
	for _, ec := range []struct {
		name      string
		decoupled bool
	}{{"coupled", false}, {"decoupled", true}} {
		for _, pc := range []struct {
			name string
			ctx  context.Context
		}{
			{"serial", context.Background()},
			{"parallel", WithParallel(context.Background(), 0)},
		} {
			b.Run(ec.name+"/"+pc.name, func(b *testing.B) {
				cfg := benchConfig()
				cfg.Decoupled = ec.decoupled
				scene := benchScene(b, "SWa", cfg)
				prep, err := PrepareFrameContext(pc.ctx, scene, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := RunPreparedContext(pc.ctx, prep, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRunInstrumented bounds the cycle-attribution subsystem's
// cost on a whole coupled frame. The "off" variant is the default
// configuration (stall counters only — they ride the existing clock
// updates); "on" adds interval sampling and the tile timeline. CI
// compares the two medians directly (see the bench job), gating the
// enabled-path overhead at 5%.
func BenchmarkRunInstrumented(b *testing.B) {
	for _, bc := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchConfig()
			if bc.on {
				cfg.SampleEvery = 1024
				cfg.CollectTimeline = true
			}
			scene := benchScene(b, "SWa", cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(scene, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
