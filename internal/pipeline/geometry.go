package pipeline

import (
	"math"

	"dtexl/internal/cache"
	"dtexl/internal/geom"
	"dtexl/internal/texture"
	"dtexl/internal/trace"
)

// Primitive is a screen-space triangle ready for rasterization, with all
// the state the Raster Pipeline needs: edge setup, texture binding,
// filtering, shader profile and the (per-primitive constant) LOD.
type Primitive struct {
	Setup  geom.EdgeSetup
	Bounds geom.AABB
	Tex    *texture.Texture
	Filter texture.Filter
	Shader trace.ShaderProfile
	LOD    float64
	// UVJitter is the per-quad pseudo-random sampling offset amplitude in
	// texels (dependent texture reads), inherited from the draw.
	UVJitter float64
	// Alpha is the primitive's opacity; below 1 it blends and does not
	// write depth.
	Alpha float64
	// ID indexes the primitive in frame order; its attribute record lives
	// at primAttrBase + ID*primAttrBytes in the Parameter Buffer.
	ID int
}

// primAttrBytes is the Parameter Buffer attribute record per primitive:
// three vertices of position+attributes, padded (two cache lines).
const primAttrBytes = 128

// geometryCostPerVertex is the Vertex Stage's compute cost (transform +
// assembly) per vertex in cycles, on top of vertex-fetch latency.
const geometryCostPerVertex = 4

// GeometryResult is the Geometry Pipeline's output: the frame's
// primitives in program order plus the phase's timing.
type GeometryResult struct {
	Primitives []Primitive
	Cycles     int64
	// VertexFetches counts vertex-cache reads issued.
	VertexFetches uint64
}

// RunGeometry executes the Geometry Pipeline (Vertex Stage + Primitive
// Assembly) on a scene: fetch vertices through the vertex cache,
// transform to clip space, perspective-divide, viewport-map, and assemble
// screen-space triangles. Degenerate and fully off-screen triangles are
// dropped, as the Tiling Engine would never bin them.
func RunGeometry(scene *trace.Scene, hier *cache.Hierarchy, cfg Config) GeometryResult {
	var res GeometryResult
	vp := geom.Viewport{Width: float64(cfg.Width), Height: float64(cfg.Height)}
	screen := geom.AABB{MinX: 0, MinY: 0, MaxX: float64(cfg.Width), MaxY: float64(cfg.Height)}
	var cycles int64

	for _, draw := range scene.Draws {
		// Transform each referenced vertex once (a post-transform cache of
		// unbounded size, the common modeling simplification).
		transformed := make([]geom.Vec3, len(draw.Vertices))
		fetched := make([]bool, len(draw.Vertices))
		for _, ix := range draw.Indices {
			if fetched[ix] {
				continue
			}
			fetched[ix] = true
			addr := draw.VertexBase + uint64(ix*trace.VertexBytes)
			cycles += hier.VertexAccess(addr)
			res.VertexFetches++
			cycles += geometryCostPerVertex
			clip := draw.Transform.MulVec4(geom.Point4(draw.Vertices[ix].Pos))
			transformed[ix] = vp.ToScreen(clip.PerspectiveDivide())
		}
		for i := 0; i+2 < len(draw.Indices); i += 3 {
			i0, i1, i2 := draw.Indices[i], draw.Indices[i+1], draw.Indices[i+2]
			tri := geom.Triangle{
				P:  [3]geom.Vec3{transformed[i0], transformed[i1], transformed[i2]},
				UV: [3]geom.Vec2{draw.Vertices[i0].UV, draw.Vertices[i1].UV, draw.Vertices[i2].UV},
			}
			setup, ok := tri.Setup()
			if !ok {
				continue // degenerate
			}
			bounds := tri.Bounds()
			if bounds.Intersect(screen).Empty() {
				continue // fully off-screen
			}
			dudx, dvdx, dudy, dvdy := setup.UVFootprint()
			lod := texture.LOD(dudx, dvdx, dudy, dvdy, draw.Tex.Width, draw.Tex.Height)
			res.Primitives = append(res.Primitives, Primitive{
				Setup:    setup,
				Bounds:   bounds,
				Tex:      draw.Tex,
				Filter:   draw.Filter,
				Shader:   draw.Shader,
				LOD:      clampLOD(lod, draw.Tex.Levels),
				UVJitter: draw.UVJitterTexels,
				Alpha:    alphaOf(draw.Alpha),
				ID:       len(res.Primitives),
			})
		}
	}
	res.Cycles = cycles
	return res
}

func clampLOD(lod float64, levels int) float64 {
	return math.Min(lod, float64(levels-1))
}

// alphaOf normalizes a draw's opacity: the zero value means opaque.
func alphaOf(a float64) float64 {
	if a <= 0 || a > 1 {
		return 1
	}
	return a
}
