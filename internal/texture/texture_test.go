package texture

import (
	"testing"
	"testing/quick"
)

func TestNewMipChain(t *testing.T) {
	tex := New(0, 0, 256, 256)
	if tex.Levels != 9 { // 256..1
		t.Errorf("Levels = %d, want 9", tex.Levels)
	}
	w, h := tex.LevelDims(0)
	if w != 256 || h != 256 {
		t.Errorf("level 0 dims = %dx%d", w, h)
	}
	w, h = tex.LevelDims(8)
	if w != 1 || h != 1 {
		t.Errorf("last level dims = %dx%d", w, h)
	}
	// Clamping.
	w, h = tex.LevelDims(99)
	if w != 1 || h != 1 {
		t.Errorf("clamped level dims = %dx%d", w, h)
	}
	w, h = tex.LevelDims(-1)
	if w != 256 {
		t.Errorf("negative level dims = %dx%d", w, h)
	}
}

func TestNonSquareMipChain(t *testing.T) {
	tex := New(0, 0, 64, 16)
	// 64x16 -> 32x8 -> 16x4 -> 8x2 -> 4x1 -> 2x1 -> 1x1 = 7 levels.
	if tex.Levels != 7 {
		t.Errorf("Levels = %d, want 7", tex.Levels)
	}
	w, h := tex.LevelDims(4)
	if w != 4 || h != 1 {
		t.Errorf("level 4 dims = %dx%d, want 4x1", w, h)
	}
}

func TestNewPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 100x100 texture")
		}
	}()
	New(0, 0, 100, 100)
}

func TestSizeBytesCoversAllLevels(t *testing.T) {
	tex := New(0, 0, 64, 64)
	// Level 0 alone is 64*64*4 = 16384 bytes; the chain must be larger.
	if tex.SizeBytes() <= 16384 {
		t.Errorf("SizeBytes = %d", tex.SizeBytes())
	}
	// All texel addresses of all levels must fall inside [Base, Base+Size).
	for l := 0; l < tex.Levels; l++ {
		w, h := tex.LevelDims(l)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				a := tex.TexelAddr(l, x, y)
				if a < tex.Base || a >= tex.Base+tex.SizeBytes() {
					t.Fatalf("texel (%d,%d) level %d address %#x outside texture", x, y, l, a)
				}
			}
		}
	}
}

func TestBlockLinearLayout(t *testing.T) {
	tex := New(0, 0, 64, 64)
	// All 16 texels of one 4x4 block share a cache line.
	base := tex.LineAddr(0, 0, 0)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if tex.LineAddr(0, x, y) != base {
				t.Fatalf("texel (%d,%d) not in block line", x, y)
			}
		}
	}
	// The next block over is a different line.
	if tex.LineAddr(0, 4, 0) == base {
		t.Error("adjacent block shares the line")
	}
	// Texels within a line are distinct addresses.
	if tex.TexelAddr(0, 0, 0) == tex.TexelAddr(0, 1, 0) {
		t.Error("distinct texels share an address")
	}
}

func TestDistinctTexelsDistinctAddrs(t *testing.T) {
	tex := New(0, 0, 32, 32)
	seen := make(map[uint64]bool)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			a := tex.TexelAddr(0, x, y)
			if seen[a] {
				t.Fatalf("duplicate address %#x at (%d,%d)", a, x, y)
			}
			seen[a] = true
		}
	}
}

func TestMipLevelsDoNotOverlap(t *testing.T) {
	tex := New(0, 0, 64, 64)
	lv0 := tex.TexelAddr(0, 63, 63)
	lv1 := tex.TexelAddr(1, 0, 0)
	if lv1 <= lv0 && tex.LineAddr(1, 0, 0) == tex.LineAddr(0, 63, 63) {
		t.Error("mip levels share lines")
	}
	// Distinct levels must produce disjoint line sets.
	lines0 := make(map[uint64]bool)
	for y := 0; y < 64; y += 4 {
		for x := 0; x < 64; x += 4 {
			lines0[tex.LineAddr(0, x, y)] = true
		}
	}
	for y := 0; y < 32; y += 4 {
		for x := 0; x < 32; x += 4 {
			if lines0[tex.LineAddr(1, x, y)] {
				t.Fatal("level 1 line aliases a level 0 line")
			}
		}
	}
}

func TestWrapAddressing(t *testing.T) {
	tex := New(0, 0, 16, 16)
	if tex.TexelAddr(0, 16, 0) != tex.TexelAddr(0, 0, 0) {
		t.Error("x wrap broken")
	}
	if tex.TexelAddr(0, -1, 0) != tex.TexelAddr(0, 15, 0) {
		t.Error("negative x wrap broken")
	}
	if tex.TexelAddr(0, 0, 20) != tex.TexelAddr(0, 0, 4) {
		t.Error("y wrap broken")
	}
}

func TestWrapProperty(t *testing.T) {
	tex := New(0, 0, 32, 32)
	f := func(x, y int16) bool {
		a := tex.TexelAddr(0, int(x), int(y))
		b := tex.TexelAddr(0, int(x)+32, int(y)-32)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseAddressOffsetsEverything(t *testing.T) {
	t1 := New(0, 0, 16, 16)
	t2 := New(1, 1<<20, 16, 16)
	d := t2.TexelAddr(0, 3, 5) - t1.TexelAddr(0, 3, 5)
	if d != 1<<20 {
		t.Errorf("base offset delta = %d", d)
	}
}
