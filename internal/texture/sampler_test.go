package texture

import (
	"testing"
)

func TestLOD(t *testing.T) {
	// One texel per pixel -> LOD 0.
	if got := LOD(1.0/256, 0, 0, 1.0/256, 256, 256); got != 0 {
		t.Errorf("1:1 LOD = %v", got)
	}
	// Two texels per pixel -> LOD 1.
	if got := LOD(2.0/256, 0, 0, 2.0/256, 256, 256); got < 0.99 || got > 1.01 {
		t.Errorf("2:1 LOD = %v", got)
	}
	// Magnification clamps at 0.
	if got := LOD(0.25/256, 0, 0, 0.25/256, 256, 256); got != 0 {
		t.Errorf("magnified LOD = %v", got)
	}
	// Max-axis rule: anisotropic footprints take the larger axis.
	iso := LOD(1.0/256, 0, 0, 4.0/256, 256, 256)
	if iso < 1.99 || iso > 2.01 {
		t.Errorf("aniso LOD = %v, want 2", iso)
	}
}

func TestBilinearFootprintSize(t *testing.T) {
	tex := New(0, 0, 256, 256)
	s := &Sampler{Filter: Bilinear}
	// Sample in the middle of a block: all 4 texels share one line.
	lines := s.Footprint(tex, (2.0+0.5)/256, (2.0+0.5)/256, 0)
	if len(lines) != 1 {
		t.Errorf("block-interior bilinear footprint = %d lines, want 1", len(lines))
	}
	// Sample exactly on a block corner: touches 4 blocks.
	lines = s.Footprint(tex, 4.0/256, 4.0/256, 0)
	if len(lines) != 4 {
		t.Errorf("block-corner bilinear footprint = %d lines, want 4", len(lines))
	}
}

func TestTrilinearTouchesTwoLevels(t *testing.T) {
	tex := New(0, 0, 256, 256)
	bi := &Sampler{Filter: Bilinear}
	tri := &Sampler{Filter: Trilinear}
	u, v := 0.3, 0.7
	nBi := len(bi.Footprint(tex, u, v, 1.5))
	nTri := len(tri.Footprint(tex, u, v, 1.5))
	if nTri <= nBi {
		t.Errorf("trilinear lines (%d) not more than bilinear (%d)", nTri, nBi)
	}
	// Integral LOD with zero fraction: trilinear reads one level only.
	nTri0 := len(tri.Footprint(tex, u, v, 2.0))
	nBi0 := len(bi.Footprint(tex, u, v, 2.0))
	if nTri0 != nBi0 {
		t.Errorf("integral-LOD trilinear = %d, bilinear = %d", nTri0, nBi0)
	}
}

func TestAnisoTouchesAtLeastTrilinear(t *testing.T) {
	tex := New(0, 0, 256, 256)
	tri := &Sampler{Filter: Trilinear}
	an := &Sampler{Filter: Aniso2x}
	u, v := 0.41, 0.13
	nT := len(tri.Footprint(tex, u, v, 2.0))
	nA := len(an.Footprint(tex, u, v, 2.0))
	if nA < nT {
		t.Errorf("aniso lines (%d) fewer than trilinear (%d)", nA, nT)
	}
}

func TestFootprintDedupes(t *testing.T) {
	tex := New(0, 0, 64, 64)
	s := &Sampler{Filter: Trilinear}
	lines := s.Footprint(tex, 0.5, 0.5, 0.5)
	seen := make(map[uint64]bool)
	for _, l := range lines {
		if seen[l] {
			t.Fatalf("duplicate line %#x in footprint", l)
		}
		seen[l] = true
	}
}

func TestAdjacentPixelsShareLines(t *testing.T) {
	// The core locality property: at ~1 texel/pixel, samples one pixel
	// apart mostly fall in the same 4x4 block -> same line.
	tex := New(0, 0, 256, 256)
	s := &Sampler{Filter: Bilinear}
	shared := 0
	total := 0
	for px := 0; px < 64; px++ {
		u0 := (float64(px) + 0.5) / 256
		u1 := (float64(px) + 1.5) / 256
		a := append([]uint64(nil), s.Footprint(tex, u0, 0.5, 0)...)
		b := s.Footprint(tex, u1, 0.5, 0)
		total++
		for _, la := range a {
			for _, lb := range b {
				if la == lb {
					shared++
					la = 0
					break
				}
			}
			if la == 0 {
				break
			}
		}
	}
	if shared*4 < total*3 { // at least 75% of adjacent pixel pairs share a line
		t.Errorf("adjacent pixels share lines in only %d/%d cases", shared, total)
	}
}

func TestDistantPixelsDoNotShareLines(t *testing.T) {
	tex := New(0, 0, 256, 256)
	s := &Sampler{Filter: Bilinear}
	a := append([]uint64(nil), s.Footprint(tex, 0.1, 0.1, 0)...)
	b := s.Footprint(tex, 0.9, 0.9, 0)
	for _, la := range a {
		for _, lb := range b {
			if la == lb {
				t.Fatalf("distant samples share line %#x", la)
			}
		}
	}
}

func TestFilterString(t *testing.T) {
	if Bilinear.String() != "bilinear" || Trilinear.String() != "trilinear" || Aniso2x.String() != "aniso2x" {
		t.Error("filter names wrong")
	}
	if Filter(9).String() != "texture.Filter(9)" {
		t.Errorf("unknown filter name = %q", Filter(9).String())
	}
}

func TestFootprintPanicsOnUnknownFilter(t *testing.T) {
	tex := New(0, 0, 16, 16)
	s := &Sampler{Filter: Filter(42)}
	defer func() {
		if recover() == nil {
			t.Error("no panic on unknown filter")
		}
	}()
	s.Footprint(tex, 0.5, 0.5, 0)
}
