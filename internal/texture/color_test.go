package texture

import (
	"testing"
)

func TestTexelColorPureAndWrapping(t *testing.T) {
	tex := New(3, 0, 64, 64)
	a := tex.TexelColor(0, 5, 9)
	b := tex.TexelColor(0, 5, 9)
	if a != b {
		t.Error("TexelColor not deterministic")
	}
	if tex.TexelColor(0, 5+64, 9-64) != a {
		t.Error("TexelColor does not wrap like TexelAddr")
	}
	// Different textures give different colors (almost surely).
	other := New(4, 1<<24, 64, 64)
	if other.TexelColor(0, 5, 9) == a {
		t.Error("distinct textures share texel colors")
	}
}

func TestSampleColorDeterministic(t *testing.T) {
	tex := New(0, 0, 128, 128)
	for _, f := range []Filter{Bilinear, Trilinear, Aniso2x} {
		a := SampleColor(tex, 0.37, 0.81, 1.2, f)
		b := SampleColor(tex, 0.37, 0.81, 1.2, f)
		if a != b {
			t.Errorf("%v: SampleColor not deterministic", f)
		}
	}
}

func TestSampleColorSmoothness(t *testing.T) {
	// Bilinear filtering: moving by a fraction of a texel must change the
	// color by less than a texel-step jump would.
	tex := New(0, 0, 64, 64)
	texel := 1.0 / 64
	c0 := SampleColor(tex, 0.5, 0.5, 0, Bilinear)
	cTiny := SampleColor(tex, 0.5+texel/8, 0.5, 0, Bilinear)
	diff := func(a, b uint8) int {
		d := int(a) - int(b)
		if d < 0 {
			d = -d
		}
		return d
	}
	if diff(c0.R(), cTiny.R()) > 64 {
		t.Errorf("1/8-texel step changed R by %d", diff(c0.R(), cTiny.R()))
	}
}

func TestSampleColorUnknownFilterFallsBack(t *testing.T) {
	tex := New(0, 0, 32, 32)
	got := SampleColor(tex, 0.5, 0.5, 0, Filter(77))
	want := SampleColor(tex, 0.5, 0.5, 0, Bilinear)
	if got != want {
		t.Error("unknown filter does not fall back to bilinear")
	}
}

func TestSampleColorOpaqueAlpha(t *testing.T) {
	tex := New(0, 0, 32, 32)
	for _, f := range []Filter{Bilinear, Trilinear, Aniso2x} {
		if a := SampleColor(tex, 0.2, 0.9, 0.5, f).A(); a != 0xff {
			t.Errorf("%v: alpha = %d", f, a)
		}
	}
}
