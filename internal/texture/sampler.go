package texture

import (
	"fmt"
	"math"
)

// Filter selects the texture filtering mode. The paper notes (§II-B,
// citing Heckbert's survey) that adjacent quads re-access neighbouring
// texels more aggressively under trilinear and anisotropic filtering than
// under bilinear — richer footprints mean more sharing, hence more
// replication when neighbours are split across SCs.
type Filter int

const (
	// Bilinear samples the 2x2 texel neighbourhood at one mip level.
	Bilinear Filter = iota
	// Trilinear samples 2x2 neighbourhoods at the two mip levels
	// bracketing the LOD.
	Trilinear
	// Aniso2x takes two trilinear probes spread along the anisotropy
	// axis.
	Aniso2x
)

var filterNames = map[Filter]string{Bilinear: "bilinear", Trilinear: "trilinear", Aniso2x: "aniso2x"}

// String returns the lowercase filter name.
func (f Filter) String() string {
	if s, ok := filterNames[f]; ok {
		return s
	}
	return fmt.Sprintf("texture.Filter(%d)", int(f))
}

// LOD computes the mip level-of-detail from screen-space UV derivatives
// (in UV units per pixel) for a texture of the given dimensions, using
// the standard max-axis formula.
func LOD(dudx, dvdx, dudy, dvdy float64, texW, texH int) float64 {
	ddx := math.Hypot(dudx*float64(texW), dvdx*float64(texH))
	ddy := math.Hypot(dudy*float64(texW), dvdy*float64(texH))
	d := math.Max(ddx, ddy)
	if d <= 1 {
		return 0
	}
	return math.Log2(d)
}

// Sampler generates the set of cache lines a texture sample touches. It
// reuses an internal buffer across calls; the returned slice is only
// valid until the next call.
type Sampler struct {
	Filter Filter
	lines  []uint64
}

// Footprint appends to its internal buffer the distinct cache-line
// addresses read when sampling tex at (u, v) (normalized coordinates)
// with the given LOD, and returns them. The slice is reused by the next
// call.
func (s *Sampler) Footprint(tex *Texture, u, v, lod float64) []uint64 {
	s.lines = s.lines[:0]
	switch s.Filter {
	case Bilinear:
		level := int(math.Round(lod))
		s.bilinear(tex, u, v, level)
	case Trilinear:
		base := int(math.Floor(lod))
		s.bilinear(tex, u, v, base)
		if frac := lod - math.Floor(lod); frac > 0 && base+1 < tex.Levels {
			s.bilinear(tex, u, v, base+1)
		}
	case Aniso2x:
		base := int(math.Floor(lod)) - 1 // sharper level, more texels
		if base < 0 {
			base = 0
		}
		// Two probes offset along u (the synthetic scenes' dominant
		// anisotropy axis).
		w, _ := tex.LevelDims(base)
		du := 1.0 / float64(w)
		s.bilinear(tex, u-du, v, base)
		s.bilinear(tex, u+du, v, base)
	default:
		panic(fmt.Sprintf("texture: unknown filter %d", int(s.Filter)))
	}
	return s.lines
}

// bilinear adds the lines of the 2x2 texel neighbourhood around (u, v) at
// the given level.
func (s *Sampler) bilinear(tex *Texture, u, v float64, level int) {
	w, h := tex.LevelDims(level)
	// Texel-space position of the sample; -0.5 centers texels per GL.
	tu := u*float64(w) - 0.5
	tv := v*float64(h) - 0.5
	x0 := int(math.Floor(tu))
	y0 := int(math.Floor(tv))
	for dy := 0; dy <= 1; dy++ {
		for dx := 0; dx <= 1; dx++ {
			s.addLine(tex.LineAddr(level, x0+dx, y0+dy))
		}
	}
}

// addLine appends addr if not already present (footprints are at most a
// handful of lines, so linear dedup is the fast path).
func (s *Sampler) addLine(addr uint64) {
	for _, l := range s.lines {
		if l == addr {
			return
		}
	}
	s.lines = append(s.lines, addr)
}
