// Package texture models the texture memory objects the shader cores
// sample: mip-mapped 2D textures laid out block-linearly in memory so
// that one 64-byte cache line holds a 4x4 block of RGBA8 texels. This is
// the standard mobile-GPU tiling that gives 2D spatial locality to a 1D
// address space — and the substrate on which the paper's entire
// texture-locality argument rests: screen-adjacent quads sample adjacent
// texels, which share cache lines.
package texture

import (
	"fmt"

	"dtexl/internal/tileorder"
)

const (
	// BytesPerTexel is the texel size (RGBA8).
	BytesPerTexel = 4
	// BlockDim is the side of the square texel block stored in one cache
	// line: 4x4 texels * 4 B = 64 B.
	BlockDim = 4
	// LineBytes is the cache line size the layout targets.
	LineBytes = BlockDim * BlockDim * BytesPerTexel
)

// Texture is a mip-mapped 2D texture. Width and Height must be powers of
// two (as required by the block-linear Morton layout).
type Texture struct {
	ID       int
	Base     uint64 // base address in the global GPU address space
	Width    int    // mip 0 texels
	Height   int
	Levels   int      // number of mip levels
	mipOff   []uint64 // byte offset of each level from Base
	mipW     []int
	mipH     []int
	sizeByte uint64
}

// New creates a texture with a full mip chain down to 1x1. It panics on
// non-power-of-two dimensions (a configuration error in the synthetic
// scenes).
func New(id int, base uint64, width, height int) *Texture {
	if width <= 0 || height <= 0 || width&(width-1) != 0 || height&(height-1) != 0 {
		panic(fmt.Sprintf("texture: dimensions %dx%d must be positive powers of two", width, height))
	}
	t := &Texture{ID: id, Base: base, Width: width, Height: height}
	w, h := width, height
	off := uint64(0)
	for {
		t.mipOff = append(t.mipOff, off)
		t.mipW = append(t.mipW, w)
		t.mipH = append(t.mipH, h)
		off += uint64(levelBytes(w, h))
		if w == 1 && h == 1 {
			break
		}
		if w > 1 {
			w >>= 1
		}
		if h > 1 {
			h >>= 1
		}
	}
	t.Levels = len(t.mipOff)
	t.sizeByte = off
	return t
}

// levelBytes returns the storage for one mip level, rounded up to whole
// blocks (lines).
func levelBytes(w, h int) int {
	bw := (w + BlockDim - 1) / BlockDim
	bh := (h + BlockDim - 1) / BlockDim
	// Morton layout needs the square power-of-two bound over the blocks.
	side := 1
	for side < bw || side < bh {
		side <<= 1
	}
	return side * side * LineBytes
}

// SizeBytes returns the total memory footprint of the texture including
// all mip levels.
func (t *Texture) SizeBytes() uint64 { return t.sizeByte }

// LevelDims returns the texel dimensions of mip level l (clamped).
func (t *Texture) LevelDims(l int) (w, h int) {
	l = clampLevel(l, t.Levels)
	return t.mipW[l], t.mipH[l]
}

// TexelAddr returns the address of texel (x, y) at mip level l. Out-of-
// range coordinates wrap (GL_REPEAT) and the level is clamped, matching
// the sampler's addressing rules.
func (t *Texture) TexelAddr(l, x, y int) uint64 {
	l = clampLevel(l, t.Levels)
	w, h := t.mipW[l], t.mipH[l]
	x = wrap(x, w)
	y = wrap(y, h)
	block := tileorder.MortonEncode(x/BlockDim, y/BlockDim)
	inBlock := uint64((y%BlockDim)*BlockDim + x%BlockDim)
	return t.Base + t.mipOff[l] + block*LineBytes + inBlock*BytesPerTexel
}

// LineAddr returns the cache-line address (line-aligned) of texel (x, y)
// at level l.
func (t *Texture) LineAddr(l, x, y int) uint64 {
	return t.TexelAddr(l, x, y) &^ uint64(LineBytes-1)
}

func clampLevel(l, levels int) int {
	if l < 0 {
		return 0
	}
	if l >= levels {
		return levels - 1
	}
	return l
}

func wrap(x, n int) int {
	x %= n
	if x < 0 {
		x += n
	}
	return x
}
