package texture

import (
	"math"

	"dtexl/internal/render"
)

// Texel colors are procedural: a pure function of (texture ID, level,
// texel), so no backing storage is needed and any access order yields the
// same image. The pattern mixes per-block noise with a smooth gradient so
// rendered frames are visually inspectable.

// TexelColor returns the color of texel (x, y) at mip level l
// (coordinates wrap, the level clamps — same addressing as TexelAddr).
func (t *Texture) TexelColor(l, x, y int) render.Color {
	l = clampLevel(l, t.Levels)
	w, h := t.mipW[l], t.mipH[l]
	x = wrap(x, w)
	y = wrap(y, h)
	hsh := colorHash(uint64(t.ID)<<40 ^ uint64(l)<<32 ^ uint64(x)<<16 ^ uint64(y))
	// Smooth gradient component, stable under wrapping.
	gx := uint8(255 * x / max(w, 1))
	gy := uint8(255 * y / max(h, 1))
	r := uint8(hsh)>>1 + gx>>1
	g := uint8(hsh>>8)>>1 + gy>>1
	b := uint8(hsh>>16)>>1 + 64
	return render.RGBA(r, g, b, 0xff)
}

func colorHash(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SampleColor returns the filtered color at normalized (u, v) with the
// given LOD under the given filter — the color twin of
// Sampler.Footprint. It is a pure function, so the rendered image cannot
// depend on scheduling.
func SampleColor(t *Texture, u, v, lod float64, f Filter) render.Color {
	switch f {
	case Bilinear:
		return bilinearColor(t, u, v, int(math.Round(lod)))
	case Trilinear:
		base := int(math.Floor(lod))
		c := bilinearColor(t, u, v, base)
		if frac := lod - math.Floor(lod); frac > 0 && base+1 < t.Levels {
			c = c.Lerp(bilinearColor(t, u, v, base+1), frac)
		}
		return c
	case Aniso2x:
		base := int(math.Floor(lod)) - 1
		if base < 0 {
			base = 0
		}
		w, _ := t.LevelDims(base)
		du := 1.0 / float64(w)
		a := bilinearColor(t, u-du, v, base)
		b := bilinearColor(t, u+du, v, base)
		return a.Lerp(b, 0.5)
	default:
		return bilinearColor(t, u, v, int(math.Round(lod)))
	}
}

// bilinearColor filters the 2x2 texel neighbourhood around (u, v).
func bilinearColor(t *Texture, u, v float64, level int) render.Color {
	level = clampLevel(level, t.Levels)
	w, h := t.mipW[level], t.mipH[level]
	tu := u*float64(w) - 0.5
	tv := v*float64(h) - 0.5
	x0 := int(math.Floor(tu))
	y0 := int(math.Floor(tv))
	fx := tu - float64(x0)
	fy := tv - float64(y0)
	top := t.TexelColor(level, x0, y0).Lerp(t.TexelColor(level, x0+1, y0), fx)
	bot := t.TexelColor(level, x0, y0+1).Lerp(t.TexelColor(level, x0+1, y0+1), fx)
	return top.Lerp(bot, fy)
}
