package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dtexl/internal/netauth"
	"dtexl/internal/sim"
)

// newTestHA builds one HA node over the shared store directory with
// fast failover timings.
func newTestHA(t *testing.T, dir, node string, standby bool, opt sim.Options) *HA {
	t.Helper()
	st, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Logf = t.Logf
	h, err := NewHA(HAConfig{
		Coordinator: CoordinatorConfig{
			Opt:               opt,
			Store:             st,
			HeartbeatInterval: 25 * time.Millisecond,
			HeartbeatTimeout:  250 * time.Millisecond,
			StealAfter:        time.Hour,
			Logf:              t.Logf,
		},
		NodeID:           node,
		Standby:          standby,
		LeaseInterval:    25 * time.Millisecond,
		LeaseTimeout:     150 * time.Millisecond,
		SnapshotInterval: 25 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFailoverMidSweepByteIdentical is the tentpole acceptance: the
// primary coordinator is killed (no final snapshot, no handoff) while
// three workers are mid-sweep; the standby fences the epoch, replays
// snapshot + store, adopts the workers, and the finished tables are
// byte-identical to a serial run with zero quarantined cells.
func TestFailoverMidSweepByteIdentical(t *testing.T) {
	exps := []string{"fig11", "fig16"}
	opt := fleetOptions()
	want := serialRender(t, opt, exps)
	dir := t.TempDir()

	primary := newTestHA(t, dir, "alpha", false, opt)
	standby := newTestHA(t, dir, "beta", true, opt)
	srvA := httptest.NewServer(primary.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(standby.Handler())
	defer srvB.Close()

	ctx, cancel := context.WithTimeout(t.Context(), 3*time.Minute)
	defer cancel()
	go primary.Run(ctx)
	go standby.Run(ctx)

	workers := make([]*Worker, 3)
	var wg sync.WaitGroup
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{
			Coordinators: []string{srvA.URL, srvB.URL},
			Name:         string(rune('a' + i)),
			Logf:         t.Logf,
		})
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.cfg.Name, err)
			}
		}(workers[i])
	}

	// Let the sweep get going, then kill the primary mid-flight: no
	// final snapshot, no lease handoff, connections dropped.
	waitFor(t, time.Minute, "primary to make progress", func() bool {
		c := primary.Coordinator()
		if c == nil {
			return false
		}
		st := c.Stats()
		return st.Done >= 3 && st.Done < st.Cells
	})
	primary.Halt()
	srvA.CloseClientConnections()
	srvA.Close()
	t.Log("primary killed")

	select {
	case <-standby.Done():
	case <-ctx.Done():
		t.Fatalf("standby never finished the sweep")
	}
	wg.Wait()

	c := standby.Coordinator()
	if c == nil {
		t.Fatal("standby has no active coordinator after Done")
	}
	st := c.Stats()
	if st.Epoch < 2 {
		t.Errorf("standby epoch = %d, want >= 2 (takeover must bump the epoch)", st.Epoch)
	}
	if st.NodeID != "beta" {
		t.Errorf("NodeID = %q, want beta", st.NodeID)
	}
	if st.Quarantined != 0 || st.Done != st.Cells || !st.SuiteDone {
		t.Fatalf("stats after failover: %+v", st)
	}
	// Duplicate-computation bound: beyond the in-flight overlap at the
	// kill (at most one cell per worker), every cell is computed once.
	// Aliased cells prime from the store, so the total can run under the
	// cell count — never meaningfully over it.
	var total int64
	for _, w := range workers {
		total += w.Status().Completed
	}
	if max := int64(st.Cells) + int64(len(workers)); total > max {
		t.Errorf("workers completed %d cells, want <= %d (duplicates beyond in-flight overlap)", total, max)
	}

	var got bytes.Buffer
	if err := c.RenderExperiments(exps, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Errorf("post-failover render differs from serial run:\n--- want\n%s--- got\n%s", want, got.String())
	}
}

// completeCell computes one cell with a local runner and reports it to
// the coordinator under the given identity.
func completeCell(t *testing.T, c *Coordinator, r *sim.Runner, workerID, leaseID string, spec sim.CellSpec) {
	t.Helper()
	res, err := r.RunCell(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, sum, err := sim.MarshalCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.complete(CompleteRequest{WorkerID: workerID, LeaseID: leaseID, Cell: spec, Result: b, Sum: sum}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRoundTrip drives a coordinator through completions,
// failures and a quarantine, snapshots it, and checks a second
// coordinator restored from the snapshot (plus the same store) sees
// identical authoritative state.
func TestSnapshotRoundTrip(t *testing.T) {
	opt := fleetOptions()
	dir := t.TempDir()
	st1, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewCoordinator(CoordinatorConfig{
		Opt: opt, Store: st1, Epoch: 1, NodeID: "alpha",
		HeartbeatTimeout: time.Hour, RetryBudget: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRunner(opt)
	reg := a.register(RegisterRequest{Name: "w"})

	// leaseFresh grants a lease whose cell is NOT already in the store.
	// Suite cells can alias (distinct policies resolving to the same
	// simulation key), so completing one cell may prime others; primed
	// grants are completed for free and skipped, keeping the doomed and
	// in-flight cells genuinely absent from the store.
	leaseFresh := func() LeaseResponse {
		t.Helper()
		for {
			g, ok, _ := a.lease(reg.WorkerID, 1)
			if !ok || g.LeaseID == "" {
				t.Fatalf("no leasable cell: %+v", g)
			}
			if !st1.HasCell(opt, g.Cell) {
				return g
			}
			completeCell(t, a, r, reg.WorkerID, g.LeaseID, g.Cell)
		}
	}

	// Complete three cells, fail one to quarantine, leave one in flight.
	for i := 0; i < 3; i++ {
		g := leaseFresh()
		completeCell(t, a, r, reg.WorkerID, g.LeaseID, g.Cell)
	}
	// Quarantine one cell: RetryBudget 2, so two grant+fail cycles spend
	// it. With a single worker the earliest pending cell is re-granted
	// after each failure, so both grants land on the same cell.
	g := leaseFresh()
	doomed := g.Cell
	for i := 0; i < 2; i++ {
		if g.Cell.ID() != doomed.ID() {
			t.Fatalf("doomed re-grant moved to %s, want %s", g.Cell.ID(), doomed.ID())
		}
		a.fail(FailRequest{WorkerID: reg.WorkerID, LeaseID: g.LeaseID, Cell: g.Cell, Error: "injected"})
		if i == 0 {
			var ok bool
			g, ok, _ = a.lease(reg.WorkerID, 1)
			if !ok || g.LeaseID == "" {
				t.Fatalf("doomed re-grant: %+v", g)
			}
		}
	}
	inflight := leaseFresh()

	snap := a.Snapshot()
	if err := AppendSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("no snapshot loaded")
	}
	wantJSON, _ := json.Marshal(snap)
	gotJSON, _ := json.Marshal(loaded)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("snapshot did not round-trip the log:\n want %s\n got  %s", wantJSON, gotJSON)
	}

	st2, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCoordinator(CoordinatorConfig{
		Opt: opt, Store: st2, Epoch: 2, NodeID: "beta", Resume: loaded,
		HeartbeatTimeout: time.Hour, RetryBudget: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	// The store outranks the snapshot, and aliased cells prime on the
	// fresh scan, so Done can only grow across a restore.
	if sb.Done < sa.Done {
		t.Fatalf("restore lost completions: a=%+v b=%+v", sa, sb)
	}
	if sb.Quarantined != 1 || sb.QuarantinedCells[0].Cell != doomed.ID() || sb.QuarantinedCells[0].Attempts != 2 {
		t.Fatalf("quarantine not restored: %+v", sb.QuarantinedCells)
	}
	if sb.Leased != 1 {
		t.Fatalf("in-flight lease not restored: %+v", sb)
	}
	if !strings.Contains(strings.Join(sb.QuarantinedCells[0].Errors, " "), "injected") {
		t.Errorf("quarantine errors lost: %+v", sb.QuarantinedCells[0])
	}
	if sb.Reassigned != sa.Reassigned || sb.LateResults != sa.LateResults {
		t.Errorf("counters differ after restore: a=%+v b=%+v", sa, sb)
	}
	// The in-flight lease came back under its ghost worker.
	found := false
	for _, w := range sb.Workers {
		if w.ID == reg.WorkerID && w.ActiveLeases == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("ghost worker %s with the in-flight lease not restored: %+v", reg.WorkerID, sb.Workers)
	}
	// Completing the in-flight lease on the restored coordinator is a
	// normal (not late) completion.
	completeCell(t, b, r, reg.WorkerID, inflight.LeaseID, inflight.Cell)
	if got := b.Stats().LateResults; got != sa.LateResults {
		t.Errorf("restored in-flight completion counted late: %d", got)
	}
}

// TestSnapshotTornTailFallback: a crash mid-append leaves a torn final
// record; the checksum rejects it, LoadSnapshot falls back to the
// previous record, and a coordinator restored from it still finishes
// the sweep byte-identical to serial.
func TestSnapshotTornTailFallback(t *testing.T) {
	opt := fleetOptions()
	want := serialRender(t, opt, []string{"fig11"})
	dir := t.TempDir()
	st1, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewCoordinator(CoordinatorConfig{
		Opt: opt, Store: st1, Epoch: 1, HeartbeatTimeout: time.Hour, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRunner(opt)
	reg := a.register(RegisterRequest{Name: "w"})
	for i := 0; i < 4; i++ {
		g, ok, _ := a.lease(reg.WorkerID, 1)
		if !ok || g.LeaseID == "" {
			t.Fatalf("lease %d: %+v", i, g)
		}
		completeCell(t, a, r, reg.WorkerID, g.LeaseID, g.Cell)
	}
	good := a.Snapshot()
	if err := AppendSnapshot(dir, good); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a half-written record with no trailing newline.
	f, err := os.OpenFile(filepath.Join(dir, SnapshotLogName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeefdeadbeef	{"epoch":9,"seq":999,"cells":[{"id":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || loaded.Epoch != 1 || loaded.Seq != good.Seq {
		t.Fatalf("torn tail not rejected: loaded %+v, want the previous record (seq %d)", loaded, good.Seq)
	}

	// Restore and finish the sweep over HTTP with a real worker.
	st2, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCoordinator(CoordinatorConfig{
		Opt: opt, Store: st2, Epoch: 2, Resume: loaded,
		HeartbeatInterval: 25 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Done; got < 4 {
		t.Fatalf("restored Done = %d, want >= 4 (store replay)", got)
	}
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "finisher", Logf: t.Logf})
	runWorkers(t, b, w)
	var got bytes.Buffer
	if err := b.RenderExperiments([]string{"fig11"}, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Errorf("post-torn-tail render differs from serial run:\n--- want\n%s--- got\n%s", want, got.String())
	}
}

// TestLeaseTokenContinuityAcrossEpochs is the satellite regression: a
// worker whose heartbeat lapses during failover resumes its lease token
// on the new coordinator with no spurious retry-budget charge and no
// reassignment race, and its completion is a normal (not late) one.
func TestLeaseTokenContinuityAcrossEpochs(t *testing.T) {
	opt := fleetOptions()
	dir := t.TempDir()
	st1, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewCoordinator(CoordinatorConfig{
		Opt: opt, Store: st1, Epoch: 1, HeartbeatTimeout: time.Hour, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	regA := a.register(RegisterRequest{Name: "w"})
	grant, ok, _ := a.lease(regA.WorkerID, 1)
	if !ok || grant.LeaseID == "" {
		t.Fatalf("no lease: %+v", grant)
	}

	snap := a.Snapshot()
	st2, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCoordinator(CoordinatorConfig{
		Opt: opt, Store: st2, Epoch: 2, Resume: snap,
		HeartbeatTimeout: time.Hour, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Old-epoch traffic: grants and heartbeats are fenced, with no side
	// effects on the lease.
	if _, _, stale := b.lease(regA.WorkerID, 1); !stale {
		t.Error("stale-epoch lease request was not fenced")
	}
	if _, stale := b.heartbeat(regA.WorkerID, 1); !stale {
		t.Error("stale-epoch heartbeat was not fenced")
	}

	regB := b.register(RegisterRequest{
		Name: "w",
		Held: []HeldLease{{LeaseID: grant.LeaseID, Cell: grant.Cell, Epoch: 1}},
	})
	if regB.Epoch != 2 {
		t.Errorf("re-register epoch = %d, want 2", regB.Epoch)
	}
	if len(regB.Resumed) != 1 || regB.Resumed[0] != grant.LeaseID {
		t.Fatalf("lease token not resumed: %+v", regB.Resumed)
	}
	st := b.Stats()
	if st.Reassigned != 0 {
		t.Errorf("adoption caused a reassignment: %+v", st.Reassignments)
	}
	// Retry budget untouched: the snapshot's single grant is still the
	// only attempt.
	for _, sc := range b.Snapshot().Cells {
		if sc.ID == grant.Cell.ID() && sc.Attempts != 1 {
			t.Errorf("cell %s attempts = %d after adoption, want 1", sc.ID, sc.Attempts)
		}
	}
	// The adopted lease completes as a normal result under the new
	// identity.
	completeCell(t, b, sim.NewRunner(opt), regB.WorkerID, grant.LeaseID, grant.Cell)
	st = b.Stats()
	if st.LateResults != 0 {
		t.Errorf("adopted completion counted late: %+v", st)
	}
	if st.Done != b.Stats().StorePrimed+1 {
		t.Errorf("cell not done after adopted completion: %+v", st)
	}
}

// TestStaleEpochHTTPStatus pins the wire contract: stale-epoch
// heartbeats and lease requests get 409, unknown workers 410, and
// completions are accepted regardless of epoch.
func TestStaleEpochHTTPStatus(t *testing.T) {
	opt := fleetOptions()
	c, srv := newTestCoordinator(t, CoordinatorConfig{
		Opt: opt, Epoch: 2, HeartbeatTimeout: time.Hour,
	})
	reg := c.register(RegisterRequest{Name: "w"})
	grant, ok, _ := c.lease(reg.WorkerID, 2)
	if !ok || grant.LeaseID == "" {
		t.Fatalf("no lease: %+v", grant)
	}

	post := func(path string, body any) int {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post(PathHeartbeat, HeartbeatRequest{WorkerID: reg.WorkerID, Epoch: 1}); got != http.StatusConflict {
		t.Errorf("stale heartbeat status = %d, want 409", got)
	}
	if got := post(PathLease, LeaseRequest{WorkerID: reg.WorkerID, Epoch: 1}); got != http.StatusConflict {
		t.Errorf("stale lease status = %d, want 409", got)
	}
	if got := post(PathHeartbeat, HeartbeatRequest{WorkerID: "w999", Epoch: 2}); got != http.StatusGone {
		t.Errorf("unknown worker heartbeat status = %d, want 410", got)
	}
	// Completion carries no epoch at all: the result is checksummed and
	// idempotent, so even a fenced worker's report is taken.
	res, err := sim.NewRunner(opt).RunCell(context.Background(), grant.Cell)
	if err != nil {
		t.Fatal(err)
	}
	b, sum, err := sim.MarshalCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if got := post(PathComplete, CompleteRequest{
		WorkerID: reg.WorkerID, LeaseID: grant.LeaseID, Cell: grant.Cell, Result: b, Sum: sum,
	}); got != http.StatusOK {
		t.Errorf("complete status = %d, want 200", got)
	}
}

// TestFleetAuthTokenEnforced wires netauth.Middleware around the fleet
// handler exactly as dtexlcoord does: writes need the token, reads and
// health stay open, and a tokened worker completes the sweep.
func TestFleetAuthTokenEnforced(t *testing.T) {
	opt := fleetOptions()
	st, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Opt: opt, Store: st, HeartbeatInterval: 25 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	const token = "fleet-secret"
	open := netauth.Or(netauth.OpenPaths("/healthz"), netauth.OpenReadOnly)
	srv := httptest.NewServer(netauth.Middleware(token, open, c.Handler()))
	defer srv.Close()

	// Unauthenticated write: rejected.
	resp, err := http.Post(srv.URL+PathRegister, "application/json", strings.NewReader(`{"name":"intruder"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated register status = %d, want 401", resp.StatusCode)
	}
	// Reads stay open.
	resp, err = http.Get(srv.URL + PathStats)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open stats status = %d, want 200", resp.StatusCode)
	}
	// A tokened worker runs the sweep to completion.
	w := NewWorker(WorkerConfig{
		Coordinator: srv.URL,
		Name:        "authed",
		Client:      &http.Client{Transport: &netauth.Transport{Token: token}, Timeout: 5 * time.Minute},
		Logf:        t.Logf,
	})
	runWorkers(t, c, w)
	if st := c.Stats(); !st.SuiteDone || st.Quarantined != 0 {
		t.Fatalf("stats after tokened sweep: %+v", st)
	}
}
