package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrHalted is returned by Run after Halt: the node stopped abruptly,
// with no final snapshot and no lease handoff.
var ErrHalted = errors.New("fleet: ha node halted")

// EpochLeaseName is the store-directory file through which coordinators
// arbitrate who is primary. Like the snapshot log it does not end in
// .json, so store GC and corruption tooling never touch it.
const EpochLeaseName = "coordinator.lease"

// Defaults for HAConfig.
const (
	DefaultLeaseInterval    = 500 * time.Millisecond
	DefaultSnapshotInterval = 1 * time.Second
)

// epochLease is the on-disk primary claim: who holds which epoch, and
// when they last proved liveness. Written atomically; read by standbys.
type epochLease struct {
	Epoch           uint64 `json:"epoch"`
	Node            string `json:"node"`
	RenewedUnixNano int64  `json:"renewed_unix_nano"`
}

func epochLeasePath(dir string) string { return filepath.Join(dir, EpochLeaseName) }

// readEpochLease returns the current lease record, or nil when the file
// is missing or unreadable (a torn write is impossible — writes are
// atomic — but a corrupt file is treated as absent, which only ever
// delays takeover by one claim round).
func readEpochLease(dir string) *epochLease {
	b, err := os.ReadFile(epochLeasePath(dir))
	if err != nil {
		return nil
	}
	var l epochLease
	if err := json.Unmarshal(b, &l); err != nil || l.Epoch == 0 {
		return nil
	}
	return &l
}

func writeEpochLease(dir string, l epochLease) error {
	b, err := json.Marshal(l)
	if err != nil {
		return err
	}
	return writeFileAtomic(epochLeasePath(dir), b)
}

// claimEpoch decides epoch ownership races: creating the claim file for
// epoch n is exclusive (O_EXCL), so exactly one contender wins each
// epoch number. Claim files are tiny and bounded by the number of
// failovers, so they are left in place as an audit trail.
func claimEpoch(dir string, epoch uint64, node string) bool {
	f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("coordinator.claim.%d", epoch)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	fmt.Fprintln(f, node)
	f.Sync()
	f.Close()
	return true
}

// HAConfig configures one coordinator node in a highly-available pair
// (or larger set). All nodes share the store directory; the epoch lease
// and snapshot log live there.
type HAConfig struct {
	// Coordinator is the base coordinator configuration. Epoch and Resume
	// are owned by the HA layer and overwritten on activation.
	Coordinator CoordinatorConfig
	// NodeID names this process in the epoch lease and stats.
	NodeID string
	// Standby: never create the initial epoch lease — only seize a stale
	// one. A primary (Standby=false) claims epoch 1 when no lease exists.
	Standby bool
	// LeaseInterval is the primary's renewal cadence and the standby's
	// poll cadence; default 500ms.
	LeaseInterval time.Duration
	// LeaseTimeout is the staleness bound past which a standby seizes the
	// epoch; default 4×LeaseInterval. Must comfortably exceed the renewal
	// cadence plus worst-case fsync stalls.
	LeaseTimeout time.Duration
	// SnapshotInterval is the primary's snapshot cadence; default 1s. A
	// final snapshot is also taken when the suite completes.
	SnapshotInterval time.Duration
	// Logf, when non-nil, receives one line per HA event.
	Logf func(format string, args ...any)

	now func() time.Time // test hook; time.Now when nil
}

func (c HAConfig) withDefaults() HAConfig {
	if c.LeaseInterval <= 0 {
		c.LeaseInterval = DefaultLeaseInterval
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 4 * c.LeaseInterval
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = DefaultSnapshotInterval
	}
	if c.NodeID == "" {
		c.NodeID = "coord"
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// HA wraps a coordinator slot behind the epoch-lease election: the node
// is either active (owns the current epoch, serves the fleet protocol)
// or standby (returns 503 and watches the lease). Run drives the state
// machine; Handler can be mounted immediately.
type HA struct {
	cfg HAConfig

	mu      sync.Mutex
	coord   *Coordinator
	handler http.Handler
	epoch   uint64

	done     chan struct{}
	doneOnce sync.Once
	halt     chan struct{}
	haltOnce sync.Once
}

// NewHA validates the configuration; Run does the work.
func NewHA(cfg HAConfig) (*HA, error) {
	cfg = cfg.withDefaults()
	if cfg.Coordinator.Store == nil {
		return nil, fmt.Errorf("fleet: HA needs a shared store")
	}
	return &HA{cfg: cfg, done: make(chan struct{}), halt: make(chan struct{})}, nil
}

// Halt stops the node as a crash would: lease renewals, snapshots and
// serving all cease immediately, with no final snapshot and no handoff.
// The in-process stand-in for SIGKILL in failover tests and chaos
// drills; Run returns ErrHalted.
func (h *HA) Halt() {
	h.haltOnce.Do(func() { close(h.halt) })
}

// Done is closed once this node, while active, sees every cell settle.
func (h *HA) Done() <-chan struct{} { return h.done }

// Coordinator returns the active coordinator, or nil while standby.
func (h *HA) Coordinator() *Coordinator {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.coord
}

// Epoch returns the epoch this node currently holds (0 while standby).
func (h *HA) Epoch() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// Handler serves the fleet protocol when active and 503 (with
// Retry-After) when standby, so workers rotate to the live coordinator.
// GET /healthz always answers — load balancer probes must not require
// the node to be primary.
func (h *HA) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		handler := h.handler
		h.mu.Unlock()
		if handler == nil {
			if r.Method == http.MethodGet && r.URL.Path == "/healthz" {
				w.WriteHeader(http.StatusOK)
				fmt.Fprintln(w, "ok (standby)")
				return
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "standby coordinator; not serving this epoch", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	})
}

func (h *HA) setActive(coord *Coordinator, epoch uint64) {
	h.mu.Lock()
	h.coord = coord
	h.epoch = epoch
	if coord != nil {
		h.handler = coord.Handler()
	} else {
		h.handler = nil
	}
	h.mu.Unlock()
}

// Run drives the node: watch the epoch lease, take over when it is
// absent (primary only) or stale, serve the epoch until fenced or ctx
// ends, then return to watching. Returns ctx.Err() on cancellation.
func (h *HA) Run(ctx context.Context) error {
	dir := h.cfg.Coordinator.Store.Dir()
	for {
		epoch, err := h.watch(ctx, dir)
		if err != nil {
			return err
		}
		if err := h.serveEpoch(ctx, dir, epoch); err != nil {
			return err
		}
		// Fenced: drop the coordinator and go back to watching.
		h.setActive(nil, 0)
		h.cfg.Logf("fleet: ha %s: fenced out of epoch %d; returning to standby", h.cfg.NodeID, epoch)
	}
}

// watch blocks until this node wins an epoch claim, returning the epoch
// it now owns.
func (h *HA) watch(ctx context.Context, dir string) (uint64, error) {
	for {
		l := readEpochLease(dir)
		switch {
		case l == nil:
			// No lease yet. A designated standby never bootstraps the
			// deployment; it waits for the primary's first claim.
			if !h.cfg.Standby && claimEpoch(dir, 1, h.cfg.NodeID) {
				return 1, nil
			}
		case h.cfg.now().Sub(time.Unix(0, l.RenewedUnixNano)) > h.cfg.LeaseTimeout:
			h.cfg.Logf("fleet: ha %s: epoch %d lease from %s is stale; attempting takeover of epoch %d",
				h.cfg.NodeID, l.Epoch, l.Node, l.Epoch+1)
			if claimEpoch(dir, l.Epoch+1, h.cfg.NodeID) {
				return l.Epoch + 1, nil
			}
			// Lost the claim race; the winner will renew shortly.
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-h.halt:
			return 0, ErrHalted
		case <-time.After(h.cfg.LeaseInterval):
		}
	}
}

// serveEpoch activates the coordinator for one epoch: replay the newest
// valid snapshot plus the store scan, then renew the lease and snapshot
// on a cadence until fenced (returns nil) or ctx ends (returns
// ctx.Err()).
func (h *HA) serveEpoch(ctx context.Context, dir string, epoch uint64) error {
	if err := writeEpochLease(dir, epochLease{Epoch: epoch, Node: h.cfg.NodeID, RenewedUnixNano: h.cfg.now().UnixNano()}); err != nil {
		return fmt.Errorf("fleet: ha %s: epoch lease write: %w", h.cfg.NodeID, err)
	}
	snap, err := LoadSnapshot(dir)
	if err != nil {
		h.cfg.Logf("fleet: ha %s: snapshot load: %v (continuing from store alone)", h.cfg.NodeID, err)
	}
	ccfg := h.cfg.Coordinator
	ccfg.Epoch = epoch
	ccfg.NodeID = h.cfg.NodeID
	ccfg.Resume = snap
	coord, err := NewCoordinator(ccfg)
	if err != nil {
		return fmt.Errorf("fleet: ha %s: activate epoch %d: %w", h.cfg.NodeID, epoch, err)
	}
	h.setActive(coord, epoch)
	h.cfg.Logf("fleet: ha %s: active for epoch %d (snapshot replayed: %v)", h.cfg.NodeID, epoch, snap != nil)

	renew := time.NewTicker(h.cfg.LeaseInterval)
	defer renew.Stop()
	snapT := time.NewTicker(h.cfg.SnapshotInterval)
	defer snapT.Stop()
	doneCh := coord.Done()
	for {
		select {
		case <-ctx.Done():
			h.snapshot(dir, coord)
			return ctx.Err()
		case <-h.halt:
			h.setActive(nil, 0) // crash: stop serving mid-flight, snapshot nothing
			return ErrHalted
		case <-renew.C:
			if l := readEpochLease(dir); l != nil && l.Epoch > epoch {
				return nil // fenced by a newer epoch; stop serving immediately
			}
			if err := writeEpochLease(dir, epochLease{Epoch: epoch, Node: h.cfg.NodeID, RenewedUnixNano: h.cfg.now().UnixNano()}); err != nil {
				h.cfg.Logf("fleet: ha %s: epoch lease renew: %v", h.cfg.NodeID, err)
			}
		case <-snapT.C:
			h.snapshot(dir, coord)
		case <-doneCh:
			h.snapshot(dir, coord)
			h.doneOnce.Do(func() { close(h.done) })
			doneCh = nil // keep serving late completions and stats
		}
	}
}

func (h *HA) snapshot(dir string, coord *Coordinator) {
	if err := AppendSnapshot(dir, coord.Snapshot()); err != nil {
		h.cfg.Logf("fleet: ha %s: snapshot append: %v", h.cfg.NodeID, err)
	}
}
