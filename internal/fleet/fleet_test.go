package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dtexl/internal/sim"
)

// fleetOptions is the miniature suite the tests shard: one benchmark at
// 1/8 scale, 22 cells.
func fleetOptions() sim.Options {
	opt := sim.ScaledOptions(8)
	opt.Benchmarks = []string{"TRu"}
	return opt
}

// serialRender is the correctness oracle: the experiment tables as a
// serial, store-free run renders them.
func serialRender(t *testing.T, opt sim.Options, exps []string) string {
	t.Helper()
	r := sim.NewRunner(opt)
	var buf bytes.Buffer
	for i, id := range exps {
		if i > 0 {
			fmt.Fprintln(&buf)
		}
		if err := r.RunExperiment(id, &buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// newTestCoordinator builds a coordinator with fast heartbeats over a
// fresh store, plus its HTTP server.
func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Opt.Width == 0 {
		cfg.Opt = fleetOptions()
	}
	if cfg.Store == nil {
		st, err := sim.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st.Logf = t.Logf
		cfg.Store = st
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// runWorkers runs the given workers until the coordinator settles every
// cell (or the test times out).
func runWorkers(t *testing.T, c *Coordinator, workers ...*Worker) {
	t.Helper()
	ctx, cancel := context.WithTimeout(t.Context(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.cfg.Name, err)
			}
		}(w)
	}
	select {
	case <-c.Done():
	case <-ctx.Done():
		t.Fatalf("fleet did not settle: %+v", c.Stats())
	}
	wg.Wait()
}

// TestFleetCompletesSuiteByteIdentical: two workers shard the suite and
// the coordinator's store-backed render matches a serial run byte for
// byte — the fleet's core acceptance.
func TestFleetCompletesSuiteByteIdentical(t *testing.T) {
	exps := []string{"fig11", "fig16", "fig17"}
	opt := fleetOptions()
	want := serialRender(t, opt, exps)

	c, srv := newTestCoordinator(t, CoordinatorConfig{
		Opt:               opt,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	w1 := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "a", Logf: t.Logf})
	w2 := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "b", Logf: t.Logf})
	runWorkers(t, c, w1, w2)

	st := c.Stats()
	if !st.SuiteDone || st.Done != st.Cells || st.Quarantined != 0 {
		t.Fatalf("stats after sweep: %+v", st)
	}
	c1, c2 := w1.Status().Completed, w2.Status().Completed
	if c1+c2 < int64(st.Cells) {
		t.Errorf("workers completed %d+%d cells, want >= %d", c1, c2, st.Cells)
	}
	var got bytes.Buffer
	if err := c.RenderExperiments(exps, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Errorf("fleet render differs from serial run:\n--- want\n%s--- got\n%s", want, got.String())
	}
}

// TestHeartbeatLapseReassignment: a worker that takes a lease and goes
// silent loses it; another worker completes the cell; output stays
// byte-identical to a serial run; the stats endpoint reports the
// reassigned lease.
func TestHeartbeatLapseReassignment(t *testing.T) {
	opt := fleetOptions()
	want := serialRender(t, opt, []string{"fig11"})

	c, srv := newTestCoordinator(t, CoordinatorConfig{
		Opt:               opt,
		HeartbeatInterval: 30 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		StealAfter:        time.Hour, // reassignment, not stealing, must recover the cell
	})

	// The doomed worker: registers, grabs one lease, never heartbeats,
	// never reports — a SIGKILL mid-cell as the coordinator sees it.
	dead := c.register(RegisterRequest{Name: "doomed"})
	grant, ok, _ := c.lease(dead.WorkerID, 0)
	if !ok || grant.LeaseID == "" {
		t.Fatalf("doomed worker got no lease: %+v", grant)
	}

	w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "survivor", Logf: t.Logf})
	runWorkers(t, c, w)

	st := c.Stats()
	if st.Quarantined != 0 || st.Done != st.Cells {
		t.Fatalf("stats after sweep: %+v", st)
	}
	if st.Reassigned < 1 {
		t.Fatalf("Reassigned = %d, want >= 1", st.Reassigned)
	}
	found := false
	for _, ra := range st.Reassignments {
		// Worker is "id (name)" when the name is known.
		if strings.HasPrefix(ra.Worker, dead.WorkerID) && ra.Cell == grant.Cell.ID() && ra.Reason == "heartbeat_lapse" {
			found = true
		}
	}
	if !found {
		t.Errorf("stats do not report the reassigned lease %s of %s: %+v", grant.LeaseID, dead.WorkerID, st.Reassignments)
	}
	var deadRow *WorkerStats
	for i := range st.Workers {
		if st.Workers[i].ID == dead.WorkerID {
			deadRow = &st.Workers[i]
		}
	}
	if deadRow == nil || deadRow.Live || deadRow.ActiveLeases != 0 {
		t.Errorf("doomed worker row = %+v, want dead with no leases", deadRow)
	}

	var got bytes.Buffer
	if err := c.RenderExperiments([]string{"fig11"}, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Errorf("post-reassignment render differs from serial run:\n--- want\n%s--- got\n%s", want, got.String())
	}
}

// TestWorkStealing: an idle worker steals the oldest over-age lease
// from a live-but-slow worker, and the slow worker's eventual result is
// accepted idempotently as a late duplicate.
func TestWorkStealing(t *testing.T) {
	opt := fleetOptions()
	c, srv := newTestCoordinator(t, CoordinatorConfig{
		Opt:               opt,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  time.Hour, // the slow worker stays live: only stealing may take the cell
		StealAfter:        50 * time.Millisecond,
	})

	// The slow worker: holds one lease forever while heartbeating.
	slow := c.register(RegisterRequest{Name: "slow"})
	grant, ok, _ := c.lease(slow.WorkerID, 0)
	if !ok || grant.LeaseID == "" {
		t.Fatalf("slow worker got no lease: %+v", grant)
	}
	stopBeat := make(chan struct{})
	defer close(stopBeat)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-tick.C:
				c.heartbeat(slow.WorkerID, 0)
			}
		}
	}()

	w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "thief", Logf: t.Logf})
	runWorkers(t, c, w)

	st := c.Stats()
	if st.Stolen < 1 {
		t.Fatalf("Stolen = %d, want >= 1 (stats: %+v)", st.Stolen, st)
	}
	if st.Done != st.Cells || st.Quarantined != 0 {
		t.Fatalf("stats after sweep: %+v", st)
	}

	// The slow worker finally finishes its stolen-from-under-it cell and
	// reports with a long-retired lease: accepted, counted late.
	r := sim.NewRunner(opt)
	res, err := r.RunCell(t.Context(), grant.Cell)
	if err != nil {
		t.Fatal(err)
	}
	b, sum, err := sim.MarshalCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.complete(CompleteRequest{
		WorkerID: slow.WorkerID, LeaseID: grant.LeaseID, Cell: grant.Cell, Result: b, Sum: sum,
	}); err != nil {
		t.Fatalf("late duplicate completion rejected: %v", err)
	}
	if st := c.Stats(); st.LateResults < 1 {
		t.Errorf("LateResults = %d, want >= 1", st.LateResults)
	}
}

// TestRetryBudgetQuarantine: a cell that fails on every attempt is
// quarantined after the retry budget instead of wedging the fleet; the
// rest of the suite completes.
func TestRetryBudgetQuarantine(t *testing.T) {
	opt := fleetOptions()
	c, srv := newTestCoordinator(t, CoordinatorConfig{
		Opt:               opt,
		HeartbeatInterval: 30 * time.Millisecond,
		RetryBudget:       2,
	})
	poison := &sim.ChaosConfig{Bench: "TRu", Policy: "baseline", Mode: sim.ChaosError}
	w := NewWorker(WorkerConfig{
		Coordinator: srv.URL,
		Name:        "chaotic",
		Logf:        t.Logf,
		NewRunner: func(opt sim.Options) *sim.Runner {
			r := sim.NewRunner(opt)
			r.Chaos = poison
			return r
		},
	})
	runWorkers(t, c, w)

	st := c.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (stats: %+v)", st.Quarantined, st)
	}
	if st.Done != st.Cells-1 {
		t.Errorf("Done = %d, want %d (everything but the poison cell)", st.Done, st.Cells-1)
	}
	qc := st.QuarantinedCells[0]
	if qc.Cell != "TRu/baseline" || qc.Attempts != 2 || len(qc.Errors) == 0 {
		t.Errorf("quarantined cell = %+v, want TRu/baseline after 2 attempts with errors", qc)
	}

	// A valid late result recovers the quarantined cell.
	clean := sim.NewRunner(opt)
	res, err := clean.RunCell(t.Context(), sim.CellSpec{Bench: "TRu", Policy: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	b, sum, err := sim.MarshalCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.complete(CompleteRequest{WorkerID: "w999", LeaseID: "l999", Cell: sim.CellSpec{Bench: "TRu", Policy: "baseline"}, Result: b, Sum: sum}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Quarantined != 0 || st.Done != st.Cells {
		t.Errorf("stats after recovery = %+v, want all cells done", st)
	}
}

// TestCorruptResultRejected: a completion whose payload does not match
// its checksum is refused, counted, and the cell recovered by a retry.
func TestCorruptResultRejected(t *testing.T) {
	opt := fleetOptions()
	c, _ := newTestCoordinator(t, CoordinatorConfig{Opt: opt})
	reg := c.register(RegisterRequest{Name: "flaky"})
	grant, ok, _ := c.lease(reg.WorkerID, 0)
	if !ok {
		t.Fatal("no lease")
	}
	r := sim.NewRunner(opt)
	res, err := r.RunCell(t.Context(), grant.Cell)
	if err != nil {
		t.Fatal(err)
	}
	b, sum, err := sim.MarshalCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	bad[len(bad)/2] ^= 0xff
	if err := c.complete(CompleteRequest{WorkerID: reg.WorkerID, LeaseID: grant.LeaseID, Cell: grant.Cell, Result: bad, Sum: sum}); err == nil {
		t.Fatal("corrupt result accepted")
	}
	st := c.Stats()
	if st.RejectedResults != 1 {
		t.Errorf("RejectedResults = %d, want 1", st.RejectedResults)
	}
	if c.cfg.Store.HasCell(opt, grant.Cell) {
		t.Error("corrupt result reached the store")
	}
	// The rejection released the lease; the same worker retries cleanly.
	grant2, ok, _ := c.lease(reg.WorkerID, 0)
	if !ok || grant2.Cell.ID() != grant.Cell.ID() {
		t.Fatalf("retry lease = %+v, want the same cell back", grant2)
	}
	if err := c.complete(CompleteRequest{WorkerID: reg.WorkerID, LeaseID: grant2.LeaseID, Cell: grant2.Cell, Result: b, Sum: sum}); err != nil {
		t.Fatal(err)
	}
	if !c.cfg.Store.HasCell(opt, grant.Cell) {
		t.Error("valid retry did not reach the store")
	}
}

// TestPartitionedWorkerLateResult: a worker that goes silent holding a
// finished result loses the lease, reports late after the partition
// heals, re-registers, and the suite still completes byte-identical.
func TestPartitionedWorkerLateResult(t *testing.T) {
	opt := fleetOptions()
	want := serialRender(t, opt, []string{"fig11"})

	c, srv := newTestCoordinator(t, CoordinatorConfig{
		Opt:               opt,
		HeartbeatInterval: 30 * time.Millisecond,
		HeartbeatTimeout:  120 * time.Millisecond,
		StealAfter:        time.Hour,
	})
	flaky := NewWorker(WorkerConfig{
		Coordinator:    srv.URL,
		Name:           "flaky",
		Logf:           t.Logf,
		PartitionAfter: 1,
		PartitionFor:   400 * time.Millisecond,
	})
	steady := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "steady", Logf: t.Logf})
	runWorkers(t, c, flaky, steady)

	st := c.Stats()
	if !st.SuiteDone || st.Quarantined != 0 {
		t.Fatalf("stats after sweep: %+v", st)
	}
	if st.Reassigned < 1 {
		t.Errorf("Reassigned = %d, want >= 1 (partition must lapse the lease)", st.Reassigned)
	}
	var got bytes.Buffer
	if err := c.RenderExperiments([]string{"fig11"}, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Errorf("post-partition render differs from serial run")
	}
}

// TestCoordinatorResumesFromStore: a second coordinator over the same
// store starts with every completed cell settled.
func TestCoordinatorResumesFromStore(t *testing.T) {
	opt := fleetOptions()
	st, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Logf = t.Logf
	c1, srv := newTestCoordinator(t, CoordinatorConfig{Opt: opt, Store: st, HeartbeatInterval: 30 * time.Millisecond})
	w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "a", Logf: t.Logf})
	runWorkers(t, c1, w)

	c2, err := NewCoordinator(CoordinatorConfig{Opt: opt, Store: st, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	st2 := c2.Stats()
	if st2.StorePrimed != st2.Cells || !st2.SuiteDone {
		t.Fatalf("resumed coordinator stats = %+v, want fully primed", st2)
	}
	select {
	case <-c2.Done():
	default:
		t.Error("resumed coordinator's Done() not closed")
	}
}

// TestSuiteCellsShardStable: shard assignment is deterministic and
// within range — the property lease preference relies on.
func TestSuiteCellsShardStable(t *testing.T) {
	cells := sim.SuiteCells(fleetOptions())
	for _, cl := range cells {
		a, b := shardOf(cl.ID(), 3), shardOf(cl.ID(), 3)
		if a != b || a < 0 || a >= 3 {
			t.Fatalf("shardOf(%q, 3) unstable or out of range: %d, %d", cl.ID(), a, b)
		}
	}
	spread := map[int]int{}
	for _, cl := range cells {
		spread[shardOf(cl.ID(), 3)]++
	}
	if len(spread) < 2 {
		t.Errorf("shard spread degenerate: %v (want cells on >= 2 of 3 shards)", spread)
	}
	if strings.Contains(cells[0].ID(), "\n") {
		t.Error("cell IDs must be single-line")
	}
}
