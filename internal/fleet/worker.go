package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dtexl/internal/sim"
)

// WorkerConfig wires one worker to a coordinator (or an HA set of
// them).
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:port".
	Coordinator string
	// Coordinators is the ordered endpoint list for HA deployments: the
	// worker talks to one endpoint until it fails (transport error or 503
	// standby), then rotates to the next. Coordinator, when set, is
	// prepended.
	Coordinators []string
	// Name labels the worker in coordinator stats and logs.
	Name string
	// NewRunner builds the simulation runner once registration delivers
	// the suite options. Defaults to sim.NewRunner; callers layer in
	// journal, shared store, chaos or parallelism here.
	NewRunner func(opt sim.Options) *sim.Runner
	// Client is the HTTP client; default has a 5-minute timeout (cells
	// are compute-heavy and the complete POST carries the result).
	Client *http.Client
	// PartitionAfter, when > 0, injects a network partition for chaos
	// testing: after that many completed cells the worker goes silent
	// (no heartbeats, no reports) for PartitionFor while HOLDING a
	// computed result, then reports it late — exercising lease
	// reassignment plus idempotent late acceptance.
	PartitionAfter int
	PartitionFor   time.Duration
	// Logf, when non-nil, receives one line per worker event.
	Logf func(format string, args ...any)
}

// Worker pulls leased cells from a coordinator, computes them through
// the full memo stack, and reports checksummed results.
type Worker struct {
	cfg       WorkerConfig
	endpoints []string

	runnerOnce sync.Once
	runner     *sim.Runner

	mu    sync.Mutex // guards id, beat, epoch, held, epIdx
	id    string
	beat  time.Duration
	epoch uint64
	held  *HeldLease // in-flight lease, presented on re-registration
	epIdx int        // current coordinator endpoint

	silent    atomic.Bool  // partition injection: drop heartbeats
	completed atomic.Int64 // cells finished (late reports included)
	resumed   atomic.Int64 // leases adopted across re-registrations
}

// identity snapshots the current worker ID, heartbeat interval and
// coordinator epoch.
func (w *Worker) identity() (string, time.Duration, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id, w.beat, w.epoch
}

// setHeld records (or clears) the lease the worker is computing, so a
// re-registration mid-compute can present it for adoption.
func (w *Worker) setHeld(h *HeldLease) {
	w.mu.Lock()
	w.held = h
	w.mu.Unlock()
}

// endpoint returns the current coordinator base URL.
func (w *Worker) endpoint() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.endpoints[w.epIdx]
}

// rotateEndpoint advances past a failed endpoint — but only if the
// failure was observed against the current one, so concurrent loops
// (heartbeat + work) don't double-skip a healthy coordinator.
func (w *Worker) rotateEndpoint(failed string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.endpoints) > 1 && w.endpoints[w.epIdx] == failed {
		w.epIdx = (w.epIdx + 1) % len(w.endpoints)
		w.cfg.Logf("fleet: worker %s: coordinator %s unavailable; rotating to %s", w.cfg.Name, failed, w.endpoints[w.epIdx])
	}
}

// Resumed counts leases the coordinator adopted across this worker's
// re-registrations — the observable for lease-token continuity tests.
func (w *Worker) Resumed() int64 { return w.resumed.Load() }

// WorkerStatus is the /workerz view of a worker.
type WorkerStatus struct {
	Name        string `json:"name"`
	WorkerID    string `json:"worker_id"`
	Coordinator string `json:"coordinator"`
	Completed   int64  `json:"completed"`
	Partitioned bool   `json:"partitioned"`
}

// Status snapshots the worker for health endpoints. Safe to call
// concurrently with Run.
func (w *Worker) Status() WorkerStatus {
	id, _, _ := w.identity()
	return WorkerStatus{
		Name:        w.cfg.Name,
		WorkerID:    id,
		Coordinator: w.endpoint(),
		Completed:   w.completed.Load(),
		Partitioned: w.silent.Load(),
	}
}

// NewWorker builds a worker; Run does the work.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.NewRunner == nil {
		cfg.NewRunner = sim.NewRunner
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var eps []string
	if cfg.Coordinator != "" {
		eps = append(eps, cfg.Coordinator)
	}
	eps = append(eps, cfg.Coordinators...)
	return &Worker{cfg: cfg, endpoints: eps}
}

// Run registers, heartbeats, and works leases until the suite is done
// or ctx ends. A coordinator that stays unreachable past the transport
// retry budget ends the run with an error.
func (w *Worker) Run(ctx context.Context) error {
	if len(w.endpoints) == 0 {
		return fmt.Errorf("fleet: worker %s: no coordinator endpoints", w.cfg.Name)
	}
	if err := w.register(ctx); err != nil {
		return err
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx)

	for {
		id, beat, epoch := w.identity()
		var resp LeaseResponse
		status, err := w.post(ctx, PathLease, LeaseRequest{WorkerID: id, Epoch: epoch}, &resp)
		if err != nil {
			return fmt.Errorf("fleet: worker %s: lease: %w", w.cfg.Name, err)
		}
		if status == http.StatusGone || status == http.StatusConflict {
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		}
		switch {
		case resp.Done:
			w.cfg.Logf("fleet: worker %s: suite done after %d cell(s)", w.cfg.Name, w.completed.Load())
			return nil
		case resp.Idle:
			wait := time.Duration(resp.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = beat
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
		default:
			w.workCell(ctx, id, resp)
		}
	}
}

// workCell computes one leased cell and reports the outcome. Errors in
// reporting are logged, not fatal: the coordinator's lease machinery
// recovers the cell either way.
func (w *Worker) workCell(ctx context.Context, id string, l LeaseResponse) {
	w.cfg.Logf("fleet: worker %s: cell %s (lease %s, stolen=%v)", w.cfg.Name, l.Cell.ID(), l.LeaseID, l.Stolen)
	// Hold the lease token while computing: if a failover forces a
	// re-registration mid-compute (from the heartbeat loop), the new
	// coordinator adopts this lease instead of reassigning the cell.
	_, _, epoch := w.identity()
	w.setHeld(&HeldLease{LeaseID: l.LeaseID, Cell: l.Cell, Epoch: epoch})
	defer w.setHeld(nil)
	res, err := w.runner.RunCell(ctx, l.Cell)
	if err != nil {
		w.cfg.Logf("fleet: worker %s: cell %s failed: %v", w.cfg.Name, l.Cell.ID(), err)
		if _, perr := w.post(ctx, PathFail, FailRequest{
			WorkerID: id, LeaseID: l.LeaseID, Cell: l.Cell, Error: err.Error(),
		}, nil); perr != nil {
			w.cfg.Logf("fleet: worker %s: fail report lost: %v", w.cfg.Name, perr)
		}
		return
	}
	b, sum, err := sim.MarshalCellResult(res)
	if err != nil {
		w.cfg.Logf("fleet: worker %s: cell %s: %v", w.cfg.Name, l.Cell.ID(), err)
		return
	}
	if done := w.completed.Add(1); w.cfg.PartitionAfter > 0 && done == int64(w.cfg.PartitionAfter) {
		// Injected partition: hold the finished result, go silent long
		// enough for the coordinator to reassign, then report late.
		w.cfg.Logf("fleet: worker %s: entering injected partition for %v holding cell %s", w.cfg.Name, w.cfg.PartitionFor, l.Cell.ID())
		w.silent.Store(true)
		select {
		case <-time.After(w.cfg.PartitionFor):
		case <-ctx.Done():
			return
		}
		w.silent.Store(false)
		w.cfg.Logf("fleet: worker %s: partition healed, reporting held cell %s", w.cfg.Name, l.Cell.ID())
	}
	// Re-read the identity: a mid-compute re-registration (failover)
	// changed the worker ID, and the lease was adopted under the new one.
	id, _, _ = w.identity()
	status, err := w.post(ctx, PathComplete, CompleteRequest{
		WorkerID: id, LeaseID: l.LeaseID, Cell: l.Cell, Result: b, Sum: sum,
	}, nil)
	if err != nil {
		w.cfg.Logf("fleet: worker %s: complete report lost for cell %s: %v", w.cfg.Name, l.Cell.ID(), err)
		return
	}
	if status != http.StatusOK {
		w.cfg.Logf("fleet: worker %s: coordinator refused result for cell %s (status %d)", w.cfg.Name, l.Cell.ID(), status)
	}
}

// register (re-)announces the worker — presenting any held lease for
// adoption — and builds the runner from the coordinator's suite options
// on first success. Safe to call concurrently from the work loop and
// the heartbeat loop: identity updates are atomic under the mutex and
// registration is idempotent on the coordinator side.
func (w *Worker) register(ctx context.Context) error {
	w.mu.Lock()
	req := RegisterRequest{Name: w.cfg.Name}
	if w.held != nil {
		req.Held = []HeldLease{*w.held}
	}
	w.mu.Unlock()
	var resp RegisterResponse
	status, err := w.post(ctx, PathRegister, req, &resp)
	if err != nil {
		return fmt.Errorf("fleet: worker %s: register: %w", w.cfg.Name, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("fleet: worker %s: register: status %d", w.cfg.Name, status)
	}
	beat := time.Duration(resp.HeartbeatIntervalMS) * time.Millisecond
	if beat <= 0 {
		beat = DefaultHeartbeatInterval
	}
	w.mu.Lock()
	w.id = resp.WorkerID
	w.beat = beat
	w.epoch = resp.Epoch
	w.mu.Unlock()
	w.resumed.Add(int64(len(resp.Resumed)))
	w.runnerOnce.Do(func() { w.runner = w.cfg.NewRunner(resp.Options) })
	w.cfg.Logf("fleet: worker %s: registered as %s (epoch %d, heartbeat %v, %d lease(s) resumed)",
		w.cfg.Name, resp.WorkerID, resp.Epoch, beat, len(resp.Resumed))
	return nil
}

// heartbeatLoop renews liveness every interval. A 410 (written off) or
// 409 (stale epoch after a failover) triggers an immediate
// re-registration from here — the work loop may be deep in a long
// compute, and re-registering now, with the held lease presented,
// preserves lease-token continuity instead of letting the new
// coordinator's lapse machinery reassign the cell.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	_, beat, _ := w.identity()
	t := time.NewTicker(beat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if w.silent.Load() {
			continue // injected partition: drop the beat
		}
		id, _, epoch := w.identity()
		status, err := w.post(ctx, PathHeartbeat, HeartbeatRequest{WorkerID: id, Epoch: epoch}, nil)
		if err != nil {
			w.cfg.Logf("fleet: worker %s: heartbeat lost: %v", w.cfg.Name, err)
			continue
		}
		if status == http.StatusGone || status == http.StatusConflict {
			w.cfg.Logf("fleet: worker %s: heartbeat rejected (status %d); re-registering", w.cfg.Name, status)
			if err := w.register(ctx); err != nil {
				w.cfg.Logf("fleet: worker %s: re-register failed: %v", w.cfg.Name, err)
			}
		}
	}
}

// post sends one JSON request, retrying transport errors with capped
// backoff so a briefly unreachable coordinator does not kill the
// worker. A transport error or a 503 (standby coordinator) rotates to
// the next endpoint in the list before the retry — this is the whole
// worker side of failover. Returns the final HTTP status; out (when
// non-nil) is decoded from a 200 body.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	var lastErr error
	backoff := 100 * time.Millisecond
	attempts := 6
	if len(w.endpoints) > 1 {
		attempts = 6 * len(w.endpoints)
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
		ep := w.endpoint()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep+path, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			w.rotateEndpoint(ep)
			backoff = 100 * time.Millisecond // fresh endpoint, fresh budget
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("endpoint %s is standby (503)", ep)
			w.rotateEndpoint(ep)
			continue
		}
		if out != nil && resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			if err != nil {
				lastErr = err
				continue
			}
			return resp.StatusCode, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	return 0, fmt.Errorf("coordinator unreachable after retries: %w", lastErr)
}
