package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"dtexl/internal/sim"
)

// CoordinatorConfig sizes the coordinator. Zero fields take the
// package defaults.
type CoordinatorConfig struct {
	// Opt is the suite contract: every cell key derives from it, and
	// registration hands it to workers verbatim.
	Opt sim.Options
	// Store is the shared result store cells complete into. Required.
	Store *sim.Store
	// HeartbeatInterval is what registration tells workers; default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the lapse after which a worker is written off
	// and its leases reassigned; default 4×HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// RetryBudget bounds lease grants per cell (initial + reassignments);
	// a cell that exhausts it is quarantined, not retried forever.
	// Default 5.
	RetryBudget int
	// StealAfter is the lease age past which an idle worker may steal
	// (double-lease) the cell; default 2m.
	StealAfter time.Duration
	// Epoch is this coordinator's fencing epoch under HA. Grants and
	// heartbeats carrying a different non-zero epoch are rejected as
	// stale; completions and failure reports are accepted at any epoch
	// (results are checksummed and idempotent). Zero means epochs are
	// not enforced (single-coordinator deployments).
	Epoch uint64
	// NodeID labels this coordinator process in stats and snapshots.
	NodeID string
	// Resume, when non-nil, replays a snapshot from a previous epoch:
	// retry budgets, quarantine decisions, failure counters and in-flight
	// leases. Completions always come from the store scan, which outranks
	// the snapshot.
	Resume *SnapshotState
	// Logf, when non-nil, receives one line per fleet event.
	Logf func(format string, args ...any)

	now func() time.Time // test hook; time.Now when nil
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 4 * c.HeartbeatInterval
	}
	if c.RetryBudget < 1 {
		c.RetryBudget = DefaultRetryBudget
	}
	if c.StealAfter <= 0 {
		c.StealAfter = DefaultStealAfter
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Cell lease lifecycle.
type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellQuarantined
)

type cell struct {
	spec     sim.CellSpec
	state    cellState
	attempts int               // lease grants from pending (steals excluded)
	leases   map[string]*lease // active leases; >1 only while stolen
	errors   []string          // failure reports, newest last (capped)
}

type lease struct {
	id      string
	worker  string
	cell    *cell
	granted time.Time
	stolen  bool
}

type workerState struct {
	id        string
	name      string
	lastBeat  time.Time
	gone      bool
	leases    map[string]*lease
	completed int
}

// Coordinator owns the sweep: the cell state machine, worker liveness,
// lease reassignment, stealing and quarantine. All methods are safe for
// concurrent use; mount Handler on an http.Server.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	cells    []*cell
	byID     map[string]*cell
	workers  map[string]*workerState
	leases   map[string]*lease
	seq      int
	primed   int
	settled  int // done + quarantined
	done     chan struct{}
	doneOnce sync.Once

	reassigned      int
	stolen          int
	rejectedResults int
	lateResults     int
	reassignments   []Reassignment
}

// NewCoordinator builds the coordinator over the suite cells of
// cfg.Opt, resuming from any cells already valid in the shared store.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a shared store")
	}
	c := &Coordinator{
		cfg:     cfg,
		byID:    make(map[string]*cell),
		workers: make(map[string]*workerState),
		leases:  make(map[string]*lease),
		done:    make(chan struct{}),
	}
	for _, spec := range sim.SuiteCells(cfg.Opt) {
		cl := &cell{spec: spec, leases: make(map[string]*lease)}
		// Resume: a valid store entry settles the cell before any worker
		// sees it. Corrupt entries are dropped by the scan and recomputed.
		if cfg.Store.HasCell(cfg.Opt, spec) {
			cl.state = cellDone
			c.primed++
			c.settled++
		}
		c.cells = append(c.cells, cl)
		c.byID[spec.ID()] = cl
	}
	if len(c.cells) == 0 {
		return nil, fmt.Errorf("fleet: suite has no cells")
	}
	c.cfg.Logf("fleet: coordinator up (epoch %d): %d cells (%d primed from store), heartbeat %v (timeout %v), retry budget %d, steal after %v",
		cfg.Epoch, len(c.cells), c.primed, cfg.HeartbeatInterval, cfg.HeartbeatTimeout, cfg.RetryBudget, cfg.StealAfter)
	if cfg.Resume != nil {
		c.mu.Lock()
		c.restoreLocked(cfg.Resume, cfg.now())
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.checkDoneLocked()
	c.mu.Unlock()
	return c, nil
}

// Epoch returns the coordinator's fencing epoch.
func (c *Coordinator) Epoch() uint64 { return c.cfg.Epoch }

// staleEpoch reports whether a request's epoch is from a fenced-off
// coordinator generation. Zero (legacy, or pre-registration) is never
// stale; neither is anything when this coordinator runs without epochs.
func (c *Coordinator) staleEpoch(epoch uint64) bool {
	return c.cfg.Epoch != 0 && epoch != 0 && epoch != c.cfg.Epoch
}

// Done is closed once every cell has settled (completed or
// quarantined).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

func (c *Coordinator) checkDoneLocked() {
	if c.settled == len(c.cells) {
		c.doneOnce.Do(func() {
			c.cfg.Logf("fleet: suite done: %d cells settled", c.settled)
			close(c.done)
		})
	}
}

// expireLocked writes off workers whose heartbeat lapsed and reassigns
// their leases. Called at the top of every handler, so liveness needs
// no background goroutine.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, w := range c.workers {
		if w.gone || now.Sub(w.lastBeat) <= c.cfg.HeartbeatTimeout {
			continue
		}
		w.gone = true
		c.cfg.Logf("fleet: worker %s (%s) heartbeat lapsed (%v); reassigning %d lease(s)",
			w.id, w.name, now.Sub(w.lastBeat).Round(time.Millisecond), len(w.leases))
		for _, l := range w.leases {
			c.releaseLeaseLocked(l, "heartbeat_lapse")
		}
	}
}

// releaseLeaseLocked takes back one lease: the cell returns to pending
// (or quarantine when its retry budget is spent) unless another lease —
// a steal — is still running it.
func (c *Coordinator) releaseLeaseLocked(l *lease, reason string) {
	delete(c.leases, l.id)
	if w := c.workers[l.worker]; w != nil {
		delete(w.leases, l.id)
	}
	cl := l.cell
	delete(cl.leases, l.id)
	if cl.state != cellLeased {
		return // already settled; nothing to reassign
	}
	c.reassigned++
	worker := l.worker
	if w := c.workers[l.worker]; w != nil && w.name != "" {
		worker = fmt.Sprintf("%s (%s)", l.worker, w.name)
	}
	c.reassignments = append(c.reassignments, Reassignment{
		Cell: cl.spec.ID(), LeaseID: l.id, Worker: worker, Reason: reason,
	})
	if len(cl.leases) > 0 {
		return // a stolen lease is still live on this cell
	}
	if cl.attempts >= c.cfg.RetryBudget {
		cl.state = cellQuarantined
		c.settled++
		c.cfg.Logf("fleet: cell %s quarantined after %d attempt(s): %v", cl.spec.ID(), cl.attempts, cl.errors)
		c.checkDoneLocked()
		return
	}
	cl.state = cellPending
	c.cfg.Logf("fleet: cell %s back to pending (%s, attempt %d/%d)", cl.spec.ID(), reason, cl.attempts, c.cfg.RetryBudget)
}

// liveWorkersLocked returns the live worker IDs in stable order — the
// shard table.
func (c *Coordinator) liveWorkersLocked() []string {
	var ids []string
	for id, w := range c.workers {
		if !w.gone {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// shardOf maps a cell to a shard index — stable per cell, so with a
// steady fleet every cell has a preferred worker and workers mostly
// stay out of each other's way.
func shardOf(cellID string, n int) int {
	h := fnv.New32a()
	io.WriteString(h, cellID)
	return int(h.Sum32() % uint32(n))
}

// register admits a worker and hands it the suite contract.
// Registration is always accepted, whatever epoch the worker last saw —
// it is exactly how a worker crosses a failover. Held leases that still
// exist (typically restored from a snapshot under the worker's previous
// ID) are transferred to the new identity with their lease tokens and
// retry accounting intact: resuming in-flight work across an epoch
// never charges the cell's retry budget.
func (c *Coordinator) register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)
	c.seq++
	w := &workerState{
		id:       fmt.Sprintf("w%d", c.seq),
		name:     req.Name,
		lastBeat: now,
		leases:   make(map[string]*lease),
	}
	c.workers[w.id] = w
	resp := RegisterResponse{
		WorkerID:            w.id,
		Epoch:               c.cfg.Epoch,
		HeartbeatIntervalMS: c.cfg.HeartbeatInterval.Milliseconds(),
		Options:             c.cfg.Opt,
	}
	for _, h := range req.Held {
		l := c.leases[h.LeaseID]
		if l == nil || l.cell.spec.ID() != h.Cell.ID() {
			continue // lease already settled or reassigned; worker's report will land late
		}
		if ow := c.workers[l.worker]; ow != nil {
			delete(ow.leases, l.id)
		}
		l.worker = w.id
		w.leases[l.id] = l
		resp.Resumed = append(resp.Resumed, l.id)
		c.cfg.Logf("fleet: worker %s resumes lease %s on cell %s across re-registration", w.id, l.id, l.cell.spec.ID())
	}
	c.cfg.Logf("fleet: worker %s registered as %s (epoch %d, %d lease(s) resumed)", req.Name, w.id, c.cfg.Epoch, len(resp.Resumed))
	return resp
}

// heartbeat renews liveness. ok=false means the worker is unknown or
// already written off and must re-register; stale=true means the
// request carried a fenced-off epoch.
func (c *Coordinator) heartbeat(workerID string, epoch uint64) (ok, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.staleEpoch(epoch) {
		return false, true
	}
	now := c.cfg.now()
	c.expireLocked(now)
	w := c.workers[workerID]
	if w == nil || w.gone {
		return false, false
	}
	w.lastBeat = now
	return true, false
}

// lease grants one cell to the worker: a pending cell from its shard if
// any, any pending cell otherwise, and failing that a steal of the
// oldest over-age lease. ok=false means the worker must re-register;
// stale=true means the grant was refused because the request carried a
// fenced-off epoch (grants are never issued across epochs — that is the
// fencing rule that keeps a partitioned old primary's workers from
// double-leasing cells).
func (c *Coordinator) lease(workerID string, epoch uint64) (resp LeaseResponse, ok, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.staleEpoch(epoch) {
		return LeaseResponse{}, false, true
	}
	now := c.cfg.now()
	c.expireLocked(now)
	w := c.workers[workerID]
	if w == nil || w.gone {
		return LeaseResponse{}, false, false
	}
	w.lastBeat = now // asking for work proves liveness

	if c.settled == len(c.cells) {
		return LeaseResponse{Done: true}, true, false
	}

	live := c.liveWorkersLocked()
	self := sort.SearchStrings(live, workerID)
	var preferred, fallback *cell
	for _, cl := range c.cells {
		if cl.state != cellPending {
			continue
		}
		if shardOf(cl.spec.ID(), len(live)) == self {
			preferred = cl
			break
		}
		if fallback == nil {
			fallback = cl
		}
	}
	pick := preferred
	if pick == nil {
		pick = fallback
	}
	stolen := false
	if pick == nil {
		// No pending work: steal the oldest over-age lease not our own
		// and not already double-leased.
		var victim *lease
		for _, l := range c.leases {
			if l.worker == workerID || now.Sub(l.granted) < c.cfg.StealAfter {
				continue
			}
			if len(l.cell.leases) > 1 {
				continue
			}
			if victim == nil || l.granted.Before(victim.granted) {
				victim = l
			}
		}
		if victim == nil {
			return LeaseResponse{Idle: true, RetryMS: c.cfg.HeartbeatInterval.Milliseconds()}, true, false
		}
		pick, stolen = victim.cell, true
	}

	c.seq++
	l := &lease{id: fmt.Sprintf("l%d", c.seq), worker: workerID, cell: pick, granted: now, stolen: stolen}
	c.leases[l.id] = l
	w.leases[l.id] = l
	pick.leases[l.id] = l
	if stolen {
		c.stolen++
		c.cfg.Logf("fleet: worker %s steals cell %s (lease %s)", workerID, pick.spec.ID(), l.id)
	} else {
		pick.state = cellLeased
		pick.attempts++
		c.cfg.Logf("fleet: worker %s leases cell %s (lease %s, attempt %d)", workerID, pick.spec.ID(), l.id, pick.attempts)
	}
	return LeaseResponse{LeaseID: l.id, Cell: pick.spec, Stolen: stolen}, true, false
}

// complete admits one result. The checksum and payload are verified
// before the store sees the bytes; a bad payload counts as a failure of
// the lease. Late or duplicate completions — a reassigned worker
// finishing anyway, the loser of a steal race, a partitioned worker
// reporting after re-registration — are accepted idempotently: results
// are deterministic, so the bytes are interchangeable.
func (c *Coordinator) complete(req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.now())

	cl := c.byID[req.Cell.ID()]
	if cl == nil {
		return fmt.Errorf("unknown cell %q", req.Cell.ID())
	}
	if req.Sum != sim.ResultSum(req.Result) {
		c.rejectedResults++
		c.cfg.Logf("fleet: rejected result for cell %s from %s: checksum mismatch", cl.spec.ID(), req.WorkerID)
		if l := c.leases[req.LeaseID]; l != nil && l.cell == cl {
			c.releaseLeaseLocked(l, "rejected_result")
		}
		return fmt.Errorf("result checksum mismatch for cell %q", req.Cell.ID())
	}
	if err := c.cfg.Store.RecordCellResult(c.cfg.Opt, cl.spec, req.Result); err != nil {
		c.rejectedResults++
		c.cfg.Logf("fleet: rejected result for cell %s from %s: %v", cl.spec.ID(), req.WorkerID, err)
		if l := c.leases[req.LeaseID]; l != nil && l.cell == cl {
			c.releaseLeaseLocked(l, "rejected_result")
		}
		return err
	}

	if w := c.workers[req.WorkerID]; w != nil {
		w.completed++
	}
	if c.leases[req.LeaseID] == nil || cl.state == cellDone {
		c.lateResults++
		c.cfg.Logf("fleet: late result for cell %s from %s accepted", cl.spec.ID(), req.WorkerID)
	}
	if cl.state != cellDone {
		if cl.state == cellQuarantined {
			// A valid late result un-quarantines the cell: the data is
			// good, so serve it.
			c.cfg.Logf("fleet: quarantined cell %s recovered by late result from %s", cl.spec.ID(), req.WorkerID)
		} else {
			c.settled++
		}
		cl.state = cellDone
		c.checkDoneLocked()
	}
	// Retire every lease on the cell; racing workers' completions land in
	// the late path above.
	for _, l := range cl.leases {
		delete(c.leases, l.id)
		if w := c.workers[l.worker]; w != nil {
			delete(w.leases, l.id)
		}
		delete(cl.leases, l.id)
	}
	return nil
}

// fail records a failure report and releases the lease toward retry or
// quarantine.
func (c *Coordinator) fail(req FailRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.now())
	cl := c.byID[req.Cell.ID()]
	if cl != nil {
		cl.errors = append(cl.errors, req.Error)
		if len(cl.errors) > 4 {
			cl.errors = cl.errors[len(cl.errors)-4:]
		}
	}
	l := c.leases[req.LeaseID]
	if l == nil {
		return // lease already reassigned; nothing to release
	}
	c.cfg.Logf("fleet: worker %s failed cell %s: %s", req.WorkerID, l.cell.spec.ID(), req.Error)
	c.releaseLeaseLocked(l, "failure")
}

// Stats snapshots the sweep.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)
	st := Stats{
		Epoch:           c.cfg.Epoch,
		NodeID:          c.cfg.NodeID,
		Cells:           len(c.cells),
		StorePrimed:     c.primed,
		Reassigned:      c.reassigned,
		Stolen:          c.stolen,
		RejectedResults: c.rejectedResults,
		LateResults:     c.lateResults,
		Reassignments:   append([]Reassignment(nil), c.reassignments...),
		Store:           c.cfg.Store.Stats(),
	}
	for _, cl := range c.cells {
		switch cl.state {
		case cellPending:
			st.Pending++
		case cellLeased:
			st.Leased++
		case cellDone:
			st.Done++
		case cellQuarantined:
			st.Quarantined++
			st.QuarantinedCells = append(st.QuarantinedCells, QuarantinedCell{
				Cell: cl.spec.ID(), Attempts: cl.attempts, Errors: append([]string(nil), cl.errors...),
			})
		}
	}
	st.SuiteDone = c.settled == len(c.cells)
	var ids []string
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerStats{
			ID:           w.id,
			Name:         w.name,
			Live:         !w.gone,
			ActiveLeases: len(w.leases),
			Completed:    w.completed,
			LastBeatMS:   now.Sub(w.lastBeat).Milliseconds(),
		})
	}
	return st
}

// RenderExperiments renders the named experiment tables from the shared
// store — blank line between tables, matching `dtexlbench` run per
// experiment — through a fresh store-backed runner. Call after Done();
// every lookup is then an L2 hit and the bytes match a serial run
// exactly.
func (c *Coordinator) RenderExperiments(ids []string, w io.Writer) error {
	r := sim.NewRunner(c.cfg.Opt)
	r.Store = c.cfg.Store
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := r.RunExperiment(id, w); err != nil {
			return fmt.Errorf("fleet: render %s: %w", id, err)
		}
	}
	return nil
}

// Handler mounts the fleet protocol plus the stats endpoint.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.register(req))
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ok, stale := c.heartbeat(req.WorkerID, req.Epoch)
		if stale {
			http.Error(w, "stale epoch; re-register", http.StatusConflict)
			return
		}
		if !ok {
			http.Error(w, "unknown worker; re-register", http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, ok, stale := c.lease(req.WorkerID, req.Epoch)
		if stale {
			http.Error(w, "stale epoch; re-register", http.StatusConflict)
			return
		}
		if !ok {
			http.Error(w, "unknown worker; re-register", http.StatusGone)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST "+PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if err := c.complete(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST "+PathFail, func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		c.fail(req)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET "+PathStats, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(v); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
