package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dtexl/internal/sim"
)

// SnapshotLogName is the append-only snapshot log the coordinator keeps
// in the shared store directory. It deliberately does not end in .json:
// the store's GC and corruption tooling only touch *.json entries, so
// the log is invisible to them.
const SnapshotLogName = "coordinator.snaplog"

// snaplogCompactAt bounds the log: once an append would push the file
// past this size it is rewritten to hold only the newest record.
const snaplogCompactAt = 1 << 20

// SnapshotState is the coordinator's authoritative mutable state — the
// part a standby cannot rebuild from the store alone. Completion is NOT
// here: done-ness is always re-derived by scanning the store, which is
// the ground truth for results. The snapshot carries what would
// otherwise be lost with the primary: retry accounting, quarantine
// decisions, failure-event counters, and the set of in-flight leases.
type SnapshotState struct {
	Epoch         uint64 `json:"epoch"`
	NodeID        string `json:"node_id,omitempty"`
	Seq           int    `json:"seq"`
	TakenUnixNano int64  `json:"taken_unix_nano"`

	Reassigned      int            `json:"reassigned"`
	Stolen          int            `json:"stolen"`
	RejectedResults int            `json:"rejected_results"`
	LateResults     int            `json:"late_results"`
	Reassignments   []Reassignment `json:"reassignments,omitempty"`

	// Cells holds only cells with history (attempts, errors or
	// quarantine); pristine pending cells are implicit.
	Cells []SnapshotCell `json:"cells,omitempty"`
	// Leases are the in-flight grants at snapshot time.
	Leases []SnapshotLease `json:"leases,omitempty"`
}

// SnapshotCell is one cell's retry/quarantine history.
type SnapshotCell struct {
	ID          string   `json:"id"`
	Attempts    int      `json:"attempts"`
	Quarantined bool     `json:"quarantined,omitempty"`
	Errors      []string `json:"errors,omitempty"`
}

// SnapshotLease is one in-flight lease. On restore it is re-created
// under its original worker ID (a "ghost" until that worker re-registers
// and adopts it), so either the worker resumes the lease token with no
// retry-budget charge, or the ordinary heartbeat-lapse machinery
// reclaims the cell.
type SnapshotLease struct {
	ID              string `json:"id"`
	Worker          string `json:"worker"`
	WorkerName      string `json:"worker_name,omitempty"`
	Cell            string `json:"cell"`
	GrantedUnixNano int64  `json:"granted_unix_nano"`
	Stolen          bool   `json:"stolen,omitempty"`
}

// Snapshot captures the coordinator's authoritative state for the HA
// snapshot log.
func (c *Coordinator) Snapshot() *SnapshotState {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &SnapshotState{
		Epoch:           c.cfg.Epoch,
		NodeID:          c.cfg.NodeID,
		Seq:             c.seq,
		TakenUnixNano:   c.cfg.now().UnixNano(),
		Reassigned:      c.reassigned,
		Stolen:          c.stolen,
		RejectedResults: c.rejectedResults,
		LateResults:     c.lateResults,
		Reassignments:   append([]Reassignment(nil), c.reassignments...),
	}
	for _, cl := range c.cells {
		if cl.attempts == 0 && len(cl.errors) == 0 && cl.state != cellQuarantined {
			continue
		}
		s.Cells = append(s.Cells, SnapshotCell{
			ID:          cl.spec.ID(),
			Attempts:    cl.attempts,
			Quarantined: cl.state == cellQuarantined,
			Errors:      append([]string(nil), cl.errors...),
		})
	}
	for _, l := range c.leases {
		sl := SnapshotLease{
			ID:              l.id,
			Worker:          l.worker,
			Cell:            l.cell.spec.ID(),
			GrantedUnixNano: l.granted.UnixNano(),
			Stolen:          l.stolen,
		}
		if w := c.workers[l.worker]; w != nil {
			sl.WorkerName = w.name
		}
		s.Leases = append(s.Leases, sl)
	}
	return s
}

// restoreLocked applies a snapshot to a freshly built coordinator. The
// store scan has already run, so any cell the store holds stays done —
// the store outranks the snapshot. In-flight leases come back under
// ghost workerState entries stamped live now: a returning worker adopts
// its lease token via register (no retry-budget charge), and a worker
// that never returns is reclaimed by the ordinary heartbeat lapse.
func (c *Coordinator) restoreLocked(s *SnapshotState, now time.Time) {
	if s.Seq > c.seq {
		c.seq = s.Seq
	}
	c.reassigned = s.Reassigned
	c.stolen = s.Stolen
	c.rejectedResults = s.RejectedResults
	c.lateResults = s.LateResults
	c.reassignments = append([]Reassignment(nil), s.Reassignments...)
	for _, sc := range s.Cells {
		cl := c.byID[sc.ID]
		if cl == nil {
			continue // suite shape changed; ignore unknown cells
		}
		cl.attempts = sc.Attempts
		cl.errors = append([]string(nil), sc.Errors...)
		if cl.state == cellDone {
			continue // store result outranks snapshot state
		}
		if sc.Quarantined {
			cl.state = cellQuarantined
			c.settled++
		}
	}
	for _, sl := range s.Leases {
		cl := c.byID[sl.Cell]
		if cl == nil || cl.state == cellDone || cl.state == cellQuarantined {
			continue
		}
		w := c.workers[sl.Worker]
		if w == nil {
			w = &workerState{
				id:       sl.Worker,
				name:     sl.WorkerName,
				lastBeat: now,
				leases:   make(map[string]*lease),
			}
			c.workers[sl.Worker] = w
		}
		l := &lease{
			id:      sl.ID,
			worker:  sl.Worker,
			cell:    cl,
			granted: time.Unix(0, sl.GrantedUnixNano),
			stolen:  sl.Stolen,
		}
		c.leases[l.id] = l
		w.leases[l.id] = l
		cl.leases[l.id] = l
		cl.state = cellLeased
	}
	c.cfg.Logf("fleet: restored snapshot from epoch %d: %d cell record(s), %d in-flight lease(s)",
		s.Epoch, len(s.Cells), len(s.Leases))
	c.checkDoneLocked()
}

// AppendSnapshot appends one checksummed record to the snapshot log in
// dir, fsync'd so a later failover can trust what it reads. Each line is
// "<crc64hex>\t<json>"; a torn tail (crash mid-append) fails the
// checksum and LoadSnapshot falls back to the previous record. When the
// log would outgrow the compaction bound it is rewritten to hold only
// this record, atomically.
func AppendSnapshot(dir string, s *SnapshotState) error {
	b, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("fleet: snapshot encode: %w", err)
	}
	line := sim.ResultSum(b) + "\t" + string(b) + "\n"
	path := filepath.Join(dir, SnapshotLogName)
	if fi, err := os.Stat(path); err == nil && fi.Size()+int64(len(line)) > snaplogCompactAt {
		return writeFileAtomic(path, []byte(line))
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: snapshot log: %w", err)
	}
	if _, err := f.WriteString(line); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot append: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot fsync: %w", err)
	}
	return f.Close()
}

// LoadSnapshot returns the newest checksum-valid record in dir's
// snapshot log, or (nil, nil) when the log is missing or holds no valid
// record. Invalid lines — torn tails, bit rot — are skipped, not fatal:
// the store replay covers whatever a lost snapshot knew about
// completions, and retry accounting degrades to the older record.
func LoadSnapshot(dir string) (*SnapshotState, error) {
	f, err := os.Open(filepath.Join(dir, SnapshotLogName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleet: snapshot log: %w", err)
	}
	defer f.Close()
	var latest *SnapshotState
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		sum, body, ok := strings.Cut(sc.Text(), "\t")
		if !ok || sim.ResultSum([]byte(body)) != sum {
			continue // torn or corrupt record
		}
		var s SnapshotState
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			continue
		}
		latest = &s
	}
	if err := sc.Err(); err != nil {
		return latest, fmt.Errorf("fleet: snapshot log read: %w", err)
	}
	return latest, nil
}

// writeFileAtomic writes data under path via temp file + fsync + rename,
// mirroring the store's torn-write discipline.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("fleet: atomic write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: atomic fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: atomic close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fleet: atomic rename: %w", err)
	}
	return nil
}
