// Package fleet shards the benchmark suite across a coordinator and a
// fleet of workers, tolerating worker death, network partitions and
// result corruption without giving up bit-identical output.
//
// The shape follows the proven task-scheduler pattern: workers register
// with the coordinator and heartbeat on an interval; the coordinator
// slices the suite into leased cells (sharded by simulation key),
// reassigns leases when heartbeats lapse, quarantines cells that exhaust
// a bounded retry budget, and lets idle workers steal from slow ones.
// Results travel with a checksum and land in the content-addressed
// shared store (internal/sim.Store); after the last cell settles the
// coordinator renders the experiment tables entirely from the store,
// byte-identical to a serial run.
package fleet

import (
	"encoding/json"
	"time"

	"dtexl/internal/sim"
)

// Protocol endpoints, mounted by Coordinator.Handler.
const (
	PathRegister  = "/fleet/register"
	PathHeartbeat = "/fleet/heartbeat"
	PathLease     = "/fleet/lease"
	PathComplete  = "/fleet/complete"
	PathFail      = "/fleet/fail"
	PathStats     = "/fleet/stats"
)

// RegisterRequest announces a worker. Names are labels, not identities:
// re-registering after a partition or failover yields a fresh worker ID.
// Held carries the worker's in-flight leases so a registration across a
// coordinator epoch can resume them (lease-token continuity) instead of
// burning retry budget on work that is still running.
type RegisterRequest struct {
	Name string      `json:"name"`
	Held []HeldLease `json:"held,omitempty"`
}

// HeldLease is one in-flight lease a re-registering worker presents for
// adoption.
type HeldLease struct {
	LeaseID string       `json:"lease_id"`
	Cell    sim.CellSpec `json:"cell"`
	// Epoch is the coordinator epoch that granted the lease; informative
	// only — adoption matches on lease ID + cell.
	Epoch uint64 `json:"epoch,omitempty"`
}

// RegisterResponse hands the worker its identity and the suite contract:
// the exact simulation options every cell key derives from, the
// heartbeat interval the coordinator expects, and the coordinator's
// fencing epoch the worker must echo on heartbeats and lease requests.
// Resumed lists the held lease IDs the coordinator adopted.
type RegisterResponse struct {
	WorkerID            string      `json:"worker_id"`
	Epoch               uint64      `json:"epoch,omitempty"`
	Resumed             []string    `json:"resumed,omitempty"`
	HeartbeatIntervalMS int64       `json:"heartbeat_interval_ms"`
	Options             sim.Options `json:"options"`
}

// HeartbeatRequest renews a worker's liveness. A 410 response means the
// coordinator has written the worker off (heartbeat lapse); a 409 means
// the epoch is stale (a failover happened). Either way the worker must
// re-register before taking more work.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// LeaseRequest asks for one cell of work. A stale epoch is refused with
// 409: grants never cross epochs.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// LeaseResponse is the coordinator's answer to a lease request: exactly
// one of Done, Idle, or a granted lease.
type LeaseResponse struct {
	// Done: every cell has settled (completed or quarantined); the worker
	// should exit.
	Done bool `json:"done,omitempty"`
	// Idle: nothing leasable right now (all remaining cells are held by
	// live workers not yet stealable); poll again after RetryMS.
	Idle    bool  `json:"idle,omitempty"`
	RetryMS int64 `json:"retry_ms,omitempty"`

	LeaseID string       `json:"lease_id,omitempty"`
	Cell    sim.CellSpec `json:"cell,omitempty"`
	// Stolen marks a work-stealing lease: another worker still holds an
	// older lease on the same cell, and the first valid result wins.
	Stolen bool `json:"stolen,omitempty"`
}

// CompleteRequest reports a finished cell. Result is the raw simResult
// JSON exactly as the worker encoded it, and Sum its CRC-64 (ECMA)
// checksum — the coordinator verifies the pair before admitting the
// bytes to the store, so a payload corrupted in transit is rejected and
// the cell retried rather than served wrong.
type CompleteRequest struct {
	WorkerID string          `json:"worker_id"`
	LeaseID  string          `json:"lease_id"`
	Cell     sim.CellSpec    `json:"cell"`
	Result   json.RawMessage `json:"result"`
	Sum      string          `json:"sum"`
}

// FailRequest reports a cell whose computation errored. The coordinator
// releases the lease and either retries the cell (within the retry
// budget) or quarantines it.
type FailRequest struct {
	WorkerID string       `json:"worker_id"`
	LeaseID  string       `json:"lease_id"`
	Cell     sim.CellSpec `json:"cell"`
	Error    string       `json:"error"`
}

// Stats is the GET /fleet/stats body: the live picture of the sweep.
type Stats struct {
	// Epoch and NodeID identify which coordinator generation is
	// answering — the CI failover check asserts the epoch bumped.
	Epoch  uint64 `json:"epoch,omitempty"`
	NodeID string `json:"node_id,omitempty"`

	// Cell accounting. Done includes StorePrimed; Cells = Done + Pending +
	// Leased + Quarantined.
	Cells       int `json:"cells"`
	Done        int `json:"done"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Quarantined int `json:"quarantined"`
	// StorePrimed counts cells already valid in the shared store when the
	// coordinator started (a resumed sweep).
	StorePrimed int `json:"store_primed"`

	// Failure-handling counters.
	Reassigned      int `json:"reassigned"`
	Stolen          int `json:"stolen"`
	RejectedResults int `json:"rejected_results"`
	LateResults     int `json:"late_results"`

	SuiteDone bool `json:"suite_done"`

	Workers          []WorkerStats     `json:"workers"`
	Reassignments    []Reassignment    `json:"reassignments,omitempty"`
	QuarantinedCells []QuarantinedCell `json:"quarantined_cells,omitempty"`

	Store sim.StoreStats `json:"store"`
}

// WorkerStats is one worker's row in Stats.
type WorkerStats struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Live         bool   `json:"live"`
	ActiveLeases int    `json:"active_leases"`
	Completed    int    `json:"completed"`
	LastBeatMS   int64  `json:"last_beat_ms"`
}

// Reassignment records one lease the coordinator took back — the
// auditable trail behind the Reassigned counter.
type Reassignment struct {
	Cell    string `json:"cell"`
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	Reason  string `json:"reason"` // "heartbeat_lapse", "failure", "rejected_result"
}

// QuarantinedCell is one poison cell: it exhausted the retry budget and
// was taken out of the sweep so it cannot wedge the fleet.
type QuarantinedCell struct {
	Cell     string   `json:"cell"`
	Attempts int      `json:"attempts"`
	Errors   []string `json:"errors,omitempty"`
}

// Defaults for CoordinatorConfig.
const (
	DefaultHeartbeatInterval = 1 * time.Second
	DefaultRetryBudget       = 5
	DefaultStealAfter        = 2 * time.Minute
)
