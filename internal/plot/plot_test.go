package plot

import (
	"bytes"
	"encoding/xml"
	"strconv"
	"strings"
	"testing"
)

func sampleBar() *BarChart {
	return &BarChart{
		Title:      "Speedup",
		YLabel:     "x over baseline",
		Categories: []string{"CCS", "TRu", "Avg"},
		Series: []Series{
			{Name: "DTexL", Values: []float64{1.27, 1.13, 1.24}},
			{Name: "decoupled", Values: []float64{1.06, 1.04, 1.05}},
		},
		RefLine: 1,
	}
}

// parseSVG checks the output is well-formed XML.
func parseSVG(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestBarChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleBar().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	parseSVG(t, buf.Bytes())
	// 3 categories x 2 series = 6 bars plus the background rect and
	// legend swatches.
	if got := strings.Count(out, "<rect"); got < 6+1+2 {
		t.Errorf("only %d rects", got)
	}
	for _, want := range []string{"Speedup", "CCS", "TRu", "DTexL", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestBarChartValidation(t *testing.T) {
	empty := &BarChart{Title: "x"}
	if err := empty.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
	bad := sampleBar()
	bad.Series[0].Values = bad.Series[0].Values[:1]
	if err := bad.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestBarHeightsScaleWithValues(t *testing.T) {
	c := &BarChart{
		Title:      "t",
		Categories: []string{"a", "b"},
		Series:     []Series{{Name: "s", Values: []float64{1, 2}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The taller bar's y must be smaller (SVG y grows downward). Extract
	// the two data-bar rects by their title children.
	out := buf.String()
	iA := strings.Index(out, "<title>a / s")
	iB := strings.Index(out, "<title>b / s")
	if iA < 0 || iB < 0 {
		t.Fatal("bar titles missing")
	}
	yOf := func(i int) float64 {
		seg := out[:i]
		j := strings.LastIndex(seg, `y="`)
		seg = seg[j+3:]
		v, err := strconv.ParseFloat(seg[:strings.Index(seg, `"`)], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// SVG y grows downward: the value-2 bar's top must sit above (smaller
	// y than) the value-1 bar's.
	if yOf(iB) >= yOf(iA) {
		t.Errorf("bar for 2 (y=%v) not taller than bar for 1 (y=%v)", yOf(iB), yOf(iA))
	}
}

func TestBoxChartSVG(t *testing.T) {
	c := &BoxChart{
		Title:  "Imbalance",
		YLabel: "%",
		Boxes: []BoxEntry{
			{Label: "CCS/FG", Min: 0, Q1: 1, Median: 2, Mean: 2.5, Q3: 4, Max: 30, Group: 0},
			{Label: "CCS/CG", Min: 0, Q1: 12, Median: 18, Mean: 20, Q3: 26, Max: 100, Group: 1},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	parseSVG(t, buf.Bytes())
	out := buf.String()
	if strings.Count(out, "<circle") != 2 {
		t.Error("mean markers missing")
	}
	if !strings.Contains(out, "CCS/FG") || !strings.Contains(out, "med 18") {
		t.Error("labels or tooltips missing")
	}
}

func TestBoxChartValidation(t *testing.T) {
	if err := (&BoxChart{Title: "x"}).WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty box chart accepted")
	}
}

func TestEscaping(t *testing.T) {
	c := &BarChart{
		Title:      `a<b&"c"`,
		Categories: []string{"x"},
		Series:     []Series{{Name: "<s>", Values: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	parseSVG(t, buf.Bytes())
	if strings.Contains(buf.String(), "a<b") {
		t.Error("title not escaped")
	}
}
