// Package plot renders the evaluation's tables as SVG figures — bar
// charts for the Fig. 1/2/11-13/16-18 style results and box plots for
// the Fig. 14/15 violins — so a reproduction run can be compared with
// the paper's figures visually. Pure stdlib: the SVG is emitted
// directly.
package plot

import (
	"fmt"
	"io"
	"math"
)

// palette holds the series colors (colorblind-safe defaults).
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
	"#aa3377", "#bbbbbb", "#222255", "#225555", "#555522",
}

// Series is one bar group member across all categories.
type Series struct {
	Name   string
	Values []float64
}

// BarChart is a grouped bar chart: one group per category (benchmark),
// one bar per series (configuration) within each group.
type BarChart struct {
	Title      string
	YLabel     string
	Categories []string
	Series     []Series
	// RefLine, if non-zero, draws a dashed horizontal reference (e.g. 1.0
	// for normalized values).
	RefLine float64
}

const (
	chartW  = 960
	chartH  = 420
	marginL = 70
	marginR = 20
	marginT = 56
	marginB = 48
)

func esc(s string) string {
	out := ""
	for _, r := range s {
		switch r {
		case '&':
			out += "&amp;"
		case '<':
			out += "&lt;"
		case '>':
			out += "&gt;"
		case '"':
			out += "&quot;"
		default:
			out += string(r)
		}
	}
	return out
}

// WriteSVG renders the chart.
func (c *BarChart) WriteSVG(w io.Writer) error {
	if len(c.Categories) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("plot: empty chart %q", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return fmt.Errorf("plot: series %q has %d values for %d categories",
				s.Name, len(s.Values), len(c.Categories))
		}
	}
	maxV := c.RefLine
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV *= 1.08

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	x0, y0 := float64(marginL), float64(marginT)
	yOf := func(v float64) float64 { return y0 + plotH - math.Max(v, 0)/maxV*plotH }

	var b errWriter
	b.w = w
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", chartW, chartH)
	b.printf(`<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	b.printf(`<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Legend.
	lx := float64(marginL)
	for i, s := range c.Series {
		b.printf(`<rect x="%.1f" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, 32, palette[i%len(palette)])
		b.printf(`<text x="%.1f" y="%d" font-size="11">%s</text>`+"\n", lx+14, 41, esc(s.Name))
		lx += 18 + 7*float64(len(s.Name)) + 14
	}

	// Y axis with 5 ticks.
	b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0, x0, y0+plotH)
	for t := 0; t <= 5; t++ {
		v := maxV * float64(t) / 5
		y := yOf(v)
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n", x0, y, x0+plotW, y)
		b.printf(`<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%.3g</text>`+"\n", x0-6, y+3, v)
	}
	b.printf(`<text x="14" y="%.1f" font-size="11" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`+"\n",
		y0+plotH/2, y0+plotH/2, esc(c.YLabel))

	// Bars.
	groupW := plotW / float64(len(c.Categories))
	barW := groupW * 0.8 / float64(len(c.Series))
	for ci, cat := range c.Categories {
		gx := x0 + groupW*float64(ci) + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[ci]
			bx := gx + barW*float64(si)
			by := yOf(v)
			b.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.4g</title></rect>`+"\n",
				bx, by, barW, y0+plotH-by, palette[si%len(palette)], esc(cat), esc(s.Name), v)
		}
		b.printf(`<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x0+groupW*(float64(ci)+0.5), y0+plotH+14, esc(cat))
	}

	// Reference line.
	if c.RefLine > 0 {
		y := yOf(c.RefLine)
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cc0000" stroke-dasharray="5,4"/>`+"\n",
			x0, y, x0+plotW, y)
	}
	// X axis baseline.
	b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0+plotH, x0+plotW, y0+plotH)
	b.printf("</svg>\n")
	return b.err
}

// BoxEntry is one box of a box (violin summary) plot.
type BoxEntry struct {
	Label                    string
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	// Group selects the color (e.g. one per configuration).
	Group int
}

// BoxChart renders five-number summaries, the shape behind the paper's
// Figs. 14 and 15 violins.
type BoxChart struct {
	Title  string
	YLabel string
	Boxes  []BoxEntry
}

// WriteSVG renders the box plot.
func (c *BoxChart) WriteSVG(w io.Writer) error {
	if len(c.Boxes) == 0 {
		return fmt.Errorf("plot: empty box chart %q", c.Title)
	}
	maxV := 0.0
	for _, e := range c.Boxes {
		if e.Max > maxV {
			maxV = e.Max
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV *= 1.08

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	x0, y0 := float64(marginL), float64(marginT)
	yOf := func(v float64) float64 { return y0 + plotH - math.Max(v, 0)/maxV*plotH }

	var b errWriter
	b.w = w
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", chartW, chartH)
	b.printf(`<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	b.printf(`<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))
	b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0, x0, y0+plotH)
	for t := 0; t <= 5; t++ {
		v := maxV * float64(t) / 5
		y := yOf(v)
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n", x0, y, x0+plotW, y)
		b.printf(`<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%.3g</text>`+"\n", x0-6, y+3, v)
	}
	b.printf(`<text x="14" y="%.1f" font-size="11" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`+"\n",
		y0+plotH/2, y0+plotH/2, esc(c.YLabel))

	slotW := plotW / float64(len(c.Boxes))
	boxW := slotW * 0.5
	for i, e := range c.Boxes {
		cx := x0 + slotW*(float64(i)+0.5)
		color := palette[e.Group%len(palette)]
		// Whiskers.
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", cx, yOf(e.Min), cx, yOf(e.Max), color)
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", cx-boxW/4, yOf(e.Min), cx+boxW/4, yOf(e.Min), color)
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", cx-boxW/4, yOf(e.Max), cx+boxW/4, yOf(e.Max), color)
		// Box q1..q3.
		b.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.45" stroke="%s"><title>%s: min %.3g q1 %.3g med %.3g mean %.3g q3 %.3g max %.3g</title></rect>`+"\n",
			cx-boxW/2, yOf(e.Q3), boxW, math.Max(yOf(e.Q1)-yOf(e.Q3), 1), color, color,
			esc(e.Label), e.Min, e.Q1, e.Median, e.Mean, e.Q3, e.Max)
		// Median.
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			cx-boxW/2, yOf(e.Median), cx+boxW/2, yOf(e.Median), color)
		// Mean marker.
		b.printf(`<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", cx, yOf(e.Mean), color)
		b.printf(`<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle">%s</text>`+"\n",
			cx, y0+plotH+13, esc(e.Label))
	}
	b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0+plotH, x0+plotW, y0+plotH)
	b.printf("</svg>\n")
	return b.err
}

// errWriter accumulates the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
